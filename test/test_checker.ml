open Regmutex
module I = Gpu_isa.Instr
module Program = Gpu_isa.Program

let make body = Program.create ~name:"t" (Array.of_list body)

let messages vs = List.map (fun v -> v.Checker.message) vs

let test_sound_program () =
  let p =
    make
      [ I.Mov (0, I.Imm 1);
        I.Acquire;
        I.Bin (I.Add, 3, I.Reg 0, I.Imm 2);  (* extended def *)
        I.Bin (I.Add, 0, I.Reg 3, I.Imm 1);  (* last use of r3 *)
        I.Release;
        I.Store (I.Global, I.Imm 64, I.Reg 0, 0);
        I.Exit ]
  in
  Alcotest.(check (list string)) "no violations" [] (messages (Checker.check ~bs:2 ~es:2 p))

let test_access_without_acquire () =
  let p =
    make
      [ I.Mov (0, I.Imm 1);
        I.Bin (I.Add, 3, I.Reg 0, I.Imm 2);
        I.Store (I.Global, I.Imm 64, I.Reg 3, 0);
        I.Exit ]
  in
  match Checker.check ~bs:2 ~es:2 p with
  | [] -> Alcotest.fail "expected violations"
  | v :: _ -> Alcotest.(check int) "flagged at def" 1 v.Checker.pc

let test_live_high_after_release () =
  let p =
    make
      [ I.Acquire;
        I.Mov (3, I.Imm 1);
        I.Release;  (* r3 still live here *)
        I.Acquire;
        I.Store (I.Global, I.Imm 64, I.Reg 3, 0);
        I.Release;
        I.Exit ]
  in
  let vs = Checker.check ~bs:2 ~es:2 p in
  Alcotest.(check bool) "release with live extended register flagged" true
    (List.exists (fun v -> v.Checker.pc = 2) vs)

let test_out_of_range () =
  let p =
    make [ I.Acquire; I.Mov (5, I.Imm 1); I.Mov (5, I.Imm 2); I.Release; I.Exit ]
  in
  let vs = Checker.check ~bs:2 ~es:2 p in
  Alcotest.(check bool) "beyond |Bs|+|Es| flagged" true
    (List.exists (fun v -> String.length v.Checker.message > 0 && v.Checker.pc = 1) vs)

let test_path_dependent_state () =
  (* One path acquires, the other does not; the join accesses an extended
     register — must be flagged as path-dependent. *)
  let p =
    make
      [ I.Mov (0, I.Imm 1);               (* 0 *)
        I.Jump_ifz (I.Reg 0, 3);          (* 1: skip the acquire *)
        I.Acquire;                        (* 2 *)
        I.Bin (I.Add, 3, I.Reg 0, I.Imm 1); (* 3: join, extended access *)
        I.Exit ]
  in
  let vs = Checker.check ~bs:2 ~es:2 p in
  Alcotest.(check bool) "join access flagged" true
    (List.exists (fun v -> v.Checker.pc = 3) vs)

let test_idempotent_double_acquire_ok () =
  let p =
    make
      [ I.Acquire; I.Acquire; I.Mov (3, I.Imm 1);
        I.Bin (I.Add, 0, I.Reg 3, I.Imm 0); I.Release; I.Release; I.Exit ]
  in
  Alcotest.(check (list string)) "double primitives fine" []
    (messages (Checker.check ~bs:2 ~es:2 p))

let test_unreachable_ignored () =
  let p =
    make
      [ I.Jump 3;                          (* 0 *)
        I.Mov (3, I.Imm 1);                (* 1: unreachable extended access *)
        I.Jump 3;                          (* 2 *)
        I.Exit ]
  in
  Alcotest.(check (list string)) "unreachable code not flagged" []
    (messages (Checker.check ~bs:2 ~es:2 p))

let test_workload_transforms_sound () =
  (* Every Table I kernel, transformed with its paper split, passes. *)
  List.iter
    (fun spec ->
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      let bs = spec.Workloads.Spec.paper_bs in
      let es = Workloads.Spec.paper_es spec in
      let plan = Transform.apply ~bs ~es prog in
      Alcotest.(check (list string))
        (spec.Workloads.Spec.name ^ " sound")
        []
        (messages (Checker.check ~bs ~es plan.Transform.transformed)))
    Workloads.Registry.all

let test_spans_barrier () =
  let held =
    make
      [ I.Acquire; I.Mov (3, I.Imm 1); I.Bar;
        I.Bin (I.Add, 0, I.Reg 3, I.Imm 0); I.Release; I.Exit ]
  in
  Alcotest.(check bool) "bar inside acquire region" true
    (Checker.acquire_spans_barrier held);
  let free =
    make
      [ I.Acquire; I.Mov (3, I.Imm 1);
        I.Bin (I.Add, 0, I.Reg 3, I.Imm 0); I.Release; I.Bar;
        I.Store (I.Global, I.Imm 64, I.Reg 0, 0); I.Exit ]
  in
  Alcotest.(check bool) "bar after release" false
    (Checker.acquire_spans_barrier free);
  (* Path-dependent (Top) state must count as spanning: one path reaches
     the barrier holding the set. *)
  let maybe =
    make
      [ I.Mov (0, I.Imm 1);
        I.Jump_ifz (I.Reg 0, 3);
        I.Acquire;
        I.Bar;
        I.Exit ]
  in
  Alcotest.(check bool) "path-dependent holding counts" true
    (Checker.acquire_spans_barrier maybe)

let trace key stores : Checker.store_trace = [ (key, stores) ]

let test_diff_traces_equal () =
  let t = trace (0, 1) [ (I.Global, 64, 7); (I.Shared, 3, 9) ] in
  Alcotest.(check (option string)) "identical traces" None
    (Checker.diff_store_traces ~expected:t ~actual:t);
  Alcotest.(check (option string)) "both empty" None
    (Checker.diff_store_traces ~expected:[] ~actual:[])

let test_diff_traces_value () =
  let e = trace (0, 0) [ (I.Global, 64, 7); (I.Global, 65, 8) ] in
  let a = trace (0, 0) [ (I.Global, 64, 7); (I.Global, 65, 9) ] in
  match Checker.diff_store_traces ~expected:e ~actual:a with
  | None -> Alcotest.fail "divergence not reported"
  | Some msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the diverging store" true
        (contains msg "store #1")

let test_diff_traces_shape () =
  let e = trace (0, 0) [ (I.Global, 64, 7) ] in
  (match Checker.diff_store_traces ~expected:e ~actual:[] with
  | Some _ -> ()
  | None -> Alcotest.fail "missing warp not reported");
  (match
     Checker.diff_store_traces ~expected:e
       ~actual:(e @ trace (1, 0) [ (I.Global, 64, 7) ])
   with
  | Some _ -> ()
  | None -> Alcotest.fail "extra warp not reported");
  match
    Checker.diff_store_traces ~expected:e
      ~actual:(trace (0, 0) [ (I.Global, 64, 7); (I.Global, 64, 8) ])
  with
  | Some _ -> ()
  | None -> Alcotest.fail "extra stores not reported"

let suite =
  [ Alcotest.test_case "sound program" `Quick test_sound_program;
    Alcotest.test_case "access without acquire" `Quick test_access_without_acquire;
    Alcotest.test_case "live extended register at release" `Quick test_live_high_after_release;
    Alcotest.test_case "register beyond |Bs|+|Es|" `Quick test_out_of_range;
    Alcotest.test_case "path-dependent acquire state" `Quick test_path_dependent_state;
    Alcotest.test_case "idempotent double primitives" `Quick test_idempotent_double_acquire_ok;
    Alcotest.test_case "unreachable code ignored" `Quick test_unreachable_ignored;
    Alcotest.test_case "all workload transforms are sound" `Quick test_workload_transforms_sound;
    Alcotest.test_case "acquire region spanning a barrier" `Quick test_spans_barrier;
    Alcotest.test_case "trace diff: identical" `Quick test_diff_traces_equal;
    Alcotest.test_case "trace diff: diverging value" `Quick test_diff_traces_value;
    Alcotest.test_case "trace diff: shape mismatches" `Quick test_diff_traces_shape ]
