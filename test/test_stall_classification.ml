(* Regression tests for idle-slot stall classification: classifying why a
   scheduler slot is idle is an observation, not an issue attempt, so it
   must never mark warps acquire-stalled or emit Acquire_stalled events —
   no matter how many idle schedulers probe the same warp. *)

open Gpu_sim
module E = Event_trace
module B = Gpu_isa.Builder

(* One CTA slot, zero SRP sections: the kernel's first acquire can never
   be granted, so classification always lands on the acquire stall. *)
let starved_sm () =
  let arch =
    { Util.small_arch with
      Gpu_uarch.Arch_config.regfile_regs = 256;
      max_ctas = 1;
      max_warps = 1;
      max_threads = 32;
      reg_alloc_gran = 1 }
  in
  (* The mov after the acquire never executes (the acquire is never
     granted); it is there so the program references a register, which
     [Kernel.make] requires. *)
  let prog = B.(assemble ~name:"acq" [ acquire; mov 0 (imm 0); release; exit_ ]) in
  let kernel = Kernel.make ~name:"acq" ~grid_ctas:1 ~cta_threads:32 prog in
  let policy = Policy.Srp { bs = 8; es = 4; verify = false } in
  let stats = Stats.create () in
  let events = E.create () in
  let sm =
    Sm.create ~events arch ~sm_id:0 ~policy ~kernel ~memory:(Memory.create ())
      ~mem_sys:(Mem_system.create arch ~n_sms:1)
      ~stats ~record_stores:false ~trace_warp0:false
  in
  (sm, stats, events)

let test_classification_is_pure () =
  let sm, stats, events = starved_sm () in
  Alcotest.(check int) "no sections" 0 (Sm.srp_sections sm);
  Alcotest.(check bool) "CTA launched" true
    (Sm.try_launch sm ~global_cta:0 ~cycle:0);
  let baseline_events = E.length events in
  for cycle = 0 to 99 do
    match Sm.classify_idle sm ~cycle with
    | Stats.Stall_acquire -> ()
    | _ -> Alcotest.fail "expected an acquire stall classification"
  done;
  Alcotest.(check int) "no events emitted by probing" baseline_events
    (E.length events);
  Alcotest.(check int) "no acquires recorded" 0 stats.Stats.acquire_execs;
  Alcotest.(check int) "no first-tries recorded" 0 stats.Stats.acquire_first_try;
  Alcotest.(check int) "no stall counters bumped" 0
    (Stats.stall_count stats Stats.Stall_acquire)

(* A contended SRP configuration: 2 CTAs x 2 warps fight over a single
   section, so real acquire stalls do happen. 448 registers = 2 CTAs x
   (3 regs x 64 threads) + one |Es|=2 section of 64. *)
let contended_arch =
  { Util.small_arch with
    Gpu_uarch.Arch_config.regfile_regs = 448;
    reg_alloc_gran = 1 }

let contended_run ?observe () =
  let events =
    E.create ~keep:(function
      | E.Acquire_stalled _ | E.Acquire_granted _ -> true
      | _ -> false)
      ()
  in
  let kernel =
    Kernel.make ~name:"ev" ~grid_ctas:4 ~cta_threads:64 Test_events.srp_kernel
  in
  let config =
    { (Gpu.default_config contended_arch (Policy.Srp { bs = 3; es = 2; verify = true }))
      with Gpu.events = Some events }
  in
  let stats = Gpu.run ?observe config kernel in
  (stats, events)

let stalled_events events =
  List.filter
    (fun e -> match e.E.event with E.Acquire_stalled _ -> true | _ -> false)
    (E.entries events)

(* The headline regression: acquire statistics and the stall-event stream
   must be identical whether or not idle schedulers classify every cycle.
   The observer plays the part of arbitrarily many extra idle schedulers
   probing mid-run. *)
let test_stats_independent_of_probing () =
  let plain_stats, plain_events = contended_run () in
  let probed_stats, probed_events =
    contended_run
      ~observe:(fun ~cycle sms ->
        Array.iter
          (fun sm ->
            for _ = 1 to 3 do
              ignore (Sm.classify_idle sm ~cycle)
            done)
          sms)
      ()
  in
  (* The scenario really contends: some acquire waited. *)
  Alcotest.(check bool) "stalls happened" true
    (plain_stats.Stats.acquire_first_try < plain_stats.Stats.acquire_execs);
  Alcotest.(check bool) "stall events recorded" true
    (stalled_events plain_events <> []);
  Alcotest.(check int) "same cycles" plain_stats.Stats.cycles
    probed_stats.Stats.cycles;
  Alcotest.(check int) "same acquires" plain_stats.Stats.acquire_execs
    probed_stats.Stats.acquire_execs;
  Alcotest.(check int) "same first-tries" plain_stats.Stats.acquire_first_try
    probed_stats.Stats.acquire_first_try;
  Alcotest.(check int) "same stall events"
    (List.length (stalled_events plain_events))
    (List.length (stalled_events probed_events))

(* One Acquire_stalled event per stall episode: per warp, a second stall
   event may only appear after the stalled acquire was finally granted. *)
let test_one_event_per_episode () =
  let _, events = contended_run () in
  for cta = 0 to 3 do
    for warp = 0 to 1 do
      let stalled = ref false in
      List.iter
        (fun e ->
          match e.E.event with
          | E.Acquire_stalled _ ->
              if !stalled then
                Alcotest.failf
                  "cta %d warp %d: repeated stall event without a grant" cta warp;
              stalled := true
          | E.Acquire_granted _ -> stalled := false
          | _ -> ())
        (E.for_warp events ~cta ~warp)
    done
  done

let suite =
  [ Alcotest.test_case "classification is pure" `Quick test_classification_is_pure;
    Alcotest.test_case "stats independent of idle probing" `Quick
      test_stats_independent_of_probing;
    Alcotest.test_case "one stall event per episode" `Quick
      test_one_event_per_episode ]
