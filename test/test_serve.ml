(* The serve stack: the persistent Engine.Pool, the LRU result store,
   the wire protocol, and end-to-end daemon behaviour (single-flight
   coalescing, back-pressure, drain-on-shutdown) over a real socket. *)

module E = Experiments
module Pool = Experiments.Engine.Pool
module Store = Experiments.Result_store
module P = Serve.Protocol

(* --- worker pool ------------------------------------------------------- *)

let test_pool_map_order () =
  let pool = Pool.create ~workers:2 in
  Alcotest.(check int) "workers" 2 (Pool.workers pool);
  let tasks = Array.init 32 Fun.id in
  let out =
    Pool.map pool tasks (fun i ->
        (* Uneven task durations shuffle completion order; results must
           still come back in submission order. *)
        if i mod 5 = 0 then Unix.sleepf 0.002;
        i * i)
  in
  Alcotest.(check (array int)) "submission order"
    (Array.init 32 (fun i -> i * i))
    out;
  (* The pool is persistent: a second batch reuses the same workers. *)
  let out2 = Pool.map pool [| 7; 8 |] (fun i -> i + 1) in
  Alcotest.(check (array int)) "second batch" [| 8; 9 |] out2;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_pool_zero_workers () =
  (* A 0-worker pool runs every task on the participating caller. *)
  let pool = Pool.create ~workers:0 in
  let out = Pool.map pool [| 1; 2; 3 |] (fun i -> 10 * i) in
  Alcotest.(check (array int)) "serial map" [| 10; 20; 30 |] out;
  Pool.shutdown pool

let test_pool_exception () =
  let pool = Pool.create ~workers:1 in
  Alcotest.check_raises "task exception reaches the caller"
    (Failure "task 3 failed") (fun () ->
      ignore
        (Pool.map pool [| 0; 1; 2; 3; 4 |] (fun i ->
             if i = 3 then failwith "task 3 failed" else i)));
  (* The pool survives a failed batch. *)
  let out = Pool.map pool [| 1 |] (fun i -> -i) in
  Alcotest.(check (array int)) "pool survives" [| -1 |] out;
  Pool.shutdown pool

let test_pool_shutdown_drains () =
  let pool = Pool.create ~workers:2 in
  let ran = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.submit pool (fun () -> Atomic.incr ran)
  done;
  (* Shutdown must drain everything already queued before joining. *)
  Pool.shutdown pool;
  Alcotest.(check int) "all submitted jobs ran" 50 (Atomic.get ran);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Engine.Pool.submit: pool is shut down") (fun () ->
      Pool.submit pool (fun () -> ()))

(* --- result store ------------------------------------------------------ *)

let tiny =
  { E.Exp_config.default with E.Exp_config.grid_scale = 0.1 }

(* One real run to marshal; every store test reuses it under many keys. *)
let sample_run =
  lazy
    (E.Engine.compute tiny
       (E.Engine.cell ~arch:tiny.E.Exp_config.arch Regmutex.Technique.Baseline
          (Workloads.Registry.find "BFS")))

let with_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rmx-store-test-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Store.set_root (Some dir);
  Store.set_limit_bytes None;
  Fun.protect
    ~finally:(fun () ->
      Store.set_root None;
      Store.set_limit_bytes None;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_store_lru_bound () =
  with_store (fun _dir ->
      let run = Lazy.force sample_run in
      Store.store "k0" run;
      let s0 = Store.stats () in
      let per_entry = s0.Store.bytes in
      Alcotest.(check bool) "entry has a size" true (per_entry > 0);
      (* Room for three entries; the fourth store must evict the LRU. *)
      Store.set_limit_bytes (Some (3 * per_entry));
      Store.store "k1" run;
      Store.store "k2" run;
      (* Touch k0 so k1 becomes least recently used. *)
      Alcotest.(check bool) "k0 loads" true (Store.load "k0" <> None);
      Store.store "k3" run;
      let s = Store.stats () in
      Alcotest.(check int) "bounded to three entries" 3 s.Store.entries;
      Alcotest.(check bool) "under the byte limit" true
        (s.Store.bytes <= 3 * per_entry);
      Alcotest.(check int) "one eviction" (s0.Store.evictions + 1)
        s.Store.evictions;
      Alcotest.(check bool) "LRU k1 evicted" true (Store.load "k1" = None);
      Alcotest.(check bool) "recently-used k0 kept" true
        (Store.load "k0" <> None);
      Alcotest.(check bool) "k3 kept" true (Store.load "k3" <> None))

let test_store_pin_protects () =
  with_store (fun _dir ->
      let run = Lazy.force sample_run in
      Store.store "pinned" run;
      let per_entry = (Store.stats ()).Store.bytes in
      Store.set_limit_bytes (Some (2 * per_entry));
      Store.pin "pinned";
      (* "pinned" is the LRU candidate every time, but must survive. *)
      Store.store "a" run;
      Store.store "b" run;
      Store.store "c" run;
      Alcotest.(check bool) "pinned entry survives eviction pressure" true
        (Store.load "pinned" <> None);
      Store.unpin "pinned";
      (* Unpinned (and just loaded, so not LRU): make it LRU again by
         touching the others, then overflow. *)
      ignore (Store.load "c");
      Store.store "d" run;
      Alcotest.(check bool) "unpinned entry is evictable" true
        (Store.load "pinned" = None))

let test_store_compact () =
  with_store (fun dir ->
      let run = Lazy.force sample_run in
      Store.store "live" run;
      (* A leftover directory from an older schema/simulator version. *)
      let stale = Filename.concat dir "v0-deadbeef" in
      Unix.mkdir stale 0o755;
      let oc = open_out (Filename.concat stale "old.run") in
      output_string oc "stale bytes";
      close_out oc;
      let files, bytes = Store.compact () in
      Alcotest.(check int) "one stale file removed" 1 files;
      Alcotest.(check bool) "stale bytes counted" true (bytes > 0);
      Alcotest.(check bool) "stale dir gone" false (Sys.file_exists stale);
      Alcotest.(check bool) "current version intact" true
        (Store.load "live" <> None))

(* --- protocol ---------------------------------------------------------- *)

let roundtrip_request req =
  match P.decode_request (P.encode_request 42 req) with
  | Ok (42, req') -> Alcotest.(check bool) "request round-trips" true (req = req')
  | Ok (id, _) -> Alcotest.failf "id mangled: %d" id
  | Result.Error e -> Alcotest.failf "decode failed: %s" e

let roundtrip_response resp =
  match P.decode_response (P.encode_response 7 resp) with
  | Ok (7, resp') ->
      Alcotest.(check bool) "response round-trips" true (resp = resp')
  | Ok (id, _) -> Alcotest.failf "id mangled: %d" id
  | Result.Error e -> Alcotest.failf "decode failed: %s" e

let test_protocol_roundtrip () =
  List.iter roundtrip_request
    [ P.Ping;
      P.Run
        (P.run_request ~half:true ~es_override:4 ~variant:"v" ~quick:true
           ~grid_scale:0.25 ~workload:"BFS" ~technique:"regmutex" ());
      P.Trace (P.run_request ~workload:"SPMV" ~technique:"baseline" ());
      P.Suite { entries = [ "table1"; "fig7" ]; quick = true };
      P.Suite { entries = []; quick = false };
      P.Fuzz { n_seeds = 10; seed0 = 3; inject = Some "swap"; do_shrink = false };
      P.Logs { max_lines = 50 };
      P.Metrics; P.Stats; P.Compact; P.Shutdown ];
  List.iter roundtrip_response
    [ P.Ok_ping;
      P.Ok_run
        {
          P.key = "k \"quoted\"";
          fingerprint = "fp";
          cycles = 123;
          instructions = 456;
          theoretical_occupancy = 0.75;
          achieved_occupancy = 0.5;
          warm = true;
        };
      P.Ok_trace { events = 9; trace = "[{\"ph\":\"X\"}]\n" };
      P.Ok_suite { output = "line1\nline2\n" };
      P.Ok_fuzz
        { tested = 5; failures = 0; injected = 5; caught = 5; output = "ok\n" };
      P.Ok_logs
        {
          lines =
            [ "{\"level\": \"info\", \"msg\": \"a \\\"b\\\"\"}"; "{\"x\": 1}" ];
          dropped = 3;
        };
      P.Ok_logs { lines = []; dropped = 0 };
      P.Ok_metrics "# TYPE x counter\nx 1\n";
      P.Ok_stats [ ("requests", 12.); ("uptime_s", 0.5) ];
      P.Ok_compact { files = 2; bytes = 2048 };
      P.Ok_shutdown; P.Busy;
      P.Error { code = "bad-request"; message = "no \"type\"" } ];
  (* Malformed frames are decode errors, not exceptions. *)
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (P.decode_request "not json"));
  Alcotest.(check bool) "missing type rejected" true
    (Result.is_error (P.decode_request "{\"id\": 1}"))

(* --- end-to-end daemon ------------------------------------------------- *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rmx-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_daemon ?(max_queue = 64) ?(tweak = Fun.id) f =
  let socket = fresh_socket () in
  let config =
    tweak
      {
        (Serve.Server.default_config ~socket_path:socket) with
        Serve.Server.jobs = 2;
        max_queue;
        cache_dir = None;
        (* Hermetic by default: no flight recorder writing into the
           test's cwd; the observability test opts back in. *)
        trace_dir = None;
      }
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run config) in
  let result =
    match f socket with
    | r -> Ok r
    | exception e -> Error e
  in
  (* Whatever happened, bring the daemon down so the next test can start
     its own. *)
  (match
     let c = Serve.Client.connect_retry ~attempts:5 ~delay:0.05 socket in
     let resp = Serve.Client.request c P.Shutdown in
     Serve.Client.close c;
     resp
   with
  | _ -> ()
  | exception _ -> ());
  Domain.join daemon;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  match result with Ok r -> r | Error e -> raise e

(* Distinct variants keep each test's cells cold in the shared in-memory
   engine cache; grid_scale 0.1 keeps the simulations milliseconds. *)
let run_req ~variant =
  P.Run
    (P.run_request ~variant ~quick:true ~grid_scale:0.1 ~workload:"BFS"
       ~technique:"regmutex" ())

let expect_run = function
  | P.Ok_run p -> p
  | P.Error { code; message } -> Alcotest.failf "error %s: %s" code message
  | P.Busy -> Alcotest.fail "unexpected busy"
  | _ -> Alcotest.fail "unexpected response"

let stats_of client =
  match Serve.Client.request client P.Stats with
  | P.Ok_stats kvs -> fun key -> (try List.assoc key kvs with Not_found -> 0.)
  | _ -> Alcotest.fail "stats request failed"

let test_daemon_cold_warm () =
  with_daemon (fun socket ->
      let c = Serve.Client.connect_retry socket in
      Alcotest.(check bool) "ping" true (Serve.Client.request c P.Ping = P.Ok_ping);
      let p1 = expect_run (Serve.Client.request c (run_req ~variant:"cw")) in
      Alcotest.(check bool) "first request computes" false p1.P.warm;
      let p2 = expect_run (Serve.Client.request c (run_req ~variant:"cw")) in
      Alcotest.(check bool) "repeat is warm" true p2.P.warm;
      Alcotest.(check string) "same fingerprint" p1.P.fingerprint
        p2.P.fingerprint;
      Alcotest.(check bool) "unknown workload is an error" true
        (match
           Serve.Client.request c
             (P.Run (P.run_request ~workload:"nope" ~technique:"baseline" ()))
         with
        | P.Error { code = "unknown-workload"; _ } -> true
        | _ -> false);
      Serve.Client.close c)

let test_daemon_single_flight () =
  with_daemon (fun socket ->
      let admin = Serve.Client.connect_retry socket in
      let before = stats_of admin in
      let computes0 = before "computations" in
      (* Four clients race the same cold cell; single-flight must run the
         simulation exactly once, and everyone gets the same answer. *)
      let doms =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                let c = Serve.Client.connect_retry socket in
                let p =
                  expect_run
                    (Serve.Client.request_retry c (run_req ~variant:"sf"))
                in
                Serve.Client.close c;
                p.P.fingerprint))
      in
      let fps = List.map Domain.join doms in
      (match fps with
      | fp :: rest ->
          List.iter (Alcotest.(check string) "identical fingerprints" fp) rest
      | [] -> assert false);
      let after = stats_of admin in
      Alcotest.(check int) "exactly one simulation" 1
        (int_of_float (after "computations" -. computes0));
      Serve.Client.close admin)

let test_daemon_busy () =
  (* max_queue = 0: every cold run is refused with back-pressure, while
     inline requests (ping, stats) still work. *)
  with_daemon ~max_queue:0 (fun socket ->
      let c = Serve.Client.connect_retry socket in
      Alcotest.(check bool) "cold run refused" true
        (Serve.Client.request c (run_req ~variant:"busy") = P.Busy);
      Alcotest.(check bool) "ping still served" true
        (Serve.Client.request c P.Ping = P.Ok_ping);
      let stats = stats_of c in
      Alcotest.(check bool) "busy counted" true (stats "busy" >= 1.);
      Serve.Client.close c)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* One cold run against a daemon with the flight recorder forced on
   (slow_ms = 0) and the log at Debug: the metrics body must carry the
   build/uptime/per-type series, the logs request must tail valid JSON
   lines with the request id threaded into the worker's records, and the
   flight directory must hold one merged per-request trace that passes
   the Chrome schema check with both the coordinator track (pid 1000)
   and the simulation's own spans. *)
let test_daemon_observability () =
  let module J = Telemetry.Json_check in
  let flight =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rmx-flight-test-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  let rm () =
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote flight)))
  in
  Fun.protect ~finally:rm (fun () ->
      with_daemon
        ~tweak:(fun c ->
          {
            c with
            Serve.Server.log_level = Telemetry.Log.Debug;
            trace_dir = Some flight;
            slow_ms = 0.;
          })
        (fun socket ->
          let c = Serve.Client.connect_retry socket in
          let p = expect_run (Serve.Client.request c (run_req ~variant:"obs")) in
          Alcotest.(check bool) "cold compute" false p.P.warm;
          (* The flight file is written just after the reply is sent;
             give the coordinator a moment to finish it. *)
          let rec flight_files attempts =
            let fs =
              (if Sys.file_exists flight then Sys.readdir flight else [||])
              |> Array.to_list
              |> List.filter (fun n -> Filename.check_suffix n ".trace.json")
              |> Array.of_list
            in
            if Array.length fs > 0 || attempts = 0 then fs
            else (
              Unix.sleepf 0.05;
              flight_files (attempts - 1))
          in
          let traces = flight_files 40 in
          Alcotest.(check int) "one flight trace for the one slow request" 1
            (Array.length traces);
          let name = traces.(0) in
          Alcotest.(check bool) ("flight name well-formed: " ^ name) true
            (String.length name > 4
            && String.sub name 0 4 = "req-"
            && Filename.check_suffix name ".trace.json"
            && contains name "-run.");
          let ic = open_in_bin (Filename.concat flight name) in
          let body =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          (match J.validate_chrome_trace body with
          | Ok n -> Alcotest.(check bool) "trace has events" true (n > 3)
          | Error e -> Alcotest.failf "flight trace fails schema: %s" e);
          List.iter
            (fun sub ->
              Alcotest.(check bool) ("flight trace has " ^ sub) true
                (contains body sub))
            [ (* coordinator track and its spans *)
              "\"pid\": 1000"; "serve coordinator"; "queue"; "compute";
              "reply";
              (* the worker's simulation landed in the same document *)
              "warp" ];
          (* Self-metrics: build info, uptime, per-type latency. *)
          let prom =
            match Serve.Client.request c P.Metrics with
            | P.Ok_metrics s -> s
            | _ -> Alcotest.fail "metrics request failed"
          in
          List.iter
            (fun sub ->
              Alcotest.(check bool) ("metrics has " ^ sub) true
                (contains prom sub))
            [ "regmutex_build_info{"; "schema=\""; "git=\"";
              "regmutex_uptime_seconds";
              "regmutex_serve_request_type_us_bucket{type=\"run\"";
              "regmutex_serve_queue_depth" ];
          (* The structured log: every line is a JSON object, and the
             worker's records carry the request id from the ambient
             context threaded through Pool.submit. *)
          (match Serve.Client.request c (P.Logs { max_lines = 500 }) with
          | P.Ok_logs { lines; dropped } ->
              Alcotest.(check bool) "log lines present" true (lines <> []);
              Alcotest.(check int) "nothing dropped yet" 0 dropped;
              List.iter
                (fun line ->
                  match J.parse line with
                  | J.Obj _ -> ()
                  | _ -> Alcotest.failf "log line is not an object: %s" line
                  | exception Failure e ->
                      Alcotest.failf "log line invalid (%s): %s" e line)
                lines;
              let worker_line =
                List.find_opt
                  (fun l ->
                    contains l "\"src\":\"worker\"" && contains l "\"req\":")
                  lines
              in
              Alcotest.(check bool) "worker records carry the request id" true
                (worker_line <> None)
          | _ -> Alcotest.fail "logs request failed");
          Serve.Client.close c))

let test_daemon_shutdown_drains () =
  let socket = fresh_socket () in
  let config =
    {
      (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.jobs = 1;
      cache_dir = None;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run config) in
  (* Client A starts a cold compute; shutdown arrives while it is in
     flight. A must still get its result before the daemon exits. *)
  let a =
    Domain.spawn (fun () ->
        let c = Serve.Client.connect_retry socket in
        let p = expect_run (Serve.Client.request c (run_req ~variant:"drain")) in
        Serve.Client.close c;
        p.P.warm)
  in
  let b = Serve.Client.connect_retry socket in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "shutdown accepted" true
    (Serve.Client.request b P.Shutdown = P.Ok_shutdown);
  Serve.Client.close b;
  let a_warm = Domain.join a in
  Alcotest.(check bool) "in-flight request answered" false a_warm;
  Domain.join daemon;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let suite =
  [ Alcotest.test_case "pool map order" `Quick test_pool_map_order;
    Alcotest.test_case "pool zero workers" `Quick test_pool_zero_workers;
    Alcotest.test_case "pool exception" `Quick test_pool_exception;
    Alcotest.test_case "pool shutdown drains" `Quick test_pool_shutdown_drains;
    Alcotest.test_case "store LRU bound" `Slow test_store_lru_bound;
    Alcotest.test_case "store pin protects" `Slow test_store_pin_protects;
    Alcotest.test_case "store compact" `Slow test_store_compact;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "daemon cold/warm" `Slow test_daemon_cold_warm;
    Alcotest.test_case "daemon single-flight" `Slow test_daemon_single_flight;
    Alcotest.test_case "daemon busy" `Slow test_daemon_busy;
    Alcotest.test_case "daemon observability" `Slow test_daemon_observability;
    Alcotest.test_case "daemon shutdown drains" `Slow test_daemon_shutdown_drains ]
