module E = Experiments

let tiny =
  (* Very small grids keep these integration tests quick. *)
  { E.Exp_config.default with E.Exp_config.grid_scale = 0.1 }

let test_table_render () =
  let out =
    E.Table.render
      ~columns:[ ("a", E.Table.Left); ("bb", E.Table.Right) ]
      [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + rows" 4 (List.length lines);
  (* Right-aligned column pads on the left. *)
  Alcotest.(check bool) "right aligned" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3));
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Table.render: row 0 has wrong arity") (fun () ->
      ignore (E.Table.render ~columns:[ ("a", E.Table.Left) ] [ [ "x"; "y" ] ]))

let test_table_cells () =
  Alcotest.(check string) "pct" "12.3%" (E.Table.pct 12.34);
  Alcotest.(check string) "occ" "67%" (E.Table.occ 0.667);
  Alcotest.(check (float 1e-9)) "mean" 2. (E.Table.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (E.Table.mean [])

let test_exp_config () =
  let cfg = E.Exp_config.default in
  Alcotest.(check int) "4-SM slice" 4 cfg.E.Exp_config.arch.Gpu_uarch.Arch_config.n_sms;
  Alcotest.(check int) "half register file"
    (cfg.E.Exp_config.arch.Gpu_uarch.Arch_config.regfile_regs / 2)
    cfg.E.Exp_config.half_arch.Gpu_uarch.Arch_config.regfile_regs;
  let bfs = Workloads.Registry.find "BFS" in
  let k = E.Exp_config.kernel_of E.Exp_config.quick bfs in
  Alcotest.(check bool) "quick grids smaller" true
    (k.Gpu_sim.Kernel.grid_ctas < bfs.Workloads.Spec.kernel.Gpu_sim.Kernel.grid_ctas);
  Alcotest.(check bool) "fig7 set on full RF" true
    (E.Exp_config.eval_arch cfg bfs == cfg.E.Exp_config.arch);
  Alcotest.(check bool) "fig8 set on half RF" true
    (E.Exp_config.eval_arch cfg (Workloads.Registry.find "SPMV")
    == cfg.E.Exp_config.half_arch)

let test_engine_caching () =
  E.Engine.clear ();
  let bfs = Workloads.Registry.find "Gaussian" in
  let misses0 = E.Engine.simulations () in
  let r1 = E.Engine.run tiny ~arch:tiny.E.Exp_config.arch Regmutex.Technique.Baseline bfs in
  let misses1 = E.Engine.simulations () in
  let r2 = E.Engine.run tiny ~arch:tiny.E.Exp_config.arch Regmutex.Technique.Baseline bfs in
  let misses2 = E.Engine.simulations () in
  Alcotest.(check int) "first run simulates" (misses0 + 1) misses1;
  Alcotest.(check int) "second run cached" misses1 misses2;
  Alcotest.(check int) "same result" r1.Regmutex.Runner.cycles r2.Regmutex.Runner.cycles;
  (* Different es_override is a different key. *)
  let _ =
    E.Engine.run ~es_override:4 tiny ~arch:tiny.E.Exp_config.arch
      Regmutex.Technique.Regmutex bfs
  in
  Alcotest.(check int) "override misses" (misses2 + 1) (E.Engine.simulations ())

let test_engine_key_precision () =
  let bfs = Workloads.Registry.find "BFS" in
  let arch = tiny.E.Exp_config.arch in
  let key_at scale =
    E.Engine.key
      { tiny with E.Exp_config.grid_scale = scale }
      ~arch Regmutex.Technique.Baseline bfs
  in
  (* Scales that a "%.3f" rendering would conflate must stay distinct. *)
  Alcotest.(check bool) "1e-5 apart" true (key_at 1.0 <> key_at 1.00001);
  Alcotest.(check bool) "sub-milli scales" true (key_at 1e-4 <> key_at 2e-4);
  Alcotest.(check string) "equal scales agree" (key_at 0.25) (key_at 0.25);
  (* Variant labels and compile options are part of the key. *)
  Alcotest.(check bool) "variant distinguishes" true
    (E.Engine.key tiny ~arch Regmutex.Technique.Regmutex bfs
    <> E.Engine.key ~variant:"lrr" tiny ~arch Regmutex.Technique.Regmutex bfs);
  let no_widen =
    { Regmutex.Technique.default_options with
      transform = { Regmutex.Transform.default_options with widen = false } }
  in
  Alcotest.(check bool) "options distinguish" true
    (E.Engine.key tiny ~arch Regmutex.Technique.Regmutex bfs
    <> E.Engine.key ~options:no_widen tiny ~arch Regmutex.Technique.Regmutex bfs)

let with_engine_defaults f =
  Fun.protect
    ~finally:(fun () ->
      E.Engine.set_jobs 1;
      E.Engine.set_cache_dir None;
      E.Engine.clear ())
    f

let test_parallel_determinism () =
  with_engine_defaults @@ fun () ->
  let fingerprints () =
    E.Engine.clear ();
    let sims0 = E.Engine.simulations () in
    let rows = E.Fig7.rows tiny in
    (E.Engine.simulations () - sims0, rows)
  in
  E.Engine.set_jobs 1;
  let serial_sims, serial = fingerprints () in
  E.Engine.set_jobs 4;
  let parallel_sims, parallel = fingerprints () in
  Alcotest.(check bool) "rows simulate" true (serial_sims > 0);
  Alcotest.(check int) "same simulation count" serial_sims parallel_sims;
  Alcotest.(check bool) "identical rows" true (serial = parallel)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_cache_round_trip () =
  with_engine_defaults @@ fun () ->
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "regmutex-store-%d" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  E.Engine.set_cache_dir (Some dir);
  let gaussian = Workloads.Registry.find "Gaussian" in
  let run () =
    E.Engine.run tiny ~arch:tiny.E.Exp_config.arch Regmutex.Technique.Regmutex
      gaussian
  in
  E.Engine.clear ();
  let sims0 = E.Engine.simulations () in
  let r1 = run () in
  Alcotest.(check int) "cold store simulates" (sims0 + 1) (E.Engine.simulations ());
  (* A fresh in-memory cache must be rebuilt entirely from disk. *)
  E.Engine.clear ();
  let r2 = run () in
  Alcotest.(check int) "warm store does not simulate" (sims0 + 1)
    (E.Engine.simulations ());
  Alcotest.(check string) "identical result" (Regmutex.Runner.fingerprint r1)
    (Regmutex.Runner.fingerprint r2);
  (* Prefetch also hits the store: still no simulation. *)
  E.Engine.clear ();
  E.Engine.prefetch tiny
    [ E.Engine.cell ~arch:tiny.E.Exp_config.arch Regmutex.Technique.Regmutex
        gaussian ];
  Alcotest.(check int) "prefetch hits the store" (sims0 + 1)
    (E.Engine.simulations ())

let test_table1_rows () =
  let rows = E.Table1.rows tiny in
  Alcotest.(check int) "16 rows" 16 (List.length rows);
  let bfs = List.find (fun r -> r.E.Table1.app = "BFS") rows in
  Alcotest.(check int) "BFS regs" 21 bfs.E.Table1.regs;
  Alcotest.(check int) "BFS rounded" 24 bfs.E.Table1.rounded;
  Alcotest.(check (option int)) "BFS |Bs| matches paper" (Some 18) bfs.E.Table1.heuristic_bs;
  Alcotest.(check int) "paper column" 18 bfs.E.Table1.paper_bs

let test_fig2 () =
  let r = E.Fig2.run () in
  Alcotest.(check bool) "baseline serializes" true
    (r.E.Fig2.baseline_cycles > r.E.Fig2.regmutex_cycles);
  Alcotest.(check int) "timeline buckets" 64 (Array.length r.E.Fig2.baseline_timeline);
  (* Baseline allocation never exceeds one warp's worth (31). *)
  Array.iter
    (fun v -> Alcotest.(check bool) "baseline <= 31" true (v <= 31))
    r.E.Fig2.baseline_timeline;
  (* RegMutex overlaps: some bucket must exceed a single warp's 31. *)
  Alcotest.(check bool) "regmutex overlaps" true
    (Array.exists (fun v -> v > 31) r.E.Fig2.regmutex_timeline)

let test_fig1_rows () =
  let rows = E.Fig1.rows tiny in
  Alcotest.(check int) "6 kernels" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.E.Fig1.app ^ " has profile") true
        (r.E.Fig1.dynamic_instructions > 0);
      Alcotest.(check bool)
        (r.E.Fig1.app ^ " underutilised most of the time")
        true
        (r.E.Fig1.mean_ratio < 0.8))
    rows

let test_fig7_rows () =
  let rows = E.Fig7.rows tiny in
  Alcotest.(check int) "8 rows" 8 (List.length rows);
  List.iter
    (fun (r : E.Fig7.row) ->
      Alcotest.(check bool) (r.E.Fig7.app ^ " occupancy never drops") true
        (r.E.Fig7.occ_after >= r.E.Fig7.occ_before);
      Alcotest.(check bool) (r.E.Fig7.app ^ " cycles measured") true
        (r.E.Fig7.baseline_cycles > 0 && r.E.Fig7.regmutex_cycles > 0))
    rows

let test_fig13_rows () =
  let rows = E.Fig13.rows tiny in
  Alcotest.(check int) "16 rows" 16 (List.length rows);
  List.iter
    (fun (r : E.Fig13.row) ->
      Alcotest.(check bool) (r.E.Fig13.app ^ " ratios in [0,1]") true
        (r.E.Fig13.default_ratio >= 0. && r.E.Fig13.default_ratio <= 1.
        && r.E.Fig13.paired_ratio >= 0. && r.E.Fig13.paired_ratio <= 1.))
    rows

let test_fig10_marks_heuristic () =
  let rows = E.Fig10.rows tiny in
  List.iter
    (fun (r : E.Fig10.row) ->
      match r.E.Fig10.heuristic_es with
      | None -> Alcotest.failf "%s: no heuristic pick" r.E.Fig10.app
      | Some es ->
          Alcotest.(check bool) (r.E.Fig10.app ^ " pick is in the sweep") true
            (List.mem es E.Fig10.es_values))
    rows

let test_ablation_variants () =
  Alcotest.(check int) "five variants" 5 (List.length E.Ablation.variants);
  Alcotest.(check bool) "labels distinct" true
    (let labels =
       List.map (fun (v : E.Ablation.variant) -> v.E.Ablation.label) E.Ablation.variants
     in
     List.length (List.sort_uniq compare labels) = List.length labels)

let suite =
  [ Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "experiment config" `Quick test_exp_config;
    Alcotest.test_case "engine caching" `Slow test_engine_caching;
    Alcotest.test_case "engine key precision" `Quick test_engine_key_precision;
    Alcotest.test_case "parallel determinism" `Slow test_parallel_determinism;
    Alcotest.test_case "cache round trip" `Slow test_cache_round_trip;
    Alcotest.test_case "Table 1 rows" `Quick test_table1_rows;
    Alcotest.test_case "Figure 2 story" `Slow test_fig2;
    Alcotest.test_case "Figure 1 rows" `Slow test_fig1_rows;
    Alcotest.test_case "Figure 7 rows" `Slow test_fig7_rows;
    Alcotest.test_case "Figure 13 rows" `Slow test_fig13_rows;
    Alcotest.test_case "Figure 10 heuristic marks" `Slow test_fig10_marks_heuristic;
    Alcotest.test_case "ablation variants" `Quick test_ablation_variants ]
