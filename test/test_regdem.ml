(* RegDem demotion pass: plan accounting, behaviour preservation across
   the whole keep sweep, occupancy-driven selection, spill-window
   discipline, and printer/codec round-trips of spilling programs. *)

open Gpu_isa
module Regdem = Regmutex.Regdem
module Technique = Regmutex.Technique
module Kernel = Gpu_sim.Kernel
module Policy = Gpu_sim.Policy
module Gpu = Gpu_sim.Gpu
module Stats = Gpu_sim.Stats

(* A straight dependence chain keeps every register live to the end, so
   any keep boundary demotes real, still-needed values. *)
let chain =
  Builder.(
    assemble ~name:"chain"
      [ mov 0 (imm 1);
        add 1 (r 0) (imm 2);
        add 2 (r 1) (imm 3);
        add 3 (r 2) (imm 4);
        add 4 (r 3) (imm 5);
        add 5 (r 4) (r 0);
        store Instr.Global (imm 64) (r 5);
        exit_ ])

let run_regdem ?(grid = 2) ?(threads = 64) ~keep prog =
  let wpc = threads / 32 in
  let plan = Regdem.transform ~keep ~wpc prog in
  let kern0 =
    Kernel.make ~name:"t" ~grid_ctas:grid ~cta_threads:threads ~params:[||] prog
  in
  let kern =
    Kernel.with_shmem_bytes
      (Kernel.with_program kern0 plan.Regdem.transformed)
      (Regdem.shmem_bytes_with_window kern0 ~spill_words:plan.Regdem.spill_words)
  in
  let policy =
    Policy.Regdem
      { regs_per_thread = plan.Regdem.allocated;
        spill_words = plan.Regdem.spill_words }
  in
  let config =
    { (Gpu.default_config Util.small_arch policy) with
      Gpu.record_stores = true;
      max_cycles = 2_000_000 }
  in
  (plan, Gpu.run config kern)

let test_plan_accounting () =
  let wpc = 2 in
  let plan = Regdem.transform ~keep:3 ~wpc chain in
  Alcotest.(check int) "keep" 3 plan.Regdem.keep;
  Alcotest.(check int) "demoted regs" 3 plan.Regdem.demoted;
  Alcotest.(check int) "window = demoted * wpc" (3 * wpc) plan.Regdem.spill_words;
  Alcotest.(check int) "allocated = keep + scratch"
    (plan.Regdem.keep + plan.Regdem.scratch)
    plan.Regdem.allocated;
  Alcotest.(check bool) "spills emitted" true (plan.Regdem.n_spills > 0);
  Alcotest.(check bool) "fills emitted" true (plan.Regdem.n_fills > 0);
  Alcotest.(check int) "static spill count matches program"
    plan.Regdem.n_spills
    (Program.count
       (function Instr.Store (Instr.Spill, _, _, _) -> true | _ -> false)
       plan.Regdem.transformed);
  Alcotest.(check int) "static fill count matches program"
    plan.Regdem.n_fills
    (Program.count
       (function Instr.Load (Instr.Spill, _, _, _) -> true | _ -> false)
       plan.Regdem.transformed);
  (* Every register reference fits the reduced allocation. *)
  Alcotest.(check int) "n_regs = allocated" plan.Regdem.allocated
    plan.Regdem.transformed.Program.n_regs

let test_transform_validation () =
  Alcotest.check_raises "keep = 0 rejected"
    (Invalid_argument "Regdem.transform: keep must be in [1, n_regs)")
    (fun () -> ignore (Regdem.transform ~keep:0 ~wpc:2 chain));
  Alcotest.check_raises "keep = n_regs rejected"
    (Invalid_argument "Regdem.transform: keep must be in [1, n_regs)")
    (fun () -> ignore (Regdem.transform ~keep:6 ~wpc:2 chain));
  Alcotest.check_raises "wpc = 0 rejected"
    (Invalid_argument "Regdem.transform: wpc must be positive")
    (fun () -> ignore (Regdem.transform ~keep:3 ~wpc:0 chain))

(* Behaviour preservation over the full keep sweep, for every control
   shape the test corpus has: straight line, diamond, loop, chain. *)
let test_preserves_behaviour () =
  List.iter
    (fun prog ->
      let base = Util.run_with (Util.static_policy prog) prog in
      for keep = 1 to prog.Program.n_regs - 1 do
        let plan, stats = run_regdem ~keep prog in
        Util.check_same_traces
          (Printf.sprintf "%s keep=%d" prog.Program.name keep)
          (Util.traces base) (Util.traces stats);
        Alcotest.(check int)
          (Printf.sprintf "%s keep=%d stays in its window" prog.Program.name keep)
          0 stats.Stats.shared_oob;
        if plan.Regdem.n_spills > 0 then
          Alcotest.(check bool)
            (Printf.sprintf "%s keep=%d executes spills" prog.Program.name keep)
            true
            (stats.Stats.spill_stores > 0)
      done)
    [ Util.straight; Util.diamond; Util.loop; chain ]

let test_spill_counters_monotone () =
  (* Demoting more registers (smaller keep) can only add spill traffic. *)
  let executed keep =
    let _, stats = run_regdem ~keep chain in
    stats.Stats.spill_stores + stats.Stats.fill_loads
  in
  let deep = executed 1 and shallow = executed 5 in
  Alcotest.(check bool)
    (Printf.sprintf "keep=1 traffic (%d) >= keep=5 traffic (%d)" deep shallow)
    true (deep >= shallow);
  Alcotest.(check bool) "keep=1 actually spills" true (deep > 0)

let test_choose_improves_occupancy () =
  (* 34 registers in 512-thread CTAs is register-limited on the GTX 480
     model: demotion must buy at least one more resident CTA. *)
  let prog =
    Builder.(
      assemble ~name:"fat"
        ([ mul 0 ctaid ntid; add 0 (r 0) tid; mov 1 (imm 0) ]
        @ Workloads.Shape.bulge ~seed:0 ~acc:1 ~first:2 ~last:33 ~hold:2 ()
        @ [ store ~ofs:0x10000000 Instr.Global (r 0) (r 1); exit_ ]))
  in
  let kernel =
    Kernel.make ~name:"fat" ~grid_ctas:4 ~cta_threads:512 prog
  in
  let arch = Gpu_uarch.Arch_config.gtx480 in
  let choice = Regdem.choose arch kernel in
  Alcotest.(check bool) "candidates swept" true (choice.Regdem.candidates <> []);
  match choice.Regdem.best with
  | None -> Alcotest.fail "expected a profitable demotion"
  | Some c ->
      Alcotest.(check bool)
        (Printf.sprintf "strictly more warps (%d > %d)" c.Regdem.c_warps
           choice.Regdem.baseline_warps)
        true
        (c.Regdem.c_warps > choice.Regdem.baseline_warps);
      Alcotest.(check int) "candidate allocation arithmetic"
        (c.Regdem.c_keep + c.Regdem.c_scratch) c.Regdem.c_allocated;
      let wpc = Kernel.warps_per_cta arch kernel in
      Alcotest.(check int) "candidate window arithmetic"
        (c.Regdem.c_demoted * wpc) c.Regdem.c_spill_words;
      (* prepare must reach the same conclusion and carry the plan. *)
      let p = Technique.prepare arch Technique.Regdem kernel in
      (match p.Technique.policy with
      | Policy.Regdem { regs_per_thread; spill_words } ->
          Alcotest.(check int) "policy registers" c.Regdem.c_allocated
            regs_per_thread;
          Alcotest.(check int) "policy window" c.Regdem.c_spill_words spill_words
      | _ -> Alcotest.fail "expected a Regdem policy");
      Alcotest.(check bool) "plan recorded" true (p.Technique.regdem <> None)

let test_prepare_fallback () =
  (* A tiny kernel is occupancy-bound elsewhere: no demotion helps, the
     kernel runs unmodified under an empty window. *)
  let kernel =
    Kernel.make ~name:"t" ~grid_ctas:2 ~cta_threads:64 Util.straight
  in
  let arch = Gpu_uarch.Arch_config.gtx480 in
  let p = Technique.prepare arch Technique.Regdem kernel in
  (match p.Technique.policy with
  | Policy.Regdem { regs_per_thread; spill_words } ->
      Alcotest.(check int) "full demand" 3 regs_per_thread;
      Alcotest.(check int) "no window" 0 spill_words
  | _ -> Alcotest.fail "expected a Regdem policy");
  Alcotest.check Util.program "program untouched" Util.straight
    p.Technique.kernel.Kernel.program

let test_oob_spill_is_counted () =
  (* A spill store aimed past the window must not corrupt user shared
     memory silently: it wraps and bumps [shared_oob]. *)
  let prog =
    Program.create ~name:"oob"
      [| Instr.Mov (0, Instr.Imm 7);
         Instr.Store (Instr.Spill, Instr.Special Instr.Warp_id, Instr.Reg 0, 5);
         Instr.Exit |]
  in
  let kern =
    Kernel.with_shmem_bytes
      (Kernel.make ~name:"oob" ~grid_ctas:1 ~cta_threads:32 ~params:[||] prog)
      (4 * (1 + 2))
  in
  let policy = Policy.Regdem { regs_per_thread = 1; spill_words = 2 } in
  let config = Gpu.default_config Util.small_arch policy in
  let stats = Gpu.run config kern in
  Alcotest.(check bool) "out-of-window spill counted" true
    (stats.Stats.shared_oob > 0)

let test_spill_roundtrips () =
  (* Transformed programs (carrying ld.spill/st.spill and %warpid
     operands) survive the printer/parser and the binary codec. *)
  let plan = Regdem.transform ~keep:2 ~wpc:4 chain in
  let prog = plan.Regdem.transformed in
  let reparsed =
    Parser.parse ~name:prog.Program.name (Format.asprintf "%a" Program.pp prog)
  in
  Alcotest.check Util.program "parse (print p) = p" prog reparsed;
  Alcotest.(check bool) "encodable" true (Codec.encodable prog);
  Alcotest.check Util.program "decode (encode p) = p" prog
    (Codec.decode_program ~name:prog.Program.name (Codec.encode_program prog))

let suite =
  [ Alcotest.test_case "plan accounting" `Quick test_plan_accounting;
    Alcotest.test_case "argument validation" `Quick test_transform_validation;
    Alcotest.test_case "behaviour preserved across keep sweep" `Quick
      test_preserves_behaviour;
    Alcotest.test_case "spill traffic monotone in demotion depth" `Quick
      test_spill_counters_monotone;
    Alcotest.test_case "choose improves occupancy" `Quick
      test_choose_improves_occupancy;
    Alcotest.test_case "prepare falls back on tiny kernels" `Quick
      test_prepare_fallback;
    Alcotest.test_case "out-of-window spill is counted" `Quick
      test_oob_spill_is_counted;
    Alcotest.test_case "spill programs round-trip" `Quick test_spill_roundtrips ]
