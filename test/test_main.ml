let () =
  Alcotest.run "regmutex"
    [ ("regset", Test_regset.suite);
      ("instr", Test_instr.suite);
      ("program", Test_program.suite);
      ("builder", Test_builder.suite);
      ("parser", Test_parser.suite);
      ("codec", Test_codec.suite);
      ("cfg", Test_cfg.suite);
      ("dominance", Test_dominance.suite);
      ("liveness", Test_liveness.suite);
      ("pressure", Test_pressure.suite);
      ("allocator", Test_allocator.suite);
      ("loops", Test_loops.suite);
      ("occupancy", Test_occupancy.suite);
      ("bitmask", Test_bitmask.suite);
      ("srp", Test_srp.suite);
      ("reg-mapping", Test_reg_mapping.suite);
      ("storage-cost", Test_storage.suite);
      ("es-heuristic", Test_es_heuristic.suite);
      ("injection", Test_injection.suite);
      ("checker", Test_checker.suite);
      ("compaction", Test_compaction.suite);
      ("transform", Test_transform.suite);
      ("exec", Test_exec.suite);
      ("memory", Test_memory.suite);
      ("scheduler", Test_scheduler.suite);
      ("sim", Test_sim.suite);
      ("policies", Test_policies.suite);
      ("events", Test_events.suite);
      ("stall-classification", Test_stall_classification.suite);
      ("kernel-policy", Test_kernel.suite);
      ("stats", Test_stats.suite);
      ("technique", Test_technique.suite);
      ("workloads", Test_workloads.suite);
      ("equivalence", Test_equivalence.suite);
      ("mutation", Test_mutation.suite);
      ("experiments", Test_experiments.suite) ]
