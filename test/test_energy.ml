(* The per-access energy model: breakdown arithmetic against hand-computed
   values, monotonicity in spill traffic, and the per-technique activity
   derivation (renaming charges for RFV, tracking charges for RegMutex,
   spill charges for RegDem). *)

module E = Gpu_uarch.Energy_model
module Technique = Regmutex.Technique
module Runner = Regmutex.Runner
module Stats = Gpu_sim.Stats
module Spec = Workloads.Spec

let arch = Util.small_arch

let test_breakdown_arithmetic () =
  let c =
    { E.zero_counts with
      E.rf_reads = 1000;
      rf_writes = 500;
      shared_reads = 100;
      shared_writes = 50;
      fill_loads = 10;
      spill_stores = 20;
      cycles = 1000;
      storage_bits = 384 }
  in
  let b = E.of_counts c in
  (* defaults: rf 8.0/9.6 pJ, shared 20.0/22.4 pJ, leakage 1e-5 pJ/bit/cyc *)
  Alcotest.(check (float 1e-9)) "RF reads" 8.0 b.E.rf_read_nj;
  Alcotest.(check (float 1e-9)) "RF writes" 4.8 b.E.rf_write_nj;
  Alcotest.(check (float 1e-9)) "shared reads" 2.0 b.E.shared_read_nj;
  Alcotest.(check (float 1e-9)) "shared writes" 1.12 b.E.shared_write_nj;
  Alcotest.(check (float 1e-9)) "fills priced as shared reads" 0.2 b.E.fill_nj;
  Alcotest.(check (float 1e-9)) "spills priced as shared writes" 0.448 b.E.spill_nj;
  Alcotest.(check (float 1e-9)) "leakage" 0.00384 b.E.leakage_nj;
  Alcotest.(check (float 1e-9)) "direction split: reads" 10.2 (E.read_nj b);
  Alcotest.(check (float 1e-9)) "direction split: writes" 6.368 (E.write_nj b);
  Alcotest.(check (float 1e-9)) "total is the sum"
    (b.E.rf_read_nj +. b.E.rf_write_nj +. b.E.shared_read_nj
    +. b.E.shared_write_nj +. b.E.fill_nj +. b.E.spill_nj +. b.E.structure_nj
    +. b.E.leakage_nj)
    b.E.total_nj;
  Alcotest.(check (float 1e-9)) "zero counts cost nothing" 0.
    (E.of_counts E.zero_counts).E.total_nj

let test_spill_monotonicity () =
  (* More spill traffic can only cost more energy, all else equal. *)
  let at spills fills =
    (E.of_counts
       { E.zero_counts with E.spill_stores = spills; fill_loads = fills })
      .E.total_nj
  in
  let prev = ref (at 0 0) in
  List.iter
    (fun n ->
      let e = at n n in
      Alcotest.(check bool)
        (Printf.sprintf "%d spill/fill pairs cost more than fewer" n)
        true (e > !prev);
      prev := e)
    [ 1; 10; 100; 1000 ]

let test_custom_constants () =
  let constants = { E.default with E.rf_read_pj = 1000. } in
  let c = { E.zero_counts with E.rf_reads = 1 } in
  Alcotest.(check (float 1e-9)) "constants are honoured" 1.0
    (E.of_counts ~constants c).E.rf_read_nj

let run tech kernel = Runner.execute ~max_cycles:2_000_000 arch tech kernel

let test_technique_structure_charges () =
  let spec = Workloads.Registry.find "BFS" in
  let kernel = spec.Spec.kernel in
  let base = run Technique.Baseline kernel in
  let counts t stats = Technique.energy_counts arch t stats in
  (* RFV pays a renaming lookup on every RF access; nobody else does. *)
  let rfv = run Technique.Rfv kernel in
  let cb = counts Technique.Baseline base.Runner.stats in
  let cr = counts Technique.Rfv rfv.Runner.stats in
  Alcotest.(check int) "baseline: no renaming traffic" 0 cb.E.rename_accesses;
  Alcotest.(check int) "RFV: every RF access renamed"
    (rfv.Runner.stats.Stats.rf_reads + rfv.Runner.stats.Stats.rf_writes)
    cr.E.rename_accesses;
  Alcotest.(check bool) "RFV structure energy is visible" true
    ((Technique.energy arch Technique.Rfv rfv.Runner.stats).E.structure_nj > 0.);
  Alcotest.(check (float 1e-9)) "baseline structure energy is zero" 0.
    (Technique.energy arch Technique.Baseline base.Runner.stats).E.structure_nj;
  (* RegMutex pays per acquire/release on its bitmask and LUT. *)
  let rm = run Technique.Regmutex kernel in
  let cm = counts Technique.Regmutex rm.Runner.stats in
  Alcotest.(check int) "RegMutex: tracking follows acquires"
    (rm.Runner.stats.Stats.acquire_execs + rm.Runner.stats.Stats.release_execs)
    cm.E.track_updates;
  (* Storage bits flow into the leakage term. *)
  Alcotest.(check int) "RFV leaks over its renaming table"
    (Technique.storage_bits arch Technique.Rfv)
    cr.E.storage_bits

let test_rf_counters_populated () =
  (* Any run at all reads and writes the register file. *)
  let stats =
    Gpu_sim.Gpu.run
      (Gpu_sim.Gpu.default_config arch (Util.static_policy Util.straight))
      (Gpu_sim.Kernel.make ~name:"t" ~grid_ctas:1 ~cta_threads:32
         Util.straight)
  in
  Alcotest.(check bool) "rf reads counted" true (stats.Stats.rf_reads > 0);
  Alcotest.(check bool) "rf writes counted" true (stats.Stats.rf_writes > 0);
  Alcotest.(check int) "no spill traffic under static" 0
    (stats.Stats.spill_stores + stats.Stats.fill_loads)

let suite =
  [ Alcotest.test_case "breakdown arithmetic" `Quick test_breakdown_arithmetic;
    Alcotest.test_case "monotone in spill traffic" `Quick test_spill_monotonicity;
    Alcotest.test_case "custom constants" `Quick test_custom_constants;
    Alcotest.test_case "per-technique structure charges" `Quick
      test_technique_structure_charges;
    Alcotest.test_case "RF counters populated" `Quick test_rf_counters_populated ]
