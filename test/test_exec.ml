open Gpu_sim
module I = Gpu_isa.Instr

let make_ctx ?(regs = Array.make 8 0) ?(params = [| 10; 20 |]) () =
  let shared = Array.make 16 0 in
  let memory = Memory.create () in
  ( {
      Exec.regs;
      params;
      tid = 32;
      ctaid = 2;
      ntid = 128;
      nctaid = 4;
      warp_id = 1;
      shared;
      spill_words = 0;
      memory;
      stats = Stats.create ();
      record_stores = false;
      lanes = 0;
      n_regs = Array.length regs;
      lane_regs = [||];
    },
    shared,
    memory )

let step ctx i = Exec.step ctx i

let test_binops () =
  let ctx, _, _ = make_ctx () in
  let check name op a b expected =
    ignore (step ctx (I.Bin (op, 0, I.Imm a, I.Imm b)));
    Alcotest.(check int) name expected ctx.Exec.regs.(0)
  in
  check "add" I.Add 3 4 7;
  check "sub" I.Sub 3 4 (-1);
  check "mul" I.Mul 3 4 12;
  check "div" I.Div 12 4 3;
  check "div by zero" I.Div 12 0 0;
  check "rem" I.Rem 13 4 1;
  check "rem by zero" I.Rem 13 0 0;
  check "min" I.Min 3 4 3;
  check "max" I.Max 3 4 4;
  check "and" I.And 12 10 8;
  check "or" I.Or 12 10 14;
  check "xor" I.Xor 12 10 6;
  check "shl" I.Shl 1 4 16;
  check "shl masked" I.Shl 1 33 2;
  check "shr" I.Shr 16 2 4;
  check "shr negative (arithmetic)" I.Shr (-16) 2 (-4)

let test_unops_cmp_sel () =
  let ctx, _, _ = make_ctx () in
  ignore (step ctx (I.Un (I.Neg, 0, I.Imm 5)));
  Alcotest.(check int) "neg" (-5) ctx.Exec.regs.(0);
  ignore (step ctx (I.Un (I.Abs, 0, I.Imm (-7))));
  Alcotest.(check int) "abs" 7 ctx.Exec.regs.(0);
  ignore (step ctx (I.Un (I.Not, 0, I.Imm 0)));
  Alcotest.(check int) "not" (-1) ctx.Exec.regs.(0);
  ignore (step ctx (I.Cmp (I.Lt, 1, I.Imm 3, I.Imm 4)));
  Alcotest.(check int) "lt true" 1 ctx.Exec.regs.(1);
  ignore (step ctx (I.Cmp (I.Ge, 1, I.Imm 3, I.Imm 4)));
  Alcotest.(check int) "ge false" 0 ctx.Exec.regs.(1);
  ignore (step ctx (I.Sel (2, I.Imm 1, I.Imm 10, I.Imm 20)));
  Alcotest.(check int) "sel taken" 10 ctx.Exec.regs.(2);
  ignore (step ctx (I.Sel (2, I.Imm 0, I.Imm 10, I.Imm 20)));
  Alcotest.(check int) "sel not taken" 20 ctx.Exec.regs.(2)

let test_mad_mov () =
  let ctx, _, _ = make_ctx () in
  ignore (step ctx (I.Mad (0, I.Imm 3, I.Imm 4, I.Imm 5)));
  Alcotest.(check int) "mad" 17 ctx.Exec.regs.(0);
  ignore (step ctx (I.Mov (1, I.Reg 0)));
  Alcotest.(check int) "mov reg" 17 ctx.Exec.regs.(1)

let test_specials_params () =
  let ctx, _, _ = make_ctx () in
  Alcotest.(check int) "tid" 32 (Exec.operand ctx (I.Special I.Tid));
  Alcotest.(check int) "ctaid" 2 (Exec.operand ctx (I.Special I.Ctaid));
  Alcotest.(check int) "ntid" 128 (Exec.operand ctx (I.Special I.Ntid));
  Alcotest.(check int) "nctaid" 4 (Exec.operand ctx (I.Special I.Nctaid));
  Alcotest.(check int) "warp_id" 1 (Exec.operand ctx (I.Special I.Warp_id));
  Alcotest.(check int) "param" 20 (Exec.operand ctx (I.Param 1));
  Alcotest.(check int) "missing param reads 0" 0 (Exec.operand ctx (I.Param 9))

let test_memory_ops () =
  let ctx, shared, memory = make_ctx () in
  ignore (step ctx (I.Store (I.Shared, I.Imm 3, I.Imm 42, 0)));
  Alcotest.(check int) "shared written" 42 shared.(3);
  ignore (step ctx (I.Load (I.Shared, 0, I.Imm 1, 2)));
  Alcotest.(check int) "shared load with offset" 42 ctx.Exec.regs.(0);
  ignore (step ctx (I.Store (I.Global, I.Imm 100, I.Imm 7, 4)));
  Alcotest.(check int) "global written at addr+ofs" 7 (Memory.read_global memory 104);
  ignore (step ctx (I.Load (I.Global, 1, I.Imm 5, 0)));
  Alcotest.(check int) "global default read" (Memory.default_value 5)
    ctx.Exec.regs.(1)

let test_shared_oob_wraps () =
  let ctx, shared, _ = make_ctx () in
  (* Address 19 wraps into the 16-word CTA allocation (19 mod 16 = 3) and
     the excursion is counted, not crashed on. *)
  ignore (step ctx (I.Store (I.Shared, I.Imm 19, I.Imm 5, 0)));
  Alcotest.(check int) "wrapped write" 5 shared.(3);
  Alcotest.(check int) "oob counted" 1 ctx.Exec.stats.Stats.shared_oob;
  ignore (step ctx (I.Load (I.Shared, 0, I.Imm (-13), 0)));
  Alcotest.(check int) "negative address wraps" 5 ctx.Exec.regs.(0);
  Alcotest.(check int) "second excursion counted" 2 ctx.Exec.stats.Stats.shared_oob

let test_store_recording () =
  let ctx, _, _ = make_ctx () in
  let ctx = { ctx with Exec.record_stores = true } in
  ignore (step ctx (I.Store (I.Shared, I.Imm 2, I.Imm 9, 0)));
  ignore (step ctx (I.Store (I.Global, I.Imm 50, I.Imm 4, 0)));
  match Stats.store_traces ctx.Exec.stats with
  | [ ((cta, warp), trace ) ] ->
      Alcotest.(check (pair int int)) "keyed by cta/warp" (2, 1) (cta, warp);
      Alcotest.(check int) "both stores recorded" 2 (List.length trace)
  | l -> Alcotest.failf "expected one warp's trace, got %d" (List.length l)

let test_outcomes () =
  let ctx, _, _ = make_ctx () in
  Alcotest.(check bool) "next" true (step ctx (I.Mov (0, I.Imm 1)) = Exec.Next);
  Alcotest.(check bool) "goto" true (step ctx (I.Jump 7) = Exec.Goto 7);
  Alcotest.(check bool) "taken" true (step ctx (I.Jump_if (I.Imm 1, 3)) = Exec.Goto 3);
  Alcotest.(check bool) "not taken" true (step ctx (I.Jump_if (I.Imm 0, 3)) = Exec.Next);
  Alcotest.(check bool) "ifz taken" true (step ctx (I.Jump_ifz (I.Imm 0, 3)) = Exec.Goto 3);
  Alcotest.(check bool) "stop" true (step ctx I.Exit = Exec.Stop);
  Alcotest.(check bool) "sync" true (step ctx I.Bar = Exec.Sync);
  Alcotest.(check bool) "acq" true (step ctx I.Acquire = Exec.Acq);
  Alcotest.(check bool) "rel" true (step ctx I.Release = Exec.Rel)

let suite =
  [ Alcotest.test_case "binary operators" `Quick test_binops;
    Alcotest.test_case "unops / cmp / sel" `Quick test_unops_cmp_sel;
    Alcotest.test_case "mad / mov" `Quick test_mad_mov;
    Alcotest.test_case "specials and params" `Quick test_specials_params;
    Alcotest.test_case "memory operations" `Quick test_memory_ops;
    Alcotest.test_case "shared OOB wraps and counts" `Quick test_shared_oob_wraps;
    Alcotest.test_case "store recording" `Quick test_store_recording;
    Alcotest.test_case "control outcomes" `Quick test_outcomes ]
