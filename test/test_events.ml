open Gpu_sim
module E = Event_trace
module B = Gpu_isa.Builder
module I = Gpu_isa.Instr

let srp_kernel =
  B.(
    assemble ~name:"ev"
      ([ mul 0 ctaid ntid; add 0 (r 0) tid; mov 1 (imm 0) ]
      @ Workloads.Shape.counted_loop ~ctr:2 ~trips:(imm 2) ~name:"l"
          [ acquire; add 3 (r 0) (imm 1); add 4 (r 3) (r 1); add 1 (r 3) (r 4); release ]
      @ [ bar;
          store ~ofs:0x10000000 I.Global (r 0) (r 1); exit_ ]))

let run_with_events ?(policy = Policy.Srp { bs = 3; es = 2; verify = true }) ?keep () =
  let events = E.create ?keep () in
  let kernel = Kernel.make ~name:"ev" ~grid_ctas:2 ~cta_threads:64 srp_kernel in
  let config =
    { (Gpu.default_config Util.small_arch policy) with Gpu.events = Some events }
  in
  let stats = Gpu.run config kernel in
  (events, stats)

let test_lifecycle_events () =
  let events, _ = run_with_events () in
  let es = E.entries events in
  let count pred = List.length (List.filter (fun e -> pred e.E.event) es) in
  Alcotest.(check int) "2 launches"
    2 (count (function E.Cta_launched _ -> true | _ -> false));
  Alcotest.(check int) "2 retirements"
    2 (count (function E.Cta_retired _ -> true | _ -> false));
  Alcotest.(check int) "4 warp exits"
    4 (count (function E.Warp_exited _ -> true | _ -> false));
  (* 4 warps x 2 loop iterations of acquire/release. *)
  Alcotest.(check int) "8 acquires"
    8 (count (function E.Acquire_granted _ -> true | _ -> false));
  Alcotest.(check int) "8 releases"
    8 (count (function E.Release _ -> true | _ -> false));
  Alcotest.(check int) "4 barrier arrivals"
    4 (count (function E.Barrier_arrived _ -> true | _ -> false));
  Alcotest.(check int) "2 barrier releases"
    2 (count (function E.Barrier_released _ -> true | _ -> false))

let test_event_ordering () =
  let events, _ = run_with_events () in
  (* Per warp: acquire and release strictly alternate, starting with an
     acquire; cycles are non-decreasing. *)
  let per_warp = E.for_warp events ~cta:0 ~warp:0 in
  Alcotest.(check bool) "warp has events" true (per_warp <> []);
  let rec check_alternation expecting_acquire last_cycle = function
    | [] -> ()
    | e :: rest ->
        Alcotest.(check bool) "cycles monotone" true (e.E.cycle >= last_cycle);
        (match e.E.event with
        | E.Acquire_granted _ ->
            Alcotest.(check bool) "acquire when expected" true expecting_acquire;
            check_alternation false e.E.cycle rest
        | E.Release _ ->
            Alcotest.(check bool) "release when expected" true (not expecting_acquire);
            check_alternation true e.E.cycle rest
        | _ -> check_alternation expecting_acquire e.E.cycle rest)
  in
  check_alternation true 0 per_warp;
  (* Launch precedes every other event; retire is last. *)
  let all = E.entries events in
  (match all with
  | { E.event = E.Cta_launched _; _ } :: _ -> ()
  | _ -> Alcotest.fail "first event must be a launch");
  match List.rev all with
  | { E.event = E.Cta_retired _; _ } :: _ -> ()
  | _ -> Alcotest.fail "last event must be a retirement"

let test_filtering () =
  let keep = function E.Acquire_granted _ -> true | _ -> false in
  let events, _ = run_with_events ~keep () in
  Alcotest.(check int) "only acquires kept" 8 (E.length events);
  List.iter
    (fun e ->
      match e.E.event with
      | E.Acquire_granted _ -> ()
      | _ -> Alcotest.fail "filter leaked an event")
    (E.entries events)

let test_capacity () =
  let events = E.create ~capacity:3 () in
  for i = 1 to 5 do
    E.emit events ~cycle:i (E.Cta_launched { sm = 0; cta = i })
  done;
  Alcotest.(check int) "bounded" 3 (E.length events);
  Alcotest.(check bool) "truncation flagged" true (E.truncated events);
  Alcotest.(check int) "dropped counted" 2 (E.dropped events)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp () =
  let s =
    Format.asprintf "%a" E.pp_entry
      { E.cycle = 42;
        event = E.Acquire_granted { sm = 1; cta = 2; warp = 3; section = 4 } }
  in
  Alcotest.(check bool) "mentions section" true (contains s "acquires section 4")

let suite =
  [ Alcotest.test_case "lifecycle events" `Quick test_lifecycle_events;
    Alcotest.test_case "ordering invariants" `Quick test_event_ordering;
    Alcotest.test_case "filtering" `Quick test_filtering;
    Alcotest.test_case "capacity bound" `Quick test_capacity;
    Alcotest.test_case "pretty printing" `Quick test_pp ]
