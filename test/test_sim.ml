open Gpu_sim
module B = Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Each thread-warp computes gid*2+1 and stores it at its gid. *)
let arith_kernel =
  B.(
    assemble ~name:"arith"
      [ mul 0 ctaid ntid;
        add 0 (r 0) tid;
        mad 1 (r 0) (imm 2) (imm 1);
        store ~ofs:0x10000000 I.Global (r 0) (r 1);
        exit_ ])

let test_functional_result () =
  let stats = Util.run_with ~grid:2 ~threads:64 (Util.static_policy arith_kernel) arith_kernel in
  let traces = Util.traces stats in
  (* 2 CTAs x 2 warps. *)
  Alcotest.(check int) "4 warps stored" 4 (List.length traces);
  List.iter
    (fun ((cta, w), tr) ->
      let gid = (cta * 64) + (w * 32) in
      match tr with
      | [ (I.Global, addr, v) ] ->
          Alcotest.(check int) "address" (0x10000000 + gid) addr;
          Alcotest.(check int) "value" ((gid * 2) + 1) v
      | _ -> Alcotest.fail "expected exactly one store")
    traces

let test_stats_basics () =
  let stats = Util.run_with ~grid:2 ~threads:64 (Util.static_policy arith_kernel) arith_kernel in
  Alcotest.(check int) "all CTAs retired" 2 stats.Stats.ctas_retired;
  Alcotest.(check bool) "not timed out" false stats.Stats.timed_out;
  Alcotest.(check int) "instructions = warps x 5" (4 * 5) stats.Stats.instructions;
  Alcotest.(check bool) "cycles positive" true (stats.Stats.cycles > 0);
  Alcotest.(check bool) "ipc sane" true (Stats.ipc stats > 0.)

let test_latency_hiding () =
  (* A memory-bound kernel: more warps should reduce total cycles. *)
  let body =
    B.(
      [ mul 0 ctaid ntid; add 0 (r 0) tid; mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
      @ Workloads.Shape.counted_loop ~ctr:1 ~trips:(imm 6) ~name:"l"
          (Workloads.Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
          @ [ mad 3 (r 4) (imm 1) (r 3) ])
      @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])
  in
  let prog = B.assemble ~name:"membound" body in
  let cycles_with_grid grid =
    (Util.run_with ~grid ~threads:64 (Util.static_policy prog) prog).Stats.cycles
  in
  let one = cycles_with_grid 1 in
  let eight = cycles_with_grid 8 in
  (* 8x the work should take far less than 8x the time. *)
  Alcotest.(check bool)
    (Printf.sprintf "parallel speedup (1 CTA: %d, 8 CTAs: %d)" one eight)
    true
    (eight < 4 * one)

let test_barrier_orders_shared_memory () =
  (* Warp 0 writes a shared slot before the barrier; all warps read it
     after. Without barrier semantics the values would be stale. *)
  let prog =
    B.(
      assemble ~name:"barrier"
        [ mov 0 tid;
          cmp I.Eq 1 (r 0) (imm 0);
          bz (r 1) "wait";
          store I.Shared (imm 0) (imm 77);
          label "wait";
          bar;
          load I.Shared 2 (imm 0);
          mul 3 ctaid ntid;
          add 3 (r 3) (r 0);
          store ~ofs:0x10000000 I.Global (r 3) (r 2);
          exit_ ])
  in
  let stats =
    Util.run_with ~grid:1 ~threads:128
      (Gpu_sim.Policy.Static { regs_per_thread = 4 })
      prog
  in
  let traces = Util.traces stats in
  Alcotest.(check int) "4 warps" 4 (List.length traces);
  List.iter
    (fun (_, tr) ->
      match List.rev tr with
      | (I.Global, _, v) :: _ -> Alcotest.(check int) "saw warp 0's write" 77 v
      | ((I.Shared | I.Spill), _, _) :: _ | [] ->
          Alcotest.fail "missing global store")
    traces

let test_timeout_flag () =
  let spin =
    B.(assemble ~name:"spin" [ label "l"; add 0 (r 0) (imm 1); bra "l"; exit_ ])
  in
  let kernel = Kernel.make ~name:"spin" ~grid_ctas:1 ~cta_threads:32 spin in
  let config =
    { (Gpu.default_config Util.small_arch (Policy.Static { regs_per_thread = 1 })) with
      Gpu.max_cycles = 500 }
  in
  let stats = Gpu.run config kernel in
  Alcotest.(check bool) "timed out" true stats.Stats.timed_out;
  Alcotest.(check int) "stopped at watchdog" 500 stats.Stats.cycles

let test_zero_occupancy_rejected () =
  let kernel = Kernel.make ~name:"big" ~grid_ctas:1 ~cta_threads:1537 arith_kernel in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Gpu.run (Gpu.default_config Util.small_arch (Util.static_policy arith_kernel)) kernel);
       false
     with Invalid_argument _ -> true)

let test_multi_sm_dispatch () =
  let arch = { Util.small_arch with Gpu_uarch.Arch_config.n_sms = 4 } in
  let stats = Util.run_with ~arch ~grid:16 ~threads:64 (Util.static_policy arith_kernel) arith_kernel in
  Alcotest.(check int) "all retired across SMs" 16 stats.Stats.ctas_retired;
  Alcotest.(check int) "all warps stored" 32 (List.length (Util.traces stats))

let test_occupancy_accounting () =
  let stats = Util.run_with ~grid:2 ~threads:64 (Util.static_policy arith_kernel) arith_kernel in
  let occ = Stats.achieved_occupancy stats in
  Alcotest.(check bool) "occupancy in (0,1]" true (occ > 0. && occ <= 1.)

let test_per_warp_instruction_counts () =
  let stats = Util.run_with ~grid:2 ~threads:64 (Util.static_policy arith_kernel) arith_kernel in
  let counts = Stats.warp_instruction_counts stats in
  Alcotest.(check int) "4 warps recorded" 4 (List.length counts);
  List.iter
    (fun (_, n) -> Alcotest.(check int) "uniform kernel, uniform count" 5 n)
    counts;
  (* A divergent kernel produces non-uniform counts across warps. *)
  let spec = Workloads.Spec.with_grid (Workloads.Registry.find "HeartWall") 4 in
  let kernel = spec.Workloads.Spec.kernel in
  let config =
    Gpu_sim.Gpu.default_config Util.small_arch
      (Policy.Static { regs_per_thread = Kernel.regs_per_thread kernel })
  in
  let stats = Gpu_sim.Gpu.run config kernel in
  let counts = List.map snd (Stats.warp_instruction_counts stats) in
  Alcotest.(check bool) "divergent counts differ" true
    (List.length (List.sort_uniq compare counts) > 1)

let test_theoretical_warps () =
  let kernel = Kernel.make ~name:"t" ~grid_ctas:4 ~cta_threads:256 arith_kernel in
  let config = Gpu.default_config Gpu_uarch.Arch_config.gtx480 (Policy.Static { regs_per_thread = 24 }) in
  Alcotest.(check int) "5 CTAs x 8 warps" 40 (Gpu.theoretical_warps config kernel)

let suite =
  [ Alcotest.test_case "functional results" `Quick test_functional_result;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "latency hiding with occupancy" `Quick test_latency_hiding;
    Alcotest.test_case "barrier orders shared memory" `Quick test_barrier_orders_shared_memory;
    Alcotest.test_case "watchdog timeout" `Quick test_timeout_flag;
    Alcotest.test_case "zero occupancy rejected" `Quick test_zero_occupancy_rejected;
    Alcotest.test_case "multi-SM dispatch" `Quick test_multi_sm_dispatch;
    Alcotest.test_case "occupancy accounting" `Quick test_occupancy_accounting;
    Alcotest.test_case "per-warp instruction counts" `Quick test_per_warp_instruction_counts;
    Alcotest.test_case "theoretical warps" `Quick test_theoretical_warps ]
