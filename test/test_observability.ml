(* The observability layer grown around the serve daemon: Json_check's
   printer on hostile inputs, the structured log (levels, per-domain
   rings, ambient context, tail merge), labeled metrics rendering, the
   per-request merged trace, and the perf-trajectory report — including
   the gate's negative test: a synthetic 20% regression must fail. *)

module J = Telemetry.Json_check
module Log = Telemetry.Log
module Metrics = Telemetry.Metrics
module Report = Experiments.Report

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- Json_check.to_string edge cases --------------------------------- *)

let test_json_escapes () =
  (* Every byte class the escaper must handle: quote, backslash, the
     named controls, an arbitrary low control, and 8-bit bytes (passed
     through untouched — the printer is encoding-agnostic). *)
  let hostile = "a\"b\\c\nd\te\rf\bg\012h\000i\031j\127caf\xc3\xa9" in
  let s = J.to_string (J.Str hostile) in
  Alcotest.(check bool) "no raw newline in output" true
    (not (String.contains s '\n'));
  (match J.parse s with
  | J.Str back -> Alcotest.(check string) "escape round-trip" hostile back
  | _ -> Alcotest.fail "did not parse back to a string");
  (* A key made of nothing but escapes survives an object round-trip. *)
  let obj = J.Obj [ (hostile, J.Bool true) ] in
  match J.parse (J.to_string obj) with
  | J.Obj [ (k, J.Bool true) ] -> Alcotest.(check string) "key survives" hostile k
  | _ -> Alcotest.fail "object round-trip failed"

let test_json_non_finite () =
  (* JSON has no NaN/Infinity literal: the printer must emit null, never
     an unparseable token. *)
  List.iter
    (fun v ->
      Alcotest.(check string) "non-finite prints null" "null"
        (J.to_string (J.Num v)))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  let s = J.to_string (J.Obj [ ("ok", J.Num 1.5); ("bad", J.Num Float.nan) ]) in
  match J.parse s with
  | J.Obj [ ("ok", J.Num v); ("bad", J.Null) ] ->
      Alcotest.(check (float 0.)) "finite neighbour intact" 1.5 v
  | _ -> Alcotest.failf "unexpected parse of %s" s

let test_json_floats_round_trip () =
  List.iter
    (fun v ->
      match J.parse (J.to_string (J.Num v)) with
      | J.Num back ->
          Alcotest.(check bool)
            (Printf.sprintf "%h round-trips" v)
            true
            (Float.equal back v)
      | _ -> Alcotest.fail "not a number")
    [ 0.; -0.; 1.; -1.; 0.1; 1e-300; 1e300; 4096.; 3.565;
      Float.max_float; Float.min_float; 1. /. 3. ]

let test_json_deep_nesting () =
  (* 2000 levels of list nesting: printer and parser must both be
     iterative enough (or stack-frugal enough) to survive. *)
  let depth = 2000 in
  let rec build n = if n = 0 then J.Num 1. else J.List [ build (n - 1) ] in
  let deep = build depth in
  let s = J.to_string deep in
  let rec peel n j =
    match j with
    | J.List [ inner ] -> peel (n + 1) inner
    | J.Num _ -> n
    | _ -> Alcotest.fail "unexpected shape"
  in
  Alcotest.(check int) "depth preserved" depth (peel 0 (J.parse s))

(* --- structured log --------------------------------------------------- *)

let parse_line line =
  match J.parse line with
  | J.Obj kvs -> kvs
  | _ -> Alcotest.failf "log line is not an object: %s" line

let test_log_levels_and_fields () =
  let t = Log.create ~min_level:Log.Info () in
  Log.debug t ~src:"test" "filtered" [];
  Log.info t ~src:"test" "hello" [ Log.int "req" 7; Log.str "who" "x\"y" ];
  Log.error t ~src:"test" "boom" [];
  Alcotest.(check int) "debug below min_level discarded" 2 (Log.emitted t);
  match Log.tail t with
  | [ first; second ] ->
      let kvs = parse_line first in
      Alcotest.(check bool) "level rendered" true
        (List.assoc "level" kvs = J.Str "info");
      Alcotest.(check bool) "src rendered" true
        (List.assoc "src" kvs = J.Str "test");
      Alcotest.(check bool) "msg rendered" true
        (List.assoc "msg" kvs = J.Str "hello");
      Alcotest.(check bool) "int field" true (List.assoc "req" kvs = J.Num 7.);
      Alcotest.(check bool) "escaped field" true
        (List.assoc "who" kvs = J.Str "x\"y");
      Alcotest.(check bool) "order oldest-first" true
        (List.assoc "msg" (parse_line second) = J.Str "boom")
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_log_ring_drops () =
  let t = Log.create ~ring_capacity:4 () in
  for i = 1 to 10 do
    Log.info t ~src:"test" "m" [ Log.int "i" i ]
  done;
  Alcotest.(check int) "emitted counts everything" 10 (Log.emitted t);
  Alcotest.(check int) "dropped = overflow" 6 (Log.dropped t);
  let is =
    List.map
      (fun line ->
        match List.assoc "i" (parse_line line) with
        | J.Num f -> int_of_float f
        | _ -> Alcotest.fail "bad i")
      (Log.tail t)
  in
  Alcotest.(check (list int)) "newest window, oldest first" [ 7; 8; 9; 10 ] is;
  Alcotest.(check int) "tail limit honoured" 2
    (List.length (Log.tail ~limit:2 t))

let test_log_ctx () =
  let t = Log.create () in
  Log.with_ctx
    [ Log.int "req" 42 ]
    (fun () ->
      Log.with_ctx
        [ Log.str "rtype" "run" ]
        (fun () -> Log.info t ~src:"worker" "simulate" []);
      Log.info t ~src:"worker" "outer" []);
  Log.info t ~src:"worker" "bare" [];
  match List.map parse_line (Log.tail t) with
  | [ inner; outer; bare ] ->
      Alcotest.(check bool) "nested ctx: req" true
        (List.assoc "req" inner = J.Num 42.);
      Alcotest.(check bool) "nested ctx: rtype" true
        (List.assoc "rtype" inner = J.Str "run");
      Alcotest.(check bool) "outer keeps req" true
        (List.assoc "req" outer = J.Num 42.);
      Alcotest.(check bool) "outer dropped rtype" true
        (List.assoc_opt "rtype" outer = None);
      Alcotest.(check bool) "ctx restored after" true
        (List.assoc_opt "req" bare = None)
  | l -> Alcotest.failf "expected 3 records, got %d" (List.length l)

let test_log_multi_domain_tail () =
  (* Two worker domains log concurrently with a full ring each; tail must
     interleave by emission order and never lose a domain entirely. *)
  let t = Log.create ~ring_capacity:64 () in
  let worker tag =
    Domain.spawn (fun () ->
        for i = 1 to 20 do
          Log.info t ~src:tag "w" [ Log.int "i" i ]
        done)
  in
  let d1 = worker "a" and d2 = worker "b" in
  Domain.join d1;
  Domain.join d2;
  Log.info t ~src:"main" "done" [];
  let lines = List.map parse_line (Log.tail ~limit:100 t) in
  Alcotest.(check int) "all records retained" 41 (List.length lines);
  let count tag =
    List.length (List.filter (fun kvs -> List.assoc "src" kvs = J.Str tag) lines)
  in
  Alcotest.(check int) "domain a complete" 20 (count "a");
  Alcotest.(check int) "domain b complete" 20 (count "b");
  (* The coordinator's record was emitted last; the merge must put it last. *)
  match List.rev lines with
  | last :: _ ->
      Alcotest.(check bool) "global order respected" true
        (List.assoc "src" last = J.Str "main")
  | [] -> Alcotest.fail "no records"

let test_log_file_sink () =
  let path = Filename.temp_file "regmutex_log" ".jsonl" in
  let t = Log.create () in
  Log.open_file t path;
  Log.info t ~src:"test" "one" [ Log.int "i" 1 ];
  Log.warn t ~src:"test" "two" [];
  Log.close_file t;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  match List.rev_map parse_line !lines with
  | [ a; b ] ->
      Alcotest.(check bool) "first line" true (List.assoc "msg" a = J.Str "one");
      Alcotest.(check bool) "second line" true (List.assoc "msg" b = J.Str "two")
  | l -> Alcotest.failf "expected 2 file lines, got %d" (List.length l)

(* --- labeled metrics --------------------------------------------------- *)

let test_metrics_labels () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("type", "run") ] "regmutex_req_total" in
  let b = Metrics.counter m ~labels:[ ("type", "ping") ] "regmutex_req_total" in
  Metrics.inc a 3;
  Metrics.inc b 5;
  let a' = Metrics.counter m ~labels:[ ("type", "run") ] "regmutex_req_total" in
  Metrics.inc a' 1;
  Alcotest.(check int) "same labels, same instrument" 4
    (Metrics.counter_value a);
  Alcotest.(check int) "distinct labels, distinct instrument" 5
    (Metrics.counter_value b);
  let g =
    Metrics.gauge m
      ~labels:[ ("git", "v1.2-3-gabc"); ("dirty", "a\"b\\c\nd") ]
      "regmutex_build_info"
  in
  Metrics.set g 1.;
  let h =
    Metrics.histogram m
      ~labels:[ ("type", "run") ]
      "regmutex_req_us" ~buckets:[| 10; 100 |]
  in
  Metrics.observe h 50;
  let out = Format.asprintf "%a" Metrics.pp_prometheus m in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("prometheus has " ^ line) true (contains out line))
    [ "regmutex_req_total{type=\"run\"} 4";
      "regmutex_req_total{type=\"ping\"} 5";
      (* Label values escape backslash, quote, newline per the
         exposition format. *)
      "regmutex_build_info{git=\"v1.2-3-gabc\",dirty=\"a\\\"b\\\\c\\nd\"} 1";
      (* Histogram series merge instrument labels with le. *)
      "regmutex_req_us_bucket{type=\"run\",le=\"100\"} 1";
      "regmutex_req_us_bucket{type=\"run\",le=\"+Inf\"} 1";
      "regmutex_req_us_sum{type=\"run\"} 50";
      "regmutex_req_us_count{type=\"run\"} 1" ];
  (* One HELP/TYPE header per family, not per labeled series. *)
  let occurrences sub =
    let rec go i acc =
      if i + String.length sub > String.length out then acc
      else if String.sub out i (String.length sub) = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one TYPE header for the family" 1
    (occurrences "# TYPE regmutex_req_total counter");
  (* The JSON dump stays valid JSON with labeled keys. *)
  let json = Format.asprintf "%a" Metrics.pp_json m in
  match J.parse json with
  | J.Obj kvs -> (
      match List.assoc_opt "counters" kvs with
      | Some (J.Obj cs) ->
          Alcotest.(check bool) "labeled key in JSON dump" true
            (List.mem_assoc "regmutex_req_total{type=\"run\"}" cs)
      | _ -> Alcotest.fail "no counters object in JSON dump")
  | _ -> Alcotest.fail "metrics JSON is not an object"

(* --- per-request merged trace ------------------------------------------ *)

let test_reqtrace_merged_export () =
  let rt = Serve.Reqtrace.create ~req:7 ~rtype:"run" in
  let t0 = Unix.gettimeofday () in
  Serve.Reqtrace.instant rt "coalesce";
  Serve.Reqtrace.span rt "queue" ~since:t0;
  let sink = Telemetry.Sink.create () in
  let tr = sink.Telemetry.Sink.trace in
  Telemetry.Trace.set_process_name tr ~pid:0 "SM 0";
  let w = Telemetry.Trace.intern tr "warp" in
  Telemetry.Trace.span tr ~ts:100 ~dur:50 ~pid:0 ~tid:0 ~name:w ~arg:3;
  Serve.Reqtrace.set_sink rt (Some sink);
  let out = Serve.Reqtrace.export rt in
  (match J.validate_chrome_trace out with
  | Ok n ->
      (* Coordinator: 2 metadata (process/thread name) + marker +
         coalesce + queue span; sink: 1 metadata + warp span. *)
      Alcotest.(check int) "all seven events exported" 7 n
  | Error e -> Alcotest.failf "merged export fails schema: %s" e);
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("export has " ^ sub) true (contains out sub))
    [ "\"pid\": 1000"; "request run"; "coalesce"; "queue"; "warp";
      "\"req\": 7" ];
  (* Without a sink the coordinator-only document still validates. *)
  let solo = Serve.Reqtrace.create ~req:8 ~rtype:"suite" in
  Serve.Reqtrace.instant solo "x";
  match J.validate_chrome_trace (Serve.Reqtrace.export solo) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sinkless export fails schema: %s" e

(* --- perf-trajectory report -------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "regmutex_report" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let write dir name s =
  let oc = open_out (Filename.concat dir name) in
  output_string oc s;
  close_out oc

let cycle_json ?(speedup = 4.0) ?(identical = true) () =
  Printf.sprintf
    "{\"bench\": \"cycle_skip\", \"config\": \"quick\", \"max_speedup\": %g, \
     \"all_identical\": %b, \"cells\": []}"
    speedup identical

let serve_json () =
  "{\"bench\": \"serve\", \"config\": \"quick\", \"warm_speedup\": 200.0,\n\
   \"coalescing\": {\"factor\": 3.0},\n\
   \"throughput\": [{\"clients\": 4, \"vs_serial\": 2.5}],\n\
   \"fingerprints_identical\": true, \"warm_ok\": true, \"tp4_ok\": true}"

let test_report_scan () =
  with_temp_dir (fun dir ->
      write dir "BENCH_cycle_skip.json" (cycle_json ());
      write dir "BENCH_serve.json" (serve_json ());
      write dir "BENCH_bogus.json" "{\"bench\": \"unknown\"}";
      write dir "BENCH_broken.json" "{not json";
      write dir "NOT_A_BENCH.json" "{}";
      let snap = Report.scan ~dir in
      Alcotest.(check (list string))
        "only known artifacts ingested"
        [ "BENCH_cycle_skip.json"; "BENCH_serve.json" ]
        snap.Report.sources;
      let value key =
        match
          List.find_opt (fun m -> m.Report.key = key) snap.Report.metrics
        with
        | Some m -> m.Report.value
        | None -> Alcotest.failf "metric %s missing" key
      in
      Alcotest.(check (float 1e-9)) "cycle metric" 4.0
        (value "cycle_skip.max_speedup");
      Alcotest.(check (float 1e-9)) "warm speedup" 200.0
        (value "serve.warm_speedup");
      Alcotest.(check (float 1e-9)) "coalescing factor" 3.0
        (value "serve.coalescing_factor");
      Alcotest.(check (float 1e-9)) "throughput row" 2.5
        (value "serve.tp4_vs_serial");
      Alcotest.(check int) "invariants collected" 4
        (List.length snap.Report.invariants))

let test_report_baseline_round_trip () =
  with_temp_dir (fun dir ->
      write dir "BENCH_cycle_skip.json" (cycle_json ());
      write dir "BENCH_serve.json" (serve_json ());
      let snap = Report.scan ~dir in
      let path = Filename.concat dir "trajectory.json" in
      Report.write_baseline path snap;
      match Report.load_baseline path with
      | Error e -> Alcotest.failf "load_baseline: %s" e
      | Ok base ->
          Alcotest.(check int) "all metrics persisted"
            (List.length snap.Report.metrics)
            (List.length base);
          let o = Report.check snap base in
          Alcotest.(check int) "everything compared"
            (List.length snap.Report.metrics)
            (List.length o.Report.compared);
          Alcotest.(check (list (pair string string))) "nothing skipped" []
            o.Report.skipped;
          (match o.Report.geomean with
          | Some g -> Alcotest.(check (float 1e-9)) "self-geomean is 1" 1.0 g
          | None -> Alcotest.fail "no geomean");
          Alcotest.(check (list string)) "self-check passes" []
            o.Report.failures)

(* The acceptance negative test: degrade every metric by 20% (inflate the
   lower-is-better ones) and the 5%-tolerance check must fail, on the
   individual metrics and on the geomean. *)
let test_report_synthetic_regression () =
  with_temp_dir (fun dir ->
      write dir "BENCH_cycle_skip.json" (cycle_json ());
      write dir "BENCH_serve.json" (serve_json ());
      write dir "BENCH_telemetry_overhead.json"
        "{\"bench\": \"telemetry_overhead\", \"config\": \"quick\", \
         \"overhead_on_pct\": 2.0, \"all_identical\": true}";
      let snap = Report.scan ~dir in
      let inflated =
        List.map
          (fun m ->
            {
              m with
              Report.value =
                (if m.Report.higher_better then m.Report.value /. 0.8
                 else m.Report.value *. 0.8);
            })
          snap.Report.metrics
      in
      let o = Report.check snap inflated in
      (match o.Report.geomean with
      | Some g ->
          Alcotest.(check bool) "geomean reflects the 20% drop" true
            (Float.abs (g -. 0.8) < 1e-6)
      | None -> Alcotest.fail "no geomean");
      Alcotest.(check int) "every metric flagged plus the geomean"
        (List.length snap.Report.metrics + 1)
        (List.length o.Report.failures);
      (* Within tolerance: a 3% dip passes a 5% gate but fails a 1% one. *)
      let slight =
        List.map
          (fun m ->
            {
              m with
              Report.value =
                (if m.Report.higher_better then m.Report.value /. 0.97
                 else m.Report.value *. 0.97);
            })
          snap.Report.metrics
      in
      Alcotest.(check (list string)) "3% dip passes at 5%" []
        (Report.check ~tolerance:0.05 snap slight).Report.failures;
      Alcotest.(check bool) "3% dip fails at 1%" true
        ((Report.check ~tolerance:0.01 snap slight).Report.failures <> []))

let test_report_invariants_and_skips () =
  with_temp_dir (fun dir ->
      write dir "BENCH_cycle_skip.json" (cycle_json ~identical:false ());
      let snap = Report.scan ~dir in
      (* A false invariant fails even with no baseline to compare. *)
      let o = Report.check snap [] in
      Alcotest.(check bool) "false invariant fails" true
        (List.exists
           (fun f -> contains f "cycle_skip.all_identical")
           o.Report.failures);
      (* Config mismatch is a skip, not a comparison. *)
      let full_base =
        [
          {
            Report.key = "cycle_skip.max_speedup";
            value = 100.0;
            higher_better = true;
            config = "full";
          };
        ]
      in
      let o = Report.check snap full_base in
      Alcotest.(check int) "config mismatch not compared" 0
        (List.length o.Report.compared);
      Alcotest.(check bool) "config mismatch reported as skip" true
        (List.exists
           (fun (k, why) ->
             k = "cycle_skip.max_speedup" && contains why "config mismatch")
           o.Report.skipped))

let test_report_repo_root () =
  match Report.find_repo_root () with
  | None -> Alcotest.fail "dune-project not found from the test's cwd"
  | Some root ->
      Alcotest.(check bool) "root has dune-project" true
        (Sys.file_exists (Filename.concat root "dune-project"))

let suite =
  [ Alcotest.test_case "json: escape-heavy strings round-trip" `Quick
      test_json_escapes;
    Alcotest.test_case "json: non-finite floats print null" `Quick
      test_json_non_finite;
    Alcotest.test_case "json: float formatting round-trips" `Quick
      test_json_floats_round_trip;
    Alcotest.test_case "json: 2000-deep nesting survives" `Quick
      test_json_deep_nesting;
    Alcotest.test_case "log: levels, fields, rendering" `Quick
      test_log_levels_and_fields;
    Alcotest.test_case "log: ring keeps newest, counts drops" `Quick
      test_log_ring_drops;
    Alcotest.test_case "log: ambient context nests and restores" `Quick
      test_log_ctx;
    Alcotest.test_case "log: multi-domain tail merges in order" `Quick
      test_log_multi_domain_tail;
    Alcotest.test_case "log: file sink is line-delimited JSON" `Quick
      test_log_file_sink;
    Alcotest.test_case "metrics: labels make distinct series" `Quick
      test_metrics_labels;
    Alcotest.test_case "reqtrace: merged export passes schema" `Quick
      test_reqtrace_merged_export;
    Alcotest.test_case "report: scan normalizes known artifacts" `Quick
      test_report_scan;
    Alcotest.test_case "report: baseline round-trip self-check" `Quick
      test_report_baseline_round_trip;
    Alcotest.test_case "report: 20% synthetic regression fails" `Quick
      test_report_synthetic_regression;
    Alcotest.test_case "report: invariants and config skips" `Quick
      test_report_invariants_and_skips;
    Alcotest.test_case "report: repo root discovery" `Quick
      test_report_repo_root ]
