open Gpu_uarch
module S = Storage_cost

let arch = Arch_config.gtx480

let test_regmutex_default () =
  let b = S.bits arch S.Regmutex_default in
  (* 48 + 48 + 48*ceil(log2 48) = 48 + 48 + 288 = 384 (paper §III-B1). *)
  Alcotest.(check int) "384 bits" 384 b.S.total_bits;
  Alcotest.(check int) "LUT is 288 bits" 288 (List.assoc "warp->section LUT" b.S.components)

let test_paired () =
  let b = S.bits arch S.Regmutex_paired in
  Alcotest.(check int) "Nw/2 bits" 24 b.S.total_bits

let test_rfv () =
  let b = S.bits arch S.Rfv in
  (* 48 x 63 x 10 + 1024 = 31,264 bits (paper §IV-C). *)
  Alcotest.(check int) "renaming table" 30240 (List.assoc "renaming table" b.S.components);
  Alcotest.(check int) "availability" 1024 (List.assoc "availability bits" b.S.components);
  Alcotest.(check int) "total" 31264 b.S.total_bits

let test_ratios () =
  (* Paper: RFV needs >81x more storage than RegMutex. *)
  let r = S.ratio arch S.Regmutex_default S.Rfv in
  Alcotest.(check bool) "more than 81x" true (r > 81.);
  (* Paper says ">20x"; with its own bit counts (384 vs Nw/2 = 24) the
     ratio is 16x — we report the value our model actually yields. *)
  let p = S.ratio arch S.Regmutex_paired S.Regmutex_default in
  Alcotest.(check (float 0.01)) "384/24 = 16x" 16. p

let test_owf () =
  let b = S.bits arch S.Owf in
  Alcotest.(check int) "lock + owner bits" 48 b.S.total_bits

let test_zero_cost_techniques () =
  (* Baseline has no tracking hardware; RegDem is compiler-only and rides
     the existing shared-memory datapath. *)
  List.iter
    (fun t ->
      let b = S.bits arch t in
      Alcotest.(check int)
        (S.technique_name t ^ " costs no bits")
        0 b.S.total_bits;
      Alcotest.(check (list (pair string int))) "no components" []
        b.S.components)
    [ S.Baseline; S.Regdem ]

let test_technique_mapping () =
  (* The Technique.t -> Storage_cost.technique mapping is total and
     injective: six techniques, six distinct storage classifications. *)
  let module T = Regmutex.Technique in
  let mapped = List.map T.to_storage T.all in
  Alcotest.(check int) "covers every technique" (List.length T.all)
    (List.length (List.sort_uniq compare mapped));
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (T.name t ^ " has a storage name")
        true
        (String.length (S.technique_name (T.to_storage t)) > 0);
      Alcotest.(check bool)
        (T.name t ^ " bits are non-negative")
        true
        (T.storage_bits arch t >= 0))
    T.all

let test_names () =
  Alcotest.(check string) "name" "RegMutex" (S.technique_name S.Regmutex_default)

let suite =
  [ Alcotest.test_case "RegMutex default = 384 bits" `Quick test_regmutex_default;
    Alcotest.test_case "paired = 24 bits" `Quick test_paired;
    Alcotest.test_case "RFV = 31,264 bits" `Quick test_rfv;
    Alcotest.test_case "cost ratios" `Quick test_ratios;
    Alcotest.test_case "OWF bits" `Quick test_owf;
    Alcotest.test_case "zero-cost techniques" `Quick test_zero_cost_techniques;
    Alcotest.test_case "technique mapping is total" `Quick test_technique_mapping;
    Alcotest.test_case "names" `Quick test_names ]
