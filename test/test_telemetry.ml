(* The telemetry subsystem: metrics registry semantics (bucket edges,
   idempotent registration), trace-ring wraparound and growth, Chrome
   trace-event export against the schema validator, and the zero-overhead
   contract — attaching a sink must not perturb a single statistic or
   structured event, in either stepping mode, and the record stream itself
   must be bit-identical under fast-forward and brute force. *)

module Metrics = Telemetry.Metrics
module Trace = Telemetry.Trace
module Profile = Telemetry.Profile
module Json_check = Telemetry.Json_check
module Gpu = Gpu_sim.Gpu
module Kernel = Gpu_sim.Kernel
module Technique = Regmutex.Technique

(* --- metrics registry --------------------------------------------------- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "regmutex_test_total" in
  Metrics.inc c 3;
  Metrics.inc c 4;
  Alcotest.(check int) "counter accumulates" 7 (Metrics.counter_value c);
  let c' = Metrics.counter m "regmutex_test_total" in
  Metrics.inc c' 1;
  Alcotest.(check int) "re-registration returns same instrument" 8
    (Metrics.counter_value c);
  let g = Metrics.gauge m "regmutex_test_ratio" in
  Metrics.set g 0.5;
  Metrics.set g 0.75;
  Alcotest.(check (float 1e-9)) "gauge holds last value" 0.75
    (Metrics.gauge_value g);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: regmutex_test_total registered as another kind")
    (fun () -> ignore (Metrics.gauge m "regmutex_test_total"))

let test_histogram_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "regmutex_test_cycles" ~buckets:[| 1; 10; 100 |] in
  (* Bounds are inclusive upper edges: v lands in the first bucket whose
     bound is >= v. *)
  List.iter (Metrics.observe h) [ 0; 1; 2; 10; 11; 100; 101; 1000 ];
  Alcotest.(check (array int)) "bucket edges" [| 2; 2; 2; 2 |]
    (Metrics.histogram_counts h);
  Alcotest.(check int) "count" 8 (Metrics.histogram_total h);
  Alcotest.(check int) "sum" (0 + 1 + 2 + 10 + 11 + 100 + 101 + 1000)
    (Metrics.histogram_sum h);
  (* Same name, same bounds: idempotent. Different bounds: rejected. *)
  let h' = Metrics.histogram m "regmutex_test_cycles" ~buckets:[| 1; 10; 100 |] in
  Metrics.observe h' 5;
  Alcotest.(check int) "shared across registrations" 9 (Metrics.histogram_total h);
  Alcotest.check_raises "bound mismatch rejected"
    (Invalid_argument
       "Metrics: regmutex_test_cycles registered with different buckets")
    (fun () ->
      ignore (Metrics.histogram m "regmutex_test_cycles" ~buckets:[| 1; 2 |]));
  Alcotest.check_raises "unsorted bounds rejected"
    (Invalid_argument "Metrics.histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Metrics.histogram m "regmutex_bad" ~buckets:[| 5; 5 |]))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_prometheus_format () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"a counter" "regmutex_x_total" in
  Metrics.inc c 5;
  let h = Metrics.histogram m "regmutex_x_cycles" ~buckets:[| 2; 8 |] in
  List.iter (Metrics.observe h) [ 1; 3; 9 ];
  let out = Format.asprintf "%a" Metrics.pp_prometheus m in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("prometheus has " ^ line) true (contains out line))
    [ "# HELP regmutex_x_total a counter"; "regmutex_x_total 5";
      (* cumulative bucket series *)
      "regmutex_x_cycles_bucket{le=\"2\"} 1";
      "regmutex_x_cycles_bucket{le=\"8\"} 2";
      "regmutex_x_cycles_bucket{le=\"+Inf\"} 3"; "regmutex_x_cycles_sum 13";
      "regmutex_x_cycles_count 3" ];
  (* The JSON dump parses and carries the same totals. *)
  let json = Format.asprintf "%a" Metrics.pp_json m in
  match Json_check.parse json with
  | exception Failure msg -> Alcotest.failf "metrics JSON invalid: %s" msg
  | _ -> ()

(* --- trace ring --------------------------------------------------------- *)

let push_span tr ~ts =
  let name = Trace.intern tr "s" in
  Trace.span tr ~ts ~dur:1 ~pid:0 ~tid:0 ~name ~arg:Trace.no_arg

let timestamps tr =
  let acc = ref [] in
  Trace.iter tr (fun r -> acc := r.Trace.ts :: !acc);
  List.rev !acc

let test_ring_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  for ts = 0 to 5 do
    push_span tr ~ts
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length tr);
  Alcotest.(check int) "dropped oldest" 2 (Trace.dropped tr);
  Alcotest.(check int) "recorded total" 6 (Trace.recorded tr);
  Alcotest.(check (list int)) "retained window is newest, oldest-first"
    [ 2; 3; 4; 5 ] (timestamps tr)

let test_ring_growth () =
  (* Crosses the initial allocation on its way to a capacity it never
     fills: growth must preserve order and drop nothing. *)
  let n = 10_000 in
  let tr = Trace.create ~capacity:100_000 () in
  for ts = 0 to n - 1 do
    push_span tr ~ts
  done;
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  Alcotest.(check int) "all retained" n (Trace.length tr);
  Alcotest.(check (list int)) "order preserved across growth"
    (List.init n (fun i -> i))
    (timestamps tr)

(* --- Chrome export and schema validator --------------------------------- *)

let test_export_schema () =
  let tr = Trace.create ~capacity:16 () in
  Trace.set_process_name tr ~pid:0 "SM 0";
  Trace.set_thread_name tr ~pid:0 ~tid:0 "warp slot 0";
  let w = Trace.intern tr "warp" and c = Trace.intern tr "srp-in-use" in
  Trace.span tr ~ts:0 ~dur:10 ~pid:0 ~tid:0 ~name:w ~arg:7;
  Trace.instant tr ~ts:3 ~pid:0 ~tid:0 ~name:w ~arg:Trace.no_arg;
  Trace.counter tr ~ts:5 ~pid:0 ~name:c ~value:2;
  let out = Format.asprintf "%a" Trace.export_chrome tr in
  match Json_check.validate_chrome_trace out with
  | Ok n -> Alcotest.(check int) "3 records + 2 metadata events" 5 n
  | Error msg -> Alcotest.failf "export failed schema check: %s" msg

let test_validator_rejects () =
  let bad = Alcotest.(check bool) "rejected" true in
  bad (Result.is_error (Json_check.validate_chrome_trace "[1, 2]"));
  bad (Result.is_error (Json_check.validate_chrome_trace "{\"x\": 1}"));
  bad
    (Result.is_error
       (Json_check.validate_chrome_trace
          "{\"traceEvents\": [{\"name\": \"x\", \"pid\": 0}]}"));
  bad
    (Result.is_error
       (Json_check.validate_chrome_trace
          "{\"traceEvents\": [{\"ph\": \"Z\", \"name\": \"x\", \"pid\": 0, \
           \"tid\": 0, \"ts\": 1}]}"));
  (* An "X" span without "dur" is malformed. *)
  bad
    (Result.is_error
       (Json_check.validate_chrome_trace
          "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"x\", \"pid\": 0, \
           \"tid\": 0, \"ts\": 1}]}"));
  Alcotest.(check bool) "minimal valid trace accepted" true
    (Result.is_ok
       (Json_check.validate_chrome_trace
          "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"x\", \"pid\": 0, \
           \"tid\": 0, \"ts\": 1, \"dur\": 2}]}"))

(* --- host-side profiling ------------------------------------------------ *)

let test_profile_scopes () =
  let p = Profile.phase "test.scope" in
  Profile.reset ();
  Profile.set_enabled false;
  Alcotest.(check int) "disabled timing returns value" 42
    (Profile.time p (fun () -> 42));
  Alcotest.(check bool) "disabled scope unreported" true
    (List.for_all (fun (n, _, _) -> n <> "test.scope") (Profile.report ()));
  Profile.set_enabled true;
  ignore (Profile.time p (fun () -> Unix.sleepf 0.001));
  Profile.set_enabled false;
  match List.find_opt (fun (n, _, _) -> n = "test.scope") (Profile.report ()) with
  | None -> Alcotest.fail "scope missing from report"
  | Some (_, ns, calls) ->
      Alcotest.(check int) "one call" 1 calls;
      Alcotest.(check bool) "time accrued" true (ns > 0)

(* --- zero-overhead contract: sink off vs on ----------------------------- *)

let run_mode ~arch ~technique ~kernel ~fast_forward ~telemetry =
  let prepared = Technique.prepare arch technique kernel in
  let events = Gpu_sim.Event_trace.create () in
  let config =
    { (Gpu.default_config arch prepared.Technique.policy) with
      Gpu.record_stores = true;
      trace_warp0 = true;
      events = Some events;
      max_cycles = 2_000_000;
      fast_forward;
      telemetry }
  in
  let stats = Gpu.run config prepared.Technique.kernel in
  (stats, events)

(* The policy x scheduler matrix from the fast-forward suite, each cell
   simulated with and without a sink: stats and structured events must be
   bit-identical — the probe only observes. *)
let test_sink_off_on_identity () =
  List.iter
    (fun (sched_name, scheduler) ->
      let arch = { Util.small_arch with Gpu_uarch.Arch_config.scheduler } in
      List.iter
        (fun technique ->
          List.iter
            (fun (kname, prog, threads) ->
              let kernel =
                Kernel.make ~name:kname ~grid_ctas:3 ~cta_threads:threads prog
              in
              let msg =
                Printf.sprintf "%s/%s/%s" sched_name (Technique.name technique)
                  kname
              in
              let off_stats, off_events =
                run_mode ~arch ~technique ~kernel ~fast_forward:true
                  ~telemetry:None
              in
              let on_stats, on_events =
                run_mode ~arch ~technique ~kernel ~fast_forward:true
                  ~telemetry:(Some (Telemetry.Sink.create ()))
              in
              Test_fast_forward.check_same_stats msg off_stats on_stats;
              Test_fast_forward.check_same_events msg off_events on_events)
            Test_fast_forward.kernels)
        Test_fast_forward.techniques)
    Test_fast_forward.schedulers

let records sink =
  let acc = ref [] in
  Trace.iter sink.Telemetry.Sink.trace (fun r -> acc := r :: !acc);
  List.rev !acc

(* The record stream itself is mode-independent: every probe record is
   anchored at an issue, so fast-forward and brute force emit identical
   streams — except the fast-forward jump spans on the driver's own
   track, which exist only in one mode and are filtered here. *)
let test_trace_mode_identity () =
  List.iter
    (fun technique ->
      let kernel =
        Kernel.make ~name:"chase" ~grid_ctas:3 ~cta_threads:64
          Test_fast_forward.chase
      in
      let with_mode fast_forward =
        let sink = Telemetry.Sink.create () in
        let _ =
          run_mode ~arch:Util.small_arch ~technique ~kernel ~fast_forward
            ~telemetry:(Some sink)
        in
        records sink
      in
      let fast = with_mode true and brute = with_mode false in
      let jumps, fast_rest =
        List.partition (fun r -> r.Trace.name = "fast-forward") fast
      in
      Alcotest.(check bool)
        (Technique.name technique ^ ": fast-forward jumps recorded")
        true (jumps <> []);
      Alcotest.(check bool)
        (Technique.name technique ^ ": no jump spans under brute force")
        true
        (List.for_all (fun r -> r.Trace.name <> "fast-forward") brute);
      Alcotest.(check int)
        (Technique.name technique ^ ": same record count")
        (List.length brute) (List.length fast_rest);
      List.iteri
        (fun i (b, f) ->
          if b <> f then
            Alcotest.failf "%s: record %d diverges: %s/%d vs %s/%d"
              (Technique.name technique) i b.Trace.name b.Trace.ts f.Trace.name
              f.Trace.ts)
        (List.combine brute fast_rest))
    Test_fast_forward.techniques

(* The exported timeline of a real cell passes the schema validator and
   carries the promised tracks. *)
let test_end_to_end_export () =
  let kernel =
    Kernel.make ~name:"contended" ~grid_ctas:3 ~cta_threads:64
      Test_fast_forward.contended
  in
  let sink = Telemetry.Sink.create () in
  let _ =
    run_mode ~arch:Util.small_arch ~technique:Technique.Regmutex ~kernel
      ~fast_forward:true ~telemetry:(Some sink)
  in
  let out = Format.asprintf "%a" Trace.export_chrome sink.Telemetry.Sink.trace in
  (match Json_check.validate_chrome_trace out with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "schema: %s" msg);
  let rs = records sink in
  let has name = List.exists (fun r -> r.Trace.name = name) rs in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("track has " ^ name ^ " records") true (has name))
    [ "warp"; "srp-hold"; "cta"; "srp-in-use"; "mem-busy-slots" ]

(* --- deadlock diagnostics ----------------------------------------------- *)

(* One SRP section, two warps: warp 0 acquires then parks at the barrier;
   warp 1 can never acquire. The diagnostic must name the holder — which
   section, and for how long — without any telemetry sink attached. *)
let test_deadlock_holder () =
  let prog =
    Gpu_isa.Program.create ~name:"dl-hold"
      [| Gpu_isa.Instr.Acquire; Gpu_isa.Instr.Bar;
         Gpu_isa.Instr.Mov (0, Gpu_isa.Instr.Imm 1); Gpu_isa.Instr.Release;
         Gpu_isa.Instr.Exit |]
  in
  let arch =
    { Util.small_arch with Gpu_uarch.Arch_config.regfile_regs = 192 }
  in
  let kernel = Kernel.make ~name:"dl-hold" ~grid_ctas:1 ~cta_threads:64 prog in
  let policy = Gpu_sim.Policy.Srp { bs = 2; es = 2; verify = false } in
  let config =
    { (Gpu.default_config arch policy) with Gpu.max_cycles = 10_000 }
  in
  match Gpu.run config kernel with
  | _ -> Alcotest.fail "deadlock not detected"
  | exception Gpu.Deadlock info ->
      let sm = List.hd info.Gpu.dl_sms in
      Alcotest.(check int) "one section in use" 1 sm.Gpu.dl_srp_in_use;
      let holder =
        List.find_opt
          (fun (w : Gpu_sim.Sm.warp_diag) -> w.Gpu_sim.Sm.d_held_section <> None)
          sm.Gpu.dl_warps
      in
      (match holder with
      | None -> Alcotest.fail "no warp reported as holding a section"
      | Some w ->
          Alcotest.(check (option int)) "holds section 0" (Some 0)
            w.Gpu_sim.Sm.d_held_section;
          Alcotest.(check bool) "held for > 0 cycles" true
            (w.Gpu_sim.Sm.d_held_cycles > 0);
          Alcotest.(check bool) "held since before the freeze" true
            (w.Gpu_sim.Sm.d_held_cycles <= info.Gpu.dl_cycle);
          let rendered = Format.asprintf "%a" Gpu_sim.Sm.pp_warp_diag w in
          Alcotest.(check bool) "report names the held section" true
            (contains rendered "holds section 0"));
      (* Exactly one warp blocked on acquire, holding nothing. *)
      let waiters =
        List.filter
          (fun (w : Gpu_sim.Sm.warp_diag) ->
            w.Gpu_sim.Sm.d_block = Gpu_sim.Stats.Stall_acquire
            && w.Gpu_sim.Sm.d_held_section = None)
          sm.Gpu.dl_warps
      in
      Alcotest.(check int) "one empty-handed acquire waiter" 1
        (List.length waiters)

let suite =
  [ Alcotest.test_case "metrics: counters and gauges" `Quick test_metrics_basics;
    Alcotest.test_case "metrics: histogram bucket edges" `Quick
      test_histogram_edges;
    Alcotest.test_case "metrics: prometheus and JSON dumps" `Quick
      test_prometheus_format;
    Alcotest.test_case "trace: ring wraparound drops oldest" `Quick
      test_ring_wraparound;
    Alcotest.test_case "trace: lazy growth preserves order" `Quick
      test_ring_growth;
    Alcotest.test_case "trace: Chrome export passes schema" `Quick
      test_export_schema;
    Alcotest.test_case "trace: schema validator rejects malformed" `Quick
      test_validator_rejects;
    Alcotest.test_case "profile: scopes accrue only when enabled" `Quick
      test_profile_scopes;
    Alcotest.test_case "sink off vs on: stats bit-identical" `Slow
      test_sink_off_on_identity;
    Alcotest.test_case "trace records mode-independent" `Slow
      test_trace_mode_identity;
    Alcotest.test_case "end-to-end export carries all tracks" `Quick
      test_end_to_end_export;
    Alcotest.test_case "deadlock diagnostics name the holder" `Quick
      test_deadlock_holder ]
