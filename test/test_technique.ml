module Technique = Regmutex.Technique
module Runner = Regmutex.Runner
module Policy = Gpu_sim.Policy
module Spec = Workloads.Spec

let arch = Gpu_uarch.Arch_config.gtx480

let test_prepare_baseline () =
  let spec = Workloads.Registry.find "BFS" in
  let p = Technique.prepare arch Technique.Baseline spec.Spec.kernel in
  (match p.Technique.policy with
  | Policy.Static { regs_per_thread } ->
      Alcotest.(check int) "full demand" 21 regs_per_thread
  | _ -> Alcotest.fail "expected static policy");
  Alcotest.(check bool) "no plan" true (p.Technique.plan = None)

let test_prepare_regmutex () =
  let spec = Workloads.Registry.find "BFS" in
  let p = Technique.prepare arch Technique.Regmutex spec.Spec.kernel in
  (match p.Technique.policy with
  | Policy.Srp { bs; es; verify } ->
      Alcotest.(check int) "paper |Bs|" 18 bs;
      Alcotest.(check int) "paper |Es|" 6 es;
      Alcotest.(check bool) "verification on" true verify
  | _ -> Alcotest.fail "expected SRP policy");
  (match p.Technique.plan with
  | Some plan -> Alcotest.(check bool) "primitives injected" true
                   (plan.Regmutex.Transform.n_acquires > 0)
  | None -> Alcotest.fail "expected a plan");
  (* The prepared kernel carries the transformed program. *)
  Alcotest.(check bool) "program instrumented" true
    (Gpu_isa.Program.count (fun i -> i = Gpu_isa.Instr.Acquire)
       p.Technique.kernel.Gpu_sim.Kernel.program
    > 0)

let test_prepare_es_override () =
  let spec = Workloads.Registry.find "BFS" in
  let options = { Technique.default_options with es_override = Some 4 } in
  let p = Technique.prepare ~options arch Technique.Regmutex spec.Spec.kernel in
  match p.Technique.policy with
  | Policy.Srp { bs; es; _ } ->
      Alcotest.(check int) "forced es" 4 es;
      Alcotest.(check int) "bs" 20 bs
  | _ -> Alcotest.fail "expected SRP policy"

let test_prepare_fallback () =
  (* An impossible override falls back to baseline behaviour. *)
  let spec = Workloads.Registry.find "Gaussian" in
  let options = { Technique.default_options with es_override = Some 40 } in
  let p = Technique.prepare ~options arch Technique.Regmutex spec.Spec.kernel in
  (match p.Technique.policy with
  | Policy.Static _ -> ()
  | _ -> Alcotest.fail "expected fallback to static");
  Alcotest.(check bool) "no choice" true (p.Technique.choice = None)

let test_prepare_owf_gate () =
  (* A frozen pair contributes ~1 warp of progress, so OWF shares only on
     a >= 2x occupancy gain. BFS gains 2 -> 3 CTAs (1.5x): unshared. *)
  let bfs = Workloads.Registry.find "BFS" in
  let p = Technique.prepare arch Technique.Owf bfs.Spec.kernel in
  (match p.Technique.policy with
  | Policy.Static _ -> ()
  | _ -> Alcotest.fail "BFS: expected unshared fallback below the 2x gate");
  (* The capacities behind the decision. *)
  let static_caps =
    Gpu_sim.Sm.cta_capacity_for arch
      ~policy:(Policy.Static { regs_per_thread = 21 })
      ~kernel:bfs.Spec.kernel
  in
  let owf_caps =
    Gpu_sim.Sm.cta_capacity_for arch
      ~policy:(Policy.Owf { bs = 18; es = 6 })
      ~kernel:bfs.Spec.kernel
  in
  Alcotest.(check int) "static CTAs" 2 static_caps;
  Alcotest.(check int) "OWF CTAs" 3 owf_caps;
  (* A kernel whose occupancy doubles under pairing does share: 34
     registers in 512-thread CTAs fit 1 CTA statically but 2 CTAs when
     pairs split 12 base + 24 shared. *)
  let prog =
    Gpu_isa.Builder.(
      assemble ~name:"sharey"
        ([ mul 0 ctaid ntid; add 0 (r 0) tid; mov 1 (imm 0) ]
        @ Workloads.Shape.bulge ~seed:0 ~acc:1 ~first:2 ~last:33 ~hold:2 ()
        @ [ store ~ofs:0x10000000 Gpu_isa.Instr.Global (r 0) (r 1); exit_ ]))
  in
  let kernel = Gpu_sim.Kernel.make ~name:"sharey" ~grid_ctas:4 ~cta_threads:512 prog in
  let options = { Technique.default_options with es_override = Some 24 } in
  let p = Technique.prepare ~options arch Technique.Owf kernel in
  match p.Technique.policy with
  | Policy.Owf { bs; es } ->
      Alcotest.(check (pair int int)) "shares above the gate" (12, 24) (bs, es)
  | _ -> Alcotest.fail "expected OWF sharing above the 2x gate"

let test_prepare_rfv () =
  let spec = Workloads.Registry.find "BFS" in
  let p = Technique.prepare arch Technique.Rfv spec.Spec.kernel in
  match p.Technique.policy with
  | Policy.Rfv { live; max_live } ->
      Alcotest.(check int) "live table covers program"
        (Gpu_isa.Program.length spec.Spec.kernel.Gpu_sim.Kernel.program)
        (Array.length live);
      Alcotest.(check int) "max live" 21 max_live
  | _ -> Alcotest.fail "expected RFV policy"

let test_runner_metrics () =
  let spec = Spec.with_grid (Workloads.Registry.find "Gaussian") 4 in
  let arch1 = { arch with Gpu_uarch.Arch_config.n_sms = 1 } in
  let run = Runner.execute arch1 Technique.Baseline spec.Spec.kernel in
  Alcotest.(check bool) "cycles measured" true (run.Runner.cycles > 0);
  Alcotest.(check (float 1e-9)) "full occupancy" 1.0 run.Runner.theoretical_occupancy;
  Alcotest.(check string) "kernel name" "gaussian" run.Runner.kernel_name

let test_reduction_math () =
  let spec = Spec.with_grid (Workloads.Registry.find "Gaussian") 2 in
  let arch1 = { arch with Gpu_uarch.Arch_config.n_sms = 1 } in
  let base = Runner.execute arch1 Technique.Baseline spec.Spec.kernel in
  let fake_faster = { base with Runner.cycles = base.Runner.cycles / 2 } in
  Alcotest.(check (float 0.01)) "50% reduction" 50.
    (Runner.reduction_pct ~baseline:base fake_faster);
  Alcotest.(check (float 0.01)) "-50% increase" (-50.)
    (Runner.increase_pct ~baseline:base fake_faster)

let test_names () =
  Alcotest.(check (list string)) "technique names"
    [ "baseline"; "regmutex"; "regmutex-paired"; "owf"; "rfv"; "regdem" ]
    (List.map Technique.name Technique.all);
  List.iter
    (fun t ->
      Alcotest.(check (option string))
        "of_name round-trips" (Some (Technique.name t))
        (Option.map Technique.name (Technique.of_name (Technique.name t))))
    Technique.all

let suite =
  [ Alcotest.test_case "prepare baseline" `Quick test_prepare_baseline;
    Alcotest.test_case "prepare regmutex (paper split)" `Quick test_prepare_regmutex;
    Alcotest.test_case "prepare with es override" `Quick test_prepare_es_override;
    Alcotest.test_case "prepare fallback" `Quick test_prepare_fallback;
    Alcotest.test_case "OWF occupancy gate" `Quick test_prepare_owf_gate;
    Alcotest.test_case "prepare RFV" `Quick test_prepare_rfv;
    Alcotest.test_case "runner metrics" `Quick test_runner_metrics;
    Alcotest.test_case "reduction arithmetic" `Quick test_reduction_math;
    Alcotest.test_case "names" `Quick test_names ]
