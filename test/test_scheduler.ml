open Gpu_sim
module Soa = Warp.Soa

(* Build an SoA pool with warps resident at the given (slot, age) pairs;
   unlisted slots stay absent and must be skipped by every scheduler. *)
let pool ?(priority = fun _ -> 0) slots_ages =
  let n = 1 + List.fold_left (fun acc (s, _) -> max acc s) 0 slots_ages in
  let soa = Soa.create ~n_slots:n ~n_regs:4 () in
  List.iter
    (fun (s, a) ->
      Soa.launch soa ~slot:s ~cta_slot:0 ~global_cta:0 ~warp_in_cta:s ~age:a;
      soa.Soa.key.(s) <- Scheduler.pack_key ~priority:(priority s) ~age:a)
    slots_ages;
  soa

let pick ?(cycle = 0) ?(can = fun _ -> true) sched soa =
  Scheduler.pick sched ~soa ~cycle ~can_issue:can

let test_gto_oldest_first () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let soa = pool [ (0, 5); (1, 2); (2, 9) ] in
  Alcotest.(check int) "oldest wins" 1 (pick sched soa)

let test_gto_greedy () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let soa = pool [ (0, 5); (1, 2) ] in
  Alcotest.(check int) "first pick oldest" 1 (pick sched soa);
  (* Same warp keeps issuing while it can (greedy). *)
  Alcotest.(check int) "greedy sticks" 1 (pick sched soa);
  (* When the current warp stalls, switch to the other one. *)
  Alcotest.(check int) "switch on stall" 0
    (pick ~can:(fun s -> s <> 1) sched soa);
  (* And stay greedy on the new one. *)
  Alcotest.(check int) "greedy on new warp" 0 (pick sched soa)

let test_ownership () =
  let sched = Scheduler.create Scheduler.Gto ~id:1 ~n_schedulers:2 in
  Alcotest.(check bool) "owns odd slots" true (Scheduler.owns sched ~slot:3);
  Alcotest.(check bool) "not even slots" false (Scheduler.owns sched ~slot:2);
  let soa = pool [ (0, 0); (1, 10); (2, 1); (3, 11) ] in
  Alcotest.(check int) "only scans own slots" 1 (pick sched soa)

let test_priority_beats_age () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  (* OWF-style: warp 1 is an owner (priority 0), warp 0 is not. *)
  let soa = pool ~priority:(fun s -> if s = 1 then 0 else 1) [ (0, 0); (1, 5) ] in
  Alcotest.(check int) "owner first despite age" 1 (pick sched soa)

let test_none_issueable () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let soa = pool [ (0, 0) ] in
  Alcotest.(check int) "none" (-1) (pick ~can:(fun _ -> false) sched soa)

let test_scoreboard_gates_pick () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let soa = pool [ (0, 0); (1, 1) ] in
  (* The oldest warp's operands are in flight until cycle 10: the
     scheduler must pass it over without consulting [can_issue]. *)
  soa.Soa.ready_at.(0) <- 10;
  Alcotest.(check int) "in-flight warp skipped" 1 (pick ~cycle:5 sched soa);
  (* A fresh scheduler (no greedy hold on slot 1) picks the older warp
     again once its operands complete. *)
  let fresh = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  Alcotest.(check int) "eligible again at completion" 0 (pick ~cycle:10 fresh soa)

let test_lrr_rotates () =
  let sched = Scheduler.create Scheduler.Lrr ~id:0 ~n_schedulers:1 in
  let soa = pool [ (0, 0); (1, 1); (2, 2) ] in
  let first = pick sched soa in
  let second = pick sched soa in
  let third = pick sched soa in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2 ]
    (List.sort compare [ first; second; third ]);
  Alcotest.(check bool) "no immediate repeat" true (first <> second && second <> third)

let test_two_level_drains_group () =
  let sched = Scheduler.create (Scheduler.Two_level 2) ~id:0 ~n_schedulers:1 in
  let soa = pool [ (0, 0); (1, 1); (2, 2); (3, 3) ] in
  (* Group 0 = slots {0,1}. Oldest of the active group wins while the
     group has runnable warps. *)
  Alcotest.(check int) "active group first" 0 (pick sched soa);
  Alcotest.(check int) "stays in group" 1 (pick ~can:(fun s -> s <> 0) sched soa);
  (* When the whole group stalls, rotate to group 1. *)
  Alcotest.(check int) "rotates on group stall" 2
    (pick ~can:(fun s -> s >= 2) sched soa);
  (* The rotation is sticky: group 1 is now active. *)
  Alcotest.(check int) "sticky rotation" 2 (pick sched soa)

let test_two_level_invalid () =
  Alcotest.check_raises "empty group"
    (Invalid_argument "Scheduler.create: empty fetch group") (fun () ->
      ignore (Scheduler.create (Scheduler.Two_level 0) ~id:0 ~n_schedulers:1))

let test_two_level_end_to_end () =
  (* A full simulation under each scheduler produces identical stores. *)
  let prog = Util.loop in
  let run kind =
    let arch = { Util.small_arch with Gpu_uarch.Arch_config.scheduler = kind } in
    Util.run_with ~arch (Util.static_policy prog) prog
  in
  let gto = run Gpu_uarch.Arch_config.Gto in
  let lrr = run Gpu_uarch.Arch_config.Lrr in
  let two = run (Gpu_uarch.Arch_config.Two_level 4) in
  Util.check_same_traces "gto vs lrr" (Util.traces gto) (Util.traces lrr);
  Util.check_same_traces "gto vs two-level" (Util.traces gto) (Util.traces two)

let test_warp_deps_ready () =
  let soa = pool [ (0, 0) ] in
  let instr = Gpu_isa.Instr.Bin (Gpu_isa.Instr.Add, 0, Gpu_isa.Instr.Reg 1, Gpu_isa.Instr.Imm 1) in
  Alcotest.(check bool) "ready initially" true
    (Soa.deps_ready soa ~slot:0 instr ~cycle:0);
  soa.Soa.reg_ready.(0).(1) <- 10;
  Alcotest.(check bool) "source in flight" false
    (Soa.deps_ready soa ~slot:0 instr ~cycle:5);
  Alcotest.(check bool) "ready at completion" true
    (Soa.deps_ready soa ~slot:0 instr ~cycle:10);
  soa.Soa.reg_ready.(0).(1) <- 0;
  soa.Soa.reg_ready.(0).(0) <- 10;
  Alcotest.(check bool) "destination busy blocks too" false
    (Soa.deps_ready soa ~slot:0 instr ~cycle:5)

(* Packed ordering keys: integer comparison of [pack_key] must equal
   lexicographic comparison of (priority, age) across the whole field
   width, and ages beyond the width must saturate instead of bleeding
   into the priority bits. *)
let test_packed_key_order () =
  let m = Scheduler.age_mask in
  let ages = [ 0; 1; 2; 1023; m / 2; m - 1; m; m + 1; m * 2; max_int ] in
  let priorities = [ 0; 1 ] in
  List.iter
    (fun p1 ->
      List.iter
        (fun a1 ->
          List.iter
            (fun p2 ->
              List.iter
                (fun a2 ->
                  let expect = compare (p1, min a1 m) (p2, min a2 m) in
                  let got =
                    compare
                      (Scheduler.pack_key ~priority:p1 ~age:a1)
                      (Scheduler.pack_key ~priority:p2 ~age:a2)
                  in
                  if got <> expect then
                    Alcotest.failf
                      "pack_key order mismatch: (%d,%d) vs (%d,%d): got %d, \
                       want %d"
                      p1 a1 p2 a2 got expect)
                ages)
            priorities)
        ages)
    priorities

let test_packed_key_saturation () =
  let m = Scheduler.age_mask in
  Alcotest.(check int) "age saturates at the mask"
    (Scheduler.pack_key ~priority:0 ~age:m)
    (Scheduler.pack_key ~priority:0 ~age:max_int);
  Alcotest.(check bool) "priority dominates any age" true
    (Scheduler.pack_key ~priority:0 ~age:max_int
    < Scheduler.pack_key ~priority:1 ~age:0);
  Alcotest.(check bool) "keys stay positive" true
    (Scheduler.pack_key ~priority:1 ~age:max_int > 0)

let test_pick_near_age_limit () =
  let m = Scheduler.age_mask in
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  (* Ages one apart just under the field width: order must survive. *)
  let soa = pool [ (0, m - 1); (1, m - 2) ] in
  Alcotest.(check int) "older wins near the limit" 1 (pick sched soa);
  (* A priority-0 owner with a saturated age still beats a young
     priority-1 warp. *)
  let sched2 = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let soa2 =
    pool ~priority:(fun s -> if s = 0 then 0 else 1) [ (0, max_int); (1, 0) ]
  in
  Alcotest.(check int) "saturated owner still first" 0 (pick sched2 soa2)

let suite =
  [ Alcotest.test_case "GTO picks oldest" `Quick test_gto_oldest_first;
    Alcotest.test_case "GTO greedy behaviour" `Quick test_gto_greedy;
    Alcotest.test_case "slot ownership" `Quick test_ownership;
    Alcotest.test_case "priority beats age (OWF)" `Quick test_priority_beats_age;
    Alcotest.test_case "nothing issueable" `Quick test_none_issueable;
    Alcotest.test_case "scoreboard gates the pick" `Quick test_scoreboard_gates_pick;
    Alcotest.test_case "LRR rotation" `Quick test_lrr_rotates;
    Alcotest.test_case "two-level drains and rotates" `Quick test_two_level_drains_group;
    Alcotest.test_case "two-level validation" `Quick test_two_level_invalid;
    Alcotest.test_case "schedulers agree on behaviour" `Quick test_two_level_end_to_end;
    Alcotest.test_case "warp scoreboard" `Quick test_warp_deps_ready;
    Alcotest.test_case "packed key order" `Quick test_packed_key_order;
    Alcotest.test_case "packed key saturation" `Quick test_packed_key_saturation;
    Alcotest.test_case "pick near the age limit" `Quick test_pick_near_age_limit ]
