(* Shared helpers for the test suite: tiny program builders, Alcotest
   testables, a generator of random structured (always-terminating)
   kernels for property-based tests, and simulation shorthands. *)

open Gpu_isa

let regset = Alcotest.testable Regset.pp Regset.equal
let instr = Alcotest.testable Instr.pp Instr.equal
let program = Alcotest.testable Program.pp Program.equal

let instr_space =
  Alcotest.testable
    (fun ppf sp -> Format.pp_print_string ppf (Instr.space_name sp))
    ( = )

(* --- tiny programs ---------------------------------------------------- *)

(* Straight line: r0=1; r1=r0+2; r2=r0*r1; store r2; exit *)
let straight =
  Builder.(
    assemble ~name:"straight"
      [ mov 0 (imm 1);
        add 1 (r 0) (imm 2);
        mul 2 (r 0) (r 1);
        store Instr.Global (imm 64) (r 2);
        exit_ ])

(* Diamond: the paper's Figure 3 shape. *)
let diamond =
  Builder.(
    assemble ~name:"diamond"
      [ mov 0 (imm 5);        (* 0: R0 defined before the branch *)
        mov 1 (imm 7);        (* 1: R1 used in both arms *)
        and_ 2 (r 0) (imm 1); (* 2: condition *)
        bz (r 2) "else_";     (* 3 *)
        add 3 (r 0) (r 1);    (* 4: then-arm defines R3 *)
        bra "join";           (* 5 *)
        label "else_";
        sub 3 (r 1) (imm 1);  (* 6: else-arm defines R3 *)
        label "join";
        store Instr.Global (imm 64) (r 3); (* 7: R3 used at the join *)
        exit_ ])

(* Counted loop accumulating into r1. *)
let loop =
  Builder.(
    assemble ~name:"loop"
      ([ mov 1 (imm 0) ]
      @ Workloads.Shape.counted_loop ~ctr:0 ~trips:(imm 5) ~name:"l"
          [ add 1 (r 1) (imm 3); mul 2 (r 1) (imm 2); add 1 (r 1) (r 2) ]
      @ [ store Instr.Global (imm 64) (r 1); exit_ ]))

(* --- random structured kernels ---------------------------------------- *)

(* Programs built from this generator always terminate: control flow is
   restricted to counted loops and if/else diamonds. Registers 0..n_regs-1;
   every generated program stores its accumulator and exits. *)
let gen_structured ~n_regs : Program.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let fresh =
    let counter = ref 0 in
    fun () -> incr counter; Printf.sprintf "g%d" !counter
  in
  (* The two highest registers are reserved as loop counters (one per
     nesting level) so generated bodies can never clobber a counter —
     which would make a counted loop spin forever. *)
  let reg = int_bound (n_regs - 3) in
  let operand =
    oneof
      [ map (fun r -> Instr.Reg r) reg;
        map (fun n -> Instr.Imm n) (int_bound 1000);
        return (Instr.Special Instr.Tid) ]
  in
  let alu =
    let* d = reg and* a = operand and* b = operand in
    let* op =
      oneofl Instr.[ Add; Sub; Mul; And; Or; Xor; Min; Max; Shl; Shr; Div; Rem ]
    in
    return (Builder.bin op d a b)
  in
  let load_item =
    let* d = reg and* a = operand in
    return (Builder.load Instr.Global d a)
  in
  let store_item =
    let* a = reg and* v = operand in
    (* Stores land in a disjoint high region so loads stay deterministic. *)
    return (Builder.store ~ofs:0x10000000 Instr.Global (Instr.Reg a) v)
  in
  let leaf = frequency [ (6, alu); (2, load_item); (1, store_item) ] in
  let rec block depth =
    let* items = list_size (int_range 1 6) leaf in
    if depth = 0 then return items
    else
      let* tail =
        frequency
          [ (2, return []);
            (2,
             (* if/else diamond *)
             let* c = reg and* then_b = block (depth - 1) and* else_b = block (depth - 1) in
             let le = fresh () and lj = fresh () in
             return
               ([ Builder.bz (Builder.r c) le ]
               @ then_b
               @ [ Builder.bra lj; Builder.label le ]
               @ else_b
               @ [ Builder.label lj ]));
            (1,
             (* counted loop on a reserved per-depth counter register *)
             let* trips = int_range 1 4 and* body = block (depth - 1) in
             let ctr = n_regs - 1 - (depth - 1) in
             return
               (Workloads.Shape.counted_loop ~ctr ~trips:(Builder.imm trips)
                  ~name:(fresh ()) body)) ]
      in
      return (items @ tail)
  in
  let* body = block 2 in
  let items =
    body
    @ [ Builder.store ~ofs:0x10000000 Instr.Global (Instr.Reg 0) (Builder.r 1);
        Builder.exit_ ]
  in
  return (Builder.assemble ~name:"gen" items)

(* --- simulation shorthands --------------------------------------------- *)

let small_arch =
  { Gpu_uarch.Arch_config.gtx480 with n_sms = 1; dram_interval = 1.0 }

let run_with ?(arch = small_arch) ?(grid = 2) ?(threads = 64) ?(params = [||])
    policy prog =
  let kernel =
    Gpu_sim.Kernel.make ~name:"t" ~grid_ctas:grid ~cta_threads:threads ~params prog
  in
  let config =
    { (Gpu_sim.Gpu.default_config arch policy) with
      Gpu_sim.Gpu.record_stores = true;
      max_cycles = 2_000_000 }
  in
  Gpu_sim.Gpu.run config kernel

let static_policy prog =
  Gpu_sim.Policy.Static { regs_per_thread = prog.Program.n_regs }

(* Observable behaviour: per-warp store traces. *)
let traces stats = Gpu_sim.Stats.store_traces stats

let check_same_traces msg a b =
  (* Delegates to the library's own differ so the tests and the fuzz
     oracle agree on what "same behaviour" means. *)
  match Regmutex.Checker.diff_store_traces ~expected:a ~actual:b with
  | None -> ()
  | Some diff -> Alcotest.failf "%s: %s" msg diff

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
