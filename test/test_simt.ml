(* The SIMT execution subsystem: lane-resolved register values, predicated
   execution under an active mask, and the IPDOM reconvergence stack.
   Covers the reconvergence table, per-lane store traces through diamonds
   and data-dependent loops, the warp-uniform equivalence contract (a
   program that never reads [%laneid] is bit-identical under both
   execution models), the corrupt-mask fault-injection hook, and the
   divergent registry kernel. *)

open Gpu_isa
module Stats = Gpu_sim.Stats
module Runner = Regmutex.Runner
module Technique = Regmutex.Technique
module Checker = Regmutex.Checker

let warp_size = Util.small_arch.Gpu_uarch.Arch_config.warp_size

(* Like {!Util.run_with} but under the per-lane model, with lane-store
   recording on. *)
let run_simt ?(arch = Util.small_arch) ?(grid = 1) ?(threads = 64)
    ?(corrupt_mask = 0) ?(fast_forward = true) prog =
  let kernel =
    Gpu_sim.Kernel.make ~name:"t" ~grid_ctas:grid ~cta_threads:threads
      ~params:[||] prog
  in
  let config =
    { (Gpu_sim.Gpu.default_config arch (Util.static_policy prog)) with
      Gpu_sim.Gpu.record_stores = true;
      simt = true;
      corrupt_mask;
      fast_forward;
      max_cycles = 2_000_000 }
  in
  Gpu_sim.Gpu.run config kernel

(* Each lane takes one of two arms on its own parity and stores a
   lane-derived value at a thread-unique address. *)
let lane_diamond =
  Builder.(
    assemble ~name:"lane_diamond"
      [ mov 0 lane_id;
        and_ 1 (r 0) (imm 1);
        bz (r 1) "even";
        mul 2 (r 0) (imm 3);      (* odd lanes: 3*lane *)
        bra "join";
        label "even";
        add 2 (r 0) (imm 100);    (* even lanes: lane+100 *)
        label "join";
        add 3 tid lane_id;
        mul 3 (r 3) (imm 4);
        store ~ofs:0x10000000 Instr.Global (r 3) (r 2);
        exit_ ])

let test_lane_diamond () =
  let stats = run_simt ~grid:1 ~threads:64 lane_diamond in
  let traces = Stats.lane_store_traces stats in
  Alcotest.(check int) "one trace per lane" 64 (List.length traces);
  List.iter
    (fun ((cta, w, l), stores) ->
      Alcotest.(check int) "single CTA" 0 cta;
      let expected_value = if l land 1 = 1 then 3 * l else l + 100 in
      let expected_addr = 0x10000000 + (4 * ((w * warp_size) + l)) in
      Alcotest.(check (list (triple Util.instr_space int int)))
        (Printf.sprintf "warp %d lane %d" w l)
        [ (Instr.Global, expected_addr, expected_value) ]
        stores)
    traces

(* Lane l runs the loop (l mod 4)+1 times, storing once per trip — the
   reconvergence stack must keep the slow lanes live while the fast lanes
   sit predicated off. *)
let lane_loop =
  Builder.(
    assemble ~name:"lane_loop"
      ([ mov 0 lane_id;
         and_ 2 (r 0) (imm 3);
         add 2 (r 2) (imm 1);
         add 3 tid lane_id;
         mul 3 (r 3) (imm 4) ]
      @ Workloads.Shape.counted_loop ~ctr:5 ~trips:(r 2) ~name:"l"
          [ store ~ofs:0x10000000 Instr.Global (r 3) (r 0) ]
      @ [ exit_ ]))

let test_lane_loop_trips () =
  let stats = run_simt ~grid:1 ~threads:64 lane_loop in
  let traces = Stats.lane_store_traces stats in
  Alcotest.(check int) "one trace per lane" 64 (List.length traces);
  List.iter
    (fun ((_, w, l), stores) ->
      Alcotest.(check int)
        (Printf.sprintf "warp %d lane %d trip count" w l)
        ((l land 3) + 1)
        (List.length stores);
      List.iter
        (fun (_, _, v) ->
          Alcotest.(check int) "stored its lane id" l v)
        stores)
    traces;
  Alcotest.(check bool) "fast lanes sat predicated off" true
    (stats.Stats.predicated_lane_cycles > 0)

(* A branch all active lanes agree on must not split the warp: no
   divergence counted, no lanes predicated off, and the dead arm's store
   never lands. *)
let test_uniform_branch_no_divergence () =
  let prog =
    Builder.(
      assemble ~name:"uniform_branch"
        [ mov 0 (imm 1);
          bz (r 0) "dead";            (* never taken: r0 is 1 everywhere *)
          add 1 tid lane_id;
          mul 1 (r 1) (imm 4);
          store ~ofs:0x10000000 Instr.Global (r 1) (imm 7);
          bra "end";
          label "dead";
          store ~ofs:0x20000000 Instr.Global (imm 0) (imm 666);
          label "end";
          exit_ ])
  in
  let stats = run_simt ~grid:1 ~threads:64 prog in
  Alcotest.(check int) "no divergent branches" 0 stats.Stats.divergent_branches;
  Alcotest.(check int) "no predicated-off lanes" 0
    stats.Stats.predicated_lane_cycles;
  List.iter
    (fun (_, stores) ->
      List.iter
        (fun (_, _, v) ->
          Alcotest.(check int) "dead arm never stored" 7 v)
        stores)
    (Stats.lane_store_traces stats)

(* The reconvergence table: the diamond's branch reconverges at the first
   join instruction; everything that is not a conditional branch holds the
   sentinel. *)
let test_reconv_table_diamond () =
  let module Reconv = Gpu_analysis.Reconv in
  let table = Reconv.table Util.diamond in
  let sentinel = Reconv.sentinel Util.diamond in
  Alcotest.(check int) "one entry per instruction"
    (Program.length Util.diamond)
    (Array.length table);
  (* 0 mov, 1 mov, 2 and, 3 bz, 4 add, 5 bra, 6 sub, 7 store, 8 exit:
     the bz at 3 reconverges at the join store (7). *)
  Alcotest.(check int) "diamond branch reconverges at the join" 7 table.(3);
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.Jump_if _ | Instr.Jump_ifz _ -> ()
      | _ ->
          Alcotest.(check int)
            (Printf.sprintf "non-conditional pc %d holds the sentinel" i)
            sentinel table.(i))
    Util.diamond.Program.body

let test_reconv_table_workloads () =
  let module Reconv = Gpu_analysis.Reconv in
  List.iter
    (fun spec ->
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      let table = Reconv.table prog in
      let len = Program.length prog in
      let sentinel = Reconv.sentinel prog in
      Alcotest.(check int)
        (spec.Workloads.Spec.name ^ ": table length")
        len (Array.length table);
      Array.iteri
        (fun i instr ->
          match instr with
          | Instr.Jump_if _ | Instr.Jump_ifz _ ->
              Alcotest.(check bool)
                (Printf.sprintf "%s pc %d: reconvergence pc in range"
                   spec.Workloads.Spec.name i)
                true
                (table.(i) = sentinel || (table.(i) > i && table.(i) <= len))
          | _ ->
              Alcotest.(check int)
                (Printf.sprintf "%s pc %d: sentinel" spec.Workloads.Spec.name i)
                sentinel table.(i))
        prog.Program.body)
    (Workloads.Registry.all @ Workloads.Registry.divergent)

(* The subsystem's core contract: a warp-uniform program (the Table I
   kernels never read [%laneid]) produces the same run fingerprint under
   the warp-uniform and per-lane models, in both stepping modes. *)
let test_warp_uniform_fingerprints () =
  let cfg = Experiments.Exp_config.quick in
  let simt = { Technique.default_options with Technique.simt = true } in
  List.iter
    (fun spec ->
      let arch = Experiments.Exp_config.eval_arch cfg spec in
      let kernel = Experiments.Exp_config.kernel_of cfg spec in
      List.iter
        (fun t ->
          let fp r = Runner.fingerprint r in
          let uniform = fp (Runner.execute arch t kernel) in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: simt ff = uniform" spec.Workloads.Spec.name
               (Technique.name t))
            uniform
            (fp (Runner.execute ~options:simt arch t kernel));
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: simt bf = uniform" spec.Workloads.Spec.name
               (Technique.name t))
            uniform
            (fp
               (Runner.execute ~options:simt ~fast_forward:false arch t kernel)))
        [ Technique.Baseline; Technique.Regmutex ])
    [ List.nth Workloads.Registry.figure1 0;
      List.nth Workloads.Registry.figure1 1 ]

(* A bar.sync under a divergent arm: real SIMT hardware gives it no
   meaning (the lanes that branched around it never arrive). This model's
   barrier counts warps, not lanes, so the partially-masked warp still
   arrives with the rest of its CTA and the kernel terminates — pin that
   down, identically in both stepping modes. (The fuzz generator still
   keeps its divergent family barrier-free: warp-level arrival under a
   partial mask is a modelling choice, not a semantics the differential
   oracle should depend on.) *)
let test_divergent_barrier_terminates () =
  let prog =
    Builder.(
      assemble ~name:"divbar"
        [ mov 0 lane_id;
          and_ 1 (r 0) (imm 1);
          bz (r 1) "skip";
          bar;                       (* odd lanes' arm *)
          label "skip";
          add 2 tid lane_id;
          mul 2 (r 2) (imm 4);
          store ~ofs:0x10000000 Instr.Global (r 2) (r 0);
          exit_ ])
  in
  let ff = run_simt ~grid:1 ~threads:64 prog in
  let bf = run_simt ~grid:1 ~threads:64 ~fast_forward:false prog in
  Alcotest.(check bool) "warps actually split" true
    (ff.Stats.divergent_branches > 0);
  Alcotest.(check int) "same cycle count in both modes" ff.Stats.cycles
    bf.Stats.cycles;
  (match
     Checker.diff_lane_store_traces
       ~expected:(Stats.lane_store_traces ff)
       ~actual:(Stats.lane_store_traces bf)
   with
  | None -> ()
  | Some d -> Alcotest.failf "ff/bf lane traces differ: %s" d)

(* The fuzz oracle's fault hook: clearing a lane from every initial mask
   must be visible in the lane-resolved traces (the cleared lane stores
   nothing) and invisible when nothing is corrupted. *)
let test_corrupt_mask_detected () =
  let clean = Stats.lane_store_traces (run_simt ~grid:1 ~threads:64 lane_diamond) in
  let corrupt =
    Stats.lane_store_traces
      (run_simt ~grid:1 ~threads:64 ~corrupt_mask:2 lane_diamond)
  in
  (match Checker.diff_lane_store_traces ~expected:clean ~actual:clean with
  | None -> ()
  | Some d -> Alcotest.failf "clean trace differs from itself: %s" d);
  (match Checker.diff_lane_store_traces ~expected:clean ~actual:corrupt with
  | None -> Alcotest.fail "corrupted lane 1 escaped the lane differ"
  | Some _ -> ());
  List.iter
    (fun ((_, _, l), stores) ->
      if l = 1 then
        Alcotest.(check int) "corrupted lane stored nothing" 0
          (List.length stores))
    corrupt

(* The divergent registry kernel really diverges: a valid spec whose
   baseline SIMT run splits warps and predicates lanes off. *)
let test_bfs_frontier_diverges () =
  let spec = Workloads.Registry.find "BFS-Frontier" in
  (match Workloads.Spec.validate spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "BFS-Frontier spec invalid: %s" e);
  let cfg = Experiments.Exp_config.quick in
  let simt = { Technique.default_options with Technique.simt = true } in
  let run =
    Runner.execute ~options:simt
      (Experiments.Exp_config.eval_arch cfg spec)
      Technique.Baseline
      (Experiments.Exp_config.kernel_of cfg spec)
  in
  Alcotest.(check bool) "divergent branches" true
    (run.Runner.stats.Stats.divergent_branches > 0);
  Alcotest.(check bool) "lanes predicated off" true
    (run.Runner.stats.Stats.predicated_lane_cycles > 0)

let test_laneid_roundtrip () =
  let prog = lane_diamond in
  Alcotest.check Util.program "parse (print p) = p" prog
    (Parser.parse ~name:prog.Program.name
       (Format.asprintf "%a" Program.pp prog));
  Alcotest.check Util.program "decode (encode p) = p" prog
    (Codec.decode_program ~name:prog.Program.name (Codec.encode_program prog))

let suite =
  [ Alcotest.test_case "lane-resolved diamond stores" `Quick test_lane_diamond;
    Alcotest.test_case "data-dependent loop trip counts" `Quick
      test_lane_loop_trips;
    Alcotest.test_case "uniform branches never split" `Quick
      test_uniform_branch_no_divergence;
    Alcotest.test_case "reconvergence table on the diamond" `Quick
      test_reconv_table_diamond;
    Alcotest.test_case "reconvergence table on the registry" `Quick
      test_reconv_table_workloads;
    Alcotest.test_case "warp-uniform fingerprint equality" `Slow
      test_warp_uniform_fingerprints;
    Alcotest.test_case "divergent-arm barrier terminates" `Quick
      test_divergent_barrier_terminates;
    Alcotest.test_case "corrupt-mask fault is lane-visible" `Quick
      test_corrupt_mask_detected;
    Alcotest.test_case "BFS-Frontier spec diverges" `Slow
      test_bfs_frontier_diverges;
    Alcotest.test_case "%laneid round-trips" `Quick test_laneid_roundtrip ]
