open Gpu_sim
module Arch_config = Gpu_uarch.Arch_config

let arch = Arch_config.gtx480

let test_make_validation () =
  Alcotest.check_raises "empty grid" (Invalid_argument "Kernel.make: empty grid")
    (fun () ->
      ignore (Kernel.make ~name:"t" ~grid_ctas:0 ~cta_threads:32 Util.straight));
  Alcotest.check_raises "empty CTA" (Invalid_argument "Kernel.make: empty CTA")
    (fun () ->
      ignore (Kernel.make ~name:"t" ~grid_ctas:1 ~cta_threads:0 Util.straight));
  (* A program referencing no registers used to be silently patched up to
     one phantom register at warp creation; now it fails at launch. *)
  let reg_less =
    Gpu_isa.Builder.(assemble ~name:"regless" [ acquire; release; exit_ ])
  in
  Alcotest.(check int) "builder really produced n_regs = 0" 0
    reg_less.Gpu_isa.Program.n_regs;
  Alcotest.check_raises "register-less program"
    (Invalid_argument "Kernel.make: program references no registers (n_regs = 0)")
    (fun () ->
      ignore (Kernel.make ~name:"t" ~grid_ctas:1 ~cta_threads:32 reg_less));
  Alcotest.check_raises "register-less swap"
    (Invalid_argument "Kernel.make: program references no registers (n_regs = 0)")
    (fun () ->
      let k = Kernel.make ~name:"t" ~grid_ctas:1 ~cta_threads:32 Util.straight in
      ignore (Kernel.with_program k reg_less))

let test_derived_metadata () =
  let k =
    Kernel.make ~name:"t" ~grid_ctas:4 ~cta_threads:100 ~shmem_bytes:1000
      ~params:[| 7 |] Util.straight
  in
  Alcotest.(check int) "regs" 3 (Kernel.regs_per_thread k);
  Alcotest.(check int) "warps per cta (ragged)" 4 (Kernel.warps_per_cta arch k);
  let d = Kernel.demand k in
  Alcotest.(check int) "demand regs" 3 d.Gpu_uarch.Occupancy.regs_per_thread;
  Alcotest.(check int) "demand shmem" 1000 d.Gpu_uarch.Occupancy.shmem_bytes;
  Alcotest.(check int) "demand threads" 100 d.Gpu_uarch.Occupancy.cta_threads

let test_with_program () =
  let k = Kernel.make ~name:"t" ~grid_ctas:2 ~cta_threads:64 Util.straight in
  let k' = Kernel.with_program k Util.loop in
  Alcotest.(check string) "program swapped" "loop"
    k'.Kernel.program.Gpu_isa.Program.name;
  Alcotest.(check int) "grid preserved" 2 k'.Kernel.grid_ctas

(* Policy admission accounting (per-CTA registers). *)
let test_policy_accounting () =
  let per ?(wpc = 8) p = Policy.regs_per_cta arch p ~warps_per_cta:wpc in
  (* Static rounds to the allocation granularity: 21 -> 24. *)
  Alcotest.(check int) "static rounded" (24 * 32 * 8)
    (per (Policy.Static { regs_per_thread = 21 }));
  (* SRP reserves only the base set. *)
  Alcotest.(check int) "srp base only" (18 * 32 * 8)
    (per (Policy.Srp { bs = 18; es = 6; verify = false }));
  (* Paired and OWF add one extended set per warp pair. *)
  Alcotest.(check int) "paired adds es per pair"
    ((18 * 32 * 8) + (6 * 32 * 4))
    (per (Policy.Srp_paired { bs = 18; es = 6; verify = false }));
  Alcotest.(check int) "owf same accounting"
    ((18 * 32 * 8) + (6 * 32 * 4))
    (per (Policy.Owf { bs = 18; es = 6 }));
  (* Odd warp counts round the pair count up. *)
  Alcotest.(check int) "odd warps, ceil pairs"
    ((18 * 32 * 3) + (6 * 32 * 2))
    (per ~wpc:3 (Policy.Owf { bs = 18; es = 6 }));
  (* RFV reserves nothing at admission. *)
  Alcotest.(check int) "rfv dynamic" 0 (per (Policy.Rfv { live = [||]; max_live = 20 }))

let test_policy_names () =
  Alcotest.(check string) "static" "baseline"
    (Policy.name (Policy.Static { regs_per_thread = 8 }));
  Alcotest.(check string) "srp" "regmutex"
    (Policy.name (Policy.Srp { bs = 1; es = 1; verify = false }));
  Alcotest.(check string) "paired" "regmutex-paired"
    (Policy.name (Policy.Srp_paired { bs = 1; es = 1; verify = false }));
  Alcotest.(check string) "owf" "owf" (Policy.name (Policy.Owf { bs = 1; es = 1 }));
  Alcotest.(check string) "rfv" "rfv"
    (Policy.name (Policy.Rfv { live = [||]; max_live = 1 }))

let test_spec_helpers () =
  let bfs = Workloads.Registry.find "BFS" in
  Alcotest.(check int) "paper es" 6 (Workloads.Spec.paper_es bfs);
  match Workloads.Spec.validate bfs with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let suite =
  [ Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "derived metadata" `Quick test_derived_metadata;
    Alcotest.test_case "with_program" `Quick test_with_program;
    Alcotest.test_case "policy admission accounting" `Quick test_policy_accounting;
    Alcotest.test_case "policy names" `Quick test_policy_names;
    Alcotest.test_case "spec helpers" `Quick test_spec_helpers ]
