open Regmutex
module I = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Liveness = Gpu_analysis.Liveness

let test_permute_identity () =
  let perm = Array.init Util.straight.Program.n_regs (fun r -> r) in
  Alcotest.check Util.program "identity permutation" Util.straight
    (Compaction.permute Util.straight perm)

let test_permute_swap () =
  let p =
    Program.create ~name:"t"
      [| I.Mov (0, I.Imm 1); I.Bin (I.Add, 1, I.Reg 0, I.Imm 2);
         I.Store (I.Global, I.Imm 64, I.Reg 1, 0); I.Exit |]
  in
  let swapped = Compaction.permute p [| 1; 0 |] in
  Alcotest.check Util.instr "r0 became r1" (I.Mov (1, I.Imm 1)) (Program.get swapped 0);
  Alcotest.check Util.instr "r1 became r0"
    (I.Bin (I.Add, 0, I.Reg 1, I.Imm 2))
    (Program.get swapped 1)

let test_permute_invalid () =
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Compaction.permute: not a permutation") (fun () ->
      ignore (Compaction.permute Util.straight [| 0; 0; 1 |]));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Compaction.permute: permutation length mismatch") (fun () ->
      ignore (Compaction.permute Util.straight [| 0 |]))

let prop_permute_preserves_semantics =
  Util.qtest ~count:40 "random permutation preserves behaviour"
    QCheck2.Gen.(pair (Util.gen_structured ~n_regs:6) (int_bound 1000))
    (fun (prog, salt) ->
      let n = prog.Program.n_regs in
      (* A salt-derived rotation is always a permutation. *)
      let perm = Array.init n (fun r -> (r + salt) mod n) in
      let prog' = Compaction.permute prog perm in
      let s1 = Util.run_with (Util.static_policy prog) prog in
      let s2 = Util.run_with (Util.static_policy prog') prog' in
      Util.traces s1 = Util.traces s2)

let test_pressure_ranking_exiles_peak_regs () =
  (* Base registers r0/r1 live everywhere; r2/r3 live only at the peak.
     With bs = 2 the ranking must place r2/r3 at indices >= 2. *)
  let p =
    Program.create ~name:"t"
      [| I.Mov (0, I.Imm 1);
         I.Mov (1, I.Imm 2);
         I.Bin (I.Add, 2, I.Reg 0, I.Reg 1);
         I.Bin (I.Add, 3, I.Reg 2, I.Reg 1);
         I.Bin (I.Add, 0, I.Reg 2, I.Reg 3);
         I.Store (I.Global, I.Imm 64, I.Reg 0, 0);
         I.Bin (I.Add, 1, I.Reg 0, I.Reg 1);
         I.Store (I.Global, I.Imm 65, I.Reg 1, 0);
         I.Exit |]
  in
  let liveness = Liveness.analyze p in
  let perm = Compaction.pressure_ranking ~bs:2 p liveness in
  Alcotest.(check bool) "r0 stays low" true (perm.(0) < 2);
  Alcotest.(check bool) "r1 stays low" true (perm.(1) < 2);
  Alcotest.(check bool) "r2 exiled" true (perm.(2) >= 2);
  Alcotest.(check bool) "r3 exiled" true (perm.(3) >= 2)

let test_pressure_ranking_prefers_covered_ranges () =
  (* Two candidates for exile: r3 lives only inside the high-pressure
     window; r4 lives at five extra low-pressure instructions. With one
     slot above bs, r3 must be exiled, not r4. *)
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"t"
        [ mov 0 (imm 1);
          mov 1 (imm 2);
          mov 4 (imm 3);            (* r4: long low-pressure range *)
          add 2 (r 0) (r 1);
          add 3 (r 2) (r 4);        (* peak: r0..r4 live *)
          add 0 (r 3) (r 2);
          store Gpu_isa.Instr.Global (imm 64) (r 0);
          add 1 (r 4) (imm 1);      (* r4 still live here, low pressure *)
          store Gpu_isa.Instr.Global (imm 65) (r 1);
          exit_ ])
  in
  let liveness = Liveness.analyze p in
  let perm = Compaction.pressure_ranking ~bs:4 p liveness in
  Alcotest.(check bool) "peak-only register exiled" true (perm.(3) = 4);
  Alcotest.(check bool) "long-lived temp stays low" true (perm.(4) < 4)

let test_mov_compact_simple () =
  (* r3 (high for bs=3) stays live after the pressure drops; compaction
     should move it into a free low slot. *)
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"t"
        [ mov 0 (imm 1);
          mov 1 (imm 2);
          add 2 (r 0) (r 1);
          add 3 (r 2) (r 1);         (* peak: r0..r3 live *)
          add 0 (r 2) (r 3);         (* r2 dies; r3 lives on *)
          store Gpu_isa.Instr.Global (imm 64) (r 0);
          add 1 (r 3) (imm 7);       (* late use of r3 at low pressure *)
          store Gpu_isa.Instr.Global (imm 65) (r 1);
          exit_ ])
  in
  let compacted, moves = Compaction.mov_compact ~bs:3 p in
  Alcotest.(check bool) "at least one move" true (moves >= 1);
  (* Semantics preserved. *)
  let s1 = Util.run_with ~grid:1 ~threads:32 (Util.static_policy p) p in
  let s2 = Util.run_with ~grid:1 ~threads:32 (Util.static_policy compacted) compacted in
  Util.check_same_traces "mov compaction" (Util.traces s1) (Util.traces s2)

let test_mov_compact_skips_loop_headers () =
  (* Regression: a live high register whose low-pressure range starts at a
     loop header must NOT be moved — the back edge would re-execute the
     inserted Mov and clobber the renamed loop counter (found by the
     random-program equivalence property). *)
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"t"
        [ mov 0 (imm 0);
          mov 1 (imm 0);
          mov 2 (imm 0);
          add 3 (r 0) (r 1);        (* pressure peak with r3 *)
          add 0 (r 3) (r 2);
          mov 3 (imm 2);            (* high reg re-used as loop counter *)
          label "loop";             (* header: r3 live, pressure low *)
          add 1 (r 1) (imm 5);
          sub 3 (r 3) (imm 1);
          bnz (r 3) "loop";
          store Gpu_isa.Instr.Global (imm 64) (r 1);
          exit_ ])
  in
  let compacted, _moves = Compaction.mov_compact ~bs:3 p in
  let s1 = Util.run_with ~grid:1 ~threads:32 (Util.static_policy p) p in
  let s2 = Util.run_with ~grid:1 ~threads:32 (Util.static_policy compacted) compacted in
  Alcotest.(check bool) "no timeout" false s2.Gpu_sim.Stats.timed_out;
  Util.check_same_traces "loop-header safety" (Util.traces s1) (Util.traces s2)

let test_mov_compact_no_opportunity () =
  let _, moves = Compaction.mov_compact ~bs:3 Util.straight in
  Alcotest.(check int) "nothing to move" 0 moves

let prop_mov_compact_preserves_semantics =
  Util.qtest ~count:30 "mov compaction preserves behaviour"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let liveness = Liveness.analyze prog in
      let bs = max 1 (Liveness.max_pressure liveness - 2) in
      let prog', _ = Compaction.mov_compact ~bs prog in
      let s1 = Util.run_with (Util.static_policy prog) prog in
      let s2 = Util.run_with (Util.static_policy prog') prog' in
      Util.traces s1 = Util.traces s2)

let test_release_with_zero_live_ext () =
  (* Edge case: every extended register dies inside the region, so the
     release point has nothing live above |Bs| — compaction must insert no
     MOV, the injector must still close the region with a Release, and the
     poison the simulator writes on release must be invisible. *)
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"t"
        [ mov 0 (imm 1);
          mov 1 (imm 2);
          mov 2 (imm 3);
          add 3 (r 0) (r 1);         (* ext for bs=3 *)
          add 4 (r 3) (r 2);         (* peak: r0..r4 live *)
          add 0 (r 3) (r 4);         (* both ext registers die here *)
          store Gpu_isa.Instr.Global (imm 64) (r 0);
          store Gpu_isa.Instr.Global (imm 65) (r 1);
          store Gpu_isa.Instr.Global (imm 66) (r 2);
          exit_ ])
  in
  let plan = Transform.apply ~bs:3 ~es:2 p in
  Alcotest.(check int) "no MOV needed" 0 plan.Transform.n_movs;
  Alcotest.(check bool) "region closed" true (plan.Transform.n_releases >= 1);
  let s1 = Util.run_with ~grid:1 ~threads:64 (Util.static_policy p) p in
  let s2 =
    Util.run_with ~grid:1 ~threads:64
      (Gpu_sim.Policy.Srp { bs = 3; es = 2; verify = true })
      plan.Transform.transformed
  in
  Util.check_same_traces "zero-live-ext release" (Util.traces s1) (Util.traces s2)

let test_acquire_region_in_loop_body () =
  (* Edge case: the extended region sits inside a counted loop whose
     counter and accumulators occupy every base register, so compaction
     cannot dissolve the region — each iteration must re-acquire and the
     result must match the untransformed kernel. *)
  let trips = 3 in
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"t"
        ([ mov 1 (imm 0); mov 2 (imm 7) ]
        @ Workloads.Shape.counted_loop ~ctr:0 ~trips:(imm trips) ~name:"l"
            [ add 3 (r 1) (r 2);     (* ext for bs=3 *)
              add 4 (r 3) (r 2);
              add 1 (r 3) (r 4) ]    (* both die before the latch *)
        @ [ store Gpu_isa.Instr.Global (imm 64) (r 1);
            store Gpu_isa.Instr.Global (imm 65) (r 2);
            exit_ ]))
  in
  let plan = Transform.apply ~bs:3 ~es:2 p in
  Alcotest.(check bool) "region survives compaction" true
    (plan.Transform.n_acquires >= 1);
  let s1 = Util.run_with ~grid:1 ~threads:64 (Util.static_policy p) p in
  let s2 =
    Util.run_with ~grid:1 ~threads:64
      (Gpu_sim.Policy.Srp { bs = 3; es = 2; verify = true })
      plan.Transform.transformed
  in
  (* Two warps, [trips] iterations each: the acquire must execute once per
     iteration, not once per warp. *)
  Alcotest.(check bool) "re-acquired on every iteration" true
    (s2.Gpu_sim.Stats.acquire_execs >= 2 * trips);
  Util.check_same_traces "loop-nested region" (Util.traces s1) (Util.traces s2)

let suite =
  [ Alcotest.test_case "permute identity" `Quick test_permute_identity;
    Alcotest.test_case "permute swap" `Quick test_permute_swap;
    Alcotest.test_case "permute validation" `Quick test_permute_invalid;
    prop_permute_preserves_semantics;
    Alcotest.test_case "ranking exiles peak-only registers" `Quick
      test_pressure_ranking_exiles_peak_regs;
    Alcotest.test_case "ranking minimises new acquire coverage" `Quick
      test_pressure_ranking_prefers_covered_ranges;
    Alcotest.test_case "mov compaction moves a live high register" `Quick
      test_mov_compact_simple;
    Alcotest.test_case "mov compaction: no opportunity" `Quick
      test_mov_compact_no_opportunity;
    Alcotest.test_case "mov compaction: loop-header regression" `Quick
      test_mov_compact_skips_loop_headers;
    prop_mov_compact_preserves_semantics;
    Alcotest.test_case "release point with zero live extended registers" `Quick
      test_release_with_zero_live_ext;
    Alcotest.test_case "acquire region nested in a loop body" `Quick
      test_acquire_region_in_loop_body ]
