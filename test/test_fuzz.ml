(* The fuzzing subsystem's own tests: generator determinism, round-trip
   properties over generated programs, a clean oracle sweep, the
   forward-progress watchdog, and the injection → catch → shrink loop that
   proves the oracle can actually detect a broken transform. *)

module Program = Gpu_isa.Program
module Instr = Gpu_isa.Instr
module Parser = Gpu_isa.Parser
module Codec = Gpu_isa.Codec

let test_rng_determinism () =
  let a = Fuzz.Rng.of_seed 42 and b = Fuzz.Rng.of_seed 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Fuzz.Rng.int a 1000) (Fuzz.Rng.int b 1000)
  done;
  (* A split stream must not disturb (or follow) its parent. *)
  let c = Fuzz.Rng.of_seed 42 and d = Fuzz.Rng.of_seed 42 in
  let c' = Fuzz.Rng.split c in
  ignore (Fuzz.Rng.int c' 1000);
  ignore (Fuzz.Rng.int d 1000);
  Alcotest.(check int) "parent advanced identically by split"
    (Fuzz.Rng.int d 1000) (Fuzz.Rng.int c 1000)

let test_gen_determinism () =
  for seed = 0 to 30 do
    let a = Fuzz.Gen.generate ~seed and b = Fuzz.Gen.generate ~seed in
    Alcotest.check Util.program "same program" a.Fuzz.Gen.program b.Fuzz.Gen.program;
    Alcotest.(check int) "same grid" a.Fuzz.Gen.grid b.Fuzz.Gen.grid;
    Alcotest.(check int) "same threads" a.Fuzz.Gen.threads b.Fuzz.Gen.threads;
    Alcotest.(check (array int)) "same params" a.Fuzz.Gen.params b.Fuzz.Gen.params
  done

let test_gen_shapes () =
  (* Structural guarantees the oracle relies on. *)
  let seen_barrier = ref false
  and seen_pressure = ref false
  and seen_divergent = ref false in
  for seed = 0 to 50 do
    let case = Fuzz.Gen.generate ~seed in
    let prog = case.Fuzz.Gen.program in
    Alcotest.(check bool) "warp-pairable thread count" true
      (case.Fuzz.Gen.threads mod 64 = 0);
    (match case.Fuzz.Gen.family with
    | Fuzz.Gen.Barrier ->
        seen_barrier := true;
        Alcotest.(check bool) "barrier family has a barrier" true
          (Program.count (fun i -> i = Instr.Bar) prog >= 1)
    | Fuzz.Gen.Pressure ->
        seen_pressure := true;
        Alcotest.(check int) "pressure family is barrier-free" 0
          (Program.count (fun i -> i = Instr.Bar) prog)
    | Fuzz.Gen.Divergent ->
        seen_divergent := true;
        (* Barrier-free (a divergent-arm barrier has no portable SIMT
           semantics) and genuinely lane-dependent: the program must read
           [%laneid]. *)
        Alcotest.(check int) "divergent family is barrier-free" 0
          (Program.count (fun i -> i = Instr.Bar) prog);
        let printed = Format.asprintf "%a" Program.pp prog in
        let contains sub =
          let n = String.length printed and m = String.length sub in
          let rec go i = i + m <= n && (String.sub printed i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "divergent family reads %laneid" true
          (contains "%laneid"));
    Alcotest.(check bool) "stores something" true
      (Program.count (function Instr.Store _ -> true | _ -> false) prog >= 1)
  done;
  Alcotest.(check bool) "all three families exercised" true
    (!seen_barrier && !seen_pressure && !seen_divergent)

let test_roundtrips_over_generated () =
  (* Satellite property: the printer, parser and binary codec agree on
     every program the fuzzer can produce. *)
  for seed = 0 to 60 do
    let prog = (Fuzz.Gen.generate ~seed).Fuzz.Gen.program in
    let reparsed =
      Parser.parse ~name:prog.Program.name (Format.asprintf "%a" Program.pp prog)
    in
    Alcotest.check Util.program
      (Printf.sprintf "parse (print p) = p (seed %d)" seed)
      prog reparsed;
    Alcotest.(check bool)
      (Printf.sprintf "generated programs are encodable (seed %d)" seed)
      true (Codec.encodable prog);
    Alcotest.check Util.program
      (Printf.sprintf "decode (encode p) = p (seed %d)" seed)
      prog
      (Codec.decode_program ~name:prog.Program.name (Codec.encode_program prog))
  done

let test_oracle_clean_sweep () =
  for seed = 0 to 14 do
    let _, report = Fuzz.Oracle.test_seed seed in
    List.iter
      (fun f ->
        Alcotest.failf "seed %d: %s" seed
          (Format.asprintf "%a" Fuzz.Oracle.pp_failure f))
      report.Fuzz.Oracle.failures
  done

let test_deadlock_guard () =
  (* An SRP with zero sections and a kernel that acquires: no warp can
     ever issue again and no wakeup exists — the simulator must raise the
     structured Deadlock, identically in both stepping modes. *)
  let prog =
    Program.create ~name:"dl"
      [| Instr.Acquire; Instr.Mov (0, Instr.Imm 1); Instr.Release; Instr.Exit |]
  in
  let arch =
    { Util.small_arch with Gpu_uarch.Arch_config.regfile_regs = 32; max_ctas = 1 }
  in
  let kern =
    Gpu_sim.Kernel.make ~name:"dl" ~grid_ctas:1 ~cta_threads:32 ~params:[||] prog
  in
  let policy = Gpu_sim.Policy.Srp { bs = 1; es = 1; verify = false } in
  let cycle_of fast_forward =
    let config =
      { (Gpu_sim.Gpu.default_config arch policy) with
        Gpu_sim.Gpu.max_cycles = 10_000;
        fast_forward }
    in
    match Gpu_sim.Gpu.run config kern with
    | _ -> Alcotest.fail "deadlock not detected"
    | exception Gpu_sim.Gpu.Deadlock info ->
        Alcotest.(check int) "nothing retired" 0 info.Gpu_sim.Gpu.dl_retired;
        Alcotest.(check bool) "per-SM diagnostics present" true
          (info.Gpu_sim.Gpu.dl_sms <> []);
        info.Gpu_sim.Gpu.dl_cycle
  in
  Alcotest.(check int) "same detection cycle in both modes" (cycle_of false)
    (cycle_of true)

let find_caught_injection fault ~max_seed =
  let rec go seed =
    if seed > max_seed then None
    else
      let case, report = Fuzz.Oracle.test_seed ~inject:fault seed in
      if report.Fuzz.Oracle.injected && report.Fuzz.Oracle.failures <> [] then
        Some (case, report)
      else go (seed + 1)
  in
  go 0

let test_injection_caught () =
  List.iter
    (fun fault ->
      match find_caught_injection fault ~max_seed:79 with
      | Some _ -> ()
      | None ->
          Alcotest.failf "fault %s escaped the oracle on seeds 0..79"
            (Fuzz.Oracle.fault_name fault))
    [ Fuzz.Oracle.Drop_acquire; Fuzz.Oracle.Early_release; Fuzz.Oracle.Drop_mov;
      Fuzz.Oracle.Oob_spill; Fuzz.Oracle.Mask_corrupt ]

let test_strict_oob_rule () =
  (* The shared-memory window rule is what catches an escaped spill: find
     a case where the injected out-of-window spill store is flagged as
     [Shared_oob], then prove the rule is what did it by re-running the
     same case with the rule disabled. *)
  let rec go seed =
    if seed > 39 then
      Alcotest.fail "no seed on 0..39 flags oob-spill as shared-oob"
    else
      let case, report = Fuzz.Oracle.test_seed ~inject:Fuzz.Oracle.Oob_spill seed in
      let oob f = f.Fuzz.Oracle.kind = Fuzz.Oracle.Shared_oob in
      if report.Fuzz.Oracle.injected
         && List.exists oob report.Fuzz.Oracle.failures
      then begin
        let relaxed =
          Fuzz.Oracle.test_case ~inject:Fuzz.Oracle.Oob_spill
            ~strict_shared_oob:false case
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: relaxed run reports no shared-oob" seed)
          false
          (List.exists oob relaxed.Fuzz.Oracle.failures)
      end
      else go (seed + 1)
  in
  go 0

let test_shrink_drop_mov () =
  (* The acceptance loop: a disabled compaction MOV must be caught and the
     counterexample delta-debugged below 20 instructions while still
     failing. *)
  match find_caught_injection Fuzz.Oracle.Drop_mov ~max_seed:79 with
  | None -> Alcotest.fail "drop-mov escaped the oracle on seeds 0..79"
  | Some (case, report) ->
      let kind = (List.hd report.Fuzz.Oracle.failures).Fuzz.Oracle.kind in
      let shrunk = Fuzz.Shrink.minimize ~inject:Fuzz.Oracle.Drop_mov ~kind case in
      let len = Program.length shrunk.Fuzz.Gen.program in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d <= 20 instructions" len)
        true (len <= 20);
      let replay = Fuzz.Oracle.test_case ~inject:Fuzz.Oracle.Drop_mov shrunk in
      Alcotest.(check bool) "shrunk case still fails" true
        (List.exists
           (fun f -> f.Fuzz.Oracle.kind = kind)
           replay.Fuzz.Oracle.failures)

let test_corpus_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "regmutex_fuzz_test_%d" (Unix.getpid ()))
  in
  Alcotest.(check (list int)) "empty corpus" [] (Fuzz.Corpus.load_seeds ~dir);
  Fuzz.Corpus.add_seed ~dir ~seed:17 ~kind:Fuzz.Oracle.Divergence;
  Fuzz.Corpus.add_seed ~dir ~seed:4 ~kind:Fuzz.Oracle.Deadlock;
  Fuzz.Corpus.add_seed ~dir ~seed:17 ~kind:Fuzz.Oracle.Divergence;
  Alcotest.(check (list int)) "seeds persisted, deduplicated" [ 17; 4 ]
    (Fuzz.Corpus.load_seeds ~dir);
  let case = Fuzz.Gen.generate ~seed:17 in
  let path =
    Fuzz.Corpus.write_counterexample ~dir case
      [ { Fuzz.Oracle.kind = Fuzz.Oracle.Divergence; detail = "line one\nline two" } ]
  in
  (* The artifact must replay through the ordinary parser ([parse_file]
     names the program after the file, so parse the text with the
     original name for a structural comparison). *)
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let reparsed = Parser.parse ~name:case.Fuzz.Gen.program.Program.name text in
  Alcotest.check Util.program "artifact parses back to the program"
    case.Fuzz.Gen.program reparsed;
  Sys.readdir dir
  |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Unix.rmdir dir

let suite =
  [ Alcotest.test_case "rng determinism and splitting" `Quick test_rng_determinism;
    Alcotest.test_case "generator determinism" `Quick test_gen_determinism;
    Alcotest.test_case "generator structural guarantees" `Quick test_gen_shapes;
    Alcotest.test_case "parser and codec round-trips" `Quick
      test_roundtrips_over_generated;
    Alcotest.test_case "oracle clean on seeds 0..14" `Slow test_oracle_clean_sweep;
    Alcotest.test_case "deadlock watchdog" `Quick test_deadlock_guard;
    Alcotest.test_case "injected faults are caught" `Slow test_injection_caught;
    Alcotest.test_case "strict shared-oob rule is configurable" `Slow
      test_strict_oob_rule;
    Alcotest.test_case "drop-mov shrinks below 20 instructions" `Slow
      test_shrink_drop_mov;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip ]
