(* Equivalence of event-driven fast-forward with brute-force stepping.

   Cycle skipping (Gpu.run_config.fast_forward) must be invisible: every
   statistic, stall attribution, store trace and structured event must be
   bit-identical to stepping the clock one cycle at a time, across every
   register policy, scheduler kind and control-flow shape — including the
   acquire-stall- and barrier-heavy kernels whose wakeups are *not*
   time-driven and must never be skipped over. *)

open Gpu_sim
module B = Gpu_isa.Builder
module I = Gpu_isa.Instr
module E = Event_trace
module Technique = Regmutex.Technique
module Runner = Regmutex.Runner
module Engine = Experiments.Engine

(* --- kernels ----------------------------------------------------------- *)

(* Acquire- and barrier-heavy: SRP traffic and a barrier inside the loop,
   so warps spend most cycles in issue-dependent stalls (the ones with no
   wakeup bound). *)
let contended =
  B.(
    assemble ~name:"contended"
      ([ mul 0 ctaid ntid; add 0 (r 0) tid; mov 1 (imm 0) ]
      @ Workloads.Shape.counted_loop ~ctr:2 ~trips:(imm 3) ~name:"l"
          [ acquire;
            add 3 (r 0) (imm 1);
            add 4 (r 3) (r 1);
            add 1 (r 3) (r 4);
            release;
            bar ]
      @ [ store ~ofs:0x10000000 I.Global (r 0) (r 1); exit_ ]))

(* Memory-latency-bound: dependent global loads, long skippable waits. *)
let chase =
  B.(
    assemble ~name:"chase"
      ([ mul 0 ctaid ntid; add 0 (r 0) tid; mul 2 (r 0) (imm 8); mov 3 (imm 0) ]
      @ Workloads.Shape.counted_loop ~ctr:1 ~trips:(imm 4) ~name:"hop"
          [ load ~ofs:0 I.Global 3 (r 2); load ~ofs:1 I.Global 2 (r 3) ]
      @ [ store ~ofs:0x10000000 I.Global (r 0) (r 2); exit_ ]))

(* Compute/memory mix with a register bulge — exercises RFV's demand
   fluctuation and SRP's acquire window around a memory access. *)
let mixed =
  B.(
    assemble ~name:"mixed"
      ([ mul 0 ctaid ntid; add 0 (r 0) tid; mov 1 (imm 0); mul 2 (r 0) (imm 4) ]
      @ Workloads.Shape.counted_loop ~ctr:3 ~trips:(imm 2) ~name:"it"
          ([ load I.Global 4 (r 2) ]
          @ Workloads.Shape.bulge ~keep:[ 2 ] ~seed:4 ~acc:1 ~first:5 ~last:11
              ~hold:2 ()
          @ [ add 2 (r 2) (imm 4) ])
      @ [ bar; store ~ofs:0x10000000 I.Global (r 0) (r 1); exit_ ]))

let kernels =
  [ ("contended", contended, 64); ("chase", chase, 64); ("mixed", mixed, 64) ]

let techniques =
  [ Technique.Baseline; Technique.Regmutex; Technique.Regmutex_paired;
    Technique.Owf; Technique.Rfv ]

let schedulers =
  [ ("gto", Gpu_uarch.Arch_config.Gto); ("lrr", Gpu_uarch.Arch_config.Lrr);
    ("two-level", Gpu_uarch.Arch_config.Two_level 4) ]

(* --- equality of everything a run can observe -------------------------- *)

let all_reasons =
  Stats.
    [ (Stall_deps, "deps"); (Stall_mem_slot, "mem-slot");
      (Stall_acquire, "acquire"); (Stall_regs, "rfv-regs");
      (Stall_barrier, "barrier"); (Stall_empty, "empty") ]

let check_same_stats msg (a : Stats.t) (b : Stats.t) =
  let ck name va vb = Alcotest.(check int) (msg ^ ": " ^ name) va vb in
  ck "cycles" a.Stats.cycles b.Stats.cycles;
  ck "instructions" a.Stats.instructions b.Stats.instructions;
  ck "resident_warp_cycles" a.Stats.resident_warp_cycles b.Stats.resident_warp_cycles;
  ck "warp_capacity_cycles" a.Stats.warp_capacity_cycles b.Stats.warp_capacity_cycles;
  ck "acquire_execs" a.Stats.acquire_execs b.Stats.acquire_execs;
  ck "acquire_first_try" a.Stats.acquire_first_try b.Stats.acquire_first_try;
  ck "acquire_stall_cycles" a.Stats.acquire_stall_cycles b.Stats.acquire_stall_cycles;
  ck "release_execs" a.Stats.release_execs b.Stats.release_execs;
  ck "shared_oob" a.Stats.shared_oob b.Stats.shared_oob;
  ck "ctas_retired" a.Stats.ctas_retired b.Stats.ctas_retired;
  Alcotest.(check bool) (msg ^ ": timed_out") a.Stats.timed_out b.Stats.timed_out;
  List.iter
    (fun (reason, name) ->
      ck ("stall[" ^ name ^ "]") (Stats.stall_count a reason)
        (Stats.stall_count b reason))
    all_reasons;
  Alcotest.(check (list int)) (msg ^ ": pc_trace") a.Stats.pc_trace b.Stats.pc_trace;
  Util.check_same_traces msg (Util.traces a) (Util.traces b);
  Alcotest.(check bool) (msg ^ ": warp instruction counts") true
    (Stats.warp_instruction_counts a = Stats.warp_instruction_counts b)

let check_same_events msg (a : E.t) (b : E.t) =
  Alcotest.(check int) (msg ^ ": event count") (E.length a) (E.length b);
  Alcotest.(check bool) (msg ^ ": truncated") (E.truncated a) (E.truncated b);
  List.iter2
    (fun ea eb ->
      if ea <> eb then
        Alcotest.failf "%s: events diverge: %a vs %a" msg E.pp_entry ea E.pp_entry
          eb)
    (E.entries a) (E.entries b)

(* --- the matrix -------------------------------------------------------- *)

let run_mode ~arch ~technique ~kernel ~fast_forward =
  let prepared = Technique.prepare arch technique kernel in
  let events = E.create () in
  let config =
    { (Gpu.default_config arch prepared.Technique.policy) with
      Gpu.record_stores = true;
      trace_warp0 = true;
      events = Some events;
      max_cycles = 2_000_000;
      fast_forward }
  in
  let stats = Gpu.run config prepared.Technique.kernel in
  (stats, events)

let check_cell ~arch ~technique ~kernel msg =
  let brute_stats, brute_events =
    run_mode ~arch ~technique ~kernel ~fast_forward:false
  in
  let fast_stats, fast_events =
    run_mode ~arch ~technique ~kernel ~fast_forward:true
  in
  check_same_stats msg brute_stats fast_stats;
  check_same_events msg brute_events fast_events

let test_matrix () =
  List.iter
    (fun (sched_name, scheduler) ->
      let arch = { Util.small_arch with Gpu_uarch.Arch_config.scheduler } in
      List.iter
        (fun technique ->
          List.iter
            (fun (kname, prog, threads) ->
              let kernel =
                Kernel.make ~name:kname ~grid_ctas:3 ~cta_threads:threads prog
              in
              check_cell ~arch ~technique ~kernel
                (Printf.sprintf "%s/%s/%s" sched_name
                   (Technique.name technique) kname))
            kernels)
        techniques)
    schedulers

(* Multi-SM: CTA dispatch eligibility must keep clamping the jump when
   several SMs compete for the remaining grid. *)
let test_multi_sm () =
  let arch = { Util.small_arch with Gpu_uarch.Arch_config.n_sms = 3 } in
  List.iter
    (fun technique ->
      let kernel = Kernel.make ~name:"chase" ~grid_ctas:7 ~cta_threads:64 chase in
      check_cell ~arch ~technique ~kernel
        ("3sm/" ^ Technique.name technique ^ "/chase"))
    techniques

(* The latency-bound stress workload on the evaluation slice — the cell
   where fast-forward actually skips most of the run. *)
let test_pchase_runner () =
  let spec = Workloads.Registry.find "PChase" in
  let kernel = (Workloads.Spec.with_grid spec 4).Workloads.Spec.kernel in
  let arch = Experiments.Exp_config.default.Experiments.Exp_config.arch in
  List.iter
    (fun technique ->
      let brute = Runner.execute ~fast_forward:false arch technique kernel in
      let fast = Runner.execute ~fast_forward:true arch technique kernel in
      Alcotest.(check string)
        ("pchase/" ^ Technique.name technique ^ ": fingerprint")
        (Runner.fingerprint brute) (Runner.fingerprint fast);
      check_same_stats
        ("pchase/" ^ Technique.name technique)
        brute.Runner.stats fast.Runner.stats)
    techniques

(* PChase is a well-formed spec even though it sits outside Table I. *)
let test_pchase_spec () =
  let spec = Workloads.Registry.find "PChase" in
  (match Workloads.Spec.validate spec with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "latency_bound contains PChase" true
    (List.memq spec Workloads.Registry.latency_bound)

(* --- engine: cache keys and results are mode-independent --------------- *)

let test_engine_invariance () =
  let spec = Workloads.Registry.find "DWT2D" in
  let cfg = { Experiments.Exp_config.quick with grid_scale = 0.1 } in
  let arch = cfg.Experiments.Exp_config.arch in
  let in_mode ff =
    Engine.clear ();
    Engine.set_cache_dir None;
    Engine.set_fast_forward ff;
    let key = Engine.key cfg ~arch Technique.Regmutex spec in
    let run = Engine.run cfg ~arch Technique.Regmutex spec in
    Engine.set_fast_forward true;
    (key, Runner.fingerprint run)
  in
  let key_ff, fp_ff = in_mode true in
  let key_bf, fp_bf = in_mode false in
  Alcotest.(check string) "cache key mode-independent" key_bf key_ff;
  Alcotest.(check string) "cached result mode-independent" fp_bf fp_ff

(* --- observe contract under cycle skipping ----------------------------- *)

let observed_cycles ~fast_forward ~observe_every kernel =
  let prepared = Technique.prepare Util.small_arch Technique.Baseline kernel in
  let config =
    { (Gpu.default_config Util.small_arch prepared.Technique.policy) with
      Gpu.fast_forward = fast_forward }
  in
  let seen = ref [] in
  let stats =
    Gpu.run ~observe:(fun ~cycle _ -> seen := cycle :: !seen) ~observe_every
      config prepared.Technique.kernel
  in
  (List.rev !seen, stats)

let test_observe_grid () =
  let kernel = Kernel.make ~name:"chase" ~grid_ctas:2 ~cta_threads:64 chase in
  let fast, fast_stats = observed_cycles ~fast_forward:true ~observe_every:7 kernel in
  let brute, brute_stats =
    observed_cycles ~fast_forward:false ~observe_every:7 kernel
  in
  check_same_stats "observe" brute_stats fast_stats;
  Alcotest.(check (list int)) "same observation cycles" brute fast;
  (* The sampling grid bounds every jump, so the observed cycles are
     exactly the multiples of the interval over the whole run — no sample
     is skipped over even when the machine sleeps across it. *)
  let expected =
    List.init fast_stats.Stats.cycles (fun c -> c)
    |> List.filter (fun c -> c mod 7 = 0)
  in
  Alcotest.(check (list int)) "every grid point sampled" expected fast;
  (* An every-cycle observer degenerates to brute-force visiting. *)
  let dense, dense_stats = observed_cycles ~fast_forward:true ~observe_every:1 kernel in
  Alcotest.(check int) "dense observer sees every cycle"
    dense_stats.Stats.cycles (List.length dense)

let test_observe_every_validated () =
  let kernel = Kernel.make ~name:"chase" ~grid_ctas:1 ~cta_threads:32 chase in
  let prepared = Technique.prepare Util.small_arch Technique.Baseline kernel in
  let config = Gpu.default_config Util.small_arch prepared.Technique.policy in
  Alcotest.check_raises "observe_every = 0 rejected"
    (Invalid_argument "Gpu.run: observe_every must be >= 1") (fun () ->
      ignore
        (Gpu.run ~observe:(fun ~cycle:_ _ -> ()) ~observe_every:0 config
           prepared.Technique.kernel))

let suite =
  [ Alcotest.test_case "policy x scheduler x kernel matrix" `Slow test_matrix;
    Alcotest.test_case "multi-SM dispatch clamping" `Quick test_multi_sm;
    Alcotest.test_case "PChase under Runner, all techniques" `Slow
      test_pchase_runner;
    Alcotest.test_case "PChase spec is well-formed" `Quick test_pchase_spec;
    Alcotest.test_case "engine cache keys mode-independent" `Quick
      test_engine_invariance;
    Alcotest.test_case "observe sampling grid preserved" `Quick test_observe_grid;
    Alcotest.test_case "observe_every validated" `Quick
      test_observe_every_validated ]
