open Gpu_sim

let test_default_pattern () =
  let m = Memory.create () in
  let v = Memory.read_global m 1234 in
  Alcotest.(check int) "deterministic" v (Memory.read_global m 1234);
  Alcotest.(check int) "matches default_value" (Memory.default_value 1234) v;
  Alcotest.(check bool) "within 16 bits" true (v >= 0 && v < 65536)

let test_write_read () =
  let m = Memory.create () in
  Memory.write_global m 10 99;
  Alcotest.(check int) "read back" 99 (Memory.read_global m 10);
  Memory.write_global m 10 100;
  Alcotest.(check int) "overwrite" 100 (Memory.read_global m 10);
  Alcotest.(check int) "footprint" 1 (Memory.footprint m)

let test_address_masking () =
  let m = Memory.create () in
  Memory.write_global m 5 1;
  (* Addresses wrap at 30 bits: 5 + 2^30 aliases 5. *)
  Alcotest.(check int) "aliased high address" 1 (Memory.read_global m (5 + 0x40000000));
  Alcotest.(check int) "negative address masked"
    (Memory.read_global m ((-3) land 0x3fffffff))
    (Memory.read_global m (-3))

let test_written () =
  let m = Memory.create () in
  Memory.write_global m 30 3;
  Memory.write_global m 10 1;
  Memory.write_global m 20 2;
  Alcotest.(check (list (pair int int))) "sorted" [ (10, 1); (20, 2); (30, 3) ]
    (Memory.written m)

(* Unwrap a successful issue; the slot-availability cases below check
   [`No_slot] explicitly. *)
let issue ms ~sm ~cycle =
  match Mem_system.issue_global ms ~sm ~cycle with
  | `Completion c -> c
  | `No_slot -> Alcotest.fail "unexpected `No_slot"

let test_mem_system_slots () =
  let arch = { Util.small_arch with Gpu_uarch.Arch_config.mem_slots = 2 } in
  let ms = Mem_system.create arch ~n_sms:1 in
  Alcotest.(check bool) "slot free" true (Mem_system.slot_free ms ~sm:0 ~cycle:0);
  let c1 = issue ms ~sm:0 ~cycle:0 in
  let _c2 = issue ms ~sm:0 ~cycle:0 in
  Alcotest.(check bool) "slots exhausted" false (Mem_system.slot_free ms ~sm:0 ~cycle:0);
  (* A slot frees once its request completes. *)
  Alcotest.(check bool) "free after completion" true
    (Mem_system.slot_free ms ~sm:0 ~cycle:c1);
  Alcotest.(check int) "issued" 2 (Mem_system.issued ms)

let test_mem_system_no_slot () =
  let arch = { Util.small_arch with Gpu_uarch.Arch_config.mem_slots = 1 } in
  let ms = Mem_system.create arch ~n_sms:2 in
  let c1 = issue ms ~sm:0 ~cycle:0 in
  (* Structured back-pressure: a full SM answers [`No_slot] instead of
     raising, without counting the refused request as issued. *)
  (match Mem_system.issue_global ms ~sm:0 ~cycle:0 with
  | `No_slot -> ()
  | `Completion _ -> Alcotest.fail "expected `No_slot on a full SM");
  Alcotest.(check int) "refusal not counted" 1 (Mem_system.issued ms);
  (* Slots are per-SM: the other SM still issues. *)
  let _ = issue ms ~sm:1 ~cycle:0 in
  (* And the refused SM recovers once its request completes. *)
  let c3 = issue ms ~sm:0 ~cycle:c1 in
  Alcotest.(check bool) "recovers after completion" true (c3 > c1);
  Alcotest.(check int) "issued" 3 (Mem_system.issued ms)

let test_mem_system_queueing () =
  let arch =
    { Util.small_arch with Gpu_uarch.Arch_config.mem_slots = 64; dram_interval = 10. }
  in
  let ms = Mem_system.create arch ~n_sms:1 in
  let c1 = issue ms ~sm:0 ~cycle:0 in
  let c2 = issue ms ~sm:0 ~cycle:0 in
  let c3 = issue ms ~sm:0 ~cycle:0 in
  Alcotest.(check int) "uncontended latency" arch.Gpu_uarch.Arch_config.lat_global c1;
  Alcotest.(check int) "queued by one interval" (c1 + 10) c2;
  Alcotest.(check int) "queued by two intervals" (c1 + 20) c3;
  Alcotest.(check bool) "mean latency grows" true (Mem_system.mean_latency ms > float_of_int c1)

let test_mem_system_idle_recovers () =
  let arch = { Util.small_arch with Gpu_uarch.Arch_config.dram_interval = 10. } in
  let ms = Mem_system.create arch ~n_sms:1 in
  ignore (issue ms ~sm:0 ~cycle:0);
  (* After a long idle period the channel is free again: no queueing. *)
  let c = issue ms ~sm:0 ~cycle:1000 in
  Alcotest.(check int) "no residual queue" (1000 + arch.Gpu_uarch.Arch_config.lat_global) c

let suite =
  [ Alcotest.test_case "default pattern" `Quick test_default_pattern;
    Alcotest.test_case "write / read" `Quick test_write_read;
    Alcotest.test_case "address masking" `Quick test_address_masking;
    Alcotest.test_case "written listing" `Quick test_written;
    Alcotest.test_case "mem system: slots" `Quick test_mem_system_slots;
    Alcotest.test_case "mem system: no-slot back-pressure" `Quick test_mem_system_no_slot;
    Alcotest.test_case "mem system: queueing" `Quick test_mem_system_queueing;
    Alcotest.test_case "mem system: idle recovery" `Quick test_mem_system_idle_recovers ]
