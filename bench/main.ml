(* Benchmark harness: regenerates every table and figure of the RegMutex
   evaluation (see DESIGN.md's per-experiment index) and, with `perf`,
   times the core primitives with Bechamel.

   Usage:
     dune exec bench/main.exe              # all figures, full-size grids
     dune exec bench/main.exe -- quick     # all figures, quarter grids
     dune exec bench/main.exe -- fig7 fig10
     dune exec bench/main.exe -- sweep     # serial vs parallel sweep timing
     dune exec bench/main.exe -- perf      # Bechamel micro-benchmarks *)

module Suite = Experiments.Suite
module Engine = Experiments.Engine

let run_experiment cfg name =
  match Suite.find name with
  | Some e ->
      Printf.printf "\n================ %s ================\n%!" name;
      let t0 = Unix.gettimeofday () in
      e.Suite.print cfg;
      Printf.printf "(%s finished in %.1fs)\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
      Printf.eprintf "unknown experiment %S; available: %s, sweep, perf\n" name
        (String.concat ", " Suite.names);
      exit 1

(* Serial vs parallel sweep: drive every simulation-bearing experiment
   through its row builders (no table rendering) with 1 worker and again
   with one worker per core, from a cold in-memory cache and no disk
   store, and compare wall time and result fingerprints. *)
let sweep_bench cfg =
  let row_builders : (Experiments.Exp_config.t -> string list) list =
    [ (fun cfg ->
        List.map
          (fun (r : Experiments.Fig7.row) -> string_of_int r.regmutex_cycles)
          (Experiments.Fig7.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig8.row) -> string_of_int r.half_rm_cycles)
          (Experiments.Fig8.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig9.row_a) -> string_of_float r.regmutex_red)
          (Experiments.Fig9.rows_a cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig9.row_b) -> string_of_float r.regmutex_inc)
          (Experiments.Fig9.rows_b cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig12.row_a) -> string_of_float r.paired_red)
          (Experiments.Fig12.rows_a cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig13.row) -> string_of_float r.paired_ratio)
          (Experiments.Fig13.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Sched_ablation.row) ->
            string_of_int r.regmutex_cycles)
          (Experiments.Sched_ablation.rows cfg)) ]
  in
  let timed jobs =
    Engine.clear ();
    Engine.set_cache_dir None;
    Engine.set_jobs jobs;
    let sims_before = Engine.simulations () in
    let t0 = Unix.gettimeofday () in
    let results = List.concat_map (fun f -> f cfg) row_builders in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Engine.simulations () - sims_before, results)
  in
  let serial_t, serial_sims, serial_r = timed 1 in
  Printf.printf "serial:   %4d simulations in %6.2fs (1 worker)\n%!" serial_sims
    serial_t;
  let jobs = Engine.auto_jobs () in
  let par_t, par_sims, par_r = timed 0 in
  Printf.printf "parallel: %4d simulations in %6.2fs (%d worker%s)\n%!" par_sims
    par_t jobs
    (if jobs = 1 then "" else "s");
  Printf.printf "speedup:  %.2fx; results %s\n" (serial_t /. par_t)
    (if serial_r = par_r then "identical" else "DIFFER");
  Engine.set_jobs 1;
  if serial_r <> par_r then exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  let cfg =
    if quick then Experiments.Exp_config.quick else Experiments.Exp_config.default
  in
  match args with
  | [ "perf" ] -> Perf.run ()
  | [ "sweep" ] -> sweep_bench cfg
  | [] ->
      List.iter (fun (e : Suite.entry) -> run_experiment cfg e.Suite.name) Suite.all
  | names -> List.iter (run_experiment cfg) names
