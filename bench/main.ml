(* Benchmark harness: regenerates every table and figure of the RegMutex
   evaluation (see DESIGN.md's per-experiment index) and, with `perf`,
   times the core primitives with Bechamel.

   Usage:
     dune exec bench/main.exe              # all figures, full-size grids
     dune exec bench/main.exe -- quick     # all figures, quarter grids
     dune exec bench/main.exe -- fig7 fig10
     dune exec bench/main.exe -- sweep     # serial vs parallel vs brute force
     dune exec bench/main.exe -- cycles    # cycle-skip microbenchmark
                                           # (writes BENCH_cycle_skip.json)
     dune exec bench/main.exe -- telemetry # sink-on vs sink-off overhead
                                           # (writes BENCH_telemetry_overhead.json)
     dune exec bench/main.exe -- perf      # Bechamel micro-benchmarks *)

module Suite = Experiments.Suite
module Engine = Experiments.Engine

let run_experiment cfg name =
  match Suite.find name with
  | Some e ->
      Printf.printf "\n================ %s ================\n%!" name;
      let t0 = Unix.gettimeofday () in
      e.Suite.print cfg;
      Printf.printf "(%s finished in %.1fs)\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
      Printf.eprintf "unknown experiment %S; available: %s, sweep, perf\n" name
        (String.concat ", " Suite.names);
      exit 1

(* Serial vs parallel vs brute-force sweep: drive every simulation-bearing
   experiment through its row builders (no table rendering) with 1 worker,
   again with one worker per core, and again serially with fast-forward
   disabled — each from a cold in-memory cache and no disk store — and
   compare wall time and results. A divergence between fast-forward and
   brute force is a simulator bug and fails the run. *)
let sweep_bench cfg =
  let row_builders : (Experiments.Exp_config.t -> string list) list =
    [ (fun cfg ->
        List.map
          (fun (r : Experiments.Fig7.row) -> string_of_int r.regmutex_cycles)
          (Experiments.Fig7.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig8.row) -> string_of_int r.half_rm_cycles)
          (Experiments.Fig8.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig9.row_a) -> string_of_float r.regmutex_red)
          (Experiments.Fig9.rows_a cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig9.row_b) -> string_of_float r.regmutex_inc)
          (Experiments.Fig9.rows_b cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig12.row_a) -> string_of_float r.paired_red)
          (Experiments.Fig12.rows_a cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig13.row) -> string_of_float r.paired_ratio)
          (Experiments.Fig13.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Sched_ablation.row) ->
            string_of_int r.regmutex_cycles)
          (Experiments.Sched_ablation.rows cfg)) ]
  in
  let timed ?(fast_forward = true) jobs =
    Engine.clear ();
    Engine.set_cache_dir None;
    Engine.set_jobs jobs;
    Engine.set_fast_forward fast_forward;
    let sims_before = Engine.simulations () in
    let t0 = Unix.gettimeofday () in
    let results = List.concat_map (fun f -> f cfg) row_builders in
    let dt = Unix.gettimeofday () -. t0 in
    Engine.set_fast_forward true;
    (dt, Engine.simulations () - sims_before, results)
  in
  let serial_t, serial_sims, serial_r = timed 1 in
  Printf.printf "serial:   %4d simulations in %6.2fs (1 worker)\n%!" serial_sims
    serial_t;
  let jobs = Engine.auto_jobs () in
  let par_t, par_sims, par_r = timed 0 in
  Printf.printf "parallel: %4d simulations in %6.2fs (%d worker%s)\n%!" par_sims
    par_t jobs
    (if jobs = 1 then "" else "s");
  let brute_t, brute_sims, brute_r = timed ~fast_forward:false 1 in
  Printf.printf "brute:    %4d simulations in %6.2fs (1 worker, no fast-forward)\n%!"
    brute_sims brute_t;
  Printf.printf "parallel speedup:     %.2fx; results %s\n" (serial_t /. par_t)
    (if serial_r = par_r then "identical" else "DIFFER");
  Printf.printf "fast-forward speedup: %.2fx; results %s\n" (brute_t /. serial_t)
    (if serial_r = brute_r then "identical" else "DIFFER");
  Engine.set_jobs 1;
  if serial_r <> par_r || serial_r <> brute_r then exit 1

(* Cycle-skip microbenchmark: every suite cell (workload x technique on
   that workload's evaluation architecture) simulated twice, brute force
   then fast-forward, from scratch each time (no engine, no caches). The
   two runs must produce the same fingerprint — a divergence is a
   simulator bug and fails the process — and the wall-time ratio is the
   cycle-skipping payoff, largest on memory-bound, low-occupancy cells
   where whole stall spans collapse into one bulk update. Results land in
   BENCH_cycle_skip.json for the CI artifact. *)
let cycles_bench ~quick cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let techniques =
    [ Technique.Baseline; Technique.Regmutex; Technique.Regmutex_paired;
      Technique.Owf; Technique.Rfv ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  Printf.printf "%-16s %-16s %10s %10s %8s  %s\n" "workload" "technique"
    "brute (s)" "fast (s)" "speedup" "results";
  let cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        List.map
          (fun technique ->
            let brute_t, brute =
              time (fun () ->
                  Runner.execute ~fast_forward:false arch technique kernel)
            in
            let fast_t, fast =
              time (fun () ->
                  Runner.execute ~fast_forward:true arch technique kernel)
            in
            let identical =
              String.equal (Runner.fingerprint brute) (Runner.fingerprint fast)
            in
            let speedup = brute_t /. Float.max fast_t 1e-9 in
            Printf.printf "%-16s %-16s %10.3f %10.3f %7.2fx  %s\n%!"
              spec.Workloads.Spec.name (Technique.name technique) brute_t
              fast_t speedup
              (if identical then "identical" else "DIFFER");
            (spec.Workloads.Spec.name, Technique.name technique, brute_t,
             fast_t, speedup, identical))
          techniques)
      (Workloads.Registry.all @ Workloads.Registry.latency_bound)
  in
  let best =
    List.fold_left (fun acc (_, _, _, _, s, _) -> Float.max acc s) 0. cells
  in
  let all_identical = List.for_all (fun (_, _, _, _, _, ok) -> ok) cells in
  Printf.printf "max speedup: %.2fx; results %s\n" best
    (if all_identical then "identical" else "DIFFER");
  let oc = open_out "BENCH_cycle_skip.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"cycle_skip\",\n  \"config\": %S,\n  \"max_speedup\": %.3f,\n  \"all_identical\": %b,\n  \"cells\": [\n"
    (if quick then "quick" else "full")
    best all_identical;
  List.iteri
    (fun i (w, t, bt, ft, s, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"brute_s\": %.4f, \"fast_s\": %.4f, \"speedup\": %.3f, \"identical\": %b}%s\n"
        w t bt ft s ok
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_cycle_skip.json (%d cells)\n" (List.length cells);
  if not all_identical then exit 1

(* SoA-core benchmark: every suite cell timed in both stepping modes on
   the current simulator core, with the run fingerprint recorded per cell.
   The ff/bf fingerprints must agree (a divergence fails the process).
   With [--baseline FILE] — a BENCH_soa_core.json produced by an earlier
   build on the same machine and grid config — each cell also reports its
   wall-time speedup against the baseline and asserts its fingerprint is
   bit-identical to the baseline's, so a core rewrite is checked against
   the seed simulator cell by cell. Cells are classed compute (Table I
   registry) or latency (the latency-bound registry): the SoA rewrite must
   lift the compute class without regressing the latency class. Results
   land in BENCH_soa_core.json for the CI artifact. *)
let soa_bench ~quick ?baseline cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let techniques =
    [ Technique.Baseline; Technique.Regmutex; Technique.Regmutex_paired;
      Technique.Owf; Technique.Rfv ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let config_name = if quick then "quick" else "full" in
  (* Baseline: map (workload, technique) -> (fast_s, fingerprint), plus the
     grid config it was measured under. Fingerprints are only comparable
     when the configs match; timings are only comparable on one machine. *)
  let baseline_config, baseline_cells =
    match baseline with
    | None -> (None, [])
    | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        let open Telemetry.Json_check in
        let json = parse s in
        let field name = function
          | Obj kvs -> List.assoc_opt name kvs
          | _ -> None
        in
        let str = function Some (Str s) -> Some s | _ -> None in
        let num = function Some (Num f) -> Some f | _ -> None in
        let cfg_name = str (field "config" json) in
        let cells =
          match field "cells" json with
          | Some (List cells) ->
              List.filter_map
                (fun c ->
                  match
                    ( str (field "workload" c), str (field "technique" c),
                      num (field "fast_s" c), str (field "fingerprint" c) )
                  with
                  | Some w, Some t, Some fast, fp -> Some ((w, t), (fast, fp))
                  | _ -> None)
                cells
          | _ -> []
        in
        (cfg_name, cells)
  in
  let baseline_comparable = baseline_config = Some config_name in
  (match (baseline, baseline_config) with
  | Some path, Some bc when bc <> config_name ->
      Printf.printf
        "note: baseline %s was measured under config %S, this run is %S — \
         timings reported, fingerprints not compared\n"
        path bc config_name
  | _ -> ());
  let latency_names =
    List.map (fun s -> s.Workloads.Spec.name) Workloads.Registry.latency_bound
  in
  Printf.printf "%-16s %-16s %-8s %10s %10s %9s  %s\n" "workload" "technique"
    "class" "brute (s)" "fast (s)" "vs-seed" "results";
  let cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        let wname = spec.Workloads.Spec.name in
        let cls = if List.mem wname latency_names then "latency" else "compute" in
        List.map
          (fun technique ->
            let brute_t, brute =
              time (fun () ->
                  Runner.execute ~fast_forward:false arch technique kernel)
            in
            let fast_t, fast =
              time (fun () ->
                  Runner.execute ~fast_forward:true arch technique kernel)
            in
            let fp = Runner.fingerprint fast in
            let modes_identical = String.equal (Runner.fingerprint brute) fp in
            let tname = Technique.name technique in
            let base = List.assoc_opt (wname, tname) baseline_cells in
            let speedup =
              Option.map (fun (bfast, _) -> bfast /. Float.max fast_t 1e-9) base
            in
            let seed_identical =
              if not baseline_comparable then None
              else
                match base with
                | Some (_, Some bfp) -> Some (String.equal bfp fp)
                | Some (_, None) | None -> None
            in
            Printf.printf "%-16s %-16s %-8s %10.3f %10.3f %9s  %s%s\n%!" wname
              tname cls brute_t fast_t
              (match speedup with
              | Some s -> Printf.sprintf "%.2fx" s
              | None -> "-")
              (if modes_identical then "identical" else "DIFFER")
              (match seed_identical with
              | Some true -> ", =seed"
              | Some false -> ", DIFFERS FROM SEED"
              | None -> "");
            (wname, tname, cls, brute_t, fast_t, fp, speedup, modes_identical,
             seed_identical))
          techniques)
      (Workloads.Registry.all @ Workloads.Registry.latency_bound)
  in
  let geomean = function
    | [] -> None
    | l ->
        Some
          (exp
             (List.fold_left (fun a s -> a +. log s) 0. l
             /. float_of_int (List.length l)))
  in
  let speedups cls =
    List.filter_map
      (fun (_, _, c, _, _, _, s, _, _) -> if c = cls then s else None)
      cells
  in
  let gm_compute = geomean (speedups "compute") in
  let gm_latency = geomean (speedups "latency") in
  let all_modes = List.for_all (fun (_, _, _, _, _, _, _, ok, _) -> ok) cells in
  let all_seed =
    List.for_all
      (fun (_, _, _, _, _, _, _, _, s) -> s <> Some false)
      cells
  in
  let pp_gm = function Some g -> Printf.sprintf "%.2fx" g | None -> "-" in
  Printf.printf
    "geomean vs seed: compute %s, latency %s; modes %s; seed fingerprints %s\n"
    (pp_gm gm_compute) (pp_gm gm_latency)
    (if all_modes then "identical" else "DIFFER")
    (if not baseline_comparable then "not compared"
     else if all_seed then "identical"
     else "DIFFER");
  let oc = open_out "BENCH_soa_core.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"soa_core\",\n  \"config\": %S,\n  \"baseline\": %s,\n  \
     \"geomean_speedup_compute\": %s,\n  \"geomean_speedup_latency\": %s,\n  \
     \"all_identical\": %b,\n  \"seed_identical\": %s,\n  \"cells\": [\n"
    config_name
    (match baseline with Some p -> Printf.sprintf "%S" p | None -> "null")
    (match gm_compute with Some g -> Printf.sprintf "%.3f" g | None -> "null")
    (match gm_latency with Some g -> Printf.sprintf "%.3f" g | None -> "null")
    all_modes
    (if baseline_comparable then string_of_bool all_seed else "null");
  List.iteri
    (fun i (w, t, cls, bt, ft, fp, speedup, ok, seed) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"class\": %S, \
         \"brute_s\": %.4f, \"fast_s\": %.4f, \"fingerprint\": %S, \
         \"speedup_vs_seed\": %s, \"identical\": %b, \"seed_identical\": %s}%s\n"
        w t cls bt ft fp
        (match speedup with Some s -> Printf.sprintf "%.3f" s | None -> "null")
        ok
        (match seed with Some b -> string_of_bool b | None -> "null")
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_soa_core.json (%d cells)\n" (List.length cells);
  if not (all_modes && all_seed) then exit 1

(* Telemetry overhead benchmark: every suite cell simulated four times —
   sink off, sink on (fast-forward), sink on (brute force), sink off again.
   The interleaved off runs bound timer drift; overhead is the on time
   against their mean. All four fingerprints must agree: the off/off pair
   shows the disabled sink perturbs nothing, and the on-ff/on-bf pair is
   the fast-forward equivalence suite re-run with telemetry enabled — the
   probe's issue-anchored hooks must not disturb cycle skipping. Results
   land in BENCH_telemetry_overhead.json for the CI artifact. *)
let telemetry_bench ~quick cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let techniques =
    [ Technique.Baseline; Technique.Regmutex; Technique.Regmutex_paired;
      Technique.Owf; Technique.Rfv ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  Printf.printf "%-16s %-16s %9s %9s %9s %9s  %s\n" "workload" "technique"
    "off (s)" "on (s)" "on/off" "off/off" "results";
  let cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        List.map
          (fun technique ->
            let off1_t, off1 =
              time (fun () -> Runner.execute arch technique kernel)
            in
            let on_t, on_ff =
              time (fun () ->
                  Runner.execute ~telemetry:(Telemetry.Sink.create ()) arch
                    technique kernel)
            in
            let _, on_bf =
              time (fun () ->
                  Runner.execute ~fast_forward:false
                    ~telemetry:(Telemetry.Sink.create ()) arch technique kernel)
            in
            let off2_t, off2 =
              time (fun () -> Runner.execute arch technique kernel)
            in
            let fp = Runner.fingerprint in
            let identical =
              String.equal (fp off1) (fp on_ff)
              && String.equal (fp on_ff) (fp on_bf)
              && String.equal (fp off1) (fp off2)
            in
            let off_t = (off1_t +. off2_t) /. 2. in
            let overhead_pct = ((on_t /. Float.max off_t 1e-9) -. 1.) *. 100. in
            let off_delta_pct =
              Float.abs (off2_t -. off1_t) /. Float.max off_t 1e-9 *. 100.
            in
            Printf.printf "%-16s %-16s %9.3f %9.3f %+8.1f%% %8.1f%%  %s\n%!"
              spec.Workloads.Spec.name (Technique.name technique) off_t on_t
              overhead_pct off_delta_pct
              (if identical then "identical" else "DIFFER");
            (spec.Workloads.Spec.name, Technique.name technique, off_t, on_t,
             overhead_pct, off_delta_pct, identical))
          techniques)
      (Workloads.Registry.all @ Workloads.Registry.latency_bound)
  in
  let total_off =
    List.fold_left (fun a (_, _, o, _, _, _, _) -> a +. o) 0. cells
  in
  let total_on =
    List.fold_left (fun a (_, _, _, o, _, _, _) -> a +. o) 0. cells
  in
  (* The per-cell ratios are noisy on sub-millisecond runs; the aggregate
     over the whole suite is the number the <3% budget is judged on. *)
  let overhead_pct = ((total_on /. Float.max total_off 1e-9) -. 1.) *. 100. in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, ok) -> ok) cells
  in
  Printf.printf "aggregate overhead: %+.2f%%; results %s\n" overhead_pct
    (if all_identical then "identical (0 measurable overhead off)"
     else "DIFFER");
  let oc = open_out "BENCH_telemetry_overhead.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"telemetry_overhead\",\n  \"config\": %S,\n  \
     \"overhead_on_pct\": %.3f,\n  \"all_identical\": %b,\n  \"cells\": [\n"
    (if quick then "quick" else "full")
    overhead_pct all_identical;
  List.iteri
    (fun i (w, t, offt, ont, ov, noise, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"off_s\": %.4f, \
         \"on_s\": %.4f, \"overhead_pct\": %.2f, \"off_delta_pct\": %.2f, \
         \"identical\": %b}%s\n"
        w t offt ont ov noise ok
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_telemetry_overhead.json (%d cells)\n"
    (List.length cells);
  if not all_identical then exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  let rec split_baseline acc = function
    | "--baseline" :: path :: rest -> (Some path, List.rev_append acc rest)
    | a :: rest -> split_baseline (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let baseline, args = split_baseline [] args in
  let cfg =
    if quick then Experiments.Exp_config.quick else Experiments.Exp_config.default
  in
  match args with
  | [ "perf" ] -> Perf.run ()
  | [ "sweep" ] -> sweep_bench cfg
  | [ "cycles" ] -> cycles_bench ~quick cfg
  | [ "soa" ] -> soa_bench ~quick ?baseline cfg
  | [ "telemetry" ] -> telemetry_bench ~quick cfg
  | [] ->
      List.iter (fun (e : Suite.entry) -> run_experiment cfg e.Suite.name) Suite.all
  | names -> List.iter (run_experiment cfg) names
