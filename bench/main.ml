(* Benchmark harness: regenerates every table and figure of the RegMutex
   evaluation (see DESIGN.md's per-experiment index) and, with `perf`,
   times the core primitives with Bechamel.

   Usage:
     dune exec bench/main.exe              # all figures, full-size grids
     dune exec bench/main.exe -- quick     # all figures, quarter grids
     dune exec bench/main.exe -- fig7 fig10
     dune exec bench/main.exe -- sweep     # serial vs parallel vs brute force
     dune exec bench/main.exe -- cycles    # cycle-skip microbenchmark
                                           # (writes BENCH_cycle_skip.json)
     dune exec bench/main.exe -- regdem    # RegDem occupancy/energy head-to-head
                                           # (writes BENCH_regdem.json)
     dune exec bench/main.exe -- telemetry # sink-on vs sink-off overhead
                                           # (writes BENCH_telemetry_overhead.json)
     dune exec bench/main.exe -- serve     # daemon cold/warm latency, multi-client
                                           # throughput, coalescing factor
                                           # (writes BENCH_serve.json)
     dune exec bench/main.exe -- simt      # per-lane vs warp-uniform execution:
                                           # bit-identity on uniform kernels,
                                           # overhead factor, divergent cells
                                           # (writes BENCH_simt.json)
     dune exec bench/main.exe -- perf      # Bechamel micro-benchmarks
     dune exec bench/main.exe -- report [--check]
                                           # trajectory summary of the committed
                                           # BENCH_*.json vs bench/trajectory.json *)

module Suite = Experiments.Suite
module Engine = Experiments.Engine

(* BENCH_*.json artifacts live at the repo root regardless of the
   directory dune was invoked from, so the report/CI gate and `git add`
   always find them in one place. *)
let artifact_path name =
  match Experiments.Report.find_repo_root () with
  | Some root -> Filename.concat root name
  | None -> name

let run_experiment cfg name =
  match Suite.find name with
  | Some e ->
      Printf.printf "\n================ %s ================\n%!" name;
      let t0 = Unix.gettimeofday () in
      e.Suite.print cfg;
      Printf.printf "(%s finished in %.1fs)\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
      Printf.eprintf "unknown experiment %S; available: %s, sweep, perf\n" name
        (String.concat ", " Suite.names);
      exit 1

(* Serial vs parallel vs brute-force sweep: drive every simulation-bearing
   experiment through its row builders (no table rendering) with 1 worker,
   again with one worker per core, and again serially with fast-forward
   disabled — each from a cold in-memory cache and no disk store — and
   compare wall time and results. A divergence between fast-forward and
   brute force is a simulator bug and fails the run. *)
let sweep_bench cfg =
  let row_builders : (Experiments.Exp_config.t -> string list) list =
    [ (fun cfg ->
        List.map
          (fun (r : Experiments.Fig7.row) -> string_of_int r.regmutex_cycles)
          (Experiments.Fig7.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig8.row) -> string_of_int r.half_rm_cycles)
          (Experiments.Fig8.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig9.row_a) -> string_of_float r.regmutex_red)
          (Experiments.Fig9.rows_a cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig9.row_b) -> string_of_float r.regmutex_inc)
          (Experiments.Fig9.rows_b cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig12.row_a) -> string_of_float r.paired_red)
          (Experiments.Fig12.rows_a cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Fig13.row) -> string_of_float r.paired_ratio)
          (Experiments.Fig13.rows cfg));
      (fun cfg ->
        List.map
          (fun (r : Experiments.Sched_ablation.row) ->
            string_of_int r.regmutex_cycles)
          (Experiments.Sched_ablation.rows cfg)) ]
  in
  let timed ?(fast_forward = true) jobs =
    Engine.clear ();
    Engine.set_cache_dir None;
    Engine.set_jobs jobs;
    Engine.set_fast_forward fast_forward;
    let sims_before = Engine.simulations () in
    let t0 = Unix.gettimeofday () in
    let results = List.concat_map (fun f -> f cfg) row_builders in
    let dt = Unix.gettimeofday () -. t0 in
    Engine.set_fast_forward true;
    (dt, Engine.simulations () - sims_before, results)
  in
  let serial_t, serial_sims, serial_r = timed 1 in
  Printf.printf "serial:   %4d simulations in %6.2fs (1 worker)\n%!" serial_sims
    serial_t;
  let jobs = Engine.auto_jobs () in
  let par_t, par_sims, par_r = timed 0 in
  Printf.printf "parallel: %4d simulations in %6.2fs (%d worker%s)\n%!" par_sims
    par_t jobs
    (if jobs = 1 then "" else "s");
  let brute_t, brute_sims, brute_r = timed ~fast_forward:false 1 in
  Printf.printf "brute:    %4d simulations in %6.2fs (1 worker, no fast-forward)\n%!"
    brute_sims brute_t;
  Printf.printf "parallel speedup:     %.2fx; results %s\n" (serial_t /. par_t)
    (if serial_r = par_r then "identical" else "DIFFER");
  Printf.printf "fast-forward speedup: %.2fx; results %s\n" (brute_t /. serial_t)
    (if serial_r = brute_r then "identical" else "DIFFER");
  Engine.set_jobs 1;
  if serial_r <> par_r || serial_r <> brute_r then exit 1

(* Cycle-skip microbenchmark: every suite cell (workload x technique on
   that workload's evaluation architecture) simulated twice, brute force
   then fast-forward, from scratch each time (no engine, no caches). The
   two runs must produce the same fingerprint — a divergence is a
   simulator bug and fails the process — and the wall-time ratio is the
   cycle-skipping payoff, largest on memory-bound, low-occupancy cells
   where whole stall spans collapse into one bulk update. Results land in
   BENCH_cycle_skip.json for the CI artifact. *)
let cycles_bench ~quick cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let techniques = Technique.all in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  Printf.printf "%-16s %-16s %10s %10s %8s  %s\n" "workload" "technique"
    "brute (s)" "fast (s)" "speedup" "results";
  let cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        List.map
          (fun technique ->
            let brute_t, brute =
              time (fun () ->
                  Runner.execute ~fast_forward:false arch technique kernel)
            in
            let fast_t, fast =
              time (fun () ->
                  Runner.execute ~fast_forward:true arch technique kernel)
            in
            let identical =
              String.equal (Runner.fingerprint brute) (Runner.fingerprint fast)
            in
            let speedup = brute_t /. Float.max fast_t 1e-9 in
            Printf.printf "%-16s %-16s %10.3f %10.3f %7.2fx  %s\n%!"
              spec.Workloads.Spec.name (Technique.name technique) brute_t
              fast_t speedup
              (if identical then "identical" else "DIFFER");
            (spec.Workloads.Spec.name, Technique.name technique, brute_t,
             fast_t, speedup, identical))
          techniques)
      (Workloads.Registry.all @ Workloads.Registry.latency_bound)
  in
  let best =
    List.fold_left (fun acc (_, _, _, _, s, _) -> Float.max acc s) 0. cells
  in
  let all_identical = List.for_all (fun (_, _, _, _, _, ok) -> ok) cells in
  Printf.printf "max speedup: %.2fx; results %s\n" best
    (if all_identical then "identical" else "DIFFER");
  let oc = open_out (artifact_path "BENCH_cycle_skip.json") in
  Printf.fprintf oc
    "{\n  \"bench\": \"cycle_skip\",\n  \"config\": %S,\n  \"max_speedup\": %.3f,\n  \"all_identical\": %b,\n  \"cells\": [\n"
    (if quick then "quick" else "full")
    best all_identical;
  List.iteri
    (fun i (w, t, bt, ft, s, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"brute_s\": %.4f, \"fast_s\": %.4f, \"speedup\": %.3f, \"identical\": %b}%s\n"
        w t bt ft s ok
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" (artifact_path "BENCH_cycle_skip.json")
    (List.length cells);
  if not all_identical then exit 1

(* SoA-core benchmark: every suite cell timed in both stepping modes on
   the current simulator core, with the run fingerprint recorded per cell.
   The ff/bf fingerprints must agree (a divergence fails the process).
   With [--baseline FILE] — a BENCH_soa_core.json produced by an earlier
   build on the same machine and grid config — each cell also reports its
   wall-time speedup against the baseline and asserts its fingerprint is
   bit-identical to the baseline's, so a core rewrite is checked against
   the seed simulator cell by cell. Cells are classed compute (Table I
   registry) or latency (the latency-bound registry): the SoA rewrite must
   lift the compute class without regressing the latency class. Results
   land in BENCH_soa_core.json for the CI artifact. *)
let soa_bench ~quick ?baseline cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let techniques = Technique.all in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let config_name = if quick then "quick" else "full" in
  (* Baseline: map (workload, technique) -> (fast_s, fingerprint), plus the
     grid config it was measured under. Fingerprints are only comparable
     when the configs match; timings are only comparable on one machine. *)
  let baseline_config, baseline_cells =
    match baseline with
    | None -> (None, [])
    | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        let open Telemetry.Json_check in
        let json = parse s in
        let field name = function
          | Obj kvs -> List.assoc_opt name kvs
          | _ -> None
        in
        let str = function Some (Str s) -> Some s | _ -> None in
        let num = function Some (Num f) -> Some f | _ -> None in
        let cfg_name = str (field "config" json) in
        let cells =
          match field "cells" json with
          | Some (List cells) ->
              List.filter_map
                (fun c ->
                  match
                    ( str (field "workload" c), str (field "technique" c),
                      num (field "fast_s" c), str (field "fingerprint" c) )
                  with
                  | Some w, Some t, Some fast, fp -> Some ((w, t), (fast, fp))
                  | _ -> None)
                cells
          | _ -> []
        in
        (cfg_name, cells)
  in
  let baseline_comparable = baseline_config = Some config_name in
  (match (baseline, baseline_config) with
  | Some path, Some bc when bc <> config_name ->
      Printf.printf
        "note: baseline %s was measured under config %S, this run is %S — \
         timings reported, fingerprints not compared\n"
        path bc config_name
  | _ -> ());
  let latency_names =
    List.map (fun s -> s.Workloads.Spec.name) Workloads.Registry.latency_bound
  in
  Printf.printf "%-16s %-16s %-8s %10s %10s %9s  %s\n" "workload" "technique"
    "class" "brute (s)" "fast (s)" "vs-seed" "results";
  let cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        let wname = spec.Workloads.Spec.name in
        let cls = if List.mem wname latency_names then "latency" else "compute" in
        List.map
          (fun technique ->
            let brute_t, brute =
              time (fun () ->
                  Runner.execute ~fast_forward:false arch technique kernel)
            in
            let fast_t, fast =
              time (fun () ->
                  Runner.execute ~fast_forward:true arch technique kernel)
            in
            let fp = Runner.fingerprint fast in
            let modes_identical = String.equal (Runner.fingerprint brute) fp in
            let tname = Technique.name technique in
            let base = List.assoc_opt (wname, tname) baseline_cells in
            let speedup =
              Option.map (fun (bfast, _) -> bfast /. Float.max fast_t 1e-9) base
            in
            let seed_identical =
              if not baseline_comparable then None
              else
                match base with
                | Some (_, Some bfp) -> Some (String.equal bfp fp)
                | Some (_, None) | None -> None
            in
            Printf.printf "%-16s %-16s %-8s %10.3f %10.3f %9s  %s%s\n%!" wname
              tname cls brute_t fast_t
              (match speedup with
              | Some s -> Printf.sprintf "%.2fx" s
              | None -> "-")
              (if modes_identical then "identical" else "DIFFER")
              (match seed_identical with
              | Some true -> ", =seed"
              | Some false -> ", DIFFERS FROM SEED"
              | None -> "");
            (wname, tname, cls, brute_t, fast_t, fp, speedup, modes_identical,
             seed_identical))
          techniques)
      (Workloads.Registry.all @ Workloads.Registry.latency_bound)
  in
  let geomean = function
    | [] -> None
    | l ->
        Some
          (exp
             (List.fold_left (fun a s -> a +. log s) 0. l
             /. float_of_int (List.length l)))
  in
  let speedups cls =
    List.filter_map
      (fun (_, _, c, _, _, _, s, _, _) -> if c = cls then s else None)
      cells
  in
  let gm_compute = geomean (speedups "compute") in
  let gm_latency = geomean (speedups "latency") in
  let all_modes = List.for_all (fun (_, _, _, _, _, _, _, ok, _) -> ok) cells in
  let all_seed =
    List.for_all
      (fun (_, _, _, _, _, _, _, _, s) -> s <> Some false)
      cells
  in
  let pp_gm = function Some g -> Printf.sprintf "%.2fx" g | None -> "-" in
  Printf.printf
    "geomean vs seed: compute %s, latency %s; modes %s; seed fingerprints %s\n"
    (pp_gm gm_compute) (pp_gm gm_latency)
    (if all_modes then "identical" else "DIFFER")
    (if not baseline_comparable then "not compared"
     else if all_seed then "identical"
     else "DIFFER");
  let oc = open_out (artifact_path "BENCH_soa_core.json") in
  Printf.fprintf oc
    "{\n  \"bench\": \"soa_core\",\n  \"config\": %S,\n  \"baseline\": %s,\n  \
     \"geomean_speedup_compute\": %s,\n  \"geomean_speedup_latency\": %s,\n  \
     \"all_identical\": %b,\n  \"seed_identical\": %s,\n  \"cells\": [\n"
    config_name
    (match baseline with Some p -> Printf.sprintf "%S" p | None -> "null")
    (match gm_compute with Some g -> Printf.sprintf "%.3f" g | None -> "null")
    (match gm_latency with Some g -> Printf.sprintf "%.3f" g | None -> "null")
    all_modes
    (if baseline_comparable then string_of_bool all_seed else "null");
  List.iteri
    (fun i (w, t, cls, bt, ft, fp, speedup, ok, seed) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"class\": %S, \
         \"brute_s\": %.4f, \"fast_s\": %.4f, \"fingerprint\": %S, \
         \"speedup_vs_seed\": %s, \"identical\": %b, \"seed_identical\": %s}%s\n"
        w t cls bt ft fp
        (match speedup with Some s -> Printf.sprintf "%.3f" s | None -> "null")
        ok
        (match seed with Some b -> string_of_bool b | None -> "null")
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" (artifact_path "BENCH_soa_core.json")
    (List.length cells);
  if not (all_modes && all_seed) then exit 1

(* RegDem benchmark: every suite workload run under baseline and RegDem
   in both stepping modes. The ff/bf fingerprints must agree (a
   divergence fails the process). Per cell: the occupancy gain demotion
   bought, the cycle cost it paid, the spill/fill traffic it generated,
   and the modelled energy factor vs baseline (Gpu_uarch.Energy_model) —
   all pure simulation counts, deterministic across machines, so the
   summary means are gate-able against bench/trajectory.json. Results
   land in BENCH_regdem.json for the CI artifact. *)
let regdem_bench ~quick cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let module Policy = Gpu_sim.Policy in
  let module Stats = Gpu_sim.Stats in
  let module E = Gpu_uarch.Energy_model in
  Printf.printf "%-16s %6s %6s %7s %9s %9s %9s  %s\n" "workload" "base-w"
    "rd-w" "gain" "cyc red" "spill+fill" "energy x" "results";
  let cells =
    List.map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        let base = Runner.execute arch Technique.Baseline kernel in
        let bf =
          Runner.execute ~fast_forward:false arch Technique.Regdem kernel
        in
        let ff = Runner.execute arch Technique.Regdem kernel in
        let identical =
          String.equal (Runner.fingerprint bf) (Runner.fingerprint ff)
        in
        let gain =
          float_of_int ff.Runner.theoretical_warps
          /. float_of_int base.Runner.theoretical_warps
        in
        let reduction = Runner.reduction_pct ~baseline:base ff in
        let traffic =
          ff.Runner.stats.Stats.spill_stores + ff.Runner.stats.Stats.fill_loads
        in
        let energy t (r : Runner.run) =
          (Technique.energy arch t r.Runner.stats).E.total_nj
        in
        let factor =
          energy Technique.Regdem ff /. energy Technique.Baseline base
        in
        let demoted =
          match ff.Runner.prepared.Technique.policy with
          | Policy.Regdem { spill_words; _ } -> spill_words > 0
          | _ -> false
        in
        Printf.printf "%-16s %6d %6d %6.2fx %8.1f%% %10d %8.2fx  %s\n%!"
          spec.Workloads.Spec.name base.Runner.theoretical_warps
          ff.Runner.theoretical_warps gain reduction traffic factor
          (if identical then "identical" else "DIFFER");
        (spec.Workloads.Spec.name, gain, reduction, traffic, factor, demoted,
         identical))
      (Workloads.Registry.all @ Workloads.Registry.latency_bound)
  in
  let mean f =
    List.fold_left (fun a c -> a +. f c) 0. cells
    /. float_of_int (List.length cells)
  in
  let mean_gain = mean (fun (_, g, _, _, _, _, _) -> g) in
  let mean_factor = mean (fun (_, _, _, _, f, _, _) -> f) in
  let demotions =
    List.length (List.filter (fun (_, _, _, _, _, d, _) -> d) cells)
  in
  let all_identical = List.for_all (fun (_, _, _, _, _, _, ok) -> ok) cells in
  Printf.printf
    "mean occupancy gain %.3fx, mean energy factor %.3fx, demotion applied \
     on %d/%d workloads; results %s\n"
    mean_gain mean_factor demotions (List.length cells)
    (if all_identical then "identical" else "DIFFER");
  let oc = open_out (artifact_path "BENCH_regdem.json") in
  Printf.fprintf oc
    "{\n  \"bench\": \"regdem\",\n  \"config\": %S,\n  \
     \"mean_occupancy_gain\": %.3f,\n  \"mean_energy_factor\": %.3f,\n  \
     \"demotions\": %d,\n  \"demotion_applied\": %b,\n  \
     \"all_identical\": %b,\n  \"cells\": [\n"
    (if quick then "quick" else "full")
    mean_gain mean_factor demotions (demotions > 0) all_identical;
  List.iteri
    (fun i (w, gain, red, traffic, factor, demoted, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"occupancy_gain\": %.3f, \
         \"cycle_reduction_pct\": %.2f, \"spill_traffic\": %d, \
         \"energy_factor\": %.3f, \"demoted\": %b, \"identical\": %b}%s\n"
        w gain red traffic factor demoted ok
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" (artifact_path "BENCH_regdem.json")
    (List.length cells);
  if not all_identical then exit 1

(* Telemetry overhead benchmark: every suite cell simulated four times —
   sink off, sink on (fast-forward), sink on (brute force), sink off again.
   The interleaved off runs bound timer drift; overhead is the on time
   against their mean. All four fingerprints must agree: the off/off pair
   shows the disabled sink perturbs nothing, and the on-ff/on-bf pair is
   the fast-forward equivalence suite re-run with telemetry enabled — the
   probe's issue-anchored hooks must not disturb cycle skipping. Results
   land in BENCH_telemetry_overhead.json for the CI artifact. *)
let telemetry_bench ~quick cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let techniques = Technique.all in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  Printf.printf "%-16s %-16s %9s %9s %9s %9s  %s\n" "workload" "technique"
    "off (s)" "on (s)" "on/off" "off/off" "results";
  let cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        List.map
          (fun technique ->
            let off1_t, off1 =
              time (fun () -> Runner.execute arch technique kernel)
            in
            let on_t, on_ff =
              time (fun () ->
                  Runner.execute ~telemetry:(Telemetry.Sink.create ()) arch
                    technique kernel)
            in
            let _, on_bf =
              time (fun () ->
                  Runner.execute ~fast_forward:false
                    ~telemetry:(Telemetry.Sink.create ()) arch technique kernel)
            in
            let off2_t, off2 =
              time (fun () -> Runner.execute arch technique kernel)
            in
            let fp = Runner.fingerprint in
            let identical =
              String.equal (fp off1) (fp on_ff)
              && String.equal (fp on_ff) (fp on_bf)
              && String.equal (fp off1) (fp off2)
            in
            let off_t = (off1_t +. off2_t) /. 2. in
            let overhead_pct = ((on_t /. Float.max off_t 1e-9) -. 1.) *. 100. in
            let off_delta_pct =
              Float.abs (off2_t -. off1_t) /. Float.max off_t 1e-9 *. 100.
            in
            Printf.printf "%-16s %-16s %9.3f %9.3f %+8.1f%% %8.1f%%  %s\n%!"
              spec.Workloads.Spec.name (Technique.name technique) off_t on_t
              overhead_pct off_delta_pct
              (if identical then "identical" else "DIFFER");
            (spec.Workloads.Spec.name, Technique.name technique, off_t, on_t,
             overhead_pct, off_delta_pct, identical))
          techniques)
      (Workloads.Registry.all @ Workloads.Registry.latency_bound)
  in
  let total_off =
    List.fold_left (fun a (_, _, o, _, _, _, _) -> a +. o) 0. cells
  in
  let total_on =
    List.fold_left (fun a (_, _, _, o, _, _, _) -> a +. o) 0. cells
  in
  (* The per-cell ratios are noisy on sub-millisecond runs; the aggregate
     over the whole suite is the number the <3% budget is judged on. *)
  let overhead_pct = ((total_on /. Float.max total_off 1e-9) -. 1.) *. 100. in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, ok) -> ok) cells
  in
  Printf.printf "aggregate overhead: %+.2f%%; results %s\n" overhead_pct
    (if all_identical then "identical (0 measurable overhead off)"
     else "DIFFER");
  let oc = open_out (artifact_path "BENCH_telemetry_overhead.json") in
  Printf.fprintf oc
    "{\n  \"bench\": \"telemetry_overhead\",\n  \"config\": %S,\n  \
     \"overhead_on_pct\": %.3f,\n  \"all_identical\": %b,\n  \"cells\": [\n"
    (if quick then "quick" else "full")
    overhead_pct all_identical;
  List.iteri
    (fun i (w, t, offt, ont, ov, noise, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"off_s\": %.4f, \
         \"on_s\": %.4f, \"overhead_pct\": %.2f, \"off_delta_pct\": %.2f, \
         \"identical\": %b}%s\n"
        w t offt ont ov noise ok
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n"
    (artifact_path "BENCH_telemetry_overhead.json")
    (List.length cells);
  if not all_identical then exit 1

(* Daemon benchmark: a [regmutex serve] daemon is started in-process (own
   domain, private socket, no disk store) and measured the way clients see
   it. Cold requests pay one full simulation; repeating them must come
   back warm — answered from the resident cache without touching a worker
   — at least 100x faster at the median. Throughput is measured on the
   duplicate-heavy workload the daemon exists for: N clients each request
   the same cell set concurrently, as N users running the same sweep
   would. Without the daemon each invocation is a fresh process computing
   every cell itself (the serial baseline: N x one cold pass); the daemon
   computes each distinct cell once — single-flight coalescing plus the
   resident cache serve the duplicates — so aggregate throughput at 4
   clients must be at least 2x the 4-serial-invocation baseline even on
   one core. Every daemon-served payload must carry a fingerprint
   bit-identical to an in-process simulation of the same cell. Results
   land in BENCH_serve.json for the CI artifact. *)
let serve_bench ~quick cfg =
  let module P = Serve.Protocol in
  let module Client = Serve.Client in
  let techniques = [ "baseline"; "regmutex" ] in
  let specs =
    if quick then Workloads.Registry.figure1 else Workloads.Registry.all
  in
  let cells =
    List.concat_map
      (fun spec ->
        List.map (fun t -> (spec.Workloads.Spec.name, t)) techniques)
      specs
  in
  let n_cells = List.length cells in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rmx-serve-bench-%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.jobs = 2;
      max_queue = 256;
      cache_dir = None;
      verbose = false;
    }
  in
  Engine.clear ();
  let daemon = Domain.spawn (fun () -> Serve.Server.run config) in
  let req ~variant (workload, technique) =
    P.Run (P.run_request ~variant ~quick ~workload ~technique ())
  in
  let expect_run what = function
    | P.Ok_run p -> p
    | P.Busy -> failwith (what ^ ": daemon stayed busy")
    | P.Error { code; message } ->
        failwith (Printf.sprintf "%s: %s (%s)" what message code)
    | _ -> failwith (what ^ ": unexpected response")
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let percentile p l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(int_of_float (p /. 100. *. float_of_int (Array.length a - 1) +. 0.5))
  in
  let c = Client.connect_retry socket in

  (* Cold then warm latency over the same cells. *)
  let cold =
    List.map
      (fun cell ->
        let dt, p =
          time (fun () ->
              expect_run "cold" (Client.request_retry c (req ~variant:"lat" cell)))
        in
        if p.P.warm then failwith "cold request answered warm";
        (cell, dt, p))
      cells
  in
  let warm =
    List.map
      (fun cell ->
        let dt, p =
          time (fun () ->
              expect_run "warm" (Client.request_retry c (req ~variant:"lat" cell)))
        in
        if not p.P.warm then failwith "repeat request missed the cache";
        (cell, dt, p))
      cells
  in
  let cold_lat = List.map (fun (_, dt, _) -> dt) cold in
  let warm_lat = List.map (fun (_, dt, _) -> dt) warm in
  let cold_p50 = percentile 50. cold_lat and cold_p99 = percentile 99. cold_lat in
  let warm_p50 = percentile 50. warm_lat and warm_p99 = percentile 99. warm_lat in
  let warm_speedup = cold_p50 /. Float.max warm_p50 1e-9 in
  Printf.printf
    "latency over %d cells: cold p50 %8.2fms p99 %8.2fms | warm p50 %8.3fms \
     p99 %8.3fms | warm %.0fx faster\n%!"
    n_cells (cold_p50 *. 1e3) (cold_p99 *. 1e3) (warm_p50 *. 1e3)
    (warm_p99 *. 1e3) warm_speedup;

  (* Daemon payloads vs an in-process simulation of the same cells. *)
  let fingerprints_identical =
    List.for_all2
      (fun spec_tech (_, _, (p : P.run_payload)) ->
        let wname, tname = spec_tech in
        let spec = Workloads.Registry.find wname in
        let technique =
          match tname with
          | "baseline" -> Regmutex.Technique.Baseline
          | _ -> Regmutex.Technique.Regmutex
        in
        let arch = cfg.Experiments.Exp_config.arch in
        let run =
          Engine.compute cfg (Engine.cell ~variant:"lat" ~arch technique spec)
        in
        String.equal (Regmutex.Runner.fingerprint run) p.P.fingerprint)
      cells cold
  in
  Printf.printf "daemon vs in-process fingerprints: %s\n%!"
    (if fingerprints_identical then "identical" else "DIFFER");

  (* Serial baseline: one CLI-style invocation computes every cell itself
     (cold in-memory cache, no daemon to share with). N invocations do N
     times that work, so the serial aggregate rate is independent of N. *)
  let serial_t, () =
    time (fun () ->
        List.iter
          (fun (wname, tname) ->
            let spec = Workloads.Registry.find wname in
            let technique =
              match tname with
              | "baseline" -> Regmutex.Technique.Baseline
              | _ -> Regmutex.Technique.Regmutex
            in
            let arch = cfg.Experiments.Exp_config.arch in
            ignore
              (Engine.compute cfg
                 (Engine.cell ~variant:"serial" ~arch technique spec)))
          cells)
  in
  let serial_rps = float_of_int n_cells /. Float.max serial_t 1e-9 in
  Printf.printf
    "serial baseline: %d cells in %6.2fs (%.2f cells/s per invocation)\n%!"
    n_cells serial_t serial_rps;

  (* Duplicate-heavy throughput: N concurrent clients, each requesting the
     whole (cold) cell set. Stats snapshots around the phases measure how
     many simulations actually ran vs how many run requests were served. *)
  let get_stats () =
    match Client.request c P.Stats with
    | P.Ok_stats kvs -> kvs
    | _ -> failwith "stats request failed"
  in
  let stat kvs k = try List.assoc k kvs with Not_found -> 0. in
  let stats0 = get_stats () in
  let throughput =
    List.map
      (fun n_clients ->
        let variant = Printf.sprintf "tp%d" n_clients in
        let wall, counts =
          time (fun () ->
              let doms =
                List.init n_clients (fun _ ->
                    Domain.spawn (fun () ->
                        let cc = Client.connect_retry socket in
                        let served =
                          List.fold_left
                            (fun acc cell ->
                              ignore
                                (expect_run variant
                                   (Client.request_retry cc (req ~variant cell)));
                              acc + 1)
                            0 cells
                        in
                        Client.close cc;
                        served))
              in
              List.map Domain.join doms)
        in
        let requests = List.fold_left ( + ) 0 counts in
        let rps = float_of_int requests /. Float.max wall 1e-9 in
        Printf.printf
          "%2d client%s: %4d requests in %6.2fs = %7.2f req/s (%.2fx serial \
           aggregate)\n%!"
          n_clients
          (if n_clients = 1 then " " else "s")
          requests wall rps (rps /. serial_rps);
        (n_clients, requests, wall, rps))
      [ 1; 4; 16 ]
  in
  let stats1 = get_stats () in
  let d k = stat stats1 k -. stat stats0 k in
  let computations = d "computations" in
  let coalesced = d "coalesced" in
  let cache_hits = d "cache_hits" in
  let run_requests = computations +. coalesced +. cache_hits in
  let coalescing_factor = run_requests /. Float.max computations 1. in
  Printf.printf
    "coalescing: %.0f run requests -> %.0f simulations (%.0f coalesced, %.0f \
     warm) = %.1fx duplicate suppression\n%!"
    run_requests computations coalesced cache_hits coalescing_factor;

  (match Client.request c P.Shutdown with
  | P.Ok_shutdown -> ()
  | _ -> failwith "shutdown request failed");
  Client.close c;
  Domain.join daemon;

  let tp4 =
    match List.find_opt (fun (n, _, _, _) -> n = 4) throughput with
    | Some (_, _, _, rps) -> rps
    | None -> 0.
  in
  let warm_ok = warm_speedup >= 100. in
  let tp4_ok = tp4 >= 2. *. serial_rps in
  Printf.printf "warm >= 100x cold: %s; 4-client throughput >= 2x serial: %s\n%!"
    (if warm_ok then "yes" else "NO")
    (if tp4_ok then "yes" else "NO");

  let oc = open_out (artifact_path "BENCH_serve.json") in
  Printf.fprintf oc
    "{\n  \"bench\": \"serve\",\n  \"config\": %S,\n  \"cells\": %d,\n  \
     \"cold_p50_ms\": %.3f,\n  \"cold_p99_ms\": %.3f,\n  \
     \"warm_p50_ms\": %.4f,\n  \"warm_p99_ms\": %.4f,\n  \
     \"warm_speedup\": %.1f,\n  \"serial_cells_per_s\": %.3f,\n  \
     \"fingerprints_identical\": %b,\n  \"coalescing\": {\"run_requests\": \
     %.0f, \"computations\": %.0f, \"coalesced\": %.0f, \"cache_hits\": %.0f, \
     \"factor\": %.2f},\n  \"throughput\": [\n"
    (if quick then "quick" else "full")
    n_cells (cold_p50 *. 1e3) (cold_p99 *. 1e3) (warm_p50 *. 1e3)
    (warm_p99 *. 1e3) warm_speedup serial_rps fingerprints_identical
    run_requests computations coalesced cache_hits coalescing_factor;
  List.iteri
    (fun i (n, requests, wall, rps) ->
      Printf.fprintf oc
        "    {\"clients\": %d, \"requests\": %d, \"wall_s\": %.3f, \
         \"requests_per_s\": %.2f, \"vs_serial\": %.2f}%s\n"
        n requests wall rps (rps /. serial_rps)
        (if i = List.length throughput - 1 then "" else ","))
    throughput;
  Printf.fprintf oc "  ],\n  \"warm_ok\": %b,\n  \"tp4_ok\": %b\n}\n" warm_ok
    tp4_ok;
  close_out oc;
  Printf.printf "wrote %s (%d cells, 1/4/16 clients)\n"
    (artifact_path "BENCH_serve.json")
    n_cells;
  if not (warm_ok && tp4_ok && fingerprints_identical) then exit 1

(* SIMT benchmark: the per-lane execution model against the warp-uniform
   one. Two cell sets. (1) Warp-uniform cells — the Table I registry (the
   Figure 1 set under `quick`) under every technique: each cell is run
   four ways (fast-forward/brute-force x uniform/--simt) and all four run
   fingerprints must be bit-identical, the subsystem's core contract (a
   warp-uniform program must not observe the lane dimension). The SIMT
   wall-time cost is the brute-force simt/uniform ratio, summarised as a
   geomean overhead factor (lower is better — it is the price every
   --simt run pays for lane-resolved registers and mask bookkeeping).
   (2) Divergent cells — the divergent registry under --simt, where the
   two execution models legitimately disagree, so only ff/bf identity is
   asserted; per-lane occupancy and divergent-branch counts are recorded
   and the baseline cell must actually diverge (else the kernel has
   stopped exercising the reconvergence stack). Results land in
   BENCH_simt.json for the CI artifact. *)
let simt_bench ~quick cfg =
  let module Runner = Regmutex.Runner in
  let module Technique = Regmutex.Technique in
  let module Stats = Gpu_sim.Stats in
  let simt = { Technique.default_options with Technique.simt = true } in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let config_name = if quick then "quick" else "full" in
  let techniques = Technique.all in
  let specs =
    if quick then Workloads.Registry.figure1 else Workloads.Registry.all
  in
  Printf.printf "%-16s %-16s %12s %12s %9s  %s\n" "workload" "technique"
    "uniform (s)" "simt (s)" "overhead" "fingerprints";
  let cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        let wname = spec.Workloads.Spec.name in
        List.map
          (fun technique ->
            let run ?options fast_forward =
              time (fun () ->
                  Runner.execute ?options ~fast_forward arch technique kernel)
            in
            let _, u_ff = run true in
            let ub_t, u_bf = run false in
            let _, s_ff = run ~options:simt true in
            let sb_t, s_bf = run ~options:simt false in
            let fp = Runner.fingerprint u_ff in
            let identical =
              List.for_all
                (fun r -> String.equal (Runner.fingerprint r) fp)
                [ u_bf; s_ff; s_bf ]
            in
            let overhead = sb_t /. Float.max ub_t 1e-9 in
            let tname = Technique.name technique in
            Printf.printf "%-16s %-16s %12.3f %12.3f %8.2fx  %s\n%!" wname
              tname ub_t sb_t overhead
              (if identical then "identical" else "DIFFER");
            (wname, tname, ub_t, sb_t, overhead, fp, identical))
          techniques)
      specs
  in
  let geomean = function
    | [] -> None
    | l ->
        Some
          (exp
             (List.fold_left (fun a s -> a +. log s) 0. l
             /. float_of_int (List.length l)))
  in
  let overhead_factor =
    geomean (List.map (fun (_, _, _, _, o, _, _) -> o) cells)
  in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, ok) -> ok) cells
  in
  (* Divergent cells: the models differ by design, so only ff/bf identity
     under --simt is asserted. Lane occupancy is active/(active+off). *)
  let divergent_cells =
    List.concat_map
      (fun spec ->
        let arch = Experiments.Exp_config.eval_arch cfg spec in
        let kernel = Experiments.Exp_config.kernel_of cfg spec in
        let wname = spec.Workloads.Spec.name in
        List.map
          (fun technique ->
            let ff =
              Runner.execute ~options:simt ~fast_forward:true arch technique
                kernel
            in
            let bf =
              Runner.execute ~options:simt ~fast_forward:false arch technique
                kernel
            in
            let identical =
              String.equal (Runner.fingerprint ff) (Runner.fingerprint bf)
            in
            let st = ff.Runner.stats in
            let active = float_of_int st.Stats.active_lane_cycles
            and off = float_of_int st.Stats.predicated_lane_cycles in
            let lane_occ =
              if active +. off > 0. then active /. (active +. off) else 1.
            in
            let tname = Technique.name technique in
            Printf.printf
              "%-16s %-16s lane-occ %5.1f%%  divergent-branches %6d  %s\n%!"
              wname tname (100. *. lane_occ) st.Stats.divergent_branches
              (if identical then "identical" else "DIFFER");
            (wname, tname, lane_occ, st.Stats.divergent_branches, identical))
          techniques)
      Workloads.Registry.divergent
  in
  let divergent_identical =
    List.for_all (fun (_, _, _, _, ok) -> ok) divergent_cells
  in
  let divergence_exercised =
    List.exists
      (fun (_, t, _, db, _) -> t = "baseline" && db > 0)
      divergent_cells
  in
  let pp_factor = function Some g -> Printf.sprintf "%.2fx" g | None -> "-" in
  Printf.printf
    "per-lane overhead (geomean, brute-force): %s; warp-uniform \
     fingerprints %s; divergent ff/bf %s; divergence %s\n"
    (pp_factor overhead_factor)
    (if all_identical then "identical" else "DIFFER")
    (if divergent_identical then "identical" else "DIFFER")
    (if divergence_exercised then "exercised" else "NOT EXERCISED");
  let oc = open_out (artifact_path "BENCH_simt.json") in
  Printf.fprintf oc
    "{\n  \"bench\": \"simt\",\n  \"config\": %S,\n  \
     \"overhead_factor\": %s,\n  \"all_identical\": %b,\n  \
     \"divergent_identical\": %b,\n  \"divergence_exercised\": %b,\n  \
     \"cells\": [\n"
    config_name
    (match overhead_factor with
    | Some g -> Printf.sprintf "%.3f" g
    | None -> "null")
    all_identical divergent_identical divergence_exercised;
  List.iteri
    (fun i (w, t, ub, sb, o, fp, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"uniform_brute_s\": \
         %.4f, \"simt_brute_s\": %.4f, \"overhead\": %.3f, \"fingerprint\": \
         %S, \"identical\": %b}%s\n"
        w t ub sb o fp ok
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ],\n  \"divergent_cells\": [\n";
  List.iteri
    (fun i (w, t, lo, db, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"technique\": %S, \"lane_occupancy\": %.4f, \
         \"divergent_branches\": %d, \"identical\": %b}%s\n"
        w t lo db ok
        (if i = List.length divergent_cells - 1 then "" else ","))
    divergent_cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d uniform cells, %d divergent cells)\n"
    (artifact_path "BENCH_simt.json")
    (List.length cells)
    (List.length divergent_cells);
  if not (all_identical && divergent_identical && divergence_exercised) then
    exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  let rec split_baseline acc = function
    | "--baseline" :: path :: rest -> (Some path, List.rev_append acc rest)
    | a :: rest -> split_baseline (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let baseline, args = split_baseline [] args in
  let cfg =
    if quick then Experiments.Exp_config.quick else Experiments.Exp_config.default
  in
  match args with
  | [ "perf" ] -> Perf.run ()
  | [ "sweep" ] -> sweep_bench cfg
  | [ "cycles" ] -> cycles_bench ~quick cfg
  | [ "soa" ] -> soa_bench ~quick ?baseline cfg
  | [ "regdem" ] -> regdem_bench ~quick cfg
  | [ "telemetry" ] -> telemetry_bench ~quick cfg
  | [ "serve" ] -> serve_bench ~quick cfg
  | [ "simt" ] -> simt_bench ~quick cfg
  | [ "report" ] | [ "report"; "--check" ] ->
      let module R = Experiments.Report in
      let check = args <> [ "report" ] in
      let root =
        match R.find_repo_root () with Some r -> r | None -> Sys.getcwd ()
      in
      let snap = R.scan ~dir:root in
      R.pp_snapshot Format.std_formatter snap;
      let trajectory =
        Filename.concat root (Filename.concat "bench" "trajectory.json")
      in
      (match R.load_baseline trajectory with
      | Error e ->
          Format.printf "@.no baseline: %s@." e;
          if check then exit 1
      | Ok base ->
          let o = R.check snap base in
          R.pp_outcome Format.std_formatter o;
          if check && o.R.failures <> [] then exit 1)
  | [] ->
      List.iter (fun (e : Suite.entry) -> run_experiment cfg e.Suite.name) Suite.all
  | names -> List.iter (run_experiment cfg) names
