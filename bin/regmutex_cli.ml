(* Command-line interface to the RegMutex library.

     regmutex list
     regmutex occupancy BFS [--half-rf]
     regmutex liveness BFS [--no-widen]
     regmutex transform BFS [--bs N] [--es N] [--half-rf]
     regmutex run BFS [--technique regmutex] [--half-rf] [--es N] [--grid N]
     regmutex metrics BFS [--format prom|json] [...run flags]
     regmutex trace BFS --out run.trace.json [--check] [...run flags]
     regmutex sweep [fig7 fig9a ...] [--jobs N] [--no-cache] [--quick] [--profile]
     regmutex serve [--socket PATH] [--jobs N] [--queue-depth N] [...]
     regmutex client ping|metrics|stats|compact|shutdown [--socket PATH]
     regmutex sweep --daemon [--socket PATH] [fig7 ...]
     regmutex fuzz --daemon [--socket PATH] [--seeds N]
     regmutex report [--check] [--tolerance PCT] [--write-baseline]
     regmutex storage *)

open Cmdliner

let arch_of half =
  let base = Experiments.Exp_config.default in
  if half then base.Experiments.Exp_config.half_arch
  else base.Experiments.Exp_config.arch

let spec_conv =
  let parse s =
    match Workloads.Registry.find s with
    | spec -> Ok spec
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown workload %S (try: %s)" s
               (String.concat ", " Workloads.Registry.names)))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Workloads.Spec.name)

let spec_arg =
  Arg.(required & pos 0 (some spec_conv) None & info [] ~docv:"WORKLOAD")

let half_flag =
  Arg.(value & flag & info [ "half-rf" ] ~doc:"Use the halved register file.")

let no_fast_forward_flag =
  Arg.(
    value & flag
    & info [ "no-fast-forward" ]
        ~doc:
          "Step the simulator cycle by cycle instead of fast-forwarding \
           over fully idle spans. Statistics and event traces are \
           bit-identical in both modes; this is the brute-force reference \
           (and much slower on memory-bound kernels).")

let simt_flag =
  Arg.(
    value & flag
    & info [ "simt" ]
        ~doc:
          "Per-thread (SIMT) execution: lane-resolved register values, \
           predicated execution under an active-lane mask, and an \
           immediate-post-dominator reconvergence stack per warp. \
           Warp-uniform programs produce bit-identical statistics and \
           store traces with and without this flag; divergent programs \
           (e.g. bfs_frontier) require it.")

let min_bs_of spec =
  let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
  Gpu_analysis.Liveness.live_at_barriers prog (Gpu_analysis.Liveness.analyze prog)

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the workloads of Table I." in
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-14s %2d regs  %-18s %s\n" s.Workloads.Spec.name
          (Gpu_sim.Kernel.regs_per_thread s.Workloads.Spec.kernel)
          (match s.Workloads.Spec.group with
          | Workloads.Spec.Occupancy_limited -> "occupancy-limited"
          | Workloads.Spec.Regfile_sensitive -> "regfile-sensitive")
          s.Workloads.Spec.description)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- occupancy ------------------------------------------------------ *)

let occupancy_cmd =
  let doc = "Occupancy analysis and |Es| heuristic for a workload." in
  let run spec half =
    let arch = arch_of half in
    let demand = Gpu_sim.Kernel.demand spec.Workloads.Spec.kernel in
    let base = Gpu_uarch.Occupancy.calculate arch demand in
    Format.printf "%s on %s: baseline %a@." spec.Workloads.Spec.name
      arch.Gpu_uarch.Arch_config.name Gpu_uarch.Occupancy.pp base;
    match Regmutex.Es_heuristic.choose arch ~demand ~min_bs:(min_bs_of spec) () with
    | None -> Format.printf "no viable |Es| candidate@."
    | Some c ->
        Format.printf "heuristic: %a@." Regmutex.Es_heuristic.pp c;
        List.iter
          (fun (cand : Regmutex.Es_heuristic.candidate) ->
            Format.printf "  |Es|=%2d |Bs|=%2d -> %2d warps, %2d sections@."
              cand.Regmutex.Es_heuristic.es cand.Regmutex.Es_heuristic.bs
              cand.Regmutex.Es_heuristic.warps cand.Regmutex.Es_heuristic.sections)
          c.Regmutex.Es_heuristic.candidates
  in
  Cmd.v (Cmd.info "occupancy" ~doc) Term.(const run $ spec_arg $ half_flag)

(* --- liveness ------------------------------------------------------- *)

let liveness_cmd =
  let doc = "Per-instruction liveness and pressure profile." in
  let no_widen =
    Arg.(value & flag & info [ "no-widen" ] ~doc:"Disable divergence widening.")
  in
  let run spec no_widen =
    let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
    let liveness = Gpu_analysis.Liveness.analyze ~widen:(not no_widen) prog in
    Format.printf "%a@." (Gpu_analysis.Liveness.pp prog) liveness;
    Format.printf "max pressure: %d; live at barriers: %d@."
      (Gpu_analysis.Liveness.max_pressure liveness)
      (Gpu_analysis.Liveness.live_at_barriers prog liveness)
  in
  Cmd.v (Cmd.info "liveness" ~doc) Term.(const run $ spec_arg $ no_widen)

(* --- transform ------------------------------------------------------ *)

let bs_opt = Arg.(value & opt (some int) None & info [ "bs" ] ~doc:"Force |Bs|.")
let es_opt = Arg.(value & opt (some int) None & info [ "es" ] ~doc:"Force |Es|.")

let transform_cmd =
  let doc = "Run the RegMutex compiler pass and print the instrumented kernel." in
  let run spec half bs es =
    let arch = arch_of half in
    let kernel = spec.Workloads.Spec.kernel in
    let prog = kernel.Gpu_sim.Kernel.program in
    let bs, es =
      match (bs, es) with
      | Some bs, Some es -> (bs, es)
      | _ -> (
          let demand = Gpu_sim.Kernel.demand kernel in
          match
            Regmutex.Es_heuristic.choose arch ~demand ~min_bs:(min_bs_of spec) ()
          with
          | Some c -> (c.Regmutex.Es_heuristic.bs, c.Regmutex.Es_heuristic.es)
          | None -> failwith "no viable split; pass --bs and --es")
    in
    let plan = Regmutex.Transform.apply ~bs ~es prog in
    Format.printf "%a@.@.%a@." Regmutex.Transform.pp_plan plan Gpu_isa.Program.pp
      plan.Regmutex.Transform.transformed
  in
  Cmd.v (Cmd.info "transform" ~doc)
    Term.(const run $ spec_arg $ half_flag $ bs_opt $ es_opt)

(* --- run ------------------------------------------------------------ *)

let technique_conv =
  let parse s =
    match Regmutex.Technique.of_name s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown technique %S" s))
  in
  Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf (Regmutex.Technique.name t))

let run_cmd =
  let doc = "Simulate a workload under a technique and print statistics." in
  let technique =
    Arg.(
      value
      & opt technique_conv Regmutex.Technique.Regmutex
      & info [ "technique"; "t" ] ~doc:"baseline | regmutex | paired | owf | rfv | regdem")
  in
  let grid =
    Arg.(value & opt (some int) None & info [ "grid" ] ~doc:"Override grid CTAs.")
  in
  let run spec half technique es grid no_ff simt =
    let arch = arch_of half in
    let spec =
      match grid with Some g -> Workloads.Spec.with_grid spec g | None -> spec
    in
    let options =
      { Regmutex.Technique.default_options with es_override = es; simt }
    in
    let run =
      Regmutex.Runner.execute ~options ~fast_forward:(not no_ff) arch technique
        spec.Workloads.Spec.kernel
    in
    Format.printf "%a@." Regmutex.Runner.pp run;
    Format.printf "%a@." Gpu_sim.Stats.pp run.Regmutex.Runner.stats;
    match run.Regmutex.Runner.prepared.Regmutex.Technique.plan with
    | Some plan -> Format.printf "%a@." Regmutex.Transform.pp_plan plan
    | None -> ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ spec_arg $ half_flag $ technique $ es_opt $ grid
      $ no_fast_forward_flag $ simt_flag)

(* --- metrics / trace -------------------------------------------------- *)

let grid_opt =
  Arg.(value & opt (some int) None & info [ "grid" ] ~doc:"Override grid CTAs.")

let technique_opt =
  Arg.(
    value
    & opt technique_conv Regmutex.Technique.Regmutex
    & info [ "technique"; "t" ] ~doc:"baseline | regmutex | paired | owf | rfv | regdem")

(* Shared body of the observability commands: one simulation with a
   telemetry sink attached. *)
let instrumented_run ?trace_capacity ?(simt = false) spec half technique es grid
    no_ff =
  let arch = arch_of half in
  let spec =
    match grid with Some g -> Workloads.Spec.with_grid spec g | None -> spec
  in
  let options =
    { Regmutex.Technique.default_options with es_override = es; simt }
  in
  let sink = Telemetry.Sink.create ?trace_capacity () in
  let run =
    Regmutex.Runner.execute ~options ~fast_forward:(not no_ff) ~telemetry:sink
      arch technique spec.Workloads.Spec.kernel
  in
  (sink, run)

let metrics_cmd =
  let doc =
    "Simulate a workload with the telemetry sink attached and dump the \
     metric registry (counters, gauges, histograms)."
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,prom) (Prometheus text) or $(b,json).")
  in
  let run spec half technique es grid no_ff simt format =
    let sink, _run = instrumented_run ~simt spec half technique es grid no_ff in
    match format with
    | `Prom ->
        Format.printf "%a@." Telemetry.Metrics.pp_prometheus
          sink.Telemetry.Sink.metrics
    | `Json ->
        Format.printf "%a@." Telemetry.Metrics.pp_json sink.Telemetry.Sink.metrics
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run $ spec_arg $ half_flag $ technique_opt $ es_opt $ grid_opt
      $ no_fast_forward_flag $ simt_flag $ format)

let trace_cmd =
  let doc =
    "Simulate a workload with the trace recorder attached and export a \
     Chrome trace-event JSON file loadable in Perfetto (ui.perfetto.dev): \
     one track per warp slot, SRP-hold and stall-episode spans, and \
     SRP-occupancy / memory-slot counter tracks."
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Output path (default: $(i,WORKLOAD).trace.json).")
  in
  let capacity =
    Arg.(
      value & opt (some int) None
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Trace ring capacity in records (default 1,000,000). When \
             exceeded, the oldest records are dropped and the export is \
             the most recent window.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Re-read the written file and validate the trace-event schema.")
  in
  let run spec half technique es grid no_ff simt out capacity check =
    let sink, _run =
      instrumented_run ?trace_capacity:capacity ~simt spec half technique es
        grid no_ff
    in
    let trace = sink.Telemetry.Sink.trace in
    let path =
      match out with
      | Some p -> p
      | None -> spec.Workloads.Spec.name ^ ".trace.json"
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let ppf = Format.formatter_of_out_channel oc in
        Telemetry.Trace.export_chrome ppf trace;
        Format.pp_print_flush ppf ());
    Printf.printf "wrote %s: %d records (%d dropped)\n" path
      (Telemetry.Trace.length trace)
      (Telemetry.Trace.dropped trace);
    if check then begin
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Telemetry.Json_check.validate_chrome_trace contents with
      | Ok n -> Printf.printf "schema ok: %d events\n" n
      | Error msg ->
          Printf.eprintf "schema check failed: %s\n" msg;
          exit 1
    end
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ spec_arg $ half_flag $ technique_opt $ es_opt $ grid_opt
      $ no_fast_forward_flag $ simt_flag $ out $ capacity $ check)

(* --- run-file --------------------------------------------------------- *)

let run_file_cmd =
  let doc =
    "Parse a kernel from a .rmx assembly file and simulate it under a \
     technique (see examples/vecscale.rmx)."
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let technique =
    Arg.(
      value
      & opt technique_conv Regmutex.Technique.Regmutex
      & info [ "technique"; "t" ] ~doc:"baseline | regmutex | paired | owf | rfv | regdem")
  in
  let grid = Arg.(value & opt int 48 & info [ "grid" ] ~doc:"Grid CTAs.") in
  let threads = Arg.(value & opt int 256 & info [ "threads" ] ~doc:"Threads per CTA.") in
  let params =
    Arg.(value & opt (list int) [ 8 ] & info [ "params" ] ~doc:"Launch parameters.")
  in
  let run path half technique grid threads params no_ff simt =
    match Gpu_isa.Parser.parse_file path with
    | exception Gpu_isa.Parser.Parse_error e ->
        Format.eprintf "%s: %a@." path Gpu_isa.Parser.pp_error e;
        exit 1
    | program ->
        let kernel =
          Gpu_sim.Kernel.make ~name:program.Gpu_isa.Program.name ~grid_ctas:grid
            ~cta_threads:threads ~params:(Array.of_list params) program
        in
        let arch = arch_of half in
        let options = { Regmutex.Technique.default_options with simt } in
        let run =
          Regmutex.Runner.execute ~options ~fast_forward:(not no_ff) arch
            technique kernel
        in
        Format.printf "%a@." Regmutex.Runner.pp run;
        Format.printf "%a@." Gpu_sim.Stats.pp run.Regmutex.Runner.stats;
        (match run.Regmutex.Runner.prepared.Regmutex.Technique.plan with
        | Some plan -> Format.printf "%a@." Regmutex.Transform.pp_plan plan
        | None -> ())
  in
  Cmd.v (Cmd.info "run-file" ~doc)
    Term.(
      const run $ path $ half_flag $ technique $ grid $ threads $ params
      $ no_fast_forward_flag $ simt_flag)

(* --- check ----------------------------------------------------------- *)

let check_cmd =
  let doc = "Audit every workload: register count vs Table I, max pressure, barrier liveness." in
  let run () =
    List.iter
      (fun spec ->
        let kernel = spec.Workloads.Spec.kernel in
        let prog = kernel.Gpu_sim.Kernel.program in
        let liveness = Gpu_analysis.Liveness.analyze prog in
        let names = Gpu_sim.Kernel.regs_per_thread kernel in
        let pressure = Gpu_analysis.Liveness.max_pressure liveness in
        let at_bar = Gpu_analysis.Liveness.live_at_barriers prog liveness in
        let status =
          if names <> spec.Workloads.Spec.paper_regs then "REGS-MISMATCH"
          else if pressure < names - 1 then "PRESSURE-LOW"
          else if at_bar > spec.Workloads.Spec.paper_bs then "BARRIER-HIGH"
          else "ok"
        in
        Printf.printf "%-14s names=%2d (paper %2d)  max-pressure=%2d  at-bar=%2d  %s\n"
          spec.Workloads.Spec.name names spec.Workloads.Spec.paper_regs pressure
          at_bar status)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ const ())

(* --- serve / client --------------------------------------------------- *)

let socket_opt =
  Arg.(
    value
    & opt string "regmutex.sock"
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the daemon.")

let serve_cmd =
  let doc =
    "Run the resident sweep daemon: a persistent worker pool serving \
     experiment, suite, fuzz, trace and metrics requests over a \
     Unix-domain socket (line-delimited JSON; see EXPERIMENTS.md). Warm \
     cache hits are answered in microseconds; identical concurrent \
     requests are coalesced; past the queue depth the daemon answers \
     $(i,busy)."
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains (0, the default, selects one per core).")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"In-flight job bound; further requests get a busy response.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Do not read or write the persistent store under _results/.")
  in
  let store_limit_mb =
    Arg.(
      value & opt (some int) None
      & info [ "store-limit-mb" ] ~docv:"MB"
          ~doc:
            "Size bound for the result store; least-recently-used entries \
             are evicted past it (in-flight entries are never evicted).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-request logging.")
  in
  let log_file =
    Arg.(
      value & opt (some string) None
      & info [ "log-file" ] ~docv:"PATH"
          ~doc:
            "Append structured JSON-lines log records to $(docv) (one \
             object per line; also retained in memory for the $(i,logs) \
             request).")
  in
  let log_level =
    let parse s =
      match Telemetry.Log.level_of_string s with
      | Ok l -> Ok l
      | Error m -> Error (`Msg m)
    in
    let print ppf l = Format.pp_print_string ppf (Telemetry.Log.level_name l) in
    Arg.(
      value
      & opt (conv (parse, print)) Telemetry.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum log level: debug | info | warn | error.")
  in
  let flight_dir =
    Arg.(
      value & opt string "_flight"
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the slow-request flight recorder (one merged \
             Chrome trace-event JSON per slow request). An empty string \
             disables per-request tracing entirely.")
  in
  let slow_ms =
    Arg.(
      value & opt float 500.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Latency threshold above which a request's merged trace is \
             written to the flight directory.")
  in
  let run socket jobs queue_depth no_cache store_limit_mb quiet log_file
      log_level flight_dir slow_ms =
    let config =
      {
        Serve.Server.socket_path = socket;
        jobs = (if jobs <= 0 then Experiments.Engine.auto_jobs () else jobs);
        max_queue = queue_depth;
        cache_dir = (if no_cache then None else Some "_results");
        store_limit_bytes = Option.map (fun mb -> mb * 1024 * 1024) store_limit_mb;
        verbose = not quiet;
        log_level;
        log_file;
        trace_dir = (if flight_dir = "" then None else Some flight_dir);
        slow_ms;
      }
    in
    Serve.Server.run config
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_opt $ jobs $ queue_depth $ no_cache $ store_limit_mb
      $ quiet $ log_file $ log_level $ flight_dir $ slow_ms)

let client_cmd =
  let doc =
    "Send one control request to a running daemon and print the result."
  in
  let action =
    let parse = function
      | "ping" -> Ok `Ping
      | "metrics" -> Ok `Metrics
      | "stats" -> Ok `Stats
      | "logs" -> Ok `Logs
      | "compact" -> Ok `Compact
      | "shutdown" -> Ok `Shutdown
      | s -> Error (`Msg (Printf.sprintf "unknown action %S" s))
    in
    let print ppf a =
      Format.pp_print_string ppf
        (match a with
        | `Ping -> "ping"
        | `Metrics -> "metrics"
        | `Stats -> "stats"
        | `Logs -> "logs"
        | `Compact -> "compact"
        | `Shutdown -> "shutdown")
    in
    Arg.(
      required
      & pos 0 (some (conv (parse, print))) None
      & info [] ~docv:"ACTION"
          ~doc:"ping | metrics | stats | logs | compact | shutdown")
  in
  let max_lines =
    Arg.(
      value & opt int 100
      & info [ "max-lines"; "n" ] ~docv:"N"
          ~doc:"For $(i,logs): tail at most $(docv) records.")
  in
  let run action max_lines socket =
    let c = Serve.Client.connect_retry ~attempts:1 socket in
    let req =
      match action with
      | `Ping -> Serve.Protocol.Ping
      | `Metrics -> Serve.Protocol.Metrics
      | `Stats -> Serve.Protocol.Stats
      | `Logs -> Serve.Protocol.Logs { max_lines }
      | `Compact -> Serve.Protocol.Compact
      | `Shutdown -> Serve.Protocol.Shutdown
    in
    (match Serve.Client.request c req with
    | Serve.Protocol.Ok_ping -> print_endline "pong"
    | Serve.Protocol.Ok_metrics text -> print_string text
    | Serve.Protocol.Ok_stats kvs ->
        List.iter (fun (k, v) -> Printf.printf "%-18s %.0f\n" k v) kvs
    | Serve.Protocol.Ok_logs { lines; dropped } ->
        List.iter print_endline lines;
        if dropped > 0 then
          Printf.eprintf "(%d older record(s) dropped from the ring)\n" dropped
    | Serve.Protocol.Ok_compact { files; bytes } ->
        Printf.printf "compacted: %d stale file(s), %d bytes\n" files bytes
    | Serve.Protocol.Ok_shutdown -> print_endline "shutting down"
    | Serve.Protocol.Busy ->
        prerr_endline "daemon busy";
        exit 2
    | Serve.Protocol.Error { code; message } ->
        Printf.eprintf "error (%s): %s\n" code message;
        exit 1
    | _ -> ());
    Serve.Client.close c
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ action $ max_lines $ socket_opt)

(* --- sweep ----------------------------------------------------------- *)

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time the host-side phases (prepare, simulate, merge, oracle \
           stages) and print a report to stderr at exit.")

let with_profile profile f =
  if not profile then f ()
  else begin
    Telemetry.Profile.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Format.eprintf "%a@?" Telemetry.Profile.pp_report ())
      f
  end

let sweep_cmd =
  let doc =
    "Run the experiment sweep (tables, figures, ablations) with parallel \
     workers and a persistent result store under _results/."
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the simulation fan-out. 0 selects one \
             worker per available core; 1 (the default) runs serially. \
             Output is byte-identical for any value.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Do not read or write the persistent store under _results/.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Quarter-size grids.")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiments to run (default: all). See $(b,sweep --list).")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiment names and exit.")
  in
  let daemon_flag =
    Arg.(
      value & flag
      & info [ "daemon" ]
          ~doc:
            "Thin-client mode: send the sweep to a running $(b,regmutex \
             serve) daemon (see $(b,--socket)) and print its rendering — \
             byte-identical to computing in-process.")
  in
  let run jobs no_cache quick names list_only no_ff profile daemon socket =
    let module Engine = Experiments.Engine in
    let module Suite = Experiments.Suite in
    if list_only then
      List.iter
        (fun (e : Suite.entry) -> Printf.printf "%-10s %s\n" e.Suite.name e.Suite.doc)
        Suite.all
    else if daemon then begin
      let c = Serve.Client.connect_retry socket in
      (match
         Serve.Client.request_retry c
           (Serve.Protocol.Suite { entries = names; quick })
       with
      | Serve.Protocol.Ok_suite { output } -> print_string output
      | Serve.Protocol.Busy ->
          prerr_endline "daemon busy";
          exit 2
      | Serve.Protocol.Error { code; message } ->
          Printf.eprintf "error (%s): %s\n" code message;
          exit 1
      | _ ->
          prerr_endline "unexpected response";
          exit 1);
      Serve.Client.close c
    end
    else begin
      Engine.set_jobs jobs;
      Engine.set_fast_forward (not no_ff);
      Engine.set_cache_dir (if no_cache then None else Some "_results");
      let cfg =
        if quick then Experiments.Exp_config.quick
        else Experiments.Exp_config.default
      in
      let entries =
        match names with
        | [] -> Suite.all
        | names ->
            List.map
              (fun n ->
                match Suite.find n with
                | Some e -> e
                | None ->
                    Printf.eprintf "unknown experiment %S; available: %s\n" n
                      (String.concat ", " Suite.names);
                    exit 1)
              names
      in
      let t0 = Unix.gettimeofday () in
      with_profile profile (fun () -> Suite.run cfg entries);
      (* Stderr, so stdout stays comparable across job counts and runs. *)
      Printf.eprintf "sweep: %d simulation(s) in %.1fs (%d worker%s%s%s)\n"
        (Engine.simulations ())
        (Unix.gettimeofday () -. t0)
        (Engine.jobs ())
        (if Engine.jobs () = 1 then "" else "s")
        (if no_cache then ", no store" else ", store: _results/")
        (if no_ff then ", brute-force" else "")
    end
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ jobs $ no_cache $ quick $ names $ list_flag
      $ no_fast_forward_flag $ profile_flag $ daemon_flag $ socket_opt)

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: generate random kernels and check every \
     architectural invariant (technique store-trace equality, fast-forward \
     bit-identity, SRP conservation, forward progress). Failing seeds are \
     shrunk and persisted under the corpus directory."
  in
  let seeds =
    Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N" ~doc:"Fresh seeds to test.")
  in
  let seed0 =
    Arg.(value & opt int 0 & info [ "seed0" ] ~docv:"S" ~doc:"First fresh seed.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the seed sweep. 0 selects one worker per \
             available core; results are deterministic for any value.")
  in
  let dir =
    Arg.(
      value & opt string Fuzz.Corpus.default_dir
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Corpus directory for failing seeds and shrunk counterexamples.")
  in
  let no_corpus =
    Arg.(
      value & flag
      & info [ "no-corpus" ]
          ~doc:"Do not read or write the corpus directory (no artifacts).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Skip delta-debugging of counterexamples.")
  in
  let inject =
    let fault_conv =
      Arg.conv
        ( (fun s ->
            match Fuzz.Oracle.fault_of_string s with
            | Ok f -> Ok f
            | Error m -> Error (`Msg m)),
          fun ppf f -> Format.pp_print_string ppf (Fuzz.Oracle.fault_name f) )
    in
    Arg.(
      value & opt (some fault_conv) None
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:
            "Self-test mode: inject a fault (drop-acquire | early-release | \
             drop-mov | oob-spill | mask-corrupt) into each case — a program \
             mutation for the first four, a corrupted SIMT active mask for \
             mask-corrupt — and verify the oracle catches it on at least one \
             seed. Exit status 0 iff caught.")
  in
  let daemon_flag =
    Arg.(
      value & flag
      & info [ "daemon" ]
          ~doc:
            "Thin-client mode: run the batch on a $(b,regmutex serve) \
             daemon (see $(b,--socket)). The daemon never persists a \
             corpus; failing seeds are reported in the output only.")
  in
  let run seeds seed0 jobs dir no_corpus no_shrink inject profile daemon socket =
    if daemon then begin
      let c = Serve.Client.connect_retry socket in
      match
        Serve.Client.request_retry c
          (Serve.Protocol.Fuzz
             {
               n_seeds = seeds;
               seed0;
               inject = Option.map Fuzz.Oracle.fault_name inject;
               do_shrink = not no_shrink;
             })
      with
      | Serve.Protocol.Ok_fuzz { failures; caught; output; _ } ->
          print_string output;
          Serve.Client.close c;
          exit
            (match inject with
            | None -> if failures = 0 then 0 else 1
            | Some _ -> if caught >= 1 then 0 else 1)
      | Serve.Protocol.Busy ->
          prerr_endline "daemon busy";
          exit 2
      | Serve.Protocol.Error { code; message } ->
          Printf.eprintf "error (%s): %s\n" code message;
          exit 1
      | _ ->
          prerr_endline "unexpected response";
          exit 1
    end
    else begin
      let config =
        {
          Fuzz.Driver.n_seeds = seeds;
          seed0;
          jobs = (if jobs = 0 then Domain.recommended_domain_count () else jobs);
          dir = (if no_corpus then None else Some dir);
          inject;
          do_shrink = not no_shrink;
        }
      in
      let summary =
        with_profile profile (fun () ->
            Fuzz.Driver.run Format.std_formatter config)
      in
      exit (Fuzz.Driver.exit_code config summary)
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seeds $ seed0 $ jobs $ dir $ no_corpus $ no_shrink $ inject
      $ profile_flag $ daemon_flag $ socket_opt)

(* --- report --------------------------------------------------------- *)

let report_cmd =
  let doc =
    "Summarize the committed BENCH_*.json perf artifacts and compare them \
     against the baseline trajectory."
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit 1 when any metric or the geomean regresses beyond the \
             tolerance, any invariant is false, or no baseline exists.")
  in
  let tolerance =
    Arg.(
      value & opt float 5.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed slowdown in percent, per metric and on the geomean.")
  in
  let write_flag =
    Arg.(
      value & flag
      & info [ "write-baseline" ]
          ~doc:
            "Rewrite the baseline from the current artifacts instead of \
             comparing.")
  in
  let dir_opt =
    Arg.(
      value & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory holding the artifacts (default: the repo root).")
  in
  let baseline_opt =
    Arg.(
      value & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline file (default: $(b,bench/trajectory.json) under the \
             repo root).")
  in
  let run check tol_pct write dir baseline =
    let module R = Experiments.Report in
    let root =
      match dir with
      | Some d -> d
      | None -> (
          match R.find_repo_root () with Some r -> r | None -> Sys.getcwd ())
    in
    let snap = R.scan ~dir:root in
    let baseline =
      match baseline with
      | Some p -> p
      | None -> Filename.concat root (Filename.concat "bench" "trajectory.json")
    in
    if write then begin
      R.write_baseline baseline snap;
      Format.printf "wrote %s (%d metrics, %d invariants, from %d artifacts)@."
        baseline
        (List.length snap.R.metrics)
        (List.length snap.R.invariants)
        (List.length snap.R.sources)
    end
    else begin
      R.pp_snapshot Format.std_formatter snap;
      match R.load_baseline baseline with
      | Error e ->
          Format.printf "@.no baseline: %s@." e;
          if check then exit 1
      | Ok base ->
          let o = R.check ~tolerance:(tol_pct /. 100.) snap base in
          R.pp_outcome Format.std_formatter o;
          if check && o.R.failures <> [] then exit 1
    end
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ check_flag $ tolerance $ write_flag $ dir_opt $ baseline_opt)

(* --- storage -------------------------------------------------------- *)

let storage_cmd =
  let doc = "Hardware storage cost of each technique." in
  let run () = Experiments.Storage.print Experiments.Exp_config.default in
  Cmd.v (Cmd.info "storage" ~doc) Term.(const run $ const ())

let () =
  let doc = "RegMutex: inter-warp GPU register time-sharing (ISCA 2018)" in
  let info = Cmd.info "regmutex" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; occupancy_cmd; liveness_cmd; transform_cmd; run_cmd;
            metrics_cmd; trace_cmd; run_file_cmd; check_cmd; sweep_cmd;
            fuzz_cmd; serve_cmd; client_cmd; report_cmd; storage_cmd ]))
