(** Structured simulation event log.

    An optional sink attached to a run ({!Gpu.run_config}); the SMs emit
    typed events for CTA lifecycle, SRP traffic and barrier arrival. The
    buffer is bounded: recording stops silently once [capacity] events are
    held (the predicate-based {!create} can pre-filter instead).

    Events power the timeline example and debugging sessions; they are off
    by default and cost nothing when absent. *)

type event =
  | Cta_launched of { sm : int; cta : int }
  | Cta_retired of { sm : int; cta : int }
  | Acquire_granted of { sm : int; cta : int; warp : int; section : int }
  | Acquire_stalled of { sm : int; cta : int; warp : int }
  | Release of { sm : int; cta : int; warp : int; section : int }
  | Barrier_arrived of { sm : int; cta : int; warp : int }
  | Barrier_released of { sm : int; cta : int }
  | Warp_exited of { sm : int; cta : int; warp : int }

type entry = {
  cycle : int;
  event : event;
}

type t

(** [create ?capacity ?keep ()] — [capacity] defaults to 100,000 entries;
    [keep] pre-filters events (default: keep everything). *)
val create : ?capacity:int -> ?keep:(event -> bool) -> unit -> t

(** Used by the SM; respects the filter and the capacity bound. *)
val emit : t -> cycle:int -> event -> unit

(** Entries in emission order. *)
val entries : t -> entry list

val length : t -> int

(** Did the buffer fill up (later events were dropped)? *)
val truncated : t -> bool

(** Entries concerning one (cta, warp). *)
val for_warp : t -> cta:int -> warp:int -> entry list

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit
