type run_config = {
  arch : Gpu_uarch.Arch_config.t;
  policy : Policy.t;
  record_stores : bool;
  trace_warp0 : bool;
  max_cycles : int;
  events : Event_trace.t option;
}

let default_config arch policy =
  { arch; policy; record_stores = false; trace_warp0 = false;
    max_cycles = 20_000_000; events = None }

let build_sms config kernel stats memory mem_sys =
  Array.init config.arch.Gpu_uarch.Arch_config.n_sms (fun sm_id ->
      Sm.create ?events:config.events config.arch ~sm_id ~policy:config.policy
        ~kernel ~memory ~mem_sys ~stats ~record_stores:config.record_stores
        ~trace_warp0:(config.trace_warp0 && sm_id = 0))

let run ?(observe = fun ~cycle:_ _ -> ()) config kernel =
  let stats = Stats.create () in
  let memory = Memory.create () in
  let arch = config.arch in
  let mem_sys = Mem_system.create arch ~n_sms:arch.Gpu_uarch.Arch_config.n_sms in
  let sms = build_sms config kernel stats memory mem_sys in
  if Array.exists (fun sm -> Sm.cta_capacity sm = 0) sms then
    invalid_arg "Gpu.run: kernel exceeds SM resources (zero occupancy)";
  let grid = kernel.Kernel.grid_ctas in
  let next_cta = ref 0 in
  let cycle = ref 0 in
  let retired () = Array.fold_left (fun acc sm -> acc + Sm.retired_ctas sm) 0 sms in
  while retired () < grid && !cycle < config.max_cycles do
    (* CTA dispatch: at most one launch per SM per cycle, round robin over
       SMs so early SMs do not monopolise the grid. *)
    Array.iter
      (fun sm ->
        if !next_cta < grid && Sm.try_launch sm ~global_cta:!next_cta ~cycle:!cycle
        then incr next_cta)
      sms;
    Array.iter (fun sm -> Sm.step sm ~cycle:!cycle) sms;
    observe ~cycle:!cycle sms;
    let resident = Array.fold_left (fun acc sm -> acc + Sm.resident_warps sm) 0 sms in
    stats.Stats.resident_warp_cycles <- stats.Stats.resident_warp_cycles + resident;
    stats.Stats.warp_capacity_cycles <-
      stats.Stats.warp_capacity_cycles
      + (arch.Gpu_uarch.Arch_config.max_warps * Array.length sms);
    incr cycle
  done;
  stats.Stats.cycles <- !cycle;
  stats.Stats.timed_out <- retired () < grid;
  stats

let probe config kernel =
  let stats = Stats.create () in
  let memory = Memory.create () in
  let mem_sys =
    Mem_system.create config.arch ~n_sms:config.arch.Gpu_uarch.Arch_config.n_sms
  in
  Sm.create config.arch ~sm_id:0 ~policy:config.policy ~kernel ~memory ~mem_sys
    ~stats ~record_stores:false ~trace_warp0:false

let theoretical_warps config kernel =
  let sm = probe config kernel in
  Sm.cta_capacity sm * Kernel.warps_per_cta config.arch kernel

let srp_sections_of config kernel = Sm.srp_sections (probe config kernel)
