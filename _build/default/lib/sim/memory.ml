type t = { global : (int, int) Hashtbl.t }

let create () = { global = Hashtbl.create 4096 }

let mask addr = addr land 0x3fffffff

(* Knuth multiplicative hash with an xor-shift finaliser: the shift folds
   high bits into the low ones so low-bit tests (parity, small masks) vary
   across addresses too. Stable pseudo-random contents for unwritten
   addresses. *)
let default_value addr =
  let v = mask addr * 2654435761 in
  (v lxor (v lsr 15)) land 0xffff

let read_global t addr =
  let addr = mask addr in
  match Hashtbl.find_opt t.global addr with
  | Some v -> v
  | None -> default_value addr

let write_global t addr v = Hashtbl.replace t.global (mask addr) v

let footprint t = Hashtbl.length t.global

let written t =
  Hashtbl.fold (fun addr v acc -> (addr, v) :: acc) t.global []
  |> List.sort compare
