(** Functional (value-level) execution of one instruction.

    Timing, policy enforcement and status transitions live in {!Sm}; this
    module only computes values and memory effects, which makes the
    semantics unit-testable in isolation and keeps transforms verifiable:
    a RegMutex-transformed program must produce the same {!outcome}
    sequence and stores as the original. *)

type ctx = {
  regs : int array;
  params : int array;
  tid : int;     (** linear thread id of the warp's first lane *)
  ctaid : int;
  ntid : int;    (** threads per CTA *)
  nctaid : int;  (** CTAs in the grid *)
  warp_id : int; (** warp index within the CTA *)
  read : Gpu_isa.Instr.space -> int -> int;
  write : Gpu_isa.Instr.space -> int -> int -> unit;
}

type outcome =
  | Next         (** fall through to [pc + 1] *)
  | Goto of int  (** branch taken *)
  | Stop         (** [Exit] *)
  | Sync         (** [Bar] — CTA barrier *)
  | Acq          (** [Acquire] — policy handled by the SM *)
  | Rel          (** [Release] *)

val operand : ctx -> Gpu_isa.Instr.operand -> int

(** Evaluate the instruction: performs register writes and memory effects,
    returns the control outcome. Division and remainder by zero yield 0;
    shift counts are masked to 5 bits (32-bit GPU semantics). *)
val step : ctx -> Gpu_isa.Instr.t -> outcome
