(** Warp schedulers. Each SM has [n_schedulers] of them; scheduler [id]
    owns the warp slots with [slot mod n_schedulers = id].

    [Gto] is GPGPU-Sim's default greedy-then-oldest policy: keep issuing
    from the current warp until it stalls, then switch to the runnable warp
    with the smallest priority (ties broken by age, i.e. launch order).
    [Lrr] is loose round-robin. [Two_level n] drains a fetch group of [n]
    consecutive slots before rotating to the next group with runnable
    warps (Narasiman et al., MICRO 2011). *)

type kind = Gto | Lrr | Two_level of int

type t

val create : kind -> id:int -> n_schedulers:int -> t

val owns : t -> slot:int -> bool

(** [pick t ~n_slots ~get ~can_issue ~priority] returns the warp to issue
    from this cycle, if any. [priority] orders runnable warps before age
    (smaller first) — OWF uses it to prefer owner warps; pass
    [fun _ -> 0] otherwise. *)
val pick :
  t ->
  n_slots:int ->
  get:(int -> Warp.t option) ->
  can_issue:(Warp.t -> bool) ->
  priority:(Warp.t -> int) ->
  Warp.t option
