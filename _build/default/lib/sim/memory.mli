(** Functional device memory.

    Global memory is a sparse address → value map; reads of never-written
    addresses return a deterministic pseudo-random pattern so that
    data-driven kernels (loop trip counts loaded from memory, BFS frontiers,
    …) behave reproducibly without an explicit initialisation pass. *)

type t

val create : unit -> t

(** Addresses are masked to 30 bits; negative addresses wrap. *)
val read_global : t -> int -> int
val write_global : t -> int -> int -> unit

(** Deterministic content of an unwritten address. *)
val default_value : int -> int

(** Number of addresses explicitly written. *)
val footprint : t -> int

(** [written t] lists [(addr, value)] pairs, sorted by address — the
    observable output used by equivalence checks. *)
val written : t -> (int * int) list
