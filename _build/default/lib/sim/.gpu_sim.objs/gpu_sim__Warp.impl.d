lib/sim/warp.ml: Array Gpu_isa
