lib/sim/mem_system.ml: Array Float Gpu_uarch
