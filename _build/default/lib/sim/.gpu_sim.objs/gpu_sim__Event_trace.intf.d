lib/sim/event_trace.mli: Format
