lib/sim/exec.ml: Array Gpu_isa
