lib/sim/stats.mli: Format Gpu_isa Hashtbl
