lib/sim/policy.ml: Format Gpu_uarch
