lib/sim/scheduler.mli: Warp
