lib/sim/sm.mli: Event_trace Gpu_uarch Kernel Mem_system Memory Policy Stats
