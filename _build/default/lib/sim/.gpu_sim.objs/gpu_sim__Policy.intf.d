lib/sim/policy.mli: Format Gpu_uarch
