lib/sim/stats.ml: Array Format Gpu_isa Hashtbl List
