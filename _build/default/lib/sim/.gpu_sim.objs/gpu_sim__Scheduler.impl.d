lib/sim/scheduler.ml: Warp
