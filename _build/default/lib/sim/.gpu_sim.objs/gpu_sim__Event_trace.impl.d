lib/sim/event_trace.ml: Format List
