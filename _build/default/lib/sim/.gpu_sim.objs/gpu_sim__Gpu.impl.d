lib/sim/gpu.ml: Array Event_trace Gpu_uarch Kernel Mem_system Memory Policy Sm Stats
