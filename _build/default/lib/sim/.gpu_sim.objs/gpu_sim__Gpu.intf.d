lib/sim/gpu.mli: Event_trace Gpu_uarch Kernel Policy Sm Stats
