lib/sim/mem_system.mli: Gpu_uarch
