lib/sim/kernel.mli: Gpu_isa Gpu_uarch
