lib/sim/sm.ml: Array Event_trace Exec Format Gpu_isa Gpu_uarch Kernel List Mem_system Memory Policy Printf Scheduler Stats Warp
