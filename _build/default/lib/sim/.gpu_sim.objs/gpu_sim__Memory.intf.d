lib/sim/memory.mli:
