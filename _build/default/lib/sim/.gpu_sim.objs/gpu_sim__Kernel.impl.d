lib/sim/kernel.ml: Gpu_isa Gpu_uarch
