lib/sim/warp.mli: Gpu_isa
