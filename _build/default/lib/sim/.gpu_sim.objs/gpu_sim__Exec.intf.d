lib/sim/exec.mli: Gpu_isa
