type t = {
  lat_global : int;
  dram_interval : float;
  slots : int array array;    (* per SM: busy-until cycle per slot *)
  mutable dram_free : float;  (* earliest cycle the service channel is free *)
  mutable issued : int;
  mutable total_latency : int;
}

let create (cfg : Gpu_uarch.Arch_config.t) ~n_sms =
  {
    lat_global = cfg.lat_global;
    dram_interval = cfg.dram_interval;
    slots = Array.init n_sms (fun _ -> Array.make cfg.mem_slots 0);
    dram_free = 0.;
    issued = 0;
    total_latency = 0;
  }

let find_slot t ~sm ~cycle =
  let slots = t.slots.(sm) in
  let n = Array.length slots in
  let rec go i = if i >= n then None else if slots.(i) <= cycle then Some i else go (i + 1) in
  go 0

let slot_free t ~sm ~cycle = find_slot t ~sm ~cycle <> None

let issue_global t ~sm ~cycle =
  match find_slot t ~sm ~cycle with
  | None -> invalid_arg "Mem_system.issue_global: no free slot"
  | Some i ->
      let start = Float.max (float_of_int cycle) t.dram_free in
      let completion = int_of_float (Float.ceil start) + t.lat_global in
      t.dram_free <- start +. t.dram_interval;
      t.slots.(sm).(i) <- completion;
      t.issued <- t.issued + 1;
      t.total_latency <- t.total_latency + (completion - cycle);
      completion

let issued t = t.issued

let mean_latency t =
  if t.issued = 0 then 0. else float_of_int t.total_latency /. float_of_int t.issued
