(** Whole-GPU simulation driver: dispatches the grid's CTAs over the SMs
    and steps them cycle by cycle until the grid completes. *)

type run_config = {
  arch : Gpu_uarch.Arch_config.t;
  policy : Policy.t;
  record_stores : bool;  (** collect per-warp store traces *)
  trace_warp0 : bool;    (** collect the PC trace of CTA 0 / warp 0 *)
  max_cycles : int;      (** watchdog; the run flags [timed_out] past it *)
  events : Event_trace.t option;  (** structured event sink, off by default *)
}

val default_config : Gpu_uarch.Arch_config.t -> Policy.t -> run_config

(** Run a kernel to completion; returns the populated statistics.
    [observe] is called once per cycle after all SMs stepped (e.g. to
    sample register-allocation timelines).
    @raise Sm.Verification_failure in verification mode on unsound
    extended-set accesses. *)
val run : ?observe:(cycle:int -> Sm.t array -> unit) -> run_config -> Kernel.t -> Stats.t

(** Theoretical resident warps per SM under the run's policy (the paper's
    occupancy numerator). *)
val theoretical_warps : run_config -> Kernel.t -> int

(** SRP sections per SM under the run's policy (0 for non-SRP policies). *)
val srp_sections_of : run_config -> Kernel.t -> int
