(* Gaussian (Rodinia): Gaussian elimination row updates. Small register
   footprint (12), streaming multiply-subtract over matrix rows reached by
   dependent loads; occupancy on the full register file is limited by
   threads, not registers. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 column counter, r2 cursor, r3 row accumulator,
   r4 pivot, r6 multiplier, r7 seed, r8..r11 update temps. *)
let program =
  assemble ~name:"gaussian"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"col"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ mul 6 (r 4) (r 4);
            shr 7 (r 6) (imm 2) ]
        @ Shape.bulge ~keep:[ 4; 6 ] ~seed:7 ~acc:3 ~first:8 ~last:11 ~hold:2 ()
        @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "Gaussian";
    description = "Gaussian elimination row update: small footprint, streaming";
    kernel =
      Gpu_sim.Kernel.make ~name:"gaussian" ~grid_ctas:72 ~cta_threads:256
        ~params:[| 14 |] program;
    paper_regs = 12;
    paper_rounded = 12;
    paper_bs = 8;
    group = Spec.Regfile_sensitive;
  }
