(** Workload metadata: one entry per application of Table I.

    The kernels are synthetic stand-ins for the Rodinia / Parboil /
    CUDA-SDK binaries (see DESIGN.md): each reproduces its application's
    per-thread register count, register-pressure profile shape, memory
    intensity class and CTA geometry, which are the properties RegMutex's
    behaviour depends on. *)

type group =
  | Occupancy_limited  (** Figure 7 set: registers limit occupancy on the
                           full register file *)
  | Regfile_sensitive  (** Figure 8 set: evaluated with a halved register
                           file *)

type t = {
  name : string;          (** paper name, e.g. "BFS" *)
  description : string;
  kernel : Gpu_sim.Kernel.t;
  paper_regs : int;       (** registers per thread, Table I *)
  paper_rounded : int;    (** parenthesised value of Table I *)
  paper_bs : int;         (** base set size, Table I *)
  group : group;
}

(** [|Es|] implied by Table I ([paper_rounded - paper_bs]). *)
val paper_es : t -> int

(** Replace the grid size (experiments scale runs to the simulated SM
    count). *)
val with_grid : t -> int -> t

(** Check that the authored kernel's register count matches Table I.
    Returns [Error message] on mismatch. *)
val validate : t -> (unit, string) result
