(* SPMV (Parboil): sparse matrix–vector product, CSR rows. Memory-bound:
   the inner loop loads a column index and then the vector element it
   names — a naturally dependent load pair — before the small accumulate
   bulge (16 registers total). *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 row counter, r2 row cursor, r3 dot product,
   r4 row length, r5 nonzero counter, r6 element cursor, r7 column,
   r8 vector element, r9 seed, r10..r15 accumulate bulge. *)
let program =
  assemble ~name:"spmv"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"row"
        ([ load I.Global 4 (r 2);
           and_ 4 (r 4) (imm 3);
           add 4 (r 4) (imm 1);
           add 6 (r 2) (r 0) ]
        @ Shape.counted_loop ~ctr:5 ~trips:(r 4) ~name:"nz"
            ([ load I.Global 7 (r 6);
               (* Gather x[col]: the address depends on the loaded column. *)
               load I.Global 8 (r 7);
               mad 9 (r 7) (r 8) (r 3) ]
            @ Shape.bulge ~keep:[ 7; 8 ] ~seed:9 ~acc:3 ~first:10 ~last:15 ~hold:1 ()
            @ [ add 6 (r 6) (imm 8) ])
        @ [ store ~ofs:0x10000000 I.Global (r 2) (r 3); add 2 (r 2) (imm 4) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "SPMV";
    description = "CSR sparse matrix-vector product: dependent gather, memory-bound";
    kernel =
      Gpu_sim.Kernel.make ~name:"spmv" ~grid_ctas:72 ~cta_threads:256
        ~params:[| 8 |] program;
    paper_regs = 16;
    paper_rounded = 16;
    paper_bs = 12;
    group = Spec.Regfile_sensitive;
  }
