(* MRI-Q (Parboil): non-Cartesian MRI reconstruction, Q-matrix kernel.
   Compute-dense relative to its memory traffic: for each sample the kernel
   chases the k-space trajectory, then evaluates trigonometric series
   approximations (multiply-heavy chains). 21 registers per thread. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 sample counter, r2 cursor, r3 accumulator,
   r4 k-space value, r5 phase, r6..r9 series temps, r10 seed,
   r11..r20 series bulge. *)
let program =
  assemble ~name:"mri_q"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"sample"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:3
        @ [ mul 5 (r 4) (r 0);
            mad 7 (r 5) (imm 7) (r 5);
            mul 8 (r 7) (r 5);
            mad 9 (r 8) (imm 3) (r 7);
            add 10 (r 9) (r 5);
            add 6 (r 10) (r 8) ]
        @ Shape.bulge ~keep:[ 4; 5; 7; 8 ] ~seed:6 ~acc:3 ~first:11 ~last:20 ~hold:4 ()
        @ [ mad 3 (r 9) (imm 1) (r 3) ])
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])

let spec =
  {
    Spec.name = "MRI-Q";
    description = "MRI Q-matrix: multiply-heavy series evaluation, light memory traffic";
    kernel =
      Gpu_sim.Kernel.make ~name:"mri_q" ~grid_ctas:72 ~cta_threads:256
        ~params:[| 14 |] program;
    paper_regs = 21;
    paper_rounded = 24;
    paper_bs = 18;
    group = Spec.Occupancy_limited;
  }
