(* LavaMD (Rodinia): molecular-dynamics particle forces within a cut-off
   box. A nested neighbour loop chases the neighbour list and evaluates a
   wide force bulge (21 registers); small CTAs (64 threads), so CTA slots
   — not registers — limit occupancy on the full register file. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 box counter, r2 cursor, r3 force accumulator,
   r4 neighbour counter, r5 neighbour, r9..r13 distance temps, r14/r15
   seeds, r16..r36 force bulge. *)
let program =
  assemble ~name:"lavamd"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"box"
        (Shape.counted_loop ~ctr:4 ~trips:(param 1) ~name:"neigh"
           (Shape.chase I.Global ~addr:2 ~dst:5 ~hops:2
           @ [ sub 9 (r 5) (r 0);
               mul 11 (r 9) (r 9);
               shr 13 (r 11) (imm 2);
               add 14 (r 13) (r 11);
               (* Force components retained across the evaluation. *)
               add 6 (r 9) (imm 3);
               sub 7 (r 9) (imm 5);
               xor 8 (r 11) (imm 7);
               shl 10 (r 13) (imm 1);
               add 12 (r 14) (r 6);
               add 15 (r 14) (r 9) ]
           @ Shape.bulge ~keep:[ 6; 7; 8; 9; 10; 11; 12; 13; 14 ]
               ~seed:15 ~acc:3 ~first:16 ~last:36 ~hold:5 ())
        @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "LavaMD";
    description = "molecular dynamics: nested neighbour loop, 21-register force bulge";
    kernel =
      Gpu_sim.Kernel.make ~name:"lavamd" ~grid_ctas:96 ~cta_threads:64
        ~params:[| 5; 4 |] program;
    paper_regs = 37;
    paper_rounded = 40;
    paper_bs = 28;
    group = Spec.Regfile_sensitive;
  }
