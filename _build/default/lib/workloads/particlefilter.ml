(* ParticleFilter (Rodinia): sequential Monte-Carlo tracking. Each thread
   owns particles; the likelihood evaluation is seeded directly by an
   observation load, so the warp holds its extended set across part of the
   memory latency — with the large |Es| this kernel needs, SRP sections are
   few and acquires contend (the paper's example of limited benefit
   despite an occupancy boost). *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 particle counter, r2 cursor, r3 weight sum,
   r4 state, r5..r9 motion-model temps, r10 flag, r11 observation seed,
   r12..r31 likelihood bulge. *)
let program =
  assemble ~name:"particlefilter"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"particle"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ sub 6 (r 4) (r 0);
            mul 7 (r 6) (r 6);
            shr 8 (r 7) (imm 4);
            add 9 (r 8) (r 6);
            cmp I.Gt 10 (r 9) (imm 0);
            sel 5 (r 10) (r 9) (r 7);
            load ~ofs:8 I.Global 11 (r 2);
            (* Conditioning absorbs the observation latency outside the
               acquire window; the long likelihood plateau is what keeps
               the extended set busy. *)
            xor 11 (r 11) (r 9) ]
        @ Shape.bulge ~keep:[ 4; 6; 7; 8; 10 ] ~seed:11 ~acc:3 ~first:12 ~last:31 ~hold:14 ()
        @ [ mad 3 (r 5) (imm 1) (r 3);
            store ~ofs:0x10000000 I.Global (r 2) (r 3) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "ParticleFilter";
    description = "particle filter: likelihood bulge held across observation loads";
    kernel =
      Gpu_sim.Kernel.make ~name:"particlefilter" ~grid_ctas:72 ~cta_threads:256
        ~params:[| 10 |] program;
    paper_regs = 32;
    paper_rounded = 32;
    paper_bs = 20;
    group = Spec.Occupancy_limited;
  }
