(** Code-shape combinators shared by the synthetic workloads.

    Every combinator returns a {!Gpu_isa.Builder.item} list to be spliced
    into a kernel. Register indices are explicit: the caller owns the
    register budget (Table I fixes each kernel's count). *)

open Gpu_isa

(** [global_id ~gid] computes the linear thread id into [r gid]:
    [gid = ctaid * ntid + tid]. *)
val global_id : gid:int -> Builder.item list

(** [counted_loop ~ctr ~trips ~name body] is a while-style loop running
    [trips] iterations (zero-safe): [ctr] is initialised from [trips] and
    decremented; labels [name] and [name ^ "_end"] are claimed. *)
val counted_loop :
  ctr:int -> trips:Instr.operand -> name:string -> Builder.item list ->
  Builder.item list

(** [bulge ?keep ~seed ~acc ~first ~last ~hold ()] creates a
    register-pressure bulge: registers [first..last] are defined from
    [seed] (independently, so the window opens only once the seed is
    ready), all stay live for [hold] extra instructions, then collapse
    through a tree reduction into [acc]. The [seed] and every register in
    [keep] are consumed after the fold, so they stay live across the whole
    bulge — peak pressure is [base + keep + seed + width], letting kernels
    hit their Table I allocation exactly. Live count ramps up, plateaus,
    and falls — the Figure 1 fluctuation pattern. *)
val bulge :
  ?keep:int list ->
  seed:int -> acc:int -> first:int -> last:int -> hold:int -> unit ->
  Builder.item list

(** [strided_loads space ~addr ~dsts ~stride] issues independent loads
    [dsts.(i) <- mem.(addr + i*stride)] (memory-level parallelism). *)
val strided_loads :
  Instr.space -> addr:int -> dsts:int list -> stride:int -> Builder.item list

(** [chase space ~addr ~dst ~hops] issues [hops] {e dependent} loads — each
    address derives from the previous value (pointer chasing), so the
    sequence serializes on memory latency. Clobbers [addr]; the last value
    is left in [dst]. *)
val chase :
  Instr.space -> addr:int -> dst:int -> hops:int -> Builder.item list

(** [alu_chain ~regs ~len ~seed] emits [len] dependent ALU instructions
    cycling over [regs] (pure compute padding; no pressure change beyond
    [regs]). *)
val alu_chain : regs:int list -> len:int -> seed:Instr.operand -> Builder.item list
