lib/workloads/bfs.ml: Gpu_isa Gpu_sim Shape Spec
