lib/workloads/mergesort.ml: Gpu_isa Gpu_sim Shape Spec
