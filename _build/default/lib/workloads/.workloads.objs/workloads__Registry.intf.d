lib/workloads/registry.mli: Spec
