lib/workloads/mri_q.ml: Gpu_isa Gpu_sim Shape Spec
