lib/workloads/gaussian.ml: Gpu_isa Gpu_sim Shape Spec
