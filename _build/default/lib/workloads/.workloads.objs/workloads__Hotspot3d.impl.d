lib/workloads/hotspot3d.ml: Gpu_isa Gpu_sim Shape Spec
