lib/workloads/spec.mli: Gpu_sim
