lib/workloads/particlefilter.ml: Gpu_isa Gpu_sim Shape Spec
