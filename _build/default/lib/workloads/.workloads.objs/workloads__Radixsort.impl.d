lib/workloads/radixsort.ml: Gpu_isa Gpu_sim Shape Spec
