lib/workloads/tpacf.ml: Gpu_isa Gpu_sim Shape Spec
