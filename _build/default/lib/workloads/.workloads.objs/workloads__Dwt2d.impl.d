lib/workloads/dwt2d.ml: Gpu_isa Gpu_sim Shape Spec
