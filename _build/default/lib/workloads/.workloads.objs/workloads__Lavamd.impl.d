lib/workloads/lavamd.ml: Gpu_isa Gpu_sim Shape Spec
