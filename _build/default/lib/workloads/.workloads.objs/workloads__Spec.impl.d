lib/workloads/spec.ml: Gpu_sim Printf
