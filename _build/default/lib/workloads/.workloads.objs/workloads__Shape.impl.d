lib/workloads/shape.ml: Array Gpu_isa Instr List
