lib/workloads/cutcp.ml: Gpu_isa Gpu_sim Shape Spec
