lib/workloads/sad.ml: Gpu_isa Gpu_sim Shape Spec
