lib/workloads/heartwall.ml: Gpu_isa Gpu_sim Shape Spec
