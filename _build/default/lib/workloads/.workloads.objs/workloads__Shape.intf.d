lib/workloads/shape.mli: Builder Gpu_isa Instr
