lib/workloads/registry.ml: Bfs Cutcp Dwt2d Gaussian Heartwall Hotspot3d Lavamd List Mergesort Montecarlo Mri_q Particlefilter Radixsort Sad Spec Spmv Srad String Tpacf
