lib/workloads/spmv.ml: Gpu_isa Gpu_sim Shape Spec
