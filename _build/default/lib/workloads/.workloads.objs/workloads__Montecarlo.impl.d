lib/workloads/montecarlo.ml: Gpu_isa Gpu_sim Shape Spec
