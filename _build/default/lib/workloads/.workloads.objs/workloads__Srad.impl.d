lib/workloads/srad.ml: Gpu_isa Gpu_sim Shape Spec
