(* RadixSort (CUDA SDK): per-digit counting passes. Each pass chases the
   key list, updates a shared-memory histogram, and ranks keys (the
   pressure bulge); passes are separated by CTA barriers. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 pass counter, r2 key cursor, r3 rank
   accumulator, r4 shift amount, r5 key, r6 digit, r7 histogram slot,
   r8 histogram value, r9 element counter, r10 seed, r11..r14 ranking
   temps, r20..r32 scatter bulge. *)
let program =
  assemble ~name:"radixsort"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mov 4 (imm 0) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"pass"
        ([ mul 2 (r 0) (imm 4) ]
        @ Shape.counted_loop ~ctr:9 ~trips:(param 1) ~name:"elem"
            (Shape.chase I.Global ~addr:2 ~dst:5 ~hops:2
            @ [ shr 6 (r 5) (r 4);
                and_ 6 (r 6) (imm 15);
                add 7 (r 6) tid;
                load I.Shared 8 (r 7);
                add 8 (r 8) (imm 1);
                store I.Shared (r 7) (r 8);
                add 10 (r 8) (r 6) ]
            @ Shape.alu_chain ~regs:[ 11; 12; 13; 14 ] ~len:4 ~seed:(r 10)
            @ [ (* Rank digits retained across the scatter network. *)
                add 15 (r 11) (imm 3);
                sub 16 (r 12) (imm 5);
                xor 17 (r 13) (imm 7);
                shl 18 (r 14) (imm 1);
                add 19 (r 15) (r 16) ]
            @ Shape.bulge ~keep:[ 5; 6; 7; 8; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19 ]
                ~seed:14 ~acc:3 ~first:20 ~last:32 ~hold:2 ())
        @ [ bar; add 4 (r 4) (imm 4) ])
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])

let spec =
  {
    Spec.name = "RadixSort";
    description = "radix sort counting passes: shared-memory histogram, barriers";
    kernel =
      Gpu_sim.Kernel.make ~name:"radixsort" ~grid_ctas:48 ~cta_threads:256
        ~shmem_bytes:4096 ~params:[| 2; 8 |] program;
    paper_regs = 33;
    paper_rounded = 36;
    paper_bs = 30;
    group = Spec.Occupancy_limited;
  }
