(* MonteCarlo (CUDA SDK): option-pricing path simulation. A linear
   congruential generator drives per-path payoffs; each path samples the
   underlying price series from memory, mixing compute and latency. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 path counter, r2 rng state, r3 payoff sum,
   r4..r6 step temps, r7 seed, r8..r12 payoff bulge. *)
let program =
  assemble ~name:"montecarlo"
    (Shape.global_id ~gid:0
    @ [ mad 2 (r 0) (imm 2654435761) (imm 12345); mov 3 (imm 0) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"path"
        ([ mad 2 (r 2) (imm 1103515245) (imm 12345);
           and_ 2 (r 2) (imm 0xfffff) ]
        @ Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ shr 5 (r 4) (imm 8);
            mul 5 (r 5) (r 5);
            sub 6 (r 5) (r 4);
            shr 7 (r 6) (imm 1) ]
        @ Shape.bulge ~keep:[ 4; 5 ] ~seed:7 ~acc:3 ~first:8 ~last:12 ~hold:3 ())
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])

let spec =
  {
    Spec.name = "MonteCarlo";
    description = "Monte-Carlo option pricing: RNG-driven sampled paths";
    kernel =
      Gpu_sim.Kernel.make ~name:"montecarlo" ~grid_ctas:72 ~cta_threads:256
        ~params:[| 16 |] program;
    paper_regs = 13;
    paper_rounded = 16;
    paper_bs = 12;
    group = Spec.Regfile_sensitive;
  }
