(* HotSpot3D (Rodinia): 3-D thermal stencil. Iterates over z-planes; each
   step chases the plane indirection, loads two more neighbours, evaluates
   the stencil update (pressure bulge), stores, and synchronises the CTA
   before the next plane — the barrier sits at a low-pressure point, as the
   deadlock rule requires. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 plane counter, r2 cursor, r3 result,
   r4..r6 neighbours, r10/r11 sums, r15 seed, r16..r31 stencil bulge. *)
let program =
  assemble ~name:"hotspot3d"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"plane"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ load ~ofs:8 I.Global 5 (r 2);
            load ~ofs:16 I.Global 6 (r 2);
            add 10 (r 4) (r 5);
            add 11 (r 10) (r 6);
            (* Plane coefficients retained across the stencil update. *)
            add 7 (r 4) (imm 3);
            sub 8 (r 5) (imm 5);
            xor 9 (r 6) (imm 7);
            shl 12 (r 10) (imm 1);
            shr 13 (r 11) (imm 1);
            add 14 (r 12) (r 13);
            shr 15 (r 11) (imm 2) ]
        @ Shape.bulge ~keep:[ 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14 ] ~seed:15
            ~acc:3 ~first:16 ~last:31 ~hold:3 ()
        @ [ store ~ofs:0x10000000 I.Global (r 2) (r 3);
            bar ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "HotSpot3D";
    description = "3-D thermal stencil: per-plane barrier, 16-register update bulge";
    kernel =
      Gpu_sim.Kernel.make ~name:"hotspot3d" ~grid_ctas:72 ~cta_threads:256
        ~shmem_bytes:2048 ~params:[| 10 |] program;
    paper_regs = 32;
    paper_rounded = 32;
    paper_bs = 24;
    group = Spec.Occupancy_limited;
  }
