type group =
  | Occupancy_limited
  | Regfile_sensitive

type t = {
  name : string;
  description : string;
  kernel : Gpu_sim.Kernel.t;
  paper_regs : int;
  paper_rounded : int;
  paper_bs : int;
  group : group;
}

let paper_es t = t.paper_rounded - t.paper_bs

let with_grid t grid_ctas =
  { t with kernel = { t.kernel with Gpu_sim.Kernel.grid_ctas } }

let validate t =
  let actual = Gpu_sim.Kernel.regs_per_thread t.kernel in
  if actual <> t.paper_regs then
    Error
      (Printf.sprintf "%s: kernel uses %d registers, Table I says %d" t.name
         actual t.paper_regs)
  else if t.paper_bs + paper_es t <> t.paper_rounded then
    Error (Printf.sprintf "%s: inconsistent Bs/Es split" t.name)
  else Ok ()
