(* CUTCP (Parboil): cutoff-limited Coulombic potential. For each grid point
   the kernel chases the neighbour-atom list (dependent loads), computes a
   distance, and — only within the cutoff — evaluates an expensive potential
   polynomial (the pressure bulge sits inside that conditional, exercising
   divergence-conservative liveness). 25 registers per thread. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 atom counter, r2 atom cursor, r3 potential
   accumulator, r4..r6 atom coordinates, r7 squared distance, r8 cutoff
   flag, r9 scratch, r10/r11 conditioned seed, r12..r24 polynomial bulge. *)
let program =
  assemble ~name:"cutcp"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 8) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"atom"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ shr 5 (r 4) (imm 4);
            shr 6 (r 4) (imm 8);
            sub 4 (r 4) (r 0);
            sub 5 (r 5) (r 0);
            mul 9 (r 4) (r 4);
            mad 7 (r 5) (r 5) (r 9);
            mad 7 (r 6) (r 6) (r 7);
            cmp I.Lt 8 (r 7) (imm 2000000000);
            bz (r 8) "skip";
            (* Within the cutoff: evaluate the potential polynomial. *)
            shr 10 (r 7) (imm 3);
            add 11 (r 10) (r 7) ]
        @ Shape.bulge ~keep:[ 4; 5; 6; 8; 9; 10 ] ~seed:11 ~acc:3 ~first:12 ~last:24 ~hold:4 ()
        @ [ label "skip" ])
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])

let spec =
  {
    Spec.name = "CUTCP";
    description = "cutoff Coulombic potential: conditional high-pressure polynomial";
    kernel =
      Gpu_sim.Kernel.make ~name:"cutcp" ~grid_ctas:72 ~cta_threads:256
        ~params:[| 20 |] program;
    paper_regs = 25;
    paper_rounded = 28;
    paper_bs = 20;
    group = Spec.Occupancy_limited;
  }
