(* DWT2D (Rodinia): 2-D discrete wavelet transform. Two phases separated by
   a CTA barrier: rows are staged through shared memory, then the column
   pass streams coefficients from global memory (dependent loads) and
   evaluates the wide filter — a 24-register bulge, giving the paper's
   largest per-thread register count (44). *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 row counter, r2 global cursor, r3 accumulator,
   r4 shared slot, r5..r8 row taps, r9 staged value, r10 column counter,
   r11..r13 column taps, r14 staging temp, r15 seed, r16..r19 staging
   temps, r20..r43 column-filter bulge. *)
let program =
  assemble ~name:"dwt2d"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4); mov 4 tid ]
    (* Phase 1: row filter, staged into shared memory. *)
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"row"
        (Shape.strided_loads I.Global ~addr:2 ~dsts:[ 5; 6; 7; 8 ] ~stride:4
        @ [ add 9 (r 5) (r 6);
            sub 16 (r 7) (r 8);
            mul 17 (r 9) (imm 3);
            add 18 (r 16) (r 17);
            shr 19 (r 18) (imm 1);
            add 9 (r 19) (r 9);
            store I.Shared (r 4) (r 9);
            add 2 (r 2) (imm 16) ])
    @ [ bar ]
    (* Phase 2: column filter over staged rows and streamed coefficients. *)
    @ Shape.counted_loop ~ctr:10 ~trips:(param 1) ~name:"col"
        (Shape.chase I.Global ~addr:2 ~dst:11 ~hops:2
        @ [ load I.Shared 12 (r 4);
            load ~ofs:32 I.Shared 13 (r 4);
            add 14 (r 11) (r 12);
            add 15 (r 14) (r 13) ]
        @ Shape.bulge ~keep:[ 1; 5; 6; 7; 8; 9; 11; 12; 13; 14; 16; 17; 18; 19 ]
            ~seed:15 ~acc:3 ~first:20 ~last:43 ~hold:3 ())
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])

let spec =
  {
    Spec.name = "DWT2D";
    description = "2-D wavelet transform: shared-memory staging, 24-register column filter";
    kernel =
      Gpu_sim.Kernel.make ~name:"dwt2d" ~grid_ctas:36 ~cta_threads:256
        ~shmem_bytes:4096 ~params:[| 6; 8 |] program;
    paper_regs = 44;
    paper_rounded = 44;
    paper_bs = 38;
    group = Spec.Occupancy_limited;
  }
