(* SAD (Parboil): sum of absolute differences for motion estimation.
   Block matching: reference pixels are compared, then the candidate pixel
   arrives straight into a dense, long-held 20-register accumulation
   network — the paper's example of a large |Es| shrinking the SRP and
   capping the benefit of the occupancy boost. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 block counter, r2 cursor, r3 SAD accumulator,
   r4..r7 reference pixels, r8 candidate seed, r9 scratch,
   r10..r29 matching bulge. *)
let program =
  assemble ~name:"sad"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"block"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ Shape.strided_loads I.Global ~addr:2 ~dsts:[ 5; 6; 7 ] ~stride:4
        @ [ sub 9 (r 4) (r 5);
            un I.Abs 9 (r 9);
            sub 8 (r 6) (r 7);
            un I.Abs 8 (r 8);
            add 9 (r 8) (r 9);
            load ~ofs:20 I.Global 8 (r 2);
            (* Conditioning absorbs the candidate-pixel latency; the dense
               matching network then occupies the extended set for long
               stretches of pure compute. *)
            xor 8 (r 8) (r 9) ]
        @ Shape.bulge ~keep:[ 4; 5; 6; 7 ] ~seed:8 ~acc:3 ~first:10 ~last:29 ~hold:20 ()
        @ [ mad 3 (r 9) (imm 1) (r 3);
            store ~ofs:0x10000000 I.Global (r 2) (r 3);
            add 2 (r 2) (imm 16) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "SAD";
    description = "sum of absolute differences: dense long-held 20-register network";
    kernel =
      Gpu_sim.Kernel.make ~name:"sad" ~grid_ctas:72 ~cta_threads:256
        ~params:[| 12 |] program;
    paper_regs = 30;
    paper_rounded = 32;
    paper_bs = 20;
    group = Spec.Occupancy_limited;
  }
