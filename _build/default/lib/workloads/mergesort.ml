(* MergeSort (CUDA SDK): shared-memory bitonic-style merge steps. Heavy
   shared-memory use (12 KB per CTA) limits occupancy; the register
   footprint is small (15), so RegMutex's pick cannot raise occupancy —
   the paper's one slowdown case. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 step counter, r2 shared slot, r3 checksum,
   r4 partner slot, r5/r6 elements, r7 flag, r8 seed, r9..r14 merge
   temps. *)
let program =
  assemble ~name:"mergesort"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0);
        mov 2 tid;
        load I.Global 5 (r 0);
        store I.Shared (r 2) (r 5);
        bar ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"step"
        ([ xor 4 (r 2) (imm 32);
           load I.Shared 5 (r 2);
           load I.Shared 6 (r 4);
           cmp I.Lt 7 (r 5) (r 6);
           sel 8 (r 7) (r 5) (r 6) ]
        @ Shape.bulge ~keep:[ 4; 5; 6 ] ~seed:8 ~acc:3 ~first:9 ~last:14 ~hold:2 ()
        (* Barrier between the reads and the write keeps cross-warp
           shared-memory traffic deterministic. *)
        @ [ bar; store I.Shared (r 2) (r 8); bar ])
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])

let spec =
  {
    Spec.name = "MergeSort";
    description = "shared-memory merge: shmem-limited occupancy, small footprint";
    kernel =
      Gpu_sim.Kernel.make ~name:"mergesort" ~grid_ctas:32 ~cta_threads:256
        ~shmem_bytes:12288 ~params:[| 20 |] program;
    paper_regs = 15;
    paper_rounded = 16;
    paper_bs = 12;
    group = Spec.Regfile_sensitive;
  }
