(* TPACF (Parboil): two-point angular correlation function. Pairwise
   angular distances (galaxy pairs reached by dependent loads) binned into
   a shared-memory histogram; the bin search and correlation update form a
   14-register bulge. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 pair counter, r2 cursor, r3 checksum, r4/r5
   galaxy coordinates, r6 dot product, r7 bin, r8 histogram slot, r9 bin
   value, r10..r12 scratch, r13 seed, r14..r27 correlation bulge. *)
let program =
  assemble ~name:"tpacf"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"pair"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ shr 5 (r 4) (imm 5);
            mul 6 (r 4) (r 5);
            shr 7 (r 6) (imm 8);
            and_ 7 (r 7) (imm 15);
            add 8 (r 7) tid;
            load I.Shared 9 (r 8);
            add 9 (r 9) (imm 1);
            store I.Shared (r 8) (r 9);
            div 10 (r 6) (imm 97);
            rem 11 (r 10) (imm 31);
            add 12 (r 11) (r 10);
            add 13 (r 12) (r 7) ]
        @ Shape.bulge ~keep:[ 4; 5; 6; 7; 8; 10; 11; 12 ] ~seed:13 ~acc:3 ~first:14 ~last:27 ~hold:3 ())
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])

let spec =
  {
    Spec.name = "TPACF";
    description = "angular correlation: shared-memory histogram, bin-search bulge";
    kernel =
      Gpu_sim.Kernel.make ~name:"tpacf" ~grid_ctas:96 ~cta_threads:128
        ~shmem_bytes:2048 ~params:[| 14 |] program;
    paper_regs = 28;
    paper_rounded = 28;
    paper_bs = 20;
    group = Spec.Regfile_sensitive;
  }
