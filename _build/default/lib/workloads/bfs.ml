(* BFS (Rodinia): breadth-first search. Memory-bound frontier expansion: an
   outer loop over the thread's nodes and a data-driven inner loop over each
   node's edges, each edge reached through a dependent (pointer-chasing)
   load chain. Register pressure bulges while a neighbour's update is
   computed. 21 registers per thread (Table I). *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 outer counter, r2 node cursor, r3 accumulator,
   r4 node value, r5 edge counter, r6 edge cursor, r7 neighbour,
   r8..r20 update bulge. *)
let program =
  assemble ~name:"bfs"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"node"
        ([ load I.Global 4 (r 2);
           and_ 5 (r 4) (imm 3);
           add 5 (r 5) (imm 2);
           add 6 (r 4) (r 0) ]
        @ Shape.counted_loop ~ctr:5 ~trips:(r 5) ~name:"edge"
            (Shape.chase I.Global ~addr:6 ~dst:7 ~hops:2
            @ Shape.bulge ~keep:[ 4 ] ~seed:7 ~acc:3 ~first:8 ~last:20 ~hold:2 ())
        @ [ store ~ofs:0x10000000 I.Global (r 2) (r 3);
            add 2 (r 2) (imm 4) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "BFS";
    description = "breadth-first search: irregular, memory-bound frontier expansion";
    kernel =
      Gpu_sim.Kernel.make ~name:"bfs" ~grid_ctas:36 ~cta_threads:512
        ~params:[| 8 |] program;
    paper_regs = 21;
    paper_rounded = 24;
    paper_bs = 18;
    group = Spec.Occupancy_limited;
  }
