(* HeartWall (Rodinia): heart-wall motion tracking. Template correlation
   with a data-dependent branch: points on the wall take the expensive
   correlation path (16-register bulge), points off it take a cheap update
   — a divergence diamond the conservative liveness must widen. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 point counter, r2 cursor, r3 displacement
   accumulator, r4 sample, r5 template, r6 difference, r7 on-wall flag,
   r8..r10 cheap-path temps, r11 seed, r12..r27 correlation bulge. *)
let program =
  assemble ~name:"heartwall"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"point"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ shr 5 (r 4) (imm 3);
            sub 6 (r 4) (r 5);
            shl 9 (r 5) (imm 1);
            xor 8 (r 6) (imm 3);
            or_ 10 (r 5) (imm 9);
            and_ 7 (r 4) (imm 16);
            bz (r 7) "offwall";
            mul 11 (r 6) (r 6) ]
        @ Shape.bulge ~keep:[ 4; 5; 6; 7; 8; 9; 10 ] ~seed:11 ~acc:3 ~first:12
            ~last:27 ~hold:4 ()
        @ [ bra "join";
            label "offwall";
            add 8 (r 6) (imm 1);
            mul 9 (r 8) (r 8);
            shr 10 (r 9) (imm 3);
            mad 3 (r 10) (imm 1) (r 3);
            label "join";
            store ~ofs:0x10000000 I.Global (r 0) (r 3) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "HeartWall";
    description = "heart-wall tracking: divergent correlation vs cheap update paths";
    kernel =
      Gpu_sim.Kernel.make ~name:"heartwall" ~grid_ctas:96 ~cta_threads:128
        ~params:[| 16 |] program;
    paper_regs = 28;
    paper_rounded = 28;
    paper_bs = 20;
    group = Spec.Regfile_sensitive;
  }
