open Gpu_isa
open Gpu_isa.Builder

let global_id ~gid = [ mul gid ctaid ntid; add gid (r gid) tid ]

let counted_loop ~ctr ~trips ~name body =
  [ mov ctr trips; label name; bz (r ctr) (name ^ "_end") ]
  @ body
  @ [ sub ctr (r ctr) (imm 1); bra name; label (name ^ "_end") ]

(* Binary operators cycled through pressure chains: a mix of simple and
   complex-latency operations, like real inner loops. *)
let chain_ops = [| Instr.Add; Instr.Xor; Instr.Mul; Instr.Sub; Instr.Or |]

let bulge ?(keep = []) ~seed ~acc ~first ~last ~hold () =
  if last < first then invalid_arg "Shape.bulge: empty register range";
  let width = last - first + 1 in
  (* Defines depend only on the seed, so once the seed is ready the whole
     bulge issues back-to-back — the acquire window stays short even when
     the seed came from memory. *)
  let define =
    List.init width (fun k ->
        let op = chain_ops.(k mod Array.length chain_ops) in
        bin op (first + k) (r seed) (imm ((k * 7) + 3)))
  in
  (* The plateau keeps every bulge register live through a serial
     dependency chain: long wall-clock residency in the acquire state
     without flooding the issue slots. *)
  let plateau =
    List.init hold (fun k ->
        let dst = first + ((k + 1) mod width) in
        let src = first + (k mod width) in
        or_ dst (r dst) (r src))
  in
  (* Tree reduction: live count halves per level, releasing pressure in
     logarithmic depth rather than a serial accumulate chain. *)
  let fold =
    let rec levels s acc =
      if s >= width then List.rev acc
      else begin
        let rec pairs i acc =
          if i + s >= width then acc
          else pairs (i + (2 * s)) (add (first + i) (r (first + i)) (r (first + i + s)) :: acc)
        in
        levels (2 * s) (pairs 0 acc)
      end
    in
    levels 1 []
  in
  (* The seed stays live through the bulge (referenced by the tail fold),
     and [keep] registers are consumed after it — like a real kernel whose
     peak pressure equals its allocation, the surrounding values survive
     the high-pressure phase. *)
  let tail =
    mad acc (r first) (imm 3) (r acc)
    :: mad acc (r seed) (imm 5) (r acc)
    :: List.map (fun t -> mad acc (r t) (imm 1) (r acc)) keep
  in
  define @ plateau @ fold @ tail

let strided_loads space ~addr ~dsts ~stride =
  List.mapi (fun i dst -> load ~ofs:(i * stride) space dst (r addr)) dsts

let chase space ~addr ~dst ~hops =
  List.concat
    (List.init hops (fun k ->
         [ load ~ofs:k space dst (r addr); add addr (r dst) (imm (k + 1)) ]))

let alu_chain ~regs ~len ~seed =
  match regs with
  | [] -> invalid_arg "Shape.alu_chain: no registers"
  | first :: _ ->
      let arr = Array.of_list regs in
      let n = Array.length arr in
      List.init len (fun k ->
          let dst = arr.(k mod n) in
          let src = if k = 0 then first else arr.((k - 1) mod n) in
          let op = chain_ops.(k mod Array.length chain_ops) in
          bin op dst (r src) seed)
