(* SRAD (Rodinia): speckle-reducing anisotropic diffusion. Per-pixel
   stencil reached through a dependent-index load pair, with a
   data-dependent diffusion branch and a per-iteration barrier; modest
   register footprint (18). *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 iteration counter, r2 cursor, r3 image value,
   r4/r5 neighbours, r8 gradient, r9 flag, r10 seed, r11..r17 diffusion
   bulge. *)
let program =
  assemble ~name:"srad"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"iter"
        (Shape.chase I.Global ~addr:2 ~dst:4 ~hops:2
        @ [ load ~ofs:8 I.Global 5 (r 2);
            add 8 (r 4) (r 5);
            add 6 (r 4) (imm 3);
            sub 7 (r 5) (imm 5);
            cmp I.Gt 9 (r 8) (imm 32768);
            bz (r 9) "smooth";
            shr 10 (r 8) (imm 2) ]
        @ Shape.bulge ~keep:[ 4; 5; 6; 7; 8; 9 ] ~seed:10 ~acc:3 ~first:11
            ~last:17 ~hold:3 ()
        @ [ label "smooth";
            store ~ofs:0x10000000 I.Global (r 0) (r 3);
            bar ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "SRAD";
    description = "anisotropic diffusion stencil: conditional diffusion, barriers";
    kernel =
      Gpu_sim.Kernel.make ~name:"srad" ~grid_ctas:72 ~cta_threads:256
        ~shmem_bytes:2048 ~params:[| 10 |] program;
    paper_regs = 18;
    paper_rounded = 20;
    paper_bs = 12;
    group = Spec.Regfile_sensitive;
  }
