(** Dominator and post-dominator trees over a {!Cfg}, computed with the
    Cooper–Harvey–Kennedy iterative algorithm.

    Post-dominance is computed on the reverse graph rooted at a virtual sink
    that succeeds every exit block; a block whose immediate post-dominator
    is the sink (or that cannot reach an exit) reports [None]. *)

type t

val compute : Cfg.t -> t

(** [idom t b] is the immediate dominator of block [b]; [None] for the
    entry block or unreachable blocks. *)
val idom : t -> int -> int option

(** [ipostdom t b] is the immediate post-dominator of block [b]; [None]
    when it is the virtual sink. *)
val ipostdom : t -> int -> int option

(** [dominates t a b] holds when [a] dominates [b] (reflexive). *)
val dominates : t -> int -> int -> bool

(** [postdominates t a b] holds when [a] post-dominates [b] (reflexive). *)
val postdominates : t -> int -> int -> bool
