(** Register (re)allocation by interference-graph coloring.

    Kernels authored in the builder DSL may use more register names than
    their peak live count; a hardware kernel's allocation equals the peak
    (the property RegMutex's index arithmetic relies on, and the property
    the Table I workloads are tested against). This pass renames registers
    so that names with non-overlapping lifetimes share an index:

    - two names interfere when one is defined while the other is live (or
      they are live/referenced at the same instruction — conservatively, a
      clique per instruction over [live_in ∪ live_out ∪ refs]);
    - greedy coloring in decreasing-degree order assigns each name the
      lowest color unused by its colored neighbours.

    The result is a name→name map (not a bijection — that is the point),
    and renaming through it preserves semantics because interfering names
    keep distinct indices. *)

type t = {
  coloring : int array;   (** old register → new register *)
  n_colors : int;         (** registers used after allocation *)
}

(** [allocate prog] computes the coloring from (unwidened) liveness. *)
val allocate : Gpu_isa.Program.t -> t

(** [apply prog t] renames every register through the coloring. *)
val apply : Gpu_isa.Program.t -> t -> Gpu_isa.Program.t

(** [minimize prog] = [apply prog (allocate prog)]. *)
val minimize : Gpu_isa.Program.t -> Gpu_isa.Program.t

(** [interfere prog a b] — do names [a] and [b] interfere? (Exposed for
    tests and diagnostics.) *)
val interfere : Gpu_isa.Program.t -> int -> int -> bool
