type point = {
  step : int;
  live : int;
  allocated : int;
}

let ratio p = if p.allocated = 0 then 0. else float_of_int p.live /. float_of_int p.allocated

let dynamic_profile ~liveness ~allocated pcs =
  Array.mapi
    (fun step pc ->
      { step; live = Liveness.pressure_at liveness pc; allocated })
    pcs

let fraction_below ~threshold points =
  let n = Array.length points in
  if n = 0 then 0.
  else begin
    let below = Array.fold_left (fun acc p -> if ratio p <= threshold then acc + 1 else acc) 0 points in
    float_of_int below /. float_of_int n
  end

let mean_ratio points =
  let n = Array.length points in
  if n = 0 then 0.
  else Array.fold_left (fun acc p -> acc +. ratio p) 0. points /. float_of_int n

let downsample ~buckets points =
  let n = Array.length points in
  if n <= buckets || buckets <= 0 then Array.copy points
  else
    Array.init buckets (fun b ->
        let lo = b * n / buckets and hi = (b + 1) * n / buckets in
        let hi = max (lo + 1) hi in
        let live = ref 0 and alloc = ref 0 in
        for i = lo to hi - 1 do
          live := !live + points.(i).live;
          alloc := !alloc + points.(i).allocated
        done;
        let width = hi - lo in
        { step = points.(lo).step; live = !live / width; allocated = !alloc / width })

let sparkline ~width points =
  let levels = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let sampled = downsample ~buckets:width points in
  let buf = Buffer.create width in
  Array.iter
    (fun p ->
      let r = ratio p in
      let idx = int_of_float (r *. float_of_int (Array.length levels - 1) +. 0.5) in
      let idx = max 0 (min (Array.length levels - 1) idx) in
      Buffer.add_char buf levels.(idx))
    sampled;
  Buffer.contents buf
