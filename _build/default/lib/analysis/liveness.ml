module Program = Gpu_isa.Program
module Instr = Gpu_isa.Instr
module Regset = Gpu_isa.Regset

type t = {
  live_in : Regset.t array;
  live_out : Regset.t array;
}

let dataflow prog =
  let n = Program.length prog in
  let live_in = Array.make n Regset.empty in
  let live_out = Array.make n Regset.empty in
  let uses = Array.init n (fun i -> Instr.uses (Program.get prog i)) in
  let defs = Array.init n (fun i -> Instr.defs (Program.get prog i)) in
  let succs = Array.init n (fun i -> Cfg.instr_succs prog i) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left (fun acc s -> Regset.union acc live_in.(s)) Regset.empty succs.(i)
      in
      let inn = Regset.union uses.(i) (Regset.diff out defs.(i)) in
      if not (Regset.equal out live_out.(i) && Regset.equal inn live_in.(i)) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

(* One widening sweep; returns true when any live set grew. *)
let widen_once cfg t =
  let prog = cfg.Cfg.prog in
  let dom = Dominance.compute cfg in
  let grew = ref false in
  let extend_region region widen_set =
    if not (Regset.is_empty widen_set) then
      List.iter
        (fun bid ->
          let b = Cfg.block cfg bid in
          for i = b.Cfg.first to b.Cfg.last do
            let inn = Regset.union t.live_in.(i) widen_set in
            let out = Regset.union t.live_out.(i) widen_set in
            if not (Regset.equal inn t.live_in.(i) && Regset.equal out t.live_out.(i))
            then begin
              t.live_in.(i) <- inn;
              t.live_out.(i) <- out;
              grew := true
            end
          done)
        region
  in
  List.iter
    (fun b ->
      let branch_instr = b.Cfg.last in
      let ipd = Dominance.ipostdom dom b.Cfg.id in
      let avoiding = match ipd with Some p -> p | None -> -1 in
      let region = Cfg.region cfg ~from:b.Cfg.id ~avoiding in
      (* Registers live across the branch are live throughout the region. *)
      let across = t.live_out.(branch_instr) in
      (* Registers defined in the region and live at the join are live
         throughout the region. *)
      let defined_in_region =
        List.fold_left
          (fun acc bid ->
            let blk = Cfg.block cfg bid in
            let rec go i acc =
              if i > blk.Cfg.last then acc
              else go (i + 1) (Regset.union acc (Instr.defs (Program.get prog i)))
            in
            go blk.Cfg.first acc)
          Regset.empty region
      in
      let at_join =
        match ipd with
        | Some p -> t.live_in.((Cfg.block cfg p).Cfg.first)
        | None -> Regset.empty
      in
      let widen_set = Regset.union across (Regset.inter defined_in_region at_join) in
      extend_region region widen_set)
    (Cfg.conditional_blocks cfg);
  !grew

let analyze ?(widen = true) prog =
  let t = dataflow prog in
  if widen then begin
    let cfg = Cfg.of_program prog in
    let rec fix budget = if budget > 0 && widen_once cfg t then fix (budget - 1) in
    fix 16
  end;
  t

let pressure_at t i =
  max (Regset.cardinal t.live_in.(i)) (Regset.cardinal t.live_out.(i))

let profile t = Array.init (Array.length t.live_in) (pressure_at t)

let max_pressure t = Array.fold_left max 0 (profile t)

let live_at_barriers prog t =
  let acc = ref 0 in
  for i = 0 to Program.length prog - 1 do
    if Program.get prog i = Instr.Bar then acc := max !acc (pressure_at t i)
  done;
  !acc

let pp prog ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to Program.length prog - 1 do
    Format.fprintf ppf "%4d: %-40s live_in=%a@," i
      (Instr.to_string (Program.get prog i))
      Regset.pp t.live_in.(i)
  done;
  Format.fprintf ppf "@]"
