module Program = Gpu_isa.Program
module Instr = Gpu_isa.Instr

type block = {
  id : int;
  first : int;
  last : int;
  succs : int list;
  preds : int list;
}

type t = {
  prog : Program.t;
  blocks : block array;
  block_of_instr : int array;
}

let instr_succs prog i =
  let n = Program.length prog in
  match Program.get prog i with
  | Instr.Exit -> []
  | Instr.Jump t -> [ t ]
  | Instr.Jump_if (_, t) | Instr.Jump_ifz (_, t) ->
      if i + 1 < n then [ t; i + 1 ] else [ t ]
  | Instr.Bin _ | Instr.Un _ | Instr.Mad _ | Instr.Mov _ | Instr.Cmp _
  | Instr.Sel _ | Instr.Load _ | Instr.Store _ | Instr.Bar
  | Instr.Acquire | Instr.Release ->
      if i + 1 < n then [ i + 1 ] else []

let of_program prog =
  let n = Program.length prog in
  let leader = Array.make n false in
  leader.(0) <- true;
  for i = 0 to n - 1 do
    let instr = Program.get prog i in
    (match Instr.target instr with Some t -> leader.(t) <- true | None -> ());
    let ends_block = Instr.is_branch instr || instr = Instr.Exit in
    if ends_block && i + 1 < n then leader.(i + 1) <- true
  done;
  let block_of_instr = Array.make n 0 in
  let bounds = ref [] in
  let start = ref 0 in
  for i = 1 to n - 1 do
    if leader.(i) then begin
      bounds := (!start, i - 1) :: !bounds;
      start := i
    end
  done;
  bounds := (!start, n - 1) :: !bounds;
  let bounds = Array.of_list (List.rev !bounds) in
  Array.iteri
    (fun id (first, last) ->
      for i = first to last do
        block_of_instr.(i) <- id
      done)
    bounds;
  let succs_of (_, last) =
    List.sort_uniq compare (List.map (fun i -> block_of_instr.(i)) (instr_succs prog last))
  in
  let preds = Array.make (Array.length bounds) [] in
  Array.iteri
    (fun id b -> List.iter (fun s -> preds.(s) <- id :: preds.(s)) (succs_of b))
    bounds;
  let blocks =
    Array.mapi
      (fun id (first, last) ->
        { id; first; last; succs = succs_of (first, last); preds = List.rev preds.(id) })
      bounds
  in
  { prog; blocks; block_of_instr }

let n_blocks t = Array.length t.blocks
let block t id = t.blocks.(id)

let instrs _t b =
  let rec go i acc = if i < b.first then acc else go (i - 1) (i :: acc) in
  go b.last []

let conditional_blocks t =
  Array.to_list t.blocks
  |> List.filter (fun b ->
         match Program.get t.prog b.last with
         | Instr.Jump_if _ | Instr.Jump_ifz _ -> true
         | _ -> false)

let exit_blocks t =
  Array.to_list t.blocks
  |> List.filter (fun b ->
         let rec has i = i <= b.last && (Program.get t.prog i = Instr.Exit || has (i + 1)) in
         has b.first)

let region t ~from ~avoiding =
  let visited = Array.make (n_blocks t) false in
  let rec visit id =
    if id <> avoiding && not visited.(id) then begin
      visited.(id) <- true;
      List.iter visit t.blocks.(id).succs
    end
  in
  List.iter visit t.blocks.(from).succs;
  let out = ref [] in
  for id = n_blocks t - 1 downto 0 do
    if visited.(id) then out := id :: !out
  done;
  !out

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d [%d..%d] -> %a@," b.id b.first b.last
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           (fun ppf s -> Format.fprintf ppf "B%d" s))
        b.succs)
    t.blocks;
  Format.fprintf ppf "@]"
