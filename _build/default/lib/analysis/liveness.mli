(** Register liveness analysis (RegMutex §III-A1).

    Standard backward dataflow at instruction granularity, optionally
    followed by the paper's divergence-conservative widening: within each
    branch region (a conditional-branch block up to, but excluding, its
    immediate post-dominator),

    - a register live across the branch is considered live throughout the
      whole region (threads of a warp may serialize either path first), and
    - a register defined inside the region and live at the post-dominator's
      entry is considered live throughout the region.

    Widening is iterated to a fixpoint because enlarging one region can
    enlarge the live sets feeding a nested one. *)

type t = {
  live_in : Gpu_isa.Regset.t array;   (** live before each instruction *)
  live_out : Gpu_isa.Regset.t array;  (** live after each instruction *)
}

(** [analyze ?widen prog] runs the analysis; [widen] (default [true])
    enables the divergence-conservative widening. *)
val analyze : ?widen:bool -> Gpu_isa.Program.t -> t

(** [pressure_at t i] is the number of registers live across instruction
    [i], i.e. [max (card live_in) (card live_out)] — the registers a
    physical allocation must hold while [i] executes. *)
val pressure_at : t -> int -> int

(** Per-instruction pressure profile. *)
val profile : t -> int array

(** Maximum of {!profile}. *)
val max_pressure : t -> int

(** [live_at_barriers prog t] is the maximum pressure at any [Bar]
    instruction (0 when the kernel has none) — the second deadlock rule
    constrains [|Bs|] to at least this value. *)
val live_at_barriers : Gpu_isa.Program.t -> t -> int

val pp : Gpu_isa.Program.t -> Format.formatter -> t -> unit
