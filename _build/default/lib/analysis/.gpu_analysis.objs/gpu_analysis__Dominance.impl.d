lib/analysis/dominance.ml: Array Cfg List
