lib/analysis/allocator.mli: Gpu_isa
