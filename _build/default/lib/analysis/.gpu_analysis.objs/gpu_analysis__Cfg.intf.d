lib/analysis/cfg.mli: Format Gpu_isa
