lib/analysis/loops.ml: Array Cfg Dominance Hashtbl List Option
