lib/analysis/allocator.ml: Array Gpu_isa List Liveness
