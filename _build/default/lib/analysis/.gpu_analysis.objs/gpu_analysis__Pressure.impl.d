lib/analysis/pressure.ml: Array Buffer Liveness
