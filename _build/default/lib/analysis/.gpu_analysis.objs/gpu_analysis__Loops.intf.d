lib/analysis/loops.mli: Cfg
