lib/analysis/pressure.mli: Liveness
