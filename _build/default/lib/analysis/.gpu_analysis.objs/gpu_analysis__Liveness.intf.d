lib/analysis/liveness.mli: Format Gpu_isa
