lib/analysis/liveness.ml: Array Cfg Dominance Format Gpu_isa List
