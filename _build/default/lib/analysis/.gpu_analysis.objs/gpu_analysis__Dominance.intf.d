lib/analysis/dominance.mli: Cfg
