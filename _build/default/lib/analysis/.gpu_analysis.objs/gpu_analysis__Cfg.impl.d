lib/analysis/cfg.ml: Array Format Gpu_isa List
