(** Register-pressure profiles (the data behind Figure 1).

    Static profiles come straight from {!Liveness}; dynamic profiles map a
    simulated warp's program-counter trace through the static per-PC live
    counts, yielding the live/allocated ratio per executed instruction that
    the paper plots for a sample thread. *)

type point = {
  step : int;        (** dynamic instruction count *)
  live : int;        (** registers live at this instruction *)
  allocated : int;   (** statically allocated registers *)
}

val ratio : point -> float

(** [dynamic_profile ~liveness ~allocated pcs] maps an executed-PC trace to
    profile points. *)
val dynamic_profile :
  liveness:Liveness.t -> allocated:int -> int array -> point array

(** Fraction of dynamic instructions whose live ratio is at most
    [threshold] (e.g. the paper's observation that most of the execution
    uses only a subset of the allocation). *)
val fraction_below : threshold:float -> point array -> float

(** Average live/allocated ratio over the trace. *)
val mean_ratio : point array -> float

(** [downsample ~buckets points] averages the profile into at most
    [buckets] points for compact textual plots. *)
val downsample : buckets:int -> point array -> point array

(** ASCII sparkline of the ratio profile, for terminal output. *)
val sparkline : width:int -> point array -> string
