(** Control-flow graph over basic blocks of a {!Gpu_isa.Program}. *)

type block = {
  id : int;           (** dense block index, entry block is 0 *)
  first : int;        (** index of the first instruction *)
  last : int;         (** index of the last instruction (inclusive) *)
  succs : int list;   (** successor block ids *)
  preds : int list;   (** predecessor block ids *)
}

type t = {
  prog : Gpu_isa.Program.t;
  blocks : block array;
  block_of_instr : int array;  (** instruction index -> block id *)
}

(** Build the CFG. Leaders are instruction 0, branch targets, and
    instructions following a branch or [Exit]. *)
val of_program : Gpu_isa.Program.t -> t

val n_blocks : t -> int
val block : t -> int -> block

(** Instruction indices of a block, in order. *)
val instrs : t -> block -> int list

(** [instr_succs prog i] is the instruction-level successor list of
    instruction [i] (used by liveness). *)
val instr_succs : Gpu_isa.Program.t -> int -> int list

(** Blocks whose last instruction is a conditional branch. *)
val conditional_blocks : t -> block list

(** Blocks containing an [Exit]. *)
val exit_blocks : t -> block list

(** [reachable t ~from ~avoiding] is the set of block ids reachable from
    the successors of [from] along edges that do not enter the block
    [avoiding] (pass [-1] to avoid nothing). Used to delimit branch
    regions for divergence widening. *)
val region : t -> from:int -> avoiding:int -> int list

val pp : Format.formatter -> t -> unit
