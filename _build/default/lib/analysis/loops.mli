(** Natural-loop detection over a {!Cfg}, from back edges and dominators.

    A back edge is an edge [n → h] whose target dominates its source; the
    natural loop of the edge is [h] plus every block that can reach [n]
    without passing through [h]. Loops sharing a header are merged.

    Loop nesting depth explains the Figure 1 pressure profiles (register
    demand concentrates in inner loops, §II) and gives the transform's
    acquire regions their typical shape. *)

type loop = {
  header : int;          (** header block id *)
  back_sources : int list;  (** blocks whose edge to the header is a back edge *)
  body : int list;       (** block ids, ascending, header included *)
}

type t

val analyze : Cfg.t -> t

(** All loops, outermost first (by ascending body size is not guaranteed;
    ordering is by header id). *)
val loops : t -> loop list

(** Nesting depth of a block: 0 = not in any loop. *)
val depth : t -> int -> int

(** Headers of all detected loops, ascending. *)
val headers : t -> int list

(** The innermost loop containing the block, if any (smallest body). *)
val innermost : t -> int -> loop option

(** [contains l b] — is block [b] inside loop [l]? *)
val contains : loop -> int -> bool
