type loop = {
  header : int;
  back_sources : int list;
  body : int list;
}

type t = {
  loops : loop list;
  depths : int array;
}

let contains l b = List.mem b l.body

(* Body of the natural loop for back edges into [header]: header plus all
   blocks that reach a back-edge source against the flow without crossing
   the header. *)
let natural_body cfg ~header ~back_sources =
  let n = Cfg.n_blocks cfg in
  let in_body = Array.make n false in
  in_body.(header) <- true;
  let rec pull b =
    if not in_body.(b) then begin
      in_body.(b) <- true;
      List.iter pull (Cfg.block cfg b).Cfg.preds
    end
  in
  List.iter pull back_sources;
  let body = ref [] in
  for b = n - 1 downto 0 do
    if in_body.(b) then body := b :: !body
  done;
  !body

let analyze cfg =
  let dom = Dominance.compute cfg in
  let n = Cfg.n_blocks cfg in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
        if Dominance.dominates dom s b then
          Hashtbl.replace by_header s (b :: Option.value ~default:[] (Hashtbl.find_opt by_header s)))
      (Cfg.block cfg b).Cfg.succs
  done;
  let loops =
    Hashtbl.fold
      (fun header back_sources acc ->
        { header; back_sources = List.sort compare back_sources;
          body = natural_body cfg ~header ~back_sources }
        :: acc)
      by_header []
    |> List.sort (fun a b -> compare a.header b.header)
  in
  let depths = Array.make n 0 in
  List.iter
    (fun l -> List.iter (fun b -> depths.(b) <- depths.(b) + 1) l.body)
    loops;
  { loops; depths }

let loops t = t.loops
let depth t b = t.depths.(b)
let headers t = List.map (fun l -> l.header) t.loops

let innermost t b =
  List.fold_left
    (fun acc l ->
      if not (contains l b) then acc
      else
        match acc with
        | Some best when List.length best.body <= List.length l.body -> acc
        | Some _ | None -> Some l)
    None t.loops
