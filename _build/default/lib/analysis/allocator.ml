module Program = Gpu_isa.Program
module Instr = Gpu_isa.Instr
module Regset = Gpu_isa.Regset

type t = {
  coloring : int array;
  n_colors : int;
}

(* Per-instruction cliques: live_in ∪ live_out ∪ refs. Conservative — it
   also joins a dying value with one born at the same instruction, which
   keeps mov/def chains safe without def/use order analysis. *)
let cliques prog =
  let liveness = Liveness.analyze ~widen:false prog in
  Array.init (Program.length prog) (fun i ->
      Regset.union
        (Instr.regs (Program.get prog i))
        (Regset.union liveness.Liveness.live_in.(i) liveness.Liveness.live_out.(i)))

let interference_matrix prog =
  let n = prog.Program.n_regs in
  let matrix = Array.make_matrix n n false in
  Array.iter
    (fun set ->
      Regset.iter
        (fun a ->
          Regset.iter
            (fun b ->
              if a <> b then begin
                matrix.(a).(b) <- true;
                matrix.(b).(a) <- true
              end)
            set)
        set)
    (cliques prog);
  matrix

let interfere prog a b =
  let m = interference_matrix prog in
  if a < 0 || b < 0 || a >= prog.Program.n_regs || b >= prog.Program.n_regs then
    invalid_arg "Allocator.interfere: register out of range";
  m.(a).(b)

let allocate prog =
  let n = prog.Program.n_regs in
  let matrix = interference_matrix prog in
  let degree r = Array.fold_left (fun acc i -> if i then acc + 1 else acc) 0 matrix.(r) in
  let order = List.init n (fun r -> r) in
  let order =
    List.sort
      (fun a b -> match compare (degree b) (degree a) with 0 -> compare a b | c -> c)
      order
  in
  let coloring = Array.make n (-1) in
  List.iter
    (fun r ->
      let used = Array.make n false in
      for other = 0 to n - 1 do
        if matrix.(r).(other) && coloring.(other) >= 0 then
          used.(coloring.(other)) <- true
      done;
      let rec first c = if used.(c) then first (c + 1) else c in
      coloring.(r) <- first 0)
    order;
  let n_colors = 1 + Array.fold_left max (-1) coloring in
  { coloring; n_colors }

let apply prog t =
  if Array.length t.coloring <> prog.Program.n_regs then
    invalid_arg "Allocator.apply: coloring size mismatch";
  Program.map_instrs
    (fun _ instr -> Instr.map_regs (fun r -> t.coloring.(r)) instr)
    prog

let minimize prog = apply prog (allocate prog)
