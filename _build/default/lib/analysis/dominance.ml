type t = {
  idoms : int array;      (* -1 = entry or unreachable *)
  ipostdoms : int array;  (* -1 = virtual sink / unreachable *)
}

(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm".
   Generic over a rooted graph given by predecessor lists. Returns the
   immediate-dominator array indexed by node, -1 for root/unreachable. *)
let chk_idoms ~n ~root ~succs ~preds =
  (* Reverse postorder from the root. *)
  let order = Array.make n (-1) in (* order.(node) = rpo position, -1 unreachable *)
  let rpo = ref [] in
  let visited = Array.make n false in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs (succs v);
      rpo := v :: !rpo
    end
  in
  dfs root;
  let rpo = Array.of_list !rpo in
  Array.iteri (fun pos v -> order.(v) <- pos) rpo;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if order.(a) > order.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let processed = List.filter (fun p -> idom.(p) <> -1) (preds v) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom.(root) <- -1;
  idom

let compute cfg =
  let n = Cfg.n_blocks cfg in
  let succs v = (Cfg.block cfg v).Cfg.succs in
  let preds v = (Cfg.block cfg v).Cfg.preds in
  let idoms = chk_idoms ~n ~root:0 ~succs ~preds in
  (* Post-dominators: reverse graph with a virtual sink (node n) that is the
     successor of every exit block. *)
  let exits = List.map (fun b -> b.Cfg.id) (Cfg.exit_blocks cfg) in
  let sink = n in
  (* In the reverse graph: successors of v are its CFG predecessors, and the
     sink's successors are the exit blocks. Predecessors in the reverse graph
     are CFG successors, plus the sink for exit blocks. *)
  let rsuccs v = if v = sink then exits else preds v in
  let rpreds v =
    if v = sink then []
    else if List.mem v exits then sink :: succs v
    else succs v
  in
  let ipost = chk_idoms ~n:(n + 1) ~root:sink ~succs:rsuccs ~preds:rpreds in
  let ipostdoms = Array.init n (fun v -> if ipost.(v) = sink then -1 else ipost.(v)) in
  { idoms; ipostdoms }

let idom t b = if t.idoms.(b) = -1 then None else Some t.idoms.(b)
let ipostdom t b = if t.ipostdoms.(b) = -1 then None else Some t.ipostdoms.(b)

let rec chases arr a b =
  (* does walking up from b through arr reach a? *)
  a = b || (arr.(b) <> -1 && chases arr a arr.(b))

let dominates t a b = chases t.idoms a b
let postdominates t a b = chases t.ipostdoms a b
