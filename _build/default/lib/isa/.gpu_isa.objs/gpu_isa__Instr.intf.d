lib/isa/instr.mli: Format Regset
