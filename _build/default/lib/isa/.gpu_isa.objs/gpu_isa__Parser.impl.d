lib/isa/parser.ml: Array Filename Format Hashtbl Instr List Program String
