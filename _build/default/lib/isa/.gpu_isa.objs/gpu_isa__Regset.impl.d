lib/isa/regset.ml: Format List Printf
