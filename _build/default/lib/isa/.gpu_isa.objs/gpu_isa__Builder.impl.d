lib/isa/builder.ml: Array Hashtbl Instr List Program
