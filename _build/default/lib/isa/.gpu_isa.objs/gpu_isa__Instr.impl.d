lib/isa/instr.ml: Format Regset
