lib/isa/codec.mli: Instr Program
