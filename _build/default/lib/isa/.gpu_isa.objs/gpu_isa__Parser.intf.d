lib/isa/parser.mli: Format Program
