lib/isa/program.ml: Array Format Instr List Regset String
