lib/isa/regset.mli: Format
