lib/isa/builder.mli: Instr Program
