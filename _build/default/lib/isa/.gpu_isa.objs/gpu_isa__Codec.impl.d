lib/isa/codec.ml: Array Format Instr Int64 List Program
