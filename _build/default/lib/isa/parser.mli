(** Textual assembly parser — the inverse of the {!Instr.pp} /
    {!Program.pp} format, plus symbolic labels, comments and blank lines.

    Grammar (one instruction per line):

    {v
    // comment, or  # comment
    label:
      mov   r0, %tid
      add   r1, r0, 42
      mad   r2, r1, param[0], r2
      set.lt r3, r1, 100
      sel   r4, r3, r1, r2
      ld.global  r5, [r1+4]
      st.shared  [r0+0], r5
      bra   label
      bra.nz r3, label        // or an absolute index: bra.nz r3, @7
      bar.sync
      regmutex.acquire
      regmutex.release
      exit
    v}

    Numeric targets ([@7]) refer to instruction indices after label lines
    are removed, matching the disassembly {!Program.pp} prints — so
    [parse (Format.asprintf "%a" Program.pp p)] reproduces [p]. *)

type error = {
  line : int;       (** 1-based line number *)
  message : string;
}

exception Parse_error of error

(** [parse ~name text] assembles a program from its textual form.
    @raise Parse_error on a malformed line.
    @raise Builder.Unresolved_label / {!Program.Invalid} as in assembly. *)
val parse : name:string -> string -> Program.t

(** [parse_file path] reads and parses a file; the program is named after
    the base name. *)
val parse_file : string -> Program.t

val pp_error : Format.formatter -> error -> unit
