(** Binary instruction encoding.

    Instructions pack into 64-bit words, mimicking a hardware ISA level:

    - ALU / control instructions take one word: a 6-bit opcode, a 6-bit
      destination, and up to three 16-bit tagged operands (2-bit tag —
      register, immediate, special, parameter — plus a 14-bit payload;
      immediates are signed 14-bit);
    - memory instructions take two words: a header plus a full 64-bit
      offset word (like a constant-extended slot in real ISAs).

    Large inline immediates (beyond ±8191) do not fit — real ISAs splice
    such constants through constant banks or extra moves — so
    {!encodable} reports whether a whole program can be packed, and the
    round-trip guarantee applies to encodable programs. Branch targets are
    instruction indices (not word addresses) and survive the variable
    instruction length. *)

type word = int64

exception Unencodable of string

(** Words the instruction occupies (1, or 2 for memory operations). *)
val size : Instr.t -> int

(** [encode i] packs one instruction into {!size}[ i] words.
    @raise Unencodable when a field exceeds its width. *)
val encode : Instr.t -> word list

(** [decode_one ws ~pos] unpacks the instruction starting at [pos] and
    returns it with the next position.
    @raise Unencodable on malformed words. *)
val decode_one : word array -> pos:int -> Instr.t * int

val encodable_instr : Instr.t -> bool
val encodable : Program.t -> bool

(** [encode_program p] packs the whole body.
    @raise Unencodable when any instruction does not fit. *)
val encode_program : Program.t -> word array

(** [decode_program ~name ws] rebuilds a program (re-validated).
    @raise Unencodable / {!Program.Invalid} on malformed input. *)
val decode_program : name:string -> word array -> Program.t

(** Encoded size of a program in bytes. *)
val code_bytes : Program.t -> int
