type t = int

let max_reg = 61

let check r =
  if r < 0 || r > max_reg then
    invalid_arg (Printf.sprintf "Regset: register index %d out of [0, %d]" r max_reg)

let empty = 0
let singleton r = check r; 1 lsl r
let add r s = check r; s lor (1 lsl r)
let remove r s = check r; s land lnot (1 lsl r)
let mem r s = r >= 0 && r <= max_reg && s land (1 lsl r) <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  (* Population count by nibble lookup; sets are at most 62 bits. *)
  let rec count acc s = if s = 0 then acc else count (acc + (s land 1)) (s lsr 1) in
  count 0 s

let is_empty s = s = 0
let equal (a : t) (b : t) = a = b
let subset a b = a land lnot b = 0

let of_list rs = List.fold_left (fun s r -> add r s) empty rs

let fold f s init =
  let rec go r acc =
    if r > max_reg then acc
    else if mem r s then go (r + 1) (f r acc)
    else go (r + 1) acc
  in
  go 0 init

let to_list s = List.rev (fold (fun r acc -> r :: acc) s [])
let iter f s = fold (fun r () -> f r) s ()
let exists p s = fold (fun r acc -> acc || p r) s false

let min_elt s =
  if s = 0 then raise Not_found;
  let rec go r = if mem r s then r else go (r + 1) in
  go 0

let max_elt s =
  if s = 0 then raise Not_found;
  let rec go r = if mem r s then r else go (r - 1) in
  go max_reg

let mask_below n =
  if n <= 0 then 0 else if n > max_reg + 1 then lnot 0 else (1 lsl n) - 1

let above n s = s land lnot (mask_below n)
let below n s = s land mask_below n

let pp ppf s =
  let members = to_list s in
  let pp_reg ppf r = Format.fprintf ppf "r%d" r in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_reg) members
