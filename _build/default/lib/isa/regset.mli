(** Sets of architected register indices.

    A set is represented as a bit mask inside a single native [int], which
    restricts register indices to the range [0, 61]. Fermi-class GPUs cap
    architected registers per thread at 63, and every kernel in the RegMutex
    evaluation uses at most 44, so the compact representation is both
    sufficient and very fast for the per-instruction dataflow performed by
    liveness analysis. *)

type t

(** Largest register index a set can hold. *)
val max_reg : int

val empty : t

(** [singleton r] is the set containing exactly [r].
    @raise Invalid_argument if [r] is outside [0, max_reg]. *)
val singleton : int -> t

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] is the set of registers in [a] but not in [b]. *)
val diff : t -> t -> t

val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
val of_list : int list -> t

(** Ascending list of member indices. *)
val to_list : t -> int list

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool

(** Smallest member. @raise Not_found on the empty set. *)
val min_elt : t -> int

(** Largest member. @raise Not_found on the empty set. *)
val max_elt : t -> int

(** [above n s] is the subset of [s] with indices [>= n]. *)
val above : int -> t -> t

(** [below n s] is the subset of [s] with indices [< n]. *)
val below : int -> t -> t

(** [pp] prints as [{r0, r3, r7}]. *)
val pp : Format.formatter -> t -> unit
