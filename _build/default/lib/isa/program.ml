type t = {
  name : string;
  body : Instr.t array;
  n_regs : int;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let compute_n_regs body =
  Array.fold_left
    (fun acc i ->
      let rs = Instr.regs i in
      if Regset.is_empty rs then acc else max acc (1 + Regset.max_elt rs))
    0 body

let validate ~name body =
  let n = Array.length body in
  if n = 0 then invalid "%s: empty program" name;
  let has_exit = Array.exists (fun i -> i = Instr.Exit) body in
  if not has_exit then invalid "%s: no exit instruction" name;
  (match body.(n - 1) with
  | Instr.Exit | Instr.Jump _ -> ()
  | _ -> invalid "%s: last instruction falls through the end" name);
  Array.iteri
    (fun idx i ->
      (match Instr.target i with
      | Some t when t < 0 || t >= n ->
          invalid "%s: instruction %d branches to invalid index %d" name idx t
      | Some _ | None -> ());
      let rs = Instr.regs i in
      if (not (Regset.is_empty rs)) && Regset.max_elt rs > Regset.max_reg then
        invalid "%s: instruction %d uses register above r%d" name idx Regset.max_reg)
    body

let create ~name body =
  validate ~name body;
  { name; body = Array.copy body; n_regs = compute_n_regs body }

let length p = Array.length p.body
let get p i = p.body.(i)

let insert_before p inserts =
  let n = Array.length p.body in
  let per_index = Array.make (n + 1) [] in
  List.iter
    (fun (i, instrs) ->
      if i < 0 || i > n then
        invalid "%s: insertion index %d out of [0, %d]" p.name i n;
      per_index.(i) <- per_index.(i) @ instrs)
    inserts;
  (* new_pos.(i) = index of the first instruction inserted before original
     instruction i (or of instruction i itself when nothing is inserted). *)
  let new_pos = Array.make (n + 1) 0 in
  let total = ref 0 in
  for i = 0 to n do
    new_pos.(i) <- i + !total;
    total := !total + List.length per_index.(i)
  done;
  let out = Array.make (n + !total) Instr.Exit in
  let cursor = ref 0 in
  let push instr = out.(!cursor) <- instr; incr cursor in
  let retarget instr = Instr.map_target (fun t -> new_pos.(t)) instr in
  for i = 0 to n - 1 do
    List.iter (fun instr -> push (retarget instr)) per_index.(i);
    push (retarget p.body.(i))
  done;
  List.iter (fun instr -> push (retarget instr)) per_index.(n);
  create ~name:p.name out

let map_instrs f p =
  create ~name:p.name (Array.mapi f p.body)

let count pred p =
  Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0 p.body

let equal a b =
  String.equal a.name b.name
  && Array.length a.body = Array.length b.body
  && Array.for_all2 Instr.equal a.body b.body

let pp ppf p =
  Format.fprintf ppf "@[<v>kernel %s (%d regs)@," p.name p.n_regs;
  Array.iteri (fun i instr -> Format.fprintf ppf "%4d: %a@," i Instr.pp instr) p.body;
  Format.fprintf ppf "@]"
