(** An assembled kernel program: a flat array of instructions with resolved
    branch targets, plus derived register metadata. *)

type t = private {
  name : string;
  body : Instr.t array;
  n_regs : int;  (** 1 + highest architected register index referenced *)
}

exception Invalid of string

(** [create ~name body] validates and wraps an instruction array.

    Validation rules:
    - the body is non-empty and contains at least one [Exit];
    - every branch target is a valid instruction index;
    - every register index is within {!Regset.max_reg};
    - the last instruction cannot fall through (it is a [Jump] or [Exit]).

    @raise Invalid when a rule is violated. *)
val create : name:string -> Instr.t array -> t

val length : t -> int
val get : t -> int -> Instr.t

(** [insert_before prog inserts] inserts instruction lists before given
    indices and retargets every branch. [inserts] maps an original
    instruction index to the instructions to place immediately before it; a
    branch that targeted index [i] will target the first inserted
    instruction, so code jumped into executes the inserted prefix. Indices
    may repeat; later entries for the same index are placed after earlier
    ones. An index equal to [length prog] appends at the end. *)
val insert_before : t -> (int * Instr.t list) list -> t

(** [map_instrs f prog] rebuilds the program with [f] applied to each
    instruction (targets must be preserved by [f]). *)
val map_instrs : (int -> Instr.t -> Instr.t) -> t -> t

(** Number of static occurrences satisfying the predicate. *)
val count : (Instr.t -> bool) -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
