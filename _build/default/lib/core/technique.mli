(** The evaluated register-management techniques, tying the compiler side
    (heuristic + transform) to the simulator policy:

    - [Baseline]: stock static/exclusive allocation.
    - [Regmutex]: the paper's default design.
    - [Regmutex_paired]: the paired-warps specialization (§III-C).
    - [Owf]: resource sharing with owner-warp-first scheduling
      (Jatala et al. [7]) — one-time acquire, no in-kernel release.
    - [Rfv]: register file virtualization (Jeon et al. [3]). *)

type t =
  | Baseline
  | Regmutex
  | Regmutex_paired
  | Owf
  | Rfv

type options = {
  es_override : int option;  (** force [|Es|] (sensitivity sweeps) *)
  transform : Transform.options;
  verify : bool;  (** dynamic extended-access checking in the simulator *)
}

val default_options : options

type prepared = {
  technique : t;
  kernel : Gpu_sim.Kernel.t;  (** program possibly transformed *)
  policy : Gpu_sim.Policy.t;
  choice : Es_heuristic.choice option;
  plan : Transform.plan option;
}

(** [prepare ?options cfg t kernel] runs the compile-time side. For
    [Regmutex]/[Regmutex_paired]: when the heuristic yields no viable
    candidate, the kernel falls back to baseline behaviour (zero-sized
    extended set, no primitives inserted). *)
val prepare :
  ?options:options -> Gpu_uarch.Arch_config.t -> t -> Gpu_sim.Kernel.t -> prepared

val name : t -> string
val all : t list
