module Program = Gpu_isa.Program
module Instr = Gpu_isa.Instr
module Regset = Gpu_isa.Regset
module Liveness = Gpu_analysis.Liveness
module Cfg = Gpu_analysis.Cfg

let ext_predicate ~bs prog (liveness : Liveness.t) =
  let n = Program.length prog in
  Array.init n (fun i ->
      let footprint =
        Regset.union
          (Instr.regs (Program.get prog i))
          (Regset.union liveness.Liveness.live_in.(i) liveness.Liveness.live_out.(i))
      in
      (not (Regset.is_empty footprint)) && Regset.max_elt footprint >= bs)

let ext_fraction ext =
  let n = Array.length ext in
  if n = 0 then 0.
  else
    float_of_int (Array.fold_left (fun acc e -> if e then acc + 1 else acc) 0 ext)
    /. float_of_int n

type outcome = {
  program : Gpu_isa.Program.t;
  n_acquires : int;
  n_releases : int;
  ext_static_fraction : float;
}

let instr_preds prog =
  let n = Program.length prog in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- i :: preds.(s)) (Cfg.instr_succs prog i)
  done;
  preds

let inject ~bs prog liveness =
  let ext = ext_predicate ~bs prog liveness in
  let n = Program.length prog in
  if not (Array.exists (fun e -> e) ext) then
    { program = prog; n_acquires = 0; n_releases = 0; ext_static_fraction = 0. }
  else begin
    let preds = instr_preds prog in
    let inserts = ref [] in
    let n_acquires = ref 0 and n_releases = ref 0 in
    for i = 0 to n - 1 do
      if ext.(i) then begin
        let needs_acquire = i = 0 || List.exists (fun p -> not ext.(p)) preds.(i) in
        if needs_acquire then begin
          inserts := (i, [ Instr.Acquire ]) :: !inserts;
          incr n_acquires
        end
      end
      else if List.exists (fun p -> ext.(p)) preds.(i) then begin
        inserts := (i, [ Instr.Release ]) :: !inserts;
        incr n_releases
      end
    done;
    {
      program = Program.insert_before prog (List.rev !inserts);
      n_acquires = !n_acquires;
      n_releases = !n_releases;
      ext_static_fraction = ext_fraction ext;
    }
  end
