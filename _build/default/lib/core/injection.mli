(** Acquire/release primitive injection (§III-A3).

    An instruction is in the {e extended state} when any register it
    references — or any register live across it — has an architected index
    at or above [|Bs|]: executing it requires the warp to hold an SRP
    section. Because acquire and release are idempotent by design, the
    injector places

    - an [Acquire] before every extended instruction reachable from a
      non-extended predecessor (or at program entry), and
    - a [Release] before every non-extended instruction reachable from an
      extended predecessor.

    Redundant primitives on already-correct paths execute as no-ops. *)

(** [ext_predicate ~bs prog liveness] marks the extended instructions. *)
val ext_predicate :
  bs:int -> Gpu_isa.Program.t -> Gpu_analysis.Liveness.t -> bool array

(** Fraction of static instructions in the extended state. *)
val ext_fraction : bool array -> float

type outcome = {
  program : Gpu_isa.Program.t;
  n_acquires : int;
  n_releases : int;
  ext_static_fraction : float;
}

(** [inject ~bs prog liveness] returns the instrumented program. When no
    instruction is extended the program is returned unchanged with zero
    primitive counts ("zero-sized extended set" behaviour). *)
val inject :
  bs:int -> Gpu_isa.Program.t -> Gpu_analysis.Liveness.t -> outcome
