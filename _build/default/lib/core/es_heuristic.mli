(** Extended-register-set size selection (§III-A2).

    Candidates for [|Es|] are the even values of [⌊R × f⌋] for
    [f ∈ {0.1, 0.15, 0.2, 0.25, 0.3, 0.35}], where [R] is the kernel's
    register demand rounded to the allocation granularity. Candidates that
    violate either deadlock-avoidance rule are dropped:

    - the SRP must fit at least one extended set;
    - [|Bs|] may not drop below the live count at any CTA barrier.

    Among the candidates whose base-only occupancy is highest, the chosen
    [|Es|] is the smallest one whose SRP section count allows more than
    half of the resident warps to hold an extended set concurrently (the
    interpretation that reproduces the paper's worked example; see
    DESIGN.md). When none passes the half-warps test, the candidate with
    the most sections wins. *)

type candidate = {
  es : int;
  bs : int;
  warps : int;      (** resident warps with base-only allocation *)
  sections : int;   (** SRP sections left for extended sets *)
}

type choice = {
  rounded_regs : int;  (** R: granularity-rounded register demand *)
  bs : int;
  es : int;
  warps : int;
  sections : int;
  baseline_warps : int;    (** resident warps without RegMutex *)
  candidates : candidate list;  (** all evaluated candidates *)
}

(** The paper's fraction set. *)
val fractions : float list

(** Even candidate sizes for a rounded register demand, ascending. *)
val candidate_sizes : rounded_regs:int -> int list

(** [choose cfg ~demand ~min_bs ()] runs the full selection. [min_bs] is
    the barrier-liveness floor for [|Bs|] (0 when the kernel has no
    barrier). Returns [None] when no candidate survives — RegMutex then
    treats every register as base (kernel runs unmodified). *)
val choose :
  Gpu_uarch.Arch_config.t ->
  demand:Gpu_uarch.Occupancy.demand ->
  min_bs:int ->
  unit ->
  choice option

(** [with_es cfg ~demand ~es] evaluates one forced size (the Figure 10/11
    sensitivity sweeps), ignoring the half-warps rule but still applying
    the deadlock rules. *)
val with_es :
  Gpu_uarch.Arch_config.t ->
  demand:Gpu_uarch.Occupancy.demand ->
  min_bs:int ->
  es:int ->
  choice option

(** Does the choice improve occupancy over the baseline? (MergeSort's
    pick does not, and the paper still applies it.) *)
val raises_occupancy : choice -> bool

val pp : Format.formatter -> choice -> unit
