(** Static soundness checker for instrumented programs.

    Abstract interpretation over the instruction-level CFG of the warp's
    acquire state (held / free), honouring idempotent acquire/release
    semantics. A transformed program is sound when:

    - every instruction referencing a register with index ≥ [|Bs|] is
      executed with the extended set held on {e every} path;
    - no instruction references a register at or beyond [|Bs| + |Es|];
    - whenever the set may be free after an instruction, no register with
      index ≥ [|Bs|] is live there (its physical storage is gone).

    {!Transform.apply} runs this checker and refuses to emit unsound
    programs; the simulator additionally enforces the same rules
    dynamically in verification mode. *)

type violation = {
  pc : int;
  message : string;
}

(** [check ~bs ~es prog] returns all violations ([] = sound). The
    liveness used for the free-state rule is recomputed on the transformed
    program with divergence widening. *)
val check : bs:int -> es:int -> Gpu_isa.Program.t -> violation list

val pp_violation : Format.formatter -> violation -> unit
