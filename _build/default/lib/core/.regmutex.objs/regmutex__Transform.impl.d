lib/core/transform.ml: Checker Compaction Format Gpu_analysis Gpu_isa Injection Printf
