lib/core/compaction.mli: Gpu_analysis Gpu_isa
