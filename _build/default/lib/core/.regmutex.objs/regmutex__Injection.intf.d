lib/core/injection.mli: Gpu_analysis Gpu_isa
