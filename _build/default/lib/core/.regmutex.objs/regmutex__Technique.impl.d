lib/core/technique.ml: Compaction Es_heuristic Gpu_analysis Gpu_sim Gpu_uarch Transform
