lib/core/es_heuristic.mli: Format Gpu_uarch
