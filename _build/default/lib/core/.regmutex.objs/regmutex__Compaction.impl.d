lib/core/compaction.ml: Array Gpu_analysis Gpu_isa List
