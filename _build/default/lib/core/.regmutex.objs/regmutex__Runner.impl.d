lib/core/runner.ml: Format Gpu_sim Gpu_uarch Technique
