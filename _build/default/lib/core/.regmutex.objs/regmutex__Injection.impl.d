lib/core/injection.ml: Array Gpu_analysis Gpu_isa List
