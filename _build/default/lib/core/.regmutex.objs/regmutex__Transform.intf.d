lib/core/transform.mli: Checker Format Gpu_isa
