lib/core/checker.ml: Array Format Gpu_analysis Gpu_isa List
