lib/core/checker.mli: Format Gpu_isa
