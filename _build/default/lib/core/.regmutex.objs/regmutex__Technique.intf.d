lib/core/technique.mli: Es_heuristic Gpu_sim Gpu_uarch Transform
