lib/core/es_heuristic.ml: Format Gpu_uarch List
