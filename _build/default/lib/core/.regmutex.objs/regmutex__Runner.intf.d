lib/core/runner.mli: Format Gpu_sim Gpu_uarch Technique
