module Arch_config = Gpu_uarch.Arch_config
module Occupancy = Gpu_uarch.Occupancy

type candidate = {
  es : int;
  bs : int;
  warps : int;
  sections : int;
}

type choice = {
  rounded_regs : int;
  bs : int;
  es : int;
  warps : int;
  sections : int;
  baseline_warps : int;
  candidates : candidate list;
}

let fractions = [ 0.1; 0.15; 0.2; 0.25; 0.3; 0.35 ]

let candidate_sizes ~rounded_regs =
  fractions
  |> List.map (fun f -> int_of_float (float_of_int rounded_regs *. f))
  |> List.filter (fun e -> e > 0 && e mod 2 = 0)
  |> List.sort_uniq compare

let evaluate cfg ~demand ~min_bs ~rounded_regs es =
  let bs = rounded_regs - es in
  if bs < 1 || bs < min_bs then None
  else begin
    let base, sections = Occupancy.srp_sections cfg ~demand ~bs ~es in
    (* Deadlock rule 1: at least one warp's extended set must fit. *)
    if sections < 1 then None
    else Some { es; bs; warps = base.Occupancy.warps; sections }
  end

let baseline_warps cfg ~demand =
  (Occupancy.calculate ~round_regs:true cfg demand).Occupancy.warps

let choose cfg ~demand ~min_bs () =
  let rounded_regs = Arch_config.round_regs cfg demand.Occupancy.regs_per_thread in
  let candidates =
    candidate_sizes ~rounded_regs
    |> List.filter_map (evaluate cfg ~demand ~min_bs ~rounded_regs)
  in
  match candidates with
  | [] -> None
  | _ :: _ ->
      let best_warps =
        List.fold_left (fun acc (c : candidate) -> max acc c.warps) 0 candidates
      in
      let top = List.filter (fun (c : candidate) -> c.warps = best_warps) candidates in
      let passes_half (c : candidate) = 2 * c.sections > c.warps in
      let pick =
        match List.find_opt passes_half top with
        | Some c -> c  (* candidates ascend by es: smallest passing wins *)
        | None ->
            List.fold_left
              (fun (acc : candidate) (c : candidate) ->
                if c.sections > acc.sections then c else acc)
              (List.hd top) (List.tl top)
      in
      Some
        {
          rounded_regs;
          bs = pick.bs;
          es = pick.es;
          warps = pick.warps;
          sections = pick.sections;
          baseline_warps = baseline_warps cfg ~demand;
          candidates;
        }

let with_es cfg ~demand ~min_bs ~es =
  let rounded_regs = Arch_config.round_regs cfg demand.Occupancy.regs_per_thread in
  match evaluate cfg ~demand ~min_bs ~rounded_regs es with
  | None -> None
  | Some c ->
      Some
        {
          rounded_regs;
          bs = c.bs;
          es = c.es;
          warps = c.warps;
          sections = c.sections;
          baseline_warps = baseline_warps cfg ~demand;
          candidates = [ c ];
        }

let raises_occupancy c = c.warps > c.baseline_warps

let pp ppf c =
  Format.fprintf ppf "R=%d |Bs|=%d |Es|=%d warps=%d (baseline %d) sections=%d"
    c.rounded_regs c.bs c.es c.warps c.baseline_warps c.sections
