(** Architected register index compaction (§III-A4).

    Keeps live values below the [|Bs|] boundary outside acquire regions so
    the two-segment [Y = X + B] mapping stays valid. Two cooperating
    passes:

    - {!permute}: a global bijective renaming ranked by low-pressure
      residency — a register that is ever live at an instruction whose
      pressure fits the base set {e must} receive a low index (otherwise
      that instruction would spuriously require the extended set); only
      registers exclusively live at high-pressure points may sit above
      [|Bs|]. A bijection preserves semantics with zero inserted
      instructions (it is this library's analogue of declaration
      reordering, applied soundly and pressure-aware).
    - {!mov_compact}: the paper's per-release-point mechanism — when a
      high-index register stays live after pressure has dropped to
      [≤ |Bs|], move it into a free low slot with a [Mov] and rename the
      remaining live range. Applied only when the conservative safety
      conditions hold (the range does not extend backwards and the target
      slot is untouched from the move point on); regions that cannot be
      compacted safely simply remain in the acquire state, which is
      correct, merely less profitable. *)

(** [pressure_ranking ~bs prog liveness] maps old register index → new
    index. The [n_regs - bs] registers placed above the base-set boundary
    are chosen greedily to minimise the number of {e additional}
    low-pressure instructions dragged into the acquire state: instructions
    whose pressure already exceeds [bs] are in it regardless, so a register
    whose live range hides inside them is free to exile. Within each side
    of the boundary, longer-lived registers get lower indices. *)
val pressure_ranking :
  bs:int -> Gpu_isa.Program.t -> Gpu_analysis.Liveness.t -> int array

(** Apply a bijective renaming. @raise Invalid_argument if [perm] is not
    a permutation of [0 .. n_regs-1]. *)
val permute : Gpu_isa.Program.t -> int array -> Gpu_isa.Program.t

(** [mov_compact ~bs prog] inserts compaction [Mov]s; returns the new
    program and the number of moves inserted. *)
val mov_compact : bs:int -> Gpu_isa.Program.t -> Gpu_isa.Program.t * int
