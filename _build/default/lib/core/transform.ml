module Program = Gpu_isa.Program
module Liveness = Gpu_analysis.Liveness

type plan = {
  original : Gpu_isa.Program.t;
  transformed : Gpu_isa.Program.t;
  bs : int;
  es : int;
  n_acquires : int;
  n_releases : int;
  n_movs : int;
  ext_static_fraction : float;
  max_pressure : int;
}

exception Unsound of Checker.violation list

type options = {
  widen : bool;
  permute : bool;
  mov_compact : bool;
}

let default_options = { widen = true; permute = true; mov_compact = true }

let identity prog =
  {
    original = prog;
    transformed = prog;
    bs = prog.Program.n_regs;
    es = 0;
    n_acquires = 0;
    n_releases = 0;
    n_movs = 0;
    ext_static_fraction = 0.;
    max_pressure = Liveness.max_pressure (Liveness.analyze prog);
  }

let apply ?(options = default_options) ~bs ~es prog =
  if bs + es < prog.Program.n_regs then
    invalid_arg
      (Printf.sprintf "Transform.apply: |Bs|+|Es| = %d cannot hold %d registers"
         (bs + es) prog.Program.n_regs);
  if bs < 1 then invalid_arg "Transform.apply: |Bs| must be positive";
  let liveness0 = Liveness.analyze ~widen:options.widen prog in
  let prog1 =
    if options.permute then
      Compaction.permute prog (Compaction.pressure_ranking ~bs prog liveness0)
    else prog
  in
  let prog2, n_movs =
    if options.mov_compact then Compaction.mov_compact ~bs prog1 else (prog1, 0)
  in
  let liveness2 = Liveness.analyze ~widen:options.widen prog2 in
  let injected = Injection.inject ~bs prog2 liveness2 in
  (match Checker.check ~bs ~es injected.Injection.program with
  | [] -> ()
  | violations -> raise (Unsound violations));
  {
    original = prog;
    transformed = injected.Injection.program;
    bs;
    es;
    n_acquires = injected.Injection.n_acquires;
    n_releases = injected.Injection.n_releases;
    n_movs;
    ext_static_fraction = injected.Injection.ext_static_fraction;
    max_pressure = Liveness.max_pressure liveness0;
  }

let pp_plan ppf p =
  Format.fprintf ppf
    "%s: |Bs|=%d |Es|=%d acquires=%d releases=%d movs=%d ext=%.0f%% (%d -> %d instrs)"
    p.original.Program.name p.bs p.es p.n_acquires p.n_releases p.n_movs
    (100. *. p.ext_static_fraction)
    (Program.length p.original)
    (Program.length p.transformed)
