module Program = Gpu_isa.Program
module Instr = Gpu_isa.Instr
module Regset = Gpu_isa.Regset
module Liveness = Gpu_analysis.Liveness
module Cfg = Gpu_analysis.Cfg

let pressure_ranking ~bs prog (liveness : Liveness.t) =
  let n_regs = prog.Program.n_regs in
  let n = Program.length prog in
  let duration = Array.make n_regs 0 in
  (* live.(i) includes referenced registers so a dying value's last use and
     a fresh definition both count as residency at instruction i. *)
  let live =
    Array.init n (fun i ->
        Regset.union
          (Instr.regs (Program.get prog i))
          (Regset.union liveness.Liveness.live_in.(i) liveness.Liveness.live_out.(i)))
  in
  Array.iter (fun set -> Regset.iter (fun r -> duration.(r) <- duration.(r) + 1) set) live;
  let low i = Liveness.pressure_at liveness i <= bs in
  if n_regs <= bs then Array.init n_regs (fun r -> r)
  else begin
    (* Greedy selection of the high set: instructions whose pressure
       exceeds the base set are in the acquire state no matter what; each
       round exiles the register that drags the fewest additional
       low-pressure instructions into it. *)
    let n_high = n_regs - bs in
    let covered = Array.init n (fun i -> not (low i)) in
    let is_high = Array.make n_regs false in
    let extra_cost r =
      let cost = ref 0 in
      for i = 0 to n - 1 do
        if (not covered.(i)) && Regset.mem r live.(i) then incr cost
      done;
      !cost
    in
    for _ = 1 to n_high do
      let best = ref (-1) and best_key = ref (max_int, max_int, 0) in
      for r = 0 to n_regs - 1 do
        if not is_high.(r) then begin
          let key = (extra_cost r, duration.(r), -r) in
          if key < !best_key then begin
            best := r;
            best_key := key
          end
        end
      done;
      let r = !best in
      is_high.(r) <- true;
      for i = 0 to n - 1 do
        if Regset.mem r live.(i) then covered.(i) <- true
      done
    done;
    (* Low registers keep relative order by duration (long-lived first);
       high registers likewise above the boundary. *)
    let ranked select =
      let regs = ref [] in
      for r = n_regs - 1 downto 0 do
        if is_high.(r) = select then regs := r :: !regs
      done;
      List.sort
        (fun a b ->
          match compare duration.(b) duration.(a) with 0 -> compare a b | c -> c)
        !regs
    in
    let order = Array.of_list (ranked false @ ranked true) in
    let perm = Array.make n_regs 0 in
    Array.iteri (fun rank old -> perm.(old) <- rank) order;
    perm
  end

let permute prog perm =
  let n_regs = prog.Program.n_regs in
  if Array.length perm <> n_regs then
    invalid_arg "Compaction.permute: permutation length mismatch";
  let seen = Array.make n_regs false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n_regs || seen.(v) then
        invalid_arg "Compaction.permute: not a permutation";
      seen.(v) <- true)
    perm;
  Program.map_instrs (fun _ instr -> Instr.map_regs (fun r -> perm.(r)) instr) prog

(* One mov-compaction attempt: find a high register [h] whose live range is
   confined to [f, n) with pressure at [f] within the base set, a free low
   slot [x] untouched from [f] on, and rewrite. Returns the new program or
   [None] when no safe opportunity exists. *)
let try_one ~bs prog =
  let liveness = Liveness.analyze ~widen:true prog in
  let n = Program.length prog in
  let live_in = liveness.Liveness.live_in and live_out = liveness.Liveness.live_out in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- i :: preds.(s)) (Cfg.instr_succs prog i)
  done;
  let touched_from f r =
    (* r referenced or live anywhere at/after f *)
    let rec go i =
      i < n
      && (Regset.mem r (Instr.regs (Program.get prog i))
          || Regset.mem r live_in.(i)
          || Regset.mem r live_out.(i)
          || go (i + 1))
    in
    go f
  in
  let range_confined f h =
    (* live range of h from f on never crosses back before f, and has no
       side entry after f *)
    let ok = ref true in
    (* The inserted Mov must execute exactly once per entry of the range:
       if f is a branch target of a later instruction (a loop header), the
       back edge would re-execute the Mov and clobber the renamed value. *)
    List.iter (fun p -> if p >= f then ok := false) preds.(f);
    for i = 0 to n - 1 do
      if i < f && (Regset.mem h live_in.(i) || Regset.mem h live_out.(i)) then begin
        (* h may be live before f only on the straight flow into f *)
        List.iter
          (fun s ->
            if s > f && Regset.mem h live_in.(s) then ok := false)
          (Cfg.instr_succs prog i)
      end;
      if i > f && Regset.mem h live_in.(i) then
        List.iter (fun p -> if p < f then ok := false) preds.(i);
      if i >= f && Regset.mem h live_out.(i) then
        List.iter
          (fun s -> if s < f && Regset.mem h live_in.(s) then ok := false)
          (Cfg.instr_succs prog i)
    done;
    !ok
  in
  let find_slot f =
    let rec go x = if x >= bs then None else if touched_from f x then go (x + 1) else Some x in
    go 0
  in
  let result = ref None in
  let f = ref 0 in
  while !result = None && !f < n do
    let i = !f in
    if Liveness.pressure_at liveness i <= bs then begin
      (* Only registers that stay live past [i] are worth moving; this also
         guarantees progress (the inserted Mov is the new last use of [h],
         so the same opportunity cannot retrigger). *)
      let high = Regset.above bs (Regset.inter live_in.(i) live_out.(i)) in
      let candidate =
        Regset.fold
          (fun h acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if range_confined i h then
                  match find_slot i with Some x -> Some (h, x) | None -> None
                else None)
          high None
      in
      match candidate with
      | Some (h, x) ->
          let rename r = if r = h then x else r in
          let renamed =
            Program.map_instrs
              (fun j instr -> if j >= i then Instr.map_regs rename instr else instr)
              prog
          in
          let with_mov =
            Program.insert_before renamed [ (i, [ Instr.Mov (x, Instr.Reg h) ]) ]
          in
          result := Some with_mov
      | None -> incr f
    end
    else incr f
  done;
  !result

let mov_compact ~bs prog =
  let rec go prog moves budget =
    if budget = 0 then (prog, moves)
    else
      match try_one ~bs prog with
      | Some prog' -> go prog' (moves + 1) (budget - 1)
      | None -> (prog, moves)
  in
  go prog 0 64
