(** The complete RegMutex compiler pass (§III-A), applied — as the paper
    prescribes — at the assembly level where architected register indices
    are final:

    + register liveness analysis (with divergence widening),
    + index compaction (duration-ranked permutation, then per-release-point
      [Mov] compaction),
    + acquire/release primitive injection,
    + static soundness verification ({!Checker}).

    [|Es|] size selection is separate ({!Es_heuristic}) because it needs
    the architecture configuration, not just the program. *)

type plan = {
  original : Gpu_isa.Program.t;
  transformed : Gpu_isa.Program.t;
  bs : int;
  es : int;
  n_acquires : int;
  n_releases : int;
  n_movs : int;
  ext_static_fraction : float;  (** static instructions in acquire state *)
  max_pressure : int;           (** of the original program, post-widening *)
}

exception Unsound of Checker.violation list

type options = {
  widen : bool;        (** divergence-conservative liveness (default on) *)
  permute : bool;      (** duration-ranked renaming (default on) *)
  mov_compact : bool;  (** per-release-point MOV compaction (default on) *)
}

val default_options : options

(** [apply ?options ~bs ~es prog] runs the pass.
    @raise Unsound when the instrumented program fails {!Checker.check}
    (indicates a bug in this library, not a user error).
    @raise Invalid_argument when [bs + es] cannot cover the program's
    registers. *)
val apply : ?options:options -> bs:int -> es:int -> Gpu_isa.Program.t -> plan

(** An identity plan (baseline / zero-sized extended set). *)
val identity : Gpu_isa.Program.t -> plan

val pp_plan : Format.formatter -> plan -> unit
