(** Table I: per-workload register demand and base-set size. The paper's
    |Bs| column is compared against this library's heuristic, evaluated on
    the architecture each group is measured on (full register file for the
    Figure 7 set, halved for the Figure 8 set — the configuration that
    reproduces the published splits). *)

type row = {
  app : string;
  regs : int;          (** registers per thread *)
  rounded : int;       (** rounded to the allocation granularity *)
  heuristic_bs : int option;  (** this library's pick (None: no candidate) *)
  paper_bs : int;
  sections : int;      (** SRP sections under the heuristic pick *)
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
