type align = Left | Right

let render ~columns rows =
  let headers = List.map fst columns in
  let aligns = List.map snd columns in
  let n_cols = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> n_cols then
        invalid_arg (Printf.sprintf "Table.render: row %d has wrong arity" i))
    rows;
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let line cells =
    let padded = List.map2 (fun (w, a) s -> pad a w s) (List.combine widths aligns) cells in
    String.concat "  " padded
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line headers :: rule :: List.map line rows)

let pct v = Printf.sprintf "%.1f%%" v
let occ v = Printf.sprintf "%.0f%%" (100. *. v)
let int_cell = string_of_int

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
