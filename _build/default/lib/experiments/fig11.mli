(** Figure 11: for the same |Es| sweep as Figure 10, (a) theoretical
    occupancy and (b) ratio of successful acquires over all executed
    acquire instructions. Paper: occupancy rises with |Es| while the
    acquire success ratio usually falls. *)

type row = {
  app : string;
  by_es : (int * (float * float) option) list;
      (** |Es| → (occupancy, acquire success ratio) *)
  heuristic_es : int option;
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
