(** Figure 12: the paired-warps specialization. (a) cycle reduction and
    occupancy on the baseline architecture (Figure 7 set); (b) cycle
    increase on the half register file (Figure 8 set), measured against the
    full-RF baseline. Paper: ≈8% average reduction in (a), 4 points below
    default RegMutex; no benefit when occupancy cannot rise. *)

type row_a = {
  app : string;
  paired_red : float;
  default_red : float;  (** default RegMutex, for comparison *)
  occ_paired : float;
}

type row_b = {
  app : string;
  paired_inc : float;
  default_inc : float;
  occ_paired : float;
}

val rows_a : Exp_config.t -> row_a list
val rows_b : Exp_config.t -> row_b list
val print : Exp_config.t -> unit
