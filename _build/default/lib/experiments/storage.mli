(** Hardware storage cost comparison (§III-B1, §IV-C): RegMutex's 384 bits
    vs RFV's 31,264 bits (>81×) and the paired specialization's further
    >20× saving. *)

val print : Exp_config.t -> unit
