(** Shared configuration for the paper-reproduction experiments.

    The techniques under study are SM-local, so the experiments simulate a
    4-SM slice of the GTX480 with proportionally scaled DRAM bandwidth and
    grids (DESIGN.md) — per-kernel relative cycle counts are what the
    figures compare. *)

type t = {
  arch : Gpu_uarch.Arch_config.t;       (** full register file *)
  half_arch : Gpu_uarch.Arch_config.t;  (** halved register file (§IV-B) *)
  grid_scale : float;  (** multiplier on each workload's default grid *)
}

val default : t

(** Quarter-sized grids for fast test runs. *)
val quick : t

(** Workload's kernel with the configuration's grid scaling applied. *)
val kernel_of : t -> Workloads.Spec.t -> Gpu_sim.Kernel.t

(** Architecture a workload group is evaluated on: full register file for
    the Figure 7 set, halved for the Figure 8 set. *)
val eval_arch : t -> Workloads.Spec.t -> Gpu_uarch.Arch_config.t
