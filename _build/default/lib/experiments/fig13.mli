(** Figure 13: acquire-instruction success rate, default RegMutex vs the
    paired-warps specialization — the 8 occupancy-limited kernels on the
    baseline architecture, the 8 register-file-sensitive kernels on the
    half register file. Paper: pairing usually raises the success rate
    (exclusive access shared with at most one warp). *)

type row = {
  app : string;
  default_ratio : float;
  paired_ratio : float;
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
