module H = Regmutex.Es_heuristic
module Liveness = Gpu_analysis.Liveness

type row = {
  app : string;
  regs : int;
  rounded : int;
  heuristic_bs : int option;
  paper_bs : int;
  sections : int;
}

let row_of cfg spec =
  let arch = Exp_config.eval_arch cfg spec in
  let kernel = spec.Workloads.Spec.kernel in
  let prog = kernel.Gpu_sim.Kernel.program in
  let min_bs = Liveness.live_at_barriers prog (Liveness.analyze prog) in
  let choice = H.choose arch ~demand:(Gpu_sim.Kernel.demand kernel) ~min_bs () in
  {
    app = spec.Workloads.Spec.name;
    regs = Gpu_sim.Kernel.regs_per_thread kernel;
    rounded = Gpu_uarch.Arch_config.round_regs arch (Gpu_sim.Kernel.regs_per_thread kernel);
    heuristic_bs = Option.map (fun c -> c.H.bs) choice;
    paper_bs = spec.Workloads.Spec.paper_bs;
    sections = (match choice with Some c -> c.H.sections | None -> 0);
  }

let rows cfg = List.map (row_of cfg) Workloads.Registry.all

let print cfg =
  let rows = rows cfg in
  print_endline "Table I: workloads, register demand, and base-set size";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("regs", Table.Right); ("(rounded)", Table.Right);
           ("|Bs| ours", Table.Right); ("|Bs| paper", Table.Right);
           ("SRP", Table.Right) ]
       (List.map
          (fun r ->
            [ r.app; Table.int_cell r.regs; Table.int_cell r.rounded;
              (match r.heuristic_bs with Some b -> Table.int_cell b | None -> "-");
              Table.int_cell r.paper_bs; Table.int_cell r.sections ])
          rows));
  let matches =
    List.length (List.filter (fun r -> r.heuristic_bs = Some r.paper_bs) rows)
  in
  Printf.printf "%d/%d base-set sizes match Table I exactly\n" matches (List.length rows)
