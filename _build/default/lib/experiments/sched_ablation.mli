(** Warp-scheduler sensitivity study (an extension beyond the paper, which
    fixes GPGPU-Sim's greedy-then-oldest policy): how do GTO, loose
    round-robin, and a two-level scheduler interact with RegMutex? GTO's
    greediness naturally staggers warps across acquire regions; round-robin
    lock-steps them into acquire bursts. *)

type row = {
  app : string;
  scheduler : string;
  baseline_cycles : int;
  regmutex_cycles : int;
  reduction_pct : float;
  acquire_ratio : float;
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
