lib/experiments/ablation.mli: Exp_config Regmutex
