lib/experiments/fig7.mli: Exp_config
