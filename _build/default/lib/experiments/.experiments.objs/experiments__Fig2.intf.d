lib/experiments/fig2.mli: Exp_config
