lib/experiments/fig10.mli: Exp_config
