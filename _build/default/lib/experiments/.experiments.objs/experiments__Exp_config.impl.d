lib/experiments/exp_config.ml: Gpu_sim Gpu_uarch Workloads
