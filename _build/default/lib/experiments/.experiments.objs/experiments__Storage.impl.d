lib/experiments/storage.ml: Exp_config Format Gpu_uarch List
