lib/experiments/table1.mli: Exp_config
