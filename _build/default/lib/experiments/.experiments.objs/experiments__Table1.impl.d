lib/experiments/table1.ml: Exp_config Gpu_analysis Gpu_sim Gpu_uarch List Option Printf Regmutex Table Workloads
