lib/experiments/fig13.mli: Exp_config
