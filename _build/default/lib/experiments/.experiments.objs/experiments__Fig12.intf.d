lib/experiments/fig12.mli: Exp_config
