lib/experiments/storage.mli: Exp_config
