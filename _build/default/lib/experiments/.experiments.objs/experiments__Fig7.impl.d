lib/experiments/fig7.ml: Engine Exp_config List Printf Regmutex Table Workloads
