lib/experiments/fig2.ml: Array Gpu_isa Gpu_sim Gpu_uarch List Printf Regmutex String Workloads
