lib/experiments/exp_config.mli: Gpu_sim Gpu_uarch Workloads
