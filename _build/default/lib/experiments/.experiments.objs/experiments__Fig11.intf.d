lib/experiments/fig11.mli: Exp_config
