lib/experiments/engine.ml: Exp_config Gpu_uarch Hashtbl Printf Regmutex Workloads
