lib/experiments/ablation.ml: Exp_config List Regmutex Table Workloads
