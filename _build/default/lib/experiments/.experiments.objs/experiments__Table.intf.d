lib/experiments/table.mli:
