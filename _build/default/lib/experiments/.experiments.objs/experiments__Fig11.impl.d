lib/experiments/fig11.ml: Engine Exp_config Fig10 List Option Printf Regmutex Table Workloads
