lib/experiments/table.ml: List Printf String
