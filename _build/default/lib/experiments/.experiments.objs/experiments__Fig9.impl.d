lib/experiments/fig9.ml: Engine Exp_config List Printf Regmutex Table Workloads
