lib/experiments/fig8.mli: Exp_config
