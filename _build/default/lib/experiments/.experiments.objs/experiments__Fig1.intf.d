lib/experiments/fig1.mli: Exp_config Gpu_analysis
