lib/experiments/sched_ablation.ml: Exp_config Gpu_uarch List Regmutex Table Workloads
