lib/experiments/fig12.ml: Engine Exp_config List Printf Regmutex Table Workloads
