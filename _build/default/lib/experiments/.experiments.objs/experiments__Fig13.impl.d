lib/experiments/fig13.ml: Engine Exp_config List Regmutex Table Workloads
