lib/experiments/fig10.ml: Engine Exp_config List Option Printf Regmutex Table Workloads
