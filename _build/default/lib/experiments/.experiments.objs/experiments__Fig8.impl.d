lib/experiments/fig8.ml: Engine Exp_config List Printf Regmutex Table Workloads
