lib/experiments/fig1.ml: Array Exp_config Gpu_analysis Gpu_sim Gpu_uarch List Printf Table Workloads
