lib/experiments/engine.mli: Exp_config Gpu_uarch Regmutex Workloads
