lib/experiments/sched_ablation.mli: Exp_config
