lib/experiments/fig9.mli: Exp_config
