module Arch_config = Gpu_uarch.Arch_config

type t = {
  arch : Arch_config.t;
  half_arch : Arch_config.t;
  grid_scale : float;
}

let slice =
  let n_sms = 4 in
  let full = Arch_config.gtx480 in
  {
    full with
    name = "gtx480-4sm";
    n_sms;
    (* Per-SM DRAM share kept equal to the 15-SM machine. *)
    dram_interval =
      full.Arch_config.dram_interval
      *. float_of_int full.Arch_config.n_sms
      /. float_of_int n_sms;
  }

let default = { arch = slice; half_arch = Arch_config.with_half_regfile slice; grid_scale = 1. }

let quick = { default with grid_scale = 0.25 }

let kernel_of t spec =
  let kernel = spec.Workloads.Spec.kernel in
  let grid = kernel.Gpu_sim.Kernel.grid_ctas in
  let scaled = max 4 (int_of_float (float_of_int grid *. t.grid_scale)) in
  (Workloads.Spec.with_grid spec scaled).Workloads.Spec.kernel

let eval_arch t spec =
  match spec.Workloads.Spec.group with
  | Workloads.Spec.Occupancy_limited -> t.arch
  | Workloads.Spec.Regfile_sensitive -> t.half_arch
