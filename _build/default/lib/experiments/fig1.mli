(** Figure 1: utilization of a sample warp's allocated registers during
    kernel execution, for six kernels — live registers over allocated
    registers per executed instruction. The paper's observation: for most
    of the execution only a subset of the allocation is live. *)

type row = {
  app : string;
  dynamic_instructions : int;
  mean_ratio : float;          (** average live/allocated *)
  below_half : float;          (** fraction of time at ≤50% utilization *)
  profile : Gpu_analysis.Pressure.point array;
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
