(** Minimal fixed-width ASCII table rendering for the benchmark harness. *)

type align = Left | Right

(** [render ~columns rows] lays out the table; [columns] are
    [(header, alignment)] pairs, every row must have the same arity. *)
val render : columns:(string * align) list -> string list list -> string

(** Percentage cell, e.g. [pct 12.34 = "12.3%"]. *)
val pct : float -> string

(** Occupancy cell from a [0,1] ratio, e.g. [occ 0.667 = "67%"]. *)
val occ : float -> string

val int_cell : int -> string

(** Arithmetic mean. *)
val mean : float list -> float
