(** Figure 7: execution-cycle reduction and theoretical occupancy with
    RegMutex for the eight register-occupancy-limited kernels on the
    baseline architecture. Paper: average ≈13% reduction, BFS best ≈23%,
    SAD small despite its occupancy boost. *)

type row = {
  app : string;
  baseline_cycles : int;
  regmutex_cycles : int;
  reduction_pct : float;
  occ_before : float;   (** theoretical occupancy, baseline *)
  occ_after : float;    (** theoretical occupancy with RegMutex *)
  sections : int;       (** SRP sections *)
  acquire_ratio : float;
}

val rows : Exp_config.t -> row list
val mean_reduction : row list -> float
val print : Exp_config.t -> unit
