(** Figure 8: kernels on an architecture with half the register file, with
    and without RegMutex; cycle increase is measured against the same
    kernel on the full register file. Paper: ≈23% average increase
    untreated, ≈9% with RegMutex; MergeSort is the one slowdown. *)

type row = {
  app : string;
  full_cycles : int;        (** baseline arch, full register file *)
  half_cycles : int;        (** half register file, no technique *)
  half_rm_cycles : int;     (** half register file with RegMutex *)
  increase_none_pct : float;
  increase_rm_pct : float;
  occ_half : float;         (** theoretical occupancy on half RF *)
  occ_half_rm : float;
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
