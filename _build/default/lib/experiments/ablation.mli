(** Ablation of the compiler-pass design choices called out in DESIGN.md:
    divergence-conservative widening, duration-ranked permutation, and
    per-release-point MOV compaction. Reports, per variant, the static
    acquire-state footprint and the simulated cycles on two representative
    kernels. *)

type variant = {
  label : string;
  options : Regmutex.Transform.options;
}

val variants : variant list

type row = {
  app : string;
  label : string;
  ext_fraction : float;   (** static instructions in acquire state *)
  acquires : int;         (** static acquire instructions *)
  movs : int;
  cycles : int;
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
