(** Figure 2: the illustrative two-warp example — a machine with 48
    hardware registers per thread and a kernel demanding 31. Without
    RegMutex the warps serialize (62 > 48); with |Bs| = |Es| = 16 the
    base phases overlap and only the extended phases contend for the
    single SRP section. Prints both runs and an allocation timeline. *)

type result = {
  baseline_cycles : int;
  regmutex_cycles : int;
  baseline_timeline : int array;  (** allocated registers per time bucket *)
  regmutex_timeline : int array;
}

val run : unit -> result
val print : Exp_config.t -> unit
