let cache : (string, Regmutex.Runner.run) Hashtbl.t = Hashtbl.create 64
let misses = ref 0

let key ?es_override cfg ~arch technique spec =
  Printf.sprintf "%s/%s/%s/%s/%.3f" arch.Gpu_uarch.Arch_config.name
    (Regmutex.Technique.name technique)
    spec.Workloads.Spec.name
    (match es_override with None -> "auto" | Some es -> string_of_int es)
    cfg.Exp_config.grid_scale

let run ?es_override cfg ~arch technique spec =
  let k = key ?es_override cfg ~arch technique spec in
  match Hashtbl.find_opt cache k with
  | Some run -> run
  | None ->
      incr misses;
      let options = { Regmutex.Technique.default_options with es_override } in
      let kernel = Exp_config.kernel_of cfg spec in
      let run = Regmutex.Runner.execute ~options arch technique kernel in
      Hashtbl.replace cache k run;
      run

let clear () = Hashtbl.reset cache

let simulations () = !misses
