(** Memoized simulation runs. Several figures share the same
    (architecture, technique, kernel) simulations — Figure 7's RegMutex
    runs reappear in Figures 9(a), 12(a) and 13 — so results are cached for
    the lifetime of the process. *)

(** [run ?es_override cfg ~arch technique spec] executes (or recalls) the
    simulation of [spec] under [technique] on [arch]. *)
val run :
  ?es_override:int ->
  Exp_config.t ->
  arch:Gpu_uarch.Arch_config.t ->
  Regmutex.Technique.t ->
  Workloads.Spec.t ->
  Regmutex.Runner.run

(** Drop all cached runs (tests use this to control sharing). *)
val clear : unit -> unit

(** Number of simulations actually executed (cache misses). *)
val simulations : unit -> int
