(** Figure 9: RegMutex vs Register File Virtualization (RFV) and resource
    sharing with OWF scheduling. (a) cycle reduction on the baseline
    architecture (Figure 7 set); (b) cycle increase when the register file
    is halved (Figure 8 set), measured against the full-RF baseline.
    Paper averages: (a) OWF 1.9%, RFV 16.2%, RegMutex 12.8%;
    (b) none 22.9%, OWF 20.6%, RFV 5.9%, RegMutex 10.8%. *)

type row_a = {
  app : string;
  owf_red : float;
  rfv_red : float;
  regmutex_red : float;
}

type row_b = {
  app : string;
  none_inc : float;
  owf_inc : float;
  rfv_inc : float;
  regmutex_inc : float;
}

val rows_a : Exp_config.t -> row_a list
val rows_b : Exp_config.t -> row_b list
val print_a : Exp_config.t -> unit
val print_b : Exp_config.t -> unit
