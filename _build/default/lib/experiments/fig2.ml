open Gpu_isa.Builder
module Arch_config = Gpu_uarch.Arch_config

(* One warp per CTA, 31 registers per thread: a base phase, an extended
   phase (the pressure bulge), and a closing base phase. *)
let program =
  assemble ~name:"fig2"
    ([ mov 0 tid; mov 1 (imm 0); mul 2 (r 0) (imm 4) ]
    @ Workloads.Shape.counted_loop ~ctr:3 ~trips:(imm 4) ~name:"warmup"
        ([ load Gpu_isa.Instr.Global 4 (r 2) ]
        @ Workloads.Shape.alu_chain ~regs:[ 5; 6; 7; 8; 9; 10; 11 ] ~len:21 ~seed:(r 4)
        @ [ add 2 (r 2) (imm 4) ])
    @ [ add 12 (r 11) (r 4) ]
    @ Workloads.Shape.bulge ~seed:12 ~acc:1 ~first:13 ~last:30 ~hold:40 ()
    @ Workloads.Shape.counted_loop ~ctr:3 ~trips:(imm 4) ~name:"cooldown"
        (Workloads.Shape.alu_chain ~regs:[ 5; 6; 7; 8; 9; 10; 11 ] ~len:21 ~seed:(r 1))
    @ [ store ~ofs:0x10000000 Gpu_isa.Instr.Global (r 0) (r 1); exit_ ])

(* A 48-registers-per-thread machine hosting at most two warps. *)
let machine =
  {
    Arch_config.gtx480 with
    name = "fig2-machine";
    n_sms = 1;
    regfile_regs = 48 * 32;
    max_warps = 2;
    max_ctas = 2;
    max_threads = 64;
    n_schedulers = 1;
    reg_alloc_gran = 1;
  }

type result = {
  baseline_cycles : int;
  regmutex_cycles : int;
  baseline_timeline : int array;
  regmutex_timeline : int array;
}

let buckets = 64

let run_one policy allocated_of =
  let kernel = Gpu_sim.Kernel.make ~name:"fig2" ~grid_ctas:2 ~cta_threads:32 program in
  let config = Gpu_sim.Gpu.default_config machine policy in
  let samples = ref [] in
  let observe ~cycle:_ sms = samples := allocated_of sms.(0) :: !samples in
  let stats = Gpu_sim.Gpu.run ~observe config kernel in
  let samples = Array.of_list (List.rev !samples) in
  let n = Array.length samples in
  let timeline =
    Array.init buckets (fun b ->
        let lo = b * n / buckets and hi = max ((b + 1) * n / buckets) (b * n / buckets + 1) in
        let sum = ref 0 in
        for i = lo to min (hi - 1) (n - 1) do
          sum := !sum + samples.(i)
        done;
        !sum / max 1 (min hi n - lo))
  in
  (stats.Gpu_sim.Stats.cycles, timeline)

let run () =
  let baseline_cycles, baseline_timeline =
    run_one
      (Gpu_sim.Policy.Static { regs_per_thread = 31 })
      (fun sm -> Gpu_sim.Sm.resident_warps sm * 31)
  in
  let plan = Regmutex.Transform.apply ~bs:16 ~es:16 program in
  let transformed = plan.Regmutex.Transform.transformed in
  let regmutex_cycles, regmutex_timeline =
    let kernel = Gpu_sim.Kernel.make ~name:"fig2" ~grid_ctas:2 ~cta_threads:32 transformed in
    let config =
      Gpu_sim.Gpu.default_config machine
        (Gpu_sim.Policy.Srp { bs = 16; es = 16; verify = true })
    in
    let samples = ref [] in
    let observe ~cycle:_ sms =
      samples :=
        ((Gpu_sim.Sm.resident_warps sms.(0) * 16) + (Gpu_sim.Sm.srp_in_use sms.(0) * 16))
        :: !samples
    in
    let stats = Gpu_sim.Gpu.run ~observe config kernel in
    let samples = Array.of_list (List.rev !samples) in
    let n = Array.length samples in
    ( stats.Gpu_sim.Stats.cycles,
      Array.init buckets (fun b ->
          let lo = b * n / buckets in
          let hi = max ((b + 1) * n / buckets) (lo + 1) in
          let sum = ref 0 in
          for i = lo to min (hi - 1) (n - 1) do
            sum := !sum + samples.(i)
          done;
          !sum / max 1 (min hi n - lo)) )
  in
  { baseline_cycles; regmutex_cycles; baseline_timeline; regmutex_timeline }

let bar_chart timeline =
  let levels = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  String.init (Array.length timeline) (fun i ->
      let v = timeline.(i) in
      let idx = v * (Array.length levels - 1) / 48 in
      levels.(max 0 (min (Array.length levels - 1) idx)))

let print _cfg =
  let r = run () in
  print_endline "Figure 2: two warps, 48 registers/thread machine, kernel needs 31";
  Printf.printf "baseline: %d cycles (warps serialize: 2 x 31 = 62 > 48)\n"
    r.baseline_cycles;
  Printf.printf "regmutex: %d cycles (|Bs|=16 overlap, |Es|=16 time-shared)\n"
    r.regmutex_cycles;
  Printf.printf "register allocation over time (48 = full file):\n";
  Printf.printf "  baseline |%s|\n" (bar_chart r.baseline_timeline);
  Printf.printf "  regmutex |%s|\n" (bar_chart r.regmutex_timeline);
  Printf.printf "speedup: %.2fx\n"
    (float_of_int r.baseline_cycles /. float_of_int (max 1 r.regmutex_cycles))
