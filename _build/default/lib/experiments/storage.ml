module S = Gpu_uarch.Storage_cost

let print cfg =
  let arch = cfg.Exp_config.arch in
  print_endline "Hardware storage cost per SM (48-warp baseline)";
  List.iter
    (fun t -> Format.printf "%a@." S.pp (S.bits arch t))
    [ S.Regmutex_default; S.Regmutex_paired; S.Rfv; S.Owf ];
  Format.printf "RFV / RegMutex ratio: %.1fx (paper: >81x)@."
    (S.ratio arch S.Regmutex_default S.Rfv);
  Format.printf "RegMutex / paired ratio: %.1fx (paper: >20x)@."
    (S.ratio arch S.Regmutex_paired S.Regmutex_default)
