module Pressure = Gpu_analysis.Pressure
module Liveness = Gpu_analysis.Liveness

type row = {
  app : string;
  dynamic_instructions : int;
  mean_ratio : float;
  below_half : float;
  profile : Pressure.point array;
}

let row_of cfg spec =
  (* One SM and a small grid suffice: the profile belongs to a single
     sample warp executing the unmodified kernel. *)
  let arch = { cfg.Exp_config.arch with Gpu_uarch.Arch_config.n_sms = 1 } in
  let kernel = (Workloads.Spec.with_grid spec 4).Workloads.Spec.kernel in
  let allocated = Gpu_sim.Kernel.regs_per_thread kernel in
  let config =
    {
      (Gpu_sim.Gpu.default_config arch
         (Gpu_sim.Policy.Static { regs_per_thread = allocated }))
      with
      trace_warp0 = true;
    }
  in
  let stats = Gpu_sim.Gpu.run config kernel in
  let liveness = Liveness.analyze kernel.Gpu_sim.Kernel.program in
  let profile =
    Pressure.dynamic_profile ~liveness ~allocated (Gpu_sim.Stats.trace stats)
  in
  {
    app = spec.Workloads.Spec.name;
    dynamic_instructions = Array.length profile;
    mean_ratio = Pressure.mean_ratio profile;
    below_half = Pressure.fraction_below ~threshold:0.5 profile;
    profile;
  }

let rows cfg = List.map (row_of cfg) Workloads.Registry.figure1

let print cfg =
  let rows = rows cfg in
  print_endline "Figure 1: live/allocated registers along a sample warp's execution";
  List.iter
    (fun r ->
      Printf.printf "\n%s: %d dynamic instructions, mean %s live, <=50%% for %s of time\n"
        r.app r.dynamic_instructions (Table.occ r.mean_ratio) (Table.occ r.below_half);
      Printf.printf "  |%s|\n" (Pressure.sparkline ~width:72 r.profile))
    rows
