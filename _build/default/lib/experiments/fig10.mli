(** Figure 10: sensitivity of cycle reduction to the extended-set size,
    |Es| ∈ {2, 4, 6, 8, 10, 12}, on the Figure 7 set. The heuristic's own
    pick is marked; infeasible sizes (deadlock rules) are left blank. *)

val es_values : int list

type row = {
  app : string;
  by_es : (int * float option) list;  (** |Es| → cycle reduction, None = infeasible *)
  heuristic_es : int option;
}

val rows : Exp_config.t -> row list
val print : Exp_config.t -> unit
