(** Architecture parameters of the simulated GPU.

    Defaults model the GeForce GTX480 (Fermi) configuration shipped with
    GPGPU-Sim v3.2.2, the baseline of the RegMutex evaluation: 15 SMs,
    128 KB register file per SM (32 K 32-bit registers), 48 resident warps,
    2 GTO warp schedulers. *)

(** Warp-scheduler policy. [Gto] is GPGPU-Sim's default greedy-then-oldest;
    [Lrr] is loose round-robin; [Two_level n] groups warps into fetch groups
    of [n] and drains the active group before rotating (Narasiman et al.,
    MICRO 2011) — grouping staggers memory phases across groups. *)
type scheduler_kind =
  | Gto
  | Lrr
  | Two_level of int

type t = {
  name : string;
  n_sms : int;
  regfile_regs : int;     (** 32-bit registers per SM *)
  max_warps : int;        (** resident warps per SM *)
  max_ctas : int;         (** resident CTAs per SM *)
  max_threads : int;      (** resident threads per SM *)
  shmem_bytes : int;      (** shared memory per SM *)
  warp_size : int;
  n_schedulers : int;
  scheduler : scheduler_kind;
  reg_alloc_gran : int;   (** per-thread register rounding for allocation *)
  shmem_alloc_gran : int; (** shared-memory allocation granularity, bytes *)
  lat_alu : int;          (** result latency of simple integer ops *)
  lat_complex : int;      (** result latency of mul/div/mad *)
  lat_shared : int;       (** shared-memory access latency *)
  lat_global : int;       (** uncontended global-memory latency *)
  mem_slots : int;        (** in-flight global accesses per SM (MSHR-like) *)
  dram_interval : float;  (** GPU-wide cycles between global-request services
                              at full load (may be fractional: 0.35 ≈ 2.9
                              requests per cycle across the GPU) *)
}

(** The paper's baseline configuration. *)
val gtx480 : t

(** [with_half_regfile t] halves the per-SM register file (the paper's
    64 KB configuration, §IV-B). *)
val with_half_regfile : t -> t

(** [round_regs t r] rounds a per-thread register demand up to the
    allocation granularity (the parenthesised numbers of Table I). *)
val round_regs : t -> int -> int

(** [round_shmem t b] rounds a shared-memory demand up to the allocation
    granularity. *)
val round_shmem : t -> int -> int

val pp : Format.formatter -> t -> unit
