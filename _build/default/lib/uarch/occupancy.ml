type demand = {
  regs_per_thread : int;
  shmem_bytes : int;
  cta_threads : int;
}

type limiter = Lim_regs | Lim_shmem | Lim_threads | Lim_ctas | Lim_warps

type result = {
  ctas : int;
  warps : int;
  threads : int;
  occupancy : float;
  limiter : limiter;
  regs_used : int;
}

let ceil_div a b = (a + b - 1) / b

let calculate ?(round_regs = true) (cfg : Arch_config.t) demand =
  if demand.cta_threads <= 0 then invalid_arg "Occupancy.calculate: empty CTA";
  let regs =
    if round_regs then Arch_config.round_regs cfg demand.regs_per_thread
    else demand.regs_per_thread
  in
  let warps_per_cta = ceil_div demand.cta_threads cfg.warp_size in
  let regs_per_cta = regs * cfg.warp_size * warps_per_cta in
  let shmem_per_cta = Arch_config.round_shmem cfg demand.shmem_bytes in
  let by_regs =
    if regs_per_cta = 0 then cfg.max_ctas else cfg.regfile_regs / regs_per_cta
  in
  let by_shmem =
    if shmem_per_cta = 0 then max_int else cfg.shmem_bytes / shmem_per_cta
  in
  let by_threads = cfg.max_threads / demand.cta_threads in
  let by_warps = cfg.max_warps / warps_per_cta in
  let candidates =
    [ (by_regs, Lim_regs); (by_shmem, Lim_shmem); (by_threads, Lim_threads);
      (by_warps, Lim_warps); (cfg.max_ctas, Lim_ctas) ]
  in
  let ctas, limiter =
    List.fold_left
      (fun (best, lim) (c, l) -> if c < best then (c, l) else (best, lim))
      (max_int, Lim_ctas) candidates
  in
  let ctas = max 0 ctas in
  let warps = ctas * warps_per_cta in
  {
    ctas;
    warps;
    threads = ctas * demand.cta_threads;
    occupancy = float_of_int warps /. float_of_int cfg.max_warps;
    limiter;
    regs_used = ctas * regs_per_cta;
  }

let srp_sections (cfg : Arch_config.t) ~demand ~bs ~es =
  let base = calculate ~round_regs:false cfg { demand with regs_per_thread = bs } in
  let leftover = cfg.regfile_regs - base.regs_used in
  let sections =
    if es <= 0 then 0
    else min cfg.max_warps (leftover / (es * cfg.warp_size))
  in
  (base, max 0 sections)

let pp_limiter ppf l =
  Format.pp_print_string ppf
    (match l with
    | Lim_regs -> "registers"
    | Lim_shmem -> "shared-memory"
    | Lim_threads -> "threads"
    | Lim_ctas -> "cta-slots"
    | Lim_warps -> "warp-slots")

let pp ppf r =
  Format.fprintf ppf "%d CTAs / %d warps (%.0f%%, limited by %a)"
    r.ctas r.warps (100. *. r.occupancy) pp_limiter r.limiter
