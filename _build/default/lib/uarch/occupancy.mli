(** CUDA-style theoretical occupancy calculator.

    Given a kernel's per-thread register demand, per-CTA shared memory and
    CTA shape, computes how many CTAs an SM can host and which resource is
    the limiter — the quantity RegMutex manipulates by shrinking the static
    register demand from the full set to [|Bs|]. *)

type demand = {
  regs_per_thread : int;  (** architected registers per thread (unrounded) *)
  shmem_bytes : int;      (** shared memory per CTA *)
  cta_threads : int;      (** threads per CTA *)
}

type limiter = Lim_regs | Lim_shmem | Lim_threads | Lim_ctas | Lim_warps

type result = {
  ctas : int;             (** resident CTAs per SM *)
  warps : int;            (** resident warps per SM *)
  threads : int;
  occupancy : float;      (** warps / max resident warps *)
  limiter : limiter;      (** binding constraint (register file ties win) *)
  regs_used : int;        (** registers consumed by the resident CTAs *)
}

(** [calculate ?round_regs cfg demand] computes theoretical occupancy.
    [round_regs] (default [true]) applies the allocation granularity to the
    register demand before sizing, as GPGPU-Sim does for the baseline; the
    RegMutex base-set sizing uses exact values (paper §III-A2 example). *)
val calculate : ?round_regs:bool -> Arch_config.t -> demand -> result

(** [srp_sections cfg ~demand ~bs ~es] is the number of extended register
    sets that fit in the register file left over once the base sets of the
    resident CTAs (computed with [regs_per_thread = bs]) are allocated,
    capped at the maximum warp count. Returns the pair
    [(resident, sections)]. *)
val srp_sections : Arch_config.t -> demand:demand -> bs:int -> es:int -> result * int

val pp_limiter : Format.formatter -> limiter -> unit
val pp : Format.formatter -> result -> unit
