(** Fixed-width hardware bitmasks with Find-First-Zero, the primitive the
    RegMutex issue stage uses to locate a free SRP section (Figure 5).

    A mask is created with [width] addressable bits; bits at index
    [sections..width-1] can be pre-set permanently, modelling SRP bitmask
    bits that correspond to no physical section ("those bits … are set at
    the beginning of the kernel placement and stay intact"). *)

type t

(** [create ~width ~valid] makes a mask of [width] bits where only the
    first [valid] bits are usable; the rest are permanently set.
    @raise Invalid_argument when [width] exceeds the native-int capacity
    or [valid > width]. *)
val create : width:int -> valid:int -> t

val width : t -> int
val valid : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit

(** @raise Invalid_argument when clearing a permanently-set bit. *)

val test : t -> int -> bool

(** Index of the least-significant zero bit, if any usable bit is clear. *)
val ffz : t -> int option

(** Number of set bits among the usable bits. *)
val popcount : t -> int

val pp : Format.formatter -> t -> unit
