lib/uarch/srp.mli: Format
