lib/uarch/reg_mapping.ml: Format
