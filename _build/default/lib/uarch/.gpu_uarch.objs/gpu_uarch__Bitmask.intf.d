lib/uarch/bitmask.mli: Format
