lib/uarch/bitmask.ml: Format
