lib/uarch/srp_paired.mli:
