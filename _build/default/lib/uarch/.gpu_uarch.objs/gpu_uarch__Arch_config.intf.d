lib/uarch/arch_config.mli: Format
