lib/uarch/storage_cost.mli: Arch_config Format
