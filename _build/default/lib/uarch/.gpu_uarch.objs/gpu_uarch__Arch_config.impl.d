lib/uarch/arch_config.ml: Format
