lib/uarch/storage_cost.ml: Arch_config Format List
