lib/uarch/srp_paired.ml: Array Bitmask
