lib/uarch/reg_mapping.mli: Format
