lib/uarch/occupancy.mli: Arch_config Format
