lib/uarch/srp.ml: Array Bitmask Format
