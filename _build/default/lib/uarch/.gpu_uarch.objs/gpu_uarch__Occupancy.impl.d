lib/uarch/occupancy.ml: Arch_config Format List
