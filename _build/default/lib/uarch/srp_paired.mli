(** Paired-warps specialization of the SRP engine (§III-C).

    Warps [2k] and [2k+1] share one dedicated extended register set; the
    design drops the lookup table and the full SRP bitmask, keeping only
    [n_warps / 2] status bits. A warp can only acquire its own pair's set,
    so an acquire stalls exactly when the partner warp holds it. *)

type t

type acquire_result =
  | Granted   (** the pair's extended set is now held by this warp *)
  | Stall     (** partner holds the set *)
  | Already_held

type release_result = Released | Not_held

(** [create ~n_warps ~enabled_pairs] — pairs with index
    [>= enabled_pairs] have no physical extended set (register file too
    small); their acquires always stall. *)
val create : n_warps:int -> enabled_pairs:int -> t

val acquire : t -> warp:int -> acquire_result
val release : t -> warp:int -> release_result
val holds : t -> warp:int -> bool

(** Would an acquire by this warp succeed right now (it already holds the
    set, or the pair's set is free)? Pure query for issue-eligibility. *)
val available : t -> warp:int -> bool
val pair_of_warp : warp:int -> int
val n_pairs : t -> int
val in_use : t -> int
val reset_warp : t -> warp:int -> bool
