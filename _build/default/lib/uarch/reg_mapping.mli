(** Architected → physical register mapping of the Operand Collector Unit
    (Figure 6).

    Physical indices are in warp-register units (packs of 32 thread
    registers): the GTX480 register file holds 1024 such packs per SM.

    Baseline: [Y = X + Coeff × Widx].

    RegMutex: the architected index is compared against [|Bs|]; base-set
    registers map to [Widx × |Bs| + X], extended-set registers map to
    [SRP_offset + LUT(Widx) × |Es| + (X − |Bs|)]. *)

type config = {
  bs : int;          (** base register set size, per thread *)
  es : int;          (** extended register set size, per thread *)
  srp_offset : int;  (** first physical pack of the SRP region *)
}

type error =
  | Out_of_range          (** architected index ≥ |Bs| + |Es| *)
  | Extended_not_acquired (** extended access while holding no section *)

(** [baseline ~coeff ~widx ~x] is the stock mapping. *)
val baseline : coeff:int -> widx:int -> x:int -> int

(** [regmutex cfg ~widx ~section ~x] maps architected register [x] of warp
    [widx]; [section] is the SRP section held by the warp (from the LUT),
    if any. *)
val regmutex : config -> widx:int -> section:int option -> x:int -> (int, error) result

(** [srp_offset_for cfg ~resident_warps] computes the canonical SRP base:
    physical packs [0 .. resident_warps×bs) hold base sets, the SRP region
    starts right after. *)
val srp_offset_for : bs:int -> resident_warps:int -> int

val pp_error : Format.formatter -> error -> unit
