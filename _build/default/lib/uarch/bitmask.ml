type t = {
  width : int;
  valid : int;
  mutable bits : int;
}

let create ~width ~valid =
  if width < 0 || width > 61 then invalid_arg "Bitmask.create: width out of [0, 61]";
  if valid < 0 || valid > width then invalid_arg "Bitmask.create: valid > width";
  (* Bits beyond [valid] start (and stay) set. *)
  let permanent = if valid >= width then 0 else ((1 lsl width) - 1) land lnot ((1 lsl valid) - 1) in
  { width; valid; bits = permanent }

let width t = t.width
let valid t = t.valid

let check t i =
  if i < 0 || i >= t.width then invalid_arg "Bitmask: bit index out of range"

let set t i = check t i; t.bits <- t.bits lor (1 lsl i)

let clear t i =
  check t i;
  if i >= t.valid then invalid_arg "Bitmask.clear: bit is permanently set";
  t.bits <- t.bits land lnot (1 lsl i)

let test t i = check t i; t.bits land (1 lsl i) <> 0

let ffz t =
  let rec go i =
    if i >= t.valid then None
    else if t.bits land (1 lsl i) = 0 then Some i
    else go (i + 1)
  in
  go 0

let popcount t =
  let rec count acc i =
    if i >= t.valid then acc
    else count (acc + ((t.bits lsr i) land 1)) (i + 1)
  in
  count 0 0

let pp ppf t =
  for i = t.width - 1 downto 0 do
    Format.pp_print_char ppf (if t.bits land (1 lsl i) <> 0 then '1' else '0')
  done
