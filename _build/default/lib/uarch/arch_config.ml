type scheduler_kind =
  | Gto
  | Lrr
  | Two_level of int

type t = {
  name : string;
  n_sms : int;
  regfile_regs : int;
  max_warps : int;
  max_ctas : int;
  max_threads : int;
  shmem_bytes : int;
  warp_size : int;
  n_schedulers : int;
  scheduler : scheduler_kind;
  reg_alloc_gran : int;
  shmem_alloc_gran : int;
  lat_alu : int;
  lat_complex : int;
  lat_shared : int;
  lat_global : int;
  mem_slots : int;
  dram_interval : float;
}

let gtx480 = {
  name = "gtx480";
  n_sms = 15;
  regfile_regs = 32768;
  max_warps = 48;
  max_ctas = 8;
  max_threads = 1536;
  shmem_bytes = 49152;
  warp_size = 32;
  n_schedulers = 2;
  scheduler = Gto;
  reg_alloc_gran = 4;
  shmem_alloc_gran = 128;
  lat_alu = 4;
  lat_complex = 8;
  lat_shared = 30;
  lat_global = 400;
  mem_slots = 48;
  dram_interval = 0.35;
}

let with_half_regfile t =
  { t with name = t.name ^ "-half-rf"; regfile_regs = t.regfile_regs / 2 }

let round_up value gran = (value + gran - 1) / gran * gran

let round_regs t r = round_up r t.reg_alloc_gran
let round_shmem t b = round_up b t.shmem_alloc_gran

let pp ppf t =
  Format.fprintf ppf
    "%s: %d SMs, %d regs/SM, %d warps, %d CTAs, %d threads, %dB shmem"
    t.name t.n_sms t.regfile_regs t.max_warps t.max_ctas t.max_threads t.shmem_bytes
