type t = {
  taken : Bitmask.t;        (* per pair: 1 = extended set held *)
  owner : int array;        (* per pair: warp currently holding (valid when taken) *)
}

type acquire_result = Granted | Stall | Already_held
type release_result = Released | Not_held

let pair_of_warp ~warp = warp / 2

let create ~n_warps ~enabled_pairs =
  let pairs = (n_warps + 1) / 2 in
  if enabled_pairs > pairs then invalid_arg "Srp_paired.create: too many enabled pairs";
  {
    taken = Bitmask.create ~width:pairs ~valid:enabled_pairs;
    owner = Array.make pairs (-1);
  }

let holds t ~warp =
  let p = pair_of_warp ~warp in
  Bitmask.test t.taken p && t.owner.(p) = warp

let available t ~warp =
  let p = pair_of_warp ~warp in
  holds t ~warp || not (Bitmask.test t.taken p)

let acquire t ~warp =
  let p = pair_of_warp ~warp in
  if Bitmask.test t.taken p then
    if t.owner.(p) = warp then Already_held else Stall
  else if p >= Bitmask.valid t.taken then Stall
  else begin
    Bitmask.set t.taken p;
    t.owner.(p) <- warp;
    Granted
  end

let release t ~warp =
  let p = pair_of_warp ~warp in
  if Bitmask.test t.taken p && t.owner.(p) = warp then begin
    Bitmask.clear t.taken p;
    t.owner.(p) <- -1;
    Released
  end
  else Not_held

let n_pairs t = Bitmask.valid t.taken
let in_use t = Bitmask.popcount t.taken

let reset_warp t ~warp =
  match release t ~warp with Released -> true | Not_held -> false
