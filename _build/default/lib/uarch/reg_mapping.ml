type config = {
  bs : int;
  es : int;
  srp_offset : int;
}

type error =
  | Out_of_range
  | Extended_not_acquired

let baseline ~coeff ~widx ~x = x + (coeff * widx)

let regmutex cfg ~widx ~section ~x =
  if x < 0 || x >= cfg.bs + cfg.es then Error Out_of_range
  else if x < cfg.bs then Ok ((widx * cfg.bs) + x)
  else
    match section with
    | None -> Error Extended_not_acquired
    | Some s -> Ok (cfg.srp_offset + (s * cfg.es) + (x - cfg.bs))

let srp_offset_for ~bs ~resident_warps = bs * resident_warps

let pp_error ppf = function
  | Out_of_range -> Format.pp_print_string ppf "architected index out of range"
  | Extended_not_acquired ->
      Format.pp_print_string ppf "extended-set access without an acquired section"
