(* Quickstart: author a small kernel with the Builder DSL, let RegMutex
   split its register set, and compare baseline vs RegMutex execution.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A toy kernel with the paper's motivating shape: each thread chases a
     few nodes through memory and runs a high-pressure update for each —
     30 architected registers, most of them live only inside the inner
     block, so the static allocation limits occupancy. *)
  let program =
    Gpu_isa.Builder.(
      assemble ~name:"toy"
        ([ mul 0 ctaid ntid;
           add 0 (r 0) tid;
           mov 3 (imm 0);
           mul 2 (r 0) (imm 4) ]
        @ Workloads.Shape.counted_loop ~ctr:1 ~trips:(imm 8) ~name:"node"
            (Workloads.Shape.chase Gpu_isa.Instr.Global ~addr:2 ~dst:4 ~hops:3
            @ Workloads.Shape.bulge ~seed:4 ~acc:3 ~first:5 ~last:29 ~hold:2 ())
        @ [ store ~ofs:0x10000000 Gpu_isa.Instr.Global (r 0) (r 3); exit_ ]))
  in
  let kernel =
    Gpu_sim.Kernel.make ~name:"toy" ~grid_ctas:60 ~cta_threads:256 program
  in
  let arch = { Gpu_uarch.Arch_config.gtx480 with n_sms = 4 } in
  Format.printf "Kernel %s: %d instructions, %d registers/thread@."
    kernel.Gpu_sim.Kernel.name
    (Gpu_isa.Program.length program)
    (Gpu_sim.Kernel.regs_per_thread kernel);

  (* What does the compiler decide? *)
  let baseline = Regmutex.Runner.execute arch Regmutex.Technique.Baseline kernel in
  let rm = Regmutex.Runner.execute arch Regmutex.Technique.Regmutex kernel in
  (match rm.Regmutex.Runner.prepared.Regmutex.Technique.choice with
  | Some choice -> Format.printf "Heuristic: %a@." Regmutex.Es_heuristic.pp choice
  | None -> Format.printf "Heuristic: no viable split (runs as baseline)@.");
  (match rm.Regmutex.Runner.prepared.Regmutex.Technique.plan with
  | Some plan -> Format.printf "Transform: %a@." Regmutex.Transform.pp_plan plan
  | None -> ());

  Format.printf "@.%-10s %10s %12s %12s@." "technique" "cycles" "occupancy"
    "acquire-ok";
  let row (run : Regmutex.Runner.run) =
    Format.printf "%-10s %10d %11.0f%% %11.0f%%@."
      (Regmutex.Technique.name run.Regmutex.Runner.technique)
      run.Regmutex.Runner.cycles
      (100. *. run.Regmutex.Runner.theoretical_occupancy)
      (100. *. run.Regmutex.Runner.acquire_ratio)
  in
  row baseline;
  row rm;
  Format.printf "@.RegMutex cycle reduction: %.1f%%@."
    (Regmutex.Runner.reduction_pct ~baseline rm)
