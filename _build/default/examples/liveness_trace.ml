(* Figure-1 style liveness traces: run each kernel and plot the percentage
   of live registers over a sample warp's executed instructions.

   Run with: dune exec examples/liveness_trace.exe [workload ...] *)

module Liveness = Gpu_analysis.Liveness
module Pressure = Gpu_analysis.Pressure

let trace_one spec =
  let kernel = Workloads.Spec.with_grid spec 4 in
  let arch = { Gpu_uarch.Arch_config.gtx480 with n_sms = 1 } in
  let kernel = kernel.Workloads.Spec.kernel in
  let config =
    {
      (Gpu_sim.Gpu.default_config arch
         (Gpu_sim.Policy.Static
            { regs_per_thread = Gpu_sim.Kernel.regs_per_thread kernel }))
      with
      trace_warp0 = true;
    }
  in
  let stats = Gpu_sim.Gpu.run config kernel in
  let liveness = Liveness.analyze kernel.Gpu_sim.Kernel.program in
  let profile =
    Pressure.dynamic_profile ~liveness
      ~allocated:(Gpu_sim.Kernel.regs_per_thread kernel)
      (Gpu_sim.Stats.trace stats)
  in
  Format.printf "@.%s (%d registers, %d dynamic instructions)@."
    spec.Workloads.Spec.name
    (Gpu_sim.Kernel.regs_per_thread kernel)
    (Array.length profile);
  Format.printf "  mean live ratio: %.0f%%; <=50%% of allocation for %.0f%% of time@."
    (100. *. Pressure.mean_ratio profile)
    (100. *. Pressure.fraction_below ~threshold:0.5 profile);
  Format.printf "  |%s|@." (Pressure.sparkline ~width:72 profile)

let () =
  let specs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map Workloads.Registry.find names
    | _ -> Workloads.Registry.figure1
  in
  Format.printf "Live/allocated register ratio along one warp's execution";
  List.iter trace_one specs
