(* Timeline: watch the SRP at work. Runs one workload under RegMutex with
   the event trace attached and prints the first acquire/release/barrier
   events plus a per-section occupancy summary.

   Run with: dune exec examples/timeline.exe [workload] *)

module E = Gpu_sim.Event_trace
module Technique = Regmutex.Technique

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "SAD" in
  let spec = Workloads.Spec.with_grid (Workloads.Registry.find name) 8 in
  let arch = { Gpu_uarch.Arch_config.gtx480 with n_sms = 1 } in
  let prepared = Technique.prepare arch Technique.Regmutex spec.Workloads.Spec.kernel in
  let events = E.create () in
  let config =
    { (Gpu_sim.Gpu.default_config arch prepared.Technique.policy) with
      Gpu_sim.Gpu.events = Some events }
  in
  let stats = Gpu_sim.Gpu.run config prepared.Technique.kernel in
  Format.printf "%s under RegMutex: %d cycles, %d events recorded%s@."
    spec.Workloads.Spec.name stats.Gpu_sim.Stats.cycles (E.length events)
    (if E.truncated events then " (truncated)" else "");

  Format.printf "@.First 24 events:@.";
  List.iteri
    (fun i e -> if i < 24 then Format.printf "  %a@." E.pp_entry e)
    (E.entries events);

  (* How long does each section stay acquired, on average? *)
  let holds = Hashtbl.create 16 in
  let acquired_at = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.E.event with
      | E.Acquire_granted { cta; warp; section; _ } ->
          Hashtbl.replace acquired_at (cta, warp) (section, e.E.cycle)
      | E.Release { cta; warp; section; _ } -> (
          match Hashtbl.find_opt acquired_at (cta, warp) with
          | Some (s, t0) when s = section ->
              let total, count =
                Option.value ~default:(0, 0) (Hashtbl.find_opt holds section)
              in
              Hashtbl.replace holds section (total + e.E.cycle - t0, count + 1);
              Hashtbl.remove acquired_at (cta, warp)
          | _ -> ())
      | _ -> ())
    (E.entries events);
  Format.printf "@.SRP section usage (mean hold time):@.";
  Hashtbl.fold (fun s v acc -> (s, v) :: acc) holds []
  |> List.sort compare
  |> List.iter (fun (section, (total, count)) ->
         Format.printf "  section %2d: %4d acquires, %5.1f cycles mean hold@."
           section count
           (float_of_int total /. float_of_int (max 1 count)))
