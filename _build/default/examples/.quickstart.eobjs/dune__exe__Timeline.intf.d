examples/timeline.mli:
