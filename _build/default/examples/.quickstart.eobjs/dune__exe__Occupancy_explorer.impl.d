examples/occupancy_explorer.ml: Format Gpu_sim Gpu_uarch List Regmutex Workloads
