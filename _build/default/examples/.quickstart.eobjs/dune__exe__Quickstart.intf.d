examples/quickstart.mli:
