examples/quickstart.ml: Format Gpu_isa Gpu_sim Gpu_uarch Regmutex Workloads
