examples/timeline.ml: Array Format Gpu_sim Gpu_uarch Hashtbl List Option Regmutex Sys Workloads
