examples/custom_kernel.ml: Format Gpu_analysis Gpu_isa Gpu_sim Gpu_uarch Regmutex Workloads
