examples/liveness_trace.ml: Array Format Gpu_analysis Gpu_sim Gpu_uarch List Sys Workloads
