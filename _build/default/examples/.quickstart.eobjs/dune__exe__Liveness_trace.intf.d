examples/liveness_trace.mli:
