(* Occupancy explorer: show, for every workload, how the |Es| split moves
   theoretical occupancy and SRP sections — the §III-A2 trade-off.

   Run with: dune exec examples/occupancy_explorer.exe *)

module O = Gpu_uarch.Occupancy
module H = Regmutex.Es_heuristic

let explore arch (spec : Workloads.Spec.t) =
  let demand = Gpu_sim.Kernel.demand spec.Workloads.Spec.kernel in
  let base = O.calculate arch demand in
  Format.printf "@.%-14s %2d regs -> baseline %a@." spec.Workloads.Spec.name
    demand.O.regs_per_thread O.pp base;
  match H.choose arch ~demand ~min_bs:0 () with
  | None -> Format.printf "  no viable |Es| candidate@."
  | Some choice ->
      List.iter
        (fun (c : H.candidate) ->
          Format.printf "  |Es|=%2d |Bs|=%2d -> %2d warps, %2d SRP sections%s@."
            c.H.es c.H.bs c.H.warps c.H.sections
            (if c.H.es = choice.H.es then "   <- heuristic pick" else ""))
        choice.H.candidates

let () =
  let arch = Gpu_uarch.Arch_config.gtx480 in
  Format.printf "Theoretical occupancy vs extended-set size (%a)@."
    Gpu_uarch.Arch_config.pp arch;
  List.iter (explore arch) Workloads.Registry.all
