(* Custom kernel walkthrough: the full RegMutex pipeline on a hand-written
   kernel — liveness, |Es| choice, transform, disassembly of the
   instrumented code, and a verified run.

   Run with: dune exec examples/custom_kernel.exe *)

open Gpu_isa.Builder
module Liveness = Gpu_analysis.Liveness

(* A kernel with the paper's Figure 3 shape: a conditional where one arm
   needs far more registers than the other. *)
let program =
  assemble ~name:"figure3"
    ([ mul 0 ctaid ntid;
       add 0 (r 0) tid;
       mov 1 (imm 0);
       mul 2 (r 0) (imm 4);
       load Gpu_isa.Instr.Global 3 (r 2);
       and_ 4 (r 3) (imm 1);
       bz (r 4) "else_arm" ]
    @ [ add 5 (r 3) (imm 7) ]
    @ Workloads.Shape.bulge ~seed:5 ~acc:1 ~first:6 ~last:13 ~hold:2 ()
    @ [ bra "join";
        label "else_arm";
        mad 1 (r 3) (imm 3) (r 1);
        label "join";
        store ~ofs:0x10000000 Gpu_isa.Instr.Global (r 0) (r 1);
        exit_ ])

let () =
  Format.printf "Original program:@.%a@." Gpu_isa.Program.pp program;
  let liveness = Liveness.analyze program in
  Format.printf "Max pressure: %d registers; at barriers: %d@."
    (Liveness.max_pressure liveness)
    (Liveness.live_at_barriers program liveness);
  let plan = Regmutex.Transform.apply ~bs:8 ~es:6 program in
  Format.printf "@.Transformed (|Bs|=8, |Es|=6):@.%a@." Gpu_isa.Program.pp
    plan.Regmutex.Transform.transformed;
  Format.printf "%a@." Regmutex.Transform.pp_plan plan;
  (* Run it under the SRP policy with dynamic verification on. *)
  let kernel =
    Gpu_sim.Kernel.make ~name:"figure3" ~grid_ctas:8 ~cta_threads:128
      plan.Regmutex.Transform.transformed
  in
  let arch = { Gpu_uarch.Arch_config.gtx480 with n_sms = 1 } in
  let config =
    Gpu_sim.Gpu.default_config arch
      (Gpu_sim.Policy.Srp { bs = 8; es = 6; verify = true })
  in
  let stats = Gpu_sim.Gpu.run config kernel in
  Format.printf "@.Run: %a@." Gpu_sim.Stats.pp stats
