open Regmutex
module I = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Liveness = Gpu_analysis.Liveness

let inject ~bs prog = Injection.inject ~bs prog (Liveness.analyze prog)

(* Straight line with a pressure bulge above bs=2: r0,r1 base; r2,r3 high. *)
let bulgy =
  Gpu_isa.Builder.(
    assemble ~name:"bulgy"
      [ mov 0 (imm 1);                 (* 0 *)
        add 1 (r 0) (imm 2);           (* 1: live {0,1} *)
        add 2 (r 0) (r 1);             (* 2: defines r2 *)
        add 3 (r 2) (r 1);             (* 3: defines r3; live {0,1,2,3} *)
        add 1 (r 2) (r 3);             (* 4: last use of r2,r3 *)
        store Gpu_isa.Instr.Global (imm 64) (r 1); (* 5 *)
        exit_ ])

let test_ext_predicate () =
  let liveness = Liveness.analyze bulgy in
  let ext = Injection.ext_predicate ~bs:2 bulgy liveness in
  Alcotest.(check (array bool)) "ext instructions"
    [| false; false; true; true; true; false; false |]
    ext

let test_ext_fraction () =
  Alcotest.(check (float 1e-9)) "fraction" 0.5
    (Injection.ext_fraction [| true; false; true; false |]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Injection.ext_fraction [||])

let test_straight_line_injection () =
  let out = inject ~bs:2 bulgy in
  Alcotest.(check int) "one acquire" 1 out.Injection.n_acquires;
  Alcotest.(check int) "one release" 1 out.Injection.n_releases;
  let p = out.Injection.program in
  Alcotest.check Util.instr "acquire before first ext" I.Acquire (Program.get p 2);
  Alcotest.check Util.instr "release after last ext" I.Release (Program.get p 6)

let test_no_ext_unchanged () =
  let out = inject ~bs:4 bulgy in
  Alcotest.(check bool) "program unchanged" true
    (Program.equal out.Injection.program bulgy);
  Alcotest.(check int) "no acquires" 0 out.Injection.n_acquires;
  Alcotest.(check (float 1e-9)) "zero fraction" 0. out.Injection.ext_static_fraction

(* A conditional whose then-arm needs the extended set: both the taken and
   fallthrough paths must see balanced primitives (checked by Checker). *)
let conditional =
  Gpu_isa.Builder.(
    assemble ~name:"cond"
      [ mov 0 (imm 1);
        and_ 1 (r 0) (imm 1);
        bz (r 1) "skip";
        add 2 (r 0) (imm 1);
        add 3 (r 2) (imm 2);
        add 4 (r 3) (r 2);
        add 0 (r 4) (r 3);
        label "skip";
        store Gpu_isa.Instr.Global (imm 64) (r 0);
        exit_ ])

let test_conditional_injection () =
  let out = inject ~bs:3 conditional in
  Alcotest.(check bool) "has acquires" true (out.Injection.n_acquires >= 1);
  Alcotest.(check bool) "has releases" true (out.Injection.n_releases >= 1);
  Alcotest.(check (list string)) "checker accepts" []
    (List.map (fun v -> v.Checker.message) (Checker.check ~bs:3 ~es:2 out.Injection.program))

(* A loop whose body is entirely extended: acquire before the loop (or at
   its head) and release after — the warp may hold across iterations. *)
let hot_loop =
  Gpu_isa.Builder.(
    assemble ~name:"hotloop"
      ([ mov 0 (imm 4); mov 1 (imm 0); mov 2 (imm 7); mov 3 (imm 9) ]
      @ Workloads.Shape.counted_loop ~ctr:0 ~trips:(imm 4) ~name:"l"
          [ add 1 (r 1) (r 2); add 2 (r 2) (r 3); add 3 (r 3) (r 1) ]
      @ [ store Gpu_isa.Instr.Global (imm 64) (r 1); exit_ ]))

let test_loop_injection () =
  let out = inject ~bs:3 hot_loop in
  let p = out.Injection.program in
  Alcotest.(check (list string)) "checker accepts" []
    (List.map (fun v -> v.Checker.message) (Checker.check ~bs:3 ~es:2 p));
  (* Simulate: the result must match the uninstrumented program. *)
  let s_orig = Util.run_with ~grid:1 ~threads:32 (Util.static_policy hot_loop) hot_loop in
  let s_inj =
    Util.run_with ~grid:1 ~threads:32
      (Gpu_sim.Policy.Srp { bs = 3; es = 2; verify = true })
      p
  in
  Util.check_same_traces "loop injection" (Util.traces s_orig) (Util.traces s_inj)

let prop_injection_sound =
  Util.qtest ~count:50 "injection always passes the checker"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let liveness = Liveness.analyze prog in
      let bs = max 1 (Liveness.max_pressure liveness - 2) in
      let out = Injection.inject ~bs prog liveness in
      Checker.check ~bs ~es:(prog.Program.n_regs - bs) out.Injection.program = [])

let suite =
  [ Alcotest.test_case "ext predicate" `Quick test_ext_predicate;
    Alcotest.test_case "ext fraction" `Quick test_ext_fraction;
    Alcotest.test_case "straight-line placement" `Quick test_straight_line_injection;
    Alcotest.test_case "no extended state, unchanged" `Quick test_no_ext_unchanged;
    Alcotest.test_case "conditional placement" `Quick test_conditional_injection;
    Alcotest.test_case "loop placement + behaviour" `Quick test_loop_injection;
    prop_injection_sound ]
