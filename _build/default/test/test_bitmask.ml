open Gpu_uarch

let test_create () =
  let m = Bitmask.create ~width:48 ~valid:26 in
  Alcotest.(check int) "width" 48 (Bitmask.width m);
  Alcotest.(check int) "valid" 26 (Bitmask.valid m);
  Alcotest.(check bool) "usable bit clear" false (Bitmask.test m 0);
  Alcotest.(check bool) "padding bit preset" true (Bitmask.test m 26);
  Alcotest.(check bool) "last padding bit" true (Bitmask.test m 47);
  Alcotest.(check int) "popcount counts usable only" 0 (Bitmask.popcount m)

let test_set_clear () =
  let m = Bitmask.create ~width:8 ~valid:8 in
  Bitmask.set m 3;
  Alcotest.(check bool) "set" true (Bitmask.test m 3);
  Alcotest.(check int) "popcount" 1 (Bitmask.popcount m);
  Bitmask.clear m 3;
  Alcotest.(check bool) "cleared" false (Bitmask.test m 3)

let test_ffz () =
  let m = Bitmask.create ~width:4 ~valid:4 in
  Alcotest.(check (option int)) "first zero" (Some 0) (Bitmask.ffz m);
  Bitmask.set m 0;
  Bitmask.set m 1;
  Alcotest.(check (option int)) "skips set bits" (Some 2) (Bitmask.ffz m);
  Bitmask.set m 2;
  Bitmask.set m 3;
  Alcotest.(check (option int)) "full" None (Bitmask.ffz m)

let test_ffz_respects_valid () =
  let m = Bitmask.create ~width:8 ~valid:2 in
  Bitmask.set m 0;
  Bitmask.set m 1;
  (* Bits 2..7 are permanently set; FFZ must not return them. *)
  Alcotest.(check (option int)) "no section available" None (Bitmask.ffz m)

let test_errors () =
  let m = Bitmask.create ~width:8 ~valid:4 in
  Alcotest.check_raises "clear permanent bit"
    (Invalid_argument "Bitmask.clear: bit is permanently set") (fun () ->
      Bitmask.clear m 5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitmask: bit index out of range") (fun () ->
      ignore (Bitmask.test m 8));
  Alcotest.check_raises "width too large"
    (Invalid_argument "Bitmask.create: width out of [0, 61]") (fun () ->
      ignore (Bitmask.create ~width:64 ~valid:10));
  Alcotest.check_raises "valid > width"
    (Invalid_argument "Bitmask.create: valid > width") (fun () ->
      ignore (Bitmask.create ~width:4 ~valid:5))

let test_pp () =
  let m = Bitmask.create ~width:4 ~valid:4 in
  Bitmask.set m 1;
  Alcotest.(check string) "msb first" "0010" (Format.asprintf "%a" Bitmask.pp m)

let prop_ffz_returns_clear_bit =
  let gen =
    QCheck2.Gen.(
      let* valid = int_range 1 48 in
      let* sets = list_size (int_bound 48) (int_bound (valid - 1)) in
      return (valid, sets))
  in
  Util.qtest "ffz returns a clear usable bit" gen (fun (valid, sets) ->
      let m = Bitmask.create ~width:48 ~valid in
      List.iter (Bitmask.set m) sets;
      match Bitmask.ffz m with
      | Some i -> i < valid && not (Bitmask.test m i)
      | None -> Bitmask.popcount m = valid)

let prop_popcount_matches_sets =
  let gen = QCheck2.Gen.(list_size (int_bound 30) (int_bound 47)) in
  Util.qtest "popcount equals distinct set bits" gen (fun sets ->
      let m = Bitmask.create ~width:48 ~valid:48 in
      List.iter (Bitmask.set m) sets;
      Bitmask.popcount m = List.length (List.sort_uniq compare sets))

let suite =
  [ Alcotest.test_case "create with padding" `Quick test_create;
    Alcotest.test_case "set/clear/test" `Quick test_set_clear;
    Alcotest.test_case "find-first-zero" `Quick test_ffz;
    Alcotest.test_case "ffz respects valid range" `Quick test_ffz_respects_valid;
    Alcotest.test_case "error conditions" `Quick test_errors;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    prop_ffz_returns_clear_bit;
    prop_popcount_matches_sets ]
