open Gpu_uarch
module O = Occupancy

let arch = Arch_config.gtx480
let demand regs = { O.regs_per_thread = regs; shmem_bytes = 0; cta_threads = 256 }

(* The paper's §III-A2 worked example: a 24-register kernel on Fermi. *)
let test_worked_example () =
  let r = O.calculate arch (demand 24) in
  Alcotest.(check int) "24 regs -> 5 CTAs" 5 r.O.ctas;
  Alcotest.(check int) "40 warps" 40 r.O.warps;
  let base18 = O.calculate ~round_regs:false arch (demand 18) in
  Alcotest.(check int) "18 regs -> full occupancy" 48 base18.O.warps;
  let _, sections = O.srp_sections arch ~demand:(demand 24) ~bs:18 ~es:6 in
  Alcotest.(check int) "26 SRP sections (paper)" 26 sections;
  let _, s4 = O.srp_sections arch ~demand:(demand 24) ~bs:20 ~es:4 in
  Alcotest.(check int) "16 sections for |Es|=4" 16 s4;
  let _, s8 = O.srp_sections arch ~demand:(demand 24) ~bs:16 ~es:8 in
  Alcotest.(check int) "32 sections for |Es|=8" 32 s8

let test_limiters () =
  let check_lim name d expected =
    let r = O.calculate arch d in
    Alcotest.(check bool) name true (r.O.limiter = expected)
  in
  check_lim "register-limited" (demand 40) O.Lim_regs;
  check_lim "thread-limited" (demand 8) O.Lim_threads;
  check_lim "shmem-limited"
    { (demand 8) with O.shmem_bytes = 13000 }
    O.Lim_shmem;
  check_lim "cta-limited" { O.regs_per_thread = 8; shmem_bytes = 0; cta_threads = 96 }
    O.Lim_ctas;
  (* A ragged CTA (not a multiple of the warp size) can hit the warp-slot
     limit before the thread limit: 200 threads -> 7 warps; 48/7 = 6 CTAs
     by warps, 1536/200 = 7 by threads, 8 CTA slots. *)
  check_lim "warp-limited"
    { O.regs_per_thread = 8; shmem_bytes = 0; cta_threads = 200 }
    O.Lim_warps

let test_rounding () =
  (* 21 registers round to 24 (Table I parenthesis). *)
  let rounded = O.calculate arch (demand 21) in
  let exact = O.calculate ~round_regs:false arch (demand 21) in
  Alcotest.(check int) "rounded like 24" 5 rounded.O.ctas;
  Alcotest.(check int) "exact 21" 6 exact.O.ctas;
  Alcotest.(check int) "round_regs" 24 (Arch_config.round_regs arch 21);
  Alcotest.(check int) "round multiple unchanged" 24 (Arch_config.round_regs arch 24);
  Alcotest.(check int) "round shmem" 128 (Arch_config.round_shmem arch 1)

let test_occupancy_value () =
  let r = O.calculate arch (demand 24) in
  Alcotest.(check (float 1e-9)) "40/48" (40. /. 48.) r.O.occupancy;
  Alcotest.(check int) "regs used" (5 * 24 * 256) r.O.regs_used

let test_zero_sections () =
  (* Base sets that fill the register file leave no SRP. *)
  let _, sections =
    O.srp_sections arch ~demand:{ (demand 16) with O.cta_threads = 256 } ~bs:16 ~es:8
  in
  (* 6 CTAs (thread cap) x 16 x 256 = 24576, leftover 8192 -> 32 sections *)
  Alcotest.(check int) "leftover sections" 32 sections;
  let _, none = O.srp_sections arch ~demand:(demand 32) ~bs:21 ~es:0 in
  Alcotest.(check int) "es=0 -> no sections" 0 none

let test_invalid () =
  Alcotest.check_raises "empty CTA" (Invalid_argument "Occupancy.calculate: empty CTA")
    (fun () -> ignore (O.calculate arch { (demand 8) with O.cta_threads = 0 }))

let test_half_regfile () =
  let half = Arch_config.with_half_regfile arch in
  Alcotest.(check int) "halved" (arch.Arch_config.regfile_regs / 2)
    half.Arch_config.regfile_regs;
  let r = O.calculate half (demand 28) in
  Alcotest.(check int) "2 CTAs on half RF" 2 r.O.ctas

let prop_monotone_regs =
  Util.qtest "more registers never increase occupancy"
    QCheck2.Gen.(pair (int_range 4 60) (int_range 4 60))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      (O.calculate arch (demand hi)).O.warps <= (O.calculate arch (demand lo)).O.warps)

let prop_warps_bounded =
  Util.qtest "resident warps within machine limits"
    QCheck2.Gen.(pair (int_range 1 62) (int_range 32 1024))
    (fun (regs, threads) ->
      let r = O.calculate arch { O.regs_per_thread = regs; shmem_bytes = 0; cta_threads = threads } in
      r.O.warps <= arch.Arch_config.max_warps
      && r.O.threads <= arch.Arch_config.max_threads
      && r.O.regs_used <= arch.Arch_config.regfile_regs)

let suite =
  [ Alcotest.test_case "paper worked example" `Quick test_worked_example;
    Alcotest.test_case "limiter identification" `Quick test_limiters;
    Alcotest.test_case "allocation rounding" `Quick test_rounding;
    Alcotest.test_case "occupancy value" `Quick test_occupancy_value;
    Alcotest.test_case "srp sections" `Quick test_zero_sections;
    Alcotest.test_case "invalid demand" `Quick test_invalid;
    Alcotest.test_case "half register file" `Quick test_half_regfile;
    prop_monotone_regs;
    prop_warps_bounded ]
