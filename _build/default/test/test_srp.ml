open Gpu_uarch

let test_acquire_release () =
  let srp = Srp.create ~n_warps:48 ~sections:2 in
  Alcotest.(check int) "sections" 2 (Srp.n_sections srp);
  (match Srp.acquire srp ~warp:5 with
  | Srp.Granted 0 -> ()
  | _ -> Alcotest.fail "expected first section");
  Alcotest.(check (option int)) "holds" (Some 0) (Srp.holds srp ~warp:5);
  Alcotest.(check int) "free" 1 (Srp.free_sections srp);
  (match Srp.release srp ~warp:5 with
  | Srp.Released 0 -> ()
  | _ -> Alcotest.fail "expected release of section 0");
  Alcotest.(check int) "all free" 2 (Srp.free_sections srp)

let test_idempotency () =
  let srp = Srp.create ~n_warps:48 ~sections:2 in
  (match Srp.acquire srp ~warp:1 with Srp.Granted _ -> () | _ -> Alcotest.fail "grant");
  (* Nested acquire has no effect. *)
  (match Srp.acquire srp ~warp:1 with
  | Srp.Already_held 0 -> ()
  | _ -> Alcotest.fail "expected Already_held");
  Alcotest.(check int) "still one in use" 1 (Srp.in_use srp);
  (* Release without holding is a no-op. *)
  (match Srp.release srp ~warp:7 with
  | Srp.Not_held -> ()
  | _ -> Alcotest.fail "expected Not_held");
  Alcotest.(check int) "unchanged" 1 (Srp.in_use srp)

let test_stall_and_retry () =
  let srp = Srp.create ~n_warps:48 ~sections:1 in
  (match Srp.acquire srp ~warp:0 with Srp.Granted 0 -> () | _ -> Alcotest.fail "grant");
  (match Srp.acquire srp ~warp:1 with Srp.Stall -> () | _ -> Alcotest.fail "stall");
  (match Srp.release srp ~warp:0 with Srp.Released 0 -> () | _ -> Alcotest.fail "rel");
  (match Srp.acquire srp ~warp:1 with
  | Srp.Granted 0 -> ()
  | _ -> Alcotest.fail "retry succeeds")

let test_reset_warp () =
  let srp = Srp.create ~n_warps:48 ~sections:2 in
  ignore (Srp.acquire srp ~warp:3);
  Alcotest.(check (option int)) "reset frees" (Some 0) (Srp.reset_warp srp ~warp:3);
  Alcotest.(check (option int)) "reset of clean warp" None (Srp.reset_warp srp ~warp:3)

let test_distinct_sections () =
  let srp = Srp.create ~n_warps:48 ~sections:3 in
  let grant w =
    match Srp.acquire srp ~warp:w with Srp.Granted s -> s | _ -> Alcotest.fail "grant"
  in
  let s = List.map grant [ 10; 20; 30 ] in
  Alcotest.(check (list int)) "distinct FFZ order" [ 0; 1; 2 ] s;
  (match Srp.acquire srp ~warp:40 with Srp.Stall -> () | _ -> Alcotest.fail "full");
  ignore (Srp.release srp ~warp:20);
  Alcotest.(check int) "freed middle section" 1 (grant 40)

let test_create_invalid () =
  Alcotest.check_raises "too many sections"
    (Invalid_argument "Srp.create: more sections than warps") (fun () ->
      ignore (Srp.create ~n_warps:4 ~sections:5))

(* --- paired specialization ------------------------------------------- *)

let test_paired_basic () =
  let p = Srp_paired.create ~n_warps:48 ~enabled_pairs:24 in
  Alcotest.(check int) "pairs" 24 (Srp_paired.n_pairs p);
  (match Srp_paired.acquire p ~warp:4 with
  | Srp_paired.Granted -> ()
  | _ -> Alcotest.fail "grant");
  (* Partner (warp 5) must stall; unrelated warp 6 gets its own pair. *)
  (match Srp_paired.acquire p ~warp:5 with
  | Srp_paired.Stall -> ()
  | _ -> Alcotest.fail "partner stalls");
  (match Srp_paired.acquire p ~warp:6 with
  | Srp_paired.Granted -> ()
  | _ -> Alcotest.fail "other pair free");
  (match Srp_paired.release p ~warp:4 with
  | Srp_paired.Released -> ()
  | _ -> Alcotest.fail "release");
  (match Srp_paired.acquire p ~warp:5 with
  | Srp_paired.Granted -> ()
  | _ -> Alcotest.fail "partner acquires after release")

let test_paired_idempotent () =
  let p = Srp_paired.create ~n_warps:48 ~enabled_pairs:24 in
  ignore (Srp_paired.acquire p ~warp:0);
  (match Srp_paired.acquire p ~warp:0 with
  | Srp_paired.Already_held -> ()
  | _ -> Alcotest.fail "nested acquire no-op");
  (match Srp_paired.release p ~warp:1 with
  | Srp_paired.Not_held -> ()
  | _ -> Alcotest.fail "partner cannot release for me");
  Alcotest.(check bool) "still held" true (Srp_paired.holds p ~warp:0)

let test_paired_disabled_pairs () =
  let p = Srp_paired.create ~n_warps:48 ~enabled_pairs:2 in
  (match Srp_paired.acquire p ~warp:10 with
  | Srp_paired.Stall -> ()
  | _ -> Alcotest.fail "disabled pair always stalls")

let test_paired_reset () =
  let p = Srp_paired.create ~n_warps:48 ~enabled_pairs:24 in
  ignore (Srp_paired.acquire p ~warp:9);
  Alcotest.(check bool) "reset frees" true (Srp_paired.reset_warp p ~warp:9);
  Alcotest.(check bool) "idempotent" false (Srp_paired.reset_warp p ~warp:9)

(* Property: after any operation sequence, in_use equals the number of
   warps holding a section, and no section is shared. *)
let prop_srp_consistency =
  let gen =
    QCheck2.Gen.(list_size (int_bound 200) (pair bool (int_bound 47)))
  in
  Util.qtest "in_use matches holders after random ops" gen (fun ops ->
      let srp = Srp.create ~n_warps:48 ~sections:7 in
      List.iter
        (fun (acq, w) ->
          if acq then ignore (Srp.acquire srp ~warp:w)
          else ignore (Srp.release srp ~warp:w))
        ops;
      let holders = ref [] in
      for w = 0 to 47 do
        match Srp.holds srp ~warp:w with
        | Some s -> holders := s :: !holders
        | None -> ()
      done;
      let sections = List.sort compare !holders in
      List.length sections = Srp.in_use srp
      && List.length (List.sort_uniq compare sections) = List.length sections
      && Srp.free_sections srp = 7 - List.length sections)

let suite =
  [ Alcotest.test_case "acquire/release" `Quick test_acquire_release;
    Alcotest.test_case "idempotency" `Quick test_idempotency;
    Alcotest.test_case "stall and retry" `Quick test_stall_and_retry;
    Alcotest.test_case "reset on warp exit" `Quick test_reset_warp;
    Alcotest.test_case "distinct sections, FFZ reuse" `Quick test_distinct_sections;
    Alcotest.test_case "invalid creation" `Quick test_create_invalid;
    Alcotest.test_case "paired: basics" `Quick test_paired_basic;
    Alcotest.test_case "paired: idempotency" `Quick test_paired_idempotent;
    Alcotest.test_case "paired: disabled pairs" `Quick test_paired_disabled_pairs;
    Alcotest.test_case "paired: reset" `Quick test_paired_reset;
    prop_srp_consistency ]
