open Gpu_isa
module I = Instr

let set = Util.regset

let test_defs_uses () =
  let cases =
    [ (I.Bin (I.Add, 2, I.Reg 0, I.Reg 1), [ 2 ], [ 0; 1 ]);
      (I.Un (I.Neg, 3, I.Reg 3), [ 3 ], [ 3 ]);
      (I.Mad (4, I.Reg 1, I.Imm 2, I.Reg 3), [ 4 ], [ 1; 3 ]);
      (I.Mov (5, I.Imm 9), [ 5 ], []);
      (I.Mov (5, I.Special I.Tid), [ 5 ], []);
      (I.Cmp (I.Lt, 1, I.Reg 2, I.Param 0), [ 1 ], [ 2 ]);
      (I.Sel (0, I.Reg 1, I.Reg 2, I.Reg 3), [ 0 ], [ 1; 2; 3 ]);
      (I.Load (I.Global, 7, I.Reg 2, 4), [ 7 ], [ 2 ]);
      (I.Store (I.Shared, I.Reg 1, I.Reg 2, 0), [], [ 1; 2 ]);
      (I.Jump 3, [], []);
      (I.Jump_if (I.Reg 6, 0), [], [ 6 ]);
      (I.Jump_ifz (I.Imm 0, 0), [], []);
      (I.Bar, [], []);
      (I.Acquire, [], []);
      (I.Release, [], []);
      (I.Exit, [], []) ]
  in
  List.iter
    (fun (instr, defs, uses) ->
      Alcotest.check set (I.to_string instr ^ " defs") (Regset.of_list defs)
        (I.defs instr);
      Alcotest.check set (I.to_string instr ^ " uses") (Regset.of_list uses)
        (I.uses instr))
    cases

let test_lat_class () =
  let check name expected instr =
    Alcotest.(check bool) name true (I.lat_class instr = expected)
  in
  check "add is alu" I.Lat_alu (I.Bin (I.Add, 0, I.Imm 1, I.Imm 2));
  check "mul is complex" I.Lat_complex (I.Bin (I.Mul, 0, I.Imm 1, I.Imm 2));
  check "div is complex" I.Lat_complex (I.Bin (I.Div, 0, I.Imm 1, I.Imm 2));
  check "mad is complex" I.Lat_complex (I.Mad (0, I.Imm 1, I.Imm 2, I.Imm 3));
  check "shared load" I.Lat_shared (I.Load (I.Shared, 0, I.Imm 0, 0));
  check "global store" I.Lat_global (I.Store (I.Global, I.Imm 0, I.Imm 0, 0));
  check "acquire is control" I.Lat_control I.Acquire;
  check "bar is control" I.Lat_control I.Bar

let test_branch_helpers () =
  Alcotest.(check bool) "jump is branch" true (I.is_branch (I.Jump 4));
  Alcotest.(check bool) "bar is not" false (I.is_branch I.Bar);
  Alcotest.(check (option int)) "target" (Some 4) (I.target (I.Jump_if (I.Reg 0, 4)));
  Alcotest.(check (option int)) "no target" None (I.target I.Exit);
  Alcotest.check Util.instr "with_target" (I.Jump 9) (I.with_target (I.Jump 2) 9);
  Alcotest.check Util.instr "with_target non-branch id" I.Bar (I.with_target I.Bar 9);
  Alcotest.check Util.instr "map_target"
    (I.Jump_ifz (I.Reg 1, 6))
    (I.map_target (fun t -> t * 2) (I.Jump_ifz (I.Reg 1, 3)))

let test_map_regs () =
  let shift r = r + 10 in
  Alcotest.check Util.instr "bin renamed"
    (I.Bin (I.Add, 12, I.Reg 10, I.Imm 3))
    (I.map_regs shift (I.Bin (I.Add, 2, I.Reg 0, I.Imm 3)));
  Alcotest.check Util.instr "store renamed"
    (I.Store (I.Global, I.Reg 11, I.Reg 12, 8))
    (I.map_regs shift (I.Store (I.Global, I.Reg 1, I.Reg 2, 8)));
  Alcotest.check Util.instr "immediates untouched"
    (I.Mov (10, I.Param 3))
    (I.map_regs shift (I.Mov (0, I.Param 3)));
  (* Branch targets survive register renaming. *)
  Alcotest.check Util.instr "jump_if target preserved"
    (I.Jump_if (I.Reg 15, 7))
    (I.map_regs shift (I.Jump_if (I.Reg 5, 7)))

let test_pp () =
  let check s i = Alcotest.(check string) s s (I.to_string i) in
  check "add r2, r0, r1" (I.Bin (I.Add, 2, I.Reg 0, I.Reg 1));
  check "ld.global r7, [r2+4]" (I.Load (I.Global, 7, I.Reg 2, 4));
  check "st.shared [r1+0], 5" (I.Store (I.Shared, I.Reg 1, I.Imm 5, 0));
  check "bra.nz %tid, @3" (I.Jump_if (I.Special I.Tid, 3));
  check "regmutex.acquire" I.Acquire;
  check "mov r5, param[1]" (I.Mov (5, I.Param 1))

let test_regs () =
  Alcotest.check set "regs = defs u uses"
    (Regset.of_list [ 0; 1; 2 ])
    (I.regs (I.Bin (I.Xor, 2, I.Reg 0, I.Reg 1)))

let suite =
  [ Alcotest.test_case "defs and uses" `Quick test_defs_uses;
    Alcotest.test_case "latency classes" `Quick test_lat_class;
    Alcotest.test_case "branch helpers" `Quick test_branch_helpers;
    Alcotest.test_case "register renaming" `Quick test_map_regs;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "regs union" `Quick test_regs ]
