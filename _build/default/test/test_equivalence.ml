(* The central correctness property of the whole reproduction: a kernel
   instrumented by the RegMutex compiler pass and executed under the SRP
   policy (with dynamic verification on) behaves exactly like the original
   kernel under static allocation — for all 16 workloads and for random
   structured programs. Timing changes; architectural behaviour must not. *)

module Technique = Regmutex.Technique
module Spec = Workloads.Spec

let arch = { Gpu_uarch.Arch_config.gtx480 with n_sms = 2 }

let run_technique technique spec =
  let kernel = (Spec.with_grid spec 4).Spec.kernel in
  let prepared = Technique.prepare arch technique kernel in
  let config =
    { (Gpu_sim.Gpu.default_config arch prepared.Technique.policy) with
      Gpu_sim.Gpu.record_stores = true;
      max_cycles = 5_000_000 }
  in
  Gpu_sim.Gpu.run config prepared.Technique.kernel

let check_technique_equivalence technique name () =
  List.iter
    (fun spec ->
      let baseline = run_technique Technique.Baseline spec in
      let other = run_technique technique spec in
      Alcotest.(check bool)
        (spec.Spec.name ^ " completed")
        false other.Gpu_sim.Stats.timed_out;
      Util.check_same_traces
        (Printf.sprintf "%s under %s" spec.Spec.name name)
        (Util.traces baseline) (Util.traces other))
    Workloads.Registry.all

(* Random structured programs through the full transform. *)
let prop_transform_equivalence =
  Util.qtest ~count:60 "transform preserves behaviour (random kernels)"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let liveness = Gpu_analysis.Liveness.analyze prog in
      let peak = Gpu_analysis.Liveness.max_pressure liveness in
      let bs = max 1 (min (prog.Gpu_isa.Program.n_regs - 1) (peak - 1)) in
      let es = prog.Gpu_isa.Program.n_regs - bs in
      let plan = Regmutex.Transform.apply ~bs ~es prog in
      let s_base = Util.run_with (Util.static_policy prog) prog in
      let s_rm =
        Util.run_with
          (Gpu_sim.Policy.Srp { bs; es; verify = true })
          plan.Regmutex.Transform.transformed
      in
      Util.traces s_base = Util.traces s_rm)

(* Same under the paired policy (even warp count enforced by grid shape). *)
let prop_transform_equivalence_paired =
  Util.qtest ~count:30 "transform preserves behaviour (paired policy)"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let liveness = Gpu_analysis.Liveness.analyze prog in
      let peak = Gpu_analysis.Liveness.max_pressure liveness in
      let bs = max 1 (min (prog.Gpu_isa.Program.n_regs - 1) (peak - 1)) in
      let es = prog.Gpu_isa.Program.n_regs - bs in
      let plan = Regmutex.Transform.apply ~bs ~es prog in
      let s_base = Util.run_with (Util.static_policy prog) prog in
      let s_rm =
        Util.run_with
          (Gpu_sim.Policy.Srp_paired { bs; es; verify = true })
          plan.Regmutex.Transform.transformed
      in
      Util.traces s_base = Util.traces s_rm)

(* Widening off must still be sound: dataflow liveness alone is already a
   conservative-enough basis for the ext predicate on any path actually
   executed. *)
let prop_no_widen_equivalence =
  Util.qtest ~count:30 "transform without widening preserves behaviour"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let liveness = Gpu_analysis.Liveness.analyze ~widen:false prog in
      let peak = Gpu_analysis.Liveness.max_pressure liveness in
      let bs = max 1 (min (prog.Gpu_isa.Program.n_regs - 1) (peak - 1)) in
      let es = prog.Gpu_isa.Program.n_regs - bs in
      let options = { Regmutex.Transform.default_options with widen = false } in
      match Regmutex.Transform.apply ~options ~bs ~es prog with
      | plan ->
          let s_base = Util.run_with (Util.static_policy prog) prog in
          let s_rm =
            Util.run_with
              (Gpu_sim.Policy.Srp { bs; es; verify = true })
              plan.Regmutex.Transform.transformed
          in
          Util.traces s_base = Util.traces s_rm
      | exception Regmutex.Transform.Unsound _ ->
          (* The static checker may reject a widen-less plan; that is a
             safe outcome, not an equivalence failure. *)
          true)

let suite =
  [ Alcotest.test_case "all workloads: RegMutex = baseline" `Slow
      (check_technique_equivalence Technique.Regmutex "regmutex");
    Alcotest.test_case "all workloads: paired = baseline" `Slow
      (check_technique_equivalence Technique.Regmutex_paired "regmutex-paired");
    Alcotest.test_case "all workloads: OWF = baseline" `Slow
      (check_technique_equivalence Technique.Owf "owf");
    Alcotest.test_case "all workloads: RFV = baseline" `Slow
      (check_technique_equivalence Technique.Rfv "rfv");
    prop_transform_equivalence;
    prop_transform_equivalence_paired;
    prop_no_widen_equivalence ]
