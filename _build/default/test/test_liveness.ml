open Gpu_analysis
module I = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Regset = Gpu_isa.Regset

let set = Util.regset

let test_straight () =
  let t = Liveness.analyze Util.straight in
  (* mov r0; add r1,r0; mul r2,r0,r1; store r2; exit *)
  Alcotest.check set "entry live_in empty" Regset.empty t.Liveness.live_in.(0);
  Alcotest.check set "r0 live into add" (Regset.singleton 0) t.Liveness.live_in.(1);
  Alcotest.check set "r0,r1 into mul" (Regset.of_list [ 0; 1 ]) t.Liveness.live_in.(2);
  Alcotest.check set "r2 into store" (Regset.singleton 2) t.Liveness.live_in.(3);
  Alcotest.check set "dead after store" Regset.empty t.Liveness.live_out.(3)

let test_loop_carried () =
  let t = Liveness.analyze Util.loop in
  (* r1 (accumulator) is live around the loop back edge; the counter r0 is
     live from its init through the loop. *)
  let header_bz = 2 in
  Alcotest.(check bool) "acc live at header" true
    (Regset.mem 1 t.Liveness.live_in.(header_bz));
  Alcotest.(check bool) "counter live at header" true
    (Regset.mem 0 t.Liveness.live_in.(header_bz))

let test_dead_code () =
  let p =
    Program.create ~name:"dead"
      [| I.Mov (0, I.Imm 1); I.Mov (0, I.Imm 2);
         I.Store (I.Global, I.Imm 0, I.Reg 0, 0); I.Exit |]
  in
  let t = Liveness.analyze p in
  (* The first definition is dead: r0 not live into instruction 1. *)
  Alcotest.check set "dead def" Regset.empty t.Liveness.live_in.(1);
  Alcotest.check set "second def live" (Regset.singleton 0) t.Liveness.live_in.(2)

(* Figure 3, R3 case: defined before the branch, used in only one arm —
   widening makes it live throughout both arms. *)
let test_widening_r3 () =
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"r3"
        [ mov 0 (imm 1);
          mov 3 (imm 9);        (* R3 defined before the branch *)
          bz (r 0) "s2";
          mov 1 (imm 2);        (* s1: does not use R3 *)
          mov 1 (imm 3);
          bra "join";
          label "s2";
          add 1 (r 3) (imm 1);  (* s2: uses R3 *)
          label "join";
          store Gpu_isa.Instr.Global (imm 64) (r 1);
          exit_ ])
  in
  let narrow = Liveness.analyze ~widen:false p in
  let wide = Liveness.analyze ~widen:true p in
  (* Without widening R3 is dead in s1 (instructions 3-5). *)
  Alcotest.(check bool) "narrow: dead in s1" false
    (Regset.mem 3 narrow.Liveness.live_in.(4));
  Alcotest.(check bool) "wide: live in s1" true
    (Regset.mem 3 wide.Liveness.live_in.(4));
  (* In both, dead after its use. *)
  Alcotest.(check bool) "dead at join" false (Regset.mem 3 wide.Liveness.live_in.(8))

(* Figure 3, R2 case: defined within one arm, used after the join —
   widening makes it live in the other arm too. *)
let test_widening_r2 () =
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"r2"
        [ mov 0 (imm 1);
          mov 2 (imm 0);        (* R2 initialised before branch *)
          bz (r 0) "s2";
          mov 2 (imm 7);        (* s1 redefines R2 *)
          bra "join";
          label "s2";
          mov 1 (imm 3);        (* s2 does not touch R2 *)
          label "join";
          store Gpu_isa.Instr.Global (imm 64) (r 2);
          exit_ ])
  in
  let wide = Liveness.analyze ~widen:true p in
  (* R2 must be considered live in s2 (instruction 5). *)
  Alcotest.(check bool) "live in untouched arm" true
    (Regset.mem 2 wide.Liveness.live_in.(5))

let test_pressure () =
  let t = Liveness.analyze Util.straight in
  Alcotest.(check int) "max pressure" 2 (Liveness.max_pressure t);
  let profile = Liveness.profile t in
  Alcotest.(check int) "profile length" 5 (Array.length profile);
  Alcotest.(check int) "pressure at mul" 2 (Liveness.pressure_at t 2)

let test_live_at_barriers () =
  let p =
    Gpu_isa.Builder.(
      assemble ~name:"barred"
        [ mov 0 (imm 1); mov 1 (imm 2); bar;
          add 2 (r 0) (r 1); store Gpu_isa.Instr.Global (imm 64) (r 2); exit_ ])
  in
  let t = Liveness.analyze p in
  Alcotest.(check int) "two regs live at bar" 2 (Liveness.live_at_barriers p t);
  let t0 = Liveness.analyze Util.straight in
  Alcotest.(check int) "no barrier" 0 (Liveness.live_at_barriers Util.straight t0)

(* Property: the dataflow equations hold at fixpoint, and widening only
   enlarges live sets. *)
let prop_dataflow_equations =
  Util.qtest ~count:60 "dataflow equations hold" (Util.gen_structured ~n_regs:6)
    (fun prog ->
      let t = Liveness.analyze ~widen:false prog in
      let n = Program.length prog in
      let ok = ref true in
      for i = 0 to n - 1 do
        let instr = Program.get prog i in
        let out =
          List.fold_left
            (fun acc s -> Regset.union acc t.Liveness.live_in.(s))
            Regset.empty (Cfg.instr_succs prog i)
        in
        let inn = Regset.union (I.uses instr) (Regset.diff out (I.defs instr)) in
        if not (Regset.equal out t.Liveness.live_out.(i)
                && Regset.equal inn t.Liveness.live_in.(i))
        then ok := false
      done;
      !ok)

let prop_widening_monotone =
  Util.qtest ~count:60 "widening only grows live sets" (Util.gen_structured ~n_regs:6)
    (fun prog ->
      let narrow = Liveness.analyze ~widen:false prog in
      let wide = Liveness.analyze ~widen:true prog in
      let ok = ref true in
      for i = 0 to Program.length prog - 1 do
        if not (Regset.subset narrow.Liveness.live_in.(i) wide.Liveness.live_in.(i))
        then ok := false
      done;
      !ok)

let prop_uses_live =
  Util.qtest ~count:60 "uses are live on entry" (Util.gen_structured ~n_regs:6)
    (fun prog ->
      let t = Liveness.analyze prog in
      let ok = ref true in
      for i = 0 to Program.length prog - 1 do
        if not (Regset.subset (I.uses (Program.get prog i)) t.Liveness.live_in.(i))
        then ok := false
      done;
      !ok)

let suite =
  [ Alcotest.test_case "straight line" `Quick test_straight;
    Alcotest.test_case "loop-carried values" `Quick test_loop_carried;
    Alcotest.test_case "dead definition" `Quick test_dead_code;
    Alcotest.test_case "widening: use in one arm (R3)" `Quick test_widening_r3;
    Alcotest.test_case "widening: def in one arm (R2)" `Quick test_widening_r2;
    Alcotest.test_case "pressure profile" `Quick test_pressure;
    Alcotest.test_case "live at barriers" `Quick test_live_at_barriers;
    prop_dataflow_equations;
    prop_widening_monotone;
    prop_uses_live ]
