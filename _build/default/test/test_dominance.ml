open Gpu_analysis

let dom_of prog =
  let cfg = Cfg.of_program prog in
  (cfg, Dominance.compute cfg)

let test_diamond () =
  let _, dom = dom_of Util.diamond in
  Alcotest.(check (option int)) "entry has no idom" None (Dominance.idom dom 0);
  Alcotest.(check (option int)) "then idom" (Some 0) (Dominance.idom dom 1);
  Alcotest.(check (option int)) "else idom" (Some 0) (Dominance.idom dom 2);
  Alcotest.(check (option int)) "join idom" (Some 0) (Dominance.idom dom 3);
  (* Post-dominators: the join post-dominates everything. *)
  Alcotest.(check (option int)) "entry ipostdom" (Some 3) (Dominance.ipostdom dom 0);
  Alcotest.(check (option int)) "then ipostdom" (Some 3) (Dominance.ipostdom dom 1);
  Alcotest.(check (option int)) "join ipostdom is sink" None (Dominance.ipostdom dom 3)

let test_loop () =
  let _, dom = dom_of Util.loop in
  (* Blocks: 0 preheader, 1 header, 2 body, 3 exit. *)
  Alcotest.(check (option int)) "header idom" (Some 0) (Dominance.idom dom 1);
  Alcotest.(check (option int)) "body idom" (Some 1) (Dominance.idom dom 2);
  Alcotest.(check (option int)) "exit idom" (Some 1) (Dominance.idom dom 3);
  Alcotest.(check (option int)) "body ipostdom" (Some 1) (Dominance.ipostdom dom 2);
  Alcotest.(check (option int)) "header ipostdom" (Some 3) (Dominance.ipostdom dom 1)

let test_relations () =
  let _, dom = dom_of Util.diamond in
  Alcotest.(check bool) "entry dominates join" true (Dominance.dominates dom 0 3);
  Alcotest.(check bool) "then does not dominate join" false (Dominance.dominates dom 1 3);
  Alcotest.(check bool) "reflexive" true (Dominance.dominates dom 2 2);
  Alcotest.(check bool) "join postdominates entry" true (Dominance.postdominates dom 3 0);
  Alcotest.(check bool) "then does not postdominate entry" false
    (Dominance.postdominates dom 1 0)

(* Nested diamonds: outer branch, inner branch inside the then-arm. *)
let nested =
  Gpu_isa.Builder.(
    assemble ~name:"nested"
      [ mov 0 (imm 1);          (* B0: 0-1 *)
        bz (r 0) "outer_else";
        mov 1 (imm 2);          (* B1: 2-3 *)
        bz (r 1) "inner_else";
        mov 2 (imm 3);          (* B2: 4-5 *)
        bra "inner_join";
        label "inner_else";
        mov 2 (imm 4);          (* B3: 6 *)
        label "inner_join";
        bra "outer_join";       (* B4: 7 *)
        label "outer_else";
        mov 2 (imm 5);          (* B5: 8 *)
        label "outer_join";
        store Gpu_isa.Instr.Global (imm 64) (r 2); (* B6: 9-10 *)
        exit_ ])

let test_nested () =
  let _, dom = dom_of nested in
  Alcotest.(check (option int)) "inner join ipostdom path" (Some 6)
    (Dominance.ipostdom dom 4);
  Alcotest.(check (option int)) "inner branch ipostdom" (Some 4)
    (Dominance.ipostdom dom 1);
  Alcotest.(check (option int)) "outer branch ipostdom" (Some 6)
    (Dominance.ipostdom dom 0);
  Alcotest.(check bool) "outer join postdominates inner arms" true
    (Dominance.postdominates dom 6 2)

let suite =
  [ Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "loop" `Quick test_loop;
    Alcotest.test_case "dominates/postdominates" `Quick test_relations;
    Alcotest.test_case "nested diamonds" `Quick test_nested ]
