open Gpu_analysis
module Program = Gpu_isa.Program
module Liveness' = Gpu_analysis.Liveness

(* Disjoint lifetimes: r0 dies before r1 is born — one register suffices
   (plus the store's value path). *)
let sequential =
  Gpu_isa.Builder.(
    assemble ~name:"seq"
      [ mov 0 (imm 1);
        store ~ofs:0x10000000 Gpu_isa.Instr.Global (imm 0) (r 0);
        mov 1 (imm 2);
        store ~ofs:0x10000000 Gpu_isa.Instr.Global (imm 1) (r 1);
        mov 2 (imm 3);
        store ~ofs:0x10000000 Gpu_isa.Instr.Global (imm 2) (r 2);
        exit_ ])

let test_disjoint_lifetimes_share () =
  let t = Allocator.allocate sequential in
  Alcotest.(check int) "one register suffices" 1 t.Allocator.n_colors;
  let minimized = Allocator.minimize sequential in
  Alcotest.(check int) "program shrunk" 1 minimized.Program.n_regs

let test_interference () =
  Alcotest.(check bool) "disjoint names don't interfere" false
    (Allocator.interfere sequential 0 1);
  (* In the straight-line kernel r0 and r1 are simultaneously live. *)
  Alcotest.(check bool) "overlapping names interfere" true
    (Allocator.interfere Util.straight 0 1)

let test_colors_bounded_by_pressure () =
  (* Coloring never needs fewer registers than the peak pressure, and for
     our structured kernels the greedy order achieves it or comes close. *)
  List.iter
    (fun spec ->
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      let peak = Liveness'.max_pressure (Liveness'.analyze ~widen:false prog) in
      let t = Allocator.allocate prog in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d colors >= pressure %d" spec.Workloads.Spec.name
           t.Allocator.n_colors peak)
        true
        (t.Allocator.n_colors >= peak);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d colors <= names %d" spec.Workloads.Spec.name
           t.Allocator.n_colors prog.Program.n_regs)
        true
        (t.Allocator.n_colors <= prog.Program.n_regs))
    Workloads.Registry.all

let test_workloads_already_optimal () =
  (* The Table I kernels are authored like allocator output: re-allocation
     cannot shave more than one register off any of them. *)
  List.iter
    (fun spec ->
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      let t = Allocator.allocate prog in
      if t.Allocator.n_colors < prog.Program.n_regs - 1 then
        Alcotest.failf "%s: allocator found %d << %d names"
          spec.Workloads.Spec.name t.Allocator.n_colors prog.Program.n_regs)
    Workloads.Registry.all

let test_semantics_preserved_workloads () =
  List.iter
    (fun name ->
      let spec = Workloads.Registry.find name in
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      let minimized = Allocator.minimize prog in
      let params = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.params in
      let a = Util.run_with ~params (Util.static_policy prog) prog in
      let b = Util.run_with ~params (Util.static_policy minimized) minimized in
      Util.check_same_traces (name ^ " minimized") (Util.traces a) (Util.traces b))
    [ "Gaussian"; "SPMV"; "HeartWall" ]

let prop_allocation_preserves_semantics =
  Util.qtest ~count:40 "allocation preserves behaviour (random kernels)"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let minimized = Allocator.minimize prog in
      let a = Util.run_with (Util.static_policy prog) prog in
      let b = Util.run_with (Util.static_policy minimized) minimized in
      Util.traces a = Util.traces b)

let prop_coloring_valid =
  Util.qtest ~count:40 "interfering names get distinct colors"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let t = Allocator.allocate prog in
      let ok = ref true in
      for a = 0 to prog.Program.n_regs - 1 do
        for b = a + 1 to prog.Program.n_regs - 1 do
          if Allocator.interfere prog a b && t.Allocator.coloring.(a) = t.Allocator.coloring.(b)
          then ok := false
        done
      done;
      !ok)

let suite =
  [ Alcotest.test_case "disjoint lifetimes share a register" `Quick
      test_disjoint_lifetimes_share;
    Alcotest.test_case "interference queries" `Quick test_interference;
    Alcotest.test_case "colors bounded by pressure and names" `Quick
      test_colors_bounded_by_pressure;
    Alcotest.test_case "workloads are allocator-tight" `Quick
      test_workloads_already_optimal;
    Alcotest.test_case "semantics preserved (workloads)" `Slow
      test_semantics_preserved_workloads;
    prop_allocation_preserves_semantics;
    prop_coloring_valid ]
