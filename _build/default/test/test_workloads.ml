(* Table I conformance and determinism of the 16 synthetic workloads. *)

module Liveness = Gpu_analysis.Liveness
module Spec = Workloads.Spec

let all = Workloads.Registry.all

let test_registry_complete () =
  Alcotest.(check int) "16 workloads" 16 (List.length all);
  Alcotest.(check int) "8 occupancy-limited" 8
    (List.length Workloads.Registry.occupancy_limited);
  Alcotest.(check int) "8 regfile-sensitive" 8
    (List.length Workloads.Registry.regfile_sensitive);
  Alcotest.(check int) "6 figure-1 kernels" 6 (List.length Workloads.Registry.figure1);
  Alcotest.(check (list string)) "paper order (first four)"
    [ "BFS"; "CUTCP"; "DWT2D"; "HotSpot3D" ]
    (List.filteri (fun i _ -> i < 4) Workloads.Registry.names)

let test_find () =
  Alcotest.(check string) "case-insensitive" "BFS"
    (Workloads.Registry.find "bfs").Spec.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Workloads.Registry.find "nope"))

let test_table1_register_counts () =
  List.iter
    (fun spec ->
      match Spec.validate spec with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    all

let test_pressure_matches_allocation () =
  (* A real allocator sizes the register set by the peak live count; every
     kernel must reach within one register of its allocation. *)
  List.iter
    (fun spec ->
      let prog = spec.Spec.kernel.Gpu_sim.Kernel.program in
      let pressure = Liveness.max_pressure (Liveness.analyze prog) in
      let names = Gpu_sim.Kernel.regs_per_thread spec.Spec.kernel in
      if pressure < names - 1 || pressure > names then
        Alcotest.failf "%s: pressure %d vs %d names" spec.Spec.name pressure names)
    all

let test_barrier_liveness_rule () =
  (* Deadlock rule 2: |Bs| must cover the live set at every barrier. *)
  List.iter
    (fun spec ->
      let prog = spec.Spec.kernel.Gpu_sim.Kernel.program in
      let at_bar = Liveness.live_at_barriers prog (Liveness.analyze prog) in
      if at_bar > spec.Spec.paper_bs then
        Alcotest.failf "%s: %d live at barrier > |Bs| = %d" spec.Spec.name at_bar
          spec.Spec.paper_bs)
    all

let test_even_warps_per_cta () =
  (* Paired-warps specialization requires an even warp count per CTA. *)
  List.iter
    (fun spec ->
      let wpc = Gpu_sim.Kernel.warps_per_cta Gpu_uarch.Arch_config.gtx480 spec.Spec.kernel in
      if wpc mod 2 <> 0 then Alcotest.failf "%s: odd warps/CTA" spec.Spec.name)
    all

let test_with_grid () =
  let spec = Workloads.Registry.find "BFS" in
  let smaller = Spec.with_grid spec 4 in
  Alcotest.(check int) "grid replaced" 4 smaller.Spec.kernel.Gpu_sim.Kernel.grid_ctas;
  Alcotest.(check string) "same program" "bfs"
    smaller.Spec.kernel.Gpu_sim.Kernel.program.Gpu_isa.Program.name

let run_small spec =
  let kernel = (Spec.with_grid spec 2).Spec.kernel in
  let config =
    { (Gpu_sim.Gpu.default_config Util.small_arch
         (Gpu_sim.Policy.Static
            { regs_per_thread = Gpu_sim.Kernel.regs_per_thread kernel }))
      with
      Gpu_sim.Gpu.record_stores = true;
      max_cycles = 3_000_000 }
  in
  Gpu_sim.Gpu.run config kernel

let test_all_run_to_completion () =
  List.iter
    (fun spec ->
      let stats = run_small spec in
      if stats.Gpu_sim.Stats.timed_out then
        Alcotest.failf "%s timed out" spec.Spec.name;
      if Util.traces stats = [] then
        Alcotest.failf "%s produced no stores" spec.Spec.name)
    all

let test_deterministic () =
  (* Two runs of the same kernel produce identical store traces. *)
  List.iter
    (fun spec ->
      let a = run_small spec and b = run_small spec in
      Util.check_same_traces spec.Spec.name (Util.traces a) (Util.traces b))
    all

let test_divergent_kernels_take_both_paths () =
  (* HeartWall and CUTCP have data-dependent branches; over a couple of
     CTAs both paths must be exercised (instruction counts differ from a
     straight-line execution and the bulge sometimes fires). *)
  List.iter
    (fun name ->
      let spec = Workloads.Registry.find name in
      let stats = run_small spec in
      Alcotest.(check bool) (name ^ " executed") true
        (stats.Gpu_sim.Stats.instructions > 0))
    [ "HeartWall"; "CUTCP"; "SRAD" ]

let suite =
  [ Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "find by name" `Quick test_find;
    Alcotest.test_case "Table I register counts" `Quick test_table1_register_counts;
    Alcotest.test_case "peak pressure = allocation" `Quick test_pressure_matches_allocation;
    Alcotest.test_case "barrier liveness under |Bs|" `Quick test_barrier_liveness_rule;
    Alcotest.test_case "even warps per CTA" `Quick test_even_warps_per_cta;
    Alcotest.test_case "with_grid" `Quick test_with_grid;
    Alcotest.test_case "all kernels run" `Slow test_all_run_to_completion;
    Alcotest.test_case "deterministic traces" `Slow test_deterministic;
    Alcotest.test_case "divergent kernels execute" `Quick test_divergent_kernels_take_both_paths ]
