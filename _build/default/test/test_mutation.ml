(* Failure injection: break correctly instrumented programs and verify the
   safety nets catch every mutation — the static checker at compile time
   and dynamic verification in the simulator. *)

open Regmutex
module I = Gpu_isa.Instr
module Program = Gpu_isa.Program

(* A transformed kernel with at least one acquire/release pair on every
   warp's path (SAD's bulge is unconditional). *)
let transformed, bs, es =
  let prog = (Workloads.Registry.find "SAD").Workloads.Spec.kernel.Gpu_sim.Kernel.program in
  let plan = Transform.apply ~bs:20 ~es:12 prog in
  (plan.Transform.transformed, 20, 12)

let find_first pred p =
  let rec go i =
    if i >= Program.length p then None
    else if pred (Program.get p i) then Some i
    else go (i + 1)
  in
  go 0

let replace p idx instr =
  Program.map_instrs (fun i old -> if i = idx then instr else old) p

let checker_flags p =
  Checker.check ~bs ~es p <> []

let test_drop_acquire () =
  match find_first (fun i -> i = I.Acquire) transformed with
  | None -> Alcotest.fail "no acquire to drop"
  | Some idx ->
      (* Neutralise the acquire (a Bar would change semantics; use a
         harmless base-register move). *)
      let broken = replace transformed idx (I.Mov (0, I.Reg 0)) in
      Alcotest.(check bool) "checker flags dropped acquire" true (checker_flags broken)

let test_drop_release () =
  match find_first (fun i -> i = I.Release) transformed with
  | None -> Alcotest.fail "no release to drop"
  | Some idx ->
      let broken = replace transformed idx (I.Mov (0, I.Reg 0)) in
      (* Dropping a release is not a *safety* fault by itself (the set is
         merely held longer) unless a path now releases while high regs
         live; it must at minimum still pass or fail consistently — but
         swapping a release for an acquire at the same spot is flagged
         when a later release frees live extended registers... The strong
         guarantee we check: dropping the release never makes the checker
         accept an unsound program — simulate it and require identical
         stores (holding longer is legal). *)
      (match Checker.check ~bs ~es broken with
      | [] ->
          let base =
            Util.run_with ~grid:2 ~threads:64 ~params:[| 4; 4 |]
              (Gpu_sim.Policy.Srp { bs; es; verify = true })
              transformed
          in
          let held =
            Util.run_with ~grid:2 ~threads:64 ~params:[| 4; 4 |]
              (Gpu_sim.Policy.Srp { bs; es; verify = true })
              broken
          in
          Util.check_same_traces "longer hold is still correct"
            (Util.traces base) (Util.traces held)
      | _ :: _ -> ())

let test_swap_acquire_release () =
  match find_first (fun i -> i = I.Acquire) transformed with
  | None -> Alcotest.fail "no acquire"
  | Some idx ->
      let broken = replace transformed idx I.Release in
      Alcotest.(check bool) "checker flags swapped primitive" true (checker_flags broken)

let test_early_release () =
  (* Insert a release right after the first acquire: extended registers
     are then written with the set free. *)
  match find_first (fun i -> i = I.Acquire) transformed with
  | None -> Alcotest.fail "no acquire"
  | Some idx ->
      let broken = Program.insert_before transformed [ (idx + 1, [ I.Release ]) ] in
      Alcotest.(check bool) "checker flags early release" true (checker_flags broken)

let test_dynamic_verification_catches () =
  (* Strip every primitive: the checker flags it, and — independently —
     the simulator's dynamic verification must refuse to run it. *)
  let stripped =
    Program.map_instrs
      (fun _ i -> if i = I.Acquire || i = I.Release then I.Mov (0, I.Reg 0) else i)
      transformed
  in
  Alcotest.(check bool) "checker flags stripped program" true (checker_flags stripped);
  Alcotest.(check bool) "simulator verification trips" true
    (try
       ignore
         (Util.run_with ~grid:1 ~threads:64 ~params:[| 4; 4 |]
            (Gpu_sim.Policy.Srp { bs; es; verify = true })
            stripped);
       false
     with Gpu_sim.Sm.Verification_failure _ -> true)

let test_extra_primitives_harmless () =
  (* Idempotency end-to-end: doubling every primitive changes nothing. *)
  let doubled =
    let inserts = ref [] in
    for i = 0 to Program.length transformed - 1 do
      let instr = Program.get transformed i in
      if instr = I.Acquire || instr = I.Release then
        inserts := (i, [ instr ]) :: !inserts
    done;
    Program.insert_before transformed (List.rev !inserts)
  in
  Alcotest.(check (list string)) "checker accepts doubled primitives" []
    (List.map (fun v -> v.Checker.message) (Checker.check ~bs ~es doubled));
  let a =
    Util.run_with ~grid:2 ~threads:64 ~params:[| 4; 4 |]
      (Gpu_sim.Policy.Srp { bs; es; verify = true })
      transformed
  in
  let b =
    Util.run_with ~grid:2 ~threads:64 ~params:[| 4; 4 |]
      (Gpu_sim.Policy.Srp { bs; es; verify = true })
      doubled
  in
  Util.check_same_traces "doubled primitives" (Util.traces a) (Util.traces b)

let prop_mutations_caught =
  (* Randomly neutralise one primitive in random transformed kernels: the
     checker or the runtime must notice, or behaviour must be unchanged. *)
  Util.qtest ~count:30 "random primitive mutations never corrupt silently"
    QCheck2.Gen.(pair (Util.gen_structured ~n_regs:8) (int_bound 1000))
    (fun (prog, salt) ->
      let liveness = Gpu_analysis.Liveness.analyze prog in
      let peak = Gpu_analysis.Liveness.max_pressure liveness in
      let bs = max 1 (min (prog.Program.n_regs - 1) (peak - 1)) in
      let es = prog.Program.n_regs - bs in
      let plan = Transform.apply ~bs ~es prog in
      let t = plan.Transform.transformed in
      let prims =
        List.filter
          (fun i -> Program.get t i = I.Acquire || Program.get t i = I.Release)
          (List.init (Program.length t) (fun i -> i))
      in
      match prims with
      | [] -> true
      | _ :: _ -> (
          let idx = List.nth prims (salt mod List.length prims) in
          let broken = replace t idx (I.Mov (0, I.Reg 0)) in
          match Checker.check ~bs ~es broken with
          | _ :: _ -> true (* statically caught *)
          | [] -> (
              (* Statically clean: running it must be behaviourally
                 identical to the baseline (e.g. a redundant primitive). *)
              match
                Util.run_with (Gpu_sim.Policy.Srp { bs; es; verify = true }) broken
              with
              | stats ->
                  let base = Util.run_with (Util.static_policy prog) prog in
                  Util.traces base = Util.traces stats
              | exception Gpu_sim.Sm.Verification_failure _ -> true)))

let suite =
  [ Alcotest.test_case "dropped acquire caught" `Quick test_drop_acquire;
    Alcotest.test_case "dropped release safe or caught" `Quick test_drop_release;
    Alcotest.test_case "swapped primitive caught" `Quick test_swap_acquire_release;
    Alcotest.test_case "early release caught" `Quick test_early_release;
    Alcotest.test_case "dynamic verification backstop" `Quick
      test_dynamic_verification_catches;
    Alcotest.test_case "doubled primitives harmless" `Quick test_extra_primitives_harmless;
    prop_mutations_caught ]
