open Gpu_isa
module B = Builder
module I = Instr

let test_label_resolution () =
  let p =
    B.(assemble ~name:"t"
         [ mov 0 (imm 3);
           label "top";
           sub 0 (r 0) (imm 1);
           bnz (r 0) "top";
           exit_ ])
  in
  Alcotest.check Util.instr "bnz resolved" (I.Jump_if (I.Reg 0, 1)) (Program.get p 2)

let test_forward_label () =
  let p = B.(assemble ~name:"t" [ bra "end"; mov 0 (imm 1); label "end"; exit_ ]) in
  Alcotest.check Util.instr "forward" (I.Jump 2) (Program.get p 0)

let test_label_at_end () =
  (* A label binding to the index just past the last emitted instruction is
     only valid if something follows; with exit_ after it resolves fine. *)
  let p = B.(assemble ~name:"t" [ bz (imm 0) "done"; label "done"; exit_ ]) in
  Alcotest.check Util.instr "points at exit" (I.Jump_ifz (I.Imm 0, 1)) (Program.get p 0)

let test_unresolved () =
  Alcotest.check_raises "unresolved" (B.Unresolved_label "nowhere") (fun () ->
      ignore (B.assemble ~name:"t" [ B.bra "nowhere"; B.exit_ ]))

let test_duplicate () =
  Alcotest.check_raises "duplicate" (B.Duplicate_label "x") (fun () ->
      ignore (B.assemble ~name:"t" [ B.label "x"; B.mov 0 (B.imm 1); B.label "x"; B.exit_ ]))

let test_operand_helpers () =
  Alcotest.(check bool) "r" true (B.r 4 = I.Reg 4);
  Alcotest.(check bool) "imm" true (B.imm 7 = I.Imm 7);
  Alcotest.(check bool) "tid" true (B.tid = I.Special I.Tid);
  Alcotest.(check bool) "ctaid" true (B.ctaid = I.Special I.Ctaid);
  Alcotest.(check bool) "ntid" true (B.ntid = I.Special I.Ntid);
  Alcotest.(check bool) "nctaid" true (B.nctaid = I.Special I.Nctaid);
  Alcotest.(check bool) "warp_id" true (B.warp_id = I.Special I.Warp_id);
  Alcotest.(check bool) "param" true (B.param 2 = I.Param 2)

let test_emitters () =
  let p =
    B.(assemble ~name:"t"
         [ add 0 (imm 1) (imm 2); min_ 1 (r 0) (imm 5); load ~ofs:8 I.Shared 2 (r 0);
           store I.Global (r 0) (r 2); mad 3 (r 0) (r 1) (r 2); sel 4 (r 3) (r 0) (r 1);
           un I.Abs 5 (r 4); cmp I.Ge 6 (r 5) (imm 0); bar; acquire; release; exit_ ])
  in
  Alcotest.check Util.instr "load with offset" (I.Load (I.Shared, 2, I.Reg 0, 8))
    (Program.get p 2);
  Alcotest.check Util.instr "bar" I.Bar (Program.get p 8);
  Alcotest.(check int) "all emitted" 12 (Program.length p)

let test_counted_loop_zero_safe () =
  (* The Shape loop must execute its body zero times for trips = 0. *)
  let p =
    B.(assemble ~name:"t"
         (Workloads.Shape.counted_loop ~ctr:0 ~trips:(imm 0) ~name:"l"
            [ store ~ofs:0x10000000 I.Global (imm 1) (imm 42) ]
         @ [ exit_ ]))
  in
  let stats = Util.run_with ~grid:1 ~threads:32 (Util.static_policy p) p in
  Alcotest.(check int) "no store executed" 0 (List.length (Util.traces stats))

let suite =
  [ Alcotest.test_case "backward label" `Quick test_label_resolution;
    Alcotest.test_case "forward label" `Quick test_forward_label;
    Alcotest.test_case "label at end" `Quick test_label_at_end;
    Alcotest.test_case "unresolved label" `Quick test_unresolved;
    Alcotest.test_case "duplicate label" `Quick test_duplicate;
    Alcotest.test_case "operand helpers" `Quick test_operand_helpers;
    Alcotest.test_case "all emitters" `Quick test_emitters;
    Alcotest.test_case "counted loop zero-safe" `Quick test_counted_loop_zero_safe ]
