test/test_transform.ml: Alcotest Gpu_analysis Gpu_isa Gpu_sim List Regmutex Transform Util Workloads
