test/test_workloads.ml: Alcotest Gpu_analysis Gpu_isa Gpu_sim Gpu_uarch List Util Workloads
