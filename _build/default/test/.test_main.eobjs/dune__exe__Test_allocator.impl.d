test/test_allocator.ml: Alcotest Allocator Array Gpu_analysis Gpu_isa Gpu_sim List Printf Util Workloads
