test/test_kernel.ml: Alcotest Gpu_isa Gpu_sim Gpu_uarch Kernel Policy Util Workloads
