test/test_loops.ml: Alcotest Array Cfg Gpu_analysis Gpu_isa Gpu_sim List Liveness Loops Util Workloads
