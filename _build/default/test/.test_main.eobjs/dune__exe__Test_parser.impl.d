test/test_parser.ml: Alcotest Format Gpu_isa Gpu_sim Instr List Parser Program Util Workloads
