test/test_checker.ml: Alcotest Array Checker Gpu_isa Gpu_sim List Regmutex String Transform Workloads
