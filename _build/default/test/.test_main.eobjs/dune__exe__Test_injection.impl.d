test/test_injection.ml: Alcotest Checker Gpu_analysis Gpu_isa Gpu_sim Injection List Regmutex Util Workloads
