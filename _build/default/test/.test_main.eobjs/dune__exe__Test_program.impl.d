test/test_program.ml: Alcotest Array Gpu_isa Instr Program Util
