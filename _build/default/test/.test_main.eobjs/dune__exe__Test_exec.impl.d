test/test_exec.ml: Alcotest Array Exec Gpu_isa Gpu_sim Hashtbl
