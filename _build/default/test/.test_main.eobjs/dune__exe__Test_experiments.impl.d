test/test_experiments.ml: Alcotest Array Experiments Gpu_sim Gpu_uarch List Regmutex String Workloads
