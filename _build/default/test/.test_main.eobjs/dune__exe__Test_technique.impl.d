test/test_technique.ml: Alcotest Array Gpu_isa Gpu_sim Gpu_uarch List Regmutex Workloads
