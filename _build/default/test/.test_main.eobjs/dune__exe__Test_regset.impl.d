test/test_regset.ml: Alcotest Format Gpu_isa QCheck2 Regset Util
