test/util.ml: Alcotest Builder Gpu_isa Gpu_sim Gpu_uarch Instr List Printf Program QCheck2 QCheck_alcotest Regset Workloads
