test/test_equivalence.ml: Alcotest Gpu_analysis Gpu_isa Gpu_sim Gpu_uarch List Printf Regmutex Util Workloads
