test/test_policies.ml: Alcotest Array Gpu Gpu_analysis Gpu_isa Gpu_sim Gpu_uarch Kernel Policy Sm Stats Util Workloads
