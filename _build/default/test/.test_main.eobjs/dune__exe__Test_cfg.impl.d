test/test_cfg.ml: Alcotest Array Cfg Gpu_analysis Gpu_isa List Util
