test/test_reg_mapping.ml: Alcotest Gpu_uarch QCheck2 Reg_mapping Util
