test/test_liveness.ml: Alcotest Array Cfg Gpu_analysis Gpu_isa List Liveness Util
