test/test_dominance.ml: Alcotest Cfg Dominance Gpu_analysis Gpu_isa Util
