test/test_srp.ml: Alcotest Gpu_uarch List QCheck2 Srp Srp_paired Util
