test/test_mutation.ml: Alcotest Checker Gpu_analysis Gpu_isa Gpu_sim List QCheck2 Regmutex Transform Util Workloads
