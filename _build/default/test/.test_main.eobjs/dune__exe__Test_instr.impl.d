test/test_instr.ml: Alcotest Gpu_isa Instr List Regset Util
