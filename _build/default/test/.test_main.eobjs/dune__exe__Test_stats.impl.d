test/test_stats.ml: Alcotest Format Gpu_isa Gpu_sim List Stats String
