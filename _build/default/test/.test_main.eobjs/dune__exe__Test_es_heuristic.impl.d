test/test_es_heuristic.ml: Alcotest Es_heuristic Gpu_uarch List QCheck2 Regmutex Util
