test/test_bitmask.ml: Alcotest Bitmask Format Gpu_uarch List QCheck2 Util
