test/test_codec.ml: Alcotest Array Codec Gpu_isa Gpu_sim Instr Int64 List Program Util Workloads
