test/test_sim.ml: Alcotest Gpu Gpu_isa Gpu_sim Gpu_uarch Kernel List Policy Printf Stats Util Workloads
