test/test_storage.ml: Alcotest Arch_config Gpu_uarch List Storage_cost
