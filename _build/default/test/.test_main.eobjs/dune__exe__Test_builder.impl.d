test/test_builder.ml: Alcotest Builder Gpu_isa Instr List Program Util Workloads
