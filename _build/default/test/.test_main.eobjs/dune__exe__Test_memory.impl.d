test/test_memory.ml: Alcotest Gpu_sim Gpu_uarch Mem_system Memory Util
