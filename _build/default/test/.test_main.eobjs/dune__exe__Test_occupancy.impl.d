test/test_occupancy.ml: Alcotest Arch_config Gpu_uarch Occupancy QCheck2 Util
