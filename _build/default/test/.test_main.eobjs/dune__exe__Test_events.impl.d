test/test_events.ml: Alcotest Event_trace Format Gpu Gpu_isa Gpu_sim Kernel List Policy String Util Workloads
