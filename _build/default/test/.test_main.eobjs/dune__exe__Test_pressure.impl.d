test/test_pressure.ml: Alcotest Array Gpu_analysis Gpu_isa Liveness Pressure String Util
