test/test_scheduler.ml: Alcotest Array Gpu_isa Gpu_sim Gpu_uarch List Scheduler Util Warp
