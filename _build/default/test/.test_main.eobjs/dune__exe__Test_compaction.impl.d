test/test_compaction.ml: Alcotest Array Compaction Gpu_analysis Gpu_isa Gpu_sim QCheck2 Regmutex Util
