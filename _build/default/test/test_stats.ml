open Gpu_sim
module I = Gpu_isa.Instr

let test_derived_metrics () =
  let s = Stats.create () in
  s.Stats.cycles <- 100;
  s.Stats.instructions <- 250;
  Alcotest.(check (float 1e-9)) "ipc" 2.5 (Stats.ipc s);
  s.Stats.resident_warp_cycles <- 300;
  s.Stats.warp_capacity_cycles <- 400;
  Alcotest.(check (float 1e-9)) "occupancy" 0.75 (Stats.achieved_occupancy s);
  let empty = Stats.create () in
  Alcotest.(check (float 1e-9)) "ipc of empty run" 0. (Stats.ipc empty);
  Alcotest.(check (float 1e-9)) "occupancy of empty run" 0.
    (Stats.achieved_occupancy empty)

let test_acquire_ratio () =
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "no acquires -> 1.0" 1. (Stats.acquire_success_ratio s);
  s.Stats.acquire_execs <- 10;
  s.Stats.acquire_first_try <- 7;
  Alcotest.(check (float 1e-9)) "7/10" 0.7 (Stats.acquire_success_ratio s)

let test_stall_counters () =
  let s = Stats.create () in
  Stats.bump_stall s Stats.Stall_deps;
  Stats.bump_stall s Stats.Stall_deps;
  Stats.bump_stall s Stats.Stall_acquire;
  Alcotest.(check int) "deps" 2 (Stats.stall_count s Stats.Stall_deps);
  Alcotest.(check int) "acquire" 1 (Stats.stall_count s Stats.Stall_acquire);
  Alcotest.(check int) "untouched" 0 (Stats.stall_count s Stats.Stall_regs)

let test_store_traces () =
  let s = Stats.create () in
  Stats.record_store s ~cta:1 ~warp:0 I.Global 10 100;
  Stats.record_store s ~cta:0 ~warp:1 I.Shared 5 50;
  Stats.record_store s ~cta:1 ~warp:0 I.Global 11 101;
  let traces = Stats.store_traces s in
  Alcotest.(check int) "two warps" 2 (List.length traces);
  (match traces with
  | [ ((0, 1), [ (I.Shared, 5, 50) ]); ((1, 0), t) ] ->
      Alcotest.(check int) "issue order preserved" 2 (List.length t);
      Alcotest.(check bool) "ordered" true
        (t = [ (I.Global, 10, 100); (I.Global, 11, 101) ])
  | _ -> Alcotest.fail "unexpected trace structure")

let test_pc_trace () =
  let s = Stats.create () in
  s.Stats.pc_trace <- [ 3; 2; 1 ];
  Alcotest.(check (array int)) "oldest first" [| 1; 2; 3 |] (Stats.trace s)

let test_warp_instruction_counts () =
  let s = Stats.create () in
  Stats.record_warp_done s ~cta:1 ~warp:1 ~instructions:50;
  Stats.record_warp_done s ~cta:0 ~warp:0 ~instructions:40;
  Alcotest.(check (list (pair (pair int int) int))) "sorted"
    [ ((0, 0), 40); ((1, 1), 50) ]
    (Stats.warp_instruction_counts s)

let test_pp_smoke () =
  let s = Stats.create () in
  s.Stats.cycles <- 10;
  Stats.bump_stall s Stats.Stall_barrier;
  let out = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "mentions cycles" true (String.length out > 0)

let suite =
  [ Alcotest.test_case "derived metrics" `Quick test_derived_metrics;
    Alcotest.test_case "acquire ratio" `Quick test_acquire_ratio;
    Alcotest.test_case "stall counters" `Quick test_stall_counters;
    Alcotest.test_case "store traces" `Quick test_store_traces;
    Alcotest.test_case "pc trace" `Quick test_pc_trace;
    Alcotest.test_case "per-warp counts" `Quick test_warp_instruction_counts;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke ]
