open Gpu_isa
module I = Instr

let make body = Program.create ~name:"t" (Array.of_list body)

let test_create_valid () =
  let p = make [ I.Mov (0, I.Imm 1); I.Exit ] in
  Alcotest.(check int) "length" 2 (Program.length p);
  Alcotest.(check int) "n_regs" 1 p.Program.n_regs;
  Alcotest.check Util.instr "get" (I.Mov (0, I.Imm 1)) (Program.get p 0)

let expect_invalid name body =
  match make body with
  | _ -> Alcotest.failf "%s: expected Program.Invalid" name
  | exception Program.Invalid _ -> ()

let test_validation () =
  expect_invalid "empty" [];
  expect_invalid "no exit" [ I.Mov (0, I.Imm 1); I.Jump 0 ];
  expect_invalid "falls through end" [ I.Exit; I.Mov (0, I.Imm 1) ];
  expect_invalid "bad target" [ I.Jump 5; I.Exit ];
  expect_invalid "negative target" [ I.Jump (-1); I.Exit ]

let test_n_regs () =
  let p = make [ I.Bin (I.Add, 7, I.Reg 3, I.Imm 1); I.Exit ] in
  Alcotest.(check int) "n_regs from max index" 8 p.Program.n_regs

let test_insert_before_simple () =
  let p = make [ I.Mov (0, I.Imm 1); I.Mov (1, I.Imm 2); I.Exit ] in
  let p' = Program.insert_before p [ (1, [ I.Acquire ]) ] in
  Alcotest.(check int) "one longer" 4 (Program.length p');
  Alcotest.check Util.instr "inserted at 1" I.Acquire (Program.get p' 1);
  Alcotest.check Util.instr "shifted" (I.Mov (1, I.Imm 2)) (Program.get p' 2)

let test_insert_retargets_branches () =
  (* Loop: 0: mov; 1: sub; 2: jump_if -> 1; 3: exit. Inserting before 1
     must retarget the branch onto the inserted instruction. *)
  let p =
    make
      [ I.Mov (0, I.Imm 3);
        I.Bin (I.Sub, 0, I.Reg 0, I.Imm 1);
        I.Jump_if (I.Reg 0, 1);
        I.Exit ]
  in
  let p' = Program.insert_before p [ (1, [ I.Acquire ]) ] in
  Alcotest.check Util.instr "branch lands on insert" (I.Jump_if (I.Reg 0, 1))
    (Program.get p' 3);
  Alcotest.check Util.instr "insert at 1" I.Acquire (Program.get p' 1)

let test_insert_multiple () =
  let p = make [ I.Mov (0, I.Imm 1); I.Jump 0; I.Exit ] in
  let p' =
    Program.insert_before p [ (0, [ I.Acquire ]); (1, [ I.Release ]); (2, [ I.Bar ]) ]
  in
  Alcotest.(check int) "length" 6 (Program.length p');
  (* Jump to 0 must land on the acquire at new index 0. *)
  Alcotest.check Util.instr "retarget to 0" (I.Jump 0) (Program.get p' 3);
  Alcotest.check Util.instr "order" I.Release (Program.get p' 2);
  Alcotest.check Util.instr "before exit" I.Bar (Program.get p' 4)

let test_insert_append () =
  let p = make [ I.Jump 1; I.Exit ] in
  let p' = Program.insert_before p [ (2, [ I.Exit ]) ] in
  Alcotest.(check int) "appended" 3 (Program.length p');
  Alcotest.check Util.instr "tail" I.Exit (Program.get p' 2)

let test_insert_same_index_order () =
  let p = make [ I.Exit ] in
  let p' = Program.insert_before p [ (0, [ I.Acquire ]); (0, [ I.Release ]) ] in
  Alcotest.check Util.instr "first" I.Acquire (Program.get p' 0);
  Alcotest.check Util.instr "second" I.Release (Program.get p' 1)

let test_map_instrs () =
  let p = make [ I.Mov (0, I.Imm 1); I.Exit ] in
  let p' = Program.map_instrs (fun _ i -> I.map_regs (fun r -> r + 1) i) p in
  Alcotest.check Util.instr "renamed" (I.Mov (1, I.Imm 1)) (Program.get p' 0)

let test_count_equal () =
  let p = make [ I.Acquire; I.Release; I.Acquire; I.Exit ] in
  Alcotest.(check int) "count acquires" 2 (Program.count (fun i -> i = I.Acquire) p);
  Alcotest.(check bool) "equal self" true (Program.equal p p);
  let q = make [ I.Acquire; I.Release; I.Release; I.Exit ] in
  Alcotest.(check bool) "not equal" false (Program.equal p q)

(* Property: insertion never changes the simulated store trace (the
   inserted no-ops are Acquire/Release under a Static policy). *)
let prop_insert_preserves_semantics =
  Util.qtest ~count:40 "insert_before preserves behaviour"
    (Util.gen_structured ~n_regs:6)
    (fun prog ->
      let n = Program.length prog in
      let mid = n / 2 in
      let prog' = Program.insert_before prog [ (mid, [ I.Acquire; I.Release ]) ] in
      let s1 = Util.run_with (Util.static_policy prog) prog in
      let s2 = Util.run_with (Util.static_policy prog') prog' in
      Util.traces s1 = Util.traces s2)

let suite =
  [ Alcotest.test_case "create valid" `Quick test_create_valid;
    Alcotest.test_case "validation rules" `Quick test_validation;
    Alcotest.test_case "n_regs" `Quick test_n_regs;
    Alcotest.test_case "insert simple" `Quick test_insert_before_simple;
    Alcotest.test_case "insert retargets branches" `Quick test_insert_retargets_branches;
    Alcotest.test_case "insert multiple" `Quick test_insert_multiple;
    Alcotest.test_case "insert append" `Quick test_insert_append;
    Alcotest.test_case "insert stable order" `Quick test_insert_same_index_order;
    Alcotest.test_case "map_instrs" `Quick test_map_instrs;
    Alcotest.test_case "count / equal" `Quick test_count_equal;
    prop_insert_preserves_semantics ]
