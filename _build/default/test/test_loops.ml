open Gpu_analysis

let analyze prog = Loops.analyze (Cfg.of_program prog)

let test_straight_no_loops () =
  let t = analyze Util.straight in
  Alcotest.(check (list int)) "no headers" [] (Loops.headers t);
  Alcotest.(check int) "depth 0" 0 (Loops.depth t 0)

let test_single_loop () =
  (* Util.loop blocks: 0 preheader, 1 header, 2 body, 3 exit. *)
  let t = analyze Util.loop in
  Alcotest.(check (list int)) "one header" [ 1 ] (Loops.headers t);
  match Loops.loops t with
  | [ l ] ->
      Alcotest.(check (list int)) "body" [ 1; 2 ] l.Loops.body;
      Alcotest.(check (list int)) "back edge from body" [ 2 ] l.Loops.back_sources;
      Alcotest.(check int) "header depth" 1 (Loops.depth t 1);
      Alcotest.(check int) "preheader depth" 0 (Loops.depth t 0);
      Alcotest.(check int) "exit depth" 0 (Loops.depth t 3);
      Alcotest.(check bool) "contains body" true (Loops.contains l 2);
      Alcotest.(check bool) "not exit" false (Loops.contains l 3)
  | _ -> Alcotest.fail "expected exactly one loop"

let nested =
  Gpu_isa.Builder.(
    assemble ~name:"nested"
      ([ mov 0 (imm 0) ]
      @ Workloads.Shape.counted_loop ~ctr:1 ~trips:(imm 3) ~name:"outer"
          (Workloads.Shape.counted_loop ~ctr:2 ~trips:(imm 2) ~name:"inner"
             [ add 0 (r 0) (imm 1) ])
      @ [ store Gpu_isa.Instr.Global (imm 64) (r 0); exit_ ]))

let test_nested_loops () =
  let t = analyze nested in
  Alcotest.(check int) "two loops" 2 (List.length (Loops.loops t));
  (* The inner loop body sits at depth 2, the outer-only parts at 1. *)
  let max_depth =
    List.fold_left max 0
      (List.init (Cfg.n_blocks (Cfg.of_program nested)) (Loops.depth t))
  in
  Alcotest.(check int) "max depth 2" 2 max_depth;
  (* Innermost query: a depth-2 block's innermost loop is the smaller one. *)
  let cfg = Cfg.of_program nested in
  let deep_block =
    let rec find b = if Loops.depth t b = 2 then b else find (b + 1) in
    find 0
  in
  match Loops.innermost t deep_block with
  | Some inner ->
      let outer =
        List.find (fun l -> l.Loops.header <> inner.Loops.header) (Loops.loops t)
      in
      Alcotest.(check bool) "inner smaller than outer" true
        (List.length inner.Loops.body < List.length outer.Loops.body);
      Alcotest.(check bool) "outer contains inner header" true
        (Loops.contains outer inner.Loops.header);
      ignore cfg
  | None -> Alcotest.fail "expected an innermost loop"

let test_workload_loop_shapes () =
  (* LavaMD and RadixSort have two nested loop levels; Gaussian one. *)
  let depth_of name =
    let prog = (Workloads.Registry.find name).Workloads.Spec.kernel.Gpu_sim.Kernel.program in
    let cfg = Cfg.of_program prog in
    let t = Loops.analyze cfg in
    List.fold_left max 0 (List.init (Cfg.n_blocks cfg) (Loops.depth t))
  in
  Alcotest.(check int) "LavaMD nests two deep" 2 (depth_of "LavaMD");
  Alcotest.(check int) "RadixSort nests two deep" 2 (depth_of "RadixSort");
  Alcotest.(check int) "Gaussian single level" 1 (depth_of "Gaussian")

let test_pressure_concentrates_in_loops () =
  (* The §II observation the workloads are built around: peak register
     pressure lives inside the (innermost) loops. *)
  let prog = (Workloads.Registry.find "BFS").Workloads.Spec.kernel.Gpu_sim.Kernel.program in
  let cfg = Cfg.of_program prog in
  let t = Loops.analyze cfg in
  let liveness = Liveness.analyze prog in
  let peak = Liveness.max_pressure liveness in
  let peak_instr =
    let rec find i = if Liveness.pressure_at liveness i = peak then i else find (i + 1) in
    find 0
  in
  let peak_block = cfg.Cfg.block_of_instr.(peak_instr) in
  Alcotest.(check bool) "peak pressure inside a loop" true (Loops.depth t peak_block >= 1)

let suite =
  [ Alcotest.test_case "straight line" `Quick test_straight_no_loops;
    Alcotest.test_case "single loop" `Quick test_single_loop;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "workload loop shapes" `Quick test_workload_loop_shapes;
    Alcotest.test_case "pressure concentrates in loops" `Quick
      test_pressure_concentrates_in_loops ]
