(* Policy enforcement inside the SM: SRP acquire/stall, dynamic
   verification, paired pairs, OWF one-time acquire, RFV register
   starvation. *)

open Gpu_sim
module B = Gpu_isa.Builder
module I = Gpu_isa.Instr

(* A well-formed RegMutex kernel: base regs r0..r2, extended r3..r4. *)
let srp_kernel =
  B.(
    assemble ~name:"srp"
      ([ mul 0 ctaid ntid;
         add 0 (r 0) tid;
         mov 1 (imm 0) ]
      @ Workloads.Shape.counted_loop ~ctr:2 ~trips:(imm 3) ~name:"l"
          [ acquire;
            add 3 (r 0) (imm 1);
            add 4 (r 3) (r 1);
            add 1 (r 3) (r 4);
            release ]
      @ [ store ~ofs:0x10000000 I.Global (r 0) (r 1); exit_ ]))

let test_srp_runs_and_counts () =
  let stats =
    Util.run_with ~grid:2 ~threads:64
      (Policy.Srp { bs = 3; es = 2; verify = true })
      srp_kernel
  in
  Alcotest.(check bool) "completed" false stats.Stats.timed_out;
  (* 4 warps x 3 iterations. *)
  Alcotest.(check int) "acquires executed" 12 stats.Stats.acquire_execs;
  Alcotest.(check int) "releases executed" 12 stats.Stats.release_execs

let test_srp_verification_failure () =
  (* Extended access without acquire must trip dynamic verification. *)
  let bad =
    B.(
      assemble ~name:"bad"
        [ mov 0 (imm 1); add 3 (r 0) (imm 1);
          store ~ofs:0x10000000 I.Global (r 0) (r 3); exit_ ])
  in
  Alcotest.(check bool) "verification failure raised" true
    (try
       ignore
         (Util.run_with ~grid:1 ~threads:32
            (Policy.Srp { bs = 3; es = 2; verify = true })
            bad);
       false
     with Sm.Verification_failure _ -> true)

let test_srp_out_of_range () =
  let bad =
    B.(
      assemble ~name:"bad2"
        [ acquire; mov 9 (imm 1); store ~ofs:0x10000000 I.Global (imm 0) (r 9);
          release; exit_ ])
  in
  Alcotest.(check bool) "out-of-range access raises" true
    (try
       ignore
         (Util.run_with ~grid:1 ~threads:32
            (Policy.Srp { bs = 3; es = 2; verify = true })
            bad);
       false
     with Sm.Verification_failure _ -> true)

let test_srp_contention_counted () =
  (* One section for many warps with long-held sets: stalls must appear and
     every warp must still finish. The section count is forced by an SM
     whose register file leaves room for exactly one extended set:
     6 warps x 3 base + 1 x 2 ext = 20 packs. *)
  let arch =
    { Util.small_arch with
      Gpu_uarch.Arch_config.regfile_regs = 20 * 32;
      max_warps = 6;
      max_threads = 192;
      max_ctas = 6 }
  in
  let hold_kernel =
    B.(
      assemble ~name:"hold"
        ([ mul 0 ctaid ntid; add 0 (r 0) tid; mov 1 (imm 0) ]
        @ Workloads.Shape.counted_loop ~ctr:2 ~trips:(imm 2) ~name:"l"
            [ acquire;
              add 3 (r 0) (imm 1);
              mul 4 (r 3) (r 3);
              mul 4 (r 4) (r 3);
              mul 4 (r 4) (r 3);
              add 1 (r 4) (r 1);
              release ]
        @ [ store ~ofs:0x10000000 I.Global (r 0) (r 1); exit_ ]))
  in
  let kernel = Kernel.make ~name:"hold" ~grid_ctas:6 ~cta_threads:32 hold_kernel in
  let config =
    { (Gpu.default_config arch (Policy.Srp { bs = 3; es = 2; verify = true })) with
      Gpu.record_stores = true }
  in
  Alcotest.(check int) "exactly one section" 1 (Gpu.srp_sections_of config kernel);
  let stats = Gpu.run config kernel in
  Alcotest.(check bool) "finished" false stats.Stats.timed_out;
  Alcotest.(check int) "all acquires eventually succeed" 12 stats.Stats.acquire_execs;
  Alcotest.(check bool) "some acquires had to wait" true
    (stats.Stats.acquire_first_try < stats.Stats.acquire_execs)

let test_paired_policy () =
  let stats =
    Util.run_with ~grid:2 ~threads:64
      (Policy.Srp_paired { bs = 3; es = 2; verify = true })
      srp_kernel
  in
  Alcotest.(check bool) "completed" false stats.Stats.timed_out;
  Alcotest.(check int) "acquires" 12 stats.Stats.acquire_execs

let test_paired_odd_warps_rejected () =
  let kernel = Kernel.make ~name:"odd" ~grid_ctas:1 ~cta_threads:96 srp_kernel in
  Alcotest.(check bool) "odd warps/CTA rejected" true
    (try
       ignore
         (Gpu.run
            (Gpu.default_config Util.small_arch
               (Policy.Srp_paired { bs = 3; es = 2; verify = true }))
            kernel);
       false
     with Invalid_argument _ -> true)

(* OWF: the plain kernel (no primitives); hardware traps accesses >= bs. *)
let owf_kernel =
  B.(
    assemble ~name:"owf"
      ([ mul 0 ctaid ntid; add 0 (r 0) tid; mov 1 (imm 0) ]
      @ Workloads.Shape.counted_loop ~ctr:2 ~trips:(imm 3) ~name:"l"
          [ add 3 (r 0) (imm 1); add 4 (r 3) (r 1); add 1 (r 3) (r 4) ]
      @ [ store ~ofs:0x10000000 I.Global (r 0) (r 1); exit_ ]))

let test_owf_policy () =
  let stats =
    Util.run_with ~grid:2 ~threads:64 (Policy.Owf { bs = 3; es = 2 }) owf_kernel
  in
  Alcotest.(check bool) "completed" false stats.Stats.timed_out;
  (* One silent acquire per warp (ownership kept until exit). *)
  Alcotest.(check int) "one acquire per warp" 4 stats.Stats.acquire_execs;
  Alcotest.(check int) "never released in-kernel" 0 stats.Stats.release_execs;
  (* The behaviour matches the baseline exactly. *)
  let baseline = Util.run_with ~grid:2 ~threads:64 (Util.static_policy owf_kernel) owf_kernel in
  Util.check_same_traces "owf behaviour" (Util.traces baseline) (Util.traces stats)

let test_rfv_policy () =
  let prog = owf_kernel in
  let liveness = Gpu_analysis.Liveness.analyze prog in
  let live = Gpu_analysis.Liveness.profile liveness in
  let stats =
    Util.run_with ~grid:2 ~threads:64
      (Policy.Rfv { live; max_live = Gpu_analysis.Liveness.max_pressure liveness })
      prog
  in
  Alcotest.(check bool) "completed" false stats.Stats.timed_out;
  let baseline = Util.run_with ~grid:2 ~threads:64 (Util.static_policy prog) prog in
  Util.check_same_traces "rfv behaviour" (Util.traces baseline) (Util.traces stats)

let test_rfv_starved_still_completes () =
  (* A register file with room for very few live registers forces stalls;
     the oldest-ready override guarantees forward progress. *)
  let arch =
    { Util.small_arch with
      Gpu_uarch.Arch_config.regfile_regs = 8 * 32;
      max_warps = 4;
      max_threads = 128;
      max_ctas = 2 }
  in
  let prog = owf_kernel in
  let live = Gpu_analysis.Liveness.profile (Gpu_analysis.Liveness.analyze prog) in
  let stats =
    Util.run_with ~arch ~grid:2 ~threads:64 (Policy.Rfv { live; max_live = 5 }) prog
  in
  Alcotest.(check bool) "completed under starvation" false stats.Stats.timed_out;
  Alcotest.(check bool) "register stalls recorded" true
    (Stats.stall_count stats Stats.Stall_regs > 0)

let test_rfv_admits_beyond_static_limit () =
  (* RFV ignores static register demand at admission. *)
  let kernel = Kernel.make ~name:"t" ~grid_ctas:1 ~cta_threads:256 owf_kernel in
  let arch = Gpu_uarch.Arch_config.gtx480 in
  let live = Array.make (Gpu_isa.Program.length owf_kernel) 1 in
  let static_cfg = Gpu.default_config arch (Policy.Static { regs_per_thread = 60 }) in
  let rfv_cfg = Gpu.default_config arch (Policy.Rfv { live; max_live = 5 }) in
  Alcotest.(check int) "static limited" (2 * 8) (Gpu.theoretical_warps static_cfg kernel);
  Alcotest.(check int) "rfv thread-limited" 48 (Gpu.theoretical_warps rfv_cfg kernel)

let suite =
  [ Alcotest.test_case "SRP: runs and counts" `Quick test_srp_runs_and_counts;
    Alcotest.test_case "SRP: verification failure" `Quick test_srp_verification_failure;
    Alcotest.test_case "SRP: out-of-range access" `Quick test_srp_out_of_range;
    Alcotest.test_case "SRP: contention" `Quick test_srp_contention_counted;
    Alcotest.test_case "paired: runs" `Quick test_paired_policy;
    Alcotest.test_case "paired: odd warps rejected" `Quick test_paired_odd_warps_rejected;
    Alcotest.test_case "OWF: one-time acquire" `Quick test_owf_policy;
    Alcotest.test_case "RFV: matches baseline" `Quick test_rfv_policy;
    Alcotest.test_case "RFV: starvation progress" `Quick test_rfv_starved_still_completes;
    Alcotest.test_case "RFV: admission beyond static limit" `Quick
      test_rfv_admits_beyond_static_limit ]
