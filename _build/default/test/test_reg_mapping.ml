open Gpu_uarch
module M = Reg_mapping

let cfg = { M.bs = 18; es = 6; srp_offset = 48 * 18 }

let test_baseline () =
  Alcotest.(check int) "warp 0" 5 (M.baseline ~coeff:24 ~widx:0 ~x:5);
  Alcotest.(check int) "warp 3" (3 * 24 + 5) (M.baseline ~coeff:24 ~widx:3 ~x:5)

let test_base_segment () =
  (match M.regmutex cfg ~widx:2 ~section:None ~x:10 with
  | Ok y -> Alcotest.(check int) "base mapping" ((2 * 18) + 10) y
  | Error _ -> Alcotest.fail "base access needs no section");
  (* Base accesses are independent of any held section. *)
  match M.regmutex cfg ~widx:2 ~section:(Some 4) ~x:10 with
  | Ok y -> Alcotest.(check int) "same with section" ((2 * 18) + 10) y
  | Error _ -> Alcotest.fail "unexpected error"

let test_extended_segment () =
  match M.regmutex cfg ~widx:7 ~section:(Some 3) ~x:20 with
  | Ok y -> Alcotest.(check int) "srp mapping" (cfg.M.srp_offset + (3 * 6) + 2) y
  | Error _ -> Alcotest.fail "extended access with section"

let test_errors () =
  (match M.regmutex cfg ~widx:0 ~section:None ~x:20 with
  | Error M.Extended_not_acquired -> ()
  | _ -> Alcotest.fail "extended access without section must fault");
  (match M.regmutex cfg ~widx:0 ~section:(Some 0) ~x:24 with
  | Error M.Out_of_range -> ()
  | _ -> Alcotest.fail "x >= bs+es must fault");
  match M.regmutex cfg ~widx:0 ~section:(Some 0) ~x:(-1) with
  | Error M.Out_of_range -> ()
  | _ -> Alcotest.fail "negative index must fault"

let test_srp_offset () =
  Alcotest.(check int) "offset after base sets" (48 * 18)
    (M.srp_offset_for ~bs:18 ~resident_warps:48)

(* Injectivity: distinct (warp, section, x) triples never map to the same
   physical pack, provided warps hold distinct sections. *)
let prop_injective =
  let gen =
    QCheck2.Gen.(
      let* w1 = int_bound 47 and* w2 = int_bound 47 in
      let* x1 = int_bound 23 and* x2 = int_bound 23 in
      return ((w1, x1), (w2, x2)))
  in
  Util.qtest "mapping is injective across warps" gen
    (fun ((w1, x1), (w2, x2)) ->
      (* Warp w holds section w (distinct sections). *)
      let map (w, x) = M.regmutex cfg ~widx:w ~section:(Some w) ~x in
      match (map (w1, x1), map (w2, x2)) with
      | Ok y1, Ok y2 -> ((w1, x1) = (w2, x2)) = (y1 = y2)
      | _ -> false)

let prop_segments_disjoint =
  let gen = QCheck2.Gen.(pair (int_bound 47) (int_bound 23)) in
  Util.qtest "base and SRP segments never collide" gen (fun (w, x) ->
      match M.regmutex cfg ~widx:w ~section:(Some (w mod 6)) ~x with
      | Ok y -> if x < cfg.M.bs then y < cfg.M.srp_offset else y >= cfg.M.srp_offset
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "baseline Y = X + coeff*widx" `Quick test_baseline;
    Alcotest.test_case "base segment" `Quick test_base_segment;
    Alcotest.test_case "extended segment" `Quick test_extended_segment;
    Alcotest.test_case "fault conditions" `Quick test_errors;
    Alcotest.test_case "srp offset" `Quick test_srp_offset;
    prop_injective;
    prop_segments_disjoint ]
