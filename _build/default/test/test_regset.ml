open Gpu_isa

let check_set = Alcotest.check Util.regset

let test_empty () =
  Alcotest.(check bool) "empty has no members" true (Regset.is_empty Regset.empty);
  Alcotest.(check int) "cardinal 0" 0 (Regset.cardinal Regset.empty);
  Alcotest.(check (list int)) "to_list" [] (Regset.to_list Regset.empty)

let test_add_remove () =
  let s = Regset.of_list [ 3; 0; 7 ] in
  Alcotest.(check (list int)) "sorted members" [ 0; 3; 7 ] (Regset.to_list s);
  Alcotest.(check bool) "mem 3" true (Regset.mem 3 s);
  Alcotest.(check bool) "not mem 4" false (Regset.mem 4 s);
  check_set "remove" (Regset.of_list [ 0; 7 ]) (Regset.remove 3 s);
  check_set "remove absent is id" s (Regset.remove 12 s);
  check_set "add present is id" s (Regset.add 7 s)

let test_bounds () =
  Alcotest.check_raises "negative index" (Invalid_argument
    "Regset: register index -1 out of [0, 61]") (fun () ->
      ignore (Regset.add (-1) Regset.empty));
  Alcotest.check_raises "index 62" (Invalid_argument
    "Regset: register index 62 out of [0, 61]") (fun () ->
      ignore (Regset.singleton 62));
  (* The maximum index is representable. *)
  Alcotest.(check int) "max_reg member" Regset.max_reg
    (Regset.max_elt (Regset.singleton Regset.max_reg))

let test_set_ops () =
  let a = Regset.of_list [ 1; 2; 3 ] and b = Regset.of_list [ 3; 4 ] in
  check_set "union" (Regset.of_list [ 1; 2; 3; 4 ]) (Regset.union a b);
  check_set "inter" (Regset.singleton 3) (Regset.inter a b);
  check_set "diff" (Regset.of_list [ 1; 2 ]) (Regset.diff a b);
  Alcotest.(check bool) "subset" true (Regset.subset (Regset.singleton 2) a);
  Alcotest.(check bool) "not subset" false (Regset.subset b a)

let test_min_max () =
  let s = Regset.of_list [ 5; 9; 61 ] in
  Alcotest.(check int) "min" 5 (Regset.min_elt s);
  Alcotest.(check int) "max" 61 (Regset.max_elt s);
  Alcotest.check_raises "min of empty" Not_found (fun () ->
      ignore (Regset.min_elt Regset.empty))

let test_above_below () =
  let s = Regset.of_list [ 0; 9; 10; 11; 30 ] in
  check_set "above 10" (Regset.of_list [ 10; 11; 30 ]) (Regset.above 10 s);
  check_set "below 10" (Regset.of_list [ 0; 9 ]) (Regset.below 10 s);
  check_set "above 0 is id" s (Regset.above 0 s);
  check_set "below 62 is id" s (Regset.below 62 s);
  check_set "above+below partition" s
    (Regset.union (Regset.above 10 s) (Regset.below 10 s))

let test_fold_iter () =
  let s = Regset.of_list [ 2; 4; 6 ] in
  Alcotest.(check int) "fold sum" 12 (Regset.fold ( + ) s 0);
  let seen = ref [] in
  Regset.iter (fun r -> seen := r :: !seen) s;
  Alcotest.(check (list int)) "iter ascending" [ 6; 4; 2 ] !seen;
  Alcotest.(check bool) "exists even" true (Regset.exists (fun r -> r mod 2 = 0) s);
  Alcotest.(check bool) "exists odd" false (Regset.exists (fun r -> r mod 2 = 1) s)

let test_pp () =
  Alcotest.(check string) "pp" "{r0, r3}"
    (Format.asprintf "%a" Regset.pp (Regset.of_list [ 0; 3 ]))

(* --- properties -------------------------------------------------------- *)

let gen_set =
  QCheck2.Gen.(map Regset.of_list (list_size (int_bound 20) (int_bound Regset.max_reg)))

let prop_union_cardinal =
  Util.qtest "card(a ∪ b) = card a + card b - card(a ∩ b)"
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Regset.cardinal (Regset.union a b)
      = Regset.cardinal a + Regset.cardinal b - Regset.cardinal (Regset.inter a b))

let prop_diff_disjoint =
  Util.qtest "a \\ b disjoint from b"
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) -> Regset.is_empty (Regset.inter (Regset.diff a b) b))

let prop_roundtrip =
  Util.qtest "of_list (to_list s) = s" gen_set (fun s ->
      Regset.equal s (Regset.of_list (Regset.to_list s)))

let prop_above_below_partition =
  Util.qtest "above/below partition"
    QCheck2.Gen.(pair (int_bound Regset.max_reg) gen_set)
    (fun (n, s) ->
      Regset.equal s (Regset.union (Regset.above n s) (Regset.below n s))
      && Regset.is_empty (Regset.inter (Regset.above n s) (Regset.below n s)))

let suite =
  [ Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "above/below" `Quick test_above_below;
    Alcotest.test_case "fold/iter/exists" `Quick test_fold_iter;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    prop_union_cardinal;
    prop_diff_disjoint;
    prop_roundtrip;
    prop_above_below_partition ]
