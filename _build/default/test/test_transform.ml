open Regmutex
module Program = Gpu_isa.Program
module I = Gpu_isa.Instr

let test_identity () =
  let plan = Transform.identity Util.straight in
  Alcotest.check Util.program "unchanged" Util.straight plan.Transform.transformed;
  Alcotest.(check int) "es = 0" 0 plan.Transform.es;
  Alcotest.(check int) "no acquires" 0 plan.Transform.n_acquires

let test_invalid_split () =
  Alcotest.check_raises "bs+es too small"
    (Invalid_argument "Transform.apply: |Bs|+|Es| = 2 cannot hold 3 registers")
    (fun () -> ignore (Transform.apply ~bs:1 ~es:1 Util.straight));
  Alcotest.check_raises "bs must be positive"
    (Invalid_argument "Transform.apply: |Bs| must be positive") (fun () ->
      ignore (Transform.apply ~bs:0 ~es:5 Util.straight))

let test_counts () =
  let prog = (Workloads.Registry.find "CUTCP").Workloads.Spec.kernel.Gpu_sim.Kernel.program in
  let plan = Transform.apply ~bs:20 ~es:8 prog in
  Alcotest.(check bool) "acquires injected" true (plan.Transform.n_acquires >= 1);
  Alcotest.(check bool) "releases injected" true (plan.Transform.n_releases >= 1);
  Alcotest.(check int) "static acquire count matches program"
    plan.Transform.n_acquires
    (Program.count (fun i -> i = I.Acquire) plan.Transform.transformed);
  Alcotest.(check int) "static release count matches program"
    plan.Transform.n_releases
    (Program.count (fun i -> i = I.Release) plan.Transform.transformed);
  Alcotest.(check bool) "ext fraction in (0,1)" true
    (plan.Transform.ext_static_fraction > 0. && plan.Transform.ext_static_fraction < 1.);
  Alcotest.(check int) "max pressure recorded" 25 plan.Transform.max_pressure

let test_no_pressure_above_bs () =
  (* bs covering the whole register set -> nothing injected. *)
  let plan = Transform.apply ~bs:3 ~es:2 Util.straight in
  Alcotest.(check int) "no acquires" 0 plan.Transform.n_acquires;
  Alcotest.check Util.program "program equal after permute-identity"
    Util.straight plan.Transform.transformed

let test_options_off () =
  let prog = (Workloads.Registry.find "SAD").Workloads.Spec.kernel.Gpu_sim.Kernel.program in
  let bare =
    Transform.apply
      ~options:{ Transform.widen = true; permute = false; mov_compact = false }
      ~bs:20 ~es:12 prog
  in
  let full = Transform.apply ~bs:20 ~es:12 prog in
  Alcotest.(check int) "no movs when disabled" 0 bare.Transform.n_movs;
  (* The compaction passes only ever shrink the acquire-state footprint. *)
  Alcotest.(check bool) "compaction does not grow ext" true
    (full.Transform.ext_static_fraction <= bare.Transform.ext_static_fraction +. 1e-9)

let test_all_workloads_transform () =
  List.iter
    (fun spec ->
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      let bs = spec.Workloads.Spec.paper_bs in
      let es = Workloads.Spec.paper_es spec in
      let plan = Transform.apply ~bs ~es prog in
      Alcotest.(check bool)
        (spec.Workloads.Spec.name ^ " injects something")
        true
        (plan.Transform.n_acquires >= 1))
    Workloads.Registry.all

let prop_transform_sound =
  Util.qtest ~count:40 "transform output always passes the checker"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let liveness = Gpu_analysis.Liveness.analyze prog in
      let peak = Gpu_analysis.Liveness.max_pressure liveness in
      let bs = max 1 (min (prog.Program.n_regs - 1) (peak - 1)) in
      let es = prog.Program.n_regs - bs in
      (* Transform.apply raises Unsound if its checker fails. *)
      match Transform.apply ~bs ~es prog with
      | (_ : Transform.plan) -> true
      | exception Transform.Unsound _ -> false)

let suite =
  [ Alcotest.test_case "identity plan" `Quick test_identity;
    Alcotest.test_case "invalid splits" `Quick test_invalid_split;
    Alcotest.test_case "plan counts" `Quick test_counts;
    Alcotest.test_case "no pressure above bs" `Quick test_no_pressure_above_bs;
    Alcotest.test_case "pass options" `Quick test_options_off;
    Alcotest.test_case "all workloads transform" `Quick test_all_workloads_transform;
    prop_transform_sound ]
