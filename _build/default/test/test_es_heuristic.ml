open Regmutex
module H = Es_heuristic
module O = Gpu_uarch.Occupancy

let arch = Gpu_uarch.Arch_config.gtx480
let demand regs = { O.regs_per_thread = regs; shmem_bytes = 0; cta_threads = 256 }

let test_candidate_sizes () =
  (* The paper's example: 24 x {0.1..0.35} floored, evens -> {2,4,6,8}. *)
  Alcotest.(check (list int)) "for 24" [ 2; 4; 6; 8 ] (H.candidate_sizes ~rounded_regs:24);
  Alcotest.(check (list int)) "for 44" [ 4; 6; 8 ] (H.candidate_sizes ~rounded_regs:44);
  Alcotest.(check (list int)) "for 36" [ 10; 12 ] (H.candidate_sizes ~rounded_regs:36);
  Alcotest.(check (list int)) "for 12" [ 2; 4 ] (H.candidate_sizes ~rounded_regs:12);
  (* Tiny kernels have no even candidate at all. *)
  Alcotest.(check (list int)) "for 8" [ 2 ] (H.candidate_sizes ~rounded_regs:8)

(* The §III-A2 worked example end to end. *)
let test_worked_example () =
  match H.choose arch ~demand:(demand 21) ~min_bs:0 () with
  | None -> Alcotest.fail "expected a choice"
  | Some c ->
      Alcotest.(check int) "R rounded" 24 c.H.rounded_regs;
      Alcotest.(check int) "|Es| = 6" 6 c.H.es;
      Alcotest.(check int) "|Bs| = 18" 18 c.H.bs;
      Alcotest.(check int) "full base occupancy" 48 c.H.warps;
      Alcotest.(check int) "26 sections" 26 c.H.sections;
      Alcotest.(check int) "baseline 40 warps" 40 c.H.baseline_warps;
      Alcotest.(check bool) "raises occupancy" true (H.raises_occupancy c)

let test_min_bs_constraint () =
  (* Barrier liveness of 20 forbids |Bs| < 20, i.e. |Es| > 4. *)
  match H.choose arch ~demand:(demand 21) ~min_bs:20 () with
  | None -> Alcotest.fail "expected a choice"
  | Some c ->
      Alcotest.(check bool) "bs >= min_bs" true (c.H.bs >= 20);
      List.iter
        (fun (cand : H.candidate) ->
          Alcotest.(check bool) "all candidates respect min_bs" true (cand.H.bs >= 20))
        c.H.candidates

let test_no_candidate () =
  (* min_bs above every candidate's |Bs| leaves nothing. *)
  Alcotest.(check bool) "no viable candidate" true
    (H.choose arch ~demand:(demand 21) ~min_bs:23 () = None)

let test_deadlock_rule_sections () =
  (* A demand whose base sets fill the register file leaves no SRP section;
     such candidates must be dropped. Every surviving candidate has >= 1. *)
  match H.choose arch ~demand:{ (demand 21) with O.cta_threads = 512 } ~min_bs:0 () with
  | None -> ()
  | Some c ->
      List.iter
        (fun (cand : H.candidate) ->
          Alcotest.(check bool) "sections >= 1" true (cand.H.sections >= 1))
        c.H.candidates

let test_with_es () =
  (match H.with_es arch ~demand:(demand 21) ~min_bs:0 ~es:4 with
  | Some c ->
      Alcotest.(check int) "forced es" 4 c.H.es;
      Alcotest.(check int) "bs" 20 c.H.bs
  | None -> Alcotest.fail "es=4 is feasible");
  (* Odd/oversized overrides are allowed as long as deadlock rules hold. *)
  (match H.with_es arch ~demand:(demand 21) ~min_bs:0 ~es:12 with
  | Some c -> Alcotest.(check int) "bs 12" 12 c.H.bs
  | None -> Alcotest.fail "es=12 feasible");
  Alcotest.(check bool) "es >= R infeasible" true
    (H.with_es arch ~demand:(demand 21) ~min_bs:0 ~es:24 = None)

let test_half_rf_heartwall () =
  (* On the halved register file the heuristic reproduces Table I's
     HeartWall split (28 regs -> |Bs| = 20). *)
  let half = Gpu_uarch.Arch_config.with_half_regfile arch in
  match
    H.choose half ~demand:{ O.regs_per_thread = 28; shmem_bytes = 0; cta_threads = 128 }
      ~min_bs:0 ()
  with
  | Some c -> Alcotest.(check int) "HeartWall |Bs|" 20 c.H.bs
  | None -> Alcotest.fail "expected a choice"

let test_not_raising () =
  (* A kernel capped by shared memory gains nothing: the pick must still
     exist (the paper applies RegMutex to MergeSort anyway). *)
  let d = { O.regs_per_thread = 15; shmem_bytes = 12288; cta_threads = 256 } in
  let half = Gpu_uarch.Arch_config.with_half_regfile arch in
  match H.choose half ~demand:d ~min_bs:0 () with
  | Some c -> Alcotest.(check bool) "no occupancy gain" false (H.raises_occupancy c)
  | None -> Alcotest.fail "expected a choice"

let prop_split_consistent =
  Util.qtest "bs + es = rounded regs for every candidate"
    QCheck2.Gen.(int_range 8 60)
    (fun regs ->
      match H.choose arch ~demand:(demand regs) ~min_bs:0 () with
      | None -> true
      | Some c ->
          c.H.bs + c.H.es = c.H.rounded_regs
          && List.for_all
               (fun (cand : H.candidate) -> cand.H.bs + cand.H.es = c.H.rounded_regs)
               c.H.candidates)

let suite =
  [ Alcotest.test_case "candidate sizes" `Quick test_candidate_sizes;
    Alcotest.test_case "paper worked example" `Quick test_worked_example;
    Alcotest.test_case "barrier min-bs rule" `Quick test_min_bs_constraint;
    Alcotest.test_case "no viable candidate" `Quick test_no_candidate;
    Alcotest.test_case "sections deadlock rule" `Quick test_deadlock_rule_sections;
    Alcotest.test_case "forced |Es|" `Quick test_with_es;
    Alcotest.test_case "half-RF reproduces Table I (HeartWall)" `Quick test_half_rf_heartwall;
    Alcotest.test_case "pick without occupancy gain" `Quick test_not_raising;
    prop_split_consistent ]
