open Gpu_analysis

let profile_of prog pcs =
  let liveness = Liveness.analyze prog in
  Pressure.dynamic_profile ~liveness ~allocated:prog.Gpu_isa.Program.n_regs pcs

let test_dynamic_profile () =
  let profile = profile_of Util.straight [| 0; 1; 2; 3; 4 |] in
  Alcotest.(check int) "points" 5 (Array.length profile);
  Alcotest.(check int) "allocated" 3 profile.(0).Pressure.allocated;
  Alcotest.(check int) "live at mul" 2 profile.(2).Pressure.live;
  Alcotest.(check int) "steps increase" 3 profile.(3).Pressure.step

let test_ratio () =
  let p = { Pressure.step = 0; live = 1; allocated = 4 } in
  Alcotest.(check (float 1e-9)) "ratio" 0.25 (Pressure.ratio p);
  Alcotest.(check (float 1e-9)) "zero allocation" 0.
    (Pressure.ratio { p with Pressure.allocated = 0 })

let test_fraction_below () =
  let mk live = { Pressure.step = 0; live; allocated = 10 } in
  let pts = [| mk 2; mk 5; mk 9; mk 10 |] in
  Alcotest.(check (float 1e-9)) "half below 0.5" 0.5
    (Pressure.fraction_below ~threshold:0.5 pts);
  Alcotest.(check (float 1e-9)) "all below 1.0" 1.0
    (Pressure.fraction_below ~threshold:1.0 pts);
  Alcotest.(check (float 1e-9)) "empty" 0. (Pressure.fraction_below ~threshold:0.5 [||])

let test_mean_ratio () =
  let mk live = { Pressure.step = 0; live; allocated = 10 } in
  Alcotest.(check (float 1e-9)) "mean" 0.5 (Pressure.mean_ratio [| mk 2; mk 8 |])

let test_downsample () =
  let pts = Array.init 100 (fun i -> { Pressure.step = i; live = i mod 10; allocated = 10 }) in
  let d = Pressure.downsample ~buckets:10 pts in
  Alcotest.(check int) "bucket count" 10 (Array.length d);
  (* Each bucket of 10 consecutive values 0..9 averages to 4. *)
  Alcotest.(check int) "bucket mean" 4 d.(0).Pressure.live;
  let small = Pressure.downsample ~buckets:200 pts in
  Alcotest.(check int) "no upsampling" 100 (Array.length small)

let test_sparkline () =
  let pts = Array.init 10 (fun i -> { Pressure.step = i; live = i; allocated = 9 }) in
  let line = Pressure.sparkline ~width:10 pts in
  Alcotest.(check int) "width" 10 (String.length line);
  Alcotest.(check char) "low start" ' ' line.[0];
  Alcotest.(check char) "high end" '#' line.[9]

let suite =
  [ Alcotest.test_case "dynamic profile" `Quick test_dynamic_profile;
    Alcotest.test_case "ratio" `Quick test_ratio;
    Alcotest.test_case "fraction below" `Quick test_fraction_below;
    Alcotest.test_case "mean ratio" `Quick test_mean_ratio;
    Alcotest.test_case "downsample" `Quick test_downsample;
    Alcotest.test_case "sparkline" `Quick test_sparkline ]
