open Gpu_analysis
module I = Gpu_isa.Instr
module Program = Gpu_isa.Program

let test_straight () =
  let cfg = Cfg.of_program Util.straight in
  Alcotest.(check int) "single block" 1 (Cfg.n_blocks cfg);
  let b = Cfg.block cfg 0 in
  Alcotest.(check int) "first" 0 b.Cfg.first;
  Alcotest.(check int) "last" 4 b.Cfg.last;
  Alcotest.(check (list int)) "no succs" [] b.Cfg.succs

let test_diamond () =
  let cfg = Cfg.of_program Util.diamond in
  (* Blocks: entry(0-3), then(4-5), else(6), join(7-8). *)
  Alcotest.(check int) "four blocks" 4 (Cfg.n_blocks cfg);
  let entry = Cfg.block cfg 0 in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] entry.Cfg.succs;
  let join = Cfg.block cfg 3 in
  Alcotest.(check (list int)) "join preds" [ 1; 2 ] (List.sort compare join.Cfg.preds);
  Alcotest.(check int) "block of instr 6" 2 cfg.Cfg.block_of_instr.(6)

let test_loop () =
  let cfg = Cfg.of_program Util.loop in
  (* mov | header(bz) | body..bra | end(store/exit) *)
  Alcotest.(check int) "blocks" 4 (Cfg.n_blocks cfg);
  let header = Cfg.block cfg 1 in
  Alcotest.(check (list int)) "header succs" [ 2; 3 ] (List.sort compare header.Cfg.succs);
  let body = Cfg.block cfg 2 in
  Alcotest.(check (list int)) "body loops back" [ 1 ] body.Cfg.succs;
  Alcotest.(check (list int)) "header preds" [ 0; 2 ] (List.sort compare header.Cfg.preds)

let test_instr_succs () =
  let p = Util.diamond in
  Alcotest.(check (list int)) "cond branch" [ 6; 4 ] (Cfg.instr_succs p 3);
  Alcotest.(check (list int)) "fallthrough" [ 1 ] (Cfg.instr_succs p 0);
  Alcotest.(check (list int)) "exit" [] (Cfg.instr_succs p 8);
  Alcotest.(check (list int)) "jump" [ 7 ] (Cfg.instr_succs p 5)

let test_conditional_and_exit_blocks () =
  let cfg = Cfg.of_program Util.diamond in
  let conds = Cfg.conditional_blocks cfg in
  Alcotest.(check int) "one conditional block" 1 (List.length conds);
  Alcotest.(check int) "it is the entry" 0 (List.hd conds).Cfg.id;
  let exits = Cfg.exit_blocks cfg in
  Alcotest.(check int) "one exit block" 1 (List.length exits);
  Alcotest.(check int) "it is the join" 3 (List.hd exits).Cfg.id

let test_region () =
  let cfg = Cfg.of_program Util.diamond in
  (* Branch region of the entry block, avoiding the join: both arms. *)
  Alcotest.(check (list int)) "arms only" [ 1; 2 ] (Cfg.region cfg ~from:0 ~avoiding:3);
  (* Avoiding nothing reaches the join too. *)
  Alcotest.(check (list int)) "all reachable" [ 1; 2; 3 ]
    (Cfg.region cfg ~from:0 ~avoiding:(-1))

let test_instrs () =
  let cfg = Cfg.of_program Util.diamond in
  let b = Cfg.block cfg 0 in
  Alcotest.(check (list int)) "instruction indices" [ 0; 1; 2; 3 ] (Cfg.instrs cfg b)

let suite =
  [ Alcotest.test_case "straight line" `Quick test_straight;
    Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "loop" `Quick test_loop;
    Alcotest.test_case "instruction successors" `Quick test_instr_succs;
    Alcotest.test_case "conditional/exit blocks" `Quick test_conditional_and_exit_blocks;
    Alcotest.test_case "branch region" `Quick test_region;
    Alcotest.test_case "block instructions" `Quick test_instrs ]
