open Gpu_isa
module I = Instr

let parse = Parser.parse ~name:"t"

let test_basic () =
  let p =
    parse
      {|
        // a tiny kernel
        mov r0, %tid
        add r1, r0, 42       # trailing comment
        mad r2, r1, param[0], r2
        set.lt r3, r1, 100
        sel r4, r3, r1, r2
        exit
      |}
  in
  Alcotest.(check int) "six instructions" 6 (Program.length p);
  Alcotest.check Util.instr "mov special" (I.Mov (0, I.Special I.Tid)) (Program.get p 0);
  Alcotest.check Util.instr "mad with param"
    (I.Mad (2, I.Reg 1, I.Param 0, I.Reg 2))
    (Program.get p 2);
  Alcotest.check Util.instr "cmp" (I.Cmp (I.Lt, 3, I.Reg 1, I.Imm 100)) (Program.get p 3)

let test_memory_ops () =
  let p =
    parse
      {| ld.global r5, [r1+4]
         st.shared [r0+0], r5
         ld.shared r6, [%tid]
         st.global [r0-8], 7
         exit |}
  in
  Alcotest.check Util.instr "load ofs" (I.Load (I.Global, 5, I.Reg 1, 4)) (Program.get p 0);
  Alcotest.check Util.instr "store" (I.Store (I.Shared, I.Reg 0, I.Reg 5, 0)) (Program.get p 1);
  Alcotest.check Util.instr "no offset" (I.Load (I.Shared, 6, I.Special I.Tid, 0)) (Program.get p 2);
  Alcotest.check Util.instr "negative offset"
    (I.Store (I.Global, I.Reg 0, I.Imm 7, -8))
    (Program.get p 3)

let test_labels_and_branches () =
  let p =
    parse
      {| mov r0, 3
         loop:
           sub r0, r0, 1
           bra.nz r0, loop
         bra.z r0, done
         done:
         exit |}
  in
  Alcotest.check Util.instr "backward branch" (I.Jump_if (I.Reg 0, 1)) (Program.get p 2);
  Alcotest.check Util.instr "forward branch" (I.Jump_ifz (I.Reg 0, 4)) (Program.get p 3)

let test_absolute_targets () =
  let p = parse {| mov r0, 1
                   bra @0
                   exit |} in
  Alcotest.check Util.instr "absolute" (I.Jump 0) (Program.get p 1)

let test_specials_and_sync () =
  let p =
    parse
      {| mov r0, %ctaid
         mul r1, r0, %ntid
         max r2, r1, %nctaid
         min r3, r2, %warpid
         bar.sync
         regmutex.acquire
         regmutex.release
         exit |}
  in
  Alcotest.check Util.instr "bar" I.Bar (Program.get p 4);
  Alcotest.check Util.instr "acquire" I.Acquire (Program.get p 5);
  Alcotest.check Util.instr "release" I.Release (Program.get p 6)

let expect_error text =
  match parse text with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parser.Parse_error _ -> ()

let test_errors () =
  expect_error "frobnicate r1, r2\nexit";
  expect_error "add r1, r2\nexit";          (* arity *)
  expect_error "mov q1, 3\nexit";           (* bad register *)
  expect_error "ld.global r1, r2\nexit";    (* missing brackets *)
  expect_error "mov r1, %bogus\nexit";      (* unknown special *)
  expect_error "bra nowhere\nexit";         (* unresolved label *)
  expect_error "x:\nx:\nexit"               (* duplicate label *)

let test_error_location () =
  match parse "mov r0, 1\nbogus r1\nexit" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parser.Parse_error e ->
      Alcotest.(check int) "line number" 2 e.Parser.line

let test_disassembly_roundtrip () =
  (* parse (Program.pp p) = p for every workload kernel. *)
  List.iter
    (fun spec ->
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      let text = Format.asprintf "%a" Program.pp prog in
      let reparsed = Parser.parse ~name:prog.Program.name text in
      Alcotest.check Util.program (spec.Workloads.Spec.name ^ " roundtrip") prog reparsed)
    Workloads.Registry.all

let prop_roundtrip_random =
  Util.qtest ~count:60 "pp/parse roundtrip on random kernels"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      let text = Format.asprintf "%a" Program.pp prog in
      Program.equal prog (Parser.parse ~name:prog.Program.name text))

let suite =
  [ Alcotest.test_case "basic instructions" `Quick test_basic;
    Alcotest.test_case "memory operands" `Quick test_memory_ops;
    Alcotest.test_case "labels and branches" `Quick test_labels_and_branches;
    Alcotest.test_case "absolute targets" `Quick test_absolute_targets;
    Alcotest.test_case "specials and sync" `Quick test_specials_and_sync;
    Alcotest.test_case "error cases" `Quick test_errors;
    Alcotest.test_case "error location" `Quick test_error_location;
    Alcotest.test_case "workload disassembly roundtrip" `Quick test_disassembly_roundtrip;
    prop_roundtrip_random ]
