open Gpu_isa
module I = Instr

let roundtrip i =
  let ws = Array.of_list (Codec.encode i) in
  let decoded, next = Codec.decode_one ws ~pos:0 in
  Alcotest.check Util.instr (I.to_string i) i decoded;
  Alcotest.(check int) "consumed all words" (Array.length ws) next

let test_alu_roundtrip () =
  List.iter roundtrip
    [ I.Bin (I.Add, 0, I.Reg 1, I.Reg 2);
      I.Bin (I.Shr, 61, I.Imm (-17), I.Special I.Warp_id);
      I.Bin (I.Xor, 5, I.Param 3, I.Imm 8191);
      I.Bin (I.Mul, 7, I.Imm (-8192), I.Reg 0);
      I.Un (I.Neg, 3, I.Reg 9);
      I.Un (I.Abs, 3, I.Imm (-5));
      I.Mad (4, I.Reg 1, I.Imm 2, I.Reg 3);
      I.Mov (2, I.Special I.Nctaid);
      I.Cmp (I.Ge, 1, I.Reg 2, I.Imm 100);
      I.Sel (0, I.Reg 1, I.Reg 2, I.Reg 3) ]

let test_memory_roundtrip () =
  List.iter roundtrip
    [ I.Load (I.Global, 7, I.Reg 2, 0x10000000);
      I.Load (I.Shared, 0, I.Special I.Tid, -64);
      I.Store (I.Global, I.Reg 1, I.Imm 12, 0x10000000);
      I.Store (I.Shared, I.Imm 3, I.Reg 5, 0) ];
  Alcotest.(check int) "memory ops take two words" 2
    (Codec.size (I.Load (I.Global, 0, I.Reg 0, 0)))

let test_control_roundtrip () =
  List.iter roundtrip
    [ I.Jump 12345;
      I.Jump_if (I.Reg 3, 0);
      I.Jump_ifz (I.Special I.Tid, 999);
      I.Bar; I.Acquire; I.Release; I.Exit ]

let test_unencodable () =
  Alcotest.(check bool) "huge immediate" false
    (Codec.encodable_instr (I.Mov (0, I.Imm 2654435761)));
  Alcotest.(check bool) "boundary immediate fits" true
    (Codec.encodable_instr (I.Mov (0, I.Imm 8191)));
  Alcotest.(check bool) "just past boundary" false
    (Codec.encodable_instr (I.Mov (0, I.Imm 8192)));
  Alcotest.(check bool) "raises on encode" true
    (try ignore (Codec.encode (I.Mov (0, I.Imm 1_000_000))); false
     with Codec.Unencodable _ -> true)

let test_program_roundtrip () =
  let p = Util.diamond in
  Alcotest.(check bool) "diamond encodable" true (Codec.encodable p);
  let ws = Codec.encode_program p in
  let q = Codec.decode_program ~name:"diamond" ws in
  Alcotest.check Util.program "roundtrip" p q;
  Alcotest.(check int) "code bytes" (8 * Array.length ws) (Codec.code_bytes p)

let test_workload_roundtrip () =
  (* Workloads with only small immediates round-trip bit-exactly. *)
  let count = ref 0 in
  List.iter
    (fun spec ->
      let prog = spec.Workloads.Spec.kernel.Gpu_sim.Kernel.program in
      if Codec.encodable prog then begin
        incr count;
        let q = Codec.decode_program ~name:prog.Program.name (Codec.encode_program prog) in
        Alcotest.check Util.program (spec.Workloads.Spec.name ^ " roundtrip") prog q
      end)
    Workloads.Registry.all;
  Alcotest.(check bool) "most workloads encodable" true (!count >= 10)

let test_decode_errors () =
  Alcotest.(check bool) "unknown opcode" true
    (try ignore (Codec.decode_one [| Int64.shift_left 63L 58 |] ~pos:0); false
     with Codec.Unencodable _ -> true);
  Alcotest.(check bool) "truncated memory op" true
    (try
       let header = List.hd (Codec.encode (I.Load (I.Global, 0, I.Reg 0, 4))) in
       ignore (Codec.decode_one [| header |] ~pos:0);
       false
     with Codec.Unencodable _ -> true);
  Alcotest.(check bool) "position out of range" true
    (try ignore (Codec.decode_one [||] ~pos:0); false
     with Codec.Unencodable _ -> true)

let prop_roundtrip_random =
  Util.qtest ~count:80 "encode/decode roundtrip on random kernels"
    (Util.gen_structured ~n_regs:8)
    (fun prog ->
      (not (Codec.encodable prog))
      || Program.equal prog
           (Codec.decode_program ~name:prog.Program.name (Codec.encode_program prog)))

let suite =
  [ Alcotest.test_case "ALU roundtrip" `Quick test_alu_roundtrip;
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "control roundtrip" `Quick test_control_roundtrip;
    Alcotest.test_case "unencodable immediates" `Quick test_unencodable;
    Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip;
    Alcotest.test_case "workload roundtrip" `Quick test_workload_roundtrip;
    Alcotest.test_case "decode errors" `Quick test_decode_errors;
    prop_roundtrip_random ]
