open Gpu_sim

let mk_warp ~slot ~age =
  Warp.create ~slot ~cta_slot:0 ~global_cta:0 ~warp_in_cta:slot ~age ~n_regs:4

let pool slots_ages =
  let n = 1 + List.fold_left (fun acc (s, _) -> max acc s) 0 slots_ages in
  let arr = Array.make n None in
  List.iter (fun (s, a) -> arr.(s) <- Some (mk_warp ~slot:s ~age:a)) slots_ages;
  arr

let no_priority (_ : Warp.t) = 0

let test_gto_oldest_first () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let warps = pool [ (0, 5); (1, 2); (2, 9) ] in
  match
    Scheduler.pick sched ~n_slots:3 ~get:(fun s -> warps.(s))
      ~can_issue:(fun _ -> true) ~priority:no_priority
  with
  | Some w -> Alcotest.(check int) "oldest wins" 1 w.Warp.slot
  | None -> Alcotest.fail "expected a pick"

let test_gto_greedy () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let warps = pool [ (0, 5); (1, 2) ] in
  let pick can =
    Scheduler.pick sched ~n_slots:2 ~get:(fun s -> warps.(s)) ~can_issue:can
      ~priority:no_priority
  in
  (match pick (fun _ -> true) with
  | Some w -> Alcotest.(check int) "first pick oldest" 1 w.Warp.slot
  | None -> Alcotest.fail "pick");
  (* Same warp keeps issuing while it can (greedy). *)
  (match pick (fun _ -> true) with
  | Some w -> Alcotest.(check int) "greedy sticks" 1 w.Warp.slot
  | None -> Alcotest.fail "pick");
  (* When the current warp stalls, switch to the other one. *)
  (match pick (fun w -> w.Warp.slot <> 1) with
  | Some w -> Alcotest.(check int) "switch on stall" 0 w.Warp.slot
  | None -> Alcotest.fail "pick");
  (* And stay greedy on the new one. *)
  match pick (fun _ -> true) with
  | Some w -> Alcotest.(check int) "greedy on new warp" 0 w.Warp.slot
  | None -> Alcotest.fail "pick"

let test_ownership () =
  let sched = Scheduler.create Scheduler.Gto ~id:1 ~n_schedulers:2 in
  Alcotest.(check bool) "owns odd slots" true (Scheduler.owns sched ~slot:3);
  Alcotest.(check bool) "not even slots" false (Scheduler.owns sched ~slot:2);
  let warps = pool [ (0, 0); (1, 10); (2, 1); (3, 11) ] in
  match
    Scheduler.pick sched ~n_slots:4 ~get:(fun s -> warps.(s))
      ~can_issue:(fun _ -> true) ~priority:no_priority
  with
  | Some w -> Alcotest.(check int) "only scans own slots" 1 w.Warp.slot
  | None -> Alcotest.fail "pick"

let test_priority_beats_age () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let warps = pool [ (0, 0); (1, 5) ] in
  (* OWF-style: warp 1 is an owner (priority 0), warp 0 is not. *)
  let priority (w : Warp.t) = if w.Warp.slot = 1 then 0 else 1 in
  match
    Scheduler.pick sched ~n_slots:2 ~get:(fun s -> warps.(s))
      ~can_issue:(fun _ -> true) ~priority
  with
  | Some w -> Alcotest.(check int) "owner first despite age" 1 w.Warp.slot
  | None -> Alcotest.fail "pick"

let test_none_issueable () =
  let sched = Scheduler.create Scheduler.Gto ~id:0 ~n_schedulers:1 in
  let warps = pool [ (0, 0) ] in
  Alcotest.(check bool) "none" true
    (Scheduler.pick sched ~n_slots:1 ~get:(fun s -> warps.(s))
       ~can_issue:(fun _ -> false) ~priority:no_priority
    = None)

let test_lrr_rotates () =
  let sched = Scheduler.create Scheduler.Lrr ~id:0 ~n_schedulers:1 in
  let warps = pool [ (0, 0); (1, 1); (2, 2) ] in
  let pick () =
    match
      Scheduler.pick sched ~n_slots:3 ~get:(fun s -> warps.(s))
        ~can_issue:(fun _ -> true) ~priority:no_priority
    with
    | Some w -> w.Warp.slot
    | None -> Alcotest.fail "pick"
  in
  let first = pick () in
  let second = pick () in
  let third = pick () in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2 ]
    (List.sort compare [ first; second; third ]);
  Alcotest.(check bool) "no immediate repeat" true (first <> second && second <> third)

let test_two_level_drains_group () =
  let sched = Scheduler.create (Scheduler.Two_level 2) ~id:0 ~n_schedulers:1 in
  let warps = pool [ (0, 0); (1, 1); (2, 2); (3, 3) ] in
  let pick can =
    match
      Scheduler.pick sched ~n_slots:4 ~get:(fun s -> warps.(s)) ~can_issue:can
        ~priority:no_priority
    with
    | Some w -> w.Warp.slot
    | None -> Alcotest.fail "pick"
  in
  (* Group 0 = slots {0,1}. Oldest of the active group wins while the
     group has runnable warps. *)
  Alcotest.(check int) "active group first" 0 (pick (fun _ -> true));
  Alcotest.(check int) "stays in group" 1 (pick (fun w -> w.Warp.slot <> 0));
  (* When the whole group stalls, rotate to group 1. *)
  Alcotest.(check int) "rotates on group stall" 2 (pick (fun w -> w.Warp.slot >= 2));
  (* The rotation is sticky: group 1 is now active. *)
  Alcotest.(check int) "sticky rotation" 2 (pick (fun _ -> true))

let test_two_level_invalid () =
  Alcotest.check_raises "empty group"
    (Invalid_argument "Scheduler.create: empty fetch group") (fun () ->
      ignore (Scheduler.create (Scheduler.Two_level 0) ~id:0 ~n_schedulers:1))

let test_two_level_end_to_end () =
  (* A full simulation under each scheduler produces identical stores. *)
  let prog = Util.loop in
  let run kind =
    let arch = { Util.small_arch with Gpu_uarch.Arch_config.scheduler = kind } in
    Util.run_with ~arch (Util.static_policy prog) prog
  in
  let gto = run Gpu_uarch.Arch_config.Gto in
  let lrr = run Gpu_uarch.Arch_config.Lrr in
  let two = run (Gpu_uarch.Arch_config.Two_level 4) in
  Util.check_same_traces "gto vs lrr" (Util.traces gto) (Util.traces lrr);
  Util.check_same_traces "gto vs two-level" (Util.traces gto) (Util.traces two)

let test_warp_deps_ready () =
  let w = mk_warp ~slot:0 ~age:0 in
  let instr = Gpu_isa.Instr.Bin (Gpu_isa.Instr.Add, 0, Gpu_isa.Instr.Reg 1, Gpu_isa.Instr.Imm 1) in
  Alcotest.(check bool) "ready initially" true (Warp.deps_ready w instr ~cycle:0);
  w.Warp.reg_ready.(1) <- 10;
  Alcotest.(check bool) "source in flight" false (Warp.deps_ready w instr ~cycle:5);
  Alcotest.(check bool) "ready at completion" true (Warp.deps_ready w instr ~cycle:10);
  w.Warp.reg_ready.(1) <- 0;
  w.Warp.reg_ready.(0) <- 10;
  Alcotest.(check bool) "destination busy blocks too" false
    (Warp.deps_ready w instr ~cycle:5)

let suite =
  [ Alcotest.test_case "GTO picks oldest" `Quick test_gto_oldest_first;
    Alcotest.test_case "GTO greedy behaviour" `Quick test_gto_greedy;
    Alcotest.test_case "slot ownership" `Quick test_ownership;
    Alcotest.test_case "priority beats age (OWF)" `Quick test_priority_beats_age;
    Alcotest.test_case "nothing issueable" `Quick test_none_issueable;
    Alcotest.test_case "LRR rotation" `Quick test_lrr_rotates;
    Alcotest.test_case "two-level drains and rotates" `Quick test_two_level_drains_group;
    Alcotest.test_case "two-level validation" `Quick test_two_level_invalid;
    Alcotest.test_case "schedulers agree on behaviour" `Quick test_two_level_end_to_end;
    Alcotest.test_case "warp scoreboard" `Quick test_warp_deps_ready ]
