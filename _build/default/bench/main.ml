(* Benchmark harness: regenerates every table and figure of the RegMutex
   evaluation (see DESIGN.md's per-experiment index) and, with `perf`,
   times the core primitives with Bechamel.

   Usage:
     dune exec bench/main.exe              # all figures, full-size grids
     dune exec bench/main.exe -- quick     # all figures, quarter grids
     dune exec bench/main.exe -- fig7 fig10
     dune exec bench/main.exe -- perf      # Bechamel micro-benchmarks *)

let experiments : (string * (Experiments.Exp_config.t -> unit)) list =
  [ ("table1", Experiments.Table1.print);
    ("fig1", Experiments.Fig1.print);
    ("fig2", Experiments.Fig2.print);
    ("fig7", Experiments.Fig7.print);
    ("fig8", Experiments.Fig8.print);
    ("fig9a", Experiments.Fig9.print_a);
    ("fig9b", Experiments.Fig9.print_b);
    ("fig10", Experiments.Fig10.print);
    ("fig11", Experiments.Fig11.print);
    ("fig12", Experiments.Fig12.print);
    ("fig13", Experiments.Fig13.print);
    ("storage", Experiments.Storage.print);
    ("ablation", Experiments.Ablation.print);
    ("sched", Experiments.Sched_ablation.print) ]

let run_experiment cfg name =
  match List.assoc_opt name experiments with
  | Some f ->
      Printf.printf "\n================ %s ================\n%!" name;
      let t0 = Unix.gettimeofday () in
      f cfg;
      Printf.printf "(%s finished in %.1fs)\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
      Printf.eprintf "unknown experiment %S; available: %s, perf\n" name
        (String.concat ", " (List.map fst experiments));
      exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  let cfg =
    if quick then Experiments.Exp_config.quick else Experiments.Exp_config.default
  in
  match args with
  | [ "perf" ] -> Perf.run ()
  | [] -> List.iter (fun (name, _) -> run_experiment cfg name) experiments
  | names -> List.iter (run_experiment cfg) names
