(* Bechamel micro-benchmarks for the core primitives: compiler analyses,
   the full RegMutex transform, SRP hardware operations, and the simulator
   cycle loop. *)

open Bechamel
open Toolkit

let dwt2d = (Workloads.Registry.find "DWT2D").Workloads.Spec.kernel
let dwt2d_prog = dwt2d.Gpu_sim.Kernel.program
let bfs = (Workloads.Registry.find "BFS").Workloads.Spec.kernel

let test_liveness =
  Test.make ~name:"liveness-analysis (dwt2d)"
    (Staged.stage (fun () ->
         ignore (Gpu_analysis.Liveness.analyze ~widen:false dwt2d_prog)))

let test_widening =
  Test.make ~name:"liveness+widening (dwt2d)"
    (Staged.stage (fun () ->
         ignore (Gpu_analysis.Liveness.analyze ~widen:true dwt2d_prog)))

let test_transform =
  Test.make ~name:"full transform (dwt2d)"
    (Staged.stage (fun () ->
         ignore (Regmutex.Transform.apply ~bs:38 ~es:6 dwt2d_prog)))

let test_checker =
  let plan = Regmutex.Transform.apply ~bs:38 ~es:6 dwt2d_prog in
  Test.make ~name:"soundness checker (dwt2d)"
    (Staged.stage (fun () ->
         ignore (Regmutex.Checker.check ~bs:38 ~es:6 plan.Regmutex.Transform.transformed)))

let test_srp =
  Test.make ~name:"srp acquire+release x48"
    (Staged.stage (fun () ->
         let srp = Gpu_uarch.Srp.create ~n_warps:48 ~sections:26 in
         for w = 0 to 47 do
           ignore (Gpu_uarch.Srp.acquire srp ~warp:w)
         done;
         for w = 0 to 47 do
           ignore (Gpu_uarch.Srp.release srp ~warp:w)
         done))

let test_occupancy =
  let demand = Gpu_sim.Kernel.demand bfs in
  Test.make ~name:"occupancy + heuristic (bfs)"
    (Staged.stage (fun () ->
         ignore
           (Regmutex.Es_heuristic.choose Gpu_uarch.Arch_config.gtx480 ~demand
              ~min_bs:0 ())))

let test_sim =
  let arch = { Gpu_uarch.Arch_config.gtx480 with n_sms = 1 } in
  let kernel = { bfs with Gpu_sim.Kernel.grid_ctas = 5; params = [| 2 |] } in
  let policy =
    Gpu_sim.Policy.Static { regs_per_thread = Gpu_sim.Kernel.regs_per_thread kernel }
  in
  Test.make ~name:"simulate 5 CTAs (bfs, 1 SM)"
    (Staged.stage (fun () ->
         ignore (Gpu_sim.Gpu.run (Gpu_sim.Gpu.default_config arch policy) kernel)))

let tests =
  Test.make_grouped ~name:"regmutex" ~fmt:"%s %s"
    [ test_liveness; test_widening; test_transform; test_checker; test_srp;
      test_occupancy; test_sim ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let () =
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock)

let run () =
  let results = benchmark () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image
