bench/main.mli:
