bench/perf.ml: Analyze Bechamel Bechamel_notty Benchmark Gpu_analysis Gpu_sim Gpu_uarch Instance List Measure Notty_unix Regmutex Staged Test Time Toolkit Unix Workloads
