bench/main.ml: Array Experiments List Perf Printf String Sys Unix
