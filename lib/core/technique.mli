(** The evaluated register-management techniques, tying the compiler side
    (heuristic + transform) to the simulator policy:

    - [Baseline]: stock static/exclusive allocation.
    - [Regmutex]: the paper's default design.
    - [Regmutex_paired]: the paired-warps specialization (§III-C).
    - [Owf]: resource sharing with owner-warp-first scheduling
      (Jatala et al. [7]) — one-time acquire, no in-kernel release.
    - [Rfv]: register file virtualization (Jeon et al. [3]).
    - [Regdem]: register demotion to shared memory (Sakdhnagool et al.,
      arXiv:1907.02894) — see {!Regdem}.

    Besides the closed variant type, every technique is exposed through a
    uniform {!plugin} record (prepare / storage / energy hooks), which is
    what the experiment and bench layers iterate over. *)

type t =
  | Baseline
  | Regmutex
  | Regmutex_paired
  | Owf
  | Rfv
  | Regdem

type options = {
  es_override : int option;  (** force [|Es|] (sensitivity sweeps) *)
  transform : Transform.options;
  verify : bool;  (** dynamic extended-access checking in the simulator *)
  simt : bool;
      (** per-thread (SIMT) execution in the simulator: lane-resolved
          register values, predication, and a reconvergence stack per
          warp (default [false] — warp-uniform execution) *)
}

val default_options : options

type prepared = {
  technique : t;
  kernel : Gpu_sim.Kernel.t;  (** program possibly transformed *)
  policy : Gpu_sim.Policy.t;
  choice : Es_heuristic.choice option;
  plan : Transform.plan option;
  regdem : Regdem.plan option;  (** demotion plan, for [Regdem] runs *)
}

(** [prepare ?options cfg t kernel] runs the compile-time side. For
    [Regmutex]/[Regmutex_paired]: when the heuristic yields no viable
    candidate, the kernel falls back to baseline behaviour (zero-sized
    extended set, no primitives inserted). [Regdem] likewise falls back
    to an empty spill window when no demotion beats baseline
    occupancy. *)
val prepare :
  ?options:options -> Gpu_uarch.Arch_config.t -> t -> Gpu_sim.Kernel.t -> prepared

val name : t -> string

(** Inverse of {!name} (also accepts the "paired" shorthand). *)
val of_name : string -> t option

val all : t list

(** Total mapping into {!Gpu_uarch.Storage_cost.technique}. Exhaustive by
    construction: adding a [Technique.t] constructor breaks this function
    at compile time until the new technique's hardware cost is
    classified, so the two variant types cannot silently drift. *)
val to_storage : t -> Gpu_uarch.Storage_cost.technique

(** Hardware tracking-storage bits of the technique on [cfg]. *)
val storage_bits : Gpu_uarch.Arch_config.t -> t -> int

(** [energy_counts cfg t stats] derives the energy model's activity
    counts from a run's counters: RF and shared accesses come straight
    from {!Gpu_sim.Stats}, renaming traffic is charged for [Rfv] (every
    RF access passes the renaming table), and acquire/release tracking
    updates for the RegMutex family. *)
val energy_counts :
  Gpu_uarch.Arch_config.t -> t -> Gpu_sim.Stats.t ->
  Gpu_uarch.Energy_model.counts

(** Modelled energy of a run under technique [t]. *)
val energy :
  ?constants:Gpu_uarch.Energy_model.constants ->
  Gpu_uarch.Arch_config.t -> t -> Gpu_sim.Stats.t ->
  Gpu_uarch.Energy_model.breakdown

(** A technique as a uniform bundle of hooks — the open-ended interface
    the experiment, bench and CLI layers program against. *)
type plugin = {
  variant : t;
  plugin_name : string;
  plugin_prepare :
    options -> Gpu_uarch.Arch_config.t -> Gpu_sim.Kernel.t -> prepared;
  plugin_storage : Gpu_uarch.Storage_cost.technique;
  plugin_energy :
    Gpu_uarch.Arch_config.t -> Gpu_sim.Stats.t ->
    Gpu_uarch.Energy_model.breakdown;
}

val plugin_of : t -> plugin
val plugins : plugin list
val find_plugin : string -> plugin option
