(** RegDem — register demotion to shared memory (Sakdhnagool et al.,
    arXiv:1907.02894).

    Where RegMutex time-shares physical registers through SRP sections,
    RegDem attacks the same occupancy wall purely in the compiler: the
    registers above a chosen [keep] boundary are {e demoted} to a reserved
    per-CTA shared-memory window, each use is preceded by a fill
    ([ld.spill]) into a scratch register and each def is followed by a
    spill store ([st.spill]). The hardware side is then plain static
    allocation of the reduced register count
    ({!Gpu_sim.Policy.Regdem}).

    The demotion set is picked with the same machinery RegMutex uses for
    its base set: the duration/pressure-ranked permutation from
    {!Compaction} moves the coldest registers above the boundary, and a
    sweep over keep-counts evaluates the resulting occupancy exactly as
    the simulator will ({!Gpu_sim.Sm.cta_capacity_for}), charging both
    the reduced register demand and the enlarged shared-memory
    allocation. *)

(** Raised when the transformed program fails its static soundness check
    (register references beyond the reduced allocation, or spill offsets
    outside the window) — a bug in this pass, not a user error. *)
exception Unsound of string

type plan = {
  original : Gpu_isa.Program.t;
  transformed : Gpu_isa.Program.t;
  keep : int;         (** registers kept below the demotion boundary *)
  scratch : int;      (** scratch registers appended for fills/spills *)
  allocated : int;    (** [keep + scratch] — the static register demand *)
  demoted : int;      (** registers spilled to the shared-memory window *)
  wpc : int;          (** warps per CTA the window was laid out for *)
  spill_words : int;  (** per-CTA window size: [demoted * wpc] words *)
  n_spills : int;     (** static [st.spill] count *)
  n_fills : int;      (** static [ld.spill] count *)
}

type candidate = {
  c_keep : int;
  c_scratch : int;
  c_allocated : int;
  c_demoted : int;
  c_spill_words : int;
  c_shmem_bytes : int;   (** enlarged per-CTA shared allocation *)
  c_warps : int;         (** resident warps under this candidate *)
  c_static_spills : int;
  c_static_fills : int;
}

type choice = {
  baseline_warps : int;
  candidates : candidate list;  (** every keep-count swept, descending *)
  best : candidate option;      (** [None] when no candidate beats baseline *)
}

(** User shared-memory words a plain launch of [kernel] would allocate
    ([max 1 (shmem_bytes / 4)]); the spill window sits directly above. *)
val user_words : Gpu_sim.Kernel.t -> int

(** Enlarged per-CTA allocation: user window plus [spill_words]. *)
val shmem_bytes_with_window : Gpu_sim.Kernel.t -> spill_words:int -> int

(** [choose ?widen cfg kernel] sweeps keep-counts and returns the
    occupancy-maximising demotion, if any strictly beats baseline. *)
val choose : ?widen:bool -> Gpu_uarch.Arch_config.t -> Gpu_sim.Kernel.t -> choice

(** [transform ?widen ~keep ~wpc prog] permutes the coldest registers
    above [keep], rewrites every demoted access through scratch registers
    with spill/fill instructions, and retargets branches to each expanded
    group's head.
    @raise Invalid_argument when [keep] is outside [1, n_regs) or [wpc < 1].
    @raise Unsound when the result fails the static soundness check. *)
val transform :
  ?widen:bool -> keep:int -> wpc:int -> Gpu_isa.Program.t -> plan

val pp_candidate : Format.formatter -> candidate -> unit
val pp_plan : Format.formatter -> plan -> unit
