module Arch_config = Gpu_uarch.Arch_config
module Liveness = Gpu_analysis.Liveness
module Kernel = Gpu_sim.Kernel
module Policy = Gpu_sim.Policy

type t =
  | Baseline
  | Regmutex
  | Regmutex_paired
  | Owf
  | Rfv

type options = {
  es_override : int option;
  transform : Transform.options;
  verify : bool;
}

let default_options =
  { es_override = None; transform = Transform.default_options; verify = true }

type prepared = {
  technique : t;
  kernel : Gpu_sim.Kernel.t;
  policy : Gpu_sim.Policy.t;
  choice : Es_heuristic.choice option;
  plan : Transform.plan option;
}

let static_policy kernel =
  Policy.Static { regs_per_thread = Kernel.regs_per_thread kernel }

let min_bs_of kernel widen =
  let prog = kernel.Kernel.program in
  let liveness = Liveness.analyze ~widen prog in
  Liveness.live_at_barriers prog liveness

let choose_split options cfg kernel =
  let demand = Kernel.demand kernel in
  let min_bs = min_bs_of kernel options.transform.Transform.widen in
  match options.es_override with
  | Some es -> Es_heuristic.with_es cfg ~demand ~min_bs ~es
  | None -> Es_heuristic.choose cfg ~demand ~min_bs ()

let prepare_regmutex ~paired options cfg technique kernel =
  match choose_split options cfg kernel with
  | None ->
      (* Zero-sized extended set: run the unmodified kernel as baseline. *)
      { technique; kernel; policy = static_policy kernel; choice = None; plan = None }
  | Some choice ->
      let bs = choice.Es_heuristic.bs and es = choice.Es_heuristic.es in
      let plan =
        Transform.apply ~options:options.transform ~bs ~es kernel.Kernel.program
      in
      let warps_per_cta =
        (kernel.Kernel.cta_threads + cfg.Arch_config.warp_size - 1)
        / cfg.Arch_config.warp_size
      in
      if
        paired && warps_per_cta > 1
        && Checker.acquire_spans_barrier plan.Transform.transformed
      then
        (* Both partners execute the same acquire, but the pair holds a
           single section: a holder parked at the barrier waits for its
           partner, which is parked at the acquire — a certain deadlock.
           Pairing is not viable for this kernel; run it unshared. *)
        { technique; kernel; policy = static_policy kernel; choice = None;
          plan = None }
      else
        let kernel = Kernel.with_program kernel plan.Transform.transformed in
        let policy =
          if paired then Policy.Srp_paired { bs; es; verify = options.verify }
          else Policy.Srp { bs; es; verify = options.verify }
        in
        { technique; kernel; policy; choice = Some choice; plan = Some plan }

let prepare_owf options cfg kernel =
  let fallback () =
    { technique = Owf; kernel; policy = static_policy kernel; choice = None; plan = None }
  in
  match choose_split options cfg kernel with
  | None -> fallback ()
  | Some choice
    when Gpu_sim.Sm.cta_capacity_for cfg
           ~policy:
             (Policy.Owf
                { bs = choice.Es_heuristic.bs; es = choice.Es_heuristic.es })
           ~kernel
         < 2 * Gpu_sim.Sm.cta_capacity_for cfg ~policy:(static_policy kernel) ~kernel ->
      (* Jatala et al. share registers to fit more warps. Because the
         non-owner of a pair is frozen from its first shared access until
         the owner exits, a pair contributes roughly one warp of progress
         through shared regions — sharing pays only when it at least
         doubles occupancy; below that the kernel runs unshared. *)
      fallback ()
  | Some choice ->
      (* Jatala et al. reorder register declarations once so that rarely
         used registers sit above the sharing threshold; the duration
         permutation models exactly that. The program is otherwise
         unmodified — the hardware traps accesses above |Bs|. *)
      let prog = kernel.Kernel.program in
      let liveness =
        Liveness.analyze ~widen:options.transform.Transform.widen prog
      in
      let bs = choice.Es_heuristic.bs and es = choice.Es_heuristic.es in
      let prog =
        if options.transform.Transform.permute then
          Compaction.permute prog (Compaction.pressure_ranking ~bs prog liveness)
        else prog
      in
      let kernel = Kernel.with_program kernel prog in
      { technique = Owf; kernel; policy = Policy.Owf { bs; es }; choice = Some choice;
        plan = None }

let prepare_rfv options kernel =
  let prog = kernel.Kernel.program in
  let liveness = Liveness.analyze ~widen:options.transform.Transform.widen prog in
  let live = Liveness.profile liveness in
  let max_live = Liveness.max_pressure liveness in
  { technique = Rfv; kernel; policy = Policy.Rfv { live; max_live }; choice = None;
    plan = None }

let prepare ?(options = default_options) cfg technique kernel =
  match technique with
  | Baseline ->
      { technique; kernel; policy = static_policy kernel; choice = None; plan = None }
  | Regmutex -> prepare_regmutex ~paired:false options cfg technique kernel
  | Regmutex_paired -> prepare_regmutex ~paired:true options cfg technique kernel
  | Owf -> prepare_owf options cfg kernel
  | Rfv -> prepare_rfv options kernel

let name = function
  | Baseline -> "baseline"
  | Regmutex -> "regmutex"
  | Regmutex_paired -> "regmutex-paired"
  | Owf -> "owf"
  | Rfv -> "rfv"

let all = [ Baseline; Regmutex; Regmutex_paired; Owf; Rfv ]
