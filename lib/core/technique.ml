module Arch_config = Gpu_uarch.Arch_config
module Storage_cost = Gpu_uarch.Storage_cost
module Energy_model = Gpu_uarch.Energy_model
module Liveness = Gpu_analysis.Liveness
module Kernel = Gpu_sim.Kernel
module Policy = Gpu_sim.Policy
module Stats = Gpu_sim.Stats

type t =
  | Baseline
  | Regmutex
  | Regmutex_paired
  | Owf
  | Rfv
  | Regdem

type options = {
  es_override : int option;
  transform : Transform.options;
  verify : bool;
  simt : bool;
}

let default_options =
  { es_override = None; transform = Transform.default_options; verify = true;
    simt = false }

type prepared = {
  technique : t;
  kernel : Gpu_sim.Kernel.t;
  policy : Gpu_sim.Policy.t;
  choice : Es_heuristic.choice option;
  plan : Transform.plan option;
  regdem : Regdem.plan option;
}

let static_policy kernel =
  Policy.Static { regs_per_thread = Kernel.regs_per_thread kernel }

let min_bs_of kernel widen =
  let prog = kernel.Kernel.program in
  let liveness = Liveness.analyze ~widen prog in
  Liveness.live_at_barriers prog liveness

let choose_split options cfg kernel =
  let demand = Kernel.demand kernel in
  let min_bs = min_bs_of kernel options.transform.Transform.widen in
  match options.es_override with
  | Some es -> Es_heuristic.with_es cfg ~demand ~min_bs ~es
  | None -> Es_heuristic.choose cfg ~demand ~min_bs ()

let prepare_regmutex ~paired options cfg technique kernel =
  match choose_split options cfg kernel with
  | None ->
      (* Zero-sized extended set: run the unmodified kernel as baseline. *)
      { technique; kernel; policy = static_policy kernel; choice = None;
        plan = None; regdem = None }
  | Some choice ->
      let bs = choice.Es_heuristic.bs and es = choice.Es_heuristic.es in
      let plan =
        Transform.apply ~options:options.transform ~bs ~es kernel.Kernel.program
      in
      let warps_per_cta =
        (kernel.Kernel.cta_threads + cfg.Arch_config.warp_size - 1)
        / cfg.Arch_config.warp_size
      in
      if
        paired && warps_per_cta > 1
        && Checker.acquire_spans_barrier plan.Transform.transformed
      then
        (* Both partners execute the same acquire, but the pair holds a
           single section: a holder parked at the barrier waits for its
           partner, which is parked at the acquire — a certain deadlock.
           Pairing is not viable for this kernel; run it unshared. *)
        { technique; kernel; policy = static_policy kernel; choice = None;
          plan = None; regdem = None }
      else
        let kernel = Kernel.with_program kernel plan.Transform.transformed in
        let policy =
          if paired then Policy.Srp_paired { bs; es; verify = options.verify }
          else Policy.Srp { bs; es; verify = options.verify }
        in
        { technique; kernel; policy; choice = Some choice; plan = Some plan;
          regdem = None }

let prepare_owf options cfg kernel =
  let fallback () =
    { technique = Owf; kernel; policy = static_policy kernel; choice = None;
      plan = None; regdem = None }
  in
  match choose_split options cfg kernel with
  | None -> fallback ()
  | Some choice
    when Gpu_sim.Sm.cta_capacity_for cfg
           ~policy:
             (Policy.Owf
                { bs = choice.Es_heuristic.bs; es = choice.Es_heuristic.es })
           ~kernel
         < 2 * Gpu_sim.Sm.cta_capacity_for cfg ~policy:(static_policy kernel) ~kernel ->
      (* Jatala et al. share registers to fit more warps. Because the
         non-owner of a pair is frozen from its first shared access until
         the owner exits, a pair contributes roughly one warp of progress
         through shared regions — sharing pays only when it at least
         doubles occupancy; below that the kernel runs unshared. *)
      fallback ()
  | Some choice ->
      (* Jatala et al. reorder register declarations once so that rarely
         used registers sit above the sharing threshold; the duration
         permutation models exactly that. The program is otherwise
         unmodified — the hardware traps accesses above |Bs|. *)
      let prog = kernel.Kernel.program in
      let liveness =
        Liveness.analyze ~widen:options.transform.Transform.widen prog
      in
      let bs = choice.Es_heuristic.bs and es = choice.Es_heuristic.es in
      let prog =
        if options.transform.Transform.permute then
          Compaction.permute prog (Compaction.pressure_ranking ~bs prog liveness)
        else prog
      in
      let kernel = Kernel.with_program kernel prog in
      { technique = Owf; kernel; policy = Policy.Owf { bs; es }; choice = Some choice;
        plan = None; regdem = None }

let prepare_rfv options kernel =
  let prog = kernel.Kernel.program in
  let liveness = Liveness.analyze ~widen:options.transform.Transform.widen prog in
  let live = Liveness.profile liveness in
  let max_live = Liveness.max_pressure liveness in
  { technique = Rfv; kernel; policy = Policy.Rfv { live; max_live }; choice = None;
    plan = None; regdem = None }

let prepare_regdem options cfg kernel =
  let widen = options.transform.Transform.widen in
  let fallback () =
    (* No demotion strictly beats baseline occupancy: run the unmodified
       kernel under an empty spill window (identical to static). *)
    { technique = Regdem; kernel;
      policy =
        Policy.Regdem
          { regs_per_thread = Kernel.regs_per_thread kernel; spill_words = 0 };
      choice = None; plan = None; regdem = None }
  in
  match (Regdem.choose ~widen cfg kernel).Regdem.best with
  | None -> fallback ()
  | Some c ->
      let wpc = Kernel.warps_per_cta cfg kernel in
      let plan =
        Regdem.transform ~widen ~keep:c.Regdem.c_keep ~wpc
          kernel.Kernel.program
      in
      let shmem =
        Regdem.shmem_bytes_with_window kernel
          ~spill_words:plan.Regdem.spill_words
      in
      let kernel' =
        Kernel.with_shmem_bytes
          (Kernel.with_program kernel plan.Regdem.transformed)
          shmem
      in
      { technique = Regdem; kernel = kernel';
        policy =
          Policy.Regdem
            { regs_per_thread = plan.Regdem.allocated;
              spill_words = plan.Regdem.spill_words };
        choice = None; plan = None; regdem = Some plan }

let prepare ?(options = default_options) cfg technique kernel =
  match technique with
  | Baseline ->
      { technique; kernel; policy = static_policy kernel; choice = None;
        plan = None; regdem = None }
  | Regmutex -> prepare_regmutex ~paired:false options cfg technique kernel
  | Regmutex_paired -> prepare_regmutex ~paired:true options cfg technique kernel
  | Owf -> prepare_owf options cfg kernel
  | Rfv -> prepare_rfv options kernel
  | Regdem -> prepare_regdem options cfg kernel

let name = function
  | Baseline -> "baseline"
  | Regmutex -> "regmutex"
  | Regmutex_paired -> "regmutex-paired"
  | Owf -> "owf"
  | Rfv -> "rfv"
  | Regdem -> "regdem"

let all = [ Baseline; Regmutex; Regmutex_paired; Owf; Rfv; Regdem ]

let of_name s =
  match String.lowercase_ascii s with
  | "baseline" -> Some Baseline
  | "regmutex" -> Some Regmutex
  | "paired" | "regmutex-paired" -> Some Regmutex_paired
  | "owf" -> Some Owf
  | "rfv" -> Some Rfv
  | "regdem" -> Some Regdem
  | _ -> None

(* Total, compiler-enforced mapping into the storage-cost accounting: a
   new [Technique.t] constructor fails to compile here until its hardware
   cost is classified, which is exactly the drift this function exists to
   prevent. *)
let to_storage = function
  | Baseline -> Storage_cost.Baseline
  | Regmutex -> Storage_cost.Regmutex_default
  | Regmutex_paired -> Storage_cost.Regmutex_paired
  | Owf -> Storage_cost.Owf
  | Rfv -> Storage_cost.Rfv
  | Regdem -> Storage_cost.Regdem

let storage_bits cfg t = (Storage_cost.bits cfg (to_storage t)).Storage_cost.total_bits

let energy_counts cfg t (stats : Stats.t) =
  {
    Energy_model.rf_reads = stats.Stats.rf_reads;
    rf_writes = stats.Stats.rf_writes;
    shared_reads = stats.Stats.shared_reads;
    shared_writes = stats.Stats.shared_writes;
    fill_loads = stats.Stats.fill_loads;
    spill_stores = stats.Stats.spill_stores;
    (* RFV routes every register access through the renaming table. *)
    rename_accesses =
      (match t with
      | Rfv -> stats.Stats.rf_reads + stats.Stats.rf_writes
      | Baseline | Regmutex | Regmutex_paired | Owf | Regdem -> 0);
    (* RegMutex-family bitmask/LUT activity; the counters are zero for
       techniques that execute no acquire/release. *)
    track_updates = stats.Stats.acquire_execs + stats.Stats.release_execs;
    cycles = stats.Stats.cycles;
    storage_bits = storage_bits cfg t;
  }

let energy ?constants cfg t stats =
  Energy_model.of_counts ?constants (energy_counts cfg t stats)

(* --- plugin view ------------------------------------------------------ *)

type plugin = {
  variant : t;
  plugin_name : string;
  plugin_prepare :
    options -> Gpu_uarch.Arch_config.t -> Gpu_sim.Kernel.t -> prepared;
  plugin_storage : Storage_cost.technique;
  plugin_energy :
    Gpu_uarch.Arch_config.t -> Gpu_sim.Stats.t -> Energy_model.breakdown;
}

let plugin_of t =
  {
    variant = t;
    plugin_name = name t;
    plugin_prepare = (fun options cfg kernel -> prepare ~options cfg t kernel);
    plugin_storage = to_storage t;
    plugin_energy = (fun cfg stats -> energy cfg t stats);
  }

let plugins = List.map plugin_of all

let find_plugin s =
  match of_name s with None -> None | Some t -> Some (plugin_of t)
