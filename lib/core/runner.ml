module Gpu = Gpu_sim.Gpu
module Stats = Gpu_sim.Stats
module Kernel = Gpu_sim.Kernel

type run = {
  technique : Technique.t;
  kernel_name : string;
  cycles : int;
  instructions : int;
  theoretical_warps : int;
  theoretical_occupancy : float;
  achieved_occupancy : float;
  acquire_ratio : float;
  srp_sections : int;
  stats : Gpu_sim.Stats.t;
  prepared : Technique.prepared;
}

(* Host-side profiling phases (surfaced by `regmutex sweep --profile`):
   registered at module init, before the sweep engine spawns domains. *)
let prepare_phase = Telemetry.Profile.phase "runner.prepare"
let simulate_phase = Telemetry.Profile.phase "runner.simulate"

let execute ?options ?(record_stores = false) ?(trace_warp0 = false)
    ?(max_cycles = 20_000_000) ?(fast_forward = true) ?(corrupt_mask = 0)
    ?telemetry cfg technique kernel =
  let prepared =
    Telemetry.Profile.time prepare_phase (fun () ->
        Technique.prepare ?options cfg technique kernel)
  in
  let simt =
    match options with
    | Some o -> o.Technique.simt
    | None -> Technique.default_options.Technique.simt
  in
  let config =
    {
      Gpu.arch = cfg;
      policy = prepared.Technique.policy;
      record_stores;
      trace_warp0;
      max_cycles;
      events = None;
      telemetry;
      fast_forward;
      simt;
      corrupt_mask;
    }
  in
  let kernel' = prepared.Technique.kernel in
  let stats =
    Telemetry.Profile.time simulate_phase (fun () -> Gpu.run config kernel')
  in
  let theoretical_warps = Gpu.theoretical_warps config kernel' in
  {
    technique;
    kernel_name = kernel.Kernel.name;
    cycles = stats.Stats.cycles;
    instructions = stats.Stats.instructions;
    theoretical_warps;
    theoretical_occupancy =
      float_of_int theoretical_warps
      /. float_of_int cfg.Gpu_uarch.Arch_config.max_warps;
    achieved_occupancy = Stats.achieved_occupancy stats;
    acquire_ratio = Stats.acquire_success_ratio stats;
    srp_sections = Gpu.srp_sections_of config kernel';
    stats;
    prepared;
  }

(* Stable digest of everything the figures read off a run. Two runs of the
   same cell must produce the same fingerprint no matter which domain (or
   process) simulated them — the experiment engine's determinism and
   cache round-trip checks compare these. *)
let fingerprint r =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( r.kernel_name, Technique.name r.technique, r.cycles, r.instructions,
            r.theoretical_warps, r.theoretical_occupancy, r.achieved_occupancy,
            r.acquire_ratio, r.srp_sections, r.stats.Stats.acquire_execs,
            r.stats.Stats.acquire_first_try, r.stats.Stats.shared_oob )
          []))

let reduction_pct ~baseline run =
  if baseline.cycles = 0 then 0.
  else
    100.
    *. float_of_int (baseline.cycles - run.cycles)
    /. float_of_int baseline.cycles

let increase_pct ~baseline run = -.reduction_pct ~baseline run

let pp ppf r =
  Format.fprintf ppf "%s/%s: %d cycles, occ %.0f%% (ach %.0f%%), acq %.0f%%"
    r.kernel_name (Technique.name r.technique) r.cycles
    (100. *. r.theoretical_occupancy)
    (100. *. r.achieved_occupancy)
    (100. *. r.acquire_ratio)
