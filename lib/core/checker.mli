(** Static soundness checker for instrumented programs.

    Abstract interpretation over the instruction-level CFG of the warp's
    acquire state (held / free), honouring idempotent acquire/release
    semantics. A transformed program is sound when:

    - every instruction referencing a register with index ≥ [|Bs|] is
      executed with the extended set held on {e every} path;
    - no instruction references a register at or beyond [|Bs| + |Es|];
    - whenever the set may be free after an instruction, no register with
      index ≥ [|Bs|] is live there (its physical storage is gone).

    {!Transform.apply} runs this checker and refuses to emit unsound
    programs; the simulator additionally enforces the same rules
    dynamically in verification mode. *)

type violation = {
  pc : int;
  message : string;
}

(** [check ~bs ~es prog] returns all violations ([] = sound). The
    liveness used for the free-state rule is recomputed on the transformed
    program with divergence widening. *)
val check : bs:int -> es:int -> Gpu_isa.Program.t -> violation list

val pp_violation : Format.formatter -> violation -> unit

(** [acquire_spans_barrier prog] holds when some [bar.sync] may execute
    with the extended set held (acquire state Held or Top on entry).
    Spanning a barrier is sound for storage but restricts forward
    progress: a warp parked at the barrier keeps its SRP section while
    the warps it waits for may need one. Under [Srp_paired] — one
    section per warp pair, both partners executing the same acquire —
    it is a certain deadlock, so {!Technique.prepare} refuses the
    paired policy for such programs. *)
val acquire_spans_barrier : Gpu_isa.Program.t -> bool

(** Per-warp store traces in issue order, keyed and sorted by
    (CTA, warp) — the shape produced by [Gpu_sim.Stats.store_traces]. *)
type store_trace = ((int * int) * (Gpu_isa.Instr.space * int * int) list) list

(** [diff_store_traces ~expected ~actual] compares two runs' memory
    effects and describes the first divergence ([None] = identical).
    Register-state equality at exit is insufficient for semantic
    equivalence — a transformed kernel can clobber a register after its
    last store yet still have written the wrong values — so the
    differential oracle and the transform tests compare what each warp
    actually wrote, in order. *)
val diff_store_traces :
  expected:store_trace -> actual:store_trace -> string option

(** Lane-resolved store traces, keyed and sorted by (CTA, warp, lane) —
    the shape produced by [Gpu_sim.Stats.lane_store_traces] under SIMT
    execution. *)
type lane_store_trace =
  ((int * int * int) * (Gpu_isa.Instr.space * int * int) list) list

(** Lane-resolved {!diff_store_traces}: strictly stronger — a fault that
    perturbs only some lanes (a corrupted active mask, a predication bug)
    shows up here even when the warp-level trace, which records the lowest
    active lane, is untouched. *)
val diff_lane_store_traces :
  expected:lane_store_trace -> actual:lane_store_trace -> string option
