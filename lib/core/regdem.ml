module Instr = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Regset = Gpu_isa.Regset
module Liveness = Gpu_analysis.Liveness
module Kernel = Gpu_sim.Kernel
module Policy = Gpu_sim.Policy

exception Unsound of string

type plan = {
  original : Gpu_isa.Program.t;
  transformed : Gpu_isa.Program.t;
  keep : int;
  scratch : int;
  allocated : int;
  demoted : int;
  wpc : int;
  spill_words : int;
  n_spills : int;
  n_fills : int;
}

type candidate = {
  c_keep : int;
  c_scratch : int;
  c_allocated : int;
  c_demoted : int;
  c_spill_words : int;
  c_shmem_bytes : int;
  c_warps : int;
  c_static_spills : int;
  c_static_fills : int;
}

type choice = {
  baseline_warps : int;
  candidates : candidate list;
  best : candidate option;
}

(* The per-CTA spill window: one 32-bit word per (demoted register, warp)
   pair, laid out register-major so a warp's slot for demoted register [j]
   is [j * wpc + warp_id]. The enlarged allocation keeps the user's window
   in front — sized [max 1 (orig / 4)] words exactly as a plain launch
   would allocate it, so user accesses wrap identically with or without
   the pass. *)
let user_words kernel = max 1 (kernel.Kernel.shmem_bytes / 4)

let shmem_bytes_with_window kernel ~spill_words =
  4 * (user_words kernel + spill_words)

(* Static spill profile of a program whose registers [>= keep] are the
   demotion set: per-instruction distinct demoted references bound the
   scratch registers needed, demoted uses become fills, demoted defs
   become spill stores. *)
let scan ~keep prog =
  let scratch = ref 0 and fills = ref 0 and spills = ref 0 in
  for i = 0 to Program.length prog - 1 do
    let instr = Program.get prog i in
    let hot s = Regset.cardinal (Regset.above keep s) in
    scratch := max !scratch (hot (Instr.regs instr));
    fills := !fills + hot (Instr.uses instr);
    spills := !spills + hot (Instr.defs instr)
  done;
  (!scratch, !spills, !fills)

let permute_for ~widen ~keep prog =
  let liveness = Liveness.analyze ~widen prog in
  Compaction.permute prog (Compaction.pressure_ranking ~bs:keep prog liveness)

let candidate_of cfg kernel ~keep ~widen =
  let prog = kernel.Kernel.program in
  let n_regs = prog.Program.n_regs in
  let wpc = Kernel.warps_per_cta cfg kernel in
  let permuted = permute_for ~widen ~keep prog in
  let scratch, static_spills, static_fills = scan ~keep permuted in
  let demoted = n_regs - keep in
  let allocated = keep + scratch in
  let spill_words = demoted * wpc in
  let shmem_bytes = shmem_bytes_with_window kernel ~spill_words in
  let capacity =
    Gpu_sim.Sm.cta_capacity_for cfg
      ~policy:(Policy.Regdem { regs_per_thread = allocated; spill_words })
      ~kernel:(Kernel.with_shmem_bytes kernel shmem_bytes)
  in
  {
    c_keep = keep;
    c_scratch = scratch;
    c_allocated = allocated;
    c_demoted = demoted;
    c_spill_words = spill_words;
    c_shmem_bytes = shmem_bytes;
    c_warps = capacity * wpc;
    c_static_spills = static_spills;
    c_static_fills = static_fills;
  }

let baseline_warps cfg kernel =
  let wpc = Kernel.warps_per_cta cfg kernel in
  wpc
  * Gpu_sim.Sm.cta_capacity_for cfg
      ~policy:
        (Policy.Static { regs_per_thread = Kernel.regs_per_thread kernel })
      ~kernel

(* Sweep every keep-count below the full register demand, like
   {!Es_heuristic} sweeps |Es| fractions. A candidate is viable only when
   it strictly beats the baseline's resident-warp count — spilling costs
   shared-memory traffic on every demoted access, so occupancy parity is
   not worth it. Among viable candidates the sweep keeps the highest warp
   count and breaks ties toward fewer demotions (higher keep), then fewer
   static fills. *)
let choose ?(widen = true) cfg kernel =
  let n_regs = Kernel.regs_per_thread kernel in
  let base = baseline_warps cfg kernel in
  let candidates =
    List.init (max 0 (n_regs - 1)) (fun i ->
        candidate_of cfg kernel ~keep:(n_regs - 1 - i) ~widen)
  in
  let better a b =
    a.c_warps > b.c_warps
    || (a.c_warps = b.c_warps
        && (a.c_keep > b.c_keep
            || (a.c_keep = b.c_keep && a.c_static_fills < b.c_static_fills)))
  in
  let best =
    List.fold_left
      (fun acc c ->
        if c.c_warps <= base then acc
        else
          match acc with
          | Some b when better b c -> acc
          | _ -> Some c)
      None candidates
  in
  { baseline_warps = base; candidates; best }

(* --- the demotion transform ------------------------------------------ *)

(* Expand each instruction into
     [fills for demoted uses] @ [instr with demoted regs -> scratch]
     @ [spill stores for demoted defs]
   and retarget every branch to the head of its target's group, so a jump
   into an instruction executes that instruction's fills first. Spill
   stores only ever follow fall-through instructions (branches define no
   registers), so no group's tail can be skipped by its own control flow.
   [Program.insert_before] is not usable here: the spill store belongs
   *after* the rewritten instruction, inside its group. *)
let expand ~keep ~wpc prog =
  let n = Program.length prog in
  let demoted_of set = Regset.to_list (Regset.above keep set) in
  let slot_ofs d = (d - keep) * wpc in
  let groups =
    Array.init n (fun i ->
        let instr = Program.get prog i in
        let hot = demoted_of (Instr.regs instr) in
        if hot = [] then [ instr ]
        else begin
          (* Scratch slot for each distinct demoted register, in ascending
             register order. *)
          let slot d =
            let rec idx j = function
              | [] -> invalid_arg "Regdem.expand: unmapped demoted register"
              | r :: tl -> if r = d then keep + j else idx (j + 1) tl
            in
            idx 0 hot
          in
          let fills =
            List.map
              (fun d ->
                Instr.Load (Instr.Spill, slot d, Instr.Special Instr.Warp_id,
                            slot_ofs d))
              (demoted_of (Instr.uses instr))
          in
          let spills =
            List.map
              (fun d ->
                Instr.Store (Instr.Spill, Instr.Special Instr.Warp_id,
                             Instr.Reg (slot d), slot_ofs d))
              (demoted_of (Instr.defs instr))
          in
          let rewritten =
            Instr.map_regs (fun r -> if r >= keep then slot r else r) instr
          in
          fills @ [ rewritten ] @ spills
        end)
  in
  let starts = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i g ->
      starts.(i) <- !total;
      total := !total + List.length g)
    groups;
  let body = Array.make !total Instr.Exit in
  Array.iteri
    (fun i g ->
      List.iteri
        (fun j instr ->
          body.(starts.(i) + j) <- Instr.map_target (fun t -> starts.(t)) instr)
        g)
    groups;
  Program.create ~name:prog.Program.name body

(* Static soundness check: the transformed program must stay inside its
   reduced register allocation and its spill window. A violation is a bug
   in this pass, mirroring {!Transform.Unsound}. *)
let check_plan plan =
  let p = plan.transformed in
  for i = 0 to Program.length p - 1 do
    let instr = Program.get p i in
    let rs = Instr.regs instr in
    if (not (Regset.is_empty rs)) && Regset.max_elt rs >= plan.allocated then
      raise
        (Unsound
           (Printf.sprintf "instruction %d references r%d beyond allocation %d"
              i (Regset.max_elt rs) plan.allocated));
    match instr with
    | Instr.Load (Instr.Spill, _, _, ofs) | Instr.Store (Instr.Spill, _, _, ofs)
      ->
        if ofs < 0 || ofs + plan.wpc > plan.spill_words then
          raise
            (Unsound
               (Printf.sprintf
                  "instruction %d spill offset %d outside window of %d words" i
                  ofs plan.spill_words))
    | _ -> ()
  done

let transform ?(widen = true) ~keep ~wpc prog =
  let n_regs = prog.Program.n_regs in
  if keep < 1 || keep >= n_regs then
    invalid_arg "Regdem.transform: keep must be in [1, n_regs)";
  if wpc < 1 then invalid_arg "Regdem.transform: wpc must be positive";
  let permuted = permute_for ~widen ~keep prog in
  let scratch, n_spills, n_fills = scan ~keep permuted in
  let transformed = expand ~keep ~wpc permuted in
  let demoted = n_regs - keep in
  let plan =
    {
      original = prog;
      transformed;
      keep;
      scratch;
      allocated = keep + scratch;
      demoted;
      wpc;
      spill_words = demoted * wpc;
      n_spills;
      n_fills;
    }
  in
  check_plan plan;
  plan

let pp_candidate ppf c =
  Format.fprintf ppf
    "keep=%d (+%d scratch) demote=%d -> %d warps, %dB shmem, %d spills/%d fills"
    c.c_keep c.c_scratch c.c_demoted c.c_warps c.c_shmem_bytes c.c_static_spills
    c.c_static_fills

let pp_plan ppf p =
  Format.fprintf ppf
    "regdem: keep %d of %d regs (+%d scratch), %d demoted, window %d words, %d \
     static spills, %d static fills"
    p.keep p.original.Program.n_regs p.scratch p.demoted p.spill_words p.n_spills
    p.n_fills
