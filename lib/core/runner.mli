(** One-stop execution of a kernel under a technique: compile-time
    preparation, simulation, and the derived metrics the paper's figures
    report. *)

type run = {
  technique : Technique.t;
  kernel_name : string;
  cycles : int;
  instructions : int;
  theoretical_warps : int;
  theoretical_occupancy : float;  (** warps / max warps, per §II *)
  achieved_occupancy : float;     (** resident-warp integral over the run *)
  acquire_ratio : float;          (** successful acquires / acquire instrs *)
  srp_sections : int;
  stats : Gpu_sim.Stats.t;
  prepared : Technique.prepared;
}

(** [execute ?fast_forward cfg technique kernel] prepares and simulates.
    [fast_forward] (default [true]) selects event-driven cycle skipping in
    the simulator; it is semantics-preserving, so the resulting [run] (and
    its {!fingerprint}) is identical either way — [false] exists as the
    brute-force reference for the equivalence suite and benchmarks.
    [corrupt_mask] (default [0]) clears lanes from every warp's initial
    active mask — the fuzz oracle's fault-injection hook for its
    per-lane-trace self-test; meaningful only with [options.simt]. *)
val execute :
  ?options:Technique.options ->
  ?record_stores:bool ->
  ?trace_warp0:bool ->
  ?max_cycles:int ->
  ?fast_forward:bool ->
  ?corrupt_mask:int ->
  ?telemetry:Telemetry.Sink.t ->
  Gpu_uarch.Arch_config.t ->
  Technique.t ->
  Gpu_sim.Kernel.t ->
  run

(** Stable digest of the metrics the figures read. Identical for two runs
    of the same configuration regardless of which domain or process
    simulated them — the experiment engine compares these in its
    determinism checks. *)
val fingerprint : run -> string

(** [(baseline - run) / baseline × 100] — positive is faster (Figures 7,
    9a, 10, 12a). *)
val reduction_pct : baseline:run -> run -> float

(** [(run - baseline) / baseline × 100] — positive is slower (Figures 8,
    9b, 12b). *)
val increase_pct : baseline:run -> run -> float

val pp : Format.formatter -> run -> unit
