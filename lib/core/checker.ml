module Program = Gpu_isa.Program
module Instr = Gpu_isa.Instr
module Regset = Gpu_isa.Regset
module Liveness = Gpu_analysis.Liveness
module Cfg = Gpu_analysis.Cfg

type violation = {
  pc : int;
  message : string;
}

(* Acquire-state lattice: Bot < Held, Free < Top. *)
type state = Bot | Held | Free | Top

let meet a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Held, Held -> Held
  | Free, Free -> Free
  | Held, Free | Free, Held | Top, _ | _, Top -> Top

let transfer instr state =
  match instr with
  | Instr.Acquire -> Held
  | Instr.Release -> Free
  | _ -> state

let acquire_states prog =
  let n = Program.length prog in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- i :: preds.(s)) (Cfg.instr_succs prog i)
  done;
  let state_in = Array.make n Bot in
  let state_out = Array.make n Bot in
  state_in.(0) <- Free;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let inn =
        if i = 0 then
          List.fold_left (fun acc p -> meet acc state_out.(p)) Free preds.(i)
        else
          List.fold_left (fun acc p -> meet acc state_out.(p)) Bot preds.(i)
      in
      let out = transfer (Program.get prog i) inn in
      if inn <> state_in.(i) || out <> state_out.(i) then begin
        state_in.(i) <- inn;
        state_out.(i) <- out;
        changed := true
      end
    done
  done;
  (state_in, state_out)

let acquire_spans_barrier prog =
  let state_in, _ = acquire_states prog in
  let spans = ref false in
  for i = 0 to Program.length prog - 1 do
    match (Program.get prog i, state_in.(i)) with
    | Instr.Bar, (Held | Top) -> spans := true
    | _ -> ()
  done;
  !spans

let check ~bs ~es prog =
  let n = Program.length prog in
  let state_in, state_out = acquire_states prog in
  let liveness = Liveness.analyze ~widen:true prog in
  let violations = ref [] in
  let report pc fmt = Format.kasprintf (fun message -> violations := { pc; message } :: !violations) fmt in
  for i = 0 to n - 1 do
    let instr = Program.get prog i in
    let refs = Instr.regs instr in
    let top_ref = if Regset.is_empty refs then -1 else Regset.max_elt refs in
    if top_ref >= bs + es then
      report i "references r%d beyond |Bs|+|Es| = %d" top_ref (bs + es);
    if top_ref >= bs then begin
      match state_in.(i) with
      | Held -> ()
      | Free -> report i "references extended register r%d while the set is free" top_ref
      | Top -> report i "references extended register r%d with path-dependent acquire state" top_ref
      | Bot -> ()  (* unreachable code *)
    end;
    (* When the set may be free after this instruction, no extended
       register may carry a live value. *)
    (match state_out.(i) with
    | Free | Top ->
        let high = Regset.above bs liveness.Liveness.live_out.(i) in
        if not (Regset.is_empty high) then
          report i "extended registers %a live while the set may be free" Regset.pp high
    | Held | Bot -> ())
  done;
  List.rev !violations

let pp_violation ppf v = Format.fprintf ppf "pc %d: %s" v.pc v.message

(* --- dynamic store-trace comparison ---------------------------------- *)

type store_trace = ((int * int) * (Instr.space * int * int) list) list

let space_name = Instr.space_name

let pp_store (sp, addr, v) =
  Printf.sprintf "st.%s [0x%x] = %d" (space_name sp) addr v

let diff_store_traces ~expected ~actual =
  (* Both sides come from [Stats.store_traces], sorted by (CTA, warp);
     walk them in lockstep and report the first divergence. *)
  let rec diff_stores (cta, warp) i es as_ =
    match (es, as_) with
    | [], [] -> None
    | e :: es', a :: as' ->
        if e = a then diff_stores (cta, warp) (i + 1) es' as'
        else
          Some
            (Printf.sprintf "cta %d warp %d store #%d: expected %s, got %s" cta
               warp i (pp_store e) (pp_store a))
    | e :: _, [] ->
        Some
          (Printf.sprintf
             "cta %d warp %d: trace ends after %d stores, expected %s next" cta
             warp i (pp_store e))
    | [], a :: _ ->
        Some
          (Printf.sprintf "cta %d warp %d: %d extra stores starting with %s" cta
             warp (List.length as_) (pp_store a))
  in
  let rec go es as_ =
    match (es, as_) with
    | [], [] -> None
    | (ke, se) :: es', (ka, sa) :: as' ->
        if ke < ka then
          Some
            (Printf.sprintf "cta %d warp %d stored nothing (expected %d stores)"
               (fst ke) (snd ke) (List.length se))
        else if ka < ke then
          Some
            (Printf.sprintf "cta %d warp %d stored %d times unexpectedly"
               (fst ka) (snd ka) (List.length sa))
        else (
          match diff_stores ke 0 se sa with
          | None -> go es' as'
          | Some _ as d -> d)
    | (ke, se) :: _, [] ->
        Some
          (Printf.sprintf "cta %d warp %d stored nothing (expected %d stores)"
             (fst ke) (snd ke) (List.length se))
    | [], (ka, sa) :: _ ->
        Some
          (Printf.sprintf "cta %d warp %d stored %d times unexpectedly" (fst ka)
             (snd ka) (List.length sa))
  in
  go expected actual

type lane_store_trace = ((int * int * int) * (Instr.space * int * int) list) list

(* Lane-resolved variant, keyed (CTA, warp, lane): strictly finer than the
   warp-level diff — a fault confined to some lanes (e.g. a corrupted
   active mask) perturbs a lane's trace even when the warp-level trace
   (the lowest active lane's stores) is untouched. *)
let diff_lane_store_traces ~expected ~actual =
  let key (cta, warp, lane) = Printf.sprintf "cta %d warp %d lane %d" cta warp lane in
  let rec diff_stores k i es as_ =
    match (es, as_) with
    | [], [] -> None
    | e :: es', a :: as' ->
        if e = a then diff_stores k (i + 1) es' as'
        else
          Some
            (Printf.sprintf "%s store #%d: expected %s, got %s" (key k) i
               (pp_store e) (pp_store a))
    | e :: _, [] ->
        Some
          (Printf.sprintf "%s: trace ends after %d stores, expected %s next"
             (key k) i (pp_store e))
    | [], a :: _ ->
        Some
          (Printf.sprintf "%s: %d extra stores starting with %s" (key k)
             (List.length as_) (pp_store a))
  in
  let rec go es as_ =
    match (es, as_) with
    | [], [] -> None
    | (ke, se) :: es', (ka, sa) :: as' ->
        if ke < ka then
          Some
            (Printf.sprintf "%s stored nothing (expected %d stores)" (key ke)
               (List.length se))
        else if ka < ke then
          Some
            (Printf.sprintf "%s stored %d times unexpectedly" (key ka)
               (List.length sa))
        else (
          match diff_stores ke 0 se sa with
          | None -> go es' as'
          | Some _ as d -> d)
    | (ke, se) :: _, [] ->
        Some
          (Printf.sprintf "%s stored nothing (expected %d stores)" (key ke)
             (List.length se))
    | [], (ka, sa) :: _ ->
        Some
          (Printf.sprintf "%s stored %d times unexpectedly" (key ka)
             (List.length sa))
  in
  go expected actual
