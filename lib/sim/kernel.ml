type t = {
  name : string;
  program : Gpu_isa.Program.t;
  grid_ctas : int;
  cta_threads : int;
  shmem_bytes : int;
  params : int array;
}

let check_program program =
  if program.Gpu_isa.Program.n_regs < 1 then
    invalid_arg "Kernel.make: program references no registers (n_regs = 0)"

let make ?(shmem_bytes = 0) ?(params = [||]) ~name ~grid_ctas ~cta_threads program =
  if grid_ctas <= 0 then invalid_arg "Kernel.make: empty grid";
  if cta_threads <= 0 then invalid_arg "Kernel.make: empty CTA";
  check_program program;
  { name; program; grid_ctas; cta_threads; shmem_bytes; params }

let regs_per_thread t = t.program.Gpu_isa.Program.n_regs

let warps_per_cta (cfg : Gpu_uarch.Arch_config.t) t =
  (t.cta_threads + cfg.warp_size - 1) / cfg.warp_size

let demand t =
  {
    Gpu_uarch.Occupancy.regs_per_thread = regs_per_thread t;
    shmem_bytes = t.shmem_bytes;
    cta_threads = t.cta_threads;
  }

let with_program t program =
  check_program program;
  { t with program }

let with_shmem_bytes t shmem_bytes =
  if shmem_bytes < 0 then invalid_arg "Kernel.with_shmem_bytes: negative size";
  { t with shmem_bytes }
