type stall_reason =
  | Stall_deps
  | Stall_mem_slot
  | Stall_acquire
  | Stall_regs
  | Stall_barrier
  | Stall_empty
  | Stall_mem_retry

type t = {
  mutable cycles : int;
  mutable instructions : int;
  mutable resident_warp_cycles : int;
  mutable warp_capacity_cycles : int;
  mutable acquire_execs : int;
  mutable acquire_first_try : int;
  mutable acquire_stall_cycles : int;
  mutable release_execs : int;
  mutable shared_oob : int;
  mutable spill_stores : int;
  mutable fill_loads : int;
  mutable rf_reads : int;
  mutable rf_writes : int;
  mutable shared_reads : int;
  mutable shared_writes : int;
  mutable active_lane_cycles : int;
  mutable predicated_lane_cycles : int;
  mutable divergent_branches : int;
  stall_cycles : int array;
  mutable ctas_retired : int;
  mutable timed_out : bool;
  mutable pc_trace : int list;
  stores : (int * int, (Gpu_isa.Instr.space * int * int) list ref) Hashtbl.t;
  lane_stores :
    (int * int * int, (Gpu_isa.Instr.space * int * int) list ref) Hashtbl.t;
  warp_instructions : (int * int, int) Hashtbl.t;
}

let all_reasons =
  [ Stall_deps; Stall_mem_slot; Stall_acquire; Stall_regs; Stall_barrier;
    Stall_empty; Stall_mem_retry ]

(* Dense index for the counter array; bumping a stall counter is on the
   per-cycle path of every idle scheduler slot, so the lookup must not be
   an assoc-list walk (polymorphic compares dominated the profile). *)
let reason_index = function
  | Stall_deps -> 0
  | Stall_mem_slot -> 1
  | Stall_acquire -> 2
  | Stall_regs -> 3
  | Stall_barrier -> 4
  | Stall_empty -> 5
  | Stall_mem_retry -> 6

let n_reasons = 7

let create () =
  {
    cycles = 0;
    instructions = 0;
    resident_warp_cycles = 0;
    warp_capacity_cycles = 0;
    acquire_execs = 0;
    acquire_first_try = 0;
    acquire_stall_cycles = 0;
    release_execs = 0;
    shared_oob = 0;
    spill_stores = 0;
    fill_loads = 0;
    rf_reads = 0;
    rf_writes = 0;
    shared_reads = 0;
    shared_writes = 0;
    active_lane_cycles = 0;
    predicated_lane_cycles = 0;
    divergent_branches = 0;
    stall_cycles = Array.make n_reasons 0;
    ctas_retired = 0;
    timed_out = false;
    pc_trace = [];
    stores = Hashtbl.create 64;
    lane_stores = Hashtbl.create 64;
    warp_instructions = Hashtbl.create 64;
  }

let bump_stall t reason =
  let i = reason_index reason in
  t.stall_cycles.(i) <- t.stall_cycles.(i) + 1

let bump_stall_by t reason n =
  let i = reason_index reason in
  t.stall_cycles.(i) <- t.stall_cycles.(i) + n

let stall_count t reason = t.stall_cycles.(reason_index reason)

let achieved_occupancy t =
  if t.warp_capacity_cycles = 0 then 0.
  else float_of_int t.resident_warp_cycles /. float_of_int t.warp_capacity_cycles

let ipc t =
  if t.cycles = 0 then 0. else float_of_int t.instructions /. float_of_int t.cycles

let acquire_success_ratio t =
  if t.acquire_execs = 0 then 1.
  else float_of_int t.acquire_first_try /. float_of_int t.acquire_execs

let trace t = Array.of_list (List.rev t.pc_trace)

let record_store t ~cta ~warp space addr value =
  let key = (cta, warp) in
  let cell =
    match Hashtbl.find_opt t.stores key with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add t.stores key c;
        c
  in
  cell := (space, addr, value) :: !cell

let record_lane_store t ~cta ~warp ~lane space addr value =
  let key = (cta, warp, lane) in
  let cell =
    match Hashtbl.find_opt t.lane_stores key with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add t.lane_stores key c;
        c
  in
  cell := (space, addr, value) :: !cell

let lane_store_traces t =
  Hashtbl.fold (fun key cell acc -> (key, List.rev !cell) :: acc) t.lane_stores []
  |> List.sort compare

let record_warp_done t ~cta ~warp ~instructions =
  Hashtbl.replace t.warp_instructions (cta, warp) instructions

let warp_instruction_counts t =
  Hashtbl.fold (fun key n acc -> (key, n) :: acc) t.warp_instructions []
  |> List.sort compare

let store_traces t =
  Hashtbl.fold (fun key cell acc -> ((key, List.rev !cell)) :: acc) t.stores []
  |> List.sort compare

let reason_name = function
  | Stall_deps -> "deps"
  | Stall_mem_slot -> "mem-slot"
  | Stall_acquire -> "acquire"
  | Stall_regs -> "rfv-regs"
  | Stall_barrier -> "barrier"
  | Stall_empty -> "empty"
  | Stall_mem_retry -> "mem-retry"

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles=%d instrs=%d ipc=%.2f occupancy=%.1f%% ctas=%d%s@,\
     acquires=%d (first-try %.0f%%) releases=%d acquire-stall=%d@,"
    t.cycles t.instructions (ipc t)
    (100. *. achieved_occupancy t)
    t.ctas_retired
    (if t.timed_out then " TIMED-OUT" else "")
    t.acquire_execs
    (100. *. acquire_success_ratio t)
    t.release_execs t.acquire_stall_cycles;
  if t.shared_oob > 0 then
    Format.fprintf ppf "shared-oob=%d@," t.shared_oob;
  if t.spill_stores > 0 || t.fill_loads > 0 then
    Format.fprintf ppf "spills=%d fills=%d@," t.spill_stores t.fill_loads;
  Format.fprintf ppf "rf-reads=%d rf-writes=%d shared-reads=%d shared-writes=%d@,"
    t.rf_reads t.rf_writes t.shared_reads t.shared_writes;
  if t.predicated_lane_cycles > 0 || t.divergent_branches > 0 then
    Format.fprintf ppf
      "lanes: active=%d predicated-off=%d divergent-branches=%d@,"
      t.active_lane_cycles t.predicated_lane_cycles t.divergent_branches;
  List.iter
    (fun r ->
      let c = stall_count t r in
      if c > 0 then Format.fprintf ppf "stall[%s]=%d@," (reason_name r) c)
    all_reasons;
  Format.fprintf ppf "@]"
