type t = {
  lat_global : int;
  dram_interval : float;
  slots : int array array;    (* per SM: busy-until cycle per slot *)
  min_slot : int array;       (* per SM: index of the slot with the smallest
                                 busy-until — free iff any slot is free, and
                                 its value is the SM's earliest completion *)
  mutable dram_free : float;  (* earliest cycle the service channel is free *)
  mutable issued : int;
  mutable total_latency : int;
}

let create (cfg : Gpu_uarch.Arch_config.t) ~n_sms =
  {
    lat_global = cfg.lat_global;
    dram_interval = cfg.dram_interval;
    slots = Array.init n_sms (fun _ -> Array.make cfg.mem_slots 0);
    min_slot = Array.make n_sms 0;
    dram_free = 0.;
    issued = 0;
    total_latency = 0;
  }

let refresh_min_slot t ~sm =
  let slots = t.slots.(sm) in
  let best = ref 0 in
  for i = 1 to Array.length slots - 1 do
    if slots.(i) < slots.(!best) then best := i
  done;
  t.min_slot.(sm) <- !best

(* Which free slot a request claims is unobservable (slots are symmetric and
   their indices never escape), so the common-path queries read the cached
   minimum instead of rescanning the array. *)
let slot_free t ~sm ~cycle = t.slots.(sm).(t.min_slot.(sm)) <= cycle

let find_slot t ~sm ~cycle =
  let i = t.min_slot.(sm) in
  if t.slots.(sm).(i) <= cycle then Some i else None

let next_completion t ~sm = t.slots.(sm).(t.min_slot.(sm))

let issue_global t ~sm ~cycle =
  match find_slot t ~sm ~cycle with
  | None -> `No_slot
  | Some i ->
      let start = Float.max (float_of_int cycle) t.dram_free in
      let completion = int_of_float (Float.ceil start) + t.lat_global in
      t.dram_free <- start +. t.dram_interval;
      t.slots.(sm).(i) <- completion;
      refresh_min_slot t ~sm;
      t.issued <- t.issued + 1;
      t.total_latency <- t.total_latency + (completion - cycle);
      `Completion completion

let busy_slots t ~sm ~cycle =
  Array.fold_left (fun acc b -> if b > cycle then acc + 1 else acc) 0 t.slots.(sm)

let issued t = t.issued

let mean_latency t =
  if t.issued = 0 then 0. else float_of_int t.total_latency /. float_of_int t.issued
