(** One streaming multiprocessor: resident CTAs/warps, warp schedulers,
    barrier bookkeeping and policy enforcement (baseline, RegMutex SRP,
    paired-warps, OWF, RFV). *)

(** Raised in verification mode when a transformed program accesses an
    extended-set register without holding an SRP section, or any register
    beyond [|Bs| + |Es|] — i.e. the compiler pass emitted unsound code. *)
exception Verification_failure of string

type t

(** [simt] switches on per-thread (SIMT) execution: lane-resolved register
    values, predicated execution under an active-lane mask, and an
    immediate-post-dominator reconvergence stack per warp slot. Timing
    stays warp-granular, so a warp-uniform program runs bit-identically in
    both models. [corrupt_mask] clears the given lanes from every warp's
    initial active mask — a fault-injection hook for the fuzz oracle's
    per-lane-trace self-test (never set in normal runs). *)
val create :
  ?events:Event_trace.t ->
  ?telemetry:Telemetry.Sink.t ->
  ?simt:bool ->
  ?corrupt_mask:int ->
  Gpu_uarch.Arch_config.t ->
  sm_id:int ->
  policy:Policy.t ->
  kernel:Kernel.t ->
  memory:Memory.t ->
  mem_sys:Mem_system.t ->
  stats:Stats.t ->
  record_stores:bool ->
  trace_warp0:bool ->
  t

(** Resident-CTA capacity under the policy's resource accounting. *)
val cta_capacity : t -> int

(** [cta_capacity_for cfg ~policy ~kernel] — the same computation without
    building an SM (used by compile-time decisions, e.g. whether OWF
    sharing raises occupancy at all). *)
val cta_capacity_for :
  Gpu_uarch.Arch_config.t -> policy:Policy.t -> kernel:Kernel.t -> int

(** Usable SRP sections (0 for non-SRP policies). *)
val srp_sections : t -> int

val resident_ctas : t -> int
val resident_warps : t -> int
val retired_ctas : t -> int

(** SRP sections currently acquired (0 for non-SRP policies). *)
val srp_in_use : t -> int

(** [try_launch t ~global_cta ~cycle] places a CTA if a slot and resources
    are free; returns [true] on success. At most one launch per cycle is
    attempted by the driver. *)
val try_launch : t -> global_cta:int -> cycle:int -> bool

(** Can a CTA be placed right now (free slot and, under RFV, admissible
    register demand)? Pure; the fast-forward driver uses it to decide
    whether CTA dispatch bounds the clock jump. *)
val can_launch : t -> bool

(** Advance one cycle: every scheduler issues at most one instruction. *)
val step : t -> cycle:int -> unit

(** Attribute an idle scheduler slot to the most specific blockage among
    the resident warps. Pure observation: probing never mutates warp
    state, statistics, or the event trace, no matter how many idle
    schedulers classify the same cycle. *)
val classify_idle : t -> cycle:int -> Stats.stall_reason

(** [idle_summary t ~cycle] is {!classify_idle} plus the SM's min-wakeup
    cycle: the earliest future cycle at which any resident warp's issue
    eligibility (or classification) could change while no instruction
    issues anywhere — scoreboard completions ([Warp.ready_at]) and memory
    slot completions. Stalls that only another warp's issue can end
    (acquire, RFV registers, barriers) contribute no bound; [max_int]
    means "asleep until an external event". Pure observation. *)
val idle_summary : t -> cycle:int -> Stats.stall_reason * int

(** [account_idle_span t ~from ~reason ~span] records [span] fully idle
    cycles starting at [from] at once: per skipped cycle, every scheduler
    bumps [reason] (and the acquire-stall counter when applicable) exactly
    as per-cycle stepping would have, and the telemetry probe's open stall
    episode extends over the span. No-op when the SM has no resident
    warps. *)
val account_idle_span :
  t -> from:int -> reason:Stats.stall_reason -> span:int -> unit

(** Close the telemetry probe's open spans at the run's final cycle (the
    GPU driver calls this once after the main loop). No-op without a
    telemetry sink. *)
val finalize_probe : t -> cycle:int -> unit

(** Per-warp snapshot for deadlock diagnostics: who is stuck where, on
    what, and whether it holds an extended set. *)
type warp_diag = {
  d_cta : int;            (** global CTA index *)
  d_warp : int;           (** warp within the CTA *)
  d_pc : int;
  d_status : Warp.status;
  d_block : Stats.stall_reason;  (** why the warp cannot issue right now *)
  d_ready_at : int;       (** scoreboard bound; [max_int] = no bound *)
  d_holds_ext : bool;     (** holds an SRP section / pair set / OWF regs *)
  d_held_section : int option;
      (** which SRP section (or pair index) the warp holds, so deadlock
          reports name the holder, not just the waiter *)
  d_held_cycles : int;
      (** how long the section has been held ([Warp.acquired_at] based);
          [0] when nothing is held *)
}

(** Snapshot of every non-exited resident warp, in slot order. Pure
    observation ({!check_warp} probing). *)
val diagnose : t -> cycle:int -> warp_diag list

val pp_warp_diag : Format.formatter -> warp_diag -> unit

(** SRP conservation cross-check, for the fuzz oracle: [None] for
    policies without an acquire pool; [Some (Ok (in_use, free, total))]
    when the accounting is consistent ([in_use + free = total] and, for
    the full SRP engine, the status/bitmask/LUT structures agree);
    [Some (Error msg)] otherwise. *)
val srp_invariant : t -> (int * int * int, string) result option
