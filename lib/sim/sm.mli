(** One streaming multiprocessor: resident CTAs/warps, warp schedulers,
    barrier bookkeeping and policy enforcement (baseline, RegMutex SRP,
    paired-warps, OWF, RFV). *)

(** Raised in verification mode when a transformed program accesses an
    extended-set register without holding an SRP section, or any register
    beyond [|Bs| + |Es|] — i.e. the compiler pass emitted unsound code. *)
exception Verification_failure of string

type t

val create :
  ?events:Event_trace.t ->
  Gpu_uarch.Arch_config.t ->
  sm_id:int ->
  policy:Policy.t ->
  kernel:Kernel.t ->
  memory:Memory.t ->
  mem_sys:Mem_system.t ->
  stats:Stats.t ->
  record_stores:bool ->
  trace_warp0:bool ->
  t

(** Resident-CTA capacity under the policy's resource accounting. *)
val cta_capacity : t -> int

(** [cta_capacity_for cfg ~policy ~kernel] — the same computation without
    building an SM (used by compile-time decisions, e.g. whether OWF
    sharing raises occupancy at all). *)
val cta_capacity_for :
  Gpu_uarch.Arch_config.t -> policy:Policy.t -> kernel:Kernel.t -> int

(** Usable SRP sections (0 for non-SRP policies). *)
val srp_sections : t -> int

val resident_ctas : t -> int
val resident_warps : t -> int
val retired_ctas : t -> int

(** SRP sections currently acquired (0 for non-SRP policies). *)
val srp_in_use : t -> int

(** [try_launch t ~global_cta ~cycle] places a CTA if a slot and resources
    are free; returns [true] on success. At most one launch per cycle is
    attempted by the driver. *)
val try_launch : t -> global_cta:int -> cycle:int -> bool

(** Advance one cycle: every scheduler issues at most one instruction. *)
val step : t -> cycle:int -> unit

(** Attribute an idle scheduler slot to the most specific blockage among
    the resident warps. Pure observation: probing never mutates warp
    state, statistics, or the event trace, no matter how many idle
    schedulers classify the same cycle. *)
val classify_idle : t -> cycle:int -> Stats.stall_reason
