(** Global-memory timing model.

    Two levels of contention shape the latency of a global access:

    - per-SM in-flight slots (an MSHR-like cap) bound how many accesses an
      SM can have outstanding — a structural stall when exhausted;
    - a GPU-wide service channel completes at most one request every
      [dram_interval] cycles — requests queue behind each other, so latency
      grows once the aggregate demand saturates DRAM.

    This reproduces the first-order behaviour RegMutex leans on: extra
    resident warps hide latency until bandwidth saturates. *)

type t

val create : Gpu_uarch.Arch_config.t -> n_sms:int -> t

(** [slot_free t ~sm ~cycle] — can SM [sm] start a global access now?
    O(1): the free-slot summary is maintained at issue time rather than
    rescanned per query. *)
val slot_free : t -> sm:int -> cycle:int -> bool

(** [next_completion t ~sm] — the earliest busy-until cycle over SM [sm]'s
    slots. When no slot is free this is the cycle the first one frees up;
    the fast-forward wakeup layer jumps the clock to it. *)
val next_completion : t -> sm:int -> int

(** [issue_global t ~sm ~cycle] claims a slot and returns its completion
    cycle, or [`No_slot] when every slot is busy — structured
    back-pressure the issue stage turns into a re-stall of the warp
    (rather than a crash), even though schedulers normally consult
    {!slot_free} first. *)
val issue_global :
  t -> sm:int -> cycle:int -> [ `Completion of int | `No_slot ]

(** [busy_slots t ~sm ~cycle] — how many of SM [sm]'s slots are in flight
    at [cycle]. O(slots) scan; only the telemetry probe reads it. *)
val busy_slots : t -> sm:int -> cycle:int -> int

(** Requests issued so far. *)
val issued : t -> int

(** Average latency of issued requests. *)
val mean_latency : t -> float
