type status = Ready | At_barrier | Done

module Soa = struct
  let st_ready = 0
  let st_barrier = 1
  let st_done = 2
  let st_absent = 3

  type t = {
    n_slots : int;
    n_regs : int;
    status : int array;
    pc : int array;
    ready_at : int array;
    age : int array;
    key : int array;
    acquire_stalled : int array;
    acquired_at : int array;
    owns_ext : int array;
    partner : int array;
    rfv_alloc : int array;
    issued : int array;
    global_cta : int array;
    warp_in_cta : int array;
    cta_slot : int array;
    regs : int array array;
    reg_ready : int array array;
  }

  let create ~n_slots ~n_regs =
    if n_slots < 1 then invalid_arg "Warp.Soa.create: n_slots must be >= 1";
    if n_regs < 1 then invalid_arg "Warp.Soa.create: n_regs must be >= 1";
    {
      n_slots;
      n_regs;
      status = Array.make n_slots st_absent;
      pc = Array.make n_slots 0;
      ready_at = Array.make n_slots 0;
      age = Array.make n_slots 0;
      key = Array.make n_slots max_int;
      acquire_stalled = Array.make n_slots 0;
      acquired_at = Array.make n_slots (-1);
      owns_ext = Array.make n_slots 0;
      partner = Array.make n_slots (-1);
      rfv_alloc = Array.make n_slots 0;
      issued = Array.make n_slots 0;
      global_cta = Array.make n_slots (-1);
      warp_in_cta = Array.make n_slots (-1);
      cta_slot = Array.make n_slots (-1);
      regs = Array.init n_slots (fun _ -> Array.make n_regs 0);
      reg_ready = Array.init n_slots (fun _ -> Array.make n_regs 0);
    }

  let resident t slot = t.status.(slot) <> st_absent

  let status_of t slot =
    match t.status.(slot) with
    | 0 -> Ready
    | 1 -> At_barrier
    | 2 -> Done
    | _ -> invalid_arg "Warp.Soa.status_of: no warp resident in slot"

  let launch t ~slot ~cta_slot ~global_cta ~warp_in_cta ~age =
    t.status.(slot) <- st_ready;
    t.pc.(slot) <- 0;
    t.ready_at.(slot) <- 0;
    t.age.(slot) <- age;
    t.acquire_stalled.(slot) <- 0;
    t.acquired_at.(slot) <- -1;
    t.owns_ext.(slot) <- 0;
    t.partner.(slot) <- -1;
    t.rfv_alloc.(slot) <- 0;
    t.issued.(slot) <- 0;
    t.global_cta.(slot) <- global_cta;
    t.warp_in_cta.(slot) <- warp_in_cta;
    t.cta_slot.(slot) <- cta_slot;
    Array.fill t.regs.(slot) 0 t.n_regs 0;
    Array.fill t.reg_ready.(slot) 0 t.n_regs 0

  let retire t ~slot =
    t.status.(slot) <- st_absent;
    t.key.(slot) <- max_int

  let deps_ready t ~slot instr ~cycle =
    let rr = t.reg_ready.(slot) in
    let ready rs = not (Gpu_isa.Regset.exists (fun r -> rr.(r) > cycle) rs) in
    ready (Gpu_isa.Instr.uses instr) && ready (Gpu_isa.Instr.defs instr)

  let refresh_ready_at t ~slot ~touched =
    let rr = t.reg_ready.(slot) in
    let m = ref 0 in
    for i = 0 to Array.length touched - 1 do
      let v = rr.(touched.(i)) in
      if v > !m then m := v
    done;
    t.ready_at.(slot) <- !m
end

type view = {
  slot : int;
  cta_slot : int;
  global_cta : int;
  warp_in_cta : int;
  age : int;
}

let view (soa : Soa.t) slot =
  {
    slot;
    cta_slot = soa.Soa.cta_slot.(slot);
    global_cta = soa.Soa.global_cta.(slot);
    warp_in_cta = soa.Soa.warp_in_cta.(slot);
    age = soa.Soa.age.(slot);
  }
