type status = Ready | At_barrier | Done

type t = {
  slot : int;
  cta_slot : int;
  global_cta : int;
  warp_in_cta : int;
  age : int;
  regs : int array;
  reg_ready : int array;
  mutable pc : int;
  mutable status : status;
  mutable ready_at : int;
  mutable acquire_stalled : bool;
  mutable acquired_at : int;
  mutable owns_ext : bool;
  mutable partner : int;
  mutable rfv_alloc : int;
  mutable issued : int;
}

let create ~slot ~cta_slot ~global_cta ~warp_in_cta ~age ~n_regs =
  {
    slot;
    cta_slot;
    global_cta;
    warp_in_cta;
    age;
    regs = Array.make (max n_regs 1) 0;
    reg_ready = Array.make (max n_regs 1) 0;
    pc = 0;
    status = Ready;
    ready_at = 0;
    acquire_stalled = false;
    acquired_at = -1;
    owns_ext = false;
    partner = -1;
    rfv_alloc = 0;
    issued = 0;
  }

let deps_ready t instr ~cycle =
  let ready rs =
    not (Gpu_isa.Regset.exists (fun r -> t.reg_ready.(r) > cycle) rs)
  in
  ready (Gpu_isa.Instr.uses instr) && ready (Gpu_isa.Instr.defs instr)

let refresh_ready_at t instr =
  let wake rs acc =
    Gpu_isa.Regset.fold (fun r acc -> max acc t.reg_ready.(r)) rs acc
  in
  t.ready_at <-
    wake (Gpu_isa.Instr.defs instr) (wake (Gpu_isa.Instr.uses instr) 0)
