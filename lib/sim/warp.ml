type status = Ready | At_barrier | Done

module Soa = struct
  let st_ready = 0
  let st_barrier = 1
  let st_done = 2
  let st_absent = 3

  (* Per-slot SIMT execution state: a lane-resolved register file and the
     immediate-post-dominator reconvergence stack. The running state is
     the triple (pc.(slot), active.(slot), rpc.(slot)); suspended arms and
     reconvergence continuations live on the stack, deepest scope first.
     Stacks grow by doubling — a divergent loop pushes one continuation
     per diverging iteration. *)
  type simt = {
    lanes : int;
    full_mask : int;
    lane_regs : int array array;  (* slot -> lane-major [lanes * n_regs] *)
    active : int array;           (* slot -> active-lane bitmask *)
    rpc : int array;              (* slot -> current reconvergence pc *)
    stk_pc : int array array;   (* slot -> entry pcs (rows grow by doubling) *)
    stk_rpc : int array array;
    stk_mask : int array array;
    stk_depth : int array;
  }

  type t = {
    n_slots : int;
    n_regs : int;
    status : int array;
    pc : int array;
    ready_at : int array;
    age : int array;
    key : int array;
    acquire_stalled : int array;
    acquired_at : int array;
    owns_ext : int array;
    partner : int array;
    rfv_alloc : int array;
    issued : int array;
    global_cta : int array;
    warp_in_cta : int array;
    cta_slot : int array;
    regs : int array array;
    reg_ready : int array array;
    simt : simt option;
  }

  let create ?lanes ~n_slots ~n_regs () =
    if n_slots < 1 then invalid_arg "Warp.Soa.create: n_slots must be >= 1";
    if n_regs < 1 then invalid_arg "Warp.Soa.create: n_regs must be >= 1";
    let simt =
      match lanes with
      | None -> None
      | Some lanes ->
          if lanes < 1 || lanes > 62 then
            invalid_arg "Warp.Soa.create: lanes must be in 1..62";
          Some
            {
              lanes;
              full_mask = (1 lsl lanes) - 1;
              lane_regs = Array.init n_slots (fun _ -> Array.make (lanes * n_regs) 0);
              active = Array.make n_slots 0;
              rpc = Array.make n_slots 0;
              stk_pc = Array.init n_slots (fun _ -> Array.make 8 0);
              stk_rpc = Array.init n_slots (fun _ -> Array.make 8 0);
              stk_mask = Array.init n_slots (fun _ -> Array.make 8 0);
              stk_depth = Array.make n_slots 0;
            }
    in
    {
      n_slots;
      n_regs;
      status = Array.make n_slots st_absent;
      pc = Array.make n_slots 0;
      ready_at = Array.make n_slots 0;
      age = Array.make n_slots 0;
      key = Array.make n_slots max_int;
      acquire_stalled = Array.make n_slots 0;
      acquired_at = Array.make n_slots (-1);
      owns_ext = Array.make n_slots 0;
      partner = Array.make n_slots (-1);
      rfv_alloc = Array.make n_slots 0;
      issued = Array.make n_slots 0;
      global_cta = Array.make n_slots (-1);
      warp_in_cta = Array.make n_slots (-1);
      cta_slot = Array.make n_slots (-1);
      regs = Array.init n_slots (fun _ -> Array.make n_regs 0);
      reg_ready = Array.init n_slots (fun _ -> Array.make n_regs 0);
      simt;
    }

  let resident t slot = t.status.(slot) <> st_absent

  let status_of t slot =
    match t.status.(slot) with
    | 0 -> Ready
    | 1 -> At_barrier
    | 2 -> Done
    | _ -> invalid_arg "Warp.Soa.status_of: no warp resident in slot"

  let launch t ~slot ~cta_slot ~global_cta ~warp_in_cta ~age =
    t.status.(slot) <- st_ready;
    t.pc.(slot) <- 0;
    t.ready_at.(slot) <- 0;
    t.age.(slot) <- age;
    t.acquire_stalled.(slot) <- 0;
    t.acquired_at.(slot) <- -1;
    t.owns_ext.(slot) <- 0;
    t.partner.(slot) <- -1;
    t.rfv_alloc.(slot) <- 0;
    t.issued.(slot) <- 0;
    t.global_cta.(slot) <- global_cta;
    t.warp_in_cta.(slot) <- warp_in_cta;
    t.cta_slot.(slot) <- cta_slot;
    Array.fill t.regs.(slot) 0 t.n_regs 0;
    Array.fill t.reg_ready.(slot) 0 t.n_regs 0

  let retire t ~slot =
    t.status.(slot) <- st_absent;
    t.key.(slot) <- max_int

  let deps_ready t ~slot instr ~cycle =
    let rr = t.reg_ready.(slot) in
    let ready rs = not (Gpu_isa.Regset.exists (fun r -> rr.(r) > cycle) rs) in
    ready (Gpu_isa.Instr.uses instr) && ready (Gpu_isa.Instr.defs instr)

  let refresh_ready_at t ~slot ~touched =
    let rr = t.reg_ready.(slot) in
    let m = ref 0 in
    for i = 0 to Array.length touched - 1 do
      let v = rr.(touched.(i)) in
      if v > !m then m := v
    done;
    t.ready_at.(slot) <- !m

  (* --- SIMT reconvergence stack ---------------------------------------- *)

  let simt_get t =
    match t.simt with
    | Some s -> s
    | None -> invalid_arg "Warp.Soa: SIMT operation in warp-uniform mode"

  let simt_reset t ~slot ~mask ~rpc =
    let s = simt_get t in
    Array.fill s.lane_regs.(slot) 0 (Array.length s.lane_regs.(slot)) 0;
    s.active.(slot) <- mask;
    s.rpc.(slot) <- rpc;
    s.stk_depth.(slot) <- 0

  let simt_active t ~slot = (simt_get t).active.(slot)

  let push s ~slot ~pc ~rpc ~mask =
    let d = s.stk_depth.(slot) in
    let cap = Array.length s.stk_pc.(slot) in
    if d = cap then begin
      let grow a =
        let b = Array.make (2 * cap) 0 in
        Array.blit a 0 b 0 cap;
        b
      in
      s.stk_pc.(slot) <- grow s.stk_pc.(slot);
      s.stk_rpc.(slot) <- grow s.stk_rpc.(slot);
      s.stk_mask.(slot) <- grow s.stk_mask.(slot)
    end;
    s.stk_pc.(slot).(d) <- pc;
    s.stk_rpc.(slot).(d) <- rpc;
    s.stk_mask.(slot).(d) <- mask;
    s.stk_depth.(slot) <- d + 1

  (* Divergent conditional branch: suspend the reconvergence continuation
     (the full active mask resuming at [rpc] in the enclosing scope) and
     the taken arm; the warp continues into the fall-through arm. The
     caller then routes the fall-through pc through {!simt_next} — when the
     branch is a loop exit ([fall_pc = rpc]) that pop makes the taken arm
     current immediately. *)
  let simt_diverge t ~slot ~tgt ~taken ~rpc =
    let s = simt_get t in
    let m = s.active.(slot) in
    push s ~slot ~pc:rpc ~rpc:s.rpc.(slot) ~mask:m;
    push s ~slot ~pc:tgt ~rpc ~mask:taken;
    s.active.(slot) <- m land lnot taken;
    s.rpc.(slot) <- rpc

  (* Route a computed next-pc through the reconvergence stack: reaching the
     current reconvergence point pops the next suspended arm (or the
     continuation, restoring its wider mask and enclosing scope). *)
  let simt_next t ~slot next =
    let s = simt_get t in
    let next = ref next in
    while s.stk_depth.(slot) > 0 && !next = s.rpc.(slot) do
      let d = s.stk_depth.(slot) - 1 in
      s.stk_depth.(slot) <- d;
      s.active.(slot) <- s.stk_mask.(slot).(d);
      s.rpc.(slot) <- s.stk_rpc.(slot).(d);
      next := s.stk_pc.(slot).(d)
    done;
    !next

  (* [Exit] under the current mask: the active lanes terminate and vanish
     from every suspended mask (a lane exits in exactly one arm). Returns
     the pc where the surviving lanes resume, or [None] when the whole
     warp is done. Entries whose mask emptied are discarded; because a
     continuation's mask is a superset of the arms above it, empty masks
     only ever sit at the top of the stack. *)
  let simt_exit t ~slot =
    let s = simt_get t in
    let dying = s.active.(slot) in
    for d = 0 to s.stk_depth.(slot) - 1 do
      s.stk_mask.(slot).(d) <- s.stk_mask.(slot).(d) land lnot dying
    done;
    s.active.(slot) <- 0;
    let rec resume () =
      if s.stk_depth.(slot) = 0 then None
      else begin
        let d = s.stk_depth.(slot) - 1 in
        s.stk_depth.(slot) <- d;
        if s.stk_mask.(slot).(d) = 0 then resume ()
        else begin
          s.active.(slot) <- s.stk_mask.(slot).(d);
          s.rpc.(slot) <- s.stk_rpc.(slot).(d);
          Some (simt_next t ~slot s.stk_pc.(slot).(d))
        end
      end
    in
    resume ()

  (* Pure variants for scheduler peeks (the RFV next-pc probe): what
     {!simt_next} / {!simt_exit} would return, without mutating. *)
  let simt_peek_next t ~slot next =
    let s = simt_get t in
    let next = ref next and rpc = ref s.rpc.(slot) in
    let d = ref (s.stk_depth.(slot) - 1) in
    while !d >= 0 && !next = !rpc do
      next := s.stk_pc.(slot).(!d);
      rpc := s.stk_rpc.(slot).(!d);
      decr d
    done;
    !next

  let simt_peek_exit t ~slot =
    let s = simt_get t in
    let dying = s.active.(slot) in
    let rec scan d =
      if d < 0 then None
      else if s.stk_mask.(slot).(d) land lnot dying = 0 then scan (d - 1)
      else begin
        let next = ref s.stk_pc.(slot).(d) and rpc = ref s.stk_rpc.(slot).(d) in
        let i = ref (d - 1) in
        while !i >= 0 && !next = !rpc do
          next := s.stk_pc.(slot).(!i);
          rpc := s.stk_rpc.(slot).(!i);
          decr i
        done;
        Some !next
      end
    in
    scan (s.stk_depth.(slot) - 1)
end

type view = {
  slot : int;
  cta_slot : int;
  global_cta : int;
  warp_in_cta : int;
  age : int;
}

let view (soa : Soa.t) slot =
  {
    slot;
    cta_slot = soa.Soa.cta_slot.(slot);
    global_cta = soa.Soa.global_cta.(slot);
    warp_in_cta = soa.Soa.warp_in_cta.(slot);
    age = soa.Soa.age.(slot);
  }
