(** Simulation counters and derived metrics. *)

type stall_reason =
  | Stall_deps      (** operands in flight (scoreboard) *)
  | Stall_mem_slot  (** no free global-memory slot *)
  | Stall_acquire   (** waiting for an SRP section / OWF pair lock *)
  | Stall_regs      (** RFV: no free physical registers *)
  | Stall_barrier
  | Stall_empty     (** no runnable warp at all *)
  | Stall_mem_retry
      (** a picked warp's global access found every memory slot busy at
          the issue stage (the slot vanished after the scheduler's
          eligibility check) and was re-stalled for retry *)

type t = {
  mutable cycles : int;
  mutable instructions : int;
  mutable resident_warp_cycles : int;  (** Σ over cycles of resident warps *)
  mutable warp_capacity_cycles : int;  (** Σ over cycles of max residency *)
  mutable acquire_execs : int;    (** acquire instructions completed *)
  mutable acquire_first_try : int;(** completed without ever stalling *)
  mutable acquire_stall_cycles : int;
  mutable release_execs : int;
  mutable shared_oob : int;
      (** shared-memory accesses outside the CTA's allocation (wrapped) —
          includes spill-window violations and spill instructions executed
          with no spill window configured *)
  mutable spill_stores : int;
      (** RegDem: demoted-register writes redirected to the spill window *)
  mutable fill_loads : int;
      (** RegDem: demoted-register reads refilled from the spill window *)
  mutable rf_reads : int;
      (** register-file read accesses (per executed register operand) *)
  mutable rf_writes : int;
      (** register-file write accesses (per executed register def) *)
  mutable shared_reads : int;
      (** user shared-memory loads (spill fills counted separately) *)
  mutable shared_writes : int;
      (** user shared-memory stores (spill stores counted separately) *)
  mutable active_lane_cycles : int;
      (** Σ over issued instructions of active lanes. The warp-uniform
          model counts every issue as a full warp, so a warp-uniform
          program reports the same total in both execution models *)
  mutable predicated_lane_cycles : int;
      (** Σ over issued instructions of predicated-off lanes (warp width
          minus active lanes); always 0 in the warp-uniform model *)
  mutable divergent_branches : int;
      (** conditional branches whose active lanes split both ways (each
          pushes a reconvergence-stack entry); 0 without [--simt] *)
  stall_cycles : int array;
      (** per-reason idle-slot counters, indexed by {!reason_index}; use
          {!bump_stall} / {!stall_count} rather than indexing directly *)
  mutable ctas_retired : int;
  mutable timed_out : bool;
  mutable pc_trace : int list;    (** reverse-order PC trace of warp 0 *)
  stores : (int * int, (Gpu_isa.Instr.space * int * int) list ref) Hashtbl.t;
      (** (global CTA, warp-in-CTA) → reverse-order store trace *)
  lane_stores :
    (int * int * int, (Gpu_isa.Instr.space * int * int) list ref) Hashtbl.t;
      (** (global CTA, warp-in-CTA, lane) → reverse-order lane-resolved
          store trace; only populated under [--simt] with store recording *)
  warp_instructions : (int * int, int) Hashtbl.t;
      (** (global CTA, warp-in-CTA) → dynamic instructions issued, recorded
          when the warp exits (divergent kernels show non-uniform counts) *)
}

(** All stall reasons, in a fixed order (for exhaustive per-reason
    comparisons, e.g. the fast-forward equivalence oracle). *)
val all_reasons : stall_reason list

val reason_name : stall_reason -> string

(** Dense index of a reason in {!type-t.stall_cycles} (declaration order). *)
val reason_index : stall_reason -> int

val create : unit -> t
val bump_stall : t -> stall_reason -> unit

(** [bump_stall_by t reason n] — [n] cycles' worth of [bump_stall] at once;
    the fast-forward driver uses it to account a skipped idle span. *)
val bump_stall_by : t -> stall_reason -> int -> unit

val stall_count : t -> stall_reason -> int

(** Achieved occupancy: resident-warp integral over capacity integral. *)
val achieved_occupancy : t -> float

(** Instructions per cycle over the whole run. *)
val ipc : t -> float

(** Fraction of acquire instructions that succeeded without waiting. *)
val acquire_success_ratio : t -> float

(** Executed-PC trace of the traced warp, oldest first. *)
val trace : t -> int array

(** Per-warp store traces in issue order, keyed and sorted by
    (CTA, warp). *)
val store_traces : t -> ((int * int) * (Gpu_isa.Instr.space * int * int) list) list

val record_store : t -> cta:int -> warp:int -> Gpu_isa.Instr.space -> int -> int -> unit

(** Per-lane store traces in issue order, keyed and sorted by
    (CTA, warp, lane). Empty unless the run executed under [--simt] with
    store recording on. *)
val lane_store_traces :
  t -> ((int * int * int) * (Gpu_isa.Instr.space * int * int) list) list

val record_lane_store :
  t -> cta:int -> warp:int -> lane:int -> Gpu_isa.Instr.space -> int -> int -> unit

val record_warp_done : t -> cta:int -> warp:int -> instructions:int -> unit

(** Per-warp dynamic instruction counts, sorted by (CTA, warp). *)
val warp_instruction_counts : t -> ((int * int) * int) list

val pp : Format.formatter -> t -> unit
