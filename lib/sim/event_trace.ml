type event =
  | Cta_launched of { sm : int; cta : int }
  | Cta_retired of { sm : int; cta : int }
  | Acquire_granted of { sm : int; cta : int; warp : int; section : int }
  | Acquire_stalled of { sm : int; cta : int; warp : int }
  | Release of { sm : int; cta : int; warp : int; section : int }
  | Barrier_arrived of { sm : int; cta : int; warp : int }
  | Barrier_released of { sm : int; cta : int }
  | Warp_exited of { sm : int; cta : int; warp : int }

type entry = {
  cycle : int;
  event : event;
}

(* Entries live in a growable array in emission order, so [entries] and
   [for_warp] are straight left-to-right reads instead of a [List.rev] of
   the whole history on every call. *)
type t = {
  capacity : int;
  keep : event -> bool;
  mutable buf : entry array;
  mutable length : int;
  mutable truncated : bool;
  mutable dropped : int;
}

let create ?(capacity = 100_000) ?(keep = fun _ -> true) () =
  { capacity; keep; buf = [||]; length = 0; truncated = false; dropped = 0 }

let emit t ~cycle event =
  if t.keep event then begin
    if t.length >= t.capacity then begin
      t.truncated <- true;
      t.dropped <- t.dropped + 1
    end
    else begin
      if t.length = Array.length t.buf then begin
        let grown = min t.capacity (max 64 (2 * Array.length t.buf)) in
        let buf = Array.make grown { cycle; event } in
        Array.blit t.buf 0 buf 0 t.length;
        t.buf <- buf
      end;
      t.buf.(t.length) <- { cycle; event };
      t.length <- t.length + 1
    end
  end

let entries t = Array.to_list (Array.sub t.buf 0 t.length)

let iter t f =
  for i = 0 to t.length - 1 do
    f t.buf.(i)
  done

let length t = t.length
let truncated t = t.truncated
let dropped t = t.dropped

let warp_of = function
  | Acquire_granted { cta; warp; _ }
  | Acquire_stalled { cta; warp; _ }
  | Release { cta; warp; _ }
  | Barrier_arrived { cta; warp; _ }
  | Warp_exited { cta; warp; _ } ->
      Some (cta, warp)
  | Cta_launched _ | Cta_retired _ | Barrier_released _ -> None

let for_warp t ~cta ~warp =
  let acc = ref [] in
  for i = t.length - 1 downto 0 do
    let e = t.buf.(i) in
    if warp_of e.event = Some (cta, warp) then acc := e :: !acc
  done;
  !acc

let pp_event ppf = function
  | Cta_launched { sm; cta } -> Format.fprintf ppf "sm%d: launch cta %d" sm cta
  | Cta_retired { sm; cta } -> Format.fprintf ppf "sm%d: retire cta %d" sm cta
  | Acquire_granted { sm; cta; warp; section } ->
      Format.fprintf ppf "sm%d: cta %d warp %d acquires section %d" sm cta warp section
  | Acquire_stalled { sm; cta; warp } ->
      Format.fprintf ppf "sm%d: cta %d warp %d stalls on acquire" sm cta warp
  | Release { sm; cta; warp; section } ->
      Format.fprintf ppf "sm%d: cta %d warp %d releases section %d" sm cta warp section
  | Barrier_arrived { sm; cta; warp } ->
      Format.fprintf ppf "sm%d: cta %d warp %d at barrier" sm cta warp
  | Barrier_released { sm; cta } ->
      Format.fprintf ppf "sm%d: cta %d barrier released" sm cta
  | Warp_exited { sm; cta; warp } ->
      Format.fprintf ppf "sm%d: cta %d warp %d exits" sm cta warp

let pp_entry ppf e = Format.fprintf ppf "%8d  %a" e.cycle pp_event e.event
