module Instr = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Regset = Gpu_isa.Regset
module Arch_config = Gpu_uarch.Arch_config
module Srp = Gpu_uarch.Srp
module Srp_paired = Gpu_uarch.Srp_paired
module Soa = Warp.Soa
module Reconv = Gpu_analysis.Reconv

exception Verification_failure of string

type cta_state = {
  cta_slot : int;
  global_cta : int;
  n_warps : int;
  mutable arrived : int;   (* warps waiting at the barrier *)
  mutable running : int;   (* warps not yet Done *)
  shared : int array;      (* shared-memory words *)
}

type pstate =
  | Ps_static
  | Ps_srp of Srp.t
  | Ps_paired of Srp_paired.t
  | Ps_owf
  | Ps_rfv of { mutable used : int; capacity : int }

type t = {
  cfg : Arch_config.t;
  sm_id : int;
  kernel : Kernel.t;
  policy : Policy.t;
  memory : Memory.t;
  mem_sys : Mem_system.t;
  stats : Stats.t;
  instrs : Instr.t array;
  warps_per_cta : int;
  cta_capacity : int;
  srp_sections : int;
  ctas : cta_state option array;
  (* Hot per-warp state lives structure-of-arrays: the schedulers and the
     issue stage index packed int arrays by warp slot instead of chasing
     one boxed record per warp. *)
  soa : Soa.t;
  (* One execution context per warp slot, built once and rebound (ctaid,
     shared memory) at each CTA launch — the issue path allocates no
     context or closures. *)
  ctxs : Exec.ctx array;
  schedulers : Scheduler.t array;
  pstate : pstate;
  (* Per-PC precomputation. *)
  latency : int array;           (* result latency for non-global instrs *)
  touches_ext : bool array;      (* any referenced register has index >= bs *)
  rfv_live : int array;          (* RFV: physical packs demanded at each pc *)
  def_reg : int array;           (* destination register, -1 none, -2 invalid *)
  pc_regs : int array array;     (* registers read or written, ascending *)
  is_global : bool array;        (* occupies a global-memory slot at issue *)
  is_acquire : bool array;
  max_rank : int;
      (* highest [rank_block] value the policy can produce; bounds the
         early exit in [classify_idle] *)
  mutable state_gen : int;
      (* bumped on every launch and issue — the only operations that change
         warp statuses or ages — so derived scans can be memoized *)
  mutable oldest_gen : int;
  mutable oldest_cache : int;
  mutable resident_ctas : int;
  mutable resident_warps : int;
  mutable retired : int;
  mutable launched_this_cycle : int;
  mutable next_age : int;
  record_stores : bool;
  trace_warp0 : bool;
  (* SIMT (per-lane) execution: lane-resolved register values, predication
     and the per-warp reconvergence stack. Timing stays warp-granular —
     only the values (and the lane occupancy statistics) are resolved per
     lane, so a warp-uniform program is bit-identical in both models. *)
  simt : bool;
  reconv : int array;       (* per-pc reconvergence table ([||] unless simt) *)
  reconv_sentinel : int;    (* program length: the never-reached top rpc *)
  full_mask : int;          (* (1 lsl warp_size) - 1 when simt, else 0 *)
  corrupt_mask : int;       (* lanes cleared at launch (fuzz self-test) *)
  events : Event_trace.t option;
  probe : Probe.t option;
  bs : int;  (* base-set size for SRP/paired/OWF policies; max_int otherwise *)
  es : int;
  verify : bool;
}

(* Resident-CTA capacity under the policy's register accounting, combined
   with the shared-memory / thread / CTA-slot / warp-slot limits. *)
let compute_capacity (cfg : Arch_config.t) policy kernel =
  let wpc = Kernel.warps_per_cta cfg kernel in
  let regs_cta = Policy.regs_per_cta cfg policy ~warps_per_cta:wpc in
  let shmem_cta = Arch_config.round_shmem cfg kernel.Kernel.shmem_bytes in
  let cap v per = if per = 0 then max_int else v / per in
  let ctas =
    List.fold_left min cfg.max_ctas
      [ cap cfg.regfile_regs regs_cta;
        cap cfg.shmem_bytes shmem_cta;
        cap cfg.max_threads kernel.Kernel.cta_threads;
        cap cfg.max_warps wpc ]
  in
  (max ctas 0, wpc, regs_cta)

let cta_capacity_for cfg ~policy ~kernel =
  let capacity, _, _ = compute_capacity cfg policy kernel in
  capacity

let create ?events ?telemetry ?(simt = false) ?(corrupt_mask = 0) cfg ~sm_id
    ~policy ~kernel ~memory ~mem_sys ~stats ~record_stores ~trace_warp0 =
  let cta_capacity, wpc, regs_cta = compute_capacity cfg policy kernel in
  let prog = kernel.Kernel.program in
  let n = Program.length prog in
  let instrs = Array.init n (Program.get prog) in
  let bs, es, verify =
    match policy with
    | Policy.Srp { bs; es; verify } | Policy.Srp_paired { bs; es; verify } ->
        (bs, es, verify)
    | Policy.Owf { bs; es } -> (bs, es, false)
    | Policy.Static _ | Policy.Rfv _ | Policy.Regdem _ -> (max_int, 0, false)
  in
  let srp_sections, pstate =
    match policy with
    (* Regdem is static allocation of the reduced register count; the
       spill machinery lives entirely in the program and the execution
       contexts, so the policy state machine is the stock one. *)
    | Policy.Static _ | Policy.Regdem _ -> (0, Ps_static)
    | Policy.Srp { es; _ } ->
        let leftover = cfg.regfile_regs - (cta_capacity * regs_cta) in
        let sections =
          if es <= 0 then 0
          else min cfg.max_warps (max 0 (leftover / (es * cfg.warp_size)))
        in
        (sections, Ps_srp (Srp.create ~n_warps:cfg.max_warps ~sections))
    | Policy.Srp_paired _ ->
        if wpc mod 2 <> 0 then
          invalid_arg "Sm.create: paired-warps policy requires an even warp count per CTA";
        let pairs = cta_capacity * wpc / 2 in
        (pairs, Ps_paired (Srp_paired.create ~n_warps:cfg.max_warps ~enabled_pairs:pairs))
    | Policy.Owf _ ->
        if wpc mod 2 <> 0 then
          invalid_arg "Sm.create: OWF policy requires an even warp count per CTA";
        (cta_capacity * wpc / 2, Ps_owf)
    | Policy.Rfv _ ->
        (0, Ps_rfv { used = 0; capacity = cfg.regfile_regs / cfg.warp_size })
  in
  let latency =
    Array.map
      (fun i ->
        match Instr.lat_class i with
        | Instr.Lat_alu -> cfg.lat_alu
        | Instr.Lat_complex -> cfg.lat_complex
        | Instr.Lat_shared -> cfg.lat_shared
        | Instr.Lat_global -> cfg.lat_global (* refined at issue via mem_sys *)
        | Instr.Lat_control -> 1)
      instrs
  in
  let touches_ext =
    Array.map
      (fun i ->
        let rs = Instr.regs i in
        (not (Regset.is_empty rs)) && Regset.max_elt rs >= bs)
      instrs
  in
  let rfv_live =
    match policy with
    | Policy.Rfv { live; _ } ->
        if Array.length live <> n then
          invalid_arg "Sm.create: RFV live table length mismatch";
        live
    | Policy.Static _ | Policy.Srp _ | Policy.Srp_paired _ | Policy.Owf _
    | Policy.Regdem _ ->
        Array.make n 0
  in
  let def_reg =
    Array.map
      (fun i ->
        match Regset.to_list (Instr.defs i) with
        | [] -> -1
        | [ d ] -> d
        | _ :: _ :: _ -> -2)
      instrs
  in
  let pc_regs =
    Array.map (fun i -> Array.of_list (Regset.to_list (Instr.regs i))) instrs
  in
  let is_global =
    Array.map (fun i -> Instr.lat_class i = Instr.Lat_global) instrs
  in
  let is_acquire =
    Array.map (fun i -> match i with Instr.Acquire -> true | _ -> false) instrs
  in
  let n_slots = max (cta_capacity * wpc) 1 in
  let n_regs = max prog.Program.n_regs 1 in
  let lanes = if simt then Some cfg.Arch_config.warp_size else None in
  let soa = Soa.create ?lanes ~n_slots ~n_regs () in
  let spill_words =
    match policy with
    | Policy.Regdem { spill_words; _ } -> spill_words
    | Policy.Static _ | Policy.Srp _ | Policy.Srp_paired _ | Policy.Owf _
    | Policy.Rfv _ ->
        0
  in
  let ctxs =
    Array.init n_slots (fun slot ->
        {
          Exec.regs = soa.Soa.regs.(slot);
          params = kernel.Kernel.params;
          tid = slot mod wpc * cfg.warp_size;
          ctaid = -1;
          ntid = kernel.Kernel.cta_threads;
          nctaid = kernel.Kernel.grid_ctas;
          warp_id = slot mod wpc;
          shared = [||];
          spill_words;
          memory;
          stats;
          record_stores;
          lanes = (if simt then cfg.warp_size else 0);
          n_regs;
          lane_regs =
            (match soa.Soa.simt with
            | Some s -> s.Soa.lane_regs.(slot)
            | None -> [||]);
        })
  in
  {
    cfg;
    sm_id;
    kernel;
    policy;
    memory;
    mem_sys;
    stats;
    instrs;
    warps_per_cta = wpc;
    cta_capacity;
    srp_sections;
    ctas = Array.make (max cta_capacity 1) None;
    soa;
    ctxs;
    schedulers =
      (let kind =
         match cfg.Arch_config.scheduler with
         | Arch_config.Gto -> Scheduler.Gto
         | Arch_config.Lrr -> Scheduler.Lrr
         | Arch_config.Two_level g -> Scheduler.Two_level g
       in
       Array.init cfg.n_schedulers (fun id ->
           Scheduler.create kind ~id ~n_schedulers:cfg.n_schedulers));
    pstate;
    latency;
    touches_ext;
    rfv_live;
    def_reg;
    pc_regs;
    is_global;
    is_acquire;
    max_rank =
      (match pstate with
      | Ps_rfv _ -> 5 (* Blocked_regs *)
      | Ps_srp _ | Ps_paired _ | Ps_owf -> 4 (* Blocked_acquire *)
      | Ps_static -> 3 (* Blocked_mem *));
    state_gen = 0;
    oldest_gen = -1;
    oldest_cache = max_int;
    resident_ctas = 0;
    resident_warps = 0;
    retired = 0;
    launched_this_cycle = -1;
    next_age = 0;
    record_stores;
    trace_warp0;
    simt;
    reconv = (if simt then Reconv.table prog else [||]);
    reconv_sentinel = n;
    full_mask = (if simt then (1 lsl cfg.warp_size) - 1 else 0);
    corrupt_mask;
    events;
    probe =
      Option.map
        (fun sink ->
          Probe.create sink ~sm_id ~n_slots ~n_cta_slots:(max cta_capacity 1)
            ~n_mem_slots:cfg.mem_slots)
        telemetry;
    bs;
    es;
    verify;
  }

let emit t ~cycle event =
  match t.events with
  | Some tr -> Event_trace.emit tr ~cycle event
  | None -> ()

let cta_capacity t = t.cta_capacity
let srp_sections t = t.srp_sections

let srp_in_use t =
  match t.pstate with
  | Ps_srp srp -> Srp.in_use srp
  | Ps_paired srp -> Srp_paired.in_use srp
  | Ps_static | Ps_owf | Ps_rfv _ -> 0
let resident_ctas t = t.resident_ctas
let resident_warps t = t.resident_warps
let retired_ctas t = t.retired

(* --- CTA launch and retirement ------------------------------------- *)

let free_cta_slot t =
  let n = Array.length t.ctas in
  let rec go i =
    if i >= t.cta_capacity || i >= n then None
    else match t.ctas.(i) with None -> Some i | Some _ -> go (i + 1)
  in
  go 0

let rfv_can_admit t =
  match t.pstate with
  | Ps_rfv r -> r.used + (t.warps_per_cta * t.rfv_live.(0)) <= r.capacity
  | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> true

(* OWF owner warps are scheduled before age (priority 0); everything else
   orders by age alone. Keys are maintained at the three points priority
   can change — launch, the silent OWF acquire, and warp exit — so the
   schedulers read them without recomputing. *)
let launch_priority t =
  match t.pstate with Ps_owf -> 1 | Ps_static | Ps_srp _ | Ps_paired _ | Ps_rfv _ -> 0

let try_launch t ~global_cta ~cycle =
  (* The slot scan only happens when a slot is known to exist (occupied
     slots and resident CTAs correspond one to one), so the per-cycle
     no-room answer is one comparison. *)
  if t.launched_this_cycle = cycle || t.resident_ctas >= t.cta_capacity then
    false
  else
    match free_cta_slot t with
    | None -> false
    | Some slot when rfv_can_admit t ->
        let n_warps = t.warps_per_cta in
        let shmem_words = max 1 (t.kernel.Kernel.shmem_bytes / 4) in
        let cta =
          {
            cta_slot = slot;
            global_cta;
            n_warps;
            arrived = 0;
            running = n_warps;
            shared = Array.make shmem_words 0;
          }
        in
        t.ctas.(slot) <- Some cta;
        let soa = t.soa in
        for w = 0 to n_warps - 1 do
          let wslot = (slot * t.warps_per_cta) + w in
          let age = t.next_age in
          Soa.launch soa ~slot:wslot ~cta_slot:slot ~global_cta ~warp_in_cta:w
            ~age;
          if t.simt then
            Soa.simt_reset soa ~slot:wslot
              ~mask:(t.full_mask land lnot t.corrupt_mask)
              ~rpc:t.reconv_sentinel;
          t.next_age <- t.next_age + 1;
          (* OWF: warps pair up within their CTA. *)
          soa.Soa.partner.(wslot) <-
            (if w land 1 = 0 then
               if w + 1 < n_warps then wslot + 1 else -1
             else wslot - 1);
          soa.Soa.key.(wslot) <-
            Scheduler.pack_key ~priority:(launch_priority t) ~age;
          (match t.pstate with
          | Ps_rfv r ->
              soa.Soa.rfv_alloc.(wslot) <- t.rfv_live.(0);
              r.used <- r.used + t.rfv_live.(0)
          | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> ());
          let ctx = t.ctxs.(wslot) in
          ctx.Exec.ctaid <- global_cta;
          ctx.Exec.shared <- cta.shared
        done;
        t.resident_ctas <- t.resident_ctas + 1;
        t.resident_warps <- t.resident_warps + n_warps;
        t.launched_this_cycle <- cycle;
        t.state_gen <- t.state_gen + 1;
        emit t ~cycle (Event_trace.Cta_launched { sm = t.sm_id; cta = global_cta });
        (match t.probe with
        | Some p ->
            Probe.cta_launch p ~cycle ~cta_slot:slot ~global_cta;
            for w = 0 to n_warps - 1 do
              Probe.warp_start p ~cycle
                ~slot:((slot * t.warps_per_cta) + w)
                ~global_cta
            done
        | None -> ());
        true
    | Some _ -> false

let retire_cta t ~cycle cta =
  emit t ~cycle (Event_trace.Cta_retired { sm = t.sm_id; cta = cta.global_cta });
  (match t.probe with
  | Some p -> Probe.cta_retire p ~cycle ~cta_slot:cta.cta_slot
  | None -> ());
  for w = 0 to cta.n_warps - 1 do
    Soa.retire t.soa ~slot:((cta.cta_slot * t.warps_per_cta) + w)
  done;
  t.ctas.(cta.cta_slot) <- None;
  t.resident_ctas <- t.resident_ctas - 1;
  t.resident_warps <- t.resident_warps - cta.n_warps;
  t.retired <- t.retired + 1;
  t.stats.Stats.ctas_retired <- t.stats.Stats.ctas_retired + 1

(* --- issue eligibility ---------------------------------------------- *)

type block_reason =
  | Can_issue
  | Blocked_deps
  | Blocked_mem
  | Blocked_acquire
  | Blocked_regs
  | Blocked_barrier
  | Blocked_done

(* RFV: the next instruction's demand, given this instruction's outcome.
   Branch conditions are evaluated without side effects. Under SIMT the
   computed next-pc is routed through the reconvergence stack (pure peek
   variants), and a divergent branch executes its fall-through arm next —
   unless the fall-through IS the reconvergence point (a loop exit), in
   which case the suspended taken arm runs immediately. *)
let rfv_peek_next t ~slot instr =
  let pc = t.soa.Soa.pc.(slot) in
  if not t.simt then
    match instr with
    | Instr.Jump tgt -> tgt
    | Instr.Jump_if (c, tgt) ->
        if Exec.operand t.ctxs.(slot) c <> 0 then tgt else pc + 1
    | Instr.Jump_ifz (c, tgt) ->
        if Exec.operand t.ctxs.(slot) c = 0 then tgt else pc + 1
    | Instr.Exit -> pc
    | _ -> pc + 1
  else
    let soa = t.soa in
    match instr with
    | Instr.Jump tgt -> Soa.simt_peek_next soa ~slot tgt
    | Instr.Jump_if _ | Instr.Jump_ifz _ -> (
        let mask = Soa.simt_active soa ~slot in
        match Exec.branch_masks t.ctxs.(slot) instr ~mask with
        | Some (taken, tgt) ->
            if taken = 0 || tgt = pc + 1 then Soa.simt_peek_next soa ~slot (pc + 1)
            else if taken = mask then Soa.simt_peek_next soa ~slot tgt
            else
              let rpc = t.reconv.(pc) in
              if pc + 1 = rpc then tgt else pc + 1
        | None -> pc + 1)
    | Instr.Exit -> (
        match Soa.simt_peek_exit soa ~slot with Some next -> next | None -> pc)
    | _ -> Soa.simt_peek_next soa ~slot (pc + 1)

(* Forward-progress anchor for RFV: the oldest warp that could actually
   issue (barrier-parked warps are waiting on others and must not anchor
   the override, or a register-starved CTA deadlocks against it). The
   answer depends only on statuses and ages, which change solely at
   launches and issues, so it is memoized on [state_gen] — a scheduler
   scan under register pressure probes many candidates per cycle and pays
   the O(slots) sweep once instead of per candidate. *)
let oldest_ready_age t =
  if t.oldest_gen = t.state_gen then t.oldest_cache
  else begin
    let soa = t.soa in
    let acc = ref max_int in
    for slot = 0 to soa.Soa.n_slots - 1 do
      if soa.Soa.status.(slot) = Soa.st_ready && soa.Soa.age.(slot) < !acc then
        acc := soa.Soa.age.(slot)
    done;
    t.oldest_gen <- t.state_gen;
    t.oldest_cache <- !acc;
    !acc
  end

(* A failed acquire attempt marks the start (or continuation) of a stall
   episode: the flag feeds the first-try statistic, and the transition
   into it emits the [Acquire_stalled] trace event. *)
let note_acquire_stall t ~slot ~cycle =
  let soa = t.soa in
  if soa.Soa.acquire_stalled.(slot) = 0 then
    emit t ~cycle
      (Event_trace.Acquire_stalled
         { sm = t.sm_id; cta = soa.Soa.global_cta.(slot);
           warp = soa.Soa.warp_in_cta.(slot) });
  soa.Soa.acquire_stalled.(slot) <- 1

(* [check_ready] is the issue-eligibility residual for a warp that already
   passed the slot-local prefix (resident, [Ready], scoreboard clear):
   structural memory slots, then policy state. With [~probe:true] the
   answer is computed without side effects; the default (an actual issue
   attempt by the warp's scheduler) records acquire stalls.

   [mem_free] is [Mem_system.slot_free] evaluated once by the caller: a
   scheduler scan (or classification sweep) issues nothing, so the answer
   cannot change between the candidates of one scan — hoisting it turns a
   per-candidate cross-module call into an argument read. *)
let check_ready ~probe t ~mem_free ~slot ~cycle =
  let soa = t.soa in
  let pc = soa.Soa.pc.(slot) in
  if t.is_global.(pc) && not mem_free then Blocked_mem
  else if t.is_acquire.(pc) then begin
    match t.pstate with
    | Ps_srp srp ->
        if Srp.holds srp ~warp:slot <> None || Srp.free_sections srp > 0 then
          Can_issue
        else begin
          if not probe then note_acquire_stall t ~slot ~cycle;
          Blocked_acquire
        end
    | Ps_paired srp ->
        if Srp_paired.available srp ~warp:slot then Can_issue
        else begin
          if not probe then note_acquire_stall t ~slot ~cycle;
          Blocked_acquire
        end
    | Ps_static | Ps_owf | Ps_rfv _ -> Can_issue
  end
  else begin
    match t.pstate with
    | Ps_owf when t.touches_ext.(pc) && soa.Soa.owns_ext.(slot) = 0 ->
        (* First extended access acquires the pair's registers for the
           rest of the warp's life; blocked while the partner owns them. *)
        (* A partner parked at a barrier cannot finish until this warp
           arrives too; blocking here would deadlock the CTA, so ownership
           is ceded (the one concession the no-in-kernel-release design
           needs to run barrier kernels). *)
        let partner = soa.Soa.partner.(slot) in
        let partner_owns =
          partner >= 0
          && soa.Soa.owns_ext.(partner) = 1
          && soa.Soa.status.(partner) = Soa.st_ready
        in
        if partner_owns then begin
          if not probe then soa.Soa.acquire_stalled.(slot) <- 1;
          Blocked_acquire
        end
        else Can_issue
    | Ps_rfv r ->
        let next = rfv_peek_next t ~slot t.instrs.(pc) in
        let delta = t.rfv_live.(next) - soa.Soa.rfv_alloc.(slot) in
        if
          delta <= 0
          || r.used + delta <= r.capacity
          || soa.Soa.age.(slot) = oldest_ready_age t
        then Can_issue
        else Blocked_regs
    | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> Can_issue
  end

(* [check_warp] answers "can this warp issue right now, and if not, why?"
   for any resident warp — the status/scoreboard prefix plus
   {!check_ready}. The issue path never calls this (the schedulers read
   the prefix straight off the SoA arrays); it serves the idle
   classification and diagnostics. *)
let check_warp ?(probe = false) t ~mem_free ~slot ~cycle =
  let soa = t.soa in
  let st = soa.Soa.status.(slot) in
  if st = Soa.st_done || st = Soa.st_absent then Blocked_done
  else if st = Soa.st_barrier then Blocked_barrier
  else if
    (* [ready_at] is the maintained max over the instruction's registers
       of [reg_ready] (refreshed at every pc move), so the scoreboard
       check is one comparison instead of a register-set scan. *)
    soa.Soa.ready_at.(slot) > cycle
  then Blocked_deps
  else check_ready ~probe t ~mem_free ~slot ~cycle

(* --- barrier handling ------------------------------------------------ *)

let maybe_release_barrier t ~cycle cta =
  if cta.running > 0 && cta.arrived = cta.running then begin
    cta.arrived <- 0;
    emit t ~cycle (Event_trace.Barrier_released { sm = t.sm_id; cta = cta.global_cta });
    let soa = t.soa in
    for w = 0 to cta.n_warps - 1 do
      let slot = (cta.cta_slot * t.warps_per_cta) + w in
      if soa.Soa.status.(slot) = Soa.st_barrier then
        soa.Soa.status.(slot) <- Soa.st_ready
    done
  end

(* --- issue ----------------------------------------------------------- *)

let verify_access t ~slot pc =
  if t.verify && t.touches_ext.(pc) then begin
    let rs = Instr.regs t.instrs.(pc) in
    let top = Regset.max_elt rs in
    if top >= t.bs + t.es then
      raise
        (Verification_failure
           (Printf.sprintf "pc %d references r%d beyond |Bs|+|Es| = %d" pc top
              (t.bs + t.es)));
    let section =
      match t.pstate with
      | Ps_srp srp -> Srp.holds srp ~warp:slot
      | Ps_paired srp ->
          if Srp_paired.holds srp ~warp:slot then
            Some (Srp_paired.pair_of_warp ~warp:slot)
          else None
      | Ps_static | Ps_owf | Ps_rfv _ -> Some 0
    in
    (* Drive every referenced register through the Figure 6 two-segment
       mapping: it must produce a valid physical index (and trips exactly
       when the warp holds no section). *)
    let mapping =
      {
        Gpu_uarch.Reg_mapping.bs = t.bs;
        es = t.es;
        srp_offset =
          Gpu_uarch.Reg_mapping.srp_offset_for ~bs:t.bs
            ~resident_warps:t.soa.Soa.n_slots;
      }
    in
    Regset.iter
      (fun x ->
        match Gpu_uarch.Reg_mapping.regmutex mapping ~widx:slot ~section ~x with
        | Ok _ -> ()
        | Error e ->
            raise
              (Verification_failure
                 (Format.asprintf "pc %d, register r%d: %a" pc x
                    Gpu_uarch.Reg_mapping.pp_error e)))
      rs
  end

let rfv_move t ~slot ~next_pc =
  match t.pstate with
  | Ps_rfv r ->
      let demand = t.rfv_live.(next_pc) in
      r.used <- r.used + demand - t.soa.Soa.rfv_alloc.(slot);
      t.soa.Soa.rfv_alloc.(slot) <- demand
  | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> ()

(* On a successful release the physical extended set goes back to the SRP
   and may be handed to another warp, so the architected values above [bs]
   cease to exist for this warp. The functional model keeps a full per-warp
   register array, which would silently preserve them; clobbering with a
   poison constant makes any use-after-release (a value the compiler failed
   to compact below the Bs boundary) visible as a store-trace divergence
   instead of a lucky pass. Sound for checker-accepted programs: no
   extended register is live at a release point. *)
let release_poison = 0xDEAD_BEEF

let poison_ext t ~slot =
  let regs = t.soa.Soa.regs.(slot) in
  for r = t.bs to Array.length regs - 1 do
    regs.(r) <- release_poison
  done;
  match t.soa.Soa.simt with
  | Some s ->
      let row = s.Soa.lane_regs.(slot) in
      let n = t.soa.Soa.n_regs in
      for lane = 0 to s.Soa.lanes - 1 do
        for r = t.bs to n - 1 do
          row.((lane * n) + r) <- release_poison
        done
      done
  | None -> ()

let warp_done t ~cycle ~slot cta =
  let soa = t.soa in
  soa.Soa.status.(slot) <- Soa.st_done;
  emit t ~cycle
    (Event_trace.Warp_exited
       { sm = t.sm_id; cta = soa.Soa.global_cta.(slot);
         warp = soa.Soa.warp_in_cta.(slot) });
  Stats.record_warp_done t.stats ~cta:soa.Soa.global_cta.(slot)
    ~warp:soa.Soa.warp_in_cta.(slot) ~instructions:soa.Soa.issued.(slot);
  cta.running <- cta.running - 1;
  (match t.probe with
  | Some p ->
      Probe.hold_end p ~cycle ~slot;
      Probe.warp_close p ~cycle ~slot
  | None -> ());
  (match t.pstate with
  | Ps_srp srp -> (
      match Srp.reset_warp srp ~warp:slot with
      | Some _ -> (
          match t.probe with
          | Some p -> Probe.srp_sample p ~cycle ~in_use:(Srp.in_use srp)
          | None -> ())
      | None -> ())
  | Ps_paired srp ->
      if Srp_paired.reset_warp srp ~warp:slot then (
        match t.probe with
        | Some p -> Probe.srp_sample p ~cycle ~in_use:(Srp_paired.in_use srp)
        | None -> ())
  | Ps_owf -> soa.Soa.owns_ext.(slot) <- 0
  | Ps_rfv r ->
      r.used <- r.used - soa.Soa.rfv_alloc.(slot);
      soa.Soa.rfv_alloc.(slot) <- 0
  | Ps_static -> ());
  soa.Soa.acquired_at.(slot) <- -1;
  if cta.running = 0 then retire_cta t ~cycle cta else maybe_release_barrier t ~cycle cta

let advance t ~slot ~next =
  rfv_move t ~slot ~next_pc:next;
  t.soa.Soa.pc.(slot) <- next;
  Soa.refresh_ready_at t.soa ~slot ~touched:t.pc_regs.(next)

let mem_sample t ~cycle ~completion =
  match t.probe with
  | Some p -> Probe.mem_issue p ~cycle ~completion
  | None -> ()

let granted t ~cycle ~slot ~section ~in_use =
  emit t ~cycle
    (Event_trace.Acquire_granted
       { sm = t.sm_id; cta = t.soa.Soa.global_cta.(slot);
         warp = t.soa.Soa.warp_in_cta.(slot); section });
  t.soa.Soa.acquired_at.(slot) <- cycle;
  match t.probe with
  | Some p ->
      Probe.hold_begin p ~cycle ~slot ~section;
      Probe.srp_sample p ~cycle ~in_use
  | None -> ()

let released t ~cycle ~slot ~section ~in_use =
  emit t ~cycle
    (Event_trace.Release
       { sm = t.sm_id; cta = t.soa.Soa.global_cta.(slot);
         warp = t.soa.Soa.warp_in_cta.(slot); section });
  t.soa.Soa.acquired_at.(slot) <- -1;
  (match t.probe with
  | Some p ->
      Probe.hold_end p ~cycle ~slot;
      Probe.srp_sample p ~cycle ~in_use
  | None -> ());
  t.stats.Stats.release_execs <- t.stats.Stats.release_execs + 1;
  poison_ext t ~slot

let multi_def_error t ~slot ~pc =
  let section_state =
    match t.pstate with
    | Ps_srp srp ->
        Printf.sprintf "srp: holds=%s, %d/%d sections in use"
          (match Srp.holds srp ~warp:slot with
          | Some s -> string_of_int s
          | None -> "-")
          (Srp.in_use srp) (Srp.n_sections srp)
    | Ps_paired srp ->
        Printf.sprintf "paired: holds=%b, %d/%d pairs in use"
          (Srp_paired.holds srp ~warp:slot)
          (Srp_paired.in_use srp) (Srp_paired.n_pairs srp)
    | Ps_owf -> Printf.sprintf "owf: owns_ext=%d" t.soa.Soa.owns_ext.(slot)
    | Ps_rfv r -> Printf.sprintf "rfv: %d/%d packs used" r.used r.capacity
    | Ps_static -> "static"
  in
  invalid_arg
    (Printf.sprintf
       "Sm.issue: instruction with multiple destination registers — SM %d, \
        CTA %d, warp %d (slot %d), pc %d: %s [%s]"
       t.sm_id t.soa.Soa.global_cta.(slot) t.soa.Soa.warp_in_cta.(slot) slot pc
       (Instr.to_string t.instrs.(pc))
       section_state)

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    incr c;
    m := !m land (!m - 1)
  done;
  !c

(* Route a computed next-pc through the reconvergence stack (pops when it
   reaches the current reconvergence point); identity in uniform mode. *)
let route t ~slot next =
  if t.simt then Soa.simt_next t.soa ~slot next else next

(* [issue] executes the warp's current instruction; returns [false] when a
   global access found every memory slot busy at the claim stage (the warp
   is re-stalled untouched and retries when a slot frees — structured
   back-pressure instead of a crash). *)
let issue t ~slot ~cycle =
  let soa = t.soa in
  let pc = soa.Soa.pc.(slot) in
  let instr = t.instrs.(pc) in
  let cta =
    match t.ctas.(soa.Soa.cta_slot.(slot)) with
    | Some c -> c
    | None -> invalid_arg "Sm.issue: orphan warp"
  in
  verify_access t ~slot pc;
  (* Global accesses claim their memory slot before any architectural
     state changes, so a [`No_slot] answer leaves nothing to undo. The
     completion cycle depends only on the clock and DRAM horizon, never on
     this instruction's execution. *)
  let completion =
    if not t.is_global.(pc) then 0
    else
      match Mem_system.issue_global t.mem_sys ~sm:t.sm_id ~cycle with
      | `Completion c -> c
      | `No_slot -> -1
  in
  if completion < 0 then false
  else begin
    t.state_gen <- t.state_gen + 1;
    (* OWF: silent one-time acquire at the first extended access. *)
    (match t.pstate with
    | Ps_owf when t.touches_ext.(pc) && soa.Soa.owns_ext.(slot) = 0 ->
        soa.Soa.owns_ext.(slot) <- 1;
        soa.Soa.acquired_at.(slot) <- cycle;
        soa.Soa.key.(slot) <-
          Scheduler.pack_key ~priority:0 ~age:soa.Soa.age.(slot);
        (match t.probe with
        | Some p -> Probe.hold_begin p ~cycle ~slot ~section:(slot / 2)
        | None -> ());
        t.stats.Stats.acquire_execs <- t.stats.Stats.acquire_execs + 1;
        if soa.Soa.acquire_stalled.(slot) = 0 then
          t.stats.Stats.acquire_first_try <- t.stats.Stats.acquire_first_try + 1;
        soa.Soa.acquire_stalled.(slot) <- 0
    | Ps_owf | Ps_static | Ps_srp _ | Ps_paired _ | Ps_rfv _ -> ());
    if
      t.trace_warp0
      && soa.Soa.global_cta.(slot) = 0
      && soa.Soa.warp_in_cta.(slot) = 0
    then t.stats.Stats.pc_trace <- pc :: t.stats.Stats.pc_trace;
    (* Execute: per-lane under the active mask in SIMT mode, warp-uniform
       otherwise. Lane-occupancy statistics are kept in both modes with
       the same convention (every uniform issue is a full warp), so
       warp-uniform programs report identical totals. *)
    let louts =
      if t.simt then begin
        let mask = Soa.simt_active soa ~slot in
        let on = popcount mask in
        t.stats.Stats.active_lane_cycles <-
          t.stats.Stats.active_lane_cycles + on;
        t.stats.Stats.predicated_lane_cycles <-
          t.stats.Stats.predicated_lane_cycles + (t.cfg.warp_size - on);
        Exec.step_simt t.ctxs.(slot) instr ~mask
      end
      else begin
        t.stats.Stats.active_lane_cycles <-
          t.stats.Stats.active_lane_cycles + t.cfg.warp_size;
        Exec.L_uniform (Exec.step t.ctxs.(slot) instr)
      end
    in
    t.stats.Stats.instructions <- t.stats.Stats.instructions + 1;
    soa.Soa.issued.(slot) <- soa.Soa.issued.(slot) + 1;
    (* Timing: set the destination's ready cycle. *)
    let d = t.def_reg.(pc) in
    if d >= 0 then begin
      let ready =
        if t.is_global.(pc) then begin
          mem_sample t ~cycle ~completion;
          completion
        end
        else cycle + t.latency.(pc)
      in
      soa.Soa.reg_ready.(slot).(d) <- ready
    end
    else if d = -1 then begin
      (* Global stores still consume a memory slot. *)
      if t.is_global.(pc) then mem_sample t ~cycle ~completion
    end
    else multi_def_error t ~slot ~pc;
    (match louts with
    | Exec.L_diverge { taken; tgt } ->
        (* Both arms land on pc+1 when the target is the fall-through:
           no divergence to track. Otherwise suspend the continuation and
           the taken arm and run the fall-through arm first (routing pops
           the taken arm immediately when the branch is a loop exit). *)
        if tgt = pc + 1 then advance t ~slot ~next:(route t ~slot (pc + 1))
        else begin
          t.stats.Stats.divergent_branches <-
            t.stats.Stats.divergent_branches + 1;
          Soa.simt_diverge soa ~slot ~tgt ~taken ~rpc:t.reconv.(pc);
          advance t ~slot ~next:(Soa.simt_next soa ~slot (pc + 1))
        end
    | Exec.L_uniform Exec.Next -> advance t ~slot ~next:(route t ~slot (pc + 1))
    | Exec.L_uniform (Exec.Goto tgt) -> advance t ~slot ~next:(route t ~slot tgt)
    | Exec.L_uniform Exec.Stop ->
        if t.simt then (
          match Soa.simt_exit soa ~slot with
          | None -> warp_done t ~cycle ~slot cta
          | Some next -> advance t ~slot ~next)
        else warp_done t ~cycle ~slot cta
    | Exec.L_uniform Exec.Sync ->
        soa.Soa.status.(slot) <- Soa.st_barrier;
        advance t ~slot ~next:(route t ~slot (pc + 1));
        cta.arrived <- cta.arrived + 1;
        emit t ~cycle
          (Event_trace.Barrier_arrived
             { sm = t.sm_id; cta = soa.Soa.global_cta.(slot);
               warp = soa.Soa.warp_in_cta.(slot) });
        maybe_release_barrier t ~cycle cta
    | Exec.L_uniform Exec.Acq -> (
        let grant =
          match t.pstate with
          | Ps_srp srp -> (
              match Srp.acquire srp ~warp:slot with
              | Srp.Granted s ->
                  granted t ~cycle ~slot ~section:s ~in_use:(Srp.in_use srp);
                  true
              | Srp.Already_held _ -> true
              | Srp.Stall -> false)
          | Ps_paired srp -> (
              match Srp_paired.acquire srp ~warp:slot with
              | Srp_paired.Granted ->
                  granted t ~cycle ~slot
                    ~section:(Srp_paired.pair_of_warp ~warp:slot)
                    ~in_use:(Srp_paired.in_use srp);
                  true
              | Srp_paired.Already_held -> true
              | Srp_paired.Stall -> false)
          | Ps_static | Ps_owf | Ps_rfv _ -> true
        in
        match grant with
        | true ->
            t.stats.Stats.acquire_execs <- t.stats.Stats.acquire_execs + 1;
            if soa.Soa.acquire_stalled.(slot) = 0 then
              t.stats.Stats.acquire_first_try <-
                t.stats.Stats.acquire_first_try + 1;
            soa.Soa.acquire_stalled.(slot) <- 0;
            advance t ~slot ~next:(route t ~slot (pc + 1))
        | false ->
            (* Lost a same-cycle race for the last section; retry later. *)
            soa.Soa.acquire_stalled.(slot) <- 1)
    | Exec.L_uniform Exec.Rel ->
        (match t.pstate with
        | Ps_srp srp -> (
            match Srp.release srp ~warp:slot with
            | Srp.Released s ->
                released t ~cycle ~slot ~section:s ~in_use:(Srp.in_use srp)
            | Srp.Not_held -> ())
        | Ps_paired srp -> (
            match Srp_paired.release srp ~warp:slot with
            | Srp_paired.Released ->
                released t ~cycle ~slot
                  ~section:(Srp_paired.pair_of_warp ~warp:slot)
                  ~in_use:(Srp_paired.in_use srp)
            | Srp_paired.Not_held -> ())
        | Ps_static | Ps_owf | Ps_rfv _ -> ());
        advance t ~slot ~next:(route t ~slot (pc + 1)));
    true
  end

(* --- per-cycle step --------------------------------------------------- *)

let rank_block = function
  | Blocked_regs -> 5
  | Blocked_acquire -> 4
  | Blocked_mem -> 3
  | Blocked_deps -> 2
  | Blocked_barrier -> 1
  | Can_issue | Blocked_done -> 0

let stall_reason_of_block = function
  | Can_issue | Blocked_done -> Stats.Stall_empty
  | Blocked_deps -> Stats.Stall_deps
  | Blocked_mem -> Stats.Stall_mem_slot
  | Blocked_acquire -> Stats.Stall_acquire
  | Blocked_regs -> Stats.Stall_regs
  | Blocked_barrier -> Stats.Stall_barrier

(* One scan over the resident warps yields both the idle classification
   (the most specific blockage, see {!classify_idle}) and the min-wakeup
   summary: the earliest future cycle at which any warp's issue
   eligibility could change. Scoreboard stalls end at the warp's
   [ready_at]; structural memory stalls end when the SM's earliest slot
   completes; acquire, RFV-register and barrier stalls only end through
   another warp's issue, so while the whole GPU is idle they never end —
   they contribute no wakeup bound. Probing is side-effect free. *)
let idle_summary t ~cycle =
  let soa = t.soa in
  let best = ref Blocked_done in
  let wake = ref max_int in
  let mem_free = Mem_system.slot_free t.mem_sys ~sm:t.sm_id ~cycle in
  for slot = 0 to soa.Soa.n_slots - 1 do
    if soa.Soa.status.(slot) < Soa.st_done then begin
      let reason = check_warp ~probe:true t ~mem_free ~slot ~cycle in
      if rank_block reason > rank_block !best then best := reason;
      match reason with
      | Blocked_deps ->
          if soa.Soa.ready_at.(slot) < !wake then wake := soa.Soa.ready_at.(slot)
      | Blocked_mem ->
          let c = Mem_system.next_completion t.mem_sys ~sm:t.sm_id in
          if c < !wake then wake := c
      | Can_issue -> if cycle + 1 < !wake then wake := cycle + 1
      | Blocked_acquire | Blocked_regs | Blocked_barrier | Blocked_done -> ()
    end
  done;
  (stall_reason_of_block !best, !wake)

(* Per-cycle idle attribution: only the most specific blockage is needed,
   not the wakeup bound, and the blockage ranking is bounded by the
   policy ([Blocked_regs] only under RFV, [Blocked_acquire] only under
   SRP/paired/OWF) — so the scan stops as soon as the policy's top rank
   is found instead of visiting every slot. Runs on every cycle where
   some scheduler finds nothing to issue. *)
let classify_idle t ~cycle =
  let soa = t.soa in
  let status = soa.Soa.status in
  let best = ref Blocked_done in
  let best_rank = ref 0 in
  let n = soa.Soa.n_slots in
  let mem_free = Mem_system.slot_free t.mem_sys ~sm:t.sm_id ~cycle in
  let slot = ref 0 in
  while !slot < n && !best_rank < t.max_rank do
    let s = !slot in
    if status.(s) < Soa.st_done then begin
      let reason = check_warp ~probe:true t ~mem_free ~slot:s ~cycle in
      let rk = rank_block reason in
      if rk > !best_rank then begin
        best_rank := rk;
        best := reason
      end
    end;
    slot := s + 1
  done;
  stall_reason_of_block !best

(* --- diagnostics ------------------------------------------------------ *)

type warp_diag = {
  d_cta : int;
  d_warp : int;
  d_pc : int;
  d_status : Warp.status;
  d_block : Stats.stall_reason;
  d_ready_at : int;
  d_holds_ext : bool;
  d_held_section : int option;
  d_held_cycles : int;
}

let diagnose t ~cycle =
  let soa = t.soa in
  let acc = ref [] in
  let mem_free = Mem_system.slot_free t.mem_sys ~sm:t.sm_id ~cycle in
  for slot = soa.Soa.n_slots - 1 downto 0 do
    if soa.Soa.status.(slot) < Soa.st_done then begin
      let block = check_warp ~probe:true t ~mem_free ~slot ~cycle in
      let held_section =
        match t.pstate with
        | Ps_srp srp -> Srp.holds srp ~warp:slot
        | Ps_paired srp ->
            if Srp_paired.holds srp ~warp:slot then
              Some (Srp_paired.pair_of_warp ~warp:slot)
            else None
        | Ps_owf ->
            if soa.Soa.owns_ext.(slot) = 1 then Some (slot / 2) else None
        | Ps_static | Ps_rfv _ -> None
      in
      acc :=
        {
          d_cta = soa.Soa.global_cta.(slot);
          d_warp = soa.Soa.warp_in_cta.(slot);
          d_pc = soa.Soa.pc.(slot);
          d_status = Soa.status_of soa slot;
          d_block = stall_reason_of_block block;
          d_ready_at = soa.Soa.ready_at.(slot);
          d_holds_ext = held_section <> None;
          d_held_section = held_section;
          d_held_cycles =
            (if held_section <> None && soa.Soa.acquired_at.(slot) >= 0 then
               cycle - soa.Soa.acquired_at.(slot)
             else 0);
        }
        :: !acc
    end
  done;
  !acc

let pp_warp_diag ppf d =
  let status =
    match d.d_status with
    | Warp.Ready -> "ready"
    | Warp.At_barrier -> "at-barrier"
    | Warp.Done -> "done"
  in
  Format.fprintf ppf "cta %d warp %d: pc=%d %s block=%s ready_at=%s" d.d_cta
    d.d_warp d.d_pc status
    (Stats.reason_name d.d_block)
    (if d.d_ready_at = max_int then "-" else string_of_int d.d_ready_at);
  match d.d_held_section with
  | Some s ->
      Format.fprintf ppf " [holds section %d for %d cycles]" s d.d_held_cycles
  | None -> if d.d_holds_ext then Format.fprintf ppf " [holds ext set]"

let srp_invariant t =
  match t.pstate with
  | Ps_srp srp ->
      let in_use = Srp.in_use srp
      and free = Srp.free_sections srp
      and sections = Srp.n_sections srp in
      if in_use + free <> sections then
        Some
          (Error
             (Printf.sprintf "SRP conservation broken: %d in use + %d free <> %d sections"
                in_use free sections))
      else if not (Srp.consistent srp) then
        Some (Error "SRP status/bitmask/LUT bookkeeping out of sync")
      else Some (Ok (in_use, free, sections))
  | Ps_paired srp ->
      let in_use = Srp_paired.in_use srp
      and pairs = Srp_paired.n_pairs srp in
      if in_use < 0 || in_use > pairs then
        Some
          (Error
             (Printf.sprintf "paired SRP accounting broken: %d in use of %d pairs"
                in_use pairs))
      else Some (Ok (in_use, pairs - in_use, pairs))
  | Ps_static | Ps_owf | Ps_rfv _ -> None

let account_idle_span t ~from ~reason ~span =
  if t.resident_warps > 0 && span > 0 then begin
    (* Every scheduler of an idle SM bumps the same stall reason once per
       cycle, so a skipped span of [span] identical cycles contributes
       [span * n_schedulers] bumps — exactly what stepping them one by one
       would have recorded. *)
    let n = span * Array.length t.schedulers in
    Stats.bump_stall_by t.stats reason n;
    if reason = Stats.Stall_acquire then
      t.stats.Stats.acquire_stall_cycles <- t.stats.Stats.acquire_stall_cycles + n;
    match t.probe with
    | Some p -> Probe.note_idle_span p ~from ~span ~reason
    | None -> ()
  end

let finalize_probe t ~cycle =
  match t.probe with Some p -> Probe.finalize p ~cycle | None -> ()

let can_launch t = t.resident_ctas < t.cta_capacity && rfv_can_admit t

let step t ~cycle =
  (* Idle classification is pure and the SM state only changes when a
     scheduler issues, so consecutive idle schedulers in the same cycle
     share one classification instead of rescanning the warps. *)
  let idle_valid = ref false in
  let idle_reason = ref Stats.Stall_empty in
  let issued_any = ref false in
  let is_static =
    match t.pstate with
    | Ps_static -> true
    | Ps_srp _ | Ps_paired _ | Ps_owf | Ps_rfv _ -> false
  in
  let scheds = t.schedulers in
  for i = 0 to Array.length scheds - 1 do
    (* One scheduler's scan issues nothing, so the memory-slot answer is
       constant across its candidates and is captured per pick (an earlier
       scheduler's issue this cycle may have consumed the last slot, so it
       cannot be hoisted above the loop). Under the static policy the
       eligibility residual is pure and collapses to that one bit. *)
    let mem_free = Mem_system.slot_free t.mem_sys ~sm:t.sm_id ~cycle in
    let can_issue =
      if is_static then fun slot ->
        mem_free || not t.is_global.(t.soa.Soa.pc.(slot))
      else fun slot ->
        match check_ready ~probe:false t ~mem_free ~slot ~cycle with
        | Can_issue -> true
        | Blocked_deps | Blocked_mem | Blocked_acquire | Blocked_regs
        | Blocked_barrier | Blocked_done ->
            false
    in
    let slot = Scheduler.pick scheds.(i) ~soa:t.soa ~cycle ~can_issue in
    if slot >= 0 then begin
      idle_valid := false;
      if not !issued_any then begin
        issued_any := true;
        match t.probe with Some p -> Probe.flush_idle p | None -> ()
      end;
      if not (issue t ~slot ~cycle) then
        (* The eligibility the scheduler saw evaporated at the memory
           claim: leave the warp untouched and classify the slot. *)
        Stats.bump_stall t.stats Stats.Stall_mem_retry
    end
    else if t.resident_warps > 0 then begin
      let reason =
        if !idle_valid then !idle_reason
        else begin
          let r = classify_idle t ~cycle in
          idle_valid := true;
          idle_reason := r;
          r
        end
      in
      Stats.bump_stall t.stats reason;
      if reason = Stats.Stall_acquire then
        t.stats.Stats.acquire_stall_cycles <-
          t.stats.Stats.acquire_stall_cycles + 1
    end
  done;
  (* A fully idle cycle (no scheduler issued, warps resident) extends the
     SM's current stall episode; the probe closes it at the next issue.
     [idle_valid] necessarily holds here: the last scheduler found nothing
     to issue and classified the cycle. *)
  match t.probe with
  | Some p when (not !issued_any) && t.resident_warps > 0 ->
      if !idle_valid then Probe.note_idle p ~cycle ~reason:!idle_reason
  | Some _ | None -> ()
