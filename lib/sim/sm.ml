module Instr = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Regset = Gpu_isa.Regset
module Arch_config = Gpu_uarch.Arch_config
module Srp = Gpu_uarch.Srp
module Srp_paired = Gpu_uarch.Srp_paired

exception Verification_failure of string

type cta_state = {
  cta_slot : int;
  global_cta : int;
  n_warps : int;
  mutable arrived : int;   (* warps waiting at the barrier *)
  mutable running : int;   (* warps not yet Done *)
  shared : int array;      (* shared-memory words *)
}

type pstate =
  | Ps_static
  | Ps_srp of Srp.t
  | Ps_paired of Srp_paired.t
  | Ps_owf
  | Ps_rfv of { mutable used : int; capacity : int }

type t = {
  cfg : Arch_config.t;
  sm_id : int;
  kernel : Kernel.t;
  policy : Policy.t;
  memory : Memory.t;
  mem_sys : Mem_system.t;
  stats : Stats.t;
  instrs : Instr.t array;
  warps_per_cta : int;
  cta_capacity : int;
  srp_sections : int;
  ctas : cta_state option array;
  warps : Warp.t option array;
  schedulers : Scheduler.t array;
  pstate : pstate;
  (* Per-PC precomputation. *)
  latency : int array;           (* result latency for non-global instrs *)
  touches_ext : bool array;      (* any referenced register has index >= bs *)
  rfv_live : int array;          (* RFV: physical packs demanded at each pc *)
  mutable resident_ctas : int;
  mutable resident_warps : int;
  mutable retired : int;
  mutable launched_this_cycle : int;
  mutable next_age : int;
  record_stores : bool;
  trace_warp0 : bool;
  events : Event_trace.t option;
  probe : Probe.t option;
  bs : int;  (* base-set size for SRP/paired/OWF policies; max_int otherwise *)
  es : int;
  verify : bool;
}

(* Resident-CTA capacity under the policy's register accounting, combined
   with the shared-memory / thread / CTA-slot / warp-slot limits. *)
let compute_capacity (cfg : Arch_config.t) policy kernel =
  let wpc = Kernel.warps_per_cta cfg kernel in
  let regs_cta = Policy.regs_per_cta cfg policy ~warps_per_cta:wpc in
  let shmem_cta = Arch_config.round_shmem cfg kernel.Kernel.shmem_bytes in
  let cap v per = if per = 0 then max_int else v / per in
  let ctas =
    List.fold_left min cfg.max_ctas
      [ cap cfg.regfile_regs regs_cta;
        cap cfg.shmem_bytes shmem_cta;
        cap cfg.max_threads kernel.Kernel.cta_threads;
        cap cfg.max_warps wpc ]
  in
  (max ctas 0, wpc, regs_cta)

let cta_capacity_for cfg ~policy ~kernel =
  let capacity, _, _ = compute_capacity cfg policy kernel in
  capacity

let create ?events ?telemetry cfg ~sm_id ~policy ~kernel ~memory ~mem_sys ~stats
    ~record_stores ~trace_warp0 =
  let cta_capacity, wpc, regs_cta = compute_capacity cfg policy kernel in
  let prog = kernel.Kernel.program in
  let n = Program.length prog in
  let instrs = Array.init n (Program.get prog) in
  let bs, es, verify =
    match policy with
    | Policy.Srp { bs; es; verify } | Policy.Srp_paired { bs; es; verify } ->
        (bs, es, verify)
    | Policy.Owf { bs; es } -> (bs, es, false)
    | Policy.Static _ | Policy.Rfv _ -> (max_int, 0, false)
  in
  let srp_sections, pstate =
    match policy with
    | Policy.Static _ -> (0, Ps_static)
    | Policy.Srp { es; _ } ->
        let leftover = cfg.regfile_regs - (cta_capacity * regs_cta) in
        let sections =
          if es <= 0 then 0
          else min cfg.max_warps (max 0 (leftover / (es * cfg.warp_size)))
        in
        (sections, Ps_srp (Srp.create ~n_warps:cfg.max_warps ~sections))
    | Policy.Srp_paired _ ->
        if wpc mod 2 <> 0 then
          invalid_arg "Sm.create: paired-warps policy requires an even warp count per CTA";
        let pairs = cta_capacity * wpc / 2 in
        (pairs, Ps_paired (Srp_paired.create ~n_warps:cfg.max_warps ~enabled_pairs:pairs))
    | Policy.Owf _ ->
        if wpc mod 2 <> 0 then
          invalid_arg "Sm.create: OWF policy requires an even warp count per CTA";
        (cta_capacity * wpc / 2, Ps_owf)
    | Policy.Rfv _ ->
        (0, Ps_rfv { used = 0; capacity = cfg.regfile_regs / cfg.warp_size })
  in
  let latency =
    Array.map
      (fun i ->
        match Instr.lat_class i with
        | Instr.Lat_alu -> cfg.lat_alu
        | Instr.Lat_complex -> cfg.lat_complex
        | Instr.Lat_shared -> cfg.lat_shared
        | Instr.Lat_global -> cfg.lat_global (* refined at issue via mem_sys *)
        | Instr.Lat_control -> 1)
      instrs
  in
  let touches_ext =
    Array.map
      (fun i ->
        let rs = Instr.regs i in
        (not (Regset.is_empty rs)) && Regset.max_elt rs >= bs)
      instrs
  in
  let rfv_live =
    match policy with
    | Policy.Rfv { live; _ } ->
        if Array.length live <> n then
          invalid_arg "Sm.create: RFV live table length mismatch";
        live
    | Policy.Static _ | Policy.Srp _ | Policy.Srp_paired _ | Policy.Owf _ ->
        Array.make n 0
  in
  {
    cfg;
    sm_id;
    kernel;
    policy;
    memory;
    mem_sys;
    stats;
    instrs;
    warps_per_cta = wpc;
    cta_capacity;
    srp_sections;
    ctas = Array.make (max cta_capacity 1) None;
    warps = Array.make (max (cta_capacity * wpc) 1) None;
    schedulers =
      (let kind =
         match cfg.Arch_config.scheduler with
         | Arch_config.Gto -> Scheduler.Gto
         | Arch_config.Lrr -> Scheduler.Lrr
         | Arch_config.Two_level g -> Scheduler.Two_level g
       in
       Array.init cfg.n_schedulers (fun id ->
           Scheduler.create kind ~id ~n_schedulers:cfg.n_schedulers));
    pstate;
    latency;
    touches_ext;
    rfv_live;
    resident_ctas = 0;
    resident_warps = 0;
    retired = 0;
    launched_this_cycle = -1;
    next_age = 0;
    record_stores;
    trace_warp0;
    events;
    probe =
      Option.map
        (fun sink ->
          Probe.create sink ~sm_id ~n_slots:(max (cta_capacity * wpc) 1)
            ~n_cta_slots:(max cta_capacity 1) ~n_mem_slots:cfg.mem_slots)
        telemetry;
    bs;
    es;
    verify;
  }

let emit t ~cycle event =
  match t.events with
  | Some tr -> Event_trace.emit tr ~cycle event
  | None -> ()

let cta_capacity t = t.cta_capacity
let srp_sections t = t.srp_sections

let srp_in_use t =
  match t.pstate with
  | Ps_srp srp -> Srp.in_use srp
  | Ps_paired srp -> Srp_paired.in_use srp
  | Ps_static | Ps_owf | Ps_rfv _ -> 0
let resident_ctas t = t.resident_ctas
let resident_warps t = t.resident_warps
let retired_ctas t = t.retired

(* --- CTA launch and retirement ------------------------------------- *)

let free_cta_slot t =
  let n = Array.length t.ctas in
  let rec go i =
    if i >= t.cta_capacity || i >= n then None
    else match t.ctas.(i) with None -> Some i | Some _ -> go (i + 1)
  in
  go 0

let rfv_can_admit t =
  match t.pstate with
  | Ps_rfv r -> r.used + (t.warps_per_cta * t.rfv_live.(0)) <= r.capacity
  | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> true

let try_launch t ~global_cta ~cycle =
  if t.launched_this_cycle = cycle then false
  else
    match free_cta_slot t with
    | None -> false
    | Some slot when rfv_can_admit t ->
        let n_warps = t.warps_per_cta in
        let shmem_words = max 1 (t.kernel.Kernel.shmem_bytes / 4) in
        let cta =
          {
            cta_slot = slot;
            global_cta;
            n_warps;
            arrived = 0;
            running = n_warps;
            shared = Array.make shmem_words 0;
          }
        in
        t.ctas.(slot) <- Some cta;
        let n_regs = t.kernel.Kernel.program.Program.n_regs in
        for w = 0 to n_warps - 1 do
          let wslot = (slot * t.warps_per_cta) + w in
          let warp =
            Warp.create ~slot:wslot ~cta_slot:slot ~global_cta ~warp_in_cta:w
              ~age:t.next_age ~n_regs
          in
          t.next_age <- t.next_age + 1;
          (* OWF: warps pair up within their CTA. *)
          warp.Warp.partner <-
            (if w land 1 = 0 then
               if w + 1 < n_warps then wslot + 1 else -1
             else wslot - 1);
          (match t.pstate with
          | Ps_rfv r ->
              warp.Warp.rfv_alloc <- t.rfv_live.(0);
              r.used <- r.used + t.rfv_live.(0)
          | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> ());
          t.warps.(wslot) <- Some warp
        done;
        t.resident_ctas <- t.resident_ctas + 1;
        t.resident_warps <- t.resident_warps + n_warps;
        t.launched_this_cycle <- cycle;
        emit t ~cycle (Event_trace.Cta_launched { sm = t.sm_id; cta = global_cta });
        (match t.probe with
        | Some p ->
            Probe.cta_launch p ~cycle ~cta_slot:slot ~global_cta;
            for w = 0 to n_warps - 1 do
              Probe.warp_start p ~cycle
                ~slot:((slot * t.warps_per_cta) + w)
                ~global_cta
            done
        | None -> ());
        true
    | Some _ -> false

let retire_cta t ~cycle cta =
  emit t ~cycle (Event_trace.Cta_retired { sm = t.sm_id; cta = cta.global_cta });
  (match t.probe with
  | Some p -> Probe.cta_retire p ~cycle ~cta_slot:cta.cta_slot
  | None -> ());
  for w = 0 to cta.n_warps - 1 do
    t.warps.((cta.cta_slot * t.warps_per_cta) + w) <- None
  done;
  t.ctas.(cta.cta_slot) <- None;
  t.resident_ctas <- t.resident_ctas - 1;
  t.resident_warps <- t.resident_warps - cta.n_warps;
  t.retired <- t.retired + 1;
  t.stats.Stats.ctas_retired <- t.stats.Stats.ctas_retired + 1

(* --- execution context --------------------------------------------- *)

let shared_ref t (warp : Warp.t) =
  match t.ctas.(warp.Warp.cta_slot) with
  | Some cta -> cta.shared
  | None -> invalid_arg "Sm: warp without a CTA"

let make_ctx t (warp : Warp.t) =
  let shared = shared_ref t warp in
  let shared_words = Array.length shared in
  (* Out-of-bounds shared accesses wrap (real hardware would fault or read
     a neighbour's bank); the wrap is counted so workloads exercising it
     are visible in the statistics rather than silently absorbed. *)
  let shared_index addr =
    if addr < 0 || addr >= shared_words then
      t.stats.Stats.shared_oob <- t.stats.Stats.shared_oob + 1;
    ((addr mod shared_words) + shared_words) mod shared_words
  in
  let read space addr =
    match space with
    | Instr.Global -> Memory.read_global t.memory addr
    | Instr.Shared -> shared.(shared_index addr)
  in
  let write space addr v =
    if t.record_stores then
      Stats.record_store t.stats ~cta:warp.Warp.global_cta ~warp:warp.Warp.warp_in_cta
        space addr v;
    match space with
    | Instr.Global -> Memory.write_global t.memory addr v
    | Instr.Shared -> shared.(shared_index addr) <- v
  in
  {
    Exec.regs = warp.Warp.regs;
    params = t.kernel.Kernel.params;
    tid = warp.Warp.warp_in_cta * t.cfg.warp_size;
    ctaid = warp.Warp.global_cta;
    ntid = t.kernel.Kernel.cta_threads;
    nctaid = t.kernel.Kernel.grid_ctas;
    warp_id = warp.Warp.warp_in_cta;
    read;
    write;
  }

(* --- issue eligibility ---------------------------------------------- *)

type block_reason =
  | Can_issue
  | Blocked_deps
  | Blocked_mem
  | Blocked_acquire
  | Blocked_regs
  | Blocked_barrier
  | Blocked_done

(* RFV: the next instruction's demand, given this instruction's outcome.
   Branch conditions are evaluated without side effects. *)
let rfv_peek_next t (warp : Warp.t) instr =
  let pc = warp.Warp.pc in
  match instr with
  | Instr.Jump tgt -> tgt
  | Instr.Jump_if (c, tgt) ->
      let ctx = make_ctx t warp in
      if Exec.operand ctx c <> 0 then tgt else pc + 1
  | Instr.Jump_ifz (c, tgt) ->
      let ctx = make_ctx t warp in
      if Exec.operand ctx c = 0 then tgt else pc + 1
  | Instr.Exit -> pc
  | _ -> pc + 1

(* Forward-progress anchor for RFV: the oldest warp that could actually
   issue (barrier-parked warps are waiting on others and must not anchor
   the override, or a register-starved CTA deadlocks against it). *)
let oldest_ready_age t =
  Array.fold_left
    (fun acc w ->
      match w with
      | Some w when w.Warp.status = Warp.Ready -> min acc w.Warp.age
      | Some _ | None -> acc)
    max_int t.warps

(* [check_warp] answers "can this warp issue right now, and if not, why?".
   With [~probe:true] the answer is computed without side effects. The
   default (an actual issue attempt by the warp's scheduler) records
   acquire stalls: the flag feeds the first-try statistic and the
   [Acquire_stalled] trace event marks the start of a stall episode. *)
let check_warp ?(probe = false) t (warp : Warp.t) ~cycle =
  match warp.Warp.status with
  | Warp.Done -> Blocked_done
  | Warp.At_barrier -> Blocked_barrier
  | Warp.Ready ->
      let pc = warp.Warp.pc in
      let instr = t.instrs.(pc) in
      (* [ready_at] is the maintained max over the instruction's registers
         of [reg_ready] (refreshed at every pc move), so the scoreboard
         check is one comparison instead of a register-set scan. *)
      if warp.Warp.ready_at > cycle then Blocked_deps
      else
        let mem_ok =
          match Instr.lat_class instr with
          | Instr.Lat_global -> Mem_system.slot_free t.mem_sys ~sm:t.sm_id ~cycle
          | Instr.Lat_alu | Instr.Lat_complex | Instr.Lat_shared | Instr.Lat_control ->
              true
        in
        if not mem_ok then Blocked_mem
        else begin
          match instr with
          | Instr.Acquire -> (
              match t.pstate with
              | Ps_srp srp ->
                  if
                    Srp.holds srp ~warp:warp.Warp.slot <> None
                    || Srp.free_sections srp > 0
                  then Can_issue
                  else begin
                    if not probe then begin
                      if not warp.Warp.acquire_stalled then
                        emit t ~cycle
                          (Event_trace.Acquire_stalled
                             { sm = t.sm_id; cta = warp.Warp.global_cta;
                               warp = warp.Warp.warp_in_cta });
                      warp.Warp.acquire_stalled <- true
                    end;
                    Blocked_acquire
                  end
              | Ps_paired srp ->
                  if Srp_paired.available srp ~warp:warp.Warp.slot then Can_issue
                  else begin
                    if not probe then begin
                      if not warp.Warp.acquire_stalled then
                        emit t ~cycle
                          (Event_trace.Acquire_stalled
                             { sm = t.sm_id; cta = warp.Warp.global_cta;
                               warp = warp.Warp.warp_in_cta });
                      warp.Warp.acquire_stalled <- true
                    end;
                    Blocked_acquire
                  end
              | Ps_static | Ps_owf | Ps_rfv _ -> Can_issue)
          | _ -> (
              match t.pstate with
              | Ps_owf when t.touches_ext.(pc) && not warp.Warp.owns_ext ->
                  (* First extended access acquires the pair's registers for
                     the rest of the warp's life; blocked while the partner
                     owns them. *)
                  (* A partner parked at a barrier cannot finish until this
                     warp arrives too; blocking here would deadlock the CTA,
                     so ownership is ceded (the one concession the
                     no-in-kernel-release design needs to run barrier
                     kernels). *)
                  let partner_owns =
                    warp.Warp.partner >= 0
                    &&
                    match t.warps.(warp.Warp.partner) with
                    | Some p -> p.Warp.owns_ext && p.Warp.status = Warp.Ready
                    | None -> false
                  in
                  if partner_owns then begin
                    if not probe then warp.Warp.acquire_stalled <- true;
                    Blocked_acquire
                  end
                  else Can_issue
              | Ps_rfv r ->
                  let next = rfv_peek_next t warp instr in
                  let delta = t.rfv_live.(next) - warp.Warp.rfv_alloc in
                  if
                    delta <= 0
                    || r.used + delta <= r.capacity
                    || warp.Warp.age = oldest_ready_age t
                  then Can_issue
                  else Blocked_regs
              | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> Can_issue)
        end

(* --- barrier handling ------------------------------------------------ *)

let maybe_release_barrier t ~cycle cta =
  if cta.running > 0 && cta.arrived = cta.running then begin
    cta.arrived <- 0;
    emit t ~cycle (Event_trace.Barrier_released { sm = t.sm_id; cta = cta.global_cta });
    for w = 0 to cta.n_warps - 1 do
      match t.warps.((cta.cta_slot * t.warps_per_cta) + w) with
      | Some warp when warp.Warp.status = Warp.At_barrier ->
          warp.Warp.status <- Warp.Ready
      | Some _ | None -> ()
    done
  end

(* --- issue ----------------------------------------------------------- *)

let verify_access t (warp : Warp.t) pc =
  if t.verify && t.touches_ext.(pc) then begin
    let rs = Instr.regs t.instrs.(pc) in
    let top = Regset.max_elt rs in
    if top >= t.bs + t.es then
      raise
        (Verification_failure
           (Printf.sprintf "pc %d references r%d beyond |Bs|+|Es| = %d" pc top
              (t.bs + t.es)));
    let section =
      match t.pstate with
      | Ps_srp srp -> Srp.holds srp ~warp:warp.Warp.slot
      | Ps_paired srp ->
          if Srp_paired.holds srp ~warp:warp.Warp.slot then
            Some (Srp_paired.pair_of_warp ~warp:warp.Warp.slot)
          else None
      | Ps_static | Ps_owf | Ps_rfv _ -> Some 0
    in
    (* Drive every referenced register through the Figure 6 two-segment
       mapping: it must produce a valid physical index (and trips exactly
       when the warp holds no section). *)
    let mapping =
      {
        Gpu_uarch.Reg_mapping.bs = t.bs;
        es = t.es;
        srp_offset =
          Gpu_uarch.Reg_mapping.srp_offset_for ~bs:t.bs
            ~resident_warps:(Array.length t.warps);
      }
    in
    Regset.iter
      (fun x ->
        match
          Gpu_uarch.Reg_mapping.regmutex mapping ~widx:warp.Warp.slot ~section ~x
        with
        | Ok _ -> ()
        | Error e ->
            raise
              (Verification_failure
                 (Format.asprintf "pc %d, register r%d: %a" pc x
                    Gpu_uarch.Reg_mapping.pp_error e)))
      rs
  end

let rfv_move t (warp : Warp.t) ~next_pc =
  match t.pstate with
  | Ps_rfv r ->
      let demand = t.rfv_live.(next_pc) in
      r.used <- r.used + demand - warp.Warp.rfv_alloc;
      warp.Warp.rfv_alloc <- demand
  | Ps_static | Ps_srp _ | Ps_paired _ | Ps_owf -> ()

(* On a successful release the physical extended set goes back to the SRP
   and may be handed to another warp, so the architected values above [bs]
   cease to exist for this warp. The functional model keeps a full per-warp
   register array, which would silently preserve them; clobbering with a
   poison constant makes any use-after-release (a value the compiler failed
   to compact below the Bs boundary) visible as a store-trace divergence
   instead of a lucky pass. Sound for checker-accepted programs: no
   extended register is live at a release point. *)
let release_poison = 0xDEAD_BEEF

let poison_ext t (warp : Warp.t) =
  for r = t.bs to Array.length warp.Warp.regs - 1 do
    warp.Warp.regs.(r) <- release_poison
  done

let warp_done t ~cycle (warp : Warp.t) cta =
  warp.Warp.status <- Warp.Done;
  emit t ~cycle
    (Event_trace.Warp_exited
       { sm = t.sm_id; cta = warp.Warp.global_cta; warp = warp.Warp.warp_in_cta });
  Stats.record_warp_done t.stats ~cta:warp.Warp.global_cta
    ~warp:warp.Warp.warp_in_cta ~instructions:warp.Warp.issued;
  cta.running <- cta.running - 1;
  (match t.probe with
  | Some p ->
      Probe.hold_end p ~cycle ~slot:warp.Warp.slot;
      Probe.warp_close p ~cycle ~slot:warp.Warp.slot
  | None -> ());
  (match t.pstate with
  | Ps_srp srp -> (
      match Srp.reset_warp srp ~warp:warp.Warp.slot with
      | Some _ -> (
          match t.probe with
          | Some p -> Probe.srp_sample p ~cycle ~in_use:(Srp.in_use srp)
          | None -> ())
      | None -> ())
  | Ps_paired srp ->
      if Srp_paired.reset_warp srp ~warp:warp.Warp.slot then (
        match t.probe with
        | Some p -> Probe.srp_sample p ~cycle ~in_use:(Srp_paired.in_use srp)
        | None -> ())
  | Ps_owf -> warp.Warp.owns_ext <- false
  | Ps_rfv r ->
      r.used <- r.used - warp.Warp.rfv_alloc;
      warp.Warp.rfv_alloc <- 0
  | Ps_static -> ());
  warp.Warp.acquired_at <- -1;
  if cta.running = 0 then retire_cta t ~cycle cta else maybe_release_barrier t ~cycle cta

let issue t (warp : Warp.t) ~cycle =
  let pc = warp.Warp.pc in
  let instr = t.instrs.(pc) in
  let cta =
    match t.ctas.(warp.Warp.cta_slot) with
    | Some c -> c
    | None -> invalid_arg "Sm.issue: orphan warp"
  in
  verify_access t warp pc;
  (* OWF: silent one-time acquire at the first extended access. *)
  (match t.pstate with
  | Ps_owf when t.touches_ext.(pc) && not warp.Warp.owns_ext ->
      warp.Warp.owns_ext <- true;
      warp.Warp.acquired_at <- cycle;
      (match t.probe with
      | Some p ->
          Probe.hold_begin p ~cycle ~slot:warp.Warp.slot
            ~section:(warp.Warp.slot / 2)
      | None -> ());
      t.stats.Stats.acquire_execs <- t.stats.Stats.acquire_execs + 1;
      if not warp.Warp.acquire_stalled then
        t.stats.Stats.acquire_first_try <- t.stats.Stats.acquire_first_try + 1;
      warp.Warp.acquire_stalled <- false
  | Ps_owf | Ps_static | Ps_srp _ | Ps_paired _ | Ps_rfv _ -> ());
  if t.trace_warp0 && warp.Warp.global_cta = 0 && warp.Warp.warp_in_cta = 0 then
    t.stats.Stats.pc_trace <- pc :: t.stats.Stats.pc_trace;
  let ctx = make_ctx t warp in
  let outcome = Exec.step ctx instr in
  t.stats.Stats.instructions <- t.stats.Stats.instructions + 1;
  warp.Warp.issued <- warp.Warp.issued + 1;
  (* Timing: set the destination's ready cycle. *)
  let mem_sample completion =
    match t.probe with
    | Some p -> Probe.mem_issue p ~cycle ~completion
    | None -> ()
  in
  (match Instr.defs instr |> Regset.to_list with
  | [ d ] ->
      let ready =
        match Instr.lat_class instr with
        | Instr.Lat_global ->
            let completion = Mem_system.issue_global t.mem_sys ~sm:t.sm_id ~cycle in
            mem_sample completion;
            completion
        | Instr.Lat_alu | Instr.Lat_complex | Instr.Lat_shared | Instr.Lat_control ->
            cycle + t.latency.(pc)
      in
      warp.Warp.reg_ready.(d) <- ready
  | [] ->
      (* Global stores still consume a memory slot. *)
      (match instr with
      | Instr.Store (Instr.Global, _, _, _) ->
          mem_sample (Mem_system.issue_global t.mem_sys ~sm:t.sm_id ~cycle)
      | _ -> ())
  | _ :: _ :: _ -> assert false);
  let advance next =
    rfv_move t warp ~next_pc:next;
    warp.Warp.pc <- next;
    Warp.refresh_ready_at warp t.instrs.(next)
  in
  match outcome with
  | Exec.Next -> advance (pc + 1)
  | Exec.Goto tgt -> advance tgt
  | Exec.Stop -> warp_done t ~cycle warp cta
  | Exec.Sync ->
      warp.Warp.status <- Warp.At_barrier;
      advance (pc + 1);
      cta.arrived <- cta.arrived + 1;
      emit t ~cycle
        (Event_trace.Barrier_arrived
           { sm = t.sm_id; cta = warp.Warp.global_cta; warp = warp.Warp.warp_in_cta });
      maybe_release_barrier t ~cycle cta
  | Exec.Acq -> (
      let granted_event section =
        emit t ~cycle
          (Event_trace.Acquire_granted
             { sm = t.sm_id; cta = warp.Warp.global_cta;
               warp = warp.Warp.warp_in_cta; section })
      in
      let granted_probe section in_use =
        warp.Warp.acquired_at <- cycle;
        match t.probe with
        | Some p ->
            Probe.hold_begin p ~cycle ~slot:warp.Warp.slot ~section;
            Probe.srp_sample p ~cycle ~in_use
        | None -> ()
      in
      let grant =
        match t.pstate with
        | Ps_srp srp -> (
            match Srp.acquire srp ~warp:warp.Warp.slot with
            | Srp.Granted s ->
                granted_event s;
                granted_probe s (Srp.in_use srp);
                true
            | Srp.Already_held _ -> true
            | Srp.Stall -> false)
        | Ps_paired srp -> (
            match Srp_paired.acquire srp ~warp:warp.Warp.slot with
            | Srp_paired.Granted ->
                let pair = Srp_paired.pair_of_warp ~warp:warp.Warp.slot in
                granted_event pair;
                granted_probe pair (Srp_paired.in_use srp);
                true
            | Srp_paired.Already_held -> true
            | Srp_paired.Stall -> false)
        | Ps_static | Ps_owf | Ps_rfv _ -> true
      in
      match grant with
      | true ->
          t.stats.Stats.acquire_execs <- t.stats.Stats.acquire_execs + 1;
          if not warp.Warp.acquire_stalled then
            t.stats.Stats.acquire_first_try <- t.stats.Stats.acquire_first_try + 1;
          warp.Warp.acquire_stalled <- false;
          advance (pc + 1)
      | false ->
          (* Lost a same-cycle race for the last section; retry later. *)
          warp.Warp.acquire_stalled <- true)
  | Exec.Rel ->
      (let released_event section =
         emit t ~cycle
           (Event_trace.Release
              { sm = t.sm_id; cta = warp.Warp.global_cta;
                warp = warp.Warp.warp_in_cta; section })
       in
       let released_probe in_use =
         warp.Warp.acquired_at <- -1;
         match t.probe with
         | Some p ->
             Probe.hold_end p ~cycle ~slot:warp.Warp.slot;
             Probe.srp_sample p ~cycle ~in_use
         | None -> ()
       in
       match t.pstate with
      | Ps_srp srp -> (
          match Srp.release srp ~warp:warp.Warp.slot with
          | Srp.Released s ->
              released_event s;
              released_probe (Srp.in_use srp);
              t.stats.Stats.release_execs <- t.stats.Stats.release_execs + 1;
              poison_ext t warp
          | Srp.Not_held -> ())
      | Ps_paired srp -> (
          match Srp_paired.release srp ~warp:warp.Warp.slot with
          | Srp_paired.Released ->
              released_event (Srp_paired.pair_of_warp ~warp:warp.Warp.slot);
              released_probe (Srp_paired.in_use srp);
              t.stats.Stats.release_execs <- t.stats.Stats.release_execs + 1;
              poison_ext t warp
          | Srp_paired.Not_held -> ())
      | Ps_static | Ps_owf | Ps_rfv _ -> ());
      advance (pc + 1)

(* --- per-cycle step --------------------------------------------------- *)

let rank_block = function
  | Blocked_regs -> 5
  | Blocked_acquire -> 4
  | Blocked_mem -> 3
  | Blocked_deps -> 2
  | Blocked_barrier -> 1
  | Can_issue | Blocked_done -> 0

let stall_reason_of_block = function
  | Can_issue | Blocked_done -> Stats.Stall_empty
  | Blocked_deps -> Stats.Stall_deps
  | Blocked_mem -> Stats.Stall_mem_slot
  | Blocked_acquire -> Stats.Stall_acquire
  | Blocked_regs -> Stats.Stall_regs
  | Blocked_barrier -> Stats.Stall_barrier

(* One scan over the resident warps yields both the idle classification
   (the most specific blockage, see {!classify_idle}) and the min-wakeup
   summary: the earliest future cycle at which any warp's [check_warp]
   answer could change. Scoreboard stalls end at the warp's [ready_at];
   structural memory stalls end when the SM's earliest slot completes;
   acquire, RFV-register and barrier stalls only end through another
   warp's issue, so while the whole GPU is idle they never end — they
   contribute no wakeup bound. Probing is side-effect free. *)
let idle_summary t ~cycle =
  let best = ref Blocked_done in
  let wake = ref max_int in
  Array.iter
    (fun w ->
      match w with
      | Some w when w.Warp.status <> Warp.Done ->
          let reason = check_warp ~probe:true t w ~cycle in
          if rank_block reason > rank_block !best then best := reason;
          (match reason with
          | Blocked_deps -> wake := min !wake w.Warp.ready_at
          | Blocked_mem ->
              wake := min !wake (Mem_system.next_completion t.mem_sys ~sm:t.sm_id)
          | Can_issue -> wake := min !wake (cycle + 1)
          | Blocked_acquire | Blocked_regs | Blocked_barrier | Blocked_done -> ())
      | Some _ | None -> ())
    t.warps;
  (stall_reason_of_block !best, !wake)

let classify_idle t ~cycle = fst (idle_summary t ~cycle)

(* --- diagnostics ------------------------------------------------------ *)

type warp_diag = {
  d_cta : int;
  d_warp : int;
  d_pc : int;
  d_status : Warp.status;
  d_block : Stats.stall_reason;
  d_ready_at : int;
  d_holds_ext : bool;
  d_held_section : int option;
  d_held_cycles : int;
}

let diagnose t ~cycle =
  let acc = ref [] in
  for s = Array.length t.warps - 1 downto 0 do
    match t.warps.(s) with
    | Some w when w.Warp.status <> Warp.Done ->
        let block = check_warp ~probe:true t w ~cycle in
        let held_section =
          match t.pstate with
          | Ps_srp srp -> Srp.holds srp ~warp:w.Warp.slot
          | Ps_paired srp ->
              if Srp_paired.holds srp ~warp:w.Warp.slot then
                Some (Srp_paired.pair_of_warp ~warp:w.Warp.slot)
              else None
          | Ps_owf -> if w.Warp.owns_ext then Some (w.Warp.slot / 2) else None
          | Ps_static | Ps_rfv _ -> None
        in
        acc :=
          {
            d_cta = w.Warp.global_cta;
            d_warp = w.Warp.warp_in_cta;
            d_pc = w.Warp.pc;
            d_status = w.Warp.status;
            d_block = stall_reason_of_block block;
            d_ready_at = w.Warp.ready_at;
            d_holds_ext = held_section <> None;
            d_held_section = held_section;
            d_held_cycles =
              (if held_section <> None && w.Warp.acquired_at >= 0 then
                 cycle - w.Warp.acquired_at
               else 0);
          }
          :: !acc
    | Some _ | None -> ()
  done;
  !acc

let pp_warp_diag ppf d =
  let status =
    match d.d_status with
    | Warp.Ready -> "ready"
    | Warp.At_barrier -> "at-barrier"
    | Warp.Done -> "done"
  in
  Format.fprintf ppf "cta %d warp %d: pc=%d %s block=%s ready_at=%s" d.d_cta
    d.d_warp d.d_pc status
    (Stats.reason_name d.d_block)
    (if d.d_ready_at = max_int then "-" else string_of_int d.d_ready_at);
  match d.d_held_section with
  | Some s ->
      Format.fprintf ppf " [holds section %d for %d cycles]" s d.d_held_cycles
  | None -> if d.d_holds_ext then Format.fprintf ppf " [holds ext set]"

let srp_invariant t =
  match t.pstate with
  | Ps_srp srp ->
      let in_use = Srp.in_use srp
      and free = Srp.free_sections srp
      and sections = Srp.n_sections srp in
      if in_use + free <> sections then
        Some
          (Error
             (Printf.sprintf "SRP conservation broken: %d in use + %d free <> %d sections"
                in_use free sections))
      else if not (Srp.consistent srp) then
        Some (Error "SRP status/bitmask/LUT bookkeeping out of sync")
      else Some (Ok (in_use, free, sections))
  | Ps_paired srp ->
      let in_use = Srp_paired.in_use srp
      and pairs = Srp_paired.n_pairs srp in
      if in_use < 0 || in_use > pairs then
        Some
          (Error
             (Printf.sprintf "paired SRP accounting broken: %d in use of %d pairs"
                in_use pairs))
      else Some (Ok (in_use, pairs - in_use, pairs))
  | Ps_static | Ps_owf | Ps_rfv _ -> None

let account_idle_span t ~from ~reason ~span =
  if t.resident_warps > 0 && span > 0 then begin
    (* Every scheduler of an idle SM bumps the same stall reason once per
       cycle, so a skipped span of [span] identical cycles contributes
       [span * n_schedulers] bumps — exactly what stepping them one by one
       would have recorded. *)
    let n = span * Array.length t.schedulers in
    Stats.bump_stall_by t.stats reason n;
    if reason = Stats.Stall_acquire then
      t.stats.Stats.acquire_stall_cycles <- t.stats.Stats.acquire_stall_cycles + n;
    match t.probe with
    | Some p -> Probe.note_idle_span p ~from ~span ~reason
    | None -> ()
  end

let finalize_probe t ~cycle =
  match t.probe with Some p -> Probe.finalize p ~cycle | None -> ()

let can_launch t = free_cta_slot t <> None && rfv_can_admit t

let step t ~cycle =
  let n_slots = Array.length t.warps in
  let priority (w : Warp.t) =
    match t.pstate with Ps_owf -> if w.Warp.owns_ext then 0 else 1 | _ -> 0
  in
  (* Idle classification is pure and the SM state only changes when a
     scheduler issues, so consecutive idle schedulers in the same cycle
     share one classification instead of rescanning the warps. *)
  let idle_memo = ref None in
  let issued_any = ref false in
  Array.iter
    (fun sched ->
      let can_issue w =
        match check_warp t w ~cycle with
        | Can_issue -> true
        | Blocked_deps | Blocked_mem | Blocked_acquire | Blocked_regs
        | Blocked_barrier | Blocked_done ->
            false
      in
      match
        Scheduler.pick sched ~n_slots ~get:(fun s -> t.warps.(s)) ~can_issue ~priority
      with
      | Some warp ->
          idle_memo := None;
          if not !issued_any then begin
            issued_any := true;
            match t.probe with Some p -> Probe.flush_idle p | None -> ()
          end;
          issue t warp ~cycle
      | None ->
          if t.resident_warps > 0 then begin
            let reason =
              match !idle_memo with
              | Some r -> r
              | None ->
                  let r = classify_idle t ~cycle in
                  idle_memo := Some r;
                  r
            in
            Stats.bump_stall t.stats reason;
            if reason = Stats.Stall_acquire then
              t.stats.Stats.acquire_stall_cycles <-
                t.stats.Stats.acquire_stall_cycles + 1
          end)
    t.schedulers;
  (* A fully idle cycle (no scheduler issued, warps resident) extends the
     SM's current stall episode; the probe closes it at the next issue.
     [idle_memo] is necessarily [Some _] here: the last scheduler found
     nothing to issue and classified the cycle. *)
  match t.probe with
  | Some p when (not !issued_any) && t.resident_warps > 0 -> (
      match !idle_memo with
      | Some reason -> Probe.note_idle p ~cycle ~reason
      | None -> ())
  | Some _ | None -> ()
