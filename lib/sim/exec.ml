module Instr = Gpu_isa.Instr

type ctx = {
  regs : int array;
  params : int array;
  tid : int;
  mutable ctaid : int;
  ntid : int;
  nctaid : int;
  warp_id : int;
  mutable shared : int array;
  spill_words : int;
  memory : Memory.t;
  stats : Stats.t;
  record_stores : bool;
}

type outcome =
  | Next
  | Goto of int
  | Stop
  | Sync
  | Acq
  | Rel

let operand ctx = function
  | Instr.Reg r -> ctx.regs.(r)
  | Instr.Imm n -> n
  | Instr.Param i -> if i < Array.length ctx.params then ctx.params.(i) else 0
  | Instr.Special Instr.Tid -> ctx.tid
  | Instr.Special Instr.Ctaid -> ctx.ctaid
  | Instr.Special Instr.Ntid -> ctx.ntid
  | Instr.Special Instr.Nctaid -> ctx.nctaid
  | Instr.Special Instr.Warp_id -> ctx.warp_id

let binop op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then 0 else a / b
  | Instr.Rem -> if b = 0 then 0 else a mod b
  | Instr.Min -> min a b
  | Instr.Max -> max a b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 31)
  | Instr.Shr -> a asr (b land 31)

let unop op a =
  match op with
  | Instr.Neg -> -a
  | Instr.Not -> lnot a
  | Instr.Abs -> abs a

let cmpop op a b =
  let r =
    match op with
    | Instr.Eq -> a = b
    | Instr.Ne -> a <> b
    | Instr.Lt -> a < b
    | Instr.Le -> a <= b
    | Instr.Gt -> a > b
    | Instr.Ge -> a >= b
  in
  if r then 1 else 0

(* Out-of-bounds shared accesses wrap (real hardware would fault or read a
   neighbour's bank); the wrap is counted so workloads exercising it are
   visible in the statistics rather than silently absorbed. The user
   window excludes the spill window RegDem reserves at the top of the
   allocation, so a user access wraps exactly as it would without the
   demotion pass — the spill window is invisible to the program's
   architectural shared-memory semantics. *)
let shared_index ctx addr =
  let words = Array.length ctx.shared - ctx.spill_words in
  if addr < 0 || addr >= words then
    ctx.stats.Stats.shared_oob <- ctx.stats.Stats.shared_oob + 1;
  ((addr mod words) + words) mod words

(* Spill accesses address the reserved window relative to its base. Any
   access outside the window — including a spill instruction executing
   with no window configured — is a compiler bug, counted as [shared_oob]
   and wrapped into the user window so it stays observable downstream
   (the fuzz oracle treats a shared_oob delta vs baseline as a hard
   failure). *)
let spill_index ctx rel =
  if ctx.spill_words > 0 && rel >= 0 && rel < ctx.spill_words then
    Array.length ctx.shared - ctx.spill_words + rel
  else begin
    ctx.stats.Stats.shared_oob <- ctx.stats.Stats.shared_oob + 1;
    let words = Array.length ctx.shared in
    ((rel mod words) + words) mod words
  end

let read ctx space addr =
  match space with
  | Instr.Global -> Memory.read_global ctx.memory addr
  | Instr.Shared ->
      ctx.stats.Stats.shared_reads <- ctx.stats.Stats.shared_reads + 1;
      ctx.shared.(shared_index ctx addr)
  | Instr.Spill ->
      ctx.stats.Stats.fill_loads <- ctx.stats.Stats.fill_loads + 1;
      ctx.shared.(spill_index ctx addr)

(* Spill stores are micro-architectural traffic, not program semantics:
   they are never recorded in the architectural store trace, which is what
   lets the fuzz oracle demand store-trace equality between RegDem and
   baseline. *)
let write ctx space addr v =
  match space with
  | Instr.Global ->
      if ctx.record_stores then
        Stats.record_store ctx.stats ~cta:ctx.ctaid ~warp:ctx.warp_id space addr v;
      Memory.write_global ctx.memory addr v
  | Instr.Shared ->
      if ctx.record_stores then
        Stats.record_store ctx.stats ~cta:ctx.ctaid ~warp:ctx.warp_id space addr v;
      ctx.stats.Stats.shared_writes <- ctx.stats.Stats.shared_writes + 1;
      ctx.shared.(shared_index ctx addr) <- v
  | Instr.Spill ->
      ctx.stats.Stats.spill_stores <- ctx.stats.Stats.spill_stores + 1;
      ctx.shared.(spill_index ctx addr) <- v

(* Register-file port activity per executed instruction, for the energy
   model: one read per register operand (duplicates count — each is a
   port access), one write per defined register. Counted here, at
   execution granularity, so the totals are identical under fast-forward
   and brute-force stepping (scheduler re-probes such as the RFV peek
   are cycle-dependent and must not contribute). *)
let is_reg = function Instr.Reg _ -> 1 | Instr.Imm _ | Instr.Special _ | Instr.Param _ -> 0

let rf_accesses = function
  | Instr.Bin (_, _, a, b) | Instr.Cmp (_, _, a, b) -> (is_reg a + is_reg b, 1)
  | Instr.Un (_, _, a) | Instr.Mov (_, a) -> (is_reg a, 1)
  | Instr.Mad (_, a, b, c) | Instr.Sel (_, a, b, c) ->
      (is_reg a + is_reg b + is_reg c, 1)
  | Instr.Load (_, _, addr, _) -> (is_reg addr, 1)
  | Instr.Store (_, addr, v, _) -> (is_reg addr + is_reg v, 0)
  | Instr.Jump_if (c, _) | Instr.Jump_ifz (c, _) -> (is_reg c, 0)
  | Instr.Jump _ | Instr.Bar | Instr.Acquire | Instr.Release | Instr.Exit -> (0, 0)

let step ctx instr =
  let reads, writes = rf_accesses instr in
  ctx.stats.Stats.rf_reads <- ctx.stats.Stats.rf_reads + reads;
  ctx.stats.Stats.rf_writes <- ctx.stats.Stats.rf_writes + writes;
  let v = operand ctx in
  match instr with
  | Instr.Bin (op, d, a, b) ->
      ctx.regs.(d) <- binop op (v a) (v b);
      Next
  | Instr.Un (op, d, a) ->
      ctx.regs.(d) <- unop op (v a);
      Next
  | Instr.Mad (d, a, b, c) ->
      ctx.regs.(d) <- (v a * v b) + v c;
      Next
  | Instr.Mov (d, a) ->
      ctx.regs.(d) <- v a;
      Next
  | Instr.Cmp (op, d, a, b) ->
      ctx.regs.(d) <- cmpop op (v a) (v b);
      Next
  | Instr.Sel (d, c, a, b) ->
      ctx.regs.(d) <- (if v c <> 0 then v a else v b);
      Next
  | Instr.Load (space, d, addr, ofs) ->
      ctx.regs.(d) <- read ctx space (v addr + ofs);
      Next
  | Instr.Store (space, addr, value, ofs) ->
      write ctx space (v addr + ofs) (v value);
      Next
  | Instr.Jump t -> Goto t
  | Instr.Jump_if (c, t) -> if v c <> 0 then Goto t else Next
  | Instr.Jump_ifz (c, t) -> if v c = 0 then Goto t else Next
  | Instr.Bar -> Sync
  | Instr.Acquire -> Acq
  | Instr.Release -> Rel
  | Instr.Exit -> Stop
