module Instr = Gpu_isa.Instr

type ctx = {
  regs : int array;
  params : int array;
  tid : int;
  mutable ctaid : int;
  ntid : int;
  nctaid : int;
  warp_id : int;
  mutable shared : int array;
  spill_words : int;
  memory : Memory.t;
  stats : Stats.t;
  record_stores : bool;
  lanes : int;
  n_regs : int;
  lane_regs : int array;
}

type outcome =
  | Next
  | Goto of int
  | Stop
  | Sync
  | Acq
  | Rel

type lane_outcome =
  | L_uniform of outcome
  | L_diverge of { taken : int; tgt : int }

let operand ctx = function
  | Instr.Reg r -> ctx.regs.(r)
  | Instr.Imm n -> n
  | Instr.Param i -> if i < Array.length ctx.params then ctx.params.(i) else 0
  | Instr.Special Instr.Tid -> ctx.tid
  | Instr.Special Instr.Ctaid -> ctx.ctaid
  | Instr.Special Instr.Ntid -> ctx.ntid
  | Instr.Special Instr.Nctaid -> ctx.nctaid
  | Instr.Special Instr.Warp_id -> ctx.warp_id
  | Instr.Special Instr.Lane_id -> 0

(* Lane-resolved operand read: registers come from the lane's row of the
   per-lane file, [%laneid] distinguishes the lanes, and everything else
   is warp-uniform by construction. *)
let lane_operand ctx lane = function
  | Instr.Reg r -> ctx.lane_regs.((lane * ctx.n_regs) + r)
  | Instr.Imm n -> n
  | Instr.Param i -> if i < Array.length ctx.params then ctx.params.(i) else 0
  | Instr.Special Instr.Tid -> ctx.tid
  | Instr.Special Instr.Ctaid -> ctx.ctaid
  | Instr.Special Instr.Ntid -> ctx.ntid
  | Instr.Special Instr.Nctaid -> ctx.nctaid
  | Instr.Special Instr.Warp_id -> ctx.warp_id
  | Instr.Special Instr.Lane_id -> lane

let binop op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then 0 else a / b
  | Instr.Rem -> if b = 0 then 0 else a mod b
  | Instr.Min -> min a b
  | Instr.Max -> max a b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 31)
  | Instr.Shr -> a asr (b land 31)

let unop op a =
  match op with
  | Instr.Neg -> -a
  | Instr.Not -> lnot a
  | Instr.Abs -> abs a

let cmpop op a b =
  let r =
    match op with
    | Instr.Eq -> a = b
    | Instr.Ne -> a <> b
    | Instr.Lt -> a < b
    | Instr.Le -> a <= b
    | Instr.Gt -> a > b
    | Instr.Ge -> a >= b
  in
  if r then 1 else 0

(* Out-of-bounds shared accesses wrap (real hardware would fault or read a
   neighbour's bank); the wrap is counted so workloads exercising it are
   visible in the statistics rather than silently absorbed. The user
   window excludes the spill window RegDem reserves at the top of the
   allocation, so a user access wraps exactly as it would without the
   demotion pass — the spill window is invisible to the program's
   architectural shared-memory semantics. *)
let shared_index ctx addr =
  let words = Array.length ctx.shared - ctx.spill_words in
  if addr < 0 || addr >= words then
    ctx.stats.Stats.shared_oob <- ctx.stats.Stats.shared_oob + 1;
  ((addr mod words) + words) mod words

(* Non-counting variants used by the per-lane path: lane accesses report
   out-of-bounds through [oob] so the instruction as a whole bumps
   [shared_oob] at most once — exactly the count a warp-uniform program
   produces in the warp-uniform model. *)
let shared_index_flag ctx oob addr =
  let words = Array.length ctx.shared - ctx.spill_words in
  if addr < 0 || addr >= words then oob := true;
  ((addr mod words) + words) mod words

let spill_index_flag ctx oob rel =
  if ctx.spill_words > 0 && rel >= 0 && rel < ctx.spill_words then
    Array.length ctx.shared - ctx.spill_words + rel
  else begin
    oob := true;
    let words = Array.length ctx.shared in
    ((rel mod words) + words) mod words
  end

(* Spill accesses address the reserved window relative to its base. Any
   access outside the window — including a spill instruction executing
   with no window configured — is a compiler bug, counted as [shared_oob]
   and wrapped into the user window so it stays observable downstream
   (the fuzz oracle treats a shared_oob delta vs baseline as a hard
   failure). *)
let spill_index ctx rel =
  if ctx.spill_words > 0 && rel >= 0 && rel < ctx.spill_words then
    Array.length ctx.shared - ctx.spill_words + rel
  else begin
    ctx.stats.Stats.shared_oob <- ctx.stats.Stats.shared_oob + 1;
    let words = Array.length ctx.shared in
    ((rel mod words) + words) mod words
  end

let read ctx space addr =
  match space with
  | Instr.Global -> Memory.read_global ctx.memory addr
  | Instr.Shared ->
      ctx.stats.Stats.shared_reads <- ctx.stats.Stats.shared_reads + 1;
      ctx.shared.(shared_index ctx addr)
  | Instr.Spill ->
      ctx.stats.Stats.fill_loads <- ctx.stats.Stats.fill_loads + 1;
      ctx.shared.(spill_index ctx addr)

(* Spill stores are micro-architectural traffic, not program semantics:
   they are never recorded in the architectural store trace, which is what
   lets the fuzz oracle demand store-trace equality between RegDem and
   baseline. *)
let write ctx space addr v =
  match space with
  | Instr.Global ->
      if ctx.record_stores then
        Stats.record_store ctx.stats ~cta:ctx.ctaid ~warp:ctx.warp_id space addr v;
      Memory.write_global ctx.memory addr v
  | Instr.Shared ->
      if ctx.record_stores then
        Stats.record_store ctx.stats ~cta:ctx.ctaid ~warp:ctx.warp_id space addr v;
      ctx.stats.Stats.shared_writes <- ctx.stats.Stats.shared_writes + 1;
      ctx.shared.(shared_index ctx addr) <- v
  | Instr.Spill ->
      ctx.stats.Stats.spill_stores <- ctx.stats.Stats.spill_stores + 1;
      ctx.shared.(spill_index ctx addr) <- v

(* Register-file port activity per executed instruction, for the energy
   model: one read per register operand (duplicates count — each is a
   port access), one write per defined register. Counted here, at
   execution granularity, so the totals are identical under fast-forward
   and brute-force stepping (scheduler re-probes such as the RFV peek
   are cycle-dependent and must not contribute). *)
let is_reg = function Instr.Reg _ -> 1 | Instr.Imm _ | Instr.Special _ | Instr.Param _ -> 0

let rf_accesses = function
  | Instr.Bin (_, _, a, b) | Instr.Cmp (_, _, a, b) -> (is_reg a + is_reg b, 1)
  | Instr.Un (_, _, a) | Instr.Mov (_, a) -> (is_reg a, 1)
  | Instr.Mad (_, a, b, c) | Instr.Sel (_, a, b, c) ->
      (is_reg a + is_reg b + is_reg c, 1)
  | Instr.Load (_, _, addr, _) -> (is_reg addr, 1)
  | Instr.Store (_, addr, v, _) -> (is_reg addr + is_reg v, 0)
  | Instr.Jump_if (c, _) | Instr.Jump_ifz (c, _) -> (is_reg c, 0)
  | Instr.Jump _ | Instr.Bar | Instr.Acquire | Instr.Release | Instr.Exit -> (0, 0)

let step ctx instr =
  let reads, writes = rf_accesses instr in
  ctx.stats.Stats.rf_reads <- ctx.stats.Stats.rf_reads + reads;
  ctx.stats.Stats.rf_writes <- ctx.stats.Stats.rf_writes + writes;
  let v = operand ctx in
  match instr with
  | Instr.Bin (op, d, a, b) ->
      ctx.regs.(d) <- binop op (v a) (v b);
      Next
  | Instr.Un (op, d, a) ->
      ctx.regs.(d) <- unop op (v a);
      Next
  | Instr.Mad (d, a, b, c) ->
      ctx.regs.(d) <- (v a * v b) + v c;
      Next
  | Instr.Mov (d, a) ->
      ctx.regs.(d) <- v a;
      Next
  | Instr.Cmp (op, d, a, b) ->
      ctx.regs.(d) <- cmpop op (v a) (v b);
      Next
  | Instr.Sel (d, c, a, b) ->
      ctx.regs.(d) <- (if v c <> 0 then v a else v b);
      Next
  | Instr.Load (space, d, addr, ofs) ->
      ctx.regs.(d) <- read ctx space (v addr + ofs);
      Next
  | Instr.Store (space, addr, value, ofs) ->
      write ctx space (v addr + ofs) (v value);
      Next
  | Instr.Jump t -> Goto t
  | Instr.Jump_if (c, t) -> if v c <> 0 then Goto t else Next
  | Instr.Jump_ifz (c, t) -> if v c = 0 then Goto t else Next
  | Instr.Bar -> Sync
  | Instr.Acquire -> Acq
  | Instr.Release -> Rel
  | Instr.Exit -> Stop

(* --- per-lane (SIMT) execution ----------------------------------------- *)

(* Pure evaluation of a conditional branch's per-lane outcome: the mask of
   active lanes whose condition takes the branch. Never counts register
   ports (the RFV peek calls this every scheduler probe). [None] for
   non-conditional instructions. *)
let branch_masks ctx instr ~mask =
  let eval c keep =
    let taken = ref 0 in
    for lane = 0 to ctx.lanes - 1 do
      let bit = 1 lsl lane in
      if mask land bit <> 0 && keep (lane_operand ctx lane c) then
        taken := !taken lor bit
    done;
    !taken
  in
  match instr with
  | Instr.Jump_if (c, t) -> Some (eval c (fun v -> v <> 0), t)
  | Instr.Jump_ifz (c, t) -> Some (eval c (fun v -> v = 0), t)
  | _ -> None

(* Evaluate one instruction for every lane in [mask]. Counter discipline:
   register-port and shared/spill traffic counters advance once per
   instruction (the same totals the warp-uniform model produces for the
   same dynamic instruction stream), and [shared_oob] is clamped to at
   most one bump per instruction. The architectural (warp-level) store
   trace records the lowest active lane, which for a warp-uniform program
   is bit-identical to the uniform trace; the full lane-resolved trace is
   recorded separately per lane. *)
let step_simt ctx instr ~mask =
  let reads, writes = rf_accesses instr in
  ctx.stats.Stats.rf_reads <- ctx.stats.Stats.rf_reads + reads;
  ctx.stats.Stats.rf_writes <- ctx.stats.Stats.rf_writes + writes;
  let n = ctx.n_regs in
  let set lane d value = ctx.lane_regs.((lane * n) + d) <- value in
  let each f =
    for lane = 0 to ctx.lanes - 1 do
      if mask land (1 lsl lane) <> 0 then f lane
    done
  in
  match instr with
  | Instr.Bin (op, d, a, b) ->
      each (fun l -> set l d (binop op (lane_operand ctx l a) (lane_operand ctx l b)));
      L_uniform Next
  | Instr.Un (op, d, a) ->
      each (fun l -> set l d (unop op (lane_operand ctx l a)));
      L_uniform Next
  | Instr.Mad (d, a, b, c) ->
      each (fun l ->
          set l d
            ((lane_operand ctx l a * lane_operand ctx l b) + lane_operand ctx l c));
      L_uniform Next
  | Instr.Mov (d, a) ->
      each (fun l -> set l d (lane_operand ctx l a));
      L_uniform Next
  | Instr.Cmp (op, d, a, b) ->
      each (fun l -> set l d (cmpop op (lane_operand ctx l a) (lane_operand ctx l b)));
      L_uniform Next
  | Instr.Sel (d, c, a, b) ->
      each (fun l ->
          set l d
            (if lane_operand ctx l c <> 0 then lane_operand ctx l a
             else lane_operand ctx l b));
      L_uniform Next
  | Instr.Load (space, d, addr, ofs) ->
      (match space with
      | Instr.Global -> ()
      | Instr.Shared ->
          ctx.stats.Stats.shared_reads <- ctx.stats.Stats.shared_reads + 1
      | Instr.Spill ->
          ctx.stats.Stats.fill_loads <- ctx.stats.Stats.fill_loads + 1);
      let oob = ref false in
      each (fun l ->
          let a = lane_operand ctx l addr + ofs in
          let v =
            match space with
            | Instr.Global -> Memory.read_global ctx.memory a
            | Instr.Shared -> ctx.shared.(shared_index_flag ctx oob a)
            | Instr.Spill -> ctx.shared.(spill_index_flag ctx oob a)
          in
          set l d v);
      if !oob then ctx.stats.Stats.shared_oob <- ctx.stats.Stats.shared_oob + 1;
      L_uniform Next
  | Instr.Store (space, addr, value, ofs) ->
      (match space with
      | Instr.Global -> ()
      | Instr.Shared ->
          ctx.stats.Stats.shared_writes <- ctx.stats.Stats.shared_writes + 1
      | Instr.Spill ->
          ctx.stats.Stats.spill_stores <- ctx.stats.Stats.spill_stores + 1);
      let oob = ref false in
      let leader = ref (-1) in
      each (fun l ->
          let a = lane_operand ctx l addr + ofs in
          let v = lane_operand ctx l value in
          if ctx.record_stores && space <> Instr.Spill then begin
            if !leader < 0 then begin
              leader := l;
              Stats.record_store ctx.stats ~cta:ctx.ctaid ~warp:ctx.warp_id space a v
            end;
            Stats.record_lane_store ctx.stats ~cta:ctx.ctaid ~warp:ctx.warp_id
              ~lane:l space a v
          end;
          match space with
          | Instr.Global -> Memory.write_global ctx.memory a v
          | Instr.Shared -> ctx.shared.(shared_index_flag ctx oob a) <- v
          | Instr.Spill -> ctx.shared.(spill_index_flag ctx oob a) <- v);
      if !oob then ctx.stats.Stats.shared_oob <- ctx.stats.Stats.shared_oob + 1;
      L_uniform Next
  | Instr.Jump t -> L_uniform (Goto t)
  | Instr.Jump_if _ | Instr.Jump_ifz _ -> (
      match branch_masks ctx instr ~mask with
      | Some (taken, tgt) ->
          if taken = 0 then L_uniform Next
          else if taken = mask then L_uniform (Goto tgt)
          else L_diverge { taken; tgt }
      | None -> assert false)
  | Instr.Bar -> L_uniform Sync
  | Instr.Acquire -> L_uniform Acq
  | Instr.Release -> L_uniform Rel
  | Instr.Exit -> L_uniform Stop
