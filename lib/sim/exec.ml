module Instr = Gpu_isa.Instr

type ctx = {
  regs : int array;
  params : int array;
  tid : int;
  mutable ctaid : int;
  ntid : int;
  nctaid : int;
  warp_id : int;
  mutable shared : int array;
  memory : Memory.t;
  stats : Stats.t;
  record_stores : bool;
}

type outcome =
  | Next
  | Goto of int
  | Stop
  | Sync
  | Acq
  | Rel

let operand ctx = function
  | Instr.Reg r -> ctx.regs.(r)
  | Instr.Imm n -> n
  | Instr.Param i -> if i < Array.length ctx.params then ctx.params.(i) else 0
  | Instr.Special Instr.Tid -> ctx.tid
  | Instr.Special Instr.Ctaid -> ctx.ctaid
  | Instr.Special Instr.Ntid -> ctx.ntid
  | Instr.Special Instr.Nctaid -> ctx.nctaid
  | Instr.Special Instr.Warp_id -> ctx.warp_id

let binop op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then 0 else a / b
  | Instr.Rem -> if b = 0 then 0 else a mod b
  | Instr.Min -> min a b
  | Instr.Max -> max a b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 31)
  | Instr.Shr -> a asr (b land 31)

let unop op a =
  match op with
  | Instr.Neg -> -a
  | Instr.Not -> lnot a
  | Instr.Abs -> abs a

let cmpop op a b =
  let r =
    match op with
    | Instr.Eq -> a = b
    | Instr.Ne -> a <> b
    | Instr.Lt -> a < b
    | Instr.Le -> a <= b
    | Instr.Gt -> a > b
    | Instr.Ge -> a >= b
  in
  if r then 1 else 0

(* Out-of-bounds shared accesses wrap (real hardware would fault or read a
   neighbour's bank); the wrap is counted so workloads exercising it are
   visible in the statistics rather than silently absorbed. *)
let shared_index ctx addr =
  let words = Array.length ctx.shared in
  if addr < 0 || addr >= words then
    ctx.stats.Stats.shared_oob <- ctx.stats.Stats.shared_oob + 1;
  ((addr mod words) + words) mod words

let read ctx space addr =
  match space with
  | Instr.Global -> Memory.read_global ctx.memory addr
  | Instr.Shared -> ctx.shared.(shared_index ctx addr)

let write ctx space addr v =
  if ctx.record_stores then
    Stats.record_store ctx.stats ~cta:ctx.ctaid ~warp:ctx.warp_id space addr v;
  match space with
  | Instr.Global -> Memory.write_global ctx.memory addr v
  | Instr.Shared -> ctx.shared.(shared_index ctx addr) <- v

let step ctx instr =
  let v = operand ctx in
  match instr with
  | Instr.Bin (op, d, a, b) ->
      ctx.regs.(d) <- binop op (v a) (v b);
      Next
  | Instr.Un (op, d, a) ->
      ctx.regs.(d) <- unop op (v a);
      Next
  | Instr.Mad (d, a, b, c) ->
      ctx.regs.(d) <- (v a * v b) + v c;
      Next
  | Instr.Mov (d, a) ->
      ctx.regs.(d) <- v a;
      Next
  | Instr.Cmp (op, d, a, b) ->
      ctx.regs.(d) <- cmpop op (v a) (v b);
      Next
  | Instr.Sel (d, c, a, b) ->
      ctx.regs.(d) <- (if v c <> 0 then v a else v b);
      Next
  | Instr.Load (space, d, addr, ofs) ->
      ctx.regs.(d) <- read ctx space (v addr + ofs);
      Next
  | Instr.Store (space, addr, value, ofs) ->
      write ctx space (v addr + ofs) (v value);
      Next
  | Instr.Jump t -> Goto t
  | Instr.Jump_if (c, t) -> if v c <> 0 then Goto t else Next
  | Instr.Jump_ifz (c, t) -> if v c = 0 then Goto t else Next
  | Instr.Bar -> Sync
  | Instr.Acquire -> Acq
  | Instr.Release -> Rel
  | Instr.Exit -> Stop
