module Trace = Telemetry.Trace
module Metrics = Telemetry.Metrics

(* Chrome-track layout, per SM process [pid = sm_id]:
     tid 0 .. n_slots-1      one track per warp slot
     tid n_slots             "stalls": SM-wide idle episodes, one span per
                             maximal run of fully idle cycles sharing a
                             stall reason
     tid n_slots+1 + slot    one track per resident-CTA slot
   plus two counter tracks on the SM process ("srp-in-use",
   "mem-busy-slots") sampled at the issues that change them, so the
   record stream is identical under fast-forward and brute-force
   stepping (skipped cycles issue nothing). *)

type t = {
  trace : Trace.t;
  sm_pid : int;
  n_slots : int;
  (* interned span/counter names *)
  n_warp : int;
  n_hold : int;
  n_cta : int;
  n_cta_launch : int;
  n_cta_retire : int;
  n_srp : int;
  n_mem : int;
  stall_names : int array;  (* indexed like [Stats.all_reasons] *)
  (* open-span state, all keyed by slot; -1 = not open *)
  warp_start : int array;
  warp_cta : int array;
  hold_start : int array;
  hold_section : int array;
  cta_start : int array;
  cta_global : int array;
  (* current idle episode: reason index, first cycle, exclusive end *)
  mutable idle_reason : int;
  mutable idle_start : int;
  mutable idle_until : int;
  (* outstanding memory completions, a FIFO ring: per-SM completion cycles
     are non-decreasing (issue cycles and the DRAM-free horizon both only
     grow), so evicting expired entries from the head keeps the length
     equal to the busy-slot count without scanning the slot array *)
  mem_q : int array;
  mutable mem_head : int;
  mutable mem_len : int;
  mutable mem_last : int;  (* last pushed busy count; repeats are elided *)
  (* duration histograms, shared across SMs via idempotent registration *)
  h_hold : Metrics.histogram;
  h_warp : Metrics.histogram;
  h_idle : Metrics.histogram;
}

let duration_buckets =
  [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536 |]

let reason_index = Stats.reason_index

let create (sink : Telemetry.Sink.t) ~sm_id ~n_slots ~n_cta_slots ~n_mem_slots =
  let trace = sink.Telemetry.Sink.trace in
  Trace.set_process_name trace ~pid:sm_id (Printf.sprintf "SM %d" sm_id);
  for s = 0 to n_slots - 1 do
    Trace.set_thread_name trace ~pid:sm_id ~tid:s (Printf.sprintf "warp slot %d" s)
  done;
  Trace.set_thread_name trace ~pid:sm_id ~tid:n_slots "stalls";
  for c = 0 to n_cta_slots - 1 do
    Trace.set_thread_name trace ~pid:sm_id ~tid:(n_slots + 1 + c)
      (Printf.sprintf "cta slot %d" c)
  done;
  let metrics = sink.Telemetry.Sink.metrics in
  {
    trace;
    sm_pid = sm_id;
    n_slots;
    n_warp = Trace.intern trace "warp";
    n_hold = Trace.intern trace "srp-hold";
    n_cta = Trace.intern trace "cta";
    n_cta_launch = Trace.intern trace "cta-launch";
    n_cta_retire = Trace.intern trace "cta-retire";
    n_srp = Trace.intern trace "srp-in-use";
    n_mem = Trace.intern trace "mem-busy-slots";
    stall_names =
      Array.of_list
        (List.map
           (fun r -> Trace.intern trace ("stall:" ^ Stats.reason_name r))
           Stats.all_reasons);
    warp_start = Array.make (max n_slots 1) (-1);
    warp_cta = Array.make (max n_slots 1) (-1);
    hold_start = Array.make (max n_slots 1) (-1);
    hold_section = Array.make (max n_slots 1) (-1);
    cta_start = Array.make (max n_cta_slots 1) (-1);
    cta_global = Array.make (max n_cta_slots 1) (-1);
    idle_reason = -1;
    idle_start = 0;
    idle_until = 0;
    mem_q = Array.make (max n_mem_slots 1 + 1) 0;
    mem_head = 0;
    mem_len = 0;
    mem_last = -1;
    h_hold =
      Metrics.histogram metrics "regmutex_srp_hold_cycles"
        ~help:"SRP section hold duration, acquire to release"
        ~buckets:duration_buckets;
    h_warp =
      Metrics.histogram metrics "regmutex_warp_lifetime_cycles"
        ~help:"warp residency, launch to exit" ~buckets:duration_buckets;
    h_idle =
      Metrics.histogram metrics "regmutex_idle_episode_cycles"
        ~help:"maximal runs of fully idle SM cycles" ~buckets:duration_buckets;
  }

(* --- CTA and warp lifetime --------------------------------------------- *)

let cta_launch t ~cycle ~cta_slot ~global_cta =
  t.cta_start.(cta_slot) <- cycle;
  t.cta_global.(cta_slot) <- global_cta;
  Trace.instant t.trace ~ts:cycle ~pid:t.sm_pid ~tid:(t.n_slots + 1 + cta_slot)
    ~name:t.n_cta_launch ~arg:global_cta

let cta_retire t ~cycle ~cta_slot =
  let start = t.cta_start.(cta_slot) in
  if start >= 0 then begin
    Trace.span t.trace ~ts:start ~dur:(cycle - start) ~pid:t.sm_pid
      ~tid:(t.n_slots + 1 + cta_slot) ~name:t.n_cta ~arg:t.cta_global.(cta_slot);
    Trace.instant t.trace ~ts:cycle ~pid:t.sm_pid ~tid:(t.n_slots + 1 + cta_slot)
      ~name:t.n_cta_retire ~arg:t.cta_global.(cta_slot);
    t.cta_start.(cta_slot) <- -1
  end

let warp_start t ~cycle ~slot ~global_cta =
  t.warp_start.(slot) <- cycle;
  t.warp_cta.(slot) <- global_cta

let warp_close t ~cycle ~slot =
  let start = t.warp_start.(slot) in
  if start >= 0 then begin
    Trace.span t.trace ~ts:start ~dur:(cycle - start) ~pid:t.sm_pid ~tid:slot
      ~name:t.n_warp ~arg:t.warp_cta.(slot);
    Metrics.observe t.h_warp (cycle - start);
    t.warp_start.(slot) <- -1
  end

(* --- SRP holds and occupancy ------------------------------------------- *)

let hold_begin t ~cycle ~slot ~section =
  t.hold_start.(slot) <- cycle;
  t.hold_section.(slot) <- section

let hold_end t ~cycle ~slot =
  let start = t.hold_start.(slot) in
  if start >= 0 then begin
    Trace.span t.trace ~ts:start ~dur:(cycle - start) ~pid:t.sm_pid ~tid:slot
      ~name:t.n_hold ~arg:t.hold_section.(slot);
    Metrics.observe t.h_hold (cycle - start);
    t.hold_start.(slot) <- -1
  end

let srp_sample t ~cycle ~in_use =
  Trace.counter t.trace ~ts:cycle ~pid:t.sm_pid ~name:t.n_srp ~value:in_use

let mem_issue t ~cycle ~completion =
  let cap = Array.length t.mem_q in
  while t.mem_len > 0 && t.mem_q.(t.mem_head) <= cycle do
    t.mem_head <- (t.mem_head + 1) mod cap;
    t.mem_len <- t.mem_len - 1
  done;
  t.mem_q.((t.mem_head + t.mem_len) mod cap) <- completion;
  t.mem_len <- t.mem_len + 1;
  (* Chrome counter tracks hold their value until the next sample, so a
     repeat of the previous count carries no information — eliding it
     costs nothing visually and is the bulk of the record volume on
     memory-bound kernels (steady state: one completes, one issues). *)
  if t.mem_len <> t.mem_last then begin
    t.mem_last <- t.mem_len;
    Trace.counter t.trace ~ts:cycle ~pid:t.sm_pid ~name:t.n_mem ~value:t.mem_len
  end

(* --- idle (stall) episodes --------------------------------------------- *)

(* Episodes are extended cycle by cycle at visited cycles and in bulk over
   fast-forwarded spans; a frozen machine cannot change its classification
   mid-span (the wakeup bound is exactly where it could change), so both
   modes close identical spans at identical points. *)

let flush_idle t =
  if t.idle_reason >= 0 then begin
    let dur = t.idle_until - t.idle_start in
    Trace.span t.trace ~ts:t.idle_start ~dur ~pid:t.sm_pid ~tid:t.n_slots
      ~name:t.stall_names.(t.idle_reason) ~arg:Trace.no_arg;
    Metrics.observe t.h_idle dur;
    t.idle_reason <- -1
  end

let note_idle t ~cycle ~reason =
  let r = reason_index reason in
  if t.idle_reason = r && t.idle_until = cycle then t.idle_until <- cycle + 1
  else begin
    flush_idle t;
    t.idle_reason <- r;
    t.idle_start <- cycle;
    t.idle_until <- cycle + 1
  end

let note_idle_span t ~from ~span ~reason =
  let r = reason_index reason in
  if t.idle_reason = r && t.idle_until = from then t.idle_until <- from + span
  else begin
    flush_idle t;
    t.idle_reason <- r;
    t.idle_start <- from;
    t.idle_until <- from + span
  end

(* --- end of run -------------------------------------------------------- *)

(* Close whatever is still open (timed-out or deadlock-free-but-incomplete
   runs leave live warps) so the exported trace has no dangling state. *)
let finalize t ~cycle =
  flush_idle t;
  for slot = 0 to Array.length t.hold_start - 1 do
    hold_end t ~cycle ~slot
  done;
  for slot = 0 to Array.length t.warp_start - 1 do
    warp_close t ~cycle ~slot
  done;
  for cta_slot = 0 to Array.length t.cta_start - 1 do
    let start = t.cta_start.(cta_slot) in
    if start >= 0 then begin
      Trace.span t.trace ~ts:start ~dur:(cycle - start) ~pid:t.sm_pid
        ~tid:(t.n_slots + 1 + cta_slot) ~name:t.n_cta ~arg:t.cta_global.(cta_slot);
      t.cta_start.(cta_slot) <- -1
    end
  done
