(** Register-management policy the SM enforces at CTA launch and at issue.

    The compiler side of RegMutex produces the transformed program; this
    type tells the simulated hardware how physical registers are granted:

    - [Static]: the stock GPU — the full (granularity-rounded) register
      demand is reserved per warp for its whole lifetime.
    - [Srp]: RegMutex — [bs] registers reserved per thread; [es] more come
      from the Shared Register Pool between [Acquire]/[Release].
    - [Srp_paired]: RegMutex paired-warps specialization — each pair of
      sibling warps owns a dedicated extended set.
    - [Owf]: Jatala et al. — pairs share the registers above [bs]; the
      first warp to touch them keeps them until it exits (no in-kernel
      release); owner warps are scheduled first.
    - [Rfv]: Jeon et al. register file virtualization — physical registers
      track the live set exactly; CTAs are admitted regardless of static
      register demand. [live.(pc)] is the compiler-provided live count at
      each instruction.
    - [Regdem]: Sakdhnagool et al. register demotion — the compiler spills
      excess registers to a reserved shared-memory window, so the hardware
      side is plain static allocation of the reduced register count;
      [spill_words] sizes the per-CTA spill window the execution contexts
      address via [Spill] instructions. *)

type t =
  | Static of { regs_per_thread : int }
  | Srp of { bs : int; es : int; verify : bool }
  | Srp_paired of { bs : int; es : int; verify : bool }
  | Owf of { bs : int; es : int }
  | Rfv of { live : int array; max_live : int }
  | Regdem of { regs_per_thread : int; spill_words : int }

(** Registers one CTA consumes at admission (for the launch-time resource
    check), in physical registers. *)
val regs_per_cta : Gpu_uarch.Arch_config.t -> t -> warps_per_cta:int -> int

val name : t -> string
val pp : Format.formatter -> t -> unit
