(** Structured simulation event log.

    An optional sink attached to a run ({!Gpu.run_config}); the SMs emit
    typed events for CTA lifecycle, SRP traffic and barrier arrival.
    Entries are held in a growable array in emission order, so reading the
    trace never rebuilds it.

    The buffer is bounded: once [capacity] entries are held, every further
    event is {e dropped} — not wrapped, not replacing older entries — and
    {!truncated} flips to [true] so the loss is detectable. The
    predicate-based {!create} can pre-filter to keep the interesting
    events within budget instead.

    Events power the timeline example and debugging sessions; they are off
    by default and cost nothing when absent. *)

type event =
  | Cta_launched of { sm : int; cta : int }
  | Cta_retired of { sm : int; cta : int }
  | Acquire_granted of { sm : int; cta : int; warp : int; section : int }
  | Acquire_stalled of { sm : int; cta : int; warp : int }
  | Release of { sm : int; cta : int; warp : int; section : int }
  | Barrier_arrived of { sm : int; cta : int; warp : int }
  | Barrier_released of { sm : int; cta : int }
  | Warp_exited of { sm : int; cta : int; warp : int }

type entry = {
  cycle : int;
  event : event;
}

type t

(** [create ?capacity ?keep ()] — [capacity] defaults to 100,000 entries;
    [keep] pre-filters events (default: keep everything). *)
val create : ?capacity:int -> ?keep:(event -> bool) -> unit -> t

(** Used by the SM; respects the filter and the capacity bound. Once the
    buffer holds [capacity] entries the event is dropped and the trace is
    marked {!truncated}. *)
val emit : t -> cycle:int -> event -> unit

(** Entries in emission order (built fresh on each call; use {!iter} to
    walk the trace without allocating the list). *)
val entries : t -> entry list

(** [iter t f] applies [f] to every retained entry in emission order. *)
val iter : t -> (entry -> unit) -> unit

val length : t -> int

(** Did the buffer fill up? [true] means at least one later event was
    dropped; the retained prefix is exactly the first [capacity] kept
    events. *)
val truncated : t -> bool

(** How many kept events were dropped after the buffer filled. The run
    driver warns at run end when this is nonzero and mirrors it into the
    [regmutex_event_trace_dropped_total] telemetry counter. *)
val dropped : t -> int

(** Entries concerning one (cta, warp). *)
val for_warp : t -> cta:int -> warp:int -> entry list

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit
