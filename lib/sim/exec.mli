(** Functional (value-level) execution of one instruction.

    Timing, policy enforcement and status transitions live in {!Sm}; this
    module only computes values and memory effects, which makes the
    semantics unit-testable in isolation and keeps transforms verifiable:
    a RegMutex-transformed program must produce the same {!outcome}
    sequence and stores as the original.

    A context is built once per warp slot and reused across launches (the
    SM rebinds the mutable [ctaid]/[shared] fields when a new CTA lands in
    the slot), so the per-issue path allocates nothing: memory dispatch is
    direct on the context fields rather than through per-warp closures. *)

type ctx = {
  regs : int array;    (** the warp's register-file row (shared with the SM) *)
  params : int array;
  tid : int;           (** linear thread id of the warp's first lane *)
  mutable ctaid : int; (** rebound at each CTA launch into the slot *)
  ntid : int;          (** threads per CTA *)
  nctaid : int;        (** CTAs in the grid *)
  warp_id : int;       (** warp index within the CTA (fixed per slot) *)
  mutable shared : int array;  (** the resident CTA's shared memory *)
  spill_words : int;
      (** RegDem spill window reserved at the top of [shared]; 0 when the
          policy demotes nothing. User [Shared] accesses wrap within
          [length shared - spill_words]; [Spill] accesses are relative to
          the window base and bump [stats.shared_oob] when outside it *)
  memory : Memory.t;
  stats : Stats.t;     (** shared-memory wrap counting, store recording *)
  record_stores : bool;
}

type outcome =
  | Next         (** fall through to [pc + 1] *)
  | Goto of int  (** branch taken *)
  | Stop         (** [Exit] *)
  | Sync         (** [Bar] — CTA barrier *)
  | Acq          (** [Acquire] — policy handled by the SM *)
  | Rel          (** [Release] *)

val operand : ctx -> Gpu_isa.Instr.operand -> int

(** Evaluate the instruction: performs register writes and memory effects,
    returns the control outcome. Division and remainder by zero yield 0;
    shift counts are masked to 5 bits (32-bit GPU semantics). Shared
    accesses outside the CTA's allocation wrap and bump
    [stats.shared_oob]. *)
val step : ctx -> Gpu_isa.Instr.t -> outcome
