(** Functional (value-level) execution of one instruction.

    Timing, policy enforcement and status transitions live in {!Sm}; this
    module only computes values and memory effects, which makes the
    semantics unit-testable in isolation and keeps transforms verifiable:
    a RegMutex-transformed program must produce the same {!outcome}
    sequence and stores as the original.

    A context is built once per warp slot and reused across launches (the
    SM rebinds the mutable [ctaid]/[shared] fields when a new CTA lands in
    the slot), so the per-issue path allocates nothing: memory dispatch is
    direct on the context fields rather than through per-warp closures. *)

type ctx = {
  regs : int array;    (** the warp's register-file row (shared with the SM) *)
  params : int array;
  tid : int;           (** linear thread id of the warp's first lane *)
  mutable ctaid : int; (** rebound at each CTA launch into the slot *)
  ntid : int;          (** threads per CTA *)
  nctaid : int;        (** CTAs in the grid *)
  warp_id : int;       (** warp index within the CTA (fixed per slot) *)
  mutable shared : int array;  (** the resident CTA's shared memory *)
  spill_words : int;
      (** RegDem spill window reserved at the top of [shared]; 0 when the
          policy demotes nothing. User [Shared] accesses wrap within
          [length shared - spill_words]; [Spill] accesses are relative to
          the window base and bump [stats.shared_oob] when outside it *)
  memory : Memory.t;
  stats : Stats.t;     (** shared-memory wrap counting, store recording *)
  record_stores : bool;
  lanes : int;         (** warp width under [--simt]; 0 in the warp-uniform
                           model (the per-lane entry points are never called) *)
  n_regs : int;        (** architected registers per lane (row stride) *)
  lane_regs : int array;
      (** lane-major per-lane register file for this slot,
          [lanes * n_regs] words ([lane * n_regs + r]); [[||]] in the
          warp-uniform model *)
}

type outcome =
  | Next         (** fall through to [pc + 1] *)
  | Goto of int  (** branch taken *)
  | Stop         (** [Exit] *)
  | Sync         (** [Bar] — CTA barrier *)
  | Acq          (** [Acquire] — policy handled by the SM *)
  | Rel          (** [Release] *)

(** Per-lane control outcome: either every active lane agrees (including
    conditional branches whose condition is warp-uniform in practice), or
    the branch splits the active mask — reconvergence-stack handling lives
    in {!Sm}. *)
type lane_outcome =
  | L_uniform of outcome
  | L_diverge of { taken : int; tgt : int }
      (** [taken] is the non-empty, proper sub-mask of active lanes whose
          condition takes the branch to [tgt] *)

val operand : ctx -> Gpu_isa.Instr.operand -> int

(** [lane_operand ctx lane op] — the lane-resolved operand value.
    [%laneid] is [lane]; a lane's linear thread id is [%tid + %laneid]. *)
val lane_operand : ctx -> int -> Gpu_isa.Instr.operand -> int

(** Evaluate the instruction: performs register writes and memory effects,
    returns the control outcome. Division and remainder by zero yield 0;
    shift counts are masked to 5 bits (32-bit GPU semantics). Shared
    accesses outside the CTA's allocation wrap and bump
    [stats.shared_oob]. *)
val step : ctx -> Gpu_isa.Instr.t -> outcome

(** [branch_masks ctx instr ~mask] — pure per-lane evaluation of a
    conditional branch: [Some (taken_mask, target)], or [None] for
    non-conditional instructions. Counts nothing (safe to call from
    scheduler peeks). *)
val branch_masks : ctx -> Gpu_isa.Instr.t -> mask:int -> (int * int) option

(** [step_simt ctx instr ~mask] evaluates the instruction for every lane
    set in [mask] against the lane-resolved register file.

    Counter contract (the bit-identity contract with the warp-uniform
    model): register-port and shared/spill traffic counters advance once
    per executed instruction regardless of how many lanes are active, and
    [stats.shared_oob] bumps at most once per instruction. The warp-level
    store trace records the lowest active lane; every active lane is
    additionally recorded in the lane-resolved trace
    (see {!Stats.lane_store_traces}). *)
val step_simt : ctx -> Gpu_isa.Instr.t -> mask:int -> lane_outcome
