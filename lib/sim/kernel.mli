(** A kernel launch: program, grid shape and launch parameters. *)

type t = {
  name : string;
  program : Gpu_isa.Program.t;
  grid_ctas : int;     (** CTAs in the grid *)
  cta_threads : int;   (** threads per CTA *)
  shmem_bytes : int;   (** shared memory per CTA *)
  params : int array;  (** launch parameters, read via [Param i] operands *)
}

(** @raise Invalid_argument on an empty grid or CTA, or a program that
    references no registers ([n_regs = 0] — the simulator sizes per-warp
    register rows and scoreboards from [n_regs], so a register-less
    program would silently get a phantom register instead of failing
    loudly at launch). *)
val make :
  ?shmem_bytes:int ->
  ?params:int array ->
  name:string ->
  grid_ctas:int ->
  cta_threads:int ->
  Gpu_isa.Program.t ->
  t

(** Architected registers per thread: [1 + max index] in the program. *)
val regs_per_thread : t -> int

val warps_per_cta : Gpu_uarch.Arch_config.t -> t -> int

(** Resource demand for the occupancy calculator. *)
val demand : t -> Gpu_uarch.Occupancy.demand

(** [with_program t prog] swaps the program (used after the RegMutex
    transform). *)
val with_program : t -> Gpu_isa.Program.t -> t

(** [with_shmem_bytes t n] resizes the per-CTA shared-memory allocation
    (used by the RegDem demotion pass to append its spill window). *)
val with_shmem_bytes : t -> int -> t
