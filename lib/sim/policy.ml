type t =
  | Static of { regs_per_thread : int }
  | Srp of { bs : int; es : int; verify : bool }
  | Srp_paired of { bs : int; es : int; verify : bool }
  | Owf of { bs : int; es : int }
  | Rfv of { live : int array; max_live : int }
  | Regdem of { regs_per_thread : int; spill_words : int }

let regs_per_cta (cfg : Gpu_uarch.Arch_config.t) t ~warps_per_cta =
  let per_warp regs = regs * cfg.warp_size in
  match t with
  | Static { regs_per_thread } | Regdem { regs_per_thread; _ } ->
      warps_per_cta * per_warp (Gpu_uarch.Arch_config.round_regs cfg regs_per_thread)
  | Srp { bs; _ } -> warps_per_cta * per_warp bs
  | Srp_paired { bs; es; _ } | Owf { bs; es } ->
      (warps_per_cta * per_warp bs) + (((warps_per_cta + 1) / 2) * per_warp es)
  | Rfv _ -> 0

let name = function
  | Static _ -> "baseline"
  | Srp _ -> "regmutex"
  | Srp_paired _ -> "regmutex-paired"
  | Owf _ -> "owf"
  | Rfv _ -> "rfv"
  | Regdem _ -> "regdem"

let pp ppf t =
  match t with
  | Static { regs_per_thread } -> Format.fprintf ppf "baseline(regs=%d)" regs_per_thread
  | Srp { bs; es; _ } -> Format.fprintf ppf "regmutex(bs=%d, es=%d)" bs es
  | Srp_paired { bs; es; _ } -> Format.fprintf ppf "regmutex-paired(bs=%d, es=%d)" bs es
  | Owf { bs; es } -> Format.fprintf ppf "owf(bs=%d, es=%d)" bs es
  | Rfv { max_live; _ } -> Format.fprintf ppf "rfv(max_live=%d)" max_live
  | Regdem { regs_per_thread; spill_words } ->
      Format.fprintf ppf "regdem(regs=%d, spill_words=%d)" regs_per_thread
        spill_words
