(** Per-SM telemetry probe: translates simulator events into trace spans,
    counter samples and metric observations on a {!Telemetry.Sink.t}.

    One probe per SM, all sharing the run's sink. The SM holds it as an
    option mirroring the event-trace sink — [None] is the disabled path
    and costs one pattern match per potential hook.

    Every record the probe pushes is anchored at an {e issue} (or a CTA
    launch/retire, which only happen at visited cycles), and idle episodes
    accumulate in probe-local state until an issue or the end of the run
    closes them — so the record stream is bit-identical under fast-forward
    and brute-force stepping. The only asymmetric records are the
    fast-forward jump spans the GPU driver itself pushes on its own
    process track. *)

type t

(** [create sink ~sm_id ~n_slots ~n_cta_slots ~n_mem_slots] registers the
    SM's track names (process [sm_id]; one thread per warp slot, a
    "stalls" thread at [tid = n_slots], CTA-slot threads above it) and the
    shared duration histograms. [n_mem_slots] bounds the outstanding
    memory requests tracked for the busy-slots counter. *)
val create :
  Telemetry.Sink.t ->
  sm_id:int ->
  n_slots:int ->
  n_cta_slots:int ->
  n_mem_slots:int ->
  t

val cta_launch : t -> cycle:int -> cta_slot:int -> global_cta:int -> unit

(** Closes the CTA-lifetime span opened by {!cta_launch}. *)
val cta_retire : t -> cycle:int -> cta_slot:int -> unit

val warp_start : t -> cycle:int -> slot:int -> global_cta:int -> unit

(** Closes the warp-lifetime span and observes its duration. No-op if the
    slot has no open span (idempotent). *)
val warp_close : t -> cycle:int -> slot:int -> unit

(** An SRP section (or paired/OWF extended set) granted to the warp. *)
val hold_begin : t -> cycle:int -> slot:int -> section:int -> unit

(** Closes the hold span; no-op when none is open, so release paths and
    warp exit can both call it. *)
val hold_end : t -> cycle:int -> slot:int -> unit

(** Sample the SM's SRP-occupancy counter track (call after every grant,
    release and exit-reclaim). *)
val srp_sample : t -> cycle:int -> in_use:int -> unit

(** A global-memory request issued at [cycle] completing at [completion]:
    samples the SM's busy-memory-slots counter track. Tracks outstanding
    requests internally in O(1) — per-SM completion cycles are monotone,
    and a memory slot is only reused once its previous request expired, so
    the FIFO length equals {!Mem_system.busy_slots}. *)
val mem_issue : t -> cycle:int -> completion:int -> unit

(** The SM issued at least one instruction this cycle: close any open idle
    episode. Idempotent within a cycle. *)
val flush_idle : t -> unit

(** The SM was fully idle this cycle, blocked on [reason]. Extends the
    open episode when the reason persists, else closes it and opens a new
    one. Call at most once per cycle. *)
val note_idle : t -> cycle:int -> reason:Stats.stall_reason -> unit

(** Bulk form of {!note_idle} for a fast-forwarded span of [span] cycles
    starting at [from], all sharing [reason]. *)
val note_idle_span : t -> from:int -> span:int -> reason:Stats.stall_reason -> unit

(** Close every open span (idle episode, holds, warps, CTAs) at the run's
    final cycle so the export carries no dangling state. *)
val finalize : t -> cycle:int -> unit
