(** Warp schedulers. Each SM has [n_schedulers] of them; scheduler [id]
    owns the warp slots with [slot mod n_schedulers = id].

    [Gto] is GPGPU-Sim's default greedy-then-oldest policy: keep issuing
    from the current warp until it stalls, then switch to the runnable warp
    with the smallest packed ordering key ([Warp.Soa.key] — policy
    priority before age, i.e. launch order). [Lrr] is loose round-robin.
    [Two_level n] drains a fetch group of [n] consecutive slots before
    rotating to the next group with runnable warps (Narasiman et al.,
    MICRO 2011).

    Scheduling operates directly over the SM's structure-of-arrays warp
    state: a candidate slot must be resident, [Ready] and past its
    scoreboard bound ([ready_at <= cycle]) before the SM-provided residual
    [can_issue] check (memory slots, register-policy state — the part
    with acquire-stall side effects) runs. Per-cycle scans allocate
    nothing. *)

type kind = Gto | Lrr | Two_level of int

type t

val create : kind -> id:int -> n_schedulers:int -> t

val owns : t -> slot:int -> bool

(** Width of the age field inside a packed ordering key; ages at or above
    [2^age_bits] saturate to {!age_mask} rather than corrupting the
    priority field. *)
val age_bits : int

val age_mask : int

(** [pack_key ~priority ~age] packs [(priority, age)] so that integer
    comparison of keys equals lexicographic comparison of the pairs (for
    ages within the field width; beyond it, priority still dominates).
    Smaller keys are scheduled first. *)
val pack_key : priority:int -> age:int -> int

(** [pick t ~soa ~cycle ~can_issue] returns the warp slot to issue from
    this cycle, or [-1] when no owned slot can issue. [can_issue] is the
    SM's residual eligibility check (beyond status/scoreboard, which are
    read directly from [soa]); it may record acquire stalls, and is called
    on candidate slots in increasing slot order exactly once per scan. *)
val pick :
  t -> soa:Warp.Soa.t -> cycle:int -> can_issue:(int -> bool) -> int
