type run_config = {
  arch : Gpu_uarch.Arch_config.t;
  policy : Policy.t;
  record_stores : bool;
  trace_warp0 : bool;
  max_cycles : int;
  events : Event_trace.t option;
  fast_forward : bool;
}

let default_config arch policy =
  { arch; policy; record_stores = false; trace_warp0 = false;
    max_cycles = 20_000_000; events = None; fast_forward = true }

type sm_diag = {
  dl_sm : int;
  dl_srp_in_use : int;
  dl_srp_sections : int;
  dl_warps : Sm.warp_diag list;
}

type deadlock_info = {
  dl_cycle : int;
  dl_pending_ctas : int;
  dl_grid_ctas : int;
  dl_retired : int;
  dl_sms : sm_diag list;
}

exception Deadlock of deadlock_info

let pp_deadlock ppf d =
  Format.fprintf ppf
    "@[<v>deadlock at cycle %d: no warp can issue, no wakeup exists, %d/%d \
     CTAs retired (%d never launched)"
    d.dl_cycle d.dl_retired d.dl_grid_ctas d.dl_pending_ctas;
  List.iter
    (fun sm ->
      if sm.dl_warps <> [] then begin
        Format.fprintf ppf "@,  SM %d: %d/%d SRP sections in use" sm.dl_sm
          sm.dl_srp_in_use sm.dl_srp_sections;
        List.iter
          (fun w -> Format.fprintf ppf "@,    %a" Sm.pp_warp_diag w)
          sm.dl_warps
      end)
    d.dl_sms;
  Format.fprintf ppf "@]"

let () =
  Printexc.register_printer (function
    | Deadlock d -> Some (Format.asprintf "Gpu.Deadlock: %a" pp_deadlock d)
    | _ -> None)

let build_sms config kernel stats memory mem_sys =
  Array.init config.arch.Gpu_uarch.Arch_config.n_sms (fun sm_id ->
      Sm.create ?events:config.events config.arch ~sm_id ~policy:config.policy
        ~kernel ~memory ~mem_sys ~stats ~record_stores:config.record_stores
        ~trace_warp0:(config.trace_warp0 && sm_id = 0))

let run ?observe ?(observe_every = 1) config kernel =
  if observe_every < 1 then invalid_arg "Gpu.run: observe_every must be >= 1";
  let stats = Stats.create () in
  let memory = Memory.create () in
  let arch = config.arch in
  let mem_sys = Mem_system.create arch ~n_sms:arch.Gpu_uarch.Arch_config.n_sms in
  let sms = build_sms config kernel stats memory mem_sys in
  if Array.exists (fun sm -> Sm.cta_capacity sm = 0) sms then
    invalid_arg "Gpu.run: kernel exceeds SM resources (zero occupancy)";
  let grid = kernel.Kernel.grid_ctas in
  let n_sms = Array.length sms in
  let capacity_per_cycle = arch.Gpu_uarch.Arch_config.max_warps * n_sms in
  let next_cta = ref 0 in
  let cycle = ref 0 in
  (* Grid completion reads the retirement counter the SMs maintain (every
     retire bumps [ctas_retired]) instead of re-folding over the SMs each
     cycle. *)
  let retired () = stats.Stats.ctas_retired in
  while retired () < grid && !cycle < config.max_cycles do
    (* CTA dispatch: at most one launch per SM per cycle, round robin over
       SMs so early SMs do not monopolise the grid. *)
    Array.iter
      (fun sm ->
        if !next_cta < grid && Sm.try_launch sm ~global_cta:!next_cta ~cycle:!cycle
        then incr next_cta)
      sms;
    let instrs_before = stats.Stats.instructions in
    Array.iter (fun sm -> Sm.step sm ~cycle:!cycle) sms;
    (match observe with
    | Some f when !cycle mod observe_every = 0 -> f ~cycle:!cycle sms
    | Some _ | None -> ());
    let resident = Array.fold_left (fun acc sm -> acc + Sm.resident_warps sm) 0 sms in
    stats.Stats.resident_warp_cycles <- stats.Stats.resident_warp_cycles + resident;
    stats.Stats.warp_capacity_cycles <-
      stats.Stats.warp_capacity_cycles + capacity_per_cycle;
    (* Event-driven fast-forward: when no instruction issued anywhere this
       cycle and no SM could place a CTA next cycle, the machine state is
       frozen until the earliest wakeup — the next scoreboard or memory-slot
       completion. Every cycle in between would only repeat this cycle's
       idle bookkeeping, so the clock jumps straight to the wakeup and the
       per-cycle statistics (stall attribution, occupancy integrals) are
       accounted in bulk for the skipped span. Bit-identical to stepping:
       nothing observable happens in the span, and [observe ~observe_every]
       bounds the jump so sampled cycles are still visited. *)
    let next = !cycle + 1 in
    (* A cycle is frozen when no instruction issued anywhere and no SM
       could place a CTA next cycle: the machine state can only change at
       a future wakeup. Frozen cycles feed two consumers: the fast-forward
       jump, and the no-progress guard — if no wakeup exists either
       (every stalled warp waits on another warp's issue, which frozen-ness
       rules out forever) the run can never terminate, so it raises a
       structured [Deadlock] instead of spinning (or jumping) to the
       watchdog. Both modes see the same first frozen cycle, so detection
       is mode-independent. *)
    let frozen =
      stats.Stats.instructions = instrs_before
      && retired () < grid
      && not (!next_cta < grid && Array.exists Sm.can_launch sms)
    in
    if frozen then begin
      let wake = ref max_int in
      let reasons = Array.make n_sms Stats.Stall_empty in
      Array.iteri
        (fun i sm ->
          if Sm.resident_warps sm > 0 then begin
            let reason, sm_wake = Sm.idle_summary sm ~cycle:!cycle in
            reasons.(i) <- reason;
            if sm_wake < !wake then wake := sm_wake
          end)
        sms;
      if !wake = max_int then
        raise
          (Deadlock
             {
               dl_cycle = !cycle;
               dl_pending_ctas = grid - !next_cta;
               dl_grid_ctas = grid;
               dl_retired = retired ();
               dl_sms =
                 Array.to_list
                   (Array.mapi
                      (fun i sm ->
                        let in_use, sections =
                          match Sm.srp_invariant sm with
                          | Some (Ok (u, _, total)) -> (u, total)
                          | Some (Error _) | None ->
                              (Sm.srp_in_use sm, Sm.srp_sections sm)
                        in
                        {
                          dl_sm = i;
                          dl_srp_in_use = in_use;
                          dl_srp_sections = sections;
                          dl_warps = Sm.diagnose sm ~cycle:!cycle;
                        })
                      sms);
             });
      if config.fast_forward then begin
        let wake = min !wake config.max_cycles in
        let wake =
          match observe with
          | Some _ -> min wake (((!cycle / observe_every) + 1) * observe_every)
          | None -> wake
        in
        if wake > next then begin
          let span = wake - next in
          Array.iteri
            (fun i sm -> Sm.account_idle_span sm ~reason:reasons.(i) ~span)
            sms;
          stats.Stats.resident_warp_cycles <-
            stats.Stats.resident_warp_cycles + (span * resident);
          stats.Stats.warp_capacity_cycles <-
            stats.Stats.warp_capacity_cycles + (span * capacity_per_cycle);
          cycle := wake
        end
        else cycle := next
      end
      else cycle := next
    end
    else cycle := next
  done;
  stats.Stats.cycles <- !cycle;
  stats.Stats.timed_out <- retired () < grid;
  stats

let probe config kernel =
  let stats = Stats.create () in
  let memory = Memory.create () in
  let mem_sys =
    Mem_system.create config.arch ~n_sms:config.arch.Gpu_uarch.Arch_config.n_sms
  in
  Sm.create config.arch ~sm_id:0 ~policy:config.policy ~kernel ~memory ~mem_sys
    ~stats ~record_stores:false ~trace_warp0:false

let theoretical_warps config kernel =
  let sm = probe config kernel in
  Sm.cta_capacity sm * Kernel.warps_per_cta config.arch kernel

let srp_sections_of config kernel = Sm.srp_sections (probe config kernel)
