type run_config = {
  arch : Gpu_uarch.Arch_config.t;
  policy : Policy.t;
  record_stores : bool;
  trace_warp0 : bool;
  max_cycles : int;
  events : Event_trace.t option;
  fast_forward : bool;
}

let default_config arch policy =
  { arch; policy; record_stores = false; trace_warp0 = false;
    max_cycles = 20_000_000; events = None; fast_forward = true }

let build_sms config kernel stats memory mem_sys =
  Array.init config.arch.Gpu_uarch.Arch_config.n_sms (fun sm_id ->
      Sm.create ?events:config.events config.arch ~sm_id ~policy:config.policy
        ~kernel ~memory ~mem_sys ~stats ~record_stores:config.record_stores
        ~trace_warp0:(config.trace_warp0 && sm_id = 0))

let run ?observe ?(observe_every = 1) config kernel =
  if observe_every < 1 then invalid_arg "Gpu.run: observe_every must be >= 1";
  let stats = Stats.create () in
  let memory = Memory.create () in
  let arch = config.arch in
  let mem_sys = Mem_system.create arch ~n_sms:arch.Gpu_uarch.Arch_config.n_sms in
  let sms = build_sms config kernel stats memory mem_sys in
  if Array.exists (fun sm -> Sm.cta_capacity sm = 0) sms then
    invalid_arg "Gpu.run: kernel exceeds SM resources (zero occupancy)";
  let grid = kernel.Kernel.grid_ctas in
  let n_sms = Array.length sms in
  let capacity_per_cycle = arch.Gpu_uarch.Arch_config.max_warps * n_sms in
  let next_cta = ref 0 in
  let cycle = ref 0 in
  (* Grid completion reads the retirement counter the SMs maintain (every
     retire bumps [ctas_retired]) instead of re-folding over the SMs each
     cycle. *)
  let retired () = stats.Stats.ctas_retired in
  while retired () < grid && !cycle < config.max_cycles do
    (* CTA dispatch: at most one launch per SM per cycle, round robin over
       SMs so early SMs do not monopolise the grid. *)
    Array.iter
      (fun sm ->
        if !next_cta < grid && Sm.try_launch sm ~global_cta:!next_cta ~cycle:!cycle
        then incr next_cta)
      sms;
    let instrs_before = stats.Stats.instructions in
    Array.iter (fun sm -> Sm.step sm ~cycle:!cycle) sms;
    (match observe with
    | Some f when !cycle mod observe_every = 0 -> f ~cycle:!cycle sms
    | Some _ | None -> ());
    let resident = Array.fold_left (fun acc sm -> acc + Sm.resident_warps sm) 0 sms in
    stats.Stats.resident_warp_cycles <- stats.Stats.resident_warp_cycles + resident;
    stats.Stats.warp_capacity_cycles <-
      stats.Stats.warp_capacity_cycles + capacity_per_cycle;
    (* Event-driven fast-forward: when no instruction issued anywhere this
       cycle and no SM could place a CTA next cycle, the machine state is
       frozen until the earliest wakeup — the next scoreboard or memory-slot
       completion. Every cycle in between would only repeat this cycle's
       idle bookkeeping, so the clock jumps straight to the wakeup and the
       per-cycle statistics (stall attribution, occupancy integrals) are
       accounted in bulk for the skipped span. Bit-identical to stepping:
       nothing observable happens in the span, and [observe ~observe_every]
       bounds the jump so sampled cycles are still visited. *)
    let next = !cycle + 1 in
    if
      config.fast_forward
      && stats.Stats.instructions = instrs_before
      && retired () < grid
      && not (!next_cta < grid && Array.exists Sm.can_launch sms)
    then begin
      let wake = ref config.max_cycles in
      let reasons = Array.make n_sms Stats.Stall_empty in
      Array.iteri
        (fun i sm ->
          if Sm.resident_warps sm > 0 then begin
            let reason, sm_wake = Sm.idle_summary sm ~cycle:!cycle in
            reasons.(i) <- reason;
            if sm_wake < !wake then wake := sm_wake
          end)
        sms;
      let wake =
        match observe with
        | Some _ -> min !wake (((!cycle / observe_every) + 1) * observe_every)
        | None -> !wake
      in
      if wake > next then begin
        let span = wake - next in
        Array.iteri
          (fun i sm -> Sm.account_idle_span sm ~reason:reasons.(i) ~span)
          sms;
        stats.Stats.resident_warp_cycles <-
          stats.Stats.resident_warp_cycles + (span * resident);
        stats.Stats.warp_capacity_cycles <-
          stats.Stats.warp_capacity_cycles + (span * capacity_per_cycle);
        cycle := wake
      end
      else cycle := next
    end
    else cycle := next
  done;
  stats.Stats.cycles <- !cycle;
  stats.Stats.timed_out <- retired () < grid;
  stats

let probe config kernel =
  let stats = Stats.create () in
  let memory = Memory.create () in
  let mem_sys =
    Mem_system.create config.arch ~n_sms:config.arch.Gpu_uarch.Arch_config.n_sms
  in
  Sm.create config.arch ~sm_id:0 ~policy:config.policy ~kernel ~memory ~mem_sys
    ~stats ~record_stores:false ~trace_warp0:false

let theoretical_warps config kernel =
  let sm = probe config kernel in
  Sm.cta_capacity sm * Kernel.warps_per_cta config.arch kernel

let srp_sections_of config kernel = Sm.srp_sections (probe config kernel)
