type run_config = {
  arch : Gpu_uarch.Arch_config.t;
  policy : Policy.t;
  record_stores : bool;
  trace_warp0 : bool;
  max_cycles : int;
  events : Event_trace.t option;
  telemetry : Telemetry.Sink.t option;
  fast_forward : bool;
  simt : bool;
  corrupt_mask : int;
}

let default_config arch policy =
  { arch; policy; record_stores = false; trace_warp0 = false;
    max_cycles = 20_000_000; events = None; telemetry = None;
    fast_forward = true; simt = false; corrupt_mask = 0 }

type sm_diag = {
  dl_sm : int;
  dl_srp_in_use : int;
  dl_srp_sections : int;
  dl_warps : Sm.warp_diag list;
}

type deadlock_info = {
  dl_cycle : int;
  dl_pending_ctas : int;
  dl_grid_ctas : int;
  dl_retired : int;
  dl_sms : sm_diag list;
}

exception Deadlock of deadlock_info

let pp_deadlock ppf d =
  Format.fprintf ppf
    "@[<v>deadlock at cycle %d: no warp can issue, no wakeup exists, %d/%d \
     CTAs retired (%d never launched)"
    d.dl_cycle d.dl_retired d.dl_grid_ctas d.dl_pending_ctas;
  List.iter
    (fun sm ->
      if sm.dl_warps <> [] then begin
        Format.fprintf ppf "@,  SM %d: %d/%d SRP sections in use" sm.dl_sm
          sm.dl_srp_in_use sm.dl_srp_sections;
        List.iter
          (fun w -> Format.fprintf ppf "@,    %a" Sm.pp_warp_diag w)
          sm.dl_warps
      end)
    d.dl_sms;
  Format.fprintf ppf "@]"

let () =
  Printexc.register_printer (function
    | Deadlock d -> Some (Format.asprintf "Gpu.Deadlock: %a" pp_deadlock d)
    | _ -> None)

let build_sms config kernel stats memory mem_sys =
  Array.init config.arch.Gpu_uarch.Arch_config.n_sms (fun sm_id ->
      Sm.create ?events:config.events ?telemetry:config.telemetry
        ~simt:config.simt ~corrupt_mask:config.corrupt_mask config.arch
        ~sm_id ~policy:config.policy ~kernel ~memory ~mem_sys ~stats
        ~record_stores:config.record_stores
        ~trace_warp0:(config.trace_warp0 && sm_id = 0))

(* --- end-of-run telemetry ---------------------------------------------- *)

(* Mirror the run's aggregate statistics into the sink's metric registry.
   Pure reads of [stats] — a sink can never perturb the simulation
   results, only report them. Counter registration is idempotent, so
   repeated runs into one registry accumulate (the Prometheus model). *)
let finalize_metrics (sink : Telemetry.Sink.t) config stats mem_sys =
  let m = sink.Telemetry.Sink.metrics in
  let count ?help name v = Telemetry.Metrics.(inc (counter ?help m name) v) in
  count "regmutex_cycles_total" ~help:"simulated cycles" stats.Stats.cycles;
  count "regmutex_instructions_total" ~help:"instructions issued"
    stats.Stats.instructions;
  count "regmutex_ctas_retired_total" stats.Stats.ctas_retired;
  count "regmutex_acquires_total" ~help:"SRP acquire executions"
    stats.Stats.acquire_execs;
  count "regmutex_acquires_first_try_total" stats.Stats.acquire_first_try;
  count "regmutex_releases_total" stats.Stats.release_execs;
  count "regmutex_acquire_stall_cycles_total" stats.Stats.acquire_stall_cycles;
  count "regmutex_shared_oob_total" stats.Stats.shared_oob;
  count "regmutex_active_lane_cycles_total"
    ~help:"lanes active over issued instructions" stats.Stats.active_lane_cycles;
  count "regmutex_predicated_lane_cycles_total"
    ~help:"lanes predicated off over issued instructions (SIMT)"
    stats.Stats.predicated_lane_cycles;
  count "regmutex_divergent_branches_total"
    ~help:"conditional branches whose lanes split both ways (SIMT)"
    stats.Stats.divergent_branches;
  count "regmutex_mem_requests_total" (Mem_system.issued mem_sys);
  List.iter
    (fun r ->
      let reason =
        String.map (fun c -> if c = '-' then '_' else c) (Stats.reason_name r)
      in
      count
        ("regmutex_stall_" ^ reason ^ "_cycles_total")
        ~help:"idle scheduler slots attributed to this stall reason"
        (Stats.stall_count stats r))
    Stats.all_reasons;
  (match config.events with
  | Some tr ->
      count "regmutex_event_trace_dropped_total"
        ~help:"structured events lost to the Event_trace capacity bound"
        (Event_trace.dropped tr)
  | None -> ());
  count "regmutex_trace_dropped_total"
    ~help:"oldest trace records overwritten by the telemetry ring"
    (Telemetry.Trace.dropped sink.Telemetry.Sink.trace);
  let set name v = Telemetry.Metrics.(set (gauge m name) v) in
  set "regmutex_ipc" (Stats.ipc stats);
  set "regmutex_achieved_occupancy" (Stats.achieved_occupancy stats);
  (let issued = stats.Stats.active_lane_cycles + stats.Stats.predicated_lane_cycles in
   if issued > 0 then
     set "regmutex_active_lane_occupancy"
       (float_of_int stats.Stats.active_lane_cycles /. float_of_int issued));
  set "regmutex_mem_mean_latency_cycles" (Mem_system.mean_latency mem_sys)

(* Satellite of the telemetry work: the structured event log used to drop
   at capacity silently. Surface the loss once, at run end. *)
let warn_dropped config =
  (match config.events with
  | Some tr when Event_trace.dropped tr > 0 ->
      Format.eprintf
        "warning: event trace dropped %d events past its %d-entry capacity@."
        (Event_trace.dropped tr) (Event_trace.length tr)
  | Some _ | None -> ());
  match config.telemetry with
  | Some sink when Telemetry.Trace.dropped sink.Telemetry.Sink.trace > 0 ->
      Format.eprintf
        "warning: telemetry ring dropped %d oldest records (capacity %d); \
         the exported trace is the most recent window@."
        (Telemetry.Trace.dropped sink.Telemetry.Sink.trace)
        (Telemetry.Trace.capacity sink.Telemetry.Sink.trace)
  | Some _ | None -> ()

let run ?observe ?(observe_every = 1) config kernel =
  if observe_every < 1 then invalid_arg "Gpu.run: observe_every must be >= 1";
  let stats = Stats.create () in
  let memory = Memory.create () in
  let arch = config.arch in
  let mem_sys = Mem_system.create arch ~n_sms:arch.Gpu_uarch.Arch_config.n_sms in
  let sms = build_sms config kernel stats memory mem_sys in
  if Array.exists (fun sm -> Sm.cta_capacity sm = 0) sms then
    invalid_arg "Gpu.run: kernel exceeds SM resources (zero occupancy)";
  let grid = kernel.Kernel.grid_ctas in
  let n_sms = Array.length sms in
  (* The GPU driver gets its own trace process above the SMs: fast-forward
     jump spans land there. *)
  let ff_name =
    match config.telemetry with
    | Some sink ->
        let tr = sink.Telemetry.Sink.trace in
        Telemetry.Trace.set_process_name tr ~pid:n_sms "GPU";
        Telemetry.Trace.set_thread_name tr ~pid:n_sms ~tid:0 "fast-forward";
        Telemetry.Trace.intern tr "fast-forward"
    | None -> 0
  in
  let capacity_per_cycle = arch.Gpu_uarch.Arch_config.max_warps * n_sms in
  let next_cta = ref 0 in
  let cycle = ref 0 in
  (* Grid completion reads the retirement counter the SMs maintain (every
     retire bumps [ctas_retired]) instead of re-folding over the SMs each
     cycle. *)
  let retired () = stats.Stats.ctas_retired in
  while retired () < grid && !cycle < config.max_cycles do
    (* CTA dispatch: at most one launch per SM per cycle, round robin over
       SMs so early SMs do not monopolise the grid. The per-SM loops are
       plain [for]s: closures here would be allocated every simulated
       cycle. *)
    for i = 0 to n_sms - 1 do
      if !next_cta < grid && Sm.try_launch sms.(i) ~global_cta:!next_cta ~cycle:!cycle
      then incr next_cta
    done;
    let instrs_before = stats.Stats.instructions in
    for i = 0 to n_sms - 1 do
      Sm.step sms.(i) ~cycle:!cycle
    done;
    (match observe with
    | Some f when !cycle mod observe_every = 0 -> f ~cycle:!cycle sms
    | Some _ | None -> ());
    let resident = ref 0 in
    for i = 0 to n_sms - 1 do
      resident := !resident + Sm.resident_warps sms.(i)
    done;
    let resident = !resident in
    stats.Stats.resident_warp_cycles <- stats.Stats.resident_warp_cycles + resident;
    stats.Stats.warp_capacity_cycles <-
      stats.Stats.warp_capacity_cycles + capacity_per_cycle;
    (* Event-driven fast-forward: when no instruction issued anywhere this
       cycle and no SM could place a CTA next cycle, the machine state is
       frozen until the earliest wakeup — the next scoreboard or memory-slot
       completion. Every cycle in between would only repeat this cycle's
       idle bookkeeping, so the clock jumps straight to the wakeup and the
       per-cycle statistics (stall attribution, occupancy integrals) are
       accounted in bulk for the skipped span. Bit-identical to stepping:
       nothing observable happens in the span, and [observe ~observe_every]
       bounds the jump so sampled cycles are still visited. *)
    let next = !cycle + 1 in
    (* A cycle is frozen when no instruction issued anywhere and no SM
       could place a CTA next cycle: the machine state can only change at
       a future wakeup. Frozen cycles feed two consumers: the fast-forward
       jump, and the no-progress guard — if no wakeup exists either
       (every stalled warp waits on another warp's issue, which frozen-ness
       rules out forever) the run can never terminate, so it raises a
       structured [Deadlock] instead of spinning (or jumping) to the
       watchdog. Both modes see the same first frozen cycle, so detection
       is mode-independent. *)
    let frozen =
      stats.Stats.instructions = instrs_before
      && retired () < grid
      && not (!next_cta < grid && Array.exists Sm.can_launch sms)
    in
    if frozen then begin
      let wake = ref max_int in
      let reasons = Array.make n_sms Stats.Stall_empty in
      Array.iteri
        (fun i sm ->
          if Sm.resident_warps sm > 0 then begin
            let reason, sm_wake = Sm.idle_summary sm ~cycle:!cycle in
            reasons.(i) <- reason;
            if sm_wake < !wake then wake := sm_wake
          end)
        sms;
      if !wake = max_int then
        raise
          (Deadlock
             {
               dl_cycle = !cycle;
               dl_pending_ctas = grid - !next_cta;
               dl_grid_ctas = grid;
               dl_retired = retired ();
               dl_sms =
                 Array.to_list
                   (Array.mapi
                      (fun i sm ->
                        let in_use, sections =
                          match Sm.srp_invariant sm with
                          | Some (Ok (u, _, total)) -> (u, total)
                          | Some (Error _) | None ->
                              (Sm.srp_in_use sm, Sm.srp_sections sm)
                        in
                        {
                          dl_sm = i;
                          dl_srp_in_use = in_use;
                          dl_srp_sections = sections;
                          dl_warps = Sm.diagnose sm ~cycle:!cycle;
                        })
                      sms);
             });
      if config.fast_forward then begin
        let wake = min !wake config.max_cycles in
        let wake =
          match observe with
          | Some _ -> min wake (((!cycle / observe_every) + 1) * observe_every)
          | None -> wake
        in
        if wake > next then begin
          let span = wake - next in
          Array.iteri
            (fun i sm ->
              Sm.account_idle_span sm ~from:next ~reason:reasons.(i) ~span)
            sms;
          (match config.telemetry with
          | Some sink ->
              Telemetry.Trace.span sink.Telemetry.Sink.trace ~ts:next ~dur:span
                ~pid:n_sms ~tid:0 ~name:ff_name ~arg:span
          | None -> ());
          stats.Stats.resident_warp_cycles <-
            stats.Stats.resident_warp_cycles + (span * resident);
          stats.Stats.warp_capacity_cycles <-
            stats.Stats.warp_capacity_cycles + (span * capacity_per_cycle);
          cycle := wake
        end
        else cycle := next
      end
      else cycle := next
    end
    else cycle := next
  done;
  stats.Stats.cycles <- !cycle;
  stats.Stats.timed_out <- retired () < grid;
  (match config.telemetry with
  | Some sink ->
      Array.iter (fun sm -> Sm.finalize_probe sm ~cycle:!cycle) sms;
      finalize_metrics sink config stats mem_sys
  | None -> ());
  warn_dropped config;
  stats

let probe config kernel =
  let stats = Stats.create () in
  let memory = Memory.create () in
  let mem_sys =
    Mem_system.create config.arch ~n_sms:config.arch.Gpu_uarch.Arch_config.n_sms
  in
  Sm.create config.arch ~sm_id:0 ~policy:config.policy ~kernel ~memory ~mem_sys
    ~stats ~record_stores:false ~trace_warp0:false

let theoretical_warps config kernel =
  let sm = probe config kernel in
  Sm.cta_capacity sm * Kernel.warps_per_cta config.arch kernel

let srp_sections_of config kernel = Sm.srp_sections (probe config kernel)
