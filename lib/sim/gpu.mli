(** Whole-GPU simulation driver: dispatches the grid's CTAs over the SMs
    and steps them cycle by cycle until the grid completes — fast-forwarding
    over fully idle spans unless asked not to. *)

type run_config = {
  arch : Gpu_uarch.Arch_config.t;
  policy : Policy.t;
  record_stores : bool;  (** collect per-warp store traces *)
  trace_warp0 : bool;    (** collect the PC trace of CTA 0 / warp 0 *)
  max_cycles : int;      (** watchdog; the run flags [timed_out] past it *)
  events : Event_trace.t option;  (** structured event sink, off by default *)
  telemetry : Telemetry.Sink.t option;
      (** trace-recorder + metrics sink, off by default. When present, the
          SMs record warp/CTA lifetimes, SRP holds, stall episodes and
          occupancy counters into the sink's ring ({!Probe}), and the run
          mirrors its aggregate statistics into the sink's metric registry
          at completion. The disabled path is a no-op: statistics, event
          traces and fast-forward behaviour are bit-identical with and
          without a sink (the bench suite enforces this). *)
  fast_forward : bool;
      (** Event-driven cycle skipping (default [true]): when no warp on any
          SM can issue and no CTA can launch, the clock jumps straight to
          the earliest wakeup (scoreboard or memory-slot completion) and
          the skipped cycles' statistics are accounted in bulk. Strictly
          semantics-preserving — statistics and event traces are
          bit-identical to per-cycle stepping; [false] is the brute-force
          escape hatch the equivalence suite and benchmarks compare
          against. *)
  simt : bool;
      (** Per-thread (SIMT) execution, off by default: lane-resolved
          register values, predicated execution under an active-lane mask,
          and an immediate-post-dominator reconvergence stack per warp.
          Timing stays warp-granular; a warp-uniform program produces
          bit-identical statistics and store traces in both models. *)
  corrupt_mask : int;
      (** Lanes cleared from every warp's initial active mask (0 = none).
          Fault-injection hook for the fuzz oracle's per-lane-trace
          self-test; meaningful only with [simt]. *)
}

val default_config : Gpu_uarch.Arch_config.t -> Policy.t -> run_config

(** Per-SM slice of a deadlock diagnostic. *)
type sm_diag = {
  dl_sm : int;
  dl_srp_in_use : int;
  dl_srp_sections : int;
  dl_warps : Sm.warp_diag list;
}

type deadlock_info = {
  dl_cycle : int;          (** first cycle at which the machine froze *)
  dl_pending_ctas : int;   (** grid CTAs that never launched *)
  dl_grid_ctas : int;
  dl_retired : int;
  dl_sms : sm_diag list;
}

(** Raised by {!run} when the machine can never make progress again: no
    warp on any SM can issue, no CTA can launch, and no future wakeup
    (scoreboard or memory completion) exists — every stalled warp waits on
    an issue that can no longer happen (acquire / barrier / RFV-register
    stalls). Detection is identical under fast-forward and brute-force
    stepping: both see the same first frozen cycle. The fuzz oracle
    consumes this as its forward-progress watchdog. *)
exception Deadlock of deadlock_info

val pp_deadlock : Format.formatter -> deadlock_info -> unit

(** Run a kernel to completion; returns the populated statistics.

    [observe] is called after all SMs stepped, on every cycle that is a
    multiple of [observe_every] (default [1]: every cycle). Under
    fast-forward the jump is clamped so each sampled cycle is genuinely
    visited — the observed cycle grid is exactly the multiples of
    [observe_every] below the run's cycle count, identical in both modes.
    Passing [observe] with the default interval therefore disables
    skipping entirely; callers that only need a periodic sample (e.g.
    occupancy timelines) should pass the coarsest interval they can
    tolerate. [observe_every] without [observe] has no effect.

    @raise Invalid_argument if [observe_every < 1].
    @raise Sm.Verification_failure in verification mode on unsound
    extended-set accesses. *)
val run :
  ?observe:(cycle:int -> Sm.t array -> unit) ->
  ?observe_every:int ->
  run_config ->
  Kernel.t ->
  Stats.t

(** Theoretical resident warps per SM under the run's policy (the paper's
    occupancy numerator). *)
val theoretical_warps : run_config -> Kernel.t -> int

(** SRP sections per SM under the run's policy (0 for non-SRP policies). *)
val srp_sections_of : run_config -> Kernel.t -> int
