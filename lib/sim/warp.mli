(** Per-warp execution state, stored structure-of-arrays.

    The simulator hot loop walks every warp slot every cycle, so the hot
    mutable fields ([pc], [ready_at], [status], the acquire/SRP state,
    issue counters) live in packed [int array]s indexed by warp slot —
    one cache-friendly {!Soa.t} per SM — instead of one boxed record per
    warp. Registers hold warp-uniform values (see DESIGN.md);
    [reg_ready.(slot).(r)] is the cycle at which the in-flight producer
    of [r] completes — the scoreboard consulted before issue.

    Cold identity fields are materialised on demand as a thin {!view}
    record for probe and diagnostic paths. *)

type status =
  | Ready       (** may issue (subject to scoreboard/structural checks) *)
  | At_barrier  (** arrived at a [Bar]; waiting for the CTA *)
  | Done        (** executed [Exit] *)

module Soa : sig
  (** Status encoding in {!t.status}. [st_absent] doubles as
      "no warp resident in this slot". *)

  val st_ready : int
  val st_barrier : int
  val st_done : int
  val st_absent : int

  (** Per-slot SIMT execution state (allocated only under [--simt]): a
      lane-resolved register file plus the immediate-post-dominator
      reconvergence stack. The running state is the triple
      [(pc.(slot), active.(slot), rpc.(slot))]; suspended branch arms and
      reconvergence continuations live on the per-slot stack, deepest
      enclosing scope first. *)
  type simt = {
    lanes : int;                  (** warp width (lanes per warp) *)
    full_mask : int;              (** [(1 lsl lanes) - 1] *)
    lane_regs : int array array;
        (** lane-major per-lane register file row per slot
            ([lane * n_regs + r], [lanes * n_regs] words) *)
    active : int array;           (** active-lane bitmask per slot *)
    rpc : int array;
        (** current reconvergence pc per slot; the program length acts as
            the never-reached top-level sentinel *)
    stk_pc : int array array;     (** suspended-entry pcs (rows grow) *)
    stk_rpc : int array array;
    stk_mask : int array array;
    stk_depth : int array;
  }

  type t = {
    n_slots : int;
    n_regs : int;
    status : int array;           (** st_* code per slot *)
    pc : int array;
    ready_at : int array;
        (** earliest cycle the current instruction's operands are all
            ready — the maximum [reg_ready] over the registers it
            touches, maintained by the SM at every [pc] move
            ({!refresh_ready_at}). The wakeup layer reads it to
            fast-forward over scoreboard stalls. *)
    age : int array;              (** global launch sequence number *)
    key : int array;
        (** packed scheduler ordering key ([Scheduler.pack_key] of the
            warp's policy priority and age); [max_int] when absent *)
    acquire_stalled : int array;
        (** 0/1: the acquire at the current [pc] already failed once *)
    acquired_at : int array;
        (** cycle the currently-held extended set was granted, or [-1]
            when none is held. Always maintained (not just under
            telemetry) so deadlock diagnostics can report how long each
            holder has sat on its section. *)
    owns_ext : int array;         (** 0/1, OWF: holds the pair's shared regs *)
    partner : int array;          (** OWF: partner warp slot, or -1 *)
    rfv_alloc : int array;        (** RFV: physical packs currently charged *)
    issued : int array;           (** dynamic instructions issued *)
    global_cta : int array;       (** CTA index within the grid *)
    warp_in_cta : int array;
    cta_slot : int array;         (** resident-CTA slot within the SM *)
    regs : int array array;       (** register file row per slot *)
    reg_ready : int array array;  (** scoreboard row per slot *)
    simt : simt option;           (** lane-resolved state under [--simt] *)
  }

  (** [create ?lanes ~n_slots ~n_regs ()] — passing [lanes] (the warp
      width, 1..62) allocates the per-lane SIMT state; without it the SoA
      is the plain warp-uniform layout. *)
  val create : ?lanes:int -> n_slots:int -> n_regs:int -> unit -> t

  (** Is a warp resident in [slot]? *)
  val resident : t -> int -> bool

  (** Decode {!field-status}; raises if the slot is empty. *)
  val status_of : t -> int -> status

  (** Install a fresh warp in [slot]: resets all hot fields and zeroes
      the register/scoreboard rows. The caller sets [key] and [partner]
      afterwards (they depend on the register policy). *)
  val launch :
    t ->
    slot:int ->
    cta_slot:int ->
    global_cta:int ->
    warp_in_cta:int ->
    age:int ->
    unit

  (** Free the slot ([status] becomes [st_absent], [key] [max_int]). *)
  val retire : t -> slot:int -> unit

  (** All source and destination registers of [instr] ready at [cycle]?
      Equivalent to [ready_at.(slot) <= cycle] once {!refresh_ready_at}
      ran for the current [pc]; kept for tests and assertions. *)
  val deps_ready : t -> slot:int -> Gpu_isa.Instr.t -> cycle:int -> bool

  (** [refresh_ready_at t ~slot ~touched] recomputes [ready_at.(slot)]
      as the max scoreboard entry over [touched], the precomputed list
      of registers the instruction at the new [pc] reads or writes.
      Must be called after every [pc] move (the SM does). *)
  val refresh_ready_at : t -> slot:int -> touched:int array -> unit

  (** {2 SIMT reconvergence stack}

      All operations raise [Invalid_argument] when the SoA was created
      without [lanes]. *)

  (** Reset a slot's SIMT state at warp launch: zero the lane registers,
      install [mask] as the active mask and [rpc] (the program-length
      sentinel) as the top-level reconvergence pc, empty the stack. *)
  val simt_reset : t -> slot:int -> mask:int -> rpc:int -> unit

  (** Current active-lane bitmask. *)
  val simt_active : t -> slot:int -> int

  (** Divergent conditional branch at the current pc: pushes the
      reconvergence continuation (full current mask, resuming at [rpc])
      and the taken arm ([taken] lanes at [tgt]); the warp continues into
      the fall-through arm with the remaining lanes under reconvergence
      scope [rpc]. Route the fall-through pc through {!simt_next}
      afterwards. *)
  val simt_diverge : t -> slot:int -> tgt:int -> taken:int -> rpc:int -> unit

  (** [simt_next t ~slot next] routes a computed next-pc through the
      stack: while [next] equals the current reconvergence pc, pop — the
      suspended taken arm runs next, and finally the continuation resumes
      at the reconvergence point with the full mask. Returns the pc to
      execute. *)
  val simt_next : t -> slot:int -> int -> int

  (** [Exit] under the current mask: active lanes terminate and are
      cleared from every suspended mask. [Some pc] resumes the surviving
      lanes; [None] means every lane has exited (the warp is done). *)
  val simt_exit : t -> slot:int -> int option

  (** Pure peek variants of {!simt_next} / {!simt_exit} for scheduler
      probes (no mutation). *)
  val simt_peek_next : t -> slot:int -> int -> int

  val simt_peek_exit : t -> slot:int -> int option
end

(** Thin identity record for probe/diagnostic paths. *)
type view = {
  slot : int;           (** warp slot within the SM *)
  cta_slot : int;       (** resident-CTA slot within the SM *)
  global_cta : int;     (** CTA index within the grid *)
  warp_in_cta : int;
  age : int;            (** global launch sequence number (GTO "oldest") *)
}

val view : Soa.t -> int -> view
