(** Per-warp execution state.

    Registers hold warp-uniform values (see DESIGN.md); [reg_ready.(r)] is
    the cycle at which the in-flight producer of [r] completes — the
    scoreboard consulted before issue. *)

type status =
  | Ready       (** may issue (subject to scoreboard/structural checks) *)
  | At_barrier  (** arrived at a [Bar]; waiting for the CTA *)
  | Done        (** executed [Exit] *)

type t = {
  slot : int;           (** warp slot within the SM *)
  cta_slot : int;       (** resident-CTA slot within the SM *)
  global_cta : int;     (** CTA index within the grid *)
  warp_in_cta : int;
  age : int;            (** global launch sequence number (GTO "oldest") *)
  regs : int array;
  reg_ready : int array;
  mutable pc : int;
  mutable status : status;
  mutable ready_at : int;
      (** earliest cycle the current instruction's operands are all ready —
          the maximum [reg_ready] over the registers it touches, maintained
          by the SM at every [pc] move ({!refresh_ready_at}). The wakeup
          layer reads it to fast-forward over scoreboard stalls. *)
  mutable acquire_stalled : bool;
      (** the acquire at the current [pc] already failed once *)
  mutable acquired_at : int;
      (** cycle the currently-held extended set was granted, or [-1] when
          none is held. Always maintained (not just under telemetry) so
          deadlock diagnostics can report how long each holder has sat on
          its section. *)
  mutable owns_ext : bool;  (** OWF: holds the pair's shared registers *)
  mutable partner : int;    (** OWF: partner warp slot, or -1 *)
  mutable rfv_alloc : int;  (** RFV: physical packs currently charged *)
  mutable issued : int;     (** dynamic instructions issued *)
}

val create :
  slot:int ->
  cta_slot:int ->
  global_cta:int ->
  warp_in_cta:int ->
  age:int ->
  n_regs:int ->
  t

(** All source and destination registers ready at [cycle]? *)
val deps_ready : t -> Gpu_isa.Instr.t -> cycle:int -> bool

(** [refresh_ready_at t instr] recomputes {!field-ready_at} for [instr],
    the instruction now at [t.pc]. Must be called after every [pc] move
    (the SM does); [deps_ready t instr ~cycle] is then equivalent to
    [t.ready_at <= cycle]. *)
val refresh_ready_at : t -> Gpu_isa.Instr.t -> unit
