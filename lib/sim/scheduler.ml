type kind = Gto | Lrr | Two_level of int

type t = {
  kind : kind;
  id : int;
  n_schedulers : int;
  mutable current : int;
  mutable rr_pos : int;
  mutable active_group : int;
}

let create kind ~id ~n_schedulers =
  (match kind with
  | Two_level g when g <= 0 -> invalid_arg "Scheduler.create: empty fetch group"
  | Two_level _ | Gto | Lrr -> ());
  { kind; id; n_schedulers; current = -1; rr_pos = 0; active_group = 0 }

let owns t ~slot = slot mod t.n_schedulers = t.id

(* Candidate ordering packed into one int — [(priority, age)] compared
   lexicographically, with ages far below 2^50 — so the per-cycle scan over
   every warp slot allocates nothing. Ties keep the first (lowest-slot)
   candidate, exactly as the tuple comparison did. *)
let pack_key ~priority ~age = (priority lsl 50) lor age

let scan_best t ~n_slots ~get ~can_issue ~priority =
  let best = ref None in
  let best_key = ref max_int in
  for slot = 0 to n_slots - 1 do
    if owns t ~slot then
      match get slot with
      | None -> ()
      | Some w ->
          if can_issue w then begin
            let key = pack_key ~priority:(priority w) ~age:w.Warp.age in
            if key < !best_key then begin
              best_key := key;
              best := Some w
            end
          end
  done;
  !best

let pick_gto t ~n_slots ~get ~can_issue ~priority =
  let greedy =
    if t.current >= 0 && t.current < n_slots then
      match get t.current with
      | Some w when can_issue w -> Some w
      | Some _ | None -> None
    else None
  in
  match greedy with
  | Some w -> Some w
  | None -> (
      match scan_best t ~n_slots ~get ~can_issue ~priority with
      | Some w ->
          t.current <- w.Warp.slot;
          Some w
      | None -> None)

let pick_lrr t ~n_slots ~get ~can_issue ~priority:_ =
  let rec go tried slot =
    if tried >= n_slots then None
    else
      let slot = if slot >= n_slots then 0 else slot in
      let found =
        if owns t ~slot then
          match get slot with Some w when can_issue w -> Some w | Some _ | None -> None
        else None
      in
      match found with
      | Some w ->
          t.rr_pos <- slot + 1;
          Some w
      | None -> go (tried + 1) (slot + 1)
  in
  go 0 t.rr_pos

(* Two-level: drain the active fetch group; when it has no runnable warp,
   rotate to the next group that does. Groups partition a scheduler's own
   slots into contiguous runs of [group_size]. *)
let pick_two_level t ~group_size ~n_slots ~get ~can_issue ~priority =
  let n_groups = (n_slots + group_size - 1) / group_size in
  let scan_group g =
    let best = ref None in
    let best_key = ref max_int in
    for slot = g * group_size to min n_slots ((g + 1) * group_size) - 1 do
      if owns t ~slot then
        match get slot with
        | Some w when can_issue w ->
            let key = pack_key ~priority:(priority w) ~age:w.Warp.age in
            if key < !best_key then begin
              best_key := key;
              best := Some w
            end
        | Some _ | None -> ()
    done;
    !best
  in
  let rec rotate tried g =
    if tried >= n_groups then None
    else
      match scan_group g with
      | Some w ->
          t.active_group <- g;
          Some w
      | None -> rotate (tried + 1) ((g + 1) mod n_groups)
  in
  rotate 0 (t.active_group mod max n_groups 1)

let pick t ~n_slots ~get ~can_issue ~priority =
  match t.kind with
  | Gto -> pick_gto t ~n_slots ~get ~can_issue ~priority
  | Lrr -> pick_lrr t ~n_slots ~get ~can_issue ~priority
  | Two_level group_size ->
      pick_two_level t ~group_size ~n_slots ~get ~can_issue ~priority
