module Soa = Warp.Soa

type kind = Gto | Lrr | Two_level of int

type t = {
  kind : kind;
  id : int;
  n_schedulers : int;
  mutable current : int;
  mutable rr_pos : int;
  mutable active_group : int;
}

let create kind ~id ~n_schedulers =
  (match kind with
  | Two_level g when g <= 0 -> invalid_arg "Scheduler.create: empty fetch group"
  | Two_level _ | Gto | Lrr -> ());
  { kind; id; n_schedulers; current = -1; rr_pos = 0; active_group = 0 }

let owns t ~slot = slot mod t.n_schedulers = t.id

(* Candidate ordering packed into one int — [(priority, age)] compared
   lexicographically — so the per-cycle scan over every warp slot reads one
   precomputed key per candidate and allocates nothing. Ages beyond the
   field width saturate instead of spilling into the priority bits, so
   priority still dominates at the limit (ties then fall back to the
   first/lowest-slot candidate, exactly as equal keys always have). *)
let age_bits = 50
let age_mask = (1 lsl age_bits) - 1
let pack_key ~priority ~age = (priority lsl age_bits) lor min age age_mask

(* A candidate must pass the slot-local prefix — a resident warp in
   [Ready] status whose scoreboard bound has passed — before the residual
   [can_issue] check (memory slots and register-policy state, owned by the
   SM). The residual check carries the acquire-stall side effects of a
   real issue attempt, so candidates are visited in exactly the order the
   record-based scan did: increasing slot. *)
(* [runnable] is inlined by hand below (status = st_ready and the
   scoreboard bound passed): the scan bodies are the hottest loops in the
   simulator and the non-flambda compiler does not reliably inline even
   tiny cross-function calls. *)

let scan_best t ~(soa : Soa.t) ~cycle ~can_issue =
  let status = soa.Soa.status in
  let ready_at = soa.Soa.ready_at in
  let key = soa.Soa.key in
  let best = ref (-1) in
  let best_key = ref max_int in
  let slot = ref t.id in
  while !slot < soa.Soa.n_slots do
    let s = !slot in
    if status.(s) = Soa.st_ready && ready_at.(s) <= cycle && can_issue s
    then begin
      let k = key.(s) in
      if k < !best_key then begin
        best_key := k;
        best := s
      end
    end;
    slot := s + t.n_schedulers
  done;
  !best

let pick_gto t ~(soa : Soa.t) ~cycle ~can_issue =
  let cur = t.current in
  if
    cur >= 0
    && cur < soa.Soa.n_slots
    && soa.Soa.status.(cur) = Soa.st_ready
    && soa.Soa.ready_at.(cur) <= cycle
    && can_issue cur
  then cur
  else begin
    let s = scan_best t ~soa ~cycle ~can_issue in
    if s >= 0 then t.current <- s;
    s
  end

let pick_lrr t ~(soa : Soa.t) ~cycle ~can_issue =
  let n_slots = soa.Soa.n_slots in
  let status = soa.Soa.status in
  let ready_at = soa.Soa.ready_at in
  let rec go tried slot =
    if tried >= n_slots then -1
    else
      let slot = if slot >= n_slots then 0 else slot in
      if
        owns t ~slot
        && status.(slot) = Soa.st_ready
        && ready_at.(slot) <= cycle
        && can_issue slot
      then begin
        t.rr_pos <- slot + 1;
        slot
      end
      else go (tried + 1) (slot + 1)
  in
  go 0 t.rr_pos

(* Two-level: drain the active fetch group; when it has no runnable warp,
   rotate to the next group that does. Groups partition a scheduler's own
   slots into contiguous runs of [group_size]. *)
let pick_two_level t ~group_size ~(soa : Soa.t) ~cycle ~can_issue =
  let n_slots = soa.Soa.n_slots in
  let status = soa.Soa.status in
  let ready_at = soa.Soa.ready_at in
  let key = soa.Soa.key in
  let n_groups = (n_slots + group_size - 1) / group_size in
  let scan_group g =
    let best = ref (-1) in
    let best_key = ref max_int in
    let hi = (g + 1) * group_size in
    let hi = if hi > n_slots then n_slots else hi in
    for slot = g * group_size to hi - 1 do
      if
        owns t ~slot
        && status.(slot) = Soa.st_ready
        && ready_at.(slot) <= cycle
        && can_issue slot
      then begin
        let k = key.(slot) in
        if k < !best_key then begin
          best_key := k;
          best := slot
        end
      end
    done;
    !best
  in
  let rec rotate tried g =
    if tried >= n_groups then -1
    else
      let s = scan_group g in
      if s >= 0 then begin
        t.active_group <- g;
        s
      end
      else rotate (tried + 1) ((g + 1) mod n_groups)
  in
  rotate 0 (t.active_group mod max n_groups 1)

let pick t ~soa ~cycle ~can_issue =
  match t.kind with
  | Gto -> pick_gto t ~soa ~cycle ~can_issue
  | Lrr -> pick_lrr t ~soa ~cycle ~can_issue
  | Two_level group_size -> pick_two_level t ~group_size ~soa ~cycle ~can_issue
