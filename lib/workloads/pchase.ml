(* PChase: pointer-chase microbenchmark — not part of the paper's Table I.
   A register-pressure bulge fills the whole register file (62 registers
   per thread, so one 512-thread CTA per SM on the full register file),
   then each warp walks a long chain of dependent global loads: every
   address is the previous load's value, so the chain serializes on the
   full 400-cycle latency with a single outstanding request per warp.
   Latency-bound at minimal occupancy — the regime where the simulator's
   event-driven fast-forward collapses whole memory waits into one jump
   (see gpu.mli); `bench cycles` uses it as the cycle-skipping stress
   cell. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid, r1 hop counter, r2 chase cursor, r3 chase
   partner / bulge accumulator, r4..r61 bulge. *)
let program =
  assemble ~name:"pchase"
    (Shape.global_id ~gid:0
    @ [ mov 3 (imm 0); mul 2 (r 0) (imm 8) ]
    @ Shape.bulge ~keep:[ 2 ] ~seed:0 ~acc:3 ~first:4 ~last:61 ~hold:4 ()
    @ Shape.counted_loop ~ctr:1 ~trips:(param 0) ~name:"hop"
        (* Loads alternate between the cursor and its partner so each
           address is the previous load's destination — a pure
           load-to-load dependency with no ALU in between. *)
        [ load ~ofs:0 I.Global 3 (r 2);
          load ~ofs:1 I.Global 2 (r 3);
          load ~ofs:2 I.Global 3 (r 2);
          load ~ofs:3 I.Global 2 (r 3) ]
    @ [ store ~ofs:0x10000000 I.Global (r 0) (r 2); exit_ ])

let spec =
  {
    Spec.name = "PChase";
    description = "pointer chase: latency-bound dependent loads at minimal occupancy";
    kernel =
      Gpu_sim.Kernel.make ~name:"pchase" ~grid_ctas:8 ~cta_threads:512
        ~params:[| 16 |] program;
    paper_regs = 62;
    paper_rounded = 64;
    paper_bs = 8;
    group = Spec.Occupancy_limited;
  }
