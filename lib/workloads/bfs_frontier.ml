(* BFS-Frontier: a data-dependent breadth-first frontier expansion built
   to exercise true SIMT divergence (unlike the Table I kernels, which are
   warp-uniform: no [%laneid], so every lane of a warp follows one path).
   Each lane derives its own frontier depth from its global thread id —
   lanes of one warp retire from the node loop on different iterations —
   and each visited node takes one of two arms (pointer-chase plus a
   register bulge, or a light accumulate) keyed to a loaded value, so the
   warp splits and reconverges at the join on every iteration. Only
   meaningful under [--simt]; under the warp-uniform model [%laneid] reads
   0 and the warp follows lane 0's path. *)

open Gpu_isa.Builder
module I = Gpu_isa.Instr

(* Register map: r0 gid (warp-base), r1 per-lane thread id, r2 frontier
   depth (1..4, lane-varying), r3 accumulator, r4 node cursor, r5 node
   counter, r6 node value / chase cursor, r7 predicate / neighbour,
   r8..r21 update bulge — 22 registers, which at 512 threads/CTA makes
   the kernel register-limited (like the paper's occupancy-limited set),
   so the techniques actually differ under divergence. *)
let program =
  assemble ~name:"bfs_frontier"
    (Shape.global_id ~gid:0
    @ [ add 1 (r 0) lane_id;
        and_ 2 (r 1) (imm 3);
        add 2 (r 2) (imm 1);
        mov 3 (imm 0);
        mul 4 (r 1) (imm 4) ]
    @ Shape.counted_loop ~ctr:5 ~trips:(r 2) ~name:"node"
        ([ load I.Global 6 (r 4); and_ 7 (r 6) (imm 1); bz (r 7) "even" ]
        @ Shape.chase I.Global ~addr:6 ~dst:7 ~hops:2
        @ Shape.bulge ~seed:7 ~acc:3 ~first:8 ~last:21 ~hold:2 ()
        @ [ bra "join"; label "even"; mad 3 (r 6) (imm 3) (r 3); label "join";
            store ~ofs:0x10000000 I.Global (r 4) (r 3);
            add 4 (r 4) (imm 4) ])
    @ [ exit_ ])

let spec =
  {
    Spec.name = "BFS-Frontier";
    description =
      "data-dependent frontier expansion: per-lane trip counts and branchy \
       neighbour updates (true SIMT divergence)";
    kernel =
      Gpu_sim.Kernel.make ~name:"bfs_frontier" ~grid_ctas:16 ~cta_threads:512
        ~params:[||] program;
    paper_regs = 22;
    paper_rounded = 24;
    paper_bs = 16;
    group = Spec.Occupancy_limited;
  }
