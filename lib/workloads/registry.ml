let occupancy_limited =
  [ Bfs.spec; Cutcp.spec; Dwt2d.spec; Hotspot3d.spec; Mri_q.spec;
    Particlefilter.spec; Radixsort.spec; Sad.spec ]

let regfile_sensitive =
  [ Gaussian.spec; Heartwall.spec; Lavamd.spec; Mergesort.spec;
    Montecarlo.spec; Spmv.spec; Srad.spec; Tpacf.spec ]

let all = occupancy_limited @ regfile_sensitive

let latency_bound = [ Pchase.spec ]

(* Divergent kernels read [%laneid]; everything in [all] is warp-uniform.
   Kept out of [all] so the paper's figures and tables are unchanged —
   these cells only appear under [--simt] (the head-to-head divergence
   rows and `bench simt`). *)
let divergent = [ Bfs_frontier.spec ]

let find name =
  let wanted = String.lowercase_ascii name in
  match
    List.find_opt
      (fun s -> String.lowercase_ascii s.Spec.name = wanted)
      (all @ latency_bound @ divergent)
  with
  | Some s -> s
  | None -> raise Not_found

let names = List.map (fun s -> s.Spec.name) all

let figure1 =
  [ Cutcp.spec; Dwt2d.spec; Heartwall.spec; Hotspot3d.spec;
    Particlefilter.spec; Sad.spec ]
