(** The 16 workloads of Table I. *)

(** All workloads, Figure 7 set first, in the paper's order. *)
val all : Spec.t list

(** The 8 kernels whose occupancy is register-limited on the full register
    file (Figure 7 / 9(a) / 10 / 11 / 12(a)). *)
val occupancy_limited : Spec.t list

(** The 8 kernels evaluated with a halved register file (Figure 8 / 9(b) /
    12(b)). *)
val regfile_sensitive : Spec.t list

(** Latency-bound stress kernels outside Table I (currently the PChase
    pointer-chase microbenchmark). Not part of {!all}, so the paper's
    figures and tables are unchanged; `bench cycles` and the fast-forward
    equivalence suite add these cells because minimal-occupancy memory
    waits are where event-driven cycle skipping pays off. {!find} resolves
    them by name. *)
val latency_bound : Spec.t list

(** Divergent kernels (read [%laneid], so warps genuinely split under
    [--simt]; currently the BFS-Frontier frontier expansion). Not part of
    {!all} — the paper's warp-uniform figures are unchanged — but
    resolved by {!find} and used by the head-to-head divergence rows and
    [bench simt]. *)
val divergent : Spec.t list

(** Look up by paper name (case-insensitive).
    @raise Not_found for unknown names. *)
val find : string -> Spec.t

(** Names in registry order. *)
val names : string list

(** The six kernels of Figure 1, in the paper's order. *)
val figure1 : Spec.t list
