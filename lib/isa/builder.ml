type pre =
  | Resolved of Instr.t
  | Bra of string
  | Bnz of Instr.operand * string
  | Bz of Instr.operand * string

type item =
  | Label of string
  | Ins of pre

let r i = Instr.Reg i
let imm n = Instr.Imm n
let tid = Instr.Special Instr.Tid
let ctaid = Instr.Special Instr.Ctaid
let ntid = Instr.Special Instr.Ntid
let nctaid = Instr.Special Instr.Nctaid
let warp_id = Instr.Special Instr.Warp_id
let lane_id = Instr.Special Instr.Lane_id
let param i = Instr.Param i

let label name = Label name

let bin op d a b = Ins (Resolved (Instr.Bin (op, d, a, b)))
let add d a b = bin Instr.Add d a b
let sub d a b = bin Instr.Sub d a b
let mul d a b = bin Instr.Mul d a b
let div d a b = bin Instr.Div d a b
let rem d a b = bin Instr.Rem d a b
let min_ d a b = bin Instr.Min d a b
let max_ d a b = bin Instr.Max d a b
let and_ d a b = bin Instr.And d a b
let or_ d a b = bin Instr.Or d a b
let xor d a b = bin Instr.Xor d a b
let shl d a b = bin Instr.Shl d a b
let shr d a b = bin Instr.Shr d a b
let un op d a = Ins (Resolved (Instr.Un (op, d, a)))
let mad d a b c = Ins (Resolved (Instr.Mad (d, a, b, c)))
let mov d a = Ins (Resolved (Instr.Mov (d, a)))
let cmp op d a b = Ins (Resolved (Instr.Cmp (op, d, a, b)))
let sel d c a b = Ins (Resolved (Instr.Sel (d, c, a, b)))
let load ?(ofs = 0) space d addr = Ins (Resolved (Instr.Load (space, d, addr, ofs)))
let store ?(ofs = 0) space addr v = Ins (Resolved (Instr.Store (space, addr, v, ofs)))
let bra name = Ins (Bra name)
let bnz c name = Ins (Bnz (c, name))
let bz c name = Ins (Bz (c, name))
let bar = Ins (Resolved Instr.Bar)
let acquire = Ins (Resolved Instr.Acquire)
let release = Ins (Resolved Instr.Release)
let exit_ = Ins (Resolved Instr.Exit)

exception Unresolved_label of string
exception Duplicate_label of string

let assemble ~name items =
  let labels = Hashtbl.create 16 in
  let count = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label l ->
          if Hashtbl.mem labels l then raise (Duplicate_label l);
          Hashtbl.add labels l !count
      | Ins _ -> incr count)
    items;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some idx -> idx
    | None -> raise (Unresolved_label l)
  in
  let instrs =
    List.filter_map
      (fun item ->
        match item with
        | Label _ -> None
        | Ins (Resolved i) -> Some i
        | Ins (Bra l) -> Some (Instr.Jump (resolve l))
        | Ins (Bnz (c, l)) -> Some (Instr.Jump_if (c, resolve l))
        | Ins (Bz (c, l)) -> Some (Instr.Jump_ifz (c, resolve l)))
      items
  in
  Program.create ~name (Array.of_list instrs)
