type binop =
  | Add | Sub | Mul | Div | Rem
  | Min | Max
  | And | Or | Xor | Shl | Shr

type unop = Neg | Not | Abs

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type space = Global | Shared | Spill

type special =
  | Tid
  | Ctaid
  | Ntid
  | Nctaid
  | Warp_id
  | Lane_id

type operand =
  | Reg of int
  | Imm of int
  | Special of special
  | Param of int

type t =
  | Bin of binop * int * operand * operand
  | Un of unop * int * operand
  | Mad of int * operand * operand * operand
  | Mov of int * operand
  | Cmp of cmpop * int * operand * operand
  | Sel of int * operand * operand * operand
  | Load of space * int * operand * int
  | Store of space * operand * operand * int
  | Jump of int
  | Jump_if of operand * int
  | Jump_ifz of operand * int
  | Bar
  | Acquire
  | Release
  | Exit

type lat_class =
  | Lat_alu
  | Lat_complex
  | Lat_shared
  | Lat_global
  | Lat_control

let lat_class = function
  | Bin ((Mul | Div | Rem), _, _, _) | Mad _ -> Lat_complex
  | Bin _ | Un _ | Mov _ | Cmp _ | Sel _ -> Lat_alu
  | Load ((Shared | Spill), _, _, _) | Store ((Shared | Spill), _, _, _) ->
      Lat_shared
  | Load (Global, _, _, _) | Store (Global, _, _, _) -> Lat_global
  | Jump _ | Jump_if _ | Jump_ifz _ | Bar | Acquire | Release | Exit -> Lat_control

let operand_uses = function
  | Reg r -> Regset.singleton r
  | Imm _ | Special _ | Param _ -> Regset.empty

let defs = function
  | Bin (_, d, _, _) | Un (_, d, _) | Mad (d, _, _, _) | Mov (d, _)
  | Cmp (_, d, _, _) | Sel (d, _, _, _) | Load (_, d, _, _) ->
      Regset.singleton d
  | Store _ | Jump _ | Jump_if _ | Jump_ifz _ | Bar | Acquire | Release | Exit ->
      Regset.empty

let uses = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) ->
      Regset.union (operand_uses a) (operand_uses b)
  | Un (_, _, a) | Mov (_, a) | Jump_if (a, _) | Jump_ifz (a, _) ->
      operand_uses a
  | Mad (_, a, b, c) | Sel (_, a, b, c) ->
      Regset.union (operand_uses a) (Regset.union (operand_uses b) (operand_uses c))
  | Load (_, _, addr, _) -> operand_uses addr
  | Store (_, addr, value, _) -> Regset.union (operand_uses addr) (operand_uses value)
  | Jump _ | Bar | Acquire | Release | Exit -> Regset.empty

let regs i = Regset.union (defs i) (uses i)

let is_branch = function
  | Jump _ | Jump_if _ | Jump_ifz _ -> true
  | Bin _ | Un _ | Mad _ | Mov _ | Cmp _ | Sel _ | Load _ | Store _
  | Bar | Acquire | Release | Exit -> false

let target = function
  | Jump t | Jump_if (_, t) | Jump_ifz (_, t) -> Some t
  | Bin _ | Un _ | Mad _ | Mov _ | Cmp _ | Sel _ | Load _ | Store _
  | Bar | Acquire | Release | Exit -> None

let with_target i t =
  match i with
  | Jump _ -> Jump t
  | Jump_if (c, _) -> Jump_if (c, t)
  | Jump_ifz (c, _) -> Jump_ifz (c, t)
  | Bin _ | Un _ | Mad _ | Mov _ | Cmp _ | Sel _ | Load _ | Store _
  | Bar | Acquire | Release | Exit -> i

let map_target f i =
  match target i with
  | None -> i
  | Some t -> with_target i (f t)

let map_operand f = function
  | Reg r -> Reg (f r)
  | (Imm _ | Special _ | Param _) as o -> o

let map_regs f i =
  let g = map_operand f in
  match i with
  | Bin (op, d, a, b) -> Bin (op, f d, g a, g b)
  | Un (op, d, a) -> Un (op, f d, g a)
  | Mad (d, a, b, c) -> Mad (f d, g a, g b, g c)
  | Mov (d, a) -> Mov (f d, g a)
  | Cmp (op, d, a, b) -> Cmp (op, f d, g a, g b)
  | Sel (d, c, a, b) -> Sel (f d, g c, g a, g b)
  | Load (sp, d, addr, ofs) -> Load (sp, f d, g addr, ofs)
  | Store (sp, addr, v, ofs) -> Store (sp, g addr, g v, ofs)
  | Jump_if (c, t) -> Jump_if (g c, t)
  | Jump_ifz (c, t) -> Jump_ifz (g c, t)
  | (Jump _ | Bar | Acquire | Release | Exit) as i -> i

let equal (a : t) (b : t) = a = b

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Min -> "min" | Max -> "max"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let unop_name = function Neg -> "neg" | Not -> "not" | Abs -> "abs"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let space_name = function
  | Global -> "global"
  | Shared -> "shared"
  | Spill -> "spill"

let special_name = function
  | Tid -> "%tid"
  | Ctaid -> "%ctaid"
  | Ntid -> "%ntid"
  | Nctaid -> "%nctaid"
  | Warp_id -> "%warpid"
  | Lane_id -> "%laneid"

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm n -> Format.fprintf ppf "%d" n
  | Special s -> Format.pp_print_string ppf (special_name s)
  | Param i -> Format.fprintf ppf "param[%d]" i

let pp ppf instr =
  let o = pp_operand in
  match instr with
  | Bin (op, d, a, b) -> Format.fprintf ppf "%s r%d, %a, %a" (binop_name op) d o a o b
  | Un (op, d, a) -> Format.fprintf ppf "%s r%d, %a" (unop_name op) d o a
  | Mad (d, a, b, c) -> Format.fprintf ppf "mad r%d, %a, %a, %a" d o a o b o c
  | Mov (d, a) -> Format.fprintf ppf "mov r%d, %a" d o a
  | Cmp (op, d, a, b) -> Format.fprintf ppf "set.%s r%d, %a, %a" (cmpop_name op) d o a o b
  | Sel (d, c, a, b) -> Format.fprintf ppf "sel r%d, %a, %a, %a" d o c o a o b
  | Load (sp, d, addr, ofs) ->
      Format.fprintf ppf "ld.%s r%d, [%a+%d]" (space_name sp) d o addr ofs
  | Store (sp, addr, v, ofs) ->
      Format.fprintf ppf "st.%s [%a+%d], %a" (space_name sp) o addr ofs o v
  | Jump t -> Format.fprintf ppf "bra @%d" t
  | Jump_if (c, t) -> Format.fprintf ppf "bra.nz %a, @%d" o c t
  | Jump_ifz (c, t) -> Format.fprintf ppf "bra.z %a, @%d" o c t
  | Bar -> Format.pp_print_string ppf "bar.sync"
  | Acquire -> Format.pp_print_string ppf "regmutex.acquire"
  | Release -> Format.pp_print_string ppf "regmutex.release"
  | Exit -> Format.pp_print_string ppf "exit"

let to_string i = Format.asprintf "%a" pp i
