(** Assembler DSL for authoring kernels with symbolic labels.

    A kernel is a list of {!item}s; {!assemble} resolves labels to absolute
    instruction indices and validates the result. Example:

    {[
      let prog =
        Builder.(assemble ~name:"saxpy"
          [ mov 0 tid;
            label "loop";
            load Global 1 (r 0);
            mad 2 (r 1) (imm 3) (r 2);
            add 0 (r 0) ntid;
            cmp Lt 3 (r 0) (param 0);
            bnz (r 3) "loop";
            store Global (r 0) (r 2);
            exit_ ])
    ]} *)

type item

(** Operand shorthands. *)

val r : int -> Instr.operand
val imm : int -> Instr.operand
val tid : Instr.operand
val ctaid : Instr.operand
val ntid : Instr.operand
val nctaid : Instr.operand
val warp_id : Instr.operand
val lane_id : Instr.operand
val param : int -> Instr.operand

(** [label name] marks the position of the next instruction. *)
val label : string -> item

(** Arithmetic and data movement; the first [int] is the destination
    register. *)

val bin : Instr.binop -> int -> Instr.operand -> Instr.operand -> item
val add : int -> Instr.operand -> Instr.operand -> item
val sub : int -> Instr.operand -> Instr.operand -> item
val mul : int -> Instr.operand -> Instr.operand -> item
val div : int -> Instr.operand -> Instr.operand -> item
val rem : int -> Instr.operand -> Instr.operand -> item
val min_ : int -> Instr.operand -> Instr.operand -> item
val max_ : int -> Instr.operand -> Instr.operand -> item
val and_ : int -> Instr.operand -> Instr.operand -> item
val or_ : int -> Instr.operand -> Instr.operand -> item
val xor : int -> Instr.operand -> Instr.operand -> item
val shl : int -> Instr.operand -> Instr.operand -> item
val shr : int -> Instr.operand -> Instr.operand -> item
val un : Instr.unop -> int -> Instr.operand -> item
val mad : int -> Instr.operand -> Instr.operand -> Instr.operand -> item
val mov : int -> Instr.operand -> item
val cmp : Instr.cmpop -> int -> Instr.operand -> Instr.operand -> item
val sel : int -> Instr.operand -> Instr.operand -> Instr.operand -> item

(** Memory accesses; [?ofs] defaults to 0. *)

val load : ?ofs:int -> Instr.space -> int -> Instr.operand -> item
val store : ?ofs:int -> Instr.space -> Instr.operand -> Instr.operand -> item

(** Control flow with symbolic targets. *)

val bra : string -> item
val bnz : Instr.operand -> string -> item
val bz : Instr.operand -> string -> item
val bar : item
val acquire : item
val release : item
val exit_ : item

exception Unresolved_label of string
exception Duplicate_label of string

(** Resolve labels and validate (see {!Program.create}).
    @raise Unresolved_label on a branch to an undefined label.
    @raise Duplicate_label when a label is bound twice. *)
val assemble : name:string -> item list -> Program.t
