type error = {
  line : int;
  message : string;
}

exception Parse_error of error

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* A branch target is either symbolic or an absolute instruction index. *)
type target = Sym of string | Abs of int

type pre =
  | P_plain of Instr.t
  | P_jump of target
  | P_jump_if of Instr.operand * target
  | P_jump_ifz of Instr.operand * target

let find_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let strip_comment line =
  let s =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match find_substring s "//" with
  | Some i -> String.sub s 0 i
  | None -> s

let is_digit c = c >= '0' && c <= '9'

let parse_int line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail line "expected an integer, got %S" s

let parse_reg line s =
  if String.length s >= 2 && s.[0] = 'r' && String.for_all is_digit (String.sub s 1 (String.length s - 1))
  then int_of_string (String.sub s 1 (String.length s - 1))
  else fail line "expected a register, got %S" s

let parse_operand line s =
  if s = "" then fail line "empty operand"
  else if s.[0] = 'r' && String.length s > 1 && is_digit s.[1] then
    Instr.Reg (parse_reg line s)
  else if s.[0] = '%' then
    match s with
    | "%tid" -> Instr.Special Instr.Tid
    | "%ctaid" -> Instr.Special Instr.Ctaid
    | "%ntid" -> Instr.Special Instr.Ntid
    | "%nctaid" -> Instr.Special Instr.Nctaid
    | "%warpid" -> Instr.Special Instr.Warp_id
    | "%laneid" -> Instr.Special Instr.Lane_id
    | _ -> fail line "unknown special register %S" s
  else if String.length s > 6 && String.sub s 0 6 = "param[" && s.[String.length s - 1] = ']'
  then Instr.Param (parse_int line (String.sub s 6 (String.length s - 7)))
  else Instr.Imm (parse_int line s)

(* "[base+ofs]" / "[base-ofs]" / "[base]" *)
let parse_address line s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail line "expected a memory operand like [r2+4], got %S" s
  else begin
    let inner = String.sub s 1 (n - 2) in
    let split_at i =
      (String.sub inner 0 i, String.sub inner (i + 1) (String.length inner - i - 1))
    in
    let rec find_sep i =
      if i >= String.length inner then None
      else if i > 0 && (inner.[i] = '+' || inner.[i] = '-') then Some i
      else find_sep (i + 1)
    in
    match find_sep 1 with
    | Some i ->
        let base, ofs = split_at i in
        let ofs = parse_int line ofs in
        (parse_operand line base, if inner.[i] = '-' then -ofs else ofs)
    | None -> (parse_operand line inner, 0)
  end

let parse_target s = if String.length s > 1 && s.[0] = '@' then
    Abs (int_of_string (String.sub s 1 (String.length s - 1)))
  else Sym s

let binops =
  [ ("add", Instr.Add); ("sub", Instr.Sub); ("mul", Instr.Mul); ("div", Instr.Div);
    ("rem", Instr.Rem); ("min", Instr.Min); ("max", Instr.Max); ("and", Instr.And);
    ("or", Instr.Or); ("xor", Instr.Xor); ("shl", Instr.Shl); ("shr", Instr.Shr) ]

let unops = [ ("neg", Instr.Neg); ("not", Instr.Not); ("abs", Instr.Abs) ]

let cmpops =
  [ ("set.eq", Instr.Eq); ("set.ne", Instr.Ne); ("set.lt", Instr.Lt);
    ("set.le", Instr.Le); ("set.gt", Instr.Gt); ("set.ge", Instr.Ge) ]

let tokenize s =
  String.split_on_char ' ' (String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

let parse_instr line tokens =
  let op2 f = function
    | [ d; a ] -> f (parse_reg line d) (parse_operand line a)
    | _ -> fail line "expected 2 operands"
  in
  let op3 f = function
    | [ d; a; b ] -> f (parse_reg line d) (parse_operand line a) (parse_operand line b)
    | _ -> fail line "expected 3 operands"
  in
  match tokens with
  | [] -> fail line "empty instruction"
  | mnemonic :: args -> (
      match List.assoc_opt mnemonic binops with
      | Some op -> op3 (fun d a b -> P_plain (Instr.Bin (op, d, a, b))) args
      | None -> (
          match List.assoc_opt mnemonic unops with
          | Some op -> op2 (fun d a -> P_plain (Instr.Un (op, d, a))) args
          | None -> (
              match List.assoc_opt mnemonic cmpops with
              | Some op -> op3 (fun d a b -> P_plain (Instr.Cmp (op, d, a, b))) args
              | None -> (
                  match (mnemonic, args) with
                  | "mov", [ d; a ] ->
                      P_plain (Instr.Mov (parse_reg line d, parse_operand line a))
                  | "mad", [ d; a; b; c ] ->
                      P_plain
                        (Instr.Mad
                           ( parse_reg line d, parse_operand line a,
                             parse_operand line b, parse_operand line c ))
                  | "sel", [ d; c; a; b ] ->
                      P_plain
                        (Instr.Sel
                           ( parse_reg line d, parse_operand line c,
                             parse_operand line a, parse_operand line b ))
                  | "ld.global", [ d; m ] ->
                      let addr, ofs = parse_address line m in
                      P_plain (Instr.Load (Instr.Global, parse_reg line d, addr, ofs))
                  | "ld.shared", [ d; m ] ->
                      let addr, ofs = parse_address line m in
                      P_plain (Instr.Load (Instr.Shared, parse_reg line d, addr, ofs))
                  | "st.global", [ m; v ] ->
                      let addr, ofs = parse_address line m in
                      P_plain (Instr.Store (Instr.Global, addr, parse_operand line v, ofs))
                  | "st.shared", [ m; v ] ->
                      let addr, ofs = parse_address line m in
                      P_plain (Instr.Store (Instr.Shared, addr, parse_operand line v, ofs))
                  | "ld.spill", [ d; m ] ->
                      let addr, ofs = parse_address line m in
                      P_plain (Instr.Load (Instr.Spill, parse_reg line d, addr, ofs))
                  | "st.spill", [ m; v ] ->
                      let addr, ofs = parse_address line m in
                      P_plain (Instr.Store (Instr.Spill, addr, parse_operand line v, ofs))
                  | "bra", [ t ] -> P_jump (parse_target t)
                  | "bra.nz", [ c; t ] -> P_jump_if (parse_operand line c, parse_target t)
                  | "bra.z", [ c; t ] -> P_jump_ifz (parse_operand line c, parse_target t)
                  | "bar.sync", [] | "bar", [] -> P_plain Instr.Bar
                  | "regmutex.acquire", [] -> P_plain Instr.Acquire
                  | "regmutex.release", [] -> P_plain Instr.Release
                  | "exit", [] -> P_plain Instr.Exit
                  | _ -> fail line "unknown instruction %S" (String.concat " " tokens)))))

(* Strip an optional "NNN:" disassembly prefix. *)
let strip_index tokens =
  match tokens with
  | first :: rest
    when String.length first > 1
         && first.[String.length first - 1] = ':'
         && String.for_all is_digit (String.sub first 0 (String.length first - 1)) ->
      rest
  | _ -> tokens

let parse ~name text =
  let labels = Hashtbl.create 16 in
  let pres = ref [] in
  let count = ref 0 in
  let handle_line lineno raw =
    let s = String.trim (strip_comment raw) in
    if s = "" then ()
    else if String.length s >= 7 && String.sub s 0 7 = "kernel " then ()
    else begin
      let tokens = strip_index (tokenize s) in
      match tokens with
      | [ single ] when String.length single > 1 && single.[String.length single - 1] = ':'
        && not (String.for_all is_digit (String.sub single 0 (String.length single - 1))) ->
          let label = String.sub single 0 (String.length single - 1) in
          if Hashtbl.mem labels label then fail lineno "duplicate label %S" label;
          Hashtbl.add labels label !count
      | [] -> ()
      | tokens ->
          pres := (lineno, parse_instr lineno tokens) :: !pres;
          incr count
    end
  in
  List.iteri (fun i raw -> handle_line (i + 1) raw) (String.split_on_char '\n' text);
  let pres = List.rev !pres in
  let resolve lineno = function
    | Abs t -> t
    | Sym l -> (
        match Hashtbl.find_opt labels l with
        | Some t -> t
        | None -> fail lineno "unresolved label %S" l)
  in
  let instrs =
    List.map
      (fun (lineno, pre) ->
        match pre with
        | P_plain i -> i
        | P_jump t -> Instr.Jump (resolve lineno t)
        | P_jump_if (c, t) -> Instr.Jump_if (c, resolve lineno t)
        | P_jump_ifz (c, t) -> Instr.Jump_ifz (c, resolve lineno t))
      pres
  in
  Program.create ~name (Array.of_list instrs)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let base = Filename.remove_extension (Filename.basename path) in
  parse ~name:base text

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message
