(** The PTX-like instruction set executed by the simulator.

    Instructions operate on architected registers holding warp-uniform
    integer values (see DESIGN.md for why warp granularity is the right
    granularity for register-allocation studies). Branch targets are absolute
    instruction indices; {!Builder} resolves symbolic labels to indices. *)

(** Integer ALU operations. *)
type binop =
  | Add | Sub | Mul | Div | Rem
  | Min | Max
  | And | Or | Xor | Shl | Shr

type unop = Neg | Not | Abs

(** Comparison operators; results are 0 or 1 in the destination register. *)
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

(** Memory spaces. [Global] is device memory (long, contended latency);
    [Shared] is per-CTA scratchpad (short latency); [Spill] is the
    compiler-reserved register-spill window carved out of the same
    scratchpad by the RegDem demotion pass — same latency as [Shared],
    but addressed relative to the window base and excluded from the
    architectural store trace. *)
type space = Global | Shared | Spill

(** Read-only hardware values available as operands. *)
type special =
  | Tid      (** linear thread index of the warp's lane 0 within its CTA; a
                 lane's own thread id is [Tid + Lane_id] *)
  | Ctaid    (** CTA index within the grid *)
  | Ntid     (** threads per CTA *)
  | Nctaid   (** CTAs in the grid *)
  | Warp_id  (** warp index within its CTA *)
  | Lane_id  (** lane index within the warp (0 in the warp-uniform model,
                 the per-lane index under [--simt]) *)

type operand =
  | Reg of int        (** architected register *)
  | Imm of int        (** immediate constant *)
  | Special of special
  | Param of int      (** kernel launch parameter [i] *)

type t =
  | Bin of binop * int * operand * operand   (** [dst = a op b] *)
  | Un of unop * int * operand               (** [dst = op a] *)
  | Mad of int * operand * operand * operand (** [dst = a * b + c] *)
  | Mov of int * operand                     (** [dst = a] *)
  | Cmp of cmpop * int * operand * operand   (** [dst = (a op b) ? 1 : 0] *)
  | Sel of int * operand * operand * operand (** [dst = cond <> 0 ? a : b] *)
  | Load of space * int * operand * int      (** [dst = mem.(addr + ofs)] *)
  | Store of space * operand * operand * int (** [mem.(addr + ofs) = value] *)
  | Jump of int                              (** unconditional branch *)
  | Jump_if of operand * int                 (** branch when operand <> 0 *)
  | Jump_ifz of operand * int                (** branch when operand = 0 *)
  | Bar                                      (** CTA-wide barrier, [bar.sync] *)
  | Acquire  (** RegMutex: obtain an SRP section for the extended set *)
  | Release  (** RegMutex: return the SRP section to the pool *)
  | Exit                                     (** warp termination *)

(** Latency classes used by the timing model. *)
type lat_class =
  | Lat_alu      (** simple integer op *)
  | Lat_complex  (** multiply / divide / MAD *)
  | Lat_shared   (** shared-memory access *)
  | Lat_global   (** global-memory access *)
  | Lat_control  (** branches, barrier, acquire/release, exit *)

val lat_class : t -> lat_class

(** Registers written by the instruction. *)
val defs : t -> Regset.t

(** Registers read by the instruction. *)
val uses : t -> Regset.t

(** All registers referenced (defs ∪ uses). *)
val regs : t -> Regset.t

(** [is_branch i] holds for [Jump], [Jump_if] and [Jump_ifz]. *)
val is_branch : t -> bool

(** Branch target, if any. *)
val target : t -> int option

(** [with_target i t] replaces the branch target. Identity for
    non-branches. *)
val with_target : t -> int -> t

(** [map_regs f i] renames every register reference (defs and uses)
    through [f]. Used by the compaction pass. *)
val map_regs : (int -> int) -> t -> t

(** [map_target f i] rewrites the branch target through [f]. *)
val map_target : (int -> int) -> t -> t

(** Structural equality. *)
val equal : t -> t -> bool

(** Printable name of a memory space ("global" / "shared" / "spill"). *)
val space_name : space -> string

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
