type word = int64

exception Unencodable of string

let fail fmt = Format.kasprintf (fun s -> raise (Unencodable s)) fmt

(* --- field packing ----------------------------------------------------- *)

let set ~pos ~width v w =
  if v < 0 || v >= 1 lsl width then fail "field value %d exceeds %d bits" v width;
  Int64.logor w (Int64.shift_left (Int64.of_int v) pos)

let get ~pos ~width w =
  Int64.to_int (Int64.logand (Int64.shift_right_logical w pos) (Int64.sub (Int64.shift_left 1L width) 1L))

(* Operand: tag(2) | payload(14). *)
let imm_bias = 8192

let pack_operand = function
  | Instr.Reg r -> (0 lsl 14) lor r
  | Instr.Imm n ->
      if n < -imm_bias || n >= imm_bias then fail "immediate %d out of 14-bit range" n
      else (1 lsl 14) lor (n + imm_bias)
  | Instr.Special s ->
      let code =
        match s with
        | Instr.Tid -> 0 | Instr.Ctaid -> 1 | Instr.Ntid -> 2
        | Instr.Nctaid -> 3 | Instr.Warp_id -> 4 | Instr.Lane_id -> 5
      in
      (2 lsl 14) lor code
  | Instr.Param i ->
      if i < 0 || i >= 1 lsl 14 then fail "parameter index %d out of range" i
      else (3 lsl 14) lor i

let unpack_operand v =
  let tag = v lsr 14 and payload = v land 0x3fff in
  match tag with
  | 0 -> Instr.Reg payload
  | 1 -> Instr.Imm (payload - imm_bias)
  | 2 -> (
      match payload with
      | 0 -> Instr.Special Instr.Tid
      | 1 -> Instr.Special Instr.Ctaid
      | 2 -> Instr.Special Instr.Ntid
      | 3 -> Instr.Special Instr.Nctaid
      | 4 -> Instr.Special Instr.Warp_id
      | 5 -> Instr.Special Instr.Lane_id
      | _ -> fail "unknown special code %d" payload)
  | _ -> Instr.Param payload

(* --- opcodes ------------------------------------------------------------ *)

let binop_code = function
  | Instr.Add -> 0 | Instr.Sub -> 1 | Instr.Mul -> 2 | Instr.Div -> 3
  | Instr.Rem -> 4 | Instr.Min -> 5 | Instr.Max -> 6 | Instr.And -> 7
  | Instr.Or -> 8 | Instr.Xor -> 9 | Instr.Shl -> 10 | Instr.Shr -> 11

let binop_of_code = function
  | 0 -> Instr.Add | 1 -> Instr.Sub | 2 -> Instr.Mul | 3 -> Instr.Div
  | 4 -> Instr.Rem | 5 -> Instr.Min | 6 -> Instr.Max | 7 -> Instr.And
  | 8 -> Instr.Or | 9 -> Instr.Xor | 10 -> Instr.Shl | 11 -> Instr.Shr
  | c -> fail "unknown binop code %d" c

let cmpop_code = function
  | Instr.Eq -> 0 | Instr.Ne -> 1 | Instr.Lt -> 2
  | Instr.Le -> 3 | Instr.Gt -> 4 | Instr.Ge -> 5

let cmpop_of_code = function
  | 0 -> Instr.Eq | 1 -> Instr.Ne | 2 -> Instr.Lt
  | 3 -> Instr.Le | 4 -> Instr.Gt | 5 -> Instr.Ge
  | c -> fail "unknown cmp code %d" c

(* Opcode space: 0..11 binops, 12..14 unops, 15 mad, 16 mov, 17..22 cmp,
   23 sel, 24/25 load global/shared, 26/27 store, 28 jump, 29 jump_if,
   30 jump_ifz, 31 bar, 32 acquire, 33 release, 34 exit, 35/36
   load/store spill (the space bit only distinguishes global from
   shared, so the spill window gets its own opcodes). *)
let op_unop = 12
let op_mad = 15
let op_mov = 16
let op_cmp = 17
let op_sel = 23
let op_load = 24
let op_store = 26
let op_jump = 28
let op_jump_if = 29
let op_jump_ifz = 30
let op_bar = 31
let op_acquire = 32
let op_release = 33
let op_exit = 34
let op_load_spill = 35
let op_store_spill = 36

let unop_code = function Instr.Neg -> 0 | Instr.Not -> 1 | Instr.Abs -> 2

let unop_of_code = function
  | 0 -> Instr.Neg | 1 -> Instr.Not | 2 -> Instr.Abs
  | c -> fail "unknown unop code %d" c

let space_bit = function
  | Instr.Global -> 0
  | Instr.Shared -> 1
  | Instr.Spill -> fail "spill space is encoded via its own opcodes"

let space_of_bit = function 0 -> Instr.Global | _ -> Instr.Shared

(* Field positions. *)
let p_op = 58
let p_dst = 52
let p_a = 36
let p_b = 20
let p_c = 4
let p_target = 0 (* 20 bits *)

let size = function
  | Instr.Load _ | Instr.Store _ -> 2
  | Instr.Bin _ | Instr.Un _ | Instr.Mad _ | Instr.Mov _ | Instr.Cmp _
  | Instr.Sel _ | Instr.Jump _ | Instr.Jump_if _ | Instr.Jump_ifz _
  | Instr.Bar | Instr.Acquire | Instr.Release | Instr.Exit ->
      1

let header op = set ~pos:p_op ~width:6 op 0L

let encode instr =
  let dst d w = set ~pos:p_dst ~width:6 d w in
  let opa a w = set ~pos:p_a ~width:16 (pack_operand a) w in
  let opb b w = set ~pos:p_b ~width:16 (pack_operand b) w in
  let opc c w = set ~pos:p_c ~width:16 (pack_operand c) w in
  let target t w = set ~pos:p_target ~width:20 t w in
  match instr with
  | Instr.Bin (op, d, a, b) ->
      [ header (binop_code op) |> dst d |> opa a |> opb b ]
  | Instr.Un (op, d, a) ->
      [ header (op_unop + unop_code op) |> dst d |> opa a ]
  | Instr.Mad (d, a, b, c) -> [ header op_mad |> dst d |> opa a |> opb b |> opc c ]
  | Instr.Mov (d, a) -> [ header op_mov |> dst d |> opa a ]
  | Instr.Cmp (op, d, a, b) ->
      [ header (op_cmp + cmpop_code op) |> dst d |> opa a |> opb b ]
  | Instr.Sel (d, c, a, b) -> [ header op_sel |> dst d |> opa c |> opb a |> opc b ]
  | Instr.Load (Instr.Spill, d, addr, ofs) ->
      [ header op_load_spill |> dst d |> opa addr; Int64.of_int ofs ]
  | Instr.Store (Instr.Spill, addr, v, ofs) ->
      [ header op_store_spill |> opa addr |> opb v; Int64.of_int ofs ]
  | Instr.Load (space, d, addr, ofs) ->
      [ header (op_load + space_bit space) |> dst d |> opa addr; Int64.of_int ofs ]
  | Instr.Store (space, addr, v, ofs) ->
      [ header (op_store + space_bit space) |> opa addr |> opb v; Int64.of_int ofs ]
  | Instr.Jump t -> [ header op_jump |> target t ]
  | Instr.Jump_if (c, t) -> [ header op_jump_if |> opa c |> target t ]
  | Instr.Jump_ifz (c, t) -> [ header op_jump_ifz |> opa c |> target t ]
  | Instr.Bar -> [ header op_bar ]
  | Instr.Acquire -> [ header op_acquire ]
  | Instr.Release -> [ header op_release ]
  | Instr.Exit -> [ header op_exit ]

let decode_one ws ~pos =
  if pos < 0 || pos >= Array.length ws then fail "decode position %d out of range" pos;
  let w = ws.(pos) in
  let op = get ~pos:p_op ~width:6 w in
  let dst = get ~pos:p_dst ~width:6 w in
  let a () = unpack_operand (get ~pos:p_a ~width:16 w) in
  let b () = unpack_operand (get ~pos:p_b ~width:16 w) in
  let c () = unpack_operand (get ~pos:p_c ~width:16 w) in
  let target = get ~pos:p_target ~width:20 w in
  let offset () =
    if pos + 1 >= Array.length ws then fail "truncated memory instruction at %d" pos
    else Int64.to_int ws.(pos + 1)
  in
  if op < 12 then (Instr.Bin (binop_of_code op, dst, a (), b ()), pos + 1)
  else if op < op_mad then (Instr.Un (unop_of_code (op - op_unop), dst, a ()), pos + 1)
  else if op = op_mad then (Instr.Mad (dst, a (), b (), c ()), pos + 1)
  else if op = op_mov then (Instr.Mov (dst, a ()), pos + 1)
  else if op < op_sel then (Instr.Cmp (cmpop_of_code (op - op_cmp), dst, a (), b ()), pos + 1)
  else if op = op_sel then (Instr.Sel (dst, a (), b (), c ()), pos + 1)
  else if op = op_load || op = op_load + 1 then
    (Instr.Load (space_of_bit (op - op_load), dst, a (), offset ()), pos + 2)
  else if op = op_store || op = op_store + 1 then
    (Instr.Store (space_of_bit (op - op_store), a (), b (), offset ()), pos + 2)
  else if op = op_jump then (Instr.Jump target, pos + 1)
  else if op = op_jump_if then (Instr.Jump_if (a (), target), pos + 1)
  else if op = op_jump_ifz then (Instr.Jump_ifz (a (), target), pos + 1)
  else if op = op_bar then (Instr.Bar, pos + 1)
  else if op = op_acquire then (Instr.Acquire, pos + 1)
  else if op = op_release then (Instr.Release, pos + 1)
  else if op = op_exit then (Instr.Exit, pos + 1)
  else if op = op_load_spill then (Instr.Load (Instr.Spill, dst, a (), offset ()), pos + 2)
  else if op = op_store_spill then (Instr.Store (Instr.Spill, a (), b (), offset ()), pos + 2)
  else fail "unknown opcode %d" op

let encodable_instr i =
  match encode i with _ -> true | exception Unencodable _ -> false

let encodable p =
  let rec go i = i >= Program.length p || (encodable_instr (Program.get p i) && go (i + 1)) in
  go 0

let encode_program p =
  let words = ref [] in
  for i = Program.length p - 1 downto 0 do
    words := encode (Program.get p i) @ !words
  done;
  Array.of_list !words

let decode_program ~name ws =
  let instrs = ref [] in
  let pos = ref 0 in
  while !pos < Array.length ws do
    let instr, next = decode_one ws ~pos:!pos in
    instrs := instr :: !instrs;
    pos := next
  done;
  Program.create ~name (Array.of_list (List.rev !instrs))

let code_bytes p = 8 * Array.length (encode_program p)
