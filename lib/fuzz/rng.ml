(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, splittable
   generator with well-understood statistics — the standard choice for
   reproducible fuzzing seeds. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let of_seed seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

(* Top 62 bits, non-negative as a native int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L
let chance t ~pct = int t 100 < pct
let choose t arr = arr.(int t (Array.length arr))
