(** Splittable deterministic pseudo-random numbers (SplitMix64).

    The fuzzer derives every random decision from an integer seed, so a
    failing kernel is reproduced from its seed alone — no generator state
    needs persisting. [split] forks an independent stream, letting the
    generator hand sub-streams to nested structures without the draw
    order of one affecting another. *)

type t

val of_seed : int -> t

(** Fork an independent stream (advances the parent once). *)
val split : t -> t

(** [int t bound] draws uniformly from [0 .. bound-1].
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] draws uniformly from [lo .. hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [chance t ~pct] is true with probability [pct]%. *)
val chance : t -> pct:int -> bool

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a
