(** Differential invariants checked per generated kernel.

    For one {!Gen.t} launch case the oracle runs, in order:

    - printer/parser and codec round-trips of the generated program;
    - Baseline vs every technique ({!Regmutex.Technique.all}) through the
      heuristic compile path, comparing per-warp store traces
      ({!Regmutex.Checker.diff_store_traces});
    - fast-forward vs brute-force stepping on the baseline and RegMutex
      runs — every counter, per-reason stall attribution and store trace
      must be bit-identical;
    - a forced Bs/Es split (pressure family only) sized from the program's
      own peak pressure, run under [Srp] on a deliberately contended
      architecture (capacity 2 CTAs, 1–3 SRP sections) and under
      [Srp_paired], with dynamic verification on — plus SRP conservation
      ([in_use + free = sections] and status/bitmask/LUT agreement)
      sampled every cycle;
    - a forced RegDem demotion: a salt-derived [keep] boundary is pushed
      through {!Regmutex.Regdem.transform} regardless of profitability,
      and the spilling kernel is run under [Policy.Regdem] — store traces
      must match the baseline, fast-forward vs brute-force must stay
      bit-identical, and (strict window rule, see below) the transformed
      kernel must hit the shared-memory window out-of-bounds {e exactly}
      as often as the baseline;
    - the SIMT cross-check: for the warp-uniform families (pressure,
      barrier) a baseline run under [--simt] must be bit-identical to the
      warp-uniform baseline — counters, stall histogram and store traces;
      for the divergent family every value-safe technique (RegMutex,
      paired, OWF, RFV — RegDem's warp-granular spill window is unsound
      under divergence and is excluded by design) is run under [--simt]
      and compared to the SIMT baseline lane-for-lane
      ({!Regmutex.Checker.diff_lane_store_traces}), plus fast-forward vs
      brute-force equivalence under SIMT on the heuristic path;
    - the forward-progress watchdog: any {!Gpu_sim.Gpu.Deadlock} is a
      failure, as is a watchdog timeout.

    The strict window rule ([?strict_shared_oob], default on) promotes
    {!Gpu_sim.Stats.shared_oob} from a warn-only counter to a hard
    failure: any technique whose out-of-bounds count differs from the
    baseline's fails with [Shared_oob]. Spill traffic escaping its
    reserved window is exactly such a delta.

    Fault injection ([?inject]) perturbs the branch the fault targets
    (forced-split for the SRP faults, forced-RegDem for [Oob_spill], the
    SIMT cross-check for [Mask_corrupt]) — the oracle must then report at
    least one failure, which is how the fuzzer's own detection power is
    tested. *)

type fault =
  | Drop_acquire   (** neutralise the first [Acquire] *)
  | Early_release  (** insert a [Release] right after the first [Acquire] *)
  | Drop_mov       (** disable the first compaction MOV across the boundary *)
  | Oob_spill      (** push the first spill store one slot past the window *)
  | Mask_corrupt
      (** clear lane 1 from every warp's initial active mask (a runtime
          injection via the simulator, not a program mutation): caught
          only by the lane-resolved trace diff — the warp-level trace
          records the lowest active lane and stays clean on the uniform
          families, proving the lane oracle strictly stronger *)

val fault_name : fault -> string
val fault_of_string : string -> (fault, string) result

type kind =
  | Divergence         (** store traces differ from the baseline *)
  | Stats_mismatch     (** fast-forward vs brute-force not bit-identical *)
  | Deadlock           (** {!Gpu_sim.Gpu.Deadlock} raised *)
  | Timeout            (** watchdog [max_cycles] hit *)
  | Verification       (** dynamic extended-access verification tripped *)
  | Unsound_transform  (** {!Regmutex.Transform.Unsound} on a legal kernel *)
  | Conservation       (** SRP accounting invariant broken *)
  | Roundtrip          (** parser or codec round-trip diverged *)
  | Shared_oob         (** shared-memory window discipline broken *)
  | Crash              (** unexpected exception *)

val kind_name : kind -> string

type failure = { kind : kind; detail : string }

type report = {
  failures : failure list;
  injected : bool;  (** the requested fault actually applied to this case *)
}

(** Run every applicable invariant for the case. Never raises: unexpected
    exceptions become [Crash] failures. With [?inject] only the branch
    carrying the mutation runs. [?strict_shared_oob] (default [true])
    controls the hard shared-memory window rule. *)
val test_case : ?inject:fault -> ?strict_shared_oob:bool -> Gen.t -> report

(** [test_seed ?inject seed] = generate then {!test_case}. *)
val test_seed : ?inject:fault -> ?strict_shared_oob:bool -> int -> Gen.t * report

val pp_failure : Format.formatter -> failure -> unit
