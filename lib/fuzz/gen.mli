(** Seeded random kernel generator over the [gpu_isa] DSL.

    Every generated program is structured — control flow is limited to
    if/else diamonds and counted loops on reserved counter registers — so
    it always terminates, and its memory behaviour is scheduling-
    independent by construction: loads only touch a low address window no
    store can reach (stores are masked into a disjoint high region, shared
    stores are write-only sinks), so a warp's store trace is a pure
    function of the program. That determinism is what lets the oracle
    compare traces across techniques, policies and stepping modes.

    Three families:
    - [Pressure]: no barriers, with a guaranteed register-pressure bulge,
      so a forced Bs/Es split is always meaningful and never deadlocks;
    - [Barrier]: [bar.sync] at CTA-uniform points (top level, or a
      top-level counted loop body), exercising the heuristic path's
      barrier deadlock rules;
    - [Divergent]: branch conditions and loop trip counts keyed to a hash
      of [tid + %laneid], so warps genuinely diverge under SIMT execution
      ([--simt]); no barriers (a divergent-arm barrier deadlocks by
      design). The programs stay valid under the warp-uniform model,
      where [%laneid] reads 0. *)

type family = Pressure | Barrier | Divergent

type t = {
  seed : int;
  family : family;
  program : Gpu_isa.Program.t;
  grid : int;         (** grid CTAs *)
  threads : int;      (** threads per CTA; always a multiple of 64 so the
                          paired/OWF policies (even warps) are runnable *)
  params : int array;
  salt : int;         (** extra per-seed randomness for oracle decisions *)
}

val family_name : family -> string

(** [generate ~seed] builds the launch case for [seed], deterministically. *)
val generate : seed:int -> t

(** The kernel launch, optionally with the program replaced (the shrinker
    and fault injection substitute mutated bodies). *)
val kernel : ?program:Gpu_isa.Program.t -> t -> Gpu_sim.Kernel.t
