let default_dir = "_fuzz"

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let corpus_file dir = Filename.concat dir "corpus.txt"

let load_seeds ~dir =
  let path = corpus_file dir in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let seeds = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match int_of_string_opt (List.hd (String.split_on_char ' ' line)) with
           | Some s -> seeds := s :: !seeds
           | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !seeds
  end

let add_seed ~dir ~seed ~kind =
  ensure_dir dir;
  if not (List.mem seed (load_seeds ~dir)) then begin
    let oc =
      open_out_gen [ Open_append; Open_creat ] 0o644 (corpus_file dir)
    in
    Printf.fprintf oc "%d  # %s\n" seed (Oracle.kind_name kind);
    close_out oc
  end

(* Newlines inside failure details (deadlock dumps, trace diffs) must stay
   inside the comment header. *)
let comment_lines prefix text =
  String.split_on_char '\n' text
  |> List.map (fun l -> Printf.sprintf "// %s%s" prefix l)
  |> String.concat "\n"

let write_counterexample ~dir (case : Gen.t) failures =
  ensure_dir dir;
  let path = Filename.concat dir (Printf.sprintf "seed%d.kern" case.Gen.seed) in
  let params =
    String.concat ","
      (Array.to_list (Array.map string_of_int case.Gen.params))
  in
  let oc = open_out path in
  Printf.fprintf oc "// fuzz counterexample: seed %d (%s family)\n"
    case.Gen.seed (Gen.family_name case.Gen.family);
  Printf.fprintf oc "// launch: grid=%d threads=%d params=%s\n" case.Gen.grid
    case.Gen.threads params;
  List.iter
    (fun f ->
      output_string oc
        (comment_lines "" (Format.asprintf "%a" Oracle.pp_failure f));
      output_char oc '\n')
    failures;
  Printf.fprintf oc
    "// replay: dune exec bin/regmutex_cli.exe -- run-file %s --grid %d \
     --threads %d --params %s\n\n"
    path case.Gen.grid case.Gen.threads params;
  Format.fprintf
    (Format.formatter_of_out_channel oc)
    "%a@." Gpu_isa.Program.pp case.Gen.program;
  close_out oc;
  path
