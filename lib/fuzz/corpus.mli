(** On-disk corpus of failing seeds and shrunk counterexamples.

    Layout under the corpus directory (default [_fuzz/]):
    - [corpus.txt] — one failing seed per line ([<seed>  # <kind>]),
      replayed before fresh seeds on the next run so regressions are
      caught first;
    - [seed<N>.kern] — the shrunk counterexample program in parser
      syntax, with a comment header carrying the launch geometry, the
      failure report and a copy-pasteable replay command. *)

val default_dir : string

(** Seeds recorded in [dir/corpus.txt], in file order; [] when absent. *)
val load_seeds : dir:string -> int list

(** Record a failing seed (idempotent; creates [dir] as needed). *)
val add_seed : dir:string -> seed:int -> kind:Oracle.kind -> unit

(** Write the (shrunk) case to [dir/seed<N>.kern] and return the path. *)
val write_counterexample :
  dir:string -> Gen.t -> Oracle.failure list -> string
