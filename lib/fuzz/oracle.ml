module Instr = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Parser = Gpu_isa.Parser
module Codec = Gpu_isa.Codec
module Liveness = Gpu_analysis.Liveness
module Arch_config = Gpu_uarch.Arch_config
module Gpu = Gpu_sim.Gpu
module Sm = Gpu_sim.Sm
module Stats = Gpu_sim.Stats
module Policy = Gpu_sim.Policy
module Kernel = Gpu_sim.Kernel
module Technique = Regmutex.Technique
module Transform = Regmutex.Transform
module Regdem = Regmutex.Regdem
module Checker = Regmutex.Checker
module Runner = Regmutex.Runner

type fault = Drop_acquire | Early_release | Drop_mov | Oob_spill | Mask_corrupt

let fault_name = function
  | Drop_acquire -> "drop-acquire"
  | Early_release -> "early-release"
  | Drop_mov -> "drop-mov"
  | Oob_spill -> "oob-spill"
  | Mask_corrupt -> "mask-corrupt"

let fault_of_string = function
  | "drop-acquire" -> Ok Drop_acquire
  | "early-release" -> Ok Early_release
  | "drop-mov" -> Ok Drop_mov
  | "oob-spill" -> Ok Oob_spill
  | "mask-corrupt" -> Ok Mask_corrupt
  | s ->
      Error
        (Printf.sprintf
           "unknown fault %S (expected drop-acquire, early-release, drop-mov, \
            oob-spill or mask-corrupt)"
           s)

type kind =
  | Divergence
  | Stats_mismatch
  | Deadlock
  | Timeout
  | Verification
  | Unsound_transform
  | Conservation
  | Roundtrip
  | Shared_oob
  | Crash

let kind_name = function
  | Divergence -> "divergence"
  | Stats_mismatch -> "stats-mismatch"
  | Deadlock -> "deadlock"
  | Timeout -> "timeout"
  | Verification -> "verification"
  | Unsound_transform -> "unsound-transform"
  | Conservation -> "conservation"
  | Roundtrip -> "roundtrip"
  | Shared_oob -> "shared-oob"
  | Crash -> "crash"

type failure = { kind : kind; detail : string }

type report = { failures : failure list; injected : bool }

let pp_failure ppf f =
  Format.fprintf ppf "[%s] %s" (kind_name f.kind) f.detail

(* One SM keeps runs fast; dram_interval 1.0 keeps memory latencies small
   relative to the watchdog. *)
let arch0 = { Arch_config.gtx480 with n_sms = 1; dram_interval = 1.0 }
let max_cycles = 1_000_000

type sim_result =
  | Finished of Stats.t
  | Dead of string
  | Tripped of string

let simulate ?observe ?observe_every config kernel =
  match Gpu.run ?observe ?observe_every config kernel with
  | stats -> Finished stats
  | exception Gpu.Deadlock d -> Dead (Format.asprintf "%a" Gpu.pp_deadlock d)
  | exception Sm.Verification_failure m -> Tripped m

(* Everything the fast-forward contract promises to keep bit-identical. *)
let stats_fields (s : Stats.t) =
  ( s.Stats.cycles,
    s.Stats.instructions,
    s.Stats.acquire_execs,
    s.Stats.acquire_first_try,
    s.Stats.acquire_stall_cycles,
    s.Stats.release_execs,
    s.Stats.shared_oob,
    s.Stats.spill_stores,
    s.Stats.fill_loads,
    s.Stats.rf_reads,
    s.Stats.rf_writes,
    s.Stats.shared_reads,
    s.Stats.shared_writes,
    s.Stats.resident_warp_cycles,
    s.Stats.warp_capacity_cycles,
    s.Stats.ctas_retired,
    s.Stats.timed_out,
    s.Stats.active_lane_cycles,
    s.Stats.predicated_lane_cycles,
    s.Stats.divergent_branches )

let diff_stats ?(sides = ("fast-forward", "brute-force")) ~label (ff : Stats.t)
    (bf : Stats.t) =
  let sa, sb = sides in
  if stats_fields ff <> stats_fields bf then
    Some
      (Printf.sprintf
         "%s: %s (%d cycles, %d instrs) vs %s (%d cycles, %d instrs) counters \
          differ"
         label sa ff.Stats.cycles ff.Stats.instructions sb bf.Stats.cycles
         bf.Stats.instructions)
  else
    match
      List.find_opt
        (fun r -> Stats.stall_count ff r <> Stats.stall_count bf r)
        Stats.all_reasons
    with
    | Some r ->
        Some
          (Printf.sprintf "%s: stall[%s] = %d %s vs %d %s" label
             (Stats.reason_name r) (Stats.stall_count ff r) sa
             (Stats.stall_count bf r) sb)
    | None -> (
        match
          Checker.diff_store_traces ~expected:(Stats.store_traces bf)
            ~actual:(Stats.store_traces ff)
        with
        | Some d -> Some (Printf.sprintf "%s: store traces differ: %s" label d)
        | None -> None)

(* --- round-trips ------------------------------------------------------ *)

let roundtrip_failures prog =
  let failures = ref [] in
  let fail detail = failures := { kind = Roundtrip; detail } :: !failures in
  (let printed = Format.asprintf "%a" Program.pp prog in
   match Parser.parse ~name:prog.Program.name printed with
   | reparsed ->
       if not (Program.equal reparsed prog) then
         fail "parse (print p) <> p: printer/parser asymmetry"
   | exception Parser.Parse_error e ->
       fail (Format.asprintf "printed program does not parse: %a" Parser.pp_error e)
   | exception Program.Invalid m ->
       fail (Printf.sprintf "printed program re-validates differently: %s" m));
  (if Codec.encodable prog then
     match Codec.decode_program ~name:prog.Program.name (Codec.encode_program prog) with
     | decoded ->
         if not (Program.equal decoded prog) then
           fail "decode (encode p) <> p: codec asymmetry"
     | exception Codec.Unencodable m -> fail (Printf.sprintf "codec round-trip failed: %s" m)
     | exception Program.Invalid m ->
         fail (Printf.sprintf "decoded program re-validates differently: %s" m));
  List.rev !failures

(* --- fault injection -------------------------------------------------- *)

let find_first pred p =
  let rec go i =
    if i >= Program.length p then None
    else if pred (Program.get p i) then Some i
    else go (i + 1)
  in
  go 0

let replace p idx instr =
  Program.map_instrs (fun i old -> if i = idx then instr else old) p

let apply_fault fault ~bs p =
  match fault with
  | Drop_acquire -> (
      match find_first (fun i -> i = Instr.Acquire) p with
      | Some idx -> (replace p idx (Instr.Mov (0, Instr.Reg 0)), true)
      | None -> (p, false))
  | Early_release -> (
      match find_first (fun i -> i = Instr.Acquire) p with
      | Some idx -> (Program.insert_before p [ (idx + 1, [ Instr.Release ]) ], true)
      | None -> (p, false))
  | Drop_mov -> (
      match
        find_first
          (function Instr.Mov (d, Instr.Reg s) -> s >= bs && d < bs | _ -> false)
          p
      with
      | Some idx -> (
          match Program.get p idx with
          | Instr.Mov (d, _) -> (replace p idx (Instr.Mov (d, Instr.Reg d)), true)
          | _ -> assert false)
      | None -> (p, false))
  | Oob_spill ->
      (* Targets the forced-RegDem branch, not the SRP split. *)
      (p, false)
  | Mask_corrupt ->
      (* A runtime injection (Runner's [corrupt_mask]), not a program
         mutation; handled by the SIMT branch of the oracle. *)
      (p, false)

(* --- baseline reference ----------------------------------------------- *)

let static_config prog =
  {
    (Gpu.default_config arch0
       (Policy.Static { regs_per_thread = prog.Program.n_regs }))
    with
    Gpu.record_stores = true;
    max_cycles;
  }

(* --- forced Bs/Es split ------------------------------------------------ *)

(* Capacity pinned to exactly two resident CTAs, with exactly [sections]
   SRP sections left over ([Policy.regs_per_cta] for Srp is unrounded, so
   the arithmetic is exact) — guaranteeing real acquire contention while
   [sections >= 1] keeps barrier-free kernels deadlock-free. *)
let contended_arch ~regs_cta ~es ~sections =
  {
    arch0 with
    Arch_config.max_ctas = 2;
    regfile_regs = (2 * regs_cta) + (sections * es * 32);
  }

let forced_split_failures (case : Gen.t) ~expected ~inject =
  let prog = case.Gen.program in
  let liveness = Liveness.analyze prog in
  let peak = Liveness.max_pressure liveness in
  let bs = max 1 (min (prog.Program.n_regs - 1) (peak - 1)) in
  let es = prog.Program.n_regs - bs in
  if case.Gen.family <> Gen.Pressure || es < 1 || prog.Program.n_regs < 3 then
    ([], false)
  else
    match Transform.apply ~bs ~es prog with
    | exception Transform.Unsound violations ->
        ( [ {
              kind = Unsound_transform;
              detail =
                Format.asprintf "transform bs=%d es=%d rejected its own output: %a"
                  bs es
                  (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
                     Checker.pp_violation)
                  violations;
            } ],
          false )
    | plan ->
        let transformed, injected =
          match inject with
          | None -> (plan.Transform.transformed, false)
          | Some f -> apply_fault f ~bs plan.Transform.transformed
        in
        let kern = Gen.kernel ~program:transformed case in
        let policy = Policy.Srp { bs; es; verify = true } in
        let wpc = case.Gen.threads / 32 in
        let regs_cta = Policy.regs_per_cta arch0 policy ~warps_per_cta:wpc in
        let sections = 1 + (case.Gen.salt mod 3) in
        let arch = contended_arch ~regs_cta ~es ~sections in
        let config =
          { (Gpu.default_config arch policy) with Gpu.record_stores = true; max_cycles }
        in
        let failures = ref [] in
        let fail kind detail = failures := { kind; detail } :: !failures in
        let label =
          Printf.sprintf "srp bs=%d es=%d sections=%d" bs es sections
        in
        (* Brute-force run doubling as the SRP-conservation sampler: the
           invariant is probed after every cycle, which covers every
           acquire and release event. *)
        let conservation = ref None in
        let observe ~cycle sms =
          if !conservation = None then
            Array.iter
              (fun sm ->
                match Sm.srp_invariant sm with
                | Some (Error msg) ->
                    if !conservation = None then conservation := Some (cycle, msg)
                | Some (Ok _) | None -> ())
              sms
        in
        (match
           simulate ~observe { config with Gpu.fast_forward = false } kern
         with
        | Dead d -> fail Deadlock (Printf.sprintf "%s: %s" label d)
        | Tripped m -> fail Verification (Printf.sprintf "%s: %s" label m)
        | Finished brute -> (
            (match !conservation with
            | Some (cycle, msg) ->
                fail Conservation (Printf.sprintf "%s at cycle %d: %s" label cycle msg)
            | None -> ());
            if brute.Stats.timed_out then
              fail Timeout
                (Printf.sprintf "%s: exceeded %d cycles" label max_cycles)
            else begin
              (match
                 Checker.diff_store_traces ~expected
                   ~actual:(Stats.store_traces brute)
               with
              | Some d -> fail Divergence (Printf.sprintf "%s: %s" label d)
              | None -> ());
              match simulate config kern with
              | Dead d ->
                  fail Deadlock
                    (Printf.sprintf "%s (fast-forward only): %s" label d)
              | Tripped m ->
                  fail Verification
                    (Printf.sprintf "%s (fast-forward only): %s" label m)
              | Finished ff -> (
                  match diff_stats ~label ff brute with
                  | Some d -> fail Stats_mismatch d
                  | None -> ())
            end));
        (* Paired-warps specialization on the same transformed program:
           ample register file, contention only within a pair. *)
        let paired_policy = Policy.Srp_paired { bs; es; verify = true } in
        let paired_config =
          { (Gpu.default_config arch0 paired_policy) with
            Gpu.record_stores = true;
            max_cycles }
        in
        (match simulate paired_config kern with
        | Dead d -> fail Deadlock (Printf.sprintf "paired bs=%d es=%d: %s" bs es d)
        | Tripped m ->
            fail Verification (Printf.sprintf "paired bs=%d es=%d: %s" bs es m)
        | Finished stats ->
            if stats.Stats.timed_out then
              fail Timeout (Printf.sprintf "paired bs=%d es=%d timed out" bs es)
            else (
              match
                Checker.diff_store_traces ~expected
                  ~actual:(Stats.store_traces stats)
              with
              | Some d -> fail Divergence (Printf.sprintf "paired bs=%d es=%d: %s" bs es d)
              | None -> ()));
        (List.rev !failures, injected)

(* --- technique differential ------------------------------------------- *)

(* The shared-memory discipline rule: a technique must hit the user
   shared-memory window exactly as often out-of-bounds as the baseline
   does — a delta means a transform leaked accesses outside its
   allocation (RegDem correctness depends on this: spill traffic must
   stay inside the reserved window). Strict by default; configurable so
   the rule itself is testable. *)
let oob_delta ~strict_oob ~base_oob ~label (stats : Stats.t) =
  if strict_oob && stats.Stats.shared_oob <> base_oob then
    Some
      {
        kind = Shared_oob;
        detail =
          Printf.sprintf "%s: %d out-of-bounds shared accesses vs %d in baseline"
            label stats.Stats.shared_oob base_oob;
      }
  else None

let technique_failures (case : Gen.t) ~expected ~base_oob ~strict_oob =
  let kern = Gen.kernel case in
  let failures = ref [] in
  let fail kind detail = failures := { kind; detail } :: !failures in
  let successes = ref [] in
  List.iter
    (fun tech ->
      let name = Technique.name tech in
      match Runner.execute ~record_stores:true ~max_cycles arch0 tech kern with
      | run ->
          if run.Runner.stats.Stats.timed_out then
            fail Timeout (Printf.sprintf "%s: exceeded %d cycles" name max_cycles)
          else (
            (match
               Checker.diff_store_traces ~expected
                 ~actual:(Stats.store_traces run.Runner.stats)
             with
            | Some d -> fail Divergence (Printf.sprintf "%s: %s" name d)
            | None -> ());
            (match
               oob_delta ~strict_oob ~base_oob ~label:name run.Runner.stats
             with
            | Some f -> failures := f :: !failures
            | None -> ());
            successes := tech :: !successes)
      | exception Gpu.Deadlock d ->
          fail Deadlock (Format.asprintf "%s: %a" name Gpu.pp_deadlock d)
      | exception Sm.Verification_failure m ->
          fail Verification (Printf.sprintf "%s: %s" name m)
      | exception Transform.Unsound violations ->
          fail Unsound_transform
            (Format.asprintf "%s: %a" name
               (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
                  Checker.pp_violation)
               violations))
    (List.filter (fun t -> t <> Technique.Baseline) Technique.all);
  (* Fast-forward equivalence through the heuristic path: baseline (memory
     and barrier stalls) and RegMutex (acquire stalls on top). *)
  List.iter
    (fun tech ->
      let name = Technique.name tech in
      if tech = Technique.Baseline || List.mem tech !successes then
        match
          ( Runner.execute ~record_stores:true ~max_cycles arch0 tech kern,
            Runner.execute ~record_stores:true ~max_cycles ~fast_forward:false
              arch0 tech kern )
        with
        | ff, bf -> (
            match
              diff_stats ~label:(name ^ " (heuristic)") ff.Runner.stats
                bf.Runner.stats
            with
            | Some d -> fail Stats_mismatch d
            | None -> ())
        | exception Gpu.Deadlock d ->
            fail Deadlock (Format.asprintf "%s brute-force: %a" name Gpu.pp_deadlock d)
        | exception Sm.Verification_failure m ->
            fail Verification (Printf.sprintf "%s brute-force: %s" name m))
    [ Technique.Baseline; Technique.Regmutex ];
  List.rev !failures

(* --- forced RegDem demotion -------------------------------------------- *)

(* The RegDem heuristic only demotes when occupancy strictly improves,
   which small fuzz kernels rarely trigger — so the demotion machinery is
   additionally exercised with a salt-derived forced [keep], independent
   of profitability. The transformed kernel must reproduce the baseline
   store trace, keep fast-forward and brute-force stepping bit-identical,
   and never touch shared memory outside its reserved spill window. *)
let forced_regdem_failures (case : Gen.t) ~expected ~base_oob ~strict_oob ~inject =
  let prog = case.Gen.program in
  let n_regs = prog.Program.n_regs in
  if n_regs < 3 then ([], false)
  else
    let keep = 1 + (case.Gen.salt mod (n_regs - 1)) in
    let wpc = max 1 (case.Gen.threads / 32) in
    match Regdem.transform ~keep ~wpc prog with
    | exception Regdem.Unsound m ->
        ( [ {
              kind = Unsound_transform;
              detail =
                Printf.sprintf "regdem keep=%d wpc=%d rejected its own output: %s"
                  keep wpc m;
            } ],
          false )
    | plan ->
        let transformed, injected =
          match inject with
          | Some Oob_spill -> (
              (* Corrupt the first spill store's offset to land one past
                 the window: every executing warp must bump [shared_oob],
                 which the strict window rule then reports. *)
              match
                find_first
                  (function Instr.Store (Instr.Spill, _, _, _) -> true | _ -> false)
                  plan.Regdem.transformed
              with
              | Some idx -> (
                  match Program.get plan.Regdem.transformed idx with
                  | Instr.Store (Instr.Spill, addr, v, _) ->
                      ( replace plan.Regdem.transformed idx
                          (Instr.Store
                             (Instr.Spill, addr, v, plan.Regdem.spill_words)),
                        true )
                  | _ -> assert false)
              | None -> (plan.Regdem.transformed, false))
          | Some (Drop_acquire | Early_release | Drop_mov | Mask_corrupt)
          | None ->
              (plan.Regdem.transformed, false)
        in
        let kern =
          Kernel.with_shmem_bytes
            (Gen.kernel ~program:transformed case)
            (Regdem.shmem_bytes_with_window (Gen.kernel case)
               ~spill_words:plan.Regdem.spill_words)
        in
        let policy =
          Policy.Regdem
            { regs_per_thread = plan.Regdem.allocated;
              spill_words = plan.Regdem.spill_words }
        in
        let config =
          { (Gpu.default_config arch0 policy) with
            Gpu.record_stores = true;
            max_cycles }
        in
        let failures = ref [] in
        let fail kind detail = failures := { kind; detail } :: !failures in
        let label = Printf.sprintf "regdem keep=%d wpc=%d" keep wpc in
        (match simulate { config with Gpu.fast_forward = false } kern with
        | Dead d -> fail Deadlock (Printf.sprintf "%s: %s" label d)
        | Tripped m -> fail Verification (Printf.sprintf "%s: %s" label m)
        | Finished brute ->
            if brute.Stats.timed_out then
              fail Timeout (Printf.sprintf "%s: exceeded %d cycles" label max_cycles)
            else begin
              (match
                 Checker.diff_store_traces ~expected
                   ~actual:(Stats.store_traces brute)
               with
              | Some d -> fail Divergence (Printf.sprintf "%s: %s" label d)
              | None -> ());
              (match oob_delta ~strict_oob ~base_oob ~label brute with
              | Some f -> failures := f :: !failures
              | None -> ());
              match simulate config kern with
              | Dead d ->
                  fail Deadlock
                    (Printf.sprintf "%s (fast-forward only): %s" label d)
              | Tripped m ->
                  fail Verification
                    (Printf.sprintf "%s (fast-forward only): %s" label m)
              | Finished ff -> (
                  match diff_stats ~label ff brute with
                  | Some d -> fail Stats_mismatch d
                  | None -> ())
            end);
        (List.rev !failures, injected)

(* --- SIMT execution ----------------------------------------------------- *)

let simt_options = { Technique.default_options with Technique.simt = true }

(* Warp-uniform equivalence: the Pressure and Barrier families never read
   [%laneid], so every lane of a warp follows one path and the SIMT model
   must reproduce the warp-uniform run bit-for-bit — counters, stall
   histogram and store traces. This is the fuzz-side enforcement of the
   two-execution-models contract. *)
let simt_equiv_failures (case : Gen.t) ~base =
  match
    Runner.execute ~options:simt_options ~record_stores:true ~max_cycles arch0
      Technique.Baseline (Gen.kernel case)
  with
  | run -> (
      match
        diff_stats ~sides:("simt", "uniform") ~label:"baseline uniform-vs-simt"
          run.Runner.stats base
      with
      | Some d -> [ { kind = Stats_mismatch; detail = d } ]
      | None -> [])
  | exception Gpu.Deadlock d ->
      [ { kind = Deadlock;
          detail = Format.asprintf "baseline --simt: %a" Gpu.pp_deadlock d } ]

(* Value-safe techniques under true divergence. RegDem is excluded by
   design: its spill window holds one value per warp-level register, so a
   demoted register whose lanes diverge is clobbered on spill (last lane
   wins) and every lane reads that value back on fill — RegDem is only
   sound for warp-uniform register values. *)
let simt_divergent_techniques =
  Technique.[ Regmutex; Regmutex_paired; Owf; Rfv ]

let pp_violations =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
    Checker.pp_violation

(* Divergent-family differential: a baseline SIMT run's lane-resolved
   store traces are the reference; every value-safe technique must
   reproduce them lane-for-lane (and the warp-level traces too), and the
   fast-forward contract must hold under SIMT for the heuristic path. *)
let simt_divergent_failures (case : Gen.t) =
  let kern = Gen.kernel case in
  let failures = ref [] in
  let fail kind detail = failures := { kind; detail } :: !failures in
  (match
     Runner.execute ~options:simt_options ~record_stores:true ~max_cycles arch0
       Technique.Baseline kern
   with
  | exception Gpu.Deadlock d ->
      fail Deadlock (Format.asprintf "baseline --simt: %a" Gpu.pp_deadlock d)
  | base_run ->
      let base = base_run.Runner.stats in
      if base.Stats.timed_out then
        fail Timeout
          (Printf.sprintf "baseline --simt: exceeded %d cycles" max_cycles)
      else begin
        let expected_lanes = Stats.lane_store_traces base in
        let expected = Stats.store_traces base in
        List.iter
          (fun tech ->
            let name = Technique.name tech ^ " --simt" in
            match
              Runner.execute ~options:simt_options ~record_stores:true
                ~max_cycles arch0 tech kern
            with
            | run ->
                let stats = run.Runner.stats in
                if stats.Stats.timed_out then
                  fail Timeout
                    (Printf.sprintf "%s: exceeded %d cycles" name max_cycles)
                else begin
                  (match
                     Checker.diff_lane_store_traces ~expected:expected_lanes
                       ~actual:(Stats.lane_store_traces stats)
                   with
                  | Some d ->
                      fail Divergence (Printf.sprintf "%s (lanes): %s" name d)
                  | None -> ());
                  match
                    Checker.diff_store_traces ~expected
                      ~actual:(Stats.store_traces stats)
                  with
                  | Some d -> fail Divergence (Printf.sprintf "%s: %s" name d)
                  | None -> ()
                end
            | exception Gpu.Deadlock d ->
                fail Deadlock (Format.asprintf "%s: %a" name Gpu.pp_deadlock d)
            | exception Sm.Verification_failure m ->
                fail Verification (Printf.sprintf "%s: %s" name m)
            | exception Transform.Unsound violations ->
                fail Unsound_transform
                  (Format.asprintf "%s: %a" name pp_violations violations))
          simt_divergent_techniques;
        List.iter
          (fun tech ->
            let name = Technique.name tech ^ " --simt (heuristic)" in
            match
              ( Runner.execute ~options:simt_options ~record_stores:true
                  ~max_cycles arch0 tech kern,
                Runner.execute ~options:simt_options ~record_stores:true
                  ~max_cycles ~fast_forward:false arch0 tech kern )
            with
            | ff, bf -> (
                match
                  diff_stats ~label:name ff.Runner.stats bf.Runner.stats
                with
                | Some d -> fail Stats_mismatch d
                | None -> ())
            | exception Gpu.Deadlock d ->
                fail Deadlock (Format.asprintf "%s: %a" name Gpu.pp_deadlock d)
            | exception Sm.Verification_failure m ->
                fail Verification (Printf.sprintf "%s: %s" name m))
          Technique.[ Baseline; Regmutex ]
      end);
  List.rev !failures

(* Mask-corruption self-test: clear lane 1 from every warp's initial
   active mask and diff the lane-resolved traces against a clean SIMT run.
   The warp-level trace records the lowest active lane's stores, so on the
   uniform families the corruption is provably invisible at warp
   granularity (lane 0 leads every instruction) — only the lane-resolved
   oracle can catch it, which is exactly the strictly-stronger property
   this injection validates. *)
let mask_corrupt_failures (case : Gen.t) =
  let kern = Gen.kernel case in
  let run ?corrupt_mask () =
    Runner.execute ~options:simt_options ?corrupt_mask ~record_stores:true
      ~max_cycles arch0 Technique.Baseline kern
  in
  match (run (), run ~corrupt_mask:2 ()) with
  | exception Gpu.Deadlock d ->
      [ { kind = Deadlock;
          detail = Format.asprintf "mask-corrupt: %a" Gpu.pp_deadlock d } ]
  | clean, bad -> (
      let failures =
        match
          Checker.diff_lane_store_traces
            ~expected:(Stats.lane_store_traces clean.Runner.stats)
            ~actual:(Stats.lane_store_traces bad.Runner.stats)
        with
        | Some d ->
            [ { kind = Divergence; detail = "mask-corrupt (lanes): " ^ d } ]
        | None -> []
      in
      match case.Gen.family with
      | Gen.Divergent ->
          (* Under divergence a dead lane 1 can change which lane leads an
             arm, so the warp-level trace may legitimately move too. *)
          failures
      | Gen.Pressure | Gen.Barrier -> (
          match
            Checker.diff_store_traces
              ~expected:(Stats.store_traces clean.Runner.stats)
              ~actual:(Stats.store_traces bad.Runner.stats)
          with
          | Some d ->
              { kind = Crash;
                detail =
                  "mask-corrupt visible at warp granularity (lane oracle not \
                   strictly stronger here): " ^ d }
              :: failures
          | None -> failures))

(* --- per-case entry ---------------------------------------------------- *)

(* Oracle-stage profiling (surfaced by `regmutex fuzz --profile`).
   Registered at module init, before the driver spawns worker domains;
   the accumulators are atomic, so concurrent cases time safely. *)
let baseline_phase = Telemetry.Profile.phase "oracle.baseline"
let roundtrip_phase = Telemetry.Profile.phase "oracle.roundtrip"
let techniques_phase = Telemetry.Profile.phase "oracle.techniques"
let forced_split_phase = Telemetry.Profile.phase "oracle.forced-split"
let forced_regdem_phase = Telemetry.Profile.phase "oracle.forced-regdem"
let simt_phase = Telemetry.Profile.phase "oracle.simt"

let test_case ?inject ?(strict_shared_oob = true) (case : Gen.t) =
  try
    let prog = case.Gen.program in
    match
      Telemetry.Profile.time baseline_phase (fun () ->
          simulate (static_config prog) (Gen.kernel case))
    with
    | Dead d ->
        { failures = [ { kind = Deadlock; detail = "baseline: " ^ d } ]; injected = false }
    | Tripped m ->
        (* Static policy never verifies; this cannot happen. *)
        { failures = [ { kind = Crash; detail = "baseline verification: " ^ m } ];
          injected = false }
    | Finished base ->
        if base.Stats.timed_out then
          { failures =
              [ { kind = Timeout;
                  detail = Printf.sprintf "baseline: exceeded %d cycles" max_cycles } ];
            injected = false }
        else
          let expected = Stats.store_traces base in
          let base_oob = base.Stats.shared_oob in
          let strict_oob = strict_shared_oob in
          let split () =
            Telemetry.Profile.time forced_split_phase (fun () ->
                forced_split_failures case ~expected ~inject)
          in
          let regdem () =
            Telemetry.Profile.time forced_regdem_phase (fun () ->
                forced_regdem_failures case ~expected ~base_oob ~strict_oob
                  ~inject)
          in
          let simt () =
            Telemetry.Profile.time simt_phase (fun () ->
                match case.Gen.family with
                | Gen.Divergent -> simt_divergent_failures case
                | Gen.Pressure | Gen.Barrier -> simt_equiv_failures case ~base)
          in
          let failures, injected =
            (* With a fault requested only the branch carrying the mutation
               runs; the other invariants would re-test the unmutated
               program. *)
            match inject with
            | Some Oob_spill -> regdem ()
            | Some (Drop_acquire | Early_release | Drop_mov) -> split ()
            | Some Mask_corrupt ->
                ( Telemetry.Profile.time simt_phase (fun () ->
                      mask_corrupt_failures case),
                  true )
            | None ->
                let split_failures, _ = split () in
                let regdem_failures, _ = regdem () in
                ( Telemetry.Profile.time roundtrip_phase (fun () ->
                      roundtrip_failures prog)
                  @ Telemetry.Profile.time techniques_phase (fun () ->
                        technique_failures case ~expected ~base_oob ~strict_oob)
                  @ split_failures @ regdem_failures @ simt (),
                  false )
          in
          { failures; injected }
  with e ->
    { failures =
        [ { kind = Crash;
            detail = Printf.sprintf "unexpected exception: %s" (Printexc.to_string e) } ];
      injected = false }

let test_seed ?inject ?strict_shared_oob seed =
  let case = Gen.generate ~seed in
  (case, test_case ?inject ?strict_shared_oob case)
