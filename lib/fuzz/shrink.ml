module Instr = Gpu_isa.Instr
module Program = Gpu_isa.Program
module Regset = Gpu_isa.Regset

(* Each candidate edit costs up to a full oracle run, so the search is
   bounded: once the budget is spent the current (already-failing) program
   is returned as-is. *)
let eval_budget = 400

(* [delete_range p lo hi] removes instructions [lo, hi) and retargets
   branches: targets inside the hole land on the first surviving
   instruction after it. Edits that break validation (removing the only
   [Exit], leaving a fall-through tail, ...) return [None]. *)
let delete_range (p : Program.t) lo hi =
  let remap t = if t < lo then t else if t < hi then lo else t - (hi - lo) in
  let kept = ref [] in
  for i = Program.length p - 1 downto 0 do
    if i < lo || i >= hi then
      kept := Instr.map_target remap (Program.get p i) :: !kept
  done;
  match Program.create ~name:p.Program.name (Array.of_list !kept) with
  | p' -> Some p'
  | exception Program.Invalid _ -> None

(* Rename registers to close the gaps deletion leaves (r9 used alone
   still forces n_regs = 10 otherwise). *)
let compact_registers (p : Program.t) =
  let used = ref Regset.empty in
  for i = 0 to Program.length p - 1 do
    used := Regset.union !used (Instr.regs (Program.get p i))
  done;
  let rank = Array.make p.Program.n_regs 0 in
  let next = ref 0 in
  Regset.iter
    (fun r ->
      rank.(r) <- !next;
      incr next)
    !used;
  if !next = p.Program.n_regs then None
  else
    match
      Program.map_instrs (fun _ i -> Instr.map_regs (fun r -> rank.(r)) i) p
    with
    | p' -> Some p'
    | exception Program.Invalid _ -> None

let minimize ?inject ~kind (case : Gen.t) =
  let budget = ref eval_budget in
  let reproduces prog =
    !budget > 0
    && begin
         decr budget;
         let report = Oracle.test_case ?inject { case with Gen.program = prog } in
         List.exists (fun f -> f.Oracle.kind = kind) report.Oracle.failures
       end
  in
  let current = ref case.Gen.program in
  (* ddmin over instruction ranges: try ever-smaller chunks, restarting a
     pass whenever a deletion sticks (earlier indices may newly be
     removable). *)
  let chunk = ref (max 1 (Program.length !current / 2)) in
  while !chunk >= 1 && !budget > 0 do
    let changed = ref true in
    while !changed && !budget > 0 do
      changed := false;
      let lo = ref 0 in
      while !lo < Program.length !current && !budget > 0 do
        let hi = min (Program.length !current) (!lo + !chunk) in
        match delete_range !current !lo hi with
        | Some candidate when reproduces candidate ->
            current := candidate;
            changed := true
            (* keep [lo]: the next chunk slid into this position *)
        | _ -> lo := hi
      done
    done;
    chunk := if !chunk = 1 then 0 else !chunk / 2
  done;
  (match compact_registers !current with
  | Some candidate when reproduces candidate -> current := candidate
  | _ -> ());
  { case with Gen.program = !current }
