(** Delta-debugging counterexample shrinker.

    Given a failing case, greedily removes instruction ranges (ddmin-style:
    halving chunk sizes down to single instructions) and then compacts the
    register space, re-running the oracle after every candidate edit and
    keeping the edit only while a failure of the {e same kind} still
    reproduces. The result is a minimal program that still fails, suitable
    for writing out as a replayable [.kern] file. *)

(** [minimize ?inject ~kind case] returns the shrunk case (same seed and
    launch geometry, smaller program). Deterministic; bounded by an
    internal evaluation budget. *)
val minimize : ?inject:Oracle.fault -> kind:Oracle.kind -> Gen.t -> Gen.t
