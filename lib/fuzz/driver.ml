module Engine = Experiments.Engine

let shrink_phase = Telemetry.Profile.phase "fuzz.shrink"

type config = {
  n_seeds : int;
  seed0 : int;
  jobs : int;
  dir : string option;
  inject : Oracle.fault option;
  do_shrink : bool;
}

type outcome = {
  o_seed : int;
  o_case : Gen.t;
  o_failures : Oracle.failure list;
  o_artifact : string option;
}

type summary = {
  tested : int;
  failed : outcome list;
  injected_cases : int;
  caught : int;
}

let seeds_to_test config =
  let corpus =
    match config.dir with Some dir -> Corpus.load_seeds ~dir | None -> []
  in
  let fresh = List.init config.n_seeds (fun i -> config.seed0 + i) in
  (* Corpus seeds (prior failures) run first; a fresh sweep overlapping
     them would test them twice. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.add seen s ();
        true
      end)
    (corpus @ fresh)

let run ppf config =
  let seeds = Array.of_list (seeds_to_test config) in
  let results =
    Engine.parallel_map ~jobs:config.jobs seeds (fun seed ->
        Oracle.test_seed ?inject:config.inject seed)
  in
  let injected_cases = ref 0 and caught = ref 0 in
  let failed = ref [] in
  Array.iteri
    (fun i (case, report) ->
      let seed = seeds.(i) in
      let report : Oracle.report = report in
      if report.Oracle.injected then begin
        incr injected_cases;
        if report.Oracle.failures <> [] then incr caught
      end;
      match report.Oracle.failures with
      | [] -> ()
      | failures ->
          Format.fprintf ppf "seed %d (%s, %d instrs): %d failure(s)@." seed
            (Gen.family_name case.Gen.family)
            (Gpu_isa.Program.length case.Gen.program)
            (List.length failures);
          List.iter
            (fun f -> Format.fprintf ppf "  %a@." Oracle.pp_failure f)
            failures;
          (* Shrinking re-runs the oracle many times; keep it serial on
             the coordinator rather than nested under the sweep. *)
          let case =
            if config.do_shrink then begin
              let kind = (List.hd failures).Oracle.kind in
              let shrunk =
                Telemetry.Profile.time shrink_phase (fun () ->
                    Shrink.minimize ?inject:config.inject ~kind case)
              in
              Format.fprintf ppf "  shrunk: %d -> %d instructions@."
                (Gpu_isa.Program.length case.Gen.program)
                (Gpu_isa.Program.length shrunk.Gen.program);
              shrunk
            end
            else case
          in
          let artifact =
            match config.dir with
            | None -> None
            | Some dir ->
                let kind = (List.hd failures).Oracle.kind in
                Corpus.add_seed ~dir ~seed ~kind;
                let path = Corpus.write_counterexample ~dir case failures in
                Format.fprintf ppf "  wrote %s@." path;
                Some path
          in
          failed :=
            { o_seed = seed; o_case = case; o_failures = failures;
              o_artifact = artifact }
            :: !failed)
    results;
  let summary =
    {
      tested = Array.length seeds;
      failed = List.rev !failed;
      injected_cases = !injected_cases;
      caught = !caught;
    }
  in
  (match config.inject with
  | Some fault ->
      Format.fprintf ppf
        "fuzz: %d seeds tested, fault %s applied to %d case(s), caught on %d@."
        summary.tested (Oracle.fault_name fault) summary.injected_cases
        summary.caught
  | None ->
      Format.fprintf ppf "fuzz: %d seeds tested, %d counterexample(s)@."
        summary.tested (List.length summary.failed));
  summary

let exit_code config summary =
  match config.inject with
  | None -> if summary.failed = [] then 0 else 1
  | Some _ -> if summary.caught >= 1 then 0 else 1
