module B = Gpu_isa.Builder
module Instr = Gpu_isa.Instr
module Program = Gpu_isa.Program

type family = Pressure | Barrier | Divergent

type t = {
  seed : int;
  family : family;
  program : Program.t;
  grid : int;
  threads : int;
  params : int array;
  salt : int;
}

let family_name = function
  | Pressure -> "pressure"
  | Barrier -> "barrier"
  | Divergent -> "divergent"

(* Address discipline (the determinism contract): loads are masked into
   [0, 0x1FFF] (+ a small literal offset) and only ever read memory no
   store can touch — global stores are masked into the disjoint window at
   [0x10000000, 0x10001FFF], shared stores are pure sinks (never loaded
   back). Unwritten global reads return a deterministic function of the
   address, so every warp's values — hence its store trace — depend only
   on the program, not on scheduling, policy or stepping mode. *)
let load_mask = 0x1FFF
let store_base = 0x10000000

let binops =
  Instr.[| Add; Sub; Mul; Div; Rem; Min; Max; And; Or; Xor; Shl; Shr |]

let unops = Instr.[| Neg; Not; Abs |]
let cmpops = Instr.[| Eq; Ne; Lt; Le; Gt; Ge |]

let specials =
  Instr.[| Tid; Ctaid; Ntid; Nctaid; Warp_id |]

let gen_program rng ~family ~seed =
  let n_regs =
    match family with
    | Pressure -> Rng.range rng 8 14
    | Barrier -> Rng.range rng 5 7
    | Divergent -> Rng.range rng 7 12
  in
  (* The two highest registers are reserved as loop counters (one per
     nesting level); bodies never touch them, so counted loops always
     terminate. *)
  let usable = n_regs - 2 in
  let label_counter = ref 0 in
  let fresh () =
    incr label_counter;
    Printf.sprintf "L%d" !label_counter
  in
  let reg () = Rng.int rng usable in
  let operand () =
    match Rng.int rng 8 with
    | 0 | 1 | 2 | 3 | 4 -> Instr.Reg (reg ())
    | 5 -> Instr.Imm (Rng.range rng (-64) 1000)
    | 6 -> Instr.Special (Rng.choose rng specials)
    | _ -> Instr.Param (Rng.int rng 2)
  in
  let alu () =
    let d = reg () in
    match Rng.int rng 12 with
    | 0 -> [ B.un (Rng.choose rng unops) d (operand ()) ]
    | 1 -> [ B.mad d (operand ()) (operand ()) (operand ()) ]
    | 2 -> [ B.mov d (operand ()) ]
    | 3 -> [ B.cmp (Rng.choose rng cmpops) d (operand ()) (operand ()) ]
    | 4 -> [ B.sel d (operand ()) (operand ()) (operand ()) ]
    | _ -> [ B.bin (Rng.choose rng binops) d (operand ()) (operand ()) ]
  in
  let load () =
    let t1 = reg () and d = reg () in
    [ B.and_ t1 (operand ()) (B.imm load_mask);
      B.load ~ofs:(Rng.int rng 64) Instr.Global d (B.r t1) ]
  in
  let store () =
    if Rng.chance rng ~pct:25 then
      (* Shared stores are sinks: recorded in the trace, never read. *)
      [ B.store Instr.Shared (operand ()) (operand ()) ]
    else
      let t1 = reg () in
      [ B.and_ t1 (operand ()) (B.imm load_mask);
        B.store ~ofs:store_base Instr.Global (B.r t1) (operand ()) ]
  in
  let leaf () =
    match Rng.int rng 10 with
    | 0 | 1 -> load ()
    | 2 -> store ()
    | _ -> alu ()
  in
  let leaf_run () =
    List.concat (List.init (Rng.range rng 2 5) (fun _ -> leaf ()))
  in
  (* Pressure bulge: [k] registers defined from one seed operand, all live
     until a fold consumes them — a liveness window of width [k] that
     pushes the peak across any Bs boundary below it. *)
  let bulge () =
    let k = Rng.range rng (min 3 usable) usable in
    let seed_op = operand () in
    let defs = List.init k (fun i -> B.add i seed_op (B.imm ((i * 7) + 1))) in
    let fold =
      List.init (k - 1) (fun i ->
          B.bin
            (Rng.choose rng Instr.[| Add; Xor; Max; Min |])
            0 (B.r 0)
            (B.r (i + 1)))
    in
    defs @ fold
  in
  let rec segment depth =
    if depth = 0 then leaf_run ()
    else
      match Rng.int rng 7 with
      | 0 | 1 ->
          (* if/else diamond *)
          let c = reg () in
          let le = fresh () and lj = fresh () in
          [ B.bz (B.r c) le ]
          @ block (depth - 1)
          @ [ B.bra lj; B.label le ]
          @ block (depth - 1)
          @ [ B.label lj ]
      | 2 ->
          (* counted loop on the reserved counter for this nesting level *)
          let ctr = n_regs - 1 - (depth - 1) in
          let trips = Rng.range rng 1 3 in
          Workloads.Shape.counted_loop ~ctr ~trips:(B.imm trips)
            ~name:(fresh ())
            (block (depth - 1))
      | 3 -> bulge ()
      | _ -> leaf_run ()
  and block depth =
    List.concat (List.init (Rng.range rng 1 3) (fun _ -> segment depth))
  in
  (* Divergent-family combinators: control flow keyed to a hash of the
     per-lane thread id ([tid + %laneid]), so the lanes of one warp
     genuinely split under SIMT execution. The same programs stay valid
     under the warp-uniform model, where [%laneid] reads 0 and the warp
     follows lane 0's path. *)
  let lane_hash d =
    [ B.add d B.tid B.lane_id;
      B.xor d (B.r d) (B.imm (Rng.range rng 0 255));
      B.mul d (B.r d) (B.imm ((2 * Rng.range rng 1 50) + 1)) ]
  in
  let divergent_diamond depth =
    let h = reg () and c = reg () in
    let le = fresh () and lj = fresh () in
    lane_hash h
    @ [ B.and_ c (B.r h) (B.imm (1 lsl Rng.int rng 3)); B.bz (B.r c) le ]
    @ block (depth - 1)
    @ [ B.bra lj; B.label le ]
    @ block (depth - 1)
    @ [ B.label lj ]
  in
  (* Divergent loop exits: each lane trips [(hash land 3) + 1] times —
     bounded, at least once, and lane-dependent, so lanes retire from the
     loop on different iterations yet the loop always terminates. *)
  let divergent_loop depth =
    let ctr = n_regs - 1 - (depth - 1) in
    let h = reg () in
    lane_hash h
    @ [ B.and_ h (B.r h) (B.imm 3); B.add h (B.r h) (B.imm 1) ]
    @ Workloads.Shape.counted_loop ~ctr ~trips:(B.r h) ~name:(fresh ())
        (block (depth - 1))
  in
  (* Lane-distinct effects: address and value both derive from the lane
     hash, so every lane's store trace is unique — exactly what the
     lane-resolved oracle needs to catch per-lane faults. *)
  let lane_store () =
    let h = reg () and a = reg () in
    lane_hash h
    @ [ B.and_ a (B.r h) (B.imm load_mask);
        B.store ~ofs:store_base Instr.Global (B.r a) (B.r h) ]
  in
  let tail () =
    List.init
      (Rng.range rng 1 2)
      (fun _ ->
        B.store ~ofs:store_base Instr.Global
          (B.imm (Rng.int rng load_mask))
          (B.r (reg ())))
  in
  let body =
    match family with
    | Pressure ->
        (* Guaranteed bulge between random blocks, so every pressure-family
           program has a forced-split-worthy peak. *)
        block 2 @ bulge () @ block 1
    | Barrier ->
        (* Barriers only at CTA-uniform points: top level, or the body end
           of a top-level counted loop with a literal trip count. Never
           inside a diamond — divergent-arm barriers hang real CTAs too. *)
        let seg1 = block 1 and seg2 = block 1 in
        let looped =
          if Rng.bool rng then
            Workloads.Shape.counted_loop ~ctr:(n_regs - 2)
              ~trips:(B.imm (Rng.range rng 1 3))
              ~name:(fresh ())
              (leaf_run () @ [ B.bar ])
          else []
        in
        seg1 @ [ B.bar ] @ seg2 @ looped
    | Divergent ->
        (* Lane-hash diamonds around a divergent-exit loop, capped with a
           lane-distinct store. Never any barriers: a [bar.sync] under a
           divergent arm has no meaning on real SIMT hardware (the lanes
           that branched around it never arrive), and this model's
           warp-counting barrier resolves it by a modelling choice the
           differential oracle should not depend on — test_simt pins the
           chosen behaviour down instead. *)
        divergent_diamond 2 @ block 1 @ divergent_loop 2 @ lane_store ()
  in
  B.assemble ~name:(Printf.sprintf "fuzz%d" seed) (body @ tail () @ [ B.exit_ ])

let generate ~seed =
  let rng = Rng.of_seed seed in
  let family =
    let d = Rng.int rng 100 in
    if d < 25 then Barrier else if d < 55 then Divergent else Pressure
  in
  (* Threads per CTA stay a multiple of 64: the paired/OWF policies need an
     even warp count per CTA. *)
  let threads = if Rng.bool rng then 64 else 128 in
  let grid = Rng.range rng 1 3 in
  let params = [| Rng.range rng 1 8; Rng.range rng 1 8 |] in
  let salt = Rng.int rng 1_000_000 in
  let program = gen_program (Rng.split rng) ~family ~seed in
  { seed; family; program; grid; threads; params; salt }

let kernel ?program t =
  let program = Option.value program ~default:t.program in
  Gpu_sim.Kernel.make ~name:program.Program.name ~grid_ctas:t.grid
    ~cta_threads:t.threads ~params:t.params program
