(** Fuzzing campaign driver: corpus replay, parallel seed sweep, shrink
    and artifact writing, deterministic summary. *)

type config = {
  n_seeds : int;       (** fresh seeds to test *)
  seed0 : int;         (** first fresh seed; seeds are [seed0, seed0+n) *)
  jobs : int;          (** worker domains for the sweep *)
  dir : string option; (** corpus directory; [None] disables persistence *)
  inject : Oracle.fault option;  (** fault-injection (self-test) mode *)
  do_shrink : bool;    (** delta-debug failures before writing them out *)
}

type outcome = {
  o_seed : int;
  o_case : Gen.t;          (** shrunk when [do_shrink] *)
  o_failures : Oracle.failure list;
  o_artifact : string option;  (** written [.kern] path *)
}

type summary = {
  tested : int;
  failed : outcome list;   (** seeds with surviving failures, ascending *)
  injected_cases : int;    (** cases where the requested fault applied *)
  caught : int;            (** injected cases the oracle flagged *)
}

(** Run the campaign, printing per-failure diagnostics and a final
    summary line to [ppf]. Deterministic for a fixed config (modulo
    corpus contents). *)
val run : Format.formatter -> config -> summary

(** Exit status for the CLI: normal mode fails on any surviving failure;
    injection mode fails when {e no} injected case was caught. *)
val exit_code : config -> summary -> int
