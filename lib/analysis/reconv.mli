(** Immediate-post-dominator reconvergence points for SIMT execution.

    A warp that diverges at a conditional branch reconverges where every
    path out of the branch must meet again: the first instruction of the
    branch block's immediate post-dominator ({!Dominance.ipostdom}). The
    per-warp reconvergence stack in {!Gpu_sim.Sm} pushes this PC on
    divergence and pops when execution reaches it. *)

(** [table p] maps each conditional-branch instruction index to its
    reconvergence PC. Non-branch entries (and branches whose only
    post-dominator is the virtual exit sink) hold {!sentinel}, a PC no
    instruction ever reaches — such branches reconverge only when their
    lanes exit. *)
val table : Gpu_isa.Program.t -> int array

(** [sentinel p] is [Program.length p]: the never-matched reconvergence PC
    standing in for the virtual exit sink. *)
val sentinel : Gpu_isa.Program.t -> int
