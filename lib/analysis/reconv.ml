module Program = Gpu_isa.Program

let sentinel p = Program.length p

let table p =
  let n = Program.length p in
  let t = Array.make (max n 1) n in
  let cfg = Cfg.of_program p in
  let dom = Dominance.compute cfg in
  List.iter
    (fun (b : Cfg.block) ->
      t.(b.Cfg.last) <-
        (match Dominance.ipostdom dom b.Cfg.id with
        | Some pd -> (Cfg.block cfg pd).Cfg.first
        | None -> n))
    (Cfg.conditional_blocks cfg);
  t
