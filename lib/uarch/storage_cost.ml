type technique =
  | Baseline
  | Regmutex_default
  | Regmutex_paired
  | Rfv
  | Owf
  | Regdem

type breakdown = {
  technique : technique;
  components : (string * int) list;
  total_bits : int;
}

let ceil_log2 n =
  let rec go bits capacity = if capacity >= n then bits else go (bits + 1) (capacity * 2) in
  if n <= 1 then 0 else go 0 1

let make technique components =
  { technique; components; total_bits = List.fold_left (fun acc (_, b) -> acc + b) 0 components }

let bits (cfg : Arch_config.t) technique =
  let nw = cfg.max_warps in
  match technique with
  | Baseline ->
      (* Stock static allocation: no extra tracking structures. *)
      make technique []
  | Regdem ->
      (* Compiler-only: spills ride the existing shared-memory datapath,
         so the hardware adds nothing — RegDem's selling point, paid for
         in spill/fill traffic instead (see {!Energy_model}). *)
      make technique []
  | Regmutex_default ->
      make technique
        [ ("warp status bitmask", nw);
          ("SRP bitmask", nw);
          ("warp->section LUT", nw * ceil_log2 nw) ]
  | Regmutex_paired ->
      make technique [ ("pair status bitmask", nw / 2) ]
  | Rfv ->
      (* Renaming table: one entry per (warp, architected register), each
         naming one of the physical warp-register packs; plus a physical
         availability bit per pack. 48 x 63 x 10 + 1024 = 31,264 bits. *)
      let arch_regs = 63 in
      let packs = cfg.regfile_regs / cfg.warp_size in
      make technique
        [ ("renaming table", nw * arch_regs * ceil_log2 packs);
          ("availability bits", packs) ]
  | Owf ->
      (* One lock bit per warp pair, plus an owner bit to identify which
         warp of the pair holds the shared registers. *)
      make technique [ ("pair lock bits", nw / 2); ("owner bits", nw / 2) ]

let ratio cfg a b =
  let ta = (bits cfg a).total_bits and tb = (bits cfg b).total_bits in
  if ta = 0 then infinity else float_of_int tb /. float_of_int ta

let technique_name = function
  | Baseline -> "Baseline"
  | Regmutex_default -> "RegMutex"
  | Regmutex_paired -> "RegMutex (paired-warps)"
  | Rfv -> "Register File Virtualization"
  | Owf -> "Resource sharing + OWF"
  | Regdem -> "RegDem (shared-memory spilling)"

let pp ppf b =
  Format.fprintf ppf "@[<v>%s: %d bits@," (technique_name b.technique) b.total_bits;
  List.iter (fun (name, bits) -> Format.fprintf ppf "  %-24s %6d bits@," name bits) b.components;
  Format.fprintf ppf "@]"
