(** The Shared Register Pool acquire/release engine of RegMutex's issue
    stage (§III-B1): a warp-status bitmask, an SRP bitmask searched with
    FFZ, and a warp → section lookup table.

    Acquire and release are idempotent, as the paper requires: an acquire
    by a warp already holding a section, or a release by a warp holding
    none, is a no-op. *)

type t

type acquire_result =
  | Granted of int  (** section index newly assigned *)
  | Stall           (** no free section; warp must retry when rescheduled *)
  | Already_held of int

type release_result =
  | Released of int
  | Not_held

(** [create ~n_warps ~sections] builds the engine for an SM hosting up to
    [n_warps] warps with [sections] usable SRP sections
    ([sections <= n_warps]; excess bitmask bits are permanently set). *)
val create : n_warps:int -> sections:int -> t

val acquire : t -> warp:int -> acquire_result
val release : t -> warp:int -> release_result

(** Section currently held by the warp, if any. *)
val holds : t -> warp:int -> int option

val n_sections : t -> int
val free_sections : t -> int
val in_use : t -> int

(** [reset_warp t ~warp] force-releases on warp exit (hardware reclaims
    the section when the CTA retires). Returns the freed section, if any. *)
val reset_warp : t -> warp:int -> int option

(** Independent bookkeeping cross-check, for the fuzz oracle's SRP
    conservation invariant: every status bit maps through the LUT to a
    distinct acquired section within range, and the status and SRP
    popcounts agree (so [in_use + free_sections = n_sections] cannot
    drift). Walks the raw bitmasks rather than the accessors. *)
val consistent : t -> bool

val pp : Format.formatter -> t -> unit
