type t = {
  status : Bitmask.t;        (* warp status: 1 = holding an extended set *)
  srp : Bitmask.t;           (* SRP sections: 1 = acquired *)
  lut : int array;           (* warp -> section (valid when status bit set) *)
}

type acquire_result =
  | Granted of int
  | Stall
  | Already_held of int

type release_result =
  | Released of int
  | Not_held

let create ~n_warps ~sections =
  if sections > n_warps then invalid_arg "Srp.create: more sections than warps";
  {
    status = Bitmask.create ~width:n_warps ~valid:n_warps;
    srp = Bitmask.create ~width:n_warps ~valid:sections;
    lut = Array.make n_warps 0;
  }

let holds t ~warp =
  if Bitmask.test t.status warp then Some t.lut.(warp) else None

let acquire t ~warp =
  match holds t ~warp with
  | Some section -> Already_held section
  | None -> (
      match Bitmask.ffz t.srp with
      | None -> Stall
      | Some section ->
          Bitmask.set t.srp section;
          Bitmask.set t.status warp;
          t.lut.(warp) <- section;
          Granted section)

let release t ~warp =
  match holds t ~warp with
  | None -> Not_held
  | Some section ->
      Bitmask.clear t.status warp;
      Bitmask.clear t.srp section;
      Released section

let n_sections t = Bitmask.valid t.srp
let free_sections t = n_sections t - Bitmask.popcount t.srp
let in_use t = Bitmask.popcount t.srp

let reset_warp t ~warp =
  match release t ~warp with Released s -> Some s | Not_held -> None

(* Independent cross-check of the three redundant structures: every held
   warp must map (via the lut) to a distinct acquired section, and the two
   popcounts must agree. Walks the raw bits rather than trusting any of the
   accessor invariants above. *)
let consistent t =
  let n_warps = Bitmask.width t.status in
  let holders = ref [] in
  for w = n_warps - 1 downto 0 do
    if Bitmask.test t.status w then holders := t.lut.(w) :: !holders
  done;
  let sections = List.sort_uniq compare !holders in
  List.length sections = List.length !holders
  && List.for_all
       (fun s -> s >= 0 && s < Bitmask.valid t.srp && Bitmask.test t.srp s)
       sections
  && Bitmask.popcount t.status = Bitmask.popcount t.srp

let pp ppf t =
  Format.fprintf ppf "srp=%a status=%a" Bitmask.pp t.srp Bitmask.pp t.status
