(** Per-access register-file / shared-memory energy model (GREENER-style,
    Jatala et al. arXiv:1709.04697), extending {!Storage_cost}'s bit
    accounting into modelled joules.

    The model charges a fixed per-access energy at warp granularity for
    every dynamic register-file read/write, user shared-memory access and
    RegDem spill/fill, plus per-technique structure activity (RFV renaming
    lookups, RegMutex bitmask/LUT updates on acquire/release) and a static
    leakage term proportional to the technique's extra storage bits and
    the run's cycle count.

    What is {e not} modelled: ALU/control energy, global-memory/DRAM
    energy, clock distribution, voltage/frequency scaling, and per-lane
    divergence effects (execution is warp-uniform). Absolute values are
    nominal; use the model for relative comparisons between techniques on
    identical kernels. *)

type constants = {
  rf_read_pj : float;      (** per warp-level RF read *)
  rf_write_pj : float;     (** per warp-level RF write *)
  shared_read_pj : float;  (** per warp-level scratchpad read *)
  shared_write_pj : float; (** per warp-level scratchpad write *)
  rename_lookup_pj : float;(** per RFV renaming-table lookup *)
  track_update_pj : float; (** per RegMutex bitmask/LUT update *)
  leakage_pj_per_bit_cycle : float;
      (** static leakage of extra tracking storage, per bit per cycle *)
}

(** Nominal 40nm-class constants; writes cost more than reads, scratchpad
    accesses more than RF accesses. *)
val default : constants

(** Dynamic activity of one run. Build it from the simulator's
    {!Gpu_sim.Stats} counters (see [Technique.energy] in the core
    library — this module stays independent of the simulator). *)
type counts = {
  rf_reads : int;
  rf_writes : int;
  shared_reads : int;       (** user shared loads (fills excluded) *)
  shared_writes : int;      (** user shared stores (spills excluded) *)
  fill_loads : int;         (** RegDem fills *)
  spill_stores : int;       (** RegDem spill stores *)
  rename_accesses : int;    (** RFV: accesses routed through renaming *)
  track_updates : int;      (** RegMutex/OWF: acquire+release updates *)
  cycles : int;
  storage_bits : int;       (** {!Storage_cost} total for the technique *)
}

val zero_counts : counts

type breakdown = {
  counts : counts;
  rf_read_nj : float;
  rf_write_nj : float;
  shared_read_nj : float;
  shared_write_nj : float;
  fill_nj : float;
  spill_nj : float;
  structure_nj : float;
  leakage_nj : float;
  total_nj : float;
}

val of_counts : ?constants:constants -> counts -> breakdown

(** Direction-aware totals: all read-path energy (RF + shared + fills)
    and all write-path energy (RF + shared + spills). *)
val read_nj : breakdown -> float

val write_nj : breakdown -> float

val pp : Format.formatter -> breakdown -> unit
