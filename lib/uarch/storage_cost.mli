(** Hardware storage accounting (§III-B1 and §IV-C).

    On the 48-warp baseline: RegMutex adds 384 bits (two 48-bit bitmasks
    plus a 48 × ⌈log₂ 48⌉ lookup table), the paired specialization only 24
    bits, and Register File Virtualization needs 30,240 bits of renaming
    table plus 1,024 availability bits — the >81× gap the paper reports.

    Baseline and RegDem carry no extra hardware structures (RegDem is a
    pure compiler pass over the existing shared-memory datapath); they are
    listed so the mapping from {e evaluated} techniques is total — see
    [Technique.to_storage] in the core library, whose exhaustive match is
    what keeps the two variant types from silently drifting apart. *)

type technique =
  | Baseline          (** stock static allocation: no structures *)
  | Regmutex_default
  | Regmutex_paired
  | Rfv   (** register file virtualization, Jeon et al. [3] *)
  | Owf   (** resource sharing with OWF scheduling, Jatala et al. [7] *)
  | Regdem
      (** shared-memory register spilling, Sakdhnagool et al. — compiler
          only, zero hardware bits *)

type breakdown = {
  technique : technique;
  components : (string * int) list;  (** named structures, in bits *)
  total_bits : int;
}

val bits : Arch_config.t -> technique -> breakdown

(** [ratio cfg a b] is [total_bits b / total_bits a] — e.g.
    [ratio cfg Regmutex_default Rfv ≈ 81.4]. *)
val ratio : Arch_config.t -> technique -> technique -> float

val technique_name : technique -> string
val pp : Format.formatter -> breakdown -> unit
