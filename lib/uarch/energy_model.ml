type constants = {
  rf_read_pj : float;
  rf_write_pj : float;
  shared_read_pj : float;
  shared_write_pj : float;
  rename_lookup_pj : float;
  track_update_pj : float;
  leakage_pj_per_bit_cycle : float;
}

(* Nominal 40nm-class per-access energies at warp granularity (one
   operand-collector transaction for all 32 lanes), in the spirit of
   GREENER's RF accounting: a scratchpad access costs more than a register
   access (larger array, bank arbitration, address decode), and writes
   cost slightly more than reads (bitline drive). Absolute joules are not
   the point — the model is used for *relative*, direction-aware
   comparisons between techniques on identical kernels. *)
let default =
  {
    rf_read_pj = 8.0;
    rf_write_pj = 9.6;
    shared_read_pj = 20.0;
    shared_write_pj = 22.4;
    rename_lookup_pj = 0.9;
    track_update_pj = 0.15;
    leakage_pj_per_bit_cycle = 1e-5;
  }

type counts = {
  rf_reads : int;
  rf_writes : int;
  shared_reads : int;
  shared_writes : int;
  fill_loads : int;
  spill_stores : int;
  rename_accesses : int;
  track_updates : int;
  cycles : int;
  storage_bits : int;
}

let zero_counts =
  {
    rf_reads = 0;
    rf_writes = 0;
    shared_reads = 0;
    shared_writes = 0;
    fill_loads = 0;
    spill_stores = 0;
    rename_accesses = 0;
    track_updates = 0;
    cycles = 0;
    storage_bits = 0;
  }

type breakdown = {
  counts : counts;
  rf_read_nj : float;
  rf_write_nj : float;
  shared_read_nj : float;
  shared_write_nj : float;
  fill_nj : float;
  spill_nj : float;
  structure_nj : float;
  leakage_nj : float;
  total_nj : float;
}

let nj pj_per count = pj_per *. float_of_int count /. 1000.

let of_counts ?(constants = default) c =
  let rf_read_nj = nj constants.rf_read_pj c.rf_reads in
  let rf_write_nj = nj constants.rf_write_pj c.rf_writes in
  let shared_read_nj = nj constants.shared_read_pj c.shared_reads in
  let shared_write_nj = nj constants.shared_write_pj c.shared_writes in
  (* Spill traffic moves through the same scratchpad banks as user shared
     accesses; it is broken out so RegDem's overhead is directly visible. *)
  let fill_nj = nj constants.shared_read_pj c.fill_loads in
  let spill_nj = nj constants.shared_write_pj c.spill_stores in
  let structure_nj =
    nj constants.rename_lookup_pj c.rename_accesses
    +. nj constants.track_update_pj c.track_updates
  in
  let leakage_nj =
    constants.leakage_pj_per_bit_cycle
    *. float_of_int c.storage_bits
    *. float_of_int c.cycles /. 1000.
  in
  {
    counts = c;
    rf_read_nj;
    rf_write_nj;
    shared_read_nj;
    shared_write_nj;
    fill_nj;
    spill_nj;
    structure_nj;
    leakage_nj;
    total_nj =
      rf_read_nj +. rf_write_nj +. shared_read_nj +. shared_write_nj +. fill_nj
      +. spill_nj +. structure_nj +. leakage_nj;
  }

let read_nj b = b.rf_read_nj +. b.shared_read_nj +. b.fill_nj
let write_nj b = b.rf_write_nj +. b.shared_write_nj +. b.spill_nj

let pp ppf b =
  Format.fprintf ppf
    "@[<v>energy: %.1f nJ (reads %.1f, writes %.1f)@,\
     \  RF           %8.1f rd + %8.1f wr nJ@,\
     \  shared       %8.1f rd + %8.1f wr nJ@,\
     \  spill        %8.1f fill + %6.1f spill nJ@,\
     \  structures   %8.1f nJ, leakage %.2f nJ@]"
    b.total_nj (read_nj b) (write_nj b) b.rf_read_nj b.rf_write_nj
    b.shared_read_nj b.shared_write_nj b.fill_nj b.spill_nj b.structure_nj
    b.leakage_nj
